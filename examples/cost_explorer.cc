/**
 * @file
 * Cost explorer: price a network of a given size with the paper's
 * Section 4 cost model and Section 5.3 power model, and print the
 * full hardware inventory for each candidate topology.
 *
 * Usage: cost_explorer [num_nodes]
 */

#include <cstdio>
#include <cstdlib>

#include "cost/topology_cost.h"
#include "power/power_model.h"

using namespace fbfly;

namespace
{

const char *
localeName(LinkLocale locale)
{
    switch (locale) {
      case LinkLocale::Backplane: return "backplane";
      case LinkLocale::LocalCable: return "local";
      case LinkLocale::GlobalCable: return "global";
    }
    return "?";
}

void
report(const TopologyCostModel &model, const PowerModel &power,
       const Inventory &inv)
{
    const CostBreakdown cost = model.price(inv);
    const PowerBreakdown pwr = power.power(inv);
    const double n = static_cast<double>(inv.numNodes);

    std::printf("\n=== %s ===\n", inv.topology.c_str());
    for (const auto &g : inv.routers) {
        std::printf("  routers: %6lld x %s\n",
                    static_cast<long long>(g.count),
                    g.label.c_str());
    }
    for (const auto &g : inv.links) {
        std::printf("  links:   %6lld x %-9s %-10s %5.1f m, %.1f "
                    "signals\n",
                    static_cast<long long>(g.count), g.label.c_str(),
                    localeName(g.locale), g.lengthM,
                    g.signalsPerLink);
    }
    std::printf("  cost:  $%.0f  ($%.1f/node; %.0f%% links)\n",
                cost.total(), cost.total() / n,
                100.0 * cost.linkFraction());
    std::printf("  power: %.0f W  (%.2f W/node)\n", pwr.total(),
                pwr.total() / n);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 1024;
    if (n < 64 || (n & (n - 1)) != 0) {
        std::fprintf(stderr,
                     "usage: %s [num_nodes]  (power of two >= 64)\n",
                     argv[0]);
        return 1;
    }

    TopologyCostModel model;
    PowerModel power;

    std::printf("pricing a %lld-node network (radix-64 building "
                "blocks, constant capacity)\n",
                static_cast<long long>(n));
    report(model, power, model.flattenedButterfly(n));
    report(model, power, model.conventionalButterfly(n));
    report(model, power, model.foldedClos(n));
    report(model, power, model.hypercube(n));
    report(model, power, model.generalizedHypercube(n, 3));
    return 0;
}
