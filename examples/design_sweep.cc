/**
 * @file
 * Design sweep: "which network should I buy?"
 *
 * For a given node count, evaluates every candidate topology on the
 * three axes the paper trades off — simulated performance (benign
 * and adversarial saturation throughput, zero-load latency), dollar
 * cost (Section 4 model), and power (Section 5.3 model) — and prints
 * a summary table.  This is the whole library in one program: the
 * cycle simulator, the routing algorithms, and the analytic models.
 *
 * Usage: design_sweep [num_nodes]   (power of two, 64..4096 for the
 * simulated columns; defaults to 1024, the paper's configuration)
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/radix.h"
#include "cost/topology_cost.h"
#include "harness/experiment.h"
#include "harness/factory.h"
#include "power/power_model.h"
#include "traffic/traffic_pattern.h"

using namespace fbfly;

namespace
{

struct Candidate
{
    std::string spec;
    Inventory inventory;
};

struct Row
{
    std::string name;
    double ur_throughput;
    double wc_throughput;
    double zero_load_latency;
    double cost_per_node;
    double watts_per_node;
};

Row
evaluate(const Candidate &cand, const TopologyCostModel &cost_model,
         const PowerModel &power_model)
{
    NetworkBundle bundle = makeNetworkBundle(cand.spec, "default");
    const std::int64_t n = bundle.topology->numNodes();
    UniformRandom ur(n);
    AdversarialNeighbor wc(n, bundle.terminalsPerRouter);

    ExperimentConfig e;
    e.warmupCycles = 500;
    e.measureCycles = 500;
    e.drainCycles = 1500;

    NetworkConfig cfg;
    cfg.vcDepth = std::max(1, 32 / bundle.routing->numVcs());
    cfg.channelPeriod = bundle.channelPeriod;

    Row row;
    row.name = bundle.topology->name();
    row.ur_throughput = runLoadPoint(*bundle.topology,
                                     *bundle.routing, ur, cfg, e,
                                     1.0)
                            .accepted;
    row.wc_throughput = runLoadPoint(*bundle.topology,
                                     *bundle.routing, wc, cfg, e,
                                     1.0)
                            .accepted;
    row.zero_load_latency =
        runLoadPoint(*bundle.topology, *bundle.routing, ur, cfg, e,
                     0.05)
            .avgLatency;

    const double dn = static_cast<double>(n);
    row.cost_per_node =
        cost_model.price(cand.inventory).total() / dn;
    row.watts_per_node =
        power_model.power(cand.inventory).total() / dn;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 1024;
    if (n < 64 || n > 4096 || (n & (n - 1)) != 0) {
        std::fprintf(stderr,
                     "usage: %s [nodes]  (power of two, 64..4096)\n",
                     argv[0]);
        return 1;
    }

    TopologyCostModel cost_model;
    PowerModel power_model;

    // Candidate configurations at this size, mirroring the paper's
    // Section 3.3/4.3 normalizations (radix-64-class parts, equal
    // bisection for the simulated columns).
    const int dims = ceilLog(n, 2);
    const int fb_k = static_cast<int>(ipow(2, dims / 2));
    std::vector<Candidate> candidates;
    candidates.push_back({"fbfly-" + std::to_string(fb_k) + "-2",
                          cost_model.flattenedButterfly(n)});
    candidates.push_back({"butterfly-" + std::to_string(fb_k) + "-2",
                          cost_model.conventionalButterfly(n)});
    candidates.push_back(
        {"clos-" + std::to_string(n) + "-" + std::to_string(fb_k) +
             "-" + std::to_string(fb_k / 2),
         cost_model.foldedClos(n)});
    candidates.push_back({"hypercube-" + std::to_string(dims),
                          cost_model.hypercube(n)});
    candidates.push_back({"torus-" + std::to_string(fb_k) + "-2",
                          cost_model.generalizedHypercube(n, 2)});

    std::printf("design sweep at N = %lld (throughputs in "
                "flits/node/cycle)\n\n",
                static_cast<long long>(n));
    std::printf("%-22s %8s %8s %10s %9s %8s\n", "topology",
                "UR sat", "WC sat", "0-load lat", "$/node",
                "W/node");
    for (const auto &cand : candidates) {
        const Row row = evaluate(cand, cost_model, power_model);
        std::printf("%-22s %8.3f %8.3f %10.2f %9.1f %8.2f\n",
                    row.name.c_str(), row.ur_throughput,
                    row.wc_throughput, row.zero_load_latency,
                    row.cost_per_node, row.watts_per_node);
    }
    std::printf("\n(the torus row reuses the generalized-hypercube "
                "cost inventory as its\nclosest direct-network "
                "analogue; WC = adversarial adjacent-group pattern,"
                "\nwhich for the one-node-per-router torus is "
                "nearest-neighbour traffic —\nbenign there, but its "
                "uniform-random column shows the low-radix "
                "bottleneck)\n");
    return 0;
}
