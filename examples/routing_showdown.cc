/**
 * @file
 * Routing showdown: run all five routing algorithms of the paper on
 * a flattened butterfly under a traffic pattern and offered load of
 * your choice.
 *
 * Usage: routing_showdown [uniform|adversarial|tornado|transpose]
 *                         [offered_load]
 *
 * Demonstrates the paper's central routing result: minimal routing
 * collapses on adversarial traffic while globally-adaptive
 * non-minimal routing (UGAL/CLOS AD) matches Valiant's worst-case
 * throughput without sacrificing benign-traffic performance.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "harness/experiment.h"
#include "routing/clos_ad.h"
#include "routing/min_adaptive.h"
#include "routing/ugal.h"
#include "routing/valiant.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

using namespace fbfly;

int
main(int argc, char **argv)
{
    const char *pattern_name = argc > 1 ? argv[1] : "adversarial";
    const double load = argc > 2 ? std::atof(argv[2]) : 0.4;

    FlattenedButterfly topo(32, 2);

    std::unique_ptr<TrafficPattern> pattern;
    if (std::strcmp(pattern_name, "uniform") == 0) {
        pattern = std::make_unique<UniformRandom>(topo.numNodes());
    } else if (std::strcmp(pattern_name, "adversarial") == 0) {
        pattern = std::make_unique<AdversarialNeighbor>(
            topo.numNodes(), topo.k());
    } else if (std::strcmp(pattern_name, "tornado") == 0) {
        pattern = std::make_unique<GroupTornado>(topo.numNodes(),
                                                 topo.k());
    } else if (std::strcmp(pattern_name, "transpose") == 0) {
        pattern = std::make_unique<Transpose>(topo.numNodes());
    } else {
        std::fprintf(stderr,
                     "usage: %s [uniform|adversarial|tornado|"
                     "transpose] [offered_load]\n",
                     argv[0]);
        return 1;
    }

    std::printf("%s, %s traffic, offered load %.2f "
                "flits/node/cycle\n\n",
                topo.name().c_str(), pattern->name().c_str(), load);

    MinAdaptive min_ad(topo);
    Valiant val(topo);
    Ugal ugal(topo, false);
    Ugal ugal_s(topo, true);
    ClosAd clos_ad(topo);
    RoutingAlgorithm *algos[] = {&min_ad, &val, &ugal, &ugal_s,
                                 &clos_ad};

    ExperimentConfig expcfg;
    expcfg.warmupCycles = 1000;
    expcfg.measureCycles = 1000;
    expcfg.drainCycles = 5000;

    std::printf("%-8s %6s %10s %12s %10s %6s\n", "algo", "VCs",
                "accepted", "latency", "avg hops", "sat");
    for (auto *algo : algos) {
        NetworkConfig netcfg;
        netcfg.vcDepth = 32 / algo->numVcs();
        const LoadPointResult r = runLoadPoint(
            topo, *algo, *pattern, netcfg, expcfg, load);
        if (r.saturated || r.measuredPackets == 0) {
            std::printf("%-8s %6d %10.3f %12s %10s %6s\n",
                        algo->name().c_str(), algo->numVcs(),
                        r.accepted, "-", "-", "yes");
        } else {
            std::printf("%-8s %6d %10.3f %12.2f %10.2f %6s\n",
                        algo->name().c_str(), algo->numVcs(),
                        r.accepted, r.avgLatency, r.avgHops, "no");
        }
    }
    return 0;
}
