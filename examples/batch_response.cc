/**
 * @file
 * Batch response: deliver a burst of adversarial traffic and watch
 * how each adaptive routing algorithm copes with the transient —
 * the experiment behind the paper's Figure 5 and its argument for
 * sequential allocators.
 *
 * Usage: batch_response [batch_size]
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.h"
#include "routing/clos_ad.h"
#include "routing/ugal.h"
#include "routing/valiant.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

using namespace fbfly;

int
main(int argc, char **argv)
{
    const int batch = argc > 1 ? std::atoi(argv[1]) : 10;
    if (batch < 1) {
        std::fprintf(stderr, "usage: %s [batch_size>=1]\n", argv[0]);
        return 1;
    }

    FlattenedButterfly topo(32, 2);
    AdversarialNeighbor pattern(topo.numNodes(), topo.k());

    Valiant val(topo);
    Ugal ugal(topo, false);
    Ugal ugal_s(topo, true);
    ClosAd clos_ad(topo);
    RoutingAlgorithm *algos[] = {&val, &ugal, &ugal_s, &clos_ad};

    std::printf("batch of %d packets/node, worst-case pattern, "
                "%s\n\n", batch, topo.name().c_str());
    std::printf("%-8s %14s %18s\n", "algo", "completion", "cycles/"
                "packet");
    for (auto *algo : algos) {
        NetworkConfig netcfg;
        netcfg.vcDepth = 32 / algo->numVcs();
        const BatchResult r =
            runBatch(topo, *algo, pattern, netcfg, 2007, batch);
        std::printf("%-8s %14llu %18.2f\n", algo->name().c_str(),
                    static_cast<unsigned long long>(
                        r.completionTime),
                    r.normalizedLatency);
    }
    std::printf("\nThe greedy UGAL allocator piles every input of a "
                "router onto the\nsame minimal queue before the "
                "queueing state updates; the sequential\nallocators "
                "(UGAL-S, CLOS AD) spread the burst immediately.\n");
    return 0;
}
