/**
 * @file
 * Quickstart: build a 32-ary 2-flat (the paper's 1024-node simulated
 * configuration), route with CLOS AD, offer moderate uniform-random
 * load, and print latency/throughput.
 */

#include <cstdio>

#include "harness/experiment.h"
#include "routing/clos_ad.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

int
main()
{
    using namespace fbfly;

    // The paper's simulated network: k'=63, n'=1, N=1024.
    FlattenedButterfly topo(32, 2);
    ClosAd algo(topo);
    UniformRandom pattern(topo.numNodes());

    std::printf("topology: %s  (N=%lld, %d routers of radix %d)\n",
                topo.name().c_str(),
                static_cast<long long>(topo.numNodes()),
                topo.numRouters(), topo.radix());
    std::printf("routing:  %s (%d VCs)\n\n", algo.name().c_str(),
                algo.numVcs());

    NetworkConfig netcfg;
    netcfg.vcDepth = 32 / algo.numVcs(); // 32 flits/port (Sec. 3.2)

    ExperimentConfig expcfg;
    expcfg.warmupCycles = 2000;
    expcfg.measureCycles = 2000;
    expcfg.drainCycles = 20000;

    std::printf("%8s %10s %12s %10s\n", "offered", "accepted",
                "latency(cyc)", "avg hops");
    for (const double load : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        const LoadPointResult r =
            runLoadPoint(topo, algo, pattern, netcfg, expcfg, load);
        std::printf("%8.2f %10.3f %12.2f %10.2f\n", r.offered,
                    r.accepted, r.avgLatency, r.avgHops);
    }
    return 0;
}
