/**
 * @file
 * fbflysim — a BookSim-style command-line driver over the fbfly
 * library.  Assemble any topology/routing/traffic combination and
 * sweep offered loads without writing code.
 *
 * Usage:
 *   fbflysim [--topo SPEC] [--routing NAME] [--traffic NAME]
 *            [--loads LO:HI:STEP | --load X] [--buffer FLITS]
 *            [--packet FLITS] [--warmup N] [--measure N]
 *            [--drain N] [--seed N] [--burst MEAN] [--channels]
 *
 * Examples:
 *   fbflysim --topo fbfly-32-2 --routing closad \
 *            --traffic adversarial --loads 0.1:0.6:0.05
 *   fbflysim --topo fattree-512-8-4-4-4 --traffic uniform --load 0.8
 *   fbflysim --topo torus-8-2 --traffic tornado --loads 0.05:0.5:0.05
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/factory.h"
#include "traffic/injection.h"

using namespace fbfly;

namespace
{

struct Options
{
    std::string topo = "fbfly-32-2";
    std::string routing = "default";
    std::string traffic = "uniform";
    std::vector<double> loads;
    int buffer = 32;
    int packet = 1;
    int warmup = 1000;
    int measure = 1000;
    int drain = 5000;
    std::uint64_t seed = 1;
    double burst = 0.0; // 0 => Bernoulli
    bool channels = false;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--topo SPEC] [--routing NAME] [--traffic NAME]\n"
        "          [--loads LO:HI:STEP | --load X] [--buffer FLITS]\n"
        "          [--packet FLITS] [--warmup N] [--measure N]\n"
        "          [--drain N] [--seed N] [--burst MEAN] "
        "[--channels]\n"
        "topologies: fbfly-K-N butterfly-K-N clos-NODES-C-U\n"
        "            fattree-NODES-C-P-U1-U2 hypercube-D torus-K-N\n"
        "            ghc-K1xK2x... dragonfly-P-A-H slimfly-Q-P\n"
        "routing:    default dor minad val ugal ugals closad dest\n"
        "            adaptive ecube tordor ghcmin ghcadapt\n"
        "            dfmin dfugal sfmin sfugal\n"
        "traffic:    uniform adversarial tornado transpose bitcomp\n"
        "            randperm\n",
        argv0);
    std::exit(1);
}

std::vector<double>
parseLoads(const std::string &spec)
{
    std::vector<double> loads;
    double lo = 0.0;
    double hi = 0.0;
    double step = 0.0;
    if (std::sscanf(spec.c_str(), "%lf:%lf:%lf", &lo, &hi, &step) ==
        3 && step > 0.0) {
        for (double l = lo; l <= hi + 1e-9; l += step)
            loads.push_back(l);
    }
    return loads;
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (a == "--topo") {
            opt.topo = value();
        } else if (a == "--routing") {
            opt.routing = value();
        } else if (a == "--traffic") {
            opt.traffic = value();
        } else if (a == "--loads") {
            opt.loads = parseLoads(value());
            if (opt.loads.empty())
                usage(argv[0]);
        } else if (a == "--load") {
            opt.loads = {std::atof(value())};
        } else if (a == "--buffer") {
            opt.buffer = std::atoi(value());
        } else if (a == "--packet") {
            opt.packet = std::atoi(value());
        } else if (a == "--warmup") {
            opt.warmup = std::atoi(value());
        } else if (a == "--measure") {
            opt.measure = std::atoi(value());
        } else if (a == "--drain") {
            opt.drain = std::atoi(value());
        } else if (a == "--seed") {
            opt.seed = std::strtoull(value(), nullptr, 10);
        } else if (a == "--burst") {
            opt.burst = std::atof(value());
        } else if (a == "--channels") {
            opt.channels = true;
        } else {
            usage(argv[0]);
        }
    }
    if (opt.loads.empty())
        opt.loads = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
    return opt;
}

/** One load point with optional bursty injection and channel-load
 *  reporting (mirrors runLoadPoint, exposed here for the extras). */
LoadPointResult
runPoint(const Options &opt, const NetworkBundle &bundle,
         const TrafficPattern &pattern, double offered,
         double *max_channel_load)
{
    NetworkConfig netcfg;
    netcfg.numVcs = bundle.routing->numVcs();
    netcfg.vcDepth = std::max(1, opt.buffer / netcfg.numVcs);
    netcfg.packetSize = opt.packet;
    netcfg.channelPeriod = bundle.channelPeriod;
    netcfg.seed = opt.seed;

    ExperimentConfig expcfg;
    expcfg.warmupCycles = opt.warmup;
    expcfg.measureCycles = opt.measure;
    expcfg.drainCycles = opt.drain;
    expcfg.seed = opt.seed;

    if (opt.burst <= 0.0 && max_channel_load == nullptr) {
        return runLoadPoint(*bundle.topology, *bundle.routing,
                            pattern, netcfg, expcfg, offered);
    }

    // Custom loop for bursty injection / channel accounting.
    Network net(*bundle.topology, *bundle.routing, &pattern, netcfg);
    BernoulliInjection bern(offered, opt.packet, opt.seed ^ 0x777);
    OnOffInjection bursty(offered, std::max(opt.burst, 1.0),
                          opt.packet, opt.seed ^ 0x777);
    auto tick = [&](bool measured) {
        if (opt.burst > 0.0)
            bursty.tick(net, measured);
        else
            bern.tick(net, measured);
        net.step();
    };

    for (int c = 0; c < opt.warmup; ++c)
        tick(false);
    const auto loads0 = net.interRouterFlitCounts();
    const std::uint64_t ejected0 = net.stats().flitsEjected;
    for (int c = 0; c < opt.measure; ++c)
        tick(true);
    const std::uint64_t ejected1 = net.stats().flitsEjected;
    const auto loads1 = net.interRouterFlitCounts();

    LoadPointResult res;
    res.offered = offered;
    res.accepted = static_cast<double>(ejected1 - ejected0) /
                   (static_cast<double>(net.numNodes()) *
                    opt.measure);
    bool saturated = false;
    for (int c = 0; net.stats().measuredEjected <
                    net.stats().measuredCreated;
         ++c) {
        if (c >= opt.drain) {
            saturated = true;
            break;
        }
        tick(false);
    }
    res.saturated = saturated;
    res.avgLatency = net.stats().packetLatency.mean();
    res.avgHops = net.stats().hops.mean();
    res.measuredPackets = net.stats().measuredEjected;

    if (max_channel_load != nullptr && !loads0.empty()) {
        std::uint64_t peak = 0;
        for (std::size_t i = 0; i < loads0.size(); ++i)
            peak = std::max(peak, loads1[i] - loads0[i]);
        *max_channel_load =
            static_cast<double>(peak) / opt.measure;
    }
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);

    NetworkBundle bundle = makeNetworkBundle(opt.topo, opt.routing);
    auto pattern =
        makeTraffic(opt.traffic, bundle.topology->numNodes(),
                    bundle.terminalsPerRouter, opt.seed);

    std::printf("fbflysim: %s | %s (%d VCs) | %s | buffer %d "
                "flits/port | packet %d\n",
                bundle.topology->name().c_str(),
                bundle.routing->name().c_str(),
                bundle.routing->numVcs(), pattern->name().c_str(),
                opt.buffer, opt.packet);
    if (opt.burst > 0.0) {
        std::printf("bursty injection: mean burst %.0f cycles\n",
                    opt.burst);
    }

    std::printf("%10s %10s %12s %10s %6s", "offered", "accepted",
                "latency", "hops", "sat");
    if (opt.channels)
        std::printf(" %12s", "max-chan");
    std::printf("\n");

    for (const double load : opt.loads) {
        double max_chan = 0.0;
        const LoadPointResult r =
            runPoint(opt, bundle, *pattern, load,
                     opt.channels ? &max_chan : nullptr);
        if (r.saturated || r.measuredPackets == 0) {
            std::printf("%10.3f %10.4f %12s %10s %6s", r.offered,
                        r.accepted, "-", "-", "yes");
        } else {
            std::printf("%10.3f %10.4f %12.2f %10.2f %6s",
                        r.offered, r.accepted, r.avgLatency,
                        r.avgHops, "no");
        }
        if (opt.channels)
            std::printf(" %12.3f", max_chan);
        std::printf("\n");
    }
    return 0;
}
