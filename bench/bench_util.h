/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Each bench binary regenerates one figure or table of the paper,
 * printing the same rows/series the paper plots.  The simulated
 * benches use shorter warm-up/measurement windows than a production
 * study would (the paper does not specify its windows); this adds
 * noise but does not change the shapes the paper's conclusions rest
 * on.  EXPERIMENTS.md records paper-vs-measured for every bench.
 *
 * The simulated benches share a tiny command line (docs/SWEEPS.md):
 *
 *   --threads N   run independent sweep points on N worker threads
 *                 (0: all hardware threads; results are bit-identical
 *                 for every N — see SweepEngine's determinism
 *                 contract);
 *   --json PATH   additionally emit the results as a
 *                 "fbfly-sweep-v1" JSON document;
 *   --seed S      master seed (per-point seeds derive from it);
 *   --trace       collect flit-lifecycle traces + metrics per point
 *                 (docs/OBSERVABILITY.md) and write a merged Chrome
 *                 trace_event JSON viewable in Perfetto;
 *   --trace-out PATH  where to write that trace (implies --trace;
 *                 default: <bench>.trace.json).
 */

#ifndef FBFLY_BENCH_BENCH_UTIL_H
#define FBFLY_BENCH_BENCH_UTIL_H

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/result_writer.h"
#include "harness/sweep.h"
#include "obs/trace_export.h"

namespace fbfly::bench
{

/** Default experiment phasing for the 1K-node benches. */
inline ExperimentConfig
defaultPhasing()
{
    ExperimentConfig e;
    e.warmupCycles = 1000;
    e.measureCycles = 1000;
    e.drainCycles = 3000;
    e.seed = 2007; // ISCA'07
    return e;
}

/** Offered loads for a latency-vs-load curve up to @p cap. */
inline std::vector<double>
loadSweep(double cap, double step = 0.1)
{
    std::vector<double> loads;
    for (double l = step; l <= cap + 1e-9; l += step)
        loads.push_back(l);
    return loads;
}

/** The load points used for curves that saturate near 50% (the
 *  worst-case pattern and the tapered Clos): dense near the
 *  paper's 0.45 comparison point, bounded past saturation. */
inline std::vector<double>
halfCapacitySweep()
{
    return {0.1, 0.2, 0.3, 0.4, 0.45, 0.5, 0.55};
}

/** Shared command-line options of the simulated benches. */
struct BenchOptions
{
    /** Sweep worker threads (--threads; 0: all hardware threads). */
    int threads = 1;
    /** JSON output path (--json; empty: no JSON). */
    std::string jsonPath;
    /** Master seed (--seed). */
    std::uint64_t seed = 2007; // ISCA'07
    /** Collect per-point traces + metrics (--trace /
     *  --trace-out; docs/OBSERVABILITY.md). */
    bool trace = false;
    /** Chrome-trace output path (--trace-out; empty: derive
     *  <bench>.trace.json). */
    std::string traceOut;
    /** Intra-point step-engine shards (--shards; NetworkConfig::
     *  shards — results are bit-identical for every N). */
    int shards = 1;
};

/**
 * Parse --threads / --json / --seed (each also accepts the
 * --flag=value spelling).  Prints usage and exits on bad input.
 */
inline BenchOptions
parseBenchOptions(int argc, char **argv)
{
    const auto usage = [&](int status) {
        std::fprintf(
            stderr,
            "usage: %s [--threads N] [--shards N] [--json PATH] "
            "[--seed S] [--trace] [--trace-out PATH]\n"
            "  --threads N  worker threads for independent sweep "
            "points\n"
            "               (0: all hardware threads; default 1; "
            "results are\n"
            "               identical for every N)\n"
            "  --shards N   step-engine shards inside each point "
            "(default 1;\n"
            "               results are bit-identical for every N)\n"
            "  --json PATH  also write results as fbfly-sweep-v1 "
            "JSON\n"
            "  --seed S     master seed (default 2007)\n"
            "  --trace      collect flit traces + metrics per point "
            "and write\n"
            "               a Chrome trace_event JSON (Perfetto-"
            "loadable)\n"
            "  --trace-out PATH  trace output path (implies --trace; "
            "default\n"
            "               <bench>.trace.json)\n",
            argv[0]);
        std::exit(status);
    };
    const auto value = [&](int &i, const char *arg,
                           const char *name) -> const char * {
        const std::size_t n = std::strlen(name);
        if (std::strncmp(arg, name, n) == 0 && arg[n] == '=')
            return arg + n + 1;
        if (std::strcmp(arg, name) == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: missing value for %s\n",
                             argv[0], name);
                usage(2);
            }
            return argv[++i];
        }
        return nullptr;
    };

    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            usage(0);
        } else if (const char *v = value(i, arg, "--threads")) {
            char *end = nullptr;
            opt.threads = static_cast<int>(std::strtol(v, &end, 10));
            if (end == v || *end != '\0' || opt.threads < 0) {
                std::fprintf(stderr, "%s: bad --threads '%s'\n",
                             argv[0], v);
                usage(2);
            }
        } else if (const char *v = value(i, arg, "--shards")) {
            char *end = nullptr;
            opt.shards = static_cast<int>(std::strtol(v, &end, 10));
            if (end == v || *end != '\0' || opt.shards < 1) {
                std::fprintf(stderr, "%s: bad --shards '%s'\n",
                             argv[0], v);
                usage(2);
            }
        } else if (const char *v = value(i, arg, "--json")) {
            opt.jsonPath = v;
        } else if (std::strcmp(arg, "--trace") == 0) {
            opt.trace = true;
        } else if (const char *v = value(i, arg, "--trace-out")) {
            opt.trace = true;
            opt.traceOut = v;
        } else if (const char *v = value(i, arg, "--seed")) {
            char *end = nullptr;
            opt.seed = std::strtoull(v, &end, 0);
            if (end == v || *end != '\0') {
                std::fprintf(stderr, "%s: bad --seed '%s'\n",
                             argv[0], v);
                usage(2);
            }
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n",
                         argv[0], arg);
            usage(2);
        }
    }
    return opt;
}

/** SweepConfig for parsed options. */
inline SweepConfig
sweepConfig(const BenchOptions &opt)
{
    SweepConfig cfg;
    cfg.threads = opt.threads;
    cfg.masterSeed = opt.seed;
    return cfg;
}

/** Apply the --trace decision to an ExperimentConfig: tracing
 *  implies metrics collection (the trace and its reconciling
 *  counters travel together; docs/OBSERVABILITY.md). */
inline ExperimentConfig
withObs(ExperimentConfig e, const BenchOptions &opt)
{
    if (opt.trace) {
        e.obs.traceEnabled = true;
        e.obs.metricsEnabled = true;
    }
    return e;
}

/** Print the header for a latency/throughput series. */
inline void
printSeriesHeader(const std::string &series)
{
    std::printf("\n# series: %s\n", series.c_str());
    std::printf("%10s %10s %12s %10s %6s\n", "offered", "accepted",
                "latency", "hops", "sat");
}

/** Print one load point in the standard format. */
inline void
printPoint(const LoadPointResult &r)
{
    if (!r.latencyValid()) {
        std::printf("%10.3f %10.4f %12s %10s %6s\n", r.offered,
                    r.accepted, "-", "-",
                    r.valid() ? "yes" : toString(r.status));
    } else {
        std::printf("%10.3f %10.4f %12.2f %10.2f %6s\n", r.offered,
                    r.accepted, r.avgLatency, r.avgHops, "no");
    }
}

/**
 * Print a completed engine's load-point records, series by series
 * (records must have been queued series-contiguously, which
 * addLoadSweep guarantees).
 */
inline void
printLoadRecords(const std::vector<SweepPointRecord> &records)
{
    const std::string *series = nullptr;
    for (const auto &rec : records) {
        if (rec.kind != SweepPointKind::kLoadPoint)
            continue;
        if (series == nullptr || rec.series != *series) {
            printSeriesHeader(rec.series);
            series = &rec.series;
        }
        printPoint(rec.load);
    }
}

/**
 * Wrap-up shared by the simulated benches: report the parallel
 * timing and write the JSON document when requested.
 */
inline void
finishBench(const SweepEngine &engine, const BenchOptions &opt,
            const std::string &bench_name,
            const std::string &description = std::string(),
            std::vector<std::pair<std::string, std::string>> extra =
                {},
            std::vector<std::pair<std::string, double>>
                extra_numbers = {})
{
    std::printf("\n# %zu points, %d thread(s): %.2fs wall "
                "(serial-equivalent %.2fs, speedup %.2fx)\n",
                engine.records().size(), engine.threads(),
                engine.totalWallSeconds(),
                engine.pointWallSecondsSum(),
                engine.totalWallSeconds() > 0.0
                    ? engine.pointWallSecondsSum() /
                          engine.totalWallSeconds()
                    : 0.0);

    // Merge per-point traces (strictly in point-index order — the
    // determinism contract) into one Perfetto-loadable file.
    std::string trace_file;
    if (opt.trace) {
        std::vector<TracePoint> points;
        points.reserve(engine.records().size());
        for (const auto &rec : engine.records()) {
            TracePoint pt;
            pt.label = "point " + std::to_string(rec.index) + ": " +
                       rec.series;
            if (rec.kind == SweepPointKind::kLoadPoint) {
                char load[32];
                std::snprintf(load, sizeof load, " @ %.3g",
                              rec.load.offered);
                pt.label += load;
                pt.trace = rec.load.trace.get();
            }
            points.push_back(std::move(pt));
        }
        trace_file = opt.traceOut.empty()
                         ? bench_name + ".trace.json"
                         : opt.traceOut;
        if (writeChromeTrace(trace_file, points))
            std::printf("# wrote %s (open in ui.perfetto.dev)\n",
                        trace_file.c_str());
        else
            trace_file.clear();
    }

    if (opt.jsonPath.empty())
        return;
    SweepRunMeta meta;
    meta.bench = bench_name;
    meta.description = description;
    meta.extra = std::move(extra);
    meta.extraNumbers = std::move(extra_numbers);
    meta.traceFile = trace_file;
    if (writeSweepResults(opt.jsonPath, meta, engine))
        std::printf("# wrote %s\n", opt.jsonPath.c_str());
}

} // namespace fbfly::bench

#endif // FBFLY_BENCH_BENCH_UTIL_H
