/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Each bench binary regenerates one figure or table of the paper,
 * printing the same rows/series the paper plots.  The simulated
 * benches use shorter warm-up/measurement windows than a production
 * study would (the paper does not specify its windows); this adds
 * noise but does not change the shapes the paper's conclusions rest
 * on.  EXPERIMENTS.md records paper-vs-measured for every bench.
 */

#ifndef FBFLY_BENCH_BENCH_UTIL_H
#define FBFLY_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace fbfly::bench
{

/** Default experiment phasing for the 1K-node benches. */
inline ExperimentConfig
defaultPhasing()
{
    ExperimentConfig e;
    e.warmupCycles = 1000;
    e.measureCycles = 1000;
    e.drainCycles = 3000;
    e.seed = 2007; // ISCA'07
    return e;
}

/** Offered loads for a latency-vs-load curve up to @p cap. */
inline std::vector<double>
loadSweep(double cap, double step = 0.1)
{
    std::vector<double> loads;
    for (double l = step; l <= cap + 1e-9; l += step)
        loads.push_back(l);
    return loads;
}

/** The load points used for curves that saturate near 50% (the
 *  worst-case pattern and the tapered Clos): dense near the
 *  paper's 0.45 comparison point, bounded past saturation. */
inline std::vector<double>
halfCapacitySweep()
{
    return {0.1, 0.2, 0.3, 0.4, 0.45, 0.5, 0.55};
}

/** Print the header for a latency/throughput series. */
inline void
printSeriesHeader(const std::string &series)
{
    std::printf("\n# series: %s\n", series.c_str());
    std::printf("%10s %10s %12s %10s %6s\n", "offered", "accepted",
                "latency", "hops", "sat");
}

/** Print one load point in the standard format. */
inline void
printPoint(const LoadPointResult &r)
{
    if (r.saturated || r.measuredPackets == 0) {
        std::printf("%10.3f %10.4f %12s %10s %6s\n", r.offered,
                    r.accepted, "-", "-", "yes");
    } else {
        std::printf("%10.3f %10.4f %12.2f %10.2f %6s\n", r.offered,
                    r.accepted, r.avgLatency, r.avgHops, "no");
    }
}

} // namespace fbfly::bench

#endif // FBFLY_BENCH_BENCH_UTIL_H
