/**
 * @file
 * Ablation: step response over time.
 *
 * Figure 5 measures transients through batch completion; this bench
 * shows the same dynamics as an explicit time series.  The network
 * runs uniform random traffic at 0.4 load, then the pattern
 * *switches* to the worst case at cycle 2000 and back at cycle 4000.
 * Per-200-cycle windows of average packet latency show MIN AD
 * collapsing after the switch (its worst-case capacity is 1/32)
 * while the globally-adaptive algorithms re-balance within a short
 * transient — CLOS AD with the smallest excursion.
 */

#include <cstdio>
#include <vector>

#include "harness/sampler.h"
#include "network/network.h"
#include "routing/clos_ad.h"
#include "routing/min_adaptive.h"
#include "routing/ugal.h"
#include "topology/flattened_butterfly.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

using namespace fbfly;

namespace
{

/** A pattern that delegates to a switchable target. */
class PatternSwitch : public TrafficPattern
{
  public:
    PatternSwitch(std::int64_t n, const TrafficPattern *initial)
        : TrafficPattern(n), current_(initial)
    {
    }
    void set(const TrafficPattern *p) { current_ = p; }
    std::string name() const override { return "switchable"; }
    NodeId
    dest(NodeId src, Rng &rng) const override
    {
        return current_->dest(src, rng);
    }

  private:
    const TrafficPattern *current_;
};

constexpr int kWindow = 200;
constexpr int kPhase = 2000;
constexpr double kLoad = 0.4;

std::vector<Sample>
run(RoutingAlgorithm &algo, const FlattenedButterfly &topo)
{
    UniformRandom ur(topo.numNodes());
    AdversarialNeighbor wc(topo.numNodes(), topo.k());
    PatternSwitch pattern(topo.numNodes(), &ur);

    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 32 / algo.numVcs();
    cfg.seed = 2007;
    Network net(topo, algo, &pattern, cfg);
    BernoulliInjection inj(kLoad, 1, 77);
    TimeSeriesSampler sampler(net, kWindow);

    for (int c = 0; c < 3 * kPhase; ++c) {
        if (c == kPhase)
            pattern.set(&wc);
        if (c == 2 * kPhase)
            pattern.set(&ur);
        inj.tick(net, true);
        net.step();
        sampler.tick();
    }
    return sampler.samples();
}

} // namespace

int
main()
{
    FlattenedButterfly topo(32, 2);
    MinAdaptive min_ad(topo);
    Ugal ugal_s(topo, true);
    ClosAd clos_ad(topo);

    std::printf("Step response at 0.4 load: uniform -> worst-case "
                "at cycle %d -> uniform at cycle %d\n"
                "(average latency of packets delivered per "
                "%d-cycle window)\n\n",
                kPhase, 2 * kPhase, kWindow);

    const auto a = run(min_ad, topo);
    const auto b = run(ugal_s, topo);
    const auto c = run(clos_ad, topo);

    std::printf("%8s %12s %12s %12s\n", "cycle", "MIN AD", "UGAL-S",
                "CLOS AD");
    for (std::size_t i = 0; i < a.size(); ++i) {
        std::printf("%8llu %12.1f %12.1f %12.1f\n",
                    static_cast<unsigned long long>(a[i].start),
                    a[i].avgLatency, b[i].avgLatency,
                    c[i].avgLatency);
    }

    std::printf("\nbacklog at the end of the worst-case phase "
                "(packets still queued per node):\n");
    const std::size_t end_wc = 2 * kPhase / kWindow - 1;
    std::printf("  MIN AD %.1f   UGAL-S %.2f   CLOS AD %.2f\n",
                static_cast<double>(a[end_wc].backlog) / 1024.0,
                static_cast<double>(b[end_wc].backlog) / 1024.0,
                static_cast<double>(c[end_wc].backlog) / 1024.0);
    return 0;
}
