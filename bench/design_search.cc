/**
 * @file
 * Design-space search bench (harness/design_search.h).
 *
 * Answers the question the paper answers by hand across Figures
 * 11-15: *which topology should you build* for a given terminal
 * count and budget?  Enumerates flattened-butterfly / folded-Clos /
 * hypercube / generalized-hypercube / dragonfly / Slim Fly
 * candidates around a ~64..132-terminal requirement, prunes them
 * analytically with the cost and power models, sweeps the survivors
 * under uniform random traffic, and prints (and with --json emits as
 * an fbfly-pareto-v1 document) the cost-performance Pareto frontier.
 *
 * The JSON document is bit-identical for every --threads / --shards
 * combination (tests/test_design_search.cc).
 */

#include <cstdio>

#include "bench_util.h"
#include "harness/design_search.h"

using namespace fbfly;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opt =
        bench::parseBenchOptions(argc, argv);

    DesignSpec spec;
    spec.minTerminals = 60;
    spec.maxTerminalFactor = 2.2; // terminals in [60, 132]
    spec.loads = {0.2, 0.5, 0.9};
    spec.expcfg.warmupCycles = 500;
    spec.expcfg.measureCycles = 500;
    spec.expcfg.drainCycles = 10000;
    spec.expcfg.seed = opt.seed;
    spec.shards = opt.shards;

    const DesignSearchResult result =
        runDesignSearch(spec, bench::sweepConfig(opt));

    std::printf("# design search: terminals in [%lld, %lld]\n",
                static_cast<long long>(spec.minTerminals),
                static_cast<long long>(spec.minTerminals *
                                       spec.maxTerminalFactor));
    std::printf("%-10s %-16s %-8s %3s %3s %6s %8s %8s %8s %s\n",
                "family", "topology", "routing", "cp", "vd", "thrUB",
                "$/term", "W/term", "satThr", "note");
    std::size_t pi = 0;
    for (std::size_t i = 0; i < result.candidates.size(); ++i) {
        const DesignCandidate &c = result.candidates[i];
        double sat = LoadPointResult::kUnknown;
        const char *note = c.pruned ? c.pruneReason.c_str() : "swept";
        if (!c.pruned) {
            const DesignPoint &pt = result.points[pi++];
            sat = pt.satThroughput;
            if (pt.onFrontier)
                note = "FRONTIER";
        }
        std::printf(
            "%-10s %-16s %-8s %3llu %3d %6.3f %8.1f %8.2f %8.4f %s\n",
            toString(c.family), c.topoSpec.c_str(),
            c.routing.c_str(),
            static_cast<unsigned long long>(c.channelPeriod),
            c.vcDepth, c.throughputBound, c.costPerTerminal,
            c.powerPerTerminal, sat, note);
    }

    std::printf("\n# frontier (%zu of %zu swept candidates):\n",
                result.frontier.size(), result.points.size());
    for (const std::size_t fi : result.frontier) {
        const DesignPoint &pt = result.points[fi];
        const DesignCandidate &c = result.candidates[pt.candidate];
        std::printf("#   %-10s %-16s  $%.1f/term  %.2fW/term  "
                    "sat %.4f  lat %.2f\n",
                    toString(c.family), c.topoSpec.c_str(),
                    c.costPerTerminal, c.powerPerTerminal,
                    pt.satThroughput, pt.lowLoadLatency);
    }

    if (!opt.jsonPath.empty() &&
        writeDesignSearch(opt.jsonPath, spec, result, opt.seed,
                          "design_search"))
        std::printf("# wrote %s\n", opt.jsonPath.c_str());
    return 0;
}
