/**
 * @file
 * Figure 11: cost per node of the four topologies, 64 to 64K nodes,
 * at constant capacity.
 *
 * Expected shape: the butterfly is cheapest through ~4K; the
 * flattened butterfly is 35-53% cheaper than the folded Clos (which
 * steps at the 1K->2K stage boundary); the hypercube is by far the
 * most expensive (one router per node).  The paper's N=1K link-count
 * example (flattened butterfly 992 inter-router links vs 2048 for
 * the Clos) is printed for verification.
 */

#include <cstdio>

#include "cost/topology_cost.h"

int
main()
{
    using namespace fbfly;
    TopologyCostModel model;

    std::printf("Figure 11: cost per node ($)\n");
    std::printf("%8s %10s %10s %10s %10s %12s\n", "N", "fbfly",
                "bfly", "clos", "hcube", "fbfly-vs-clos");
    for (std::int64_t n = 64; n <= 65536; n *= 2) {
        const double f =
            model.price(model.flattenedButterfly(n)).total() / n;
        const double b =
            model.price(model.conventionalButterfly(n)).total() / n;
        const double c =
            model.price(model.foldedClos(n)).total() / n;
        const double h =
            model.price(model.hypercube(n)).total() / n;
        std::printf("%8lld %10.1f %10.1f %10.1f %10.1f %11.1f%%\n",
                    static_cast<long long>(n), f, b, c, h,
                    100.0 * (1.0 - f / c));
    }

    const auto fb1k = model.flattenedButterfly(1024);
    const auto clos1k = model.foldedClos(1024);
    std::printf("\nN=1K inter-router links: flattened butterfly %lld "
                "(paper: 31x32 = 992), folded Clos %lld "
                "(paper: 2048)\n",
                static_cast<long long>(fb1k.totalLinks(false)),
                static_cast<long long>(clos1k.totalLinks(false)));

    std::printf("\ncost breakdown at N=4K:\n");
    for (const auto &inv :
         {model.flattenedButterfly(4096),
          model.conventionalButterfly(4096), model.foldedClos(4096),
          model.hypercube(4096)}) {
        const auto p = model.price(inv);
        std::printf("  %-34s routers $%9.0f  links $%9.0f\n",
                    inv.topology.c_str(), p.routerCost, p.linkCost);
    }
    return 0;
}
