/**
 * @file
 * Figure 14 / Section 5.1.2: what to do with a router's spare ports.
 *
 * A radix-k router building a flattened butterfly at the smallest
 * workable n' usually has ports left over (k' < k).  The paper's two
 * alternatives for a 4-ary 2-flat built from radix-8 routers
 * (k' = 7, one spare port):
 *   (a) redundant channels — double the dimension-1 bandwidth;
 *   (b) increased scalability — stretch the dimension to 5 routers,
 *       growing the network from 16 to 20 nodes.
 * Both are priced with the Section 4 cost model; as the paper notes,
 * neither changes the topology's fundamental character, and the
 * redundant links add cost roughly linearly.
 */

#include <cstdio>

#include "cost/topology_cost.h"
#include "topology/flattened_butterfly.h"

using namespace fbfly;

int
main()
{
    TopologyCostModel model;

    std::printf("Figure 14: using the spare ports of a 4-ary 2-flat "
                "(radix-8 routers, k' = 7)\n\n");

    // Baseline: 4-ary 2-flat.
    Inventory base = model.kAryNFlat(4, 2);
    const double base_cost = model.price(base).total();
    std::printf("(0) baseline 4-ary 2-flat: N = %lld, %lld routers, "
                "%lld links, $%.0f\n",
                static_cast<long long>(base.numNodes),
                static_cast<long long>(base.totalRouters()),
                static_cast<long long>(base.totalLinks(false)),
                base_cost);

    // (a) Redundant dimension-1 channels: every inter-router link
    // doubled (the dotted links of Figure 14(a)).
    Inventory redundant = base;
    for (auto &g : redundant.links) {
        if (g.label != "terminal")
            g.count *= 2;
    }
    const double red_cost = model.price(redundant).total();
    std::printf("(a) redundant channels:    N = %lld, %lld routers, "
                "%lld links, $%.0f (+%.0f%%)\n",
                static_cast<long long>(redundant.numNodes),
                static_cast<long long>(redundant.totalRouters()),
                static_cast<long long>(redundant.totalLinks(false)),
                red_cost, 100.0 * (red_cost / base_cost - 1.0));

    // (b) Increased scalability: the spare port stretches the single
    // dimension from 4 to 5 routers (Figure 14(b)): 5 routers x 4
    // terminals = 20 nodes, 5*4 = 20 unidirectional links.
    Inventory stretched;
    stretched.topology = "stretched 2-flat (5 routers)";
    stretched.numNodes = 20;
    stretched.direct = true;
    stretched.routers.push_back(
        {5, 8 * model.cost().signalsPerPort * 2.0, "radix-8"});
    stretched.links.push_back({LinkLocale::Backplane, 0.0, 2 * 20,
                               model.cost().signalsPerPort,
                               "terminal"});
    stretched.links.push_back({LinkLocale::LocalCable,
                               model.packaging().localCableM,
                               5 * 4, model.cost().signalsPerPort,
                               "dim1"});
    const double str_cost = model.price(stretched).total();
    std::printf("(b) increased scalability: N = %lld, %lld routers, "
                "%lld links, $%.0f ($%.1f/node vs $%.1f/node)\n",
                static_cast<long long>(stretched.numNodes),
                static_cast<long long>(stretched.totalRouters()),
                static_cast<long long>(stretched.totalLinks(false)),
                str_cost, str_cost / 20.0, base_cost / 16.0);

    // The same trade at the paper's scale: radix-64 routers at 1K
    // nodes leave one spare port (k' = 63).
    std::printf("\nAt scale: radix-64 routers, N = 1K (k' = 63, one "
                "spare port/router):\n");
    Inventory big = model.flattenedButterfly(1024);
    Inventory big_red = big;
    for (auto &g : big_red.links) {
        if (g.label == "dim1")
            g.count = g.count + big.totalRouters();
    }
    std::printf("  +1 redundant dim-1 link/router: $%.1f -> $%.1f "
                "per node\n",
                model.price(big).total() / 1024.0,
                model.price(big_red).total() / 1024.0);
    return 0;
}
