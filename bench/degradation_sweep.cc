/**
 * @file
 * Graceful degradation under random link failures on the 8-ary
 * 2-flat (k' = 14, n' = 1, N = 64).
 *
 * For failed-link fractions 0 .. 10% this bench compares MIN AD,
 * UGAL and VAL on uniform random traffic: the saturation throughput
 * (offered = 1.0) and a low-load latency point (offered = 0.2).
 * Every algorithm sees the identical deterministic fault set at each
 * fraction.
 *
 * Expected shape: with 0 faults each algorithm reproduces its
 * fault-free baseline; as links fail, the adaptive algorithms (MIN
 * AD, UGAL) mask the dead ports and spread load over the surviving
 * channels of each dimension's complete graph, retaining strictly
 * more accepted throughput than oblivious VAL, whose dimension-order
 * subroutes pay an escape detour for every failed channel they
 * cross.
 *
 * All runs are watchdog-backed and end with an explicit status —
 * the sweep cannot hang (docs/FAULTS.md).  The cells execute on the
 * parallel sweep engine (--threads N, --json PATH; docs/SWEEPS.md).
 */

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "harness/degradation.h"
#include "routing/min_adaptive.h"
#include "routing/ugal.h"
#include "routing/valiant.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

using namespace fbfly;
using namespace fbfly::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(argc, argv);

    FlattenedButterfly topo(8, 2);
    UniformRandom pattern(topo.numNodes());

    MinAdaptive min_ad(topo);
    Ugal ugal(topo, false);
    Valiant val(topo);
    const std::vector<RoutingAlgorithm *> algos = {&min_ad, &ugal,
                                                   &val};

    DegradationConfig cfg;
    cfg.exp = withObs(defaultPhasing(), opt);
    cfg.exp.seed = opt.seed;
    cfg.threads = opt.threads;
    cfg.net.vcDepth = 8; // scaled with the small network

    std::printf("# graceful degradation, %s, uniform random\n",
                topo.name().c_str());
    std::printf("%10s %7s %12s %10s %12s %8s %12s %12s\n", "fraction",
                "links", "algorithm", "sat_tput", "sat_status",
                "latency", "low_status", "dropped");
    std::vector<SweepPointRecord> records;
    const auto t0 = std::chrono::steady_clock::now();
    const auto points =
        runDegradationSweep(topo, algos, pattern, cfg, &records);
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    for (const auto &pt : points) {
        std::printf("%10.3f %4d/%-2d %12s %10.4f %12s ", pt.fraction,
                    pt.failedLinks, pt.totalLinks,
                    pt.algorithm.c_str(), pt.saturation.accepted,
                    toString(pt.saturation.status));
        if (pt.lowLoad.latencyValid())
            std::printf("%8.2f", pt.lowLoad.avgLatency);
        else
            std::printf("%8s", "-");
        std::printf(" %12s %12llu\n", toString(pt.lowLoad.status),
                    static_cast<unsigned long long>(
                        pt.lowLoad.measuredDropped));
    }

    if (!opt.jsonPath.empty()) {
        SweepRunMeta meta;
        meta.bench = "degradation_sweep";
        meta.description =
            "graceful degradation under random link failures "
            "(8-ary 2-flat, uniform random)";
        if (writeSweepResults(opt.jsonPath, meta, records, opt.seed,
                              ThreadPool::resolveThreads(opt.threads),
                              wall))
            std::printf("# wrote %s\n", opt.jsonPath.c_str());
    }
    return 0;
}
