/**
 * @file
 * Ablation: the introduction's motivation — low-radix k-ary n-cubes
 * "are unable to take full advantage of increased router bandwidth".
 *
 * At equal node count, the torus spends its (scarce, wide) ports on
 * long multi-hop paths; the high-radix flattened butterfly reaches
 * any router in one hop.  This bench contrasts hop count and
 * zero-load latency at 64 and 256 nodes under uniform random
 * traffic, and the saturation behaviour under the tornado pattern
 * that historically motivated non-minimal routing on tori.
 */

#include <cstdio>

#include "harness/experiment.h"
#include "routing/clos_ad.h"
#include "routing/torus_dor.h"
#include "topology/flattened_butterfly.h"
#include "topology/torus.h"
#include "traffic/traffic_pattern.h"

using namespace fbfly;

namespace
{

void
compareAt(int k)
{
    const std::int64_t nodes = static_cast<std::int64_t>(k) * k;
    Torus torus(k, 2);
    TorusDor torus_algo(torus);
    FlattenedButterfly fb(k, 2);
    ClosAd fb_algo(fb);
    UniformRandom ur(nodes);

    ExperimentConfig e;
    e.warmupCycles = 500;
    e.measureCycles = 500;
    e.drainCycles = 1500;

    NetworkConfig t_cfg;
    t_cfg.vcDepth = 32 / torus_algo.numVcs();
    NetworkConfig f_cfg;
    f_cfg.vcDepth = 32 / fb_algo.numVcs();

    const auto t_r =
        runLoadPoint(torus, torus_algo, ur, t_cfg, e, 0.2);
    const auto f_r = runLoadPoint(fb, fb_algo, ur, f_cfg, e, 0.2);
    std::printf("N=%-5lld %-14s hops %5.2f  latency %6.2f\n",
                static_cast<long long>(nodes),
                torus.name().c_str(), t_r.avgHops, t_r.avgLatency);
    std::printf("N=%-5lld %-14s hops %5.2f  latency %6.2f\n\n",
                static_cast<long long>(nodes), fb.name().c_str(),
                f_r.avgHops, f_r.avgLatency);
}

} // namespace

int
main()
{
    std::printf("Low-radix torus vs high-radix flattened butterfly, "
                "uniform random at 0.2 load\n\n");
    compareAt(8);
    compareAt(16);

    // Tornado on the torus: DOR drives the whole pattern the same
    // way around each ring.
    Torus torus(8, 2);
    TorusDor algo(torus);
    GroupTornado tornado(torus.numNodes(), 8);
    UniformRandom ur(torus.numNodes());
    ExperimentConfig e;
    e.warmupCycles = 500;
    e.measureCycles = 500;
    e.drainCycles = 1500;
    NetworkConfig cfg;
    cfg.vcDepth = 32 / algo.numVcs();
    std::printf("8-ary 2-cube saturation: uniform %.3f vs tornado "
                "%.3f flits/node/cycle\n",
                runLoadPoint(torus, algo, ur, cfg, e, 0.6).accepted,
                runLoadPoint(torus, algo, tornado, cfg, e, 0.6)
                    .accepted);
    std::printf("(the flattened butterfly with global adaptive "
                "routing holds ~0.5 on its\nworst case — see "
                "fig04_routing — without the torus's long hop "
                "chains)\n");
    return 0;
}
