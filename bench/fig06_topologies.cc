/**
 * @file
 * Figure 6 (and Table 1): topology comparison at N = 1024 with
 * bisection bandwidth held constant.
 *
 *  - flattened butterfly: 32-ary 2-flat, CLOS AD, 2 VCs;
 *  - conventional butterfly: 32-ary 2-fly, destination-based, 1 VC;
 *  - folded Clos: 2 levels, 32 terminals + 16 uplinks per leaf
 *    (the 2:1 taper that equalizes bisection — half the bandwidth
 *    is spent load-balancing to the middle stage), adaptive
 *    sequential routing, 1 VC;
 *  - hypercube: 10-cube, e-cube routing, 1 VC, half-bandwidth
 *    channels (period 2) for equal bisection.
 *
 * Total buffering is 32 flits/port everywhere (VCs x depth).
 *
 * Load points execute on the parallel sweep engine (--threads N,
 * --json PATH; docs/SWEEPS.md).
 */

#include "bench_util.h"
#include "routing/butterfly_dest.h"
#include "routing/clos_ad.h"
#include "routing/folded_clos_adaptive.h"
#include "routing/hypercube_ecube.h"
#include "topology/butterfly.h"
#include "topology/flattened_butterfly.h"
#include "topology/folded_clos.h"
#include "topology/hypercube.h"
#include "traffic/traffic_pattern.h"

using namespace fbfly;
using namespace fbfly::bench;

namespace
{

void
queueSweep(SweepEngine &engine, const ExperimentConfig &phasing,
           const Topology &topo, RoutingAlgorithm &algo,
           const TrafficPattern &pattern, const char *figure,
           const std::vector<double> &loads, Cycle period = 1)
{
    NetworkConfig netcfg;
    netcfg.vcDepth = 32 / algo.numVcs();
    netcfg.channelPeriod = period;
    engine.addLoadSweep(std::string(figure) + " " + topo.name() +
                            " / " + algo.name() + " / " +
                            pattern.name(),
                        topo, algo, pattern, netcfg, phasing,
                        loads);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(argc, argv);

    constexpr std::int64_t kNodes = 1024;

    FlattenedButterfly fb(32, 2);
    Butterfly bf(32, 2);
    FoldedClos fc(kNodes, 32, 16);
    Hypercube hc(10);

    ClosAd fb_algo(fb);
    ButterflyDest bf_algo(bf);
    FoldedClosAdaptive fc_algo(fc);
    HypercubeEcube hc_algo(hc);

    UniformRandom ur(kNodes);
    AdversarialNeighbor wc(kNodes, 32);

    std::printf("Figure 6 / Table 1: topologies at N=1024, constant "
                "bisection bandwidth\n");
    std::printf("  %-22s %-20s %d VCs\n", fb.name().c_str(),
                fb_algo.name().c_str(), fb_algo.numVcs());
    std::printf("  %-22s %-20s %d VCs\n", bf.name().c_str(),
                bf_algo.name().c_str(), bf_algo.numVcs());
    std::printf("  %-22s %-20s %d VCs\n", fc.name().c_str(),
                fc_algo.name().c_str(), fc_algo.numVcs());
    std::printf("  %-22s %-20s %d VCs (half-bandwidth channels)\n",
                hc.name().c_str(), hc_algo.name().c_str(),
                hc_algo.numVcs());

    SweepEngine engine(sweepConfig(opt));
    const ExperimentConfig phasing = withObs(defaultPhasing(), opt);

    // (a) uniform random.
    queueSweep(engine, phasing, fb, fb_algo, ur, "fig6a",
               loadSweep(1.0));
    queueSweep(engine, phasing, bf, bf_algo, ur, "fig6a",
               loadSweep(1.0));
    queueSweep(engine, phasing, fc, fc_algo, ur, "fig6a",
               halfCapacitySweep());
    queueSweep(engine, phasing, hc, hc_algo, ur, "fig6a",
               loadSweep(1.0), 2);

    // (b) worst case.
    queueSweep(engine, phasing, fb, fb_algo, wc, "fig6b",
               halfCapacitySweep());
    queueSweep(engine, phasing, bf, bf_algo, wc, "fig6b",
               {0.02, 0.05, 0.2, 0.5});
    queueSweep(engine, phasing, fc, fc_algo, wc, "fig6b",
               halfCapacitySweep());
    queueSweep(engine, phasing, hc, hc_algo, wc, "fig6b",
               halfCapacitySweep(), 2);

    printLoadRecords(engine.run());
    finishBench(engine, opt, "fig06_topologies",
                "Figure 6 / Table 1: topology comparison at N=1024");
    return 0;
}
