/**
 * @file
 * Figure 2: network size (N) scalability as the radix (k') and
 * dimension (n') are varied.
 *
 * For each dimensionality n' and router radix k', prints the largest
 * flattened butterfly (N = k^(n'+1), k = 1 + (k'-1)/(n'+1)) the
 * radix supports.  Reproduces the paper's observations: k' < 16
 * scales poorly, k' = 32 needs many dimensions, and k' = 61 reaches
 * 64K nodes with only three dimensions.
 */

#include <cstdio>

#include "topology/flattened_butterfly.h"

int
main()
{
    using fbfly::FlattenedButterfly;

    std::printf("Figure 2: N vs radix k' for n' = 1..4\n");
    std::printf("%6s %14s %14s %14s %14s\n", "k'", "n'=1", "n'=2",
                "n'=3", "n'=4");
    for (int kp = 4; kp <= 128; kp += kp < 16 ? 4 : 8) {
        std::printf("%6d", kp);
        for (int np = 1; np <= 4; ++np) {
            const auto n = FlattenedButterfly::maxNodes(kp, np);
            if (n < 2)
                std::printf(" %14s", "-");
            else
                std::printf(" %14lld", static_cast<long long>(n));
        }
        std::printf("\n");
    }

    // The paper's highlighted data points.
    std::printf("\nhighlights:\n");
    std::printf("  k'=61, n'=3 -> N = %lld (paper: 64K nodes with "
                "three dimensions)\n",
                static_cast<long long>(
                    FlattenedButterfly::maxNodes(61, 3)));
    std::printf("  k'=32, n'=3 -> N = %lld\n",
                static_cast<long long>(
                    FlattenedButterfly::maxNodes(32, 3)));
    std::printf("  k'=15, n'=3 -> N = %lld (low-radix routers scale "
                "poorly)\n",
                static_cast<long long>(
                    FlattenedButterfly::maxNodes(15, 3)));
    return 0;
}
