/**
 * @file
 * Table 4: the (k, n) parameters of every 4K-node flattened
 * butterfly and the resulting (k', n'), plus the Section 5.1.2
 * fixed-radix sizing rules.
 */

#include <cstdio>

#include "common/radix.h"
#include "topology/flattened_butterfly.h"

int
main()
{
    using namespace fbfly;

    std::printf("Table 4: k-ary n-flat parameters for N = 4K\n");
    std::printf("%6s %6s %6s %6s\n", "k", "n", "k'", "n'");
    const int ks[] = {64, 16, 8, 4, 2};
    const int ns[] = {2, 3, 4, 6, 12};
    for (int i = 0; i < 5; ++i) {
        FlattenedButterfly topo(ks[i], ns[i]);
        std::printf("%6d %6d %6d %6d\n", ks[i], ns[i], topo.radix(),
                    topo.numDims());
    }

    std::printf("\nSection 5.1.2 sizing with radix-64 routers:\n");
    for (const std::int64_t n : {std::int64_t{1024},
                                 std::int64_t{65536}}) {
        const int np = FlattenedButterfly::minDimsForRadix(64, n);
        std::printf("  N = %6lld -> n' = %d, effective radix k' = "
                    "%d\n",
                    static_cast<long long>(n), np,
                    FlattenedButterfly::effectiveRadix(64, np));
    }
    return 0;
}
