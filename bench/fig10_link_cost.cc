/**
 * @file
 * Figure 10 (and Table 3): (a) the ratio of link cost to total
 * network cost and (b) the average cable length, as network size
 * grows, for the four topologies at constant capacity.
 */

#include <cstdio>

#include "cost/topology_cost.h"

int
main()
{
    using namespace fbfly;
    TopologyCostModel model;
    const PackagingModel &pkg = model.packaging();

    std::printf("Table 3 packaging assumptions:\n");
    std::printf("  nodes per cabinet  %d\n", pkg.nodesPerCabinet);
    std::printf("  density            %.0f nodes/m^2\n",
                pkg.densityNodesPerM2);
    std::printf("  cable overhead     %.0f m\n\n", pkg.cableOverheadM);

    std::printf("Figure 10(a): link cost / total cost\n");
    std::printf("%8s %10s %10s %10s %10s\n", "N", "fbfly", "bfly",
                "clos", "hcube");
    for (std::int64_t n = 128; n <= 65536; n *= 2) {
        std::printf("%8lld %10.3f %10.3f %10.3f %10.3f\n",
                    static_cast<long long>(n),
                    model.price(model.flattenedButterfly(n))
                        .linkFraction(),
                    model.price(model.conventionalButterfly(n))
                        .linkFraction(),
                    model.price(model.foldedClos(n)).linkFraction(),
                    model.price(model.hypercube(n)).linkFraction());
    }

    std::printf("\nFigure 10(b): average cable length (m, incl. "
                "vertical overhead)\n");
    std::printf("%8s %10s %10s %10s %10s\n", "N", "fbfly", "bfly",
                "clos", "hcube");
    for (std::int64_t n = 128; n <= 65536; n *= 2) {
        std::printf("%8lld %10.2f %10.2f %10.2f %10.2f\n",
                    static_cast<long long>(n),
                    model.flattenedButterfly(n).averageCableLength(),
                    model.conventionalButterfly(n)
                        .averageCableLength(),
                    model.foldedClos(n).averageCableLength(),
                    model.hypercube(n).averageCableLength());
    }
    return 0;
}
