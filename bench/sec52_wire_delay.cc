/**
 * @file
 * Section 5.2 (wire delay): latency comparison with channel
 * latencies derived from physical cable lengths.
 *
 * The flattened butterfly packages like a direct network with
 * minimal Manhattan distance — its dimension-1 channels are short
 * local cables — while the folded Clos routes every packet through a
 * central cabinet, paying the global cable delay twice.  This bench
 * reproduces the section's claim on the N = 4K configurations at a
 * load below the minimal-routing cap, then shows the effect
 * shrinking as misrouting starts.
 */

#include <cstdio>

#include "harness/experiment.h"
#include "harness/wire_delay.h"
#include "routing/clos_ad.h"
#include "routing/folded_clos_adaptive.h"
#include "routing/min_adaptive.h"
#include "topology/flattened_butterfly.h"
#include "topology/folded_clos.h"
#include "traffic/traffic_pattern.h"

using namespace fbfly;

int
main()
{
    constexpr std::int64_t kNodes = 4096;
    PackagingModel pkg;
    WireDelayModel wire;

    std::printf("Section 5.2: wire-delay-aware latency at N=4K "
                "(%.2f m/cycle signalling)\n\n",
                wire.metersPerCycle);

    FlattenedButterfly fb(16, 3);
    MinAdaptive fb_min(fb);
    ClosAd fb_clos(fb);
    FoldedClos fc(kNodes, 32, 16);
    FoldedClosAdaptive fc_algo(fc);
    AdversarialNeighbor wc(kNodes, 32);

    ExperimentConfig e;
    e.warmupCycles = 400;
    e.measureCycles = 400;
    e.drainCycles = 2000;

    const auto fb_lat = fbflyArcLatencies(fb, pkg, wire);
    const auto fc_lat = foldedClosArcLatencies(fc, pkg, wire);

    std::printf("%-34s %8s %12s %10s\n", "network / routing",
                "load", "latency", "hops");
    for (const double load : {0.02, 0.1, 0.3}) {
        {
            NetworkConfig cfg;
            cfg.vcDepth = 32 / fb_min.numVcs();
            cfg.arcLatencies = fb_lat;
            const auto r =
                runLoadPoint(fb, fb_min, wc, cfg, e, load);
            std::printf("%-34s %8.2f %12.2f %10.2f\n",
                        "16-ary 3-flat / MIN AD", load,
                        r.avgLatency, r.avgHops);
        }
        {
            NetworkConfig cfg;
            cfg.vcDepth = 32 / fb_clos.numVcs();
            cfg.arcLatencies = fb_lat;
            const auto r =
                runLoadPoint(fb, fb_clos, wc, cfg, e, load);
            std::printf("%-34s %8.2f %12.2f %10.2f\n",
                        "16-ary 3-flat / CLOS AD", load,
                        r.avgLatency, r.avgHops);
        }
        {
            NetworkConfig cfg;
            cfg.vcDepth = 32 / fc_algo.numVcs();
            cfg.arcLatencies = fc_lat;
            const auto r =
                runLoadPoint(fc, fc_algo, wc, cfg, e, load);
            std::printf("%-34s %8.2f %12.2f %10.2f\n\n",
                        "folded Clos / adaptive", load,
                        r.avgLatency, r.avgHops);
        }
    }

    std::printf("Every folded-Clos packet crosses two global cables "
                "(~%llu cycles each);\nthe flattened butterfly's "
                "minimal route rides one short dimension-1 cable.\n",
                static_cast<unsigned long long>(fc_lat[0]));
    return 0;
}
