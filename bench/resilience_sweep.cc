/**
 * @file
 * Transient-error resilience on the 8-ary 2-flat (k' = 14, n' = 1,
 * N = 64).
 *
 * For per-flit error rates 0 .. 1e-3 this bench compares MIN AD,
 * UGAL and VAL on uniform random traffic with the link-layer retry
 * protocol enabled: the latency and retransmission overhead at a
 * fixed 0.4 load, and the accepted throughput at saturation
 * (offered = 1.0).  Every algorithm faces the identical
 * deterministic error statistics at each rate, and every measured
 * packet is audited by the end-to-end delivery oracle — the protocol
 * must absorb all injected corruption and erasure without a single
 * drop, duplicate, reorder or corrupted ejection.
 *
 * Expected shape: the zero-rate row is the protocol-overhead control
 * and reproduces the error-free baseline bit-identically (the retry
 * protocol is timing-transparent when it never retransmits).  As the
 * rate grows, latency inflates by the retransmission round trips and
 * saturation throughput erodes by the replayed wire slots; the
 * retransmit rate tracks the injected error rate closely because
 * nearly every error costs one go-back-N replay window.
 *
 * All runs are watchdog-backed and end with an explicit status.  The
 * cells execute on the parallel sweep engine (--threads N,
 * --json PATH; docs/SWEEPS.md); error draws are channel-private, so
 * results are bit-identical at any thread count (docs/FAULTS.md).
 */

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "harness/resilience.h"
#include "routing/min_adaptive.h"
#include "routing/ugal.h"
#include "routing/valiant.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

using namespace fbfly;
using namespace fbfly::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(argc, argv);

    FlattenedButterfly topo(8, 2);
    UniformRandom pattern(topo.numNodes());

    MinAdaptive min_ad(topo);
    Ugal ugal(topo, false);
    Valiant val(topo);
    const std::vector<RoutingAlgorithm *> algos = {&min_ad, &ugal,
                                                   &val};

    ResilienceConfig cfg;
    cfg.exp = withObs(defaultPhasing(), opt);
    cfg.exp.seed = opt.seed;
    cfg.threads = opt.threads;
    cfg.net.vcDepth = 8; // scaled with the small network

    std::printf("# transient-error resilience, %s, uniform random\n",
                topo.name().c_str());
    std::printf("%10s %12s %8s %10s %10s %12s %8s %6s\n", "rate",
                "algorithm", "latency", "sat_tput", "retx_rate",
                "crc_rej", "timeouts", "oracle");
    std::vector<SweepPointRecord> records;
    const auto t0 = std::chrono::steady_clock::now();
    const auto points =
        runResilienceSweep(topo, algos, pattern, cfg, &records);
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    for (const auto &pt : points) {
        std::printf("%10.1e %12s ", pt.errorRate,
                    pt.algorithm.c_str());
        if (pt.fixedLoad.latencyValid())
            std::printf("%8.2f", pt.fixedLoad.avgLatency);
        else
            std::printf("%8s", toString(pt.fixedLoad.status));
        std::printf(" %10.4f", pt.saturation.accepted);
        if (std::isnan(pt.fixedLoad.retransmitRate))
            std::printf(" %10s", "-");
        else
            std::printf(" %10.2e", pt.fixedLoad.retransmitRate);
        const LinkStats &ls = pt.fixedLoad.link;
        const bool clean =
            (!pt.fixedLoad.deliveryChecked ||
             pt.fixedLoad.delivery.clean()) &&
            (!pt.saturation.deliveryChecked ||
             pt.saturation.delivery.clean());
        std::printf(" %12llu %8llu %6s\n",
                    static_cast<unsigned long long>(ls.crcRejected),
                    static_cast<unsigned long long>(ls.timeouts),
                    clean ? "clean" : "DIRTY");
    }

    if (!opt.jsonPath.empty()) {
        SweepRunMeta meta;
        meta.bench = "resilience_sweep";
        meta.description =
            "latency/throughput inflation and retransmission cost "
            "versus transient bit-error rate (8-ary 2-flat, uniform "
            "random, link-level retry enabled)";
        meta.extra = resilienceMetadata(cfg);
        if (writeSweepResults(opt.jsonPath, meta, records, opt.seed,
                              ThreadPool::resolveThreads(opt.threads),
                              wall))
            std::printf("# wrote %s\n", opt.jsonPath.c_str());
    }
    return 0;
}
