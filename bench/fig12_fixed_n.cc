/**
 * @file
 * Figure 12: N = 4K flattened butterflies at every feasible
 * dimensionality (the Table 4 configurations), under uniform random
 * traffic.
 *
 * (a) VAL routing (2 VCs): throughput stays at 50% of capacity for
 *     every configuration (constant bisection), while zero-load
 *     latency grows with n' (more hops per phase).
 * (b) MIN AD routing with total storage per physical channel held at
 *     64 flits split over n' VCs: latency again grows with n', and
 *     throughput degrades as the per-VC buffers shrink.
 *
 * The (2,12) configuration has 2048 radix-12 routers; windows are
 * kept short so the whole figure regenerates in minutes.
 */

#include "bench_util.h"
#include "routing/min_adaptive.h"
#include "routing/valiant.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

using namespace fbfly;
using namespace fbfly::bench;

namespace
{

struct Config
{
    int k;
    int n;
};

constexpr Config kConfigs[] = {{64, 2}, {16, 3}, {8, 4}, {4, 6},
                               {2, 12}};
constexpr int kBufferPerPc = 64;

ExperimentConfig
phasing4k()
{
    // The 4K-node networks (up to 2048 routers, ~25k flit-hops per
    // cycle for the 2-ary 12-flat) get shorter windows so the whole
    // figure regenerates in minutes; kilocycle windows are ample
    // for the ~50-cycle latencies involved.
    ExperimentConfig e;
    e.warmupCycles = 300;
    e.measureCycles = 300;
    e.drainCycles = 1200;
    e.seed = 2007;
    return e;
}

} // namespace

int
main()
{
    std::printf("Figure 12: N=4K flattened butterflies "
                "(Table 4 configurations), uniform random\n");

    // (a) VAL.
    for (const auto &cfg : kConfigs) {
        FlattenedButterfly topo(cfg.k, cfg.n);
        Valiant algo(topo);
        UniformRandom pattern(topo.numNodes());
        NetworkConfig netcfg;
        netcfg.vcDepth = kBufferPerPc / algo.numVcs();
        printSeriesHeader("fig12a VAL " + topo.name());
        for (const auto &r :
             runLoadSweep(topo, algo, pattern, netcfg, phasing4k(),
                          {0.1, 0.25, 0.4, 0.45, 0.5})) {
            printPoint(r);
        }
    }

    // (b) MIN AD, 64 flits per physical channel split over n' VCs.
    for (const auto &cfg : kConfigs) {
        FlattenedButterfly topo(cfg.k, cfg.n);
        MinAdaptive algo(topo);
        UniformRandom pattern(topo.numNodes());
        NetworkConfig netcfg;
        netcfg.vcDepth = kBufferPerPc / algo.numVcs();
        printSeriesHeader("fig12b MIN-AD " + topo.name() + " (" +
                          std::to_string(algo.numVcs()) + " VCs x " +
                          std::to_string(netcfg.vcDepth) + " flits)");
        for (const auto &r :
             runLoadSweep(topo, algo, pattern, netcfg, phasing4k(),
                          {0.2, 0.5, 0.8, 0.95})) {
            printPoint(r);
        }
    }
    return 0;
}
