/**
 * @file
 * Dynamic service mode on the 8-ary 2-flat (k' = 14, n' = 1, N = 64).
 *
 * Each point runs a long-horizon *service* simulation
 * (harness/churn.h): links and routers fail and are repaired on
 * MTBF/MTTR renewal schedules, offered load follows a diurnal
 * triangle ramp, and an epoch adaptor re-selects the routing policy
 * (MIN AD / UGAL / VAL) from channel-utilization telemetry.  The
 * sweep compares a churn-free control against increasing link and
 * link+router churn intensities.
 *
 * Headline columns: accepted throughput over the horizon, p99 and
 * p99.9 labeled latency, service events (down/repair), recovery-time
 * SLO (events recovered, mean and max fault->throughput-restored
 * cycles), and the end-to-end delivery audit — which must be clean
 * across every kill/repair/reconfiguration transition (losses to
 * link repair are accounted as expected drops, never as silent
 * corruption).
 *
 * Expected shape: the churn-free row reproduces a plain adaptive run;
 * under churn, every down event inside the horizon yields a finite
 * recovery-time sample (throughput restored once the repair lands and
 * the adaptor re-balances), p99.9 inflates well before p99 moves, and
 * the oracle stays clean throughout.
 *
 * Deterministic for any --threads N: churn schedules are derived from
 * per-point seeds on per-entity RNG streams, and the adaptor reads
 * per-point telemetry only (docs/FAULTS.md, "Churn and repair").
 */

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "harness/churn.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

using namespace fbfly;
using namespace fbfly::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(argc, argv);

    FlattenedButterfly topo(8, 2);
    UniformRandom pattern(topo.numNodes());

    NetworkConfig netcfg;
    netcfg.vcDepth = 8; // scaled with the small network

    ChurnSweepConfig cfg;
    cfg.threads = opt.threads;
    cfg.masterSeed = opt.seed;
    // Tight SLO: a single-router loss dips delivered throughput by
    // ~1/8, so a 95% floor actually registers router events while a
    // single link loss stays absorbed by adaptive routing.
    cfg.run.recoveryFraction = 0.95;
    if (opt.trace) {
        cfg.run.obs.traceEnabled = true;
        cfg.run.obs.metricsEnabled = true;
    }

    const auto addCase = [&](const std::string &label,
                             double link_mtbf, double link_mttr,
                             double router_mtbf, double router_mttr) {
        ChurnCase c;
        c.label = label;
        c.churn.linkMtbf = link_mtbf;
        c.churn.linkMttr = link_mttr;
        c.churn.routerMtbf = router_mtbf;
        c.churn.routerMttr = router_mttr;
        cfg.cases.push_back(std::move(c));
    };
    addCase("no churn", 0, 0, 0, 0);
    addCase("link mtbf=8000", 8000, 400, 0, 0);
    addCase("link mtbf=4000", 4000, 400, 0, 0);
    addCase("link mtbf=4000 + router mtbf=16000", 4000, 400, 16000,
            800);

    std::printf("# dynamic service mode, %s, uniform random, "
                "horizon=%llu cycles\n",
                topo.name().c_str(),
                static_cast<unsigned long long>(
                    cfg.run.horizonCycles));
    std::printf("%-36s %10s %8s %8s %6s\n", "case", "status",
                "accept", "p99", "oracle");

    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<SweepPointRecord> records =
        runChurnSweep(topo, pattern, netcfg, cfg);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

    for (const auto &rec : records) {
        const LoadPointResult &r = rec.load;
        std::printf("%-36s %10s ", rec.series.c_str(),
                    toString(r.status));
        std::printf("%8.4f ", r.accepted);
        if (r.measuredPackets > 0)
            std::printf("%8.1f ", r.p99Latency);
        else
            std::printf("%8s ", "-");
        std::printf("%6s\n",
                    !r.deliveryChecked || r.delivery.clean()
                        ? "clean"
                        : "DIRTY");
        // p99.9, event counts and the recovery-time distribution
        // live in the point's churn extension block.
        std::printf("    %s\n", rec.extraJson.c_str());
    }
    std::printf("\n# %zu points, %d thread(s): %.2fs wall\n",
                records.size(),
                ThreadPool::resolveThreads(opt.threads), wall);

    // Merge per-point flit traces (index order — the determinism
    // contract) into one Perfetto-loadable file.
    std::string trace_file;
    if (opt.trace) {
        std::vector<TracePoint> points;
        points.reserve(records.size());
        for (const auto &rec : records) {
            TracePoint pt;
            pt.label = "point " + std::to_string(rec.index) + ": " +
                       rec.series;
            pt.trace = rec.load.trace.get();
            points.push_back(std::move(pt));
        }
        trace_file = opt.traceOut.empty() ? "churn_sweep.trace.json"
                                          : opt.traceOut;
        if (writeChromeTrace(trace_file, points))
            std::printf("# wrote %s (open in ui.perfetto.dev)\n",
                        trace_file.c_str());
        else
            trace_file.clear();
    }

    if (!opt.jsonPath.empty()) {
        SweepRunMeta meta;
        meta.bench = "churn_sweep";
        meta.description =
            "long-horizon link/router churn with repair, diurnal "
            "load, epoch-driven routing adaptation and recovery-time "
            "SLOs (8-ary 2-flat, uniform random)";
        meta.traceFile = trace_file;
        const auto num = [](double v) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%g", v);
            return std::string(buf);
        };
        meta.extra = {
            {"warmup_cycles", std::to_string(cfg.run.warmupCycles)},
            {"horizon_cycles",
             std::to_string(cfg.run.horizonCycles)},
            {"base_load", num(cfg.run.baseLoad)},
            {"peak_load", num(cfg.run.peakLoad)},
            {"diurnal_period",
             std::to_string(cfg.run.diurnalPeriod)},
            {"epoch_cycles", std::to_string(cfg.run.epochCycles)},
            {"recovery_window",
             std::to_string(cfg.run.recoveryWindow)},
            {"recovery_fraction", num(cfg.run.recoveryFraction)},
        };
        if (writeSweepResults(opt.jsonPath, meta, records, opt.seed,
                              ThreadPool::resolveThreads(opt.threads),
                              wall))
            std::printf("# wrote %s\n", opt.jsonPath.c_str());
    }
    return 0;
}
