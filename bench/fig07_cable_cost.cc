/**
 * @file
 * Figure 7 (and Table 2): the cable cost model.
 *
 * (a) Cost per differential signal of electrical cables as a
 *     function of length: overhead (connectors/shielding/assembly)
 *     plus copper per meter.
 * (b) The repeatered model beyond the 6 m critical length: each
 *     additional 6 m segment adds roughly one connector overhead,
 *     producing the step at 6 m.
 */

#include <cstdio>

#include "cost/cost_model.h"

int
main()
{
    using namespace fbfly;
    CostModel cm;

    std::printf("Table 2 component costs:\n");
    std::printf("  router (dev + chip)          $%.0f + $%.0f\n",
                cm.routerDevelopmentCost, cm.routerChipCost);
    std::printf("  backplane per signal         $%.2f\n",
                cm.backplanePerSignal);
    std::printf("  electrical per signal        $%.2f + $%.2f/m\n",
                cm.cableOverheadPerSignal, cm.cablePerSignalMeter);
    std::printf("  optical per signal           $%.2f\n",
                cm.opticalPerSignal);
    std::printf("  critical length (repeaters)  %.0f m\n\n",
                cm.criticalLengthM);

    std::printf("Figure 7(b): electrical cable cost per signal vs "
                "length (with repeaters)\n");
    std::printf("%8s %12s\n", "meters", "$/signal");
    for (double len = 1.0; len <= 20.0; len += 1.0) {
        std::printf("%8.1f %12.2f\n", len,
                    cm.electricalSignalCost(len));
    }

    std::printf("\nnearby-router (2 m) cable: $%.2f/signal "
                "(paper: $5.34)\n", cm.electricalSignalCost(2.0));
    std::printf("optical crossover: repeatered electrical stays "
                "cheaper up to ~%.0f m,\nwhich is why the Section 4 "
                "analysis uses electrical signalling throughout\n",
                cm.opticalCrossoverLength());
    return 0;
}
