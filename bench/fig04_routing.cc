/**
 * @file
 * Figure 4: routing algorithm comparison on the 32-ary 2-flat
 * (k' = 63, n' = 1, N = 1024).
 *
 * (a) Uniform random traffic: every algorithm but VAL approaches
 *     100% throughput; VAL caps at 50% with doubled zero-load hops.
 * (b) Worst-case traffic (nodes of R_i -> random node of R_{i+1}):
 *     MIN AD is limited to ~1/32 ≈ 3%; the non-minimal algorithms
 *     reach 50%, and CLOS AD's adaptive intermediate choice roughly
 *     halves latency near saturation relative to UGAL-S.
 *
 * Buffering is held at numVcs * vcDepth = 32 flits per port
 * (Section 3.2).
 *
 * Every load point is an independent simulation; they execute on the
 * parallel sweep engine (--threads N, bit-identical results for any
 * N) and can be exported as JSON (--json PATH).  See docs/SWEEPS.md.
 */

#include "bench_util.h"
#include "routing/clos_ad.h"
#include "routing/min_adaptive.h"
#include "routing/ugal.h"
#include "routing/valiant.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

using namespace fbfly;
using namespace fbfly::bench;

namespace
{

void
queueAlgo(SweepEngine &engine, const ExperimentConfig &phasing,
          const FlattenedButterfly &topo, RoutingAlgorithm &algo,
          const TrafficPattern &pattern, const char *figure,
          const std::vector<double> &loads)
{
    NetworkConfig netcfg;
    netcfg.vcDepth = 32 / algo.numVcs();
    engine.addLoadSweep(std::string(figure) + " " + algo.name() +
                            " / " + pattern.name(),
                        topo, algo, pattern, netcfg, phasing,
                        loads);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(argc, argv);

    FlattenedButterfly topo(32, 2);
    UniformRandom ur(topo.numNodes());
    AdversarialNeighbor wc(topo.numNodes(), topo.k());

    MinAdaptive min_ad(topo);
    Valiant val(topo);
    Ugal ugal(topo, false);
    Ugal ugal_s(topo, true);
    ClosAd clos_ad(topo);

    std::printf("Figure 4: routing algorithms on the 32-ary 2-flat "
                "(N=1024, k'=%d)\n", topo.radix());

    SweepEngine engine(sweepConfig(opt));
    const ExperimentConfig phasing = withObs(defaultPhasing(), opt);

    // (a) uniform random.
    queueAlgo(engine, phasing, topo, min_ad, ur, "fig4a",
              loadSweep(1.0));
    queueAlgo(engine, phasing, topo, val, ur, "fig4a",
              halfCapacitySweep());
    queueAlgo(engine, phasing, topo, ugal, ur, "fig4a",
              loadSweep(1.0));
    queueAlgo(engine, phasing, topo, ugal_s, ur, "fig4a",
              loadSweep(1.0));
    queueAlgo(engine, phasing, topo, clos_ad, ur, "fig4a",
              loadSweep(1.0));

    // (b) worst case.  MIN AD saturates at ~3%, so a couple of
    // points suffice to show the plateau.
    queueAlgo(engine, phasing, topo, min_ad, wc, "fig4b",
              {0.02, 0.05, 0.2, 0.5});
    queueAlgo(engine, phasing, topo, val, wc, "fig4b",
              halfCapacitySweep());
    queueAlgo(engine, phasing, topo, ugal, wc, "fig4b",
              halfCapacitySweep());
    queueAlgo(engine, phasing, topo, ugal_s, wc, "fig4b",
              halfCapacitySweep());
    queueAlgo(engine, phasing, topo, clos_ad, wc, "fig4b",
              halfCapacitySweep());

    printLoadRecords(engine.run());
    finishBench(engine, opt, "fig04_routing",
                "Figure 4: routing algorithms on the 32-ary 2-flat");
    return 0;
}
