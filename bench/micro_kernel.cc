/**
 * @file
 * google-benchmark micro-benchmarks of the simulator kernel: cycle
 * throughput of the network step loop at various loads, routing
 * decision cost, RNG, and the analytic models.  These guard against
 * performance regressions in the hot paths the figure benches rely
 * on.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "cost/topology_cost.h"
#include "network/network.h"
#include "routing/clos_ad.h"
#include "routing/min_adaptive.h"
#include "topology/flattened_butterfly.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

namespace
{

using namespace fbfly;

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_NetworkStep(benchmark::State &state)
{
    const double load = static_cast<double>(state.range(0)) / 100.0;
    FlattenedButterfly topo(32, 2);
    MinAdaptive algo(topo);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 32;
    Network net(topo, algo, &pattern, cfg);
    BernoulliInjection inj(load, 1, 7);

    // Warm the network into steady state.
    for (int c = 0; c < 500; ++c) {
        inj.tick(net, false);
        net.step();
    }
    for (auto _ : state) {
        inj.tick(net, false);
        net.step();
    }
    state.SetItemsProcessed(state.iterations() *
                            topo.numNodes());
}
BENCHMARK(BM_NetworkStep)->Arg(10)->Arg(50)->Arg(90);

void
BM_ClosAdStep(benchmark::State &state)
{
    FlattenedButterfly topo(32, 2);
    ClosAd algo(topo);
    AdversarialNeighbor pattern(topo.numNodes(), topo.k());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 16;
    Network net(topo, algo, &pattern, cfg);
    BernoulliInjection inj(0.45, 1, 7);
    for (int c = 0; c < 500; ++c) {
        inj.tick(net, false);
        net.step();
    }
    for (auto _ : state) {
        inj.tick(net, false);
        net.step();
    }
}
BENCHMARK(BM_ClosAdStep);

void
BM_CostModelSweep(benchmark::State &state)
{
    TopologyCostModel model;
    for (auto _ : state) {
        double total = 0.0;
        for (std::int64_t n = 64; n <= 65536; n *= 2) {
            total +=
                model.price(model.flattenedButterfly(n)).total();
        }
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_CostModelSweep);

} // namespace

BENCHMARK_MAIN();
