/**
 * @file
 * Kernel micro-benchmark: a small fig04-style load sweep on the
 * 8-ary 2-flat, run through the parallel sweep engine, plus a serial
 * timing of the simulator's step-loop hot path.
 *
 * This is the regression guard for the hot paths the figure benches
 * rely on, and the CI smoke test of the sweep engine itself: it runs
 * in seconds, exercises the thread pool (--threads N), and emits the
 * full fbfly-sweep-v1 JSON document (--json PATH) that CI uploads as
 * an artifact.  The JSON's wall_seconds_points_sum /
 * wall_seconds_total ratio ("parallel_speedup") records the
 * sweep-level parallel speedup of the run; the step-rate kernels
 * land in the metadata object.  See docs/SWEEPS.md.
 */

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "routing/min_adaptive.h"
#include "routing/valiant.h"
#include "topology/flattened_butterfly.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

using namespace fbfly;
using namespace fbfly::bench;

namespace
{

/** Cycles/second of the network step loop at @p load (serial). */
double
stepRate(double load)
{
    FlattenedButterfly topo(8, 2);
    MinAdaptive algo(topo);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 8;
    Network net(topo, algo, &pattern, cfg);
    BernoulliInjection inj(load, 1, 7);

    // Warm the network into steady state.
    for (int c = 0; c < 500; ++c) {
        inj.tick(net, false);
        net.step();
    }
    constexpr int kCycles = 20000;
    const auto t0 = std::chrono::steady_clock::now();
    for (int c = 0; c < kCycles; ++c) {
        inj.tick(net, false);
        net.step();
    }
    const double secs =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    return secs > 0.0 ? kCycles / secs : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(argc, argv);

    FlattenedButterfly topo(8, 2);
    UniformRandom ur(topo.numNodes());
    MinAdaptive min_ad(topo);
    Valiant val(topo);

    ExperimentConfig phasing;
    phasing.warmupCycles = 500;
    phasing.measureCycles = 1000;
    phasing.drainCycles = 3000;
    phasing.seed = opt.seed;
    phasing = withObs(phasing, opt);

    std::printf("micro kernel: sweep-engine smoke sweep on the "
                "8-ary 2-flat (N=%lld)\n",
                static_cast<long long>(topo.numNodes()));

    SweepEngine engine(sweepConfig(opt));
    {
        NetworkConfig netcfg;
        netcfg.vcDepth = 8;
        engine.addLoadSweep("micro MIN AD / uniform", topo, min_ad,
                            ur, netcfg, phasing,
                            loadSweep(0.9, 0.1));
        engine.addLoadSweep("micro VAL / uniform", topo, val, ur,
                            netcfg, phasing,
                            {0.1, 0.2, 0.3, 0.4, 0.45});
    }
    printLoadRecords(engine.run());

    // Serial hot-path kernels (regression guard for the step loop).
    // Rates are numeric metadata (JSON numbers, not strings — the
    // fbfly-sweep-v1 schema test enforces this).
    std::printf("\n# step-loop kernels (serial)\n");
    std::vector<std::pair<std::string, double>> extra_numbers;
    for (const double load : {0.02, 0.1, 0.5, 0.9}) {
        const double rate = stepRate(load);
        std::printf("step rate @ load %.2f: %.0f cycles/s\n", load,
                    rate);
        char key[48];
        std::snprintf(key, sizeof key,
                      "step_rate_cycles_per_sec_load_%02d",
                      static_cast<int>(load * 100));
        extra_numbers.emplace_back(key, rate);
    }

    finishBench(engine, opt, "micro_kernel",
                "kernel micro-benchmark: sweep-engine smoke sweep + "
                "serial step-loop rates",
                {}, std::move(extra_numbers));
    return 0;
}
