/**
 * @file
 * Figure 13: cost per node of the N = 4K flattened butterflies of
 * Table 4 as the dimensionality n' increases, with the average
 * cable length line.
 *
 * Expected shape: average cable length falls with n' (lower
 * dimensions span smaller subsystems), but the growth in link and
 * router count more than offsets it — the highest-radix,
 * lowest-dimensionality configuration is cheapest (paper: +45% from
 * n'=1 to 2, +300% to n'=5).
 */

#include <cstdio>

#include "cost/topology_cost.h"

int
main()
{
    using namespace fbfly;
    TopologyCostModel model;

    std::printf("Figure 13: N=4K flattened butterfly cost vs n'\n");
    std::printf("%4s %4s %6s %12s %12s %14s %12s\n", "k", "n", "n'",
                "routers", "links", "$/node", "avg cable m");

    const int ks[] = {64, 16, 8, 4, 2};
    const int ns[] = {2, 3, 4, 6, 12};
    double base = 0.0;
    for (int i = 0; i < 5; ++i) {
        const Inventory inv = model.kAryNFlat(ks[i], ns[i]);
        const double per_node =
            model.price(inv).total() /
            static_cast<double>(inv.numNodes);
        if (i == 0)
            base = per_node;
        std::printf("%4d %4d %6d %12lld %12lld %10.1f (%+4.0f%%) "
                    "%10.2f\n",
                    ks[i], ns[i], ns[i] - 1,
                    static_cast<long long>(inv.totalRouters()),
                    static_cast<long long>(inv.totalLinks(false)),
                    per_node, 100.0 * (per_node / base - 1.0),
                    inv.averageCableLength());
    }
    return 0;
}
