/**
 * @file
 * Figure 5: dynamic response — time to deliver a batch of worst-case
 * traffic, normalized to batch size.
 *
 * Small batches expose transient load imbalance: UGAL's greedy
 * allocator lets all of a router's inputs pick the same short
 * minimal queue before the queueing state updates, so it performs
 * very poorly; UGAL-S fixes the allocator but still picks random
 * intermediates; CLOS AD removes both sources of imbalance.  As the
 * batch grows, normalized latency approaches the inverse of each
 * algorithm's throughput (~2.0 at 50%).
 *
 * Every (batch size, algorithm) cell is an independent runBatch
 * simulation; they execute on the parallel sweep engine (--threads
 * N, --json PATH; docs/SWEEPS.md).
 */

#include <cstdio>

#include "bench_util.h"
#include "routing/clos_ad.h"
#include "routing/ugal.h"
#include "routing/valiant.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

using namespace fbfly;
using namespace fbfly::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(argc, argv);

    FlattenedButterfly topo(32, 2);
    AdversarialNeighbor wc(topo.numNodes(), topo.k());

    Valiant val(topo);
    Ugal ugal(topo, false);
    Ugal ugal_s(topo, true);
    ClosAd clos_ad(topo);
    RoutingAlgorithm *algos[] = {&val, &ugal, &ugal_s, &clos_ad};
    constexpr std::size_t kAlgos = std::size(algos);

    const std::vector<int> batches = {1,  2,   5,   10,  20,
                                      50, 100, 200, 500, 1000};

    // Queue batch-major, algorithm-minor — the same order the table
    // prints — so record index i maps to (row i / kAlgos,
    // column i % kAlgos).
    SweepEngine engine(sweepConfig(opt));
    for (const int batch : batches) {
        for (auto *a : algos) {
            NetworkConfig netcfg;
            netcfg.vcDepth = 32 / a->numVcs();
            char series[48];
            std::snprintf(series, sizeof series, "fig5 %s",
                          a->name().c_str());
            engine.addBatch(series, topo, *a, wc, netcfg, batch);
        }
    }
    const auto &records = engine.run();

    std::printf("Figure 5: batch completion time / batch size "
                "(worst-case traffic, N=1024)\n\n");
    std::printf("%8s", "batch");
    for (auto *a : algos)
        std::printf(" %10s", a->name().c_str());
    std::printf("\n");

    for (std::size_t row = 0; row < batches.size(); ++row) {
        std::printf("%8d", batches[row]);
        for (std::size_t col = 0; col < kAlgos; ++col) {
            const auto &rec = records[row * kAlgos + col];
            std::printf(" %10.2f", rec.batch.normalizedLatency);
        }
        std::printf("\n");
    }

    finishBench(engine, opt, "fig05_dynamic_response",
                "Figure 5: batch completion time, worst-case "
                "traffic");
    return 0;
}
