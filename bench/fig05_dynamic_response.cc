/**
 * @file
 * Figure 5: dynamic response — time to deliver a batch of worst-case
 * traffic, normalized to batch size.
 *
 * Small batches expose transient load imbalance: UGAL's greedy
 * allocator lets all of a router's inputs pick the same short
 * minimal queue before the queueing state updates, so it performs
 * very poorly; UGAL-S fixes the allocator but still picks random
 * intermediates; CLOS AD removes both sources of imbalance.  As the
 * batch grows, normalized latency approaches the inverse of each
 * algorithm's throughput (~2.0 at 50%).
 */

#include <cstdio>

#include "bench_util.h"
#include "routing/clos_ad.h"
#include "routing/ugal.h"
#include "routing/valiant.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

using namespace fbfly;

int
main()
{
    FlattenedButterfly topo(32, 2);
    AdversarialNeighbor wc(topo.numNodes(), topo.k());

    Valiant val(topo);
    Ugal ugal(topo, false);
    Ugal ugal_s(topo, true);
    ClosAd clos_ad(topo);
    RoutingAlgorithm *algos[] = {&val, &ugal, &ugal_s, &clos_ad};

    std::printf("Figure 5: batch completion time / batch size "
                "(worst-case traffic, N=1024)\n\n");
    std::printf("%8s", "batch");
    for (auto *a : algos)
        std::printf(" %10s", a->name().c_str());
    std::printf("\n");

    for (const int batch : {1, 2, 5, 10, 20, 50, 100, 200, 500,
                            1000}) {
        std::printf("%8d", batch);
        for (auto *a : algos) {
            NetworkConfig netcfg;
            netcfg.vcDepth = 32 / a->numVcs();
            const BatchResult r =
                runBatch(topo, *a, wc, netcfg, 2007, batch);
            std::printf(" %10.2f", r.normalizedLatency);
        }
        std::printf("\n");
    }
    return 0;
}
