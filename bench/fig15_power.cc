/**
 * @file
 * Figure 15 (and Table 5): interconnection network power per node as
 * the network scales, for the four topologies at constant capacity.
 *
 * Expected shape: the hypercube consumes the most; the butterfly and
 * flattened butterfly the least, with the flattened butterfly
 * benefiting from dedicated short-reach SerDes on its dimension-1
 * links; the flattened butterfly's advantage over the folded Clos is
 * largest while it needs only two dimensions (4K-8K) and shrinks
 * when a third dimension is added.
 */

#include <cstdio>

#include "power/power_model.h"

int
main()
{
    using namespace fbfly;
    TopologyCostModel model;
    PowerModel power;

    std::printf("Table 5 power parameters:\n");
    std::printf("  P_switch    %.0f W (radix-64 router)\n",
                power.switchPowerW);
    std::printf("  P_link_gg   %.0f mW/signal\n",
                1e3 * power.linkGlobalW);
    std::printf("  P_link_gl   %.0f mW/signal\n",
                1e3 * power.linkGlobalLocalW);
    std::printf("  P_link_ll   %.0f mW/signal\n\n",
                1e3 * power.linkLocalW);

    std::printf("Figure 15: network power per node (W)\n");
    std::printf("%8s %10s %10s %10s %10s %12s\n", "N", "fbfly",
                "bfly", "clos", "hcube", "fbfly-vs-clos");
    for (std::int64_t n = 64; n <= 65536; n *= 2) {
        const double f =
            power.power(model.flattenedButterfly(n)).total() / n;
        const double b =
            power.power(model.conventionalButterfly(n)).total() / n;
        const double c =
            power.power(model.foldedClos(n)).total() / n;
        const double h =
            power.power(model.hypercube(n)).total() / n;
        std::printf("%8lld %10.2f %10.2f %10.2f %10.2f %11.1f%%\n",
                    static_cast<long long>(n), f, b, c, h,
                    100.0 * (1.0 - f / c));
    }
    return 0;
}
