/**
 * @file
 * Ablation: bursty (on/off) traffic.
 *
 * The paper argues that transient load imbalance — not just average
 * load — separates the routing algorithms (Section 3.2 / Figure 5).
 * Markov-modulated injection makes that point in an open-loop
 * setting: at the same average offered load, longer bursts punish
 * the oblivious intermediate choice (VAL, UGAL-S) and reward
 * CLOS AD's adaptive intermediates.
 */

#include <cstdio>

#include "network/network.h"
#include "routing/clos_ad.h"
#include "routing/ugal.h"
#include "routing/valiant.h"
#include "topology/flattened_butterfly.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

using namespace fbfly;

namespace
{

double
burstyLatency(const FlattenedButterfly &topo, RoutingAlgorithm &algo,
              const TrafficPattern &pattern, double load,
              double burst)
{
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 32 / algo.numVcs();
    cfg.seed = 2007;
    Network net(topo, algo, &pattern, cfg);

    OnOffInjection onoff(load, burst, 1, 99);
    BernoulliInjection bern(load, 1, 99);
    auto tick = [&](bool measured) {
        if (burst > 1.0)
            onoff.tick(net, measured);
        else
            bern.tick(net, measured);
        net.step();
    };

    for (int c = 0; c < 1500; ++c)
        tick(false);
    for (int c = 0; c < 1500; ++c)
        tick(true);
    for (int c = 0; c < 6000 && net.stats().measuredEjected <
                                    net.stats().measuredCreated;
         ++c) {
        tick(false);
    }
    return net.stats().packetLatency.mean();
}

} // namespace

int
main()
{
    FlattenedButterfly topo(32, 2);
    AdversarialNeighbor wc(topo.numNodes(), topo.k());

    Valiant val(topo);
    Ugal ugal_s(topo, true);
    ClosAd clos_ad(topo);
    RoutingAlgorithm *algos[] = {&val, &ugal_s, &clos_ad};

    std::printf("Bursty worst-case traffic at 0.40 average load "
                "(N=1024)\n\n");
    std::printf("%12s", "mean burst");
    for (auto *a : algos)
        std::printf(" %10s", a->name().c_str());
    std::printf("\n");

    for (const double burst : {1.0, 8.0, 32.0, 128.0}) {
        std::printf("%12.0f", burst);
        for (auto *a : algos) {
            std::printf(" %10.2f",
                        burstyLatency(topo, *a, wc, 0.40, burst));
        }
        std::printf("\n");
    }
    std::printf("\n(burst 1 = Bernoulli; latencies in cycles; "
                "longer bursts amplify the\ntransient-imbalance gap "
                "between oblivious and adaptive intermediates)\n");
    return 0;
}
