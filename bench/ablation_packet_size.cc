/**
 * @file
 * Ablation: packet size (the paper's footnote 2: "Different packet
 * sizes do not impact the comparison results in this section").
 *
 * Re-runs the worst-case routing comparison with 1-, 2- and 4-flit
 * packets.  Multi-flit packets exercise the wormhole (strict FIFO +
 * VC ownership) switch path instead of the single-flit speedup
 * path, so absolute throughput dips slightly with size, but the
 * comparison the paper cares about — MIN AD collapsing at ~1/k
 * while the non-minimal adaptive algorithms hold near 50% — is
 * unchanged.
 */

#include <cstdio>

#include "harness/experiment.h"
#include "routing/clos_ad.h"
#include "routing/min_adaptive.h"
#include "routing/valiant.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

using namespace fbfly;

int
main()
{
    FlattenedButterfly topo(16, 2); // 256 nodes keeps this quick
    AdversarialNeighbor wc(topo.numNodes(), topo.k());

    MinAdaptive min_ad(topo);
    Valiant val(topo);
    ClosAd clos_ad(topo);
    RoutingAlgorithm *algos[] = {&min_ad, &val, &clos_ad};

    ExperimentConfig e;
    e.warmupCycles = 800;
    e.measureCycles = 800;
    e.drainCycles = 2500;

    std::printf("Footnote 2 ablation: worst-case saturation "
                "throughput vs packet size (N=256)\n\n");
    std::printf("%12s", "packet size");
    for (auto *a : algos)
        std::printf(" %10s", a->name().c_str());
    std::printf("\n");

    for (const int size : {1, 2, 4}) {
        std::printf("%12d", size);
        for (auto *a : algos) {
            NetworkConfig cfg;
            cfg.vcDepth = 32 / a->numVcs();
            cfg.packetSize = size;
            const double t =
                runLoadPoint(topo, *a, wc, cfg, e, 0.9).accepted;
            std::printf(" %10.3f", t);
        }
        std::printf("\n");
    }
    return 0;
}
