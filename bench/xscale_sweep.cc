/**
 * @file
 * Extreme-scale sweep: k-ary n-flats from ~4k to ~10^5 terminals,
 * plus the self-relative shard-speedup and peak-RSS study of the
 * sharded step engine (docs/DESIGN.md "Sharded step engine",
 * docs/SWEEPS.md).
 *
 * Two questions, both paper-motivated — the flattened butterfly's
 * selling point is cost-efficient scaling to large node counts
 * (Sec. 6 sizes configurations up to 64k nodes), so the simulator
 * must reach that regime too:
 *
 *  1. *Does it fit?*  Low-load latency points on the 16-ary 3-flat
 *     (4k terminals), the 32-ary 3-flat (32k) and the 48-ary 3-flat
 *     (~110k) through the ordinary sweep engine, with the pooled
 *     channel/VC state keeping peak RSS per terminal bounded
 *     (`peak_rss_per_terminal_bytes` metadata; the shard-determinism
 *     suite asserts the same 16 KiB/terminal budget).
 *
 *  2. *Does sharding pay?*  A direct step-loop timing on the
 *     32k-terminal point at --shards 1/2/4/8, reported as
 *     `xscale_shard{N}_cycles_per_sec` plus self-relative
 *     `xscale_shard_speedup_{N}` ratios.  Results are bit-identical
 *     at every shard count (tests/test_shard_determinism.cc), so the
 *     speedup is free of semantic risk.  `hw_threads` records the
 *     machine's concurrency: tools/perf_smoke.py only enforces the
 *     >= 3x @ 8-shard floor when at least 8 hardware threads exist
 *     (on fewer cores the phased engine can only break even).
 *
 * Committed baseline: BENCH_xscale.json (regenerate on a clean HEAD
 * with `xscale_sweep --json BENCH_xscale.json`).
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "common/rss.h"
#include "routing/min_adaptive.h"
#include "topology/flattened_butterfly.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

using namespace fbfly;
using namespace fbfly::bench;

namespace
{

/** Cycles/second of the step loop on the 32-ary 3-flat (32k
 *  terminals) at @p shards, modest load. */
double
stepRateAtShards(int shards)
{
    FlattenedButterfly topo(32, 3); // 32768 terminals, 1024 routers
    MinAdaptive algo(topo);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 4;
    cfg.shards = shards;
    Network net(topo, algo, &pattern, cfg);
    BernoulliInjection inj(0.05, 1, 7);

    // Warm the network into steady state.
    for (int c = 0; c < 100; ++c) {
        inj.tick(net, false);
        net.step();
    }
    constexpr int kCycles = 400;
    const auto t0 = std::chrono::steady_clock::now();
    for (int c = 0; c < kCycles; ++c) {
        inj.tick(net, false);
        net.step();
    }
    const double secs =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    return secs > 0.0 ? kCycles / secs : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(argc, argv);

    // Scale ladder: 4k / 32k / ~110k terminals.  Topologies and
    // routers live for the whole run (the engine borrows them).
    FlattenedButterfly t16(16, 3); //   4096 terminals,  256 routers
    FlattenedButterfly t32(32, 3); //  32768 terminals, 1024 routers
    FlattenedButterfly t48(48, 3); // 110592 terminals, 2304 routers
    MinAdaptive min16(t16);
    MinAdaptive min32(t32);
    MinAdaptive min48(t48);
    UniformRandom ur16(t16.numNodes());
    UniformRandom ur32(t32.numNodes());
    UniformRandom ur48(t48.numNodes());

    std::printf("xscale: k-ary 3-flats at N=%lld / %lld / %lld "
                "(shards=%d)\n",
                static_cast<long long>(t16.numNodes()),
                static_cast<long long>(t32.numNodes()),
                static_cast<long long>(t48.numNodes()), opt.shards);

    NetworkConfig netcfg;
    netcfg.vcDepth = 4;
    netcfg.shards = opt.shards;

    // Short low-load windows: the study is memory/scale, not
    // saturation throughput (loads far below the ~50% worst-case
    // bound, so the points are valid latency samples).
    ExperimentConfig mid;
    mid.warmupCycles = 100;
    mid.measureCycles = 200;
    mid.drainCycles = 2000;
    mid.seed = opt.seed;
    mid = withObs(mid, opt);
    ExperimentConfig big = mid;
    big.warmupCycles = 50;
    big.measureCycles = 100;

    SweepEngine engine(sweepConfig(opt));
    engine.addLoadSweep("xscale 16-ary 3-flat / uniform", t16, min16,
                        ur16, netcfg, mid, {0.01, 0.02});
    engine.addLoadSweep("xscale 32-ary 3-flat / uniform", t32, min32,
                        ur32, netcfg, mid, {0.01, 0.02});
    engine.addLoadSweep("xscale 48-ary 3-flat / uniform", t48, min48,
                        ur48, netcfg, big, {0.01});
    printLoadRecords(engine.run());

    // Self-relative shard scaling on the 32k-terminal point.
    std::printf("\n# shard scaling (32-ary 3-flat, 32768 "
                "terminals)\n");
    std::vector<std::pair<std::string, double>> extra_numbers;
    double rate1 = 0.0;
    double speedup8 = 0.0;
    for (const int shards : {1, 2, 4, 8}) {
        const double rate = stepRateAtShards(shards);
        if (shards == 1)
            rate1 = rate;
        const double speedup = rate1 > 0.0 ? rate / rate1 : 0.0;
        if (shards == 8)
            speedup8 = speedup;
        std::printf("step rate @ %d shard(s): %.0f cycles/s "
                    "(speedup %.2fx)\n",
                    shards, rate, speedup);
        char key[48];
        std::snprintf(key, sizeof key,
                      "xscale_shard%d_cycles_per_sec", shards);
        extra_numbers.emplace_back(key, rate);
        if (shards > 1) {
            std::snprintf(key, sizeof key, "xscale_shard_speedup_%d",
                          shards);
            extra_numbers.emplace_back(key, speedup);
        }
    }

    const double hw_threads =
        static_cast<double>(std::thread::hardware_concurrency());
    const auto rss = static_cast<double>(peakRssBytes());
    const double terminals_largest =
        static_cast<double>(t48.numNodes());
    extra_numbers.emplace_back("hw_threads", hw_threads);
    extra_numbers.emplace_back("terminals_largest",
                               terminals_largest);
    extra_numbers.emplace_back("peak_rss_bytes", rss);
    extra_numbers.emplace_back("peak_rss_per_terminal_bytes",
                               rss / terminals_largest);
    std::printf("\nhw threads: %.0f\n", hw_threads);
    std::printf("peak RSS: %.0f bytes (%.1f bytes/terminal at "
                "N=%.0f)\n",
                rss, rss / terminals_largest, terminals_largest);
    if (hw_threads >= 8 && speedup8 < 3.0)
        std::printf("WARNING: 8-shard speedup %.2fx below the 3x "
                    "target despite %.0f hardware threads\n",
                    speedup8, hw_threads);

    finishBench(engine, opt, "xscale_sweep",
                "extreme-scale k-ary 3-flat sweep + self-relative "
                "shard speedups and peak-RSS-per-terminal gauge",
                {}, std::move(extra_numbers));
    return 0;
}
