#!/usr/bin/env python3
"""Perf smoke check: compare a fresh micro_kernel run to the
committed baseline.

Usage: perf_smoke.py CURRENT.json [BASELINE.json]

Reads the serial step-loop rates (``step_rate_cycles_per_sec_*``
metadata keys of the fbfly-sweep-v1 document) from both files and
fails when any load point of the current run falls below
``THRESHOLD`` times the committed baseline.

Documents without step_rate metadata (e.g. BENCH_churn_sweep.json)
fall back to per-point simulated-cycles-per-wall-second rates derived
from the ``warmup_cycles``/``horizon_cycles`` metadata and each
point's ``wall_seconds`` — the same parachute, one lane per sweep
point.

The committed baseline (BENCH_micro_kernel.json) is recorded on a
quiet dedicated machine; CI runners are slower and noisy, so the
threshold is deliberately generous — this is a parachute against
order-of-magnitude regressions (e.g. the active-set kernel silently
degrading to a full per-cycle scan), not a precision gate.  Track
fine-grained trends via the uploaded JSON artifacts instead.
"""

import json
import sys

THRESHOLD = 0.35  # fail below 35% of the committed baseline


def step_rates(path):
    with open(path) as f:
        doc = json.load(f)
    meta = doc.get("metadata", {})
    rates = {
        key: float(value)
        for key, value in meta.items()
        if key.startswith("step_rate_cycles_per_sec_")
    }
    if not rates:
        rates = point_rates(doc, meta, path)
    if not rates:
        sys.exit(f"error: no rate data derivable from {path}")
    return rates


def point_rates(doc, meta, path):
    """Fallback lane per sweep point: simulated cycles / wall second,
    for documents (churn sweeps) that carry no step_rate metadata."""
    try:
        cycles = float(meta["warmup_cycles"]) + float(
            meta["horizon_cycles"])
    except (KeyError, ValueError):
        return {}
    if cycles <= 0:
        return {}
    rates = {}
    for point in doc.get("points", []):
        wall = point.get("wall_seconds")
        if not isinstance(wall, (int, float)) or wall <= 0:
            print(f"note: skipping point {point.get('index')} of "
                  f"{path} (no usable wall_seconds)")
            continue
        key = f"point_{point.get('index')}_{point.get('series', '')}"
        rates[key] = cycles / wall
    return rates


def main(argv):
    if len(argv) not in (2, 3):
        sys.exit(f"usage: {argv[0]} CURRENT.json [BASELINE.json]")
    current = step_rates(argv[1])
    baseline = step_rates(
        argv[2] if len(argv) == 3 else "BENCH_micro_kernel.json")

    failures = []
    for key, base in sorted(baseline.items()):
        if key not in current:
            failures.append(f"{key}: missing from current run")
            continue
        cur = current[key]
        ratio = cur / base if base > 0 else float("inf")
        status = "ok" if ratio >= THRESHOLD else "FAIL"
        print(f"{status:>4}  {key}: {cur:.0f} vs baseline "
              f"{base:.0f} ({ratio:.2f}x, floor {THRESHOLD}x)")
        if ratio < THRESHOLD:
            failures.append(
                f"{key}: {cur:.0f} < {THRESHOLD} * {base:.0f}")
    if failures:
        print("\nperf smoke FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nperf smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
