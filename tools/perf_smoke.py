#!/usr/bin/env python3
"""Perf smoke check: compare a fresh micro_kernel run to the
committed baseline.

Usage: perf_smoke.py CURRENT.json [BASELINE.json]

Reads the serial step-loop rates (``step_rate_cycles_per_sec_*``
metadata keys of the fbfly-sweep-v1 document) from both files and
fails when any load point of the current run falls below
``THRESHOLD`` times the committed baseline.

Documents without step_rate metadata (e.g. BENCH_churn_sweep.json)
fall back to per-point simulated-cycles-per-wall-second rates derived
from the ``warmup_cycles``/``horizon_cycles`` metadata and each
point's ``wall_seconds`` — the same parachute, one lane per sweep
point.

Documents carrying xscale metadata (``xscale_shard_speedup_8`` from
bench/xscale_sweep) additionally get two self-relative lanes that
need no baseline at all: the peak-RSS-per-terminal ceiling (the
memory-lean budget of the sharded step engine) and, when the machine
actually has >= 8 hardware threads (``hw_threads`` metadata), the
>= 3x 8-shard speedup floor.  On smaller machines the speedup lane is
reported but skipped — a 2-core runner physically cannot show an
8-way win, and the engine's bit-identical-results contract means the
shard count never changes what is being measured.

Design-search documents (``schema: fbfly-pareto-v1`` from
bench/design_search) take a dedicated lane instead of the rate
comparison: the run's metadata must be internally consistent
(candidates >= survivors >= frontier >= 1, pruned + swept =
enumerated) and must match the committed BENCH_design_search.json
counts and family coverage exactly — the document is bit-identical
for any --threads/--shards, so any drift is a real behavior change,
not noise.

The committed baseline (BENCH_micro_kernel.json) is recorded on a
quiet dedicated machine; CI runners are slower and noisy, so the
threshold is deliberately generous — this is a parachute against
order-of-magnitude regressions (e.g. the active-set kernel silently
degrading to a full per-cycle scan), not a precision gate.  Track
fine-grained trends via the uploaded JSON artifacts instead.
"""

import json
import sys

THRESHOLD = 0.35  # fail below 35% of the committed baseline
XSCALE_SPEEDUP_FLOOR = 3.0  # 8-shard self-relative, >= 8 cores only
XSCALE_MIN_THREADS = 8
XSCALE_RSS_CEILING = 16 * 1024  # bytes per terminal


def load_doc(path):
    with open(path) as f:
        return json.load(f)


def step_rates(path, doc=None):
    if doc is None:
        doc = load_doc(path)
    meta = doc.get("metadata", {})
    rates = {
        key: float(value)
        for key, value in meta.items()
        if key.startswith("step_rate_cycles_per_sec_")
        or (key.startswith("xscale_shard")
            and key.endswith("_cycles_per_sec"))
    }
    if not rates:
        rates = point_rates(doc, meta, path)
    if not rates:
        sys.exit(f"error: no rate data derivable from {path}")
    return rates


def point_rates(doc, meta, path):
    """Fallback lane per sweep point: simulated cycles / wall second,
    for documents (churn sweeps) that carry no step_rate metadata."""
    try:
        cycles = float(meta["warmup_cycles"]) + float(
            meta["horizon_cycles"])
    except (KeyError, ValueError):
        return {}
    if cycles <= 0:
        return {}
    rates = {}
    for point in doc.get("points", []):
        wall = point.get("wall_seconds")
        if not isinstance(wall, (int, float)) or wall <= 0:
            print(f"note: skipping point {point.get('index')} of "
                  f"{path} (no usable wall_seconds)")
            continue
        key = f"point_{point.get('index')}_{point.get('series', '')}"
        rates[key] = cycles / wall
    return rates


def xscale_checks(meta):
    """Self-relative lanes of an xscale document: the peak-RSS
    budget always, the 8-shard speedup floor only on machines with
    enough hardware threads to show one."""
    failures = []

    rss = meta.get("peak_rss_per_terminal_bytes")
    if isinstance(rss, (int, float)) and rss > 0:
        status = "ok" if rss < XSCALE_RSS_CEILING else "FAIL"
        print(f"{status:>4}  peak_rss_per_terminal_bytes: {rss:.0f} "
              f"(ceiling {XSCALE_RSS_CEILING})")
        if rss >= XSCALE_RSS_CEILING:
            failures.append(
                f"peak_rss_per_terminal_bytes: {rss:.0f} >= "
                f"{XSCALE_RSS_CEILING}")
    else:
        failures.append("peak_rss_per_terminal_bytes: missing")

    speedup = meta.get("xscale_shard_speedup_8")
    threads = meta.get("hw_threads", 0)
    if not isinstance(speedup, (int, float)):
        failures.append("xscale_shard_speedup_8: missing")
    elif threads >= XSCALE_MIN_THREADS:
        status = ("ok" if speedup >= XSCALE_SPEEDUP_FLOOR
                  else "FAIL")
        print(f"{status:>4}  xscale_shard_speedup_8: {speedup:.2f}x "
              f"(floor {XSCALE_SPEEDUP_FLOOR}x, "
              f"hw_threads {threads:.0f})")
        if speedup < XSCALE_SPEEDUP_FLOOR:
            failures.append(
                f"xscale_shard_speedup_8: {speedup:.2f} < "
                f"{XSCALE_SPEEDUP_FLOOR}")
    else:
        print(f"skip  xscale_shard_speedup_8: {speedup:.2f}x "
              f"(only {threads:.0f} hardware thread(s), floor "
              f"needs >= {XSCALE_MIN_THREADS})")
    return failures


PARETO_COUNT_KEYS = ("candidates_enumerated", "candidates_pruned",
                     "survivors_swept", "frontier_size")
PARETO_REQUIRED_FAMILIES = ("fbfly", "dragonfly", "slimfly")


def pareto_checks(meta, base_meta):
    """Design-search lane: metadata sanity plus exact agreement with
    the committed baseline (the document is deterministic)."""
    failures = []
    counts = {}
    for key in PARETO_COUNT_KEYS:
        value = meta.get(key)
        if not isinstance(value, (int, float)):
            failures.append(f"{key}: missing or non-numeric")
            continue
        counts[key] = int(value)
    if len(counts) == len(PARETO_COUNT_KEYS):
        enumerated = counts["candidates_enumerated"]
        pruned = counts["candidates_pruned"]
        swept = counts["survivors_swept"]
        frontier = counts["frontier_size"]
        ok = (enumerated >= swept >= frontier >= 1
              and pruned + swept == enumerated)
        status = "ok" if ok else "FAIL"
        print(f"{status:>4}  pareto counts: {enumerated} enumerated "
              f"= {pruned} pruned + {swept} swept, "
              f"frontier {frontier}")
        if not ok:
            failures.append(
                f"inconsistent pareto counts: enumerated "
                f"{enumerated}, pruned {pruned}, swept {swept}, "
                f"frontier {frontier}")
    families = meta.get("families", "")
    family_set = set(families.split(",")) if families else set()
    for fam in PARETO_REQUIRED_FAMILIES:
        status = "ok" if fam in family_set else "FAIL"
        print(f"{status:>4}  family swept: {fam}")
        if fam not in family_set:
            failures.append(f"family '{fam}' missing from "
                            f"families '{families}'")
    for key in PARETO_COUNT_KEYS + ("families",):
        base = base_meta.get(key)
        cur = meta.get(key)
        if base is None:
            failures.append(f"{key}: missing from baseline")
            continue
        status = "ok" if cur == base else "FAIL"
        print(f"{status:>4}  {key}: {cur} vs baseline {base}")
        if cur != base:
            failures.append(f"{key}: {cur} != baseline {base}")
    return failures


def main(argv):
    if len(argv) not in (2, 3):
        sys.exit(f"usage: {argv[0]} CURRENT.json [BASELINE.json]")
    current_doc = load_doc(argv[1])
    if current_doc.get("schema") == "fbfly-pareto-v1":
        if len(argv) != 3:
            sys.exit(f"usage: {argv[0]} CURRENT.json BASELINE.json "
                     "(pareto documents need the baseline)")
        baseline_doc = load_doc(argv[2])
        failures = pareto_checks(current_doc.get("metadata", {}),
                                 baseline_doc.get("metadata", {}))
        if failures:
            print("\nperf smoke FAILED:")
            for f in failures:
                print(f"  {f}")
            return 1
        print("\nperf smoke passed")
        return 0
    current = step_rates(argv[1], current_doc)
    baseline = step_rates(
        argv[2] if len(argv) == 3 else "BENCH_micro_kernel.json")

    failures = []
    current_meta = current_doc.get("metadata", {})
    if "xscale_shard_speedup_8" in current_meta or \
            "peak_rss_per_terminal_bytes" in current_meta:
        failures += xscale_checks(current_meta)
    for key, base in sorted(baseline.items()):
        if key not in current:
            failures.append(f"{key}: missing from current run")
            continue
        cur = current[key]
        ratio = cur / base if base > 0 else float("inf")
        status = "ok" if ratio >= THRESHOLD else "FAIL"
        print(f"{status:>4}  {key}: {cur:.0f} vs baseline "
              f"{base:.0f} ({ratio:.2f}x, floor {THRESHOLD}x)")
        if ratio < THRESHOLD:
            failures.append(
                f"{key}: {cur:.0f} < {THRESHOLD} * {base:.0f}")
    if failures:
        print("\nperf smoke FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nperf smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
