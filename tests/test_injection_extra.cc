/**
 * @file
 * Tests for the bursty (on/off) injection process and the
 * channel-utilization instrumentation.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "network/network.h"
#include "routing/clos_ad.h"
#include "routing/min_adaptive.h"
#include "topology/flattened_butterfly.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

TEST(OnOffInjection, MatchesAverageOfferedLoad)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, &pattern, cfg);

    OnOffInjection inj(0.3, 16.0, 1, 5);
    EXPECT_NEAR(inj.offeredLoad(), 0.3, 1e-9);

    std::int64_t offered = 0;
    const int cycles = 20000;
    for (int c = 0; c < cycles; ++c) {
        const std::int64_t before = net.stats().pendingPackets;
        inj.tick(net, false);
        offered += net.stats().pendingPackets - before;
        net.step();
    }
    const double rate = static_cast<double>(offered) /
                        (static_cast<double>(cycles) *
                         topo.numNodes());
    EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(OnOffInjection, ArrivalsAreClumped)
{
    // Compare inter-arrival autocorrelation proxy: the number of
    // cycles in which a given node injects followed immediately by
    // another injection should far exceed the Bernoulli expectation.
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();

    // Sample the per-cycle injection indicator of node 0 through
    // enqueue deltas (the network is never stepped, so the source
    // queue length only grows and the delta is exact).
    auto clumpiness = [&](bool bursty) {
        Network net(topo, algo, &pattern, cfg);
        BernoulliInjection bern(0.25, 1, 7);
        OnOffInjection onoff(0.25, 32.0, 1, 7);
        int pairs = 0;
        int injections = 0;
        std::int64_t prev_len = 0;
        bool prev_injected = false;
        for (int c = 0; c < 30000; ++c) {
            if (bursty)
                onoff.tick(net, false);
            else
                bern.tick(net, false);
            const std::int64_t len =
                net.terminal(0).sourceQueueLength();
            // Queue grows (or stays while draining 1/cycle) when
            // node 0 injected this cycle; detect growth.
            const bool injected = len > prev_len;
            if (injected) {
                ++injections;
                if (prev_injected)
                    ++pairs;
            }
            prev_injected = injected;
            prev_len = len;
        }
        return injections > 0
            ? static_cast<double>(pairs) / injections : 0.0;
    };

    const double bernoulli_clump = clumpiness(false);
    const double bursty_clump = clumpiness(true);
    // Bernoulli: P(inject | injected last cycle) ~ 0.25.  On/off
    // with rate 1 while on: ~ (1 - 1/32) ~ 0.97.
    EXPECT_LT(bernoulli_clump, 0.35);
    EXPECT_GT(bursty_clump, 0.8);
}

TEST(OnOffInjectionDeath, RejectsInfeasibleParameters)
{
    EXPECT_DEATH(OnOffInjection(1.5, 8.0, 1, 1),
                 "offered load exceeds");
}

TEST(ChannelCounts, TrackAdversarialImbalance)
{
    // Under minimal routing and the worst-case pattern, one channel
    // per router carries everything: the max/avg channel-load ratio
    // over inter-router channels approaches the router degree.
    FlattenedButterfly topo(8, 2);
    MinAdaptive algo(topo);
    AdversarialNeighbor wc(topo.numNodes(), topo.k());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, &wc, cfg);
    BernoulliInjection inj(0.08, 1, 3); // below the 1/8 cap

    for (int c = 0; c < 3000; ++c) {
        inj.tick(net, false);
        net.step();
    }
    const auto counts = net.interRouterFlitCounts();
    ASSERT_EQ(counts.size(), topo.arcs().size());
    const std::uint64_t peak =
        *std::max_element(counts.begin(), counts.end());
    std::uint64_t total = 0;
    for (const auto c : counts)
        total += c;
    const double avg =
        static_cast<double>(total) / counts.size();
    EXPECT_GT(static_cast<double>(peak), 4.0 * avg)
        << "worst-case minimal routing must show hot channels";
}

TEST(ChannelCounts, UniformTrafficIsBalanced)
{
    FlattenedButterfly topo(8, 2);
    ClosAd algo(topo);
    UniformRandom ur(topo.numNodes());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 16;
    Network net(topo, algo, &ur, cfg);
    BernoulliInjection inj(0.5, 1, 3);
    for (int c = 0; c < 3000; ++c) {
        inj.tick(net, false);
        net.step();
    }
    const auto counts = net.interRouterFlitCounts();
    const std::uint64_t peak =
        *std::max_element(counts.begin(), counts.end());
    std::uint64_t total = 0;
    for (const auto c : counts)
        total += c;
    const double avg =
        static_cast<double>(total) / counts.size();
    EXPECT_LT(static_cast<double>(peak), 1.5 * avg);
}

} // namespace
} // namespace fbfly
