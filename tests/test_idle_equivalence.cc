/**
 * @file
 * Idle-equivalence regression suite for the simulation kernel.
 *
 * The active-set kernel skips components that hold no work; these
 * fixtures pin the *observable* behavior of scenarios dominated by
 * idle cycles so any kernel rewrite can be checked against the
 * pre-rewrite schedule byte for byte:
 *
 *  - a bursty hand-driven scenario (short injection bursts separated
 *    by long all-idle epochs), in a plain leg and a reliable-link
 *    leg whose retry timers must keep firing across the silence;
 *  - a near-zero-load sweep through the engine, compared both
 *    between --threads 1 and --threads 4 (bit-identical traces,
 *    metrics and scalar results) and against a committed fixture.
 *
 * Like the golden trace, the committed fixtures are integer-only
 * (trace text, counters, per-arc flit counts) so they are
 * byte-identical across platforms, optimization levels and
 * sanitizers.  Doubles (latency means, gauges) are compared
 * in-process between thread counts instead.  Regenerate with
 *
 *     FBFLY_REGEN_GOLDEN=1 ./fbfly_tests --gtest_filter='IdleEquiv*'
 *
 * and commit the new fixtures together with an explanation of why
 * the schedule changed.
 *
 * The scenarios themselves live in fixture_scenarios.h so the
 * shard-determinism suite can replay them at --shards N against the
 * same committed fixtures.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fixture_scenarios.h"
#include "harness/sweep.h"
#include "obs/metrics.h"

namespace fbfly
{
namespace
{

using fixtures::canonicalSweepText;
using fixtures::checkAgainstFixture;
using fixtures::kBurstyFixture;
using fixtures::kSweepFixture;
using fixtures::runBurstyScenario;
using fixtures::runIdleSweep;

TEST(IdleEquivalence, BurstyScenarioMatchesFixture)
{
    checkAgainstFixture(runBurstyScenario(), kBurstyFixture);
}

TEST(IdleEquivalence, BurstyScenarioIsReproducible)
{
    EXPECT_EQ(runBurstyScenario(), runBurstyScenario());
}

TEST(IdleEquivalence, SweepIdenticalAcrossThreadCountsAndFixture)
{
    const std::vector<SweepPointRecord> serial = runIdleSweep(1);
    const std::vector<SweepPointRecord> parallel = runIdleSweep(4);
    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_EQ(serial.size(), 2u);

    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        const LoadPointResult &a = serial[i].load;
        const LoadPointResult &b = parallel[i].load;
        EXPECT_EQ(serial[i].seed, parallel[i].seed);
        EXPECT_EQ(a.accepted, b.accepted);
        EXPECT_EQ(a.measuredPackets, b.measuredPackets);
        ASSERT_NE(a.trace, nullptr);
        ASSERT_NE(b.trace, nullptr);
        EXPECT_GT(a.trace->recorded(), 0u);
        EXPECT_EQ(a.trace->toText(), b.trace->toText());
        ASSERT_NE(a.metrics, nullptr);
        ASSERT_NE(b.metrics, nullptr);
        EXPECT_FALSE(a.metrics->empty());
        EXPECT_TRUE(*a.metrics == *b.metrics)
            << "MetricsRegistry diverged between thread counts";
    }

    // Both thread counts must match the committed pre-rewrite
    // fixture byte for byte (integer-only canonical form).
    const std::string text1 = canonicalSweepText(serial);
    const std::string text4 = canonicalSweepText(parallel);
    EXPECT_EQ(text1, text4);
    checkAgainstFixture(text1, kSweepFixture);
}

} // namespace
} // namespace fbfly
