/**
 * @file
 * Tests for the transient-error model (fault/error_model.h):
 * uniform and per-arc rates, validation, deterministic per-arc Rng
 * streams, and the self-describing metadata block.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "common/rng.h"
#include "fault/error_model.h"
#include "network/channel.h"
#include "network/flit.h"
#include "topology/flattened_butterfly.h"

namespace fbfly
{
namespace
{

TEST(ErrorModel, FreshModelHasNoErrors)
{
    FlattenedButterfly topo(4, 2); // 4 routers, K4, 12 arcs
    ErrorModel em(topo);
    EXPECT_FALSE(em.anyErrors());
    EXPECT_EQ(em.numArcs(), topo.arcs().size());
    EXPECT_TRUE(em.validateRates().empty());
    for (std::size_t i = 0; i < em.numArcs(); ++i) {
        EXPECT_EQ(em.arcRates(i).corrupt, 0.0);
        EXPECT_EQ(em.arcRates(i).erase, 0.0);
        EXPECT_FALSE(em.arcRates(i).any());
    }
}

TEST(ErrorModel, UniformRatesApplyToEveryArc)
{
    FlattenedButterfly topo(4, 2);
    ErrorModelConfig cfg;
    cfg.corruptRate = 1e-3;
    cfg.eraseRate = 1e-4;
    cfg.burstStart = 0.01;
    cfg.burstStop = 0.5;
    cfg.burstFactor = 10.0;
    ErrorModel em(topo, cfg);
    EXPECT_TRUE(em.anyErrors());
    EXPECT_TRUE(em.validateRates().empty());
    for (std::size_t i = 0; i < em.numArcs(); ++i) {
        const LinkErrorRates r = em.arcRates(i);
        EXPECT_EQ(r.corrupt, 1e-3);
        EXPECT_EQ(r.erase, 1e-4);
        EXPECT_EQ(r.burstStart, 0.01);
        EXPECT_EQ(r.burstStop, 0.5);
        EXPECT_EQ(r.burstFactor, 10.0);
    }

    em.setUniformRates(0.0, 0.0);
    EXPECT_FALSE(em.anyErrors());
}

TEST(ErrorModel, PerArcOverride)
{
    FlattenedButterfly topo(4, 2);
    ErrorModel em(topo);
    em.setArcRates(3, 0.5, 0.25);
    EXPECT_TRUE(em.anyErrors());
    EXPECT_EQ(em.arcRates(3).corrupt, 0.5);
    EXPECT_EQ(em.arcRates(3).erase, 0.25);
    EXPECT_EQ(em.arcRates(0).corrupt, 0.0);
    EXPECT_EQ(em.arcRates(0).erase, 0.0);
}

TEST(ErrorModel, ValidationCatchesBadConfigs)
{
    FlattenedButterfly topo(4, 2);
    {
        ErrorModelConfig cfg;
        cfg.corruptRate = 1.5;
        ErrorModel em(topo, cfg);
        EXPECT_FALSE(em.validateRates().empty());
    }
    {
        // corrupt + erase partition a single draw: their sum must
        // not exceed 1.
        ErrorModelConfig cfg;
        cfg.corruptRate = 0.7;
        cfg.eraseRate = 0.7;
        ErrorModel em(topo, cfg);
        EXPECT_FALSE(em.validateRates().empty());
    }
    {
        // Bursts can start but never stop: the bad state would be
        // absorbing by accident.
        ErrorModelConfig cfg;
        cfg.corruptRate = 0.01;
        cfg.burstStart = 0.1;
        cfg.burstStop = 0.0;
        ErrorModel em(topo, cfg);
        EXPECT_FALSE(em.validateRates().empty());
    }
    {
        ErrorModelConfig cfg;
        cfg.corruptRate = 0.01;
        cfg.burstFactor = 0.5;
        ErrorModel em(topo, cfg);
        EXPECT_FALSE(em.validateRates().empty());
    }
    {
        // Per-arc override can break soundness too.
        ErrorModel em(topo);
        em.setArcRates(0, 0.9, 0.9);
        EXPECT_FALSE(em.validateRates().empty());
    }
}

TEST(ErrorModel, ArcRngStreamsAreDeterministicAndPerArc)
{
    FlattenedButterfly topo(4, 2);
    ErrorModelConfig cfg;
    cfg.seed = 77;
    ErrorModel em(topo, cfg);

    Rng a0 = em.arcRng(0);
    Rng a0b = em.arcRng(0);
    Rng a1 = em.arcRng(1);
    bool same_arc_same = true;
    bool diff_arc_same = true;
    for (int i = 0; i < 16; ++i) {
        const std::uint64_t x = a0.next();
        same_arc_same = same_arc_same && x == a0b.next();
        diff_arc_same = diff_arc_same && x == a1.next();
    }
    EXPECT_TRUE(same_arc_same);
    EXPECT_FALSE(diff_arc_same);

    // A different model seed changes every stream.
    ErrorModelConfig other = cfg;
    other.seed = 78;
    ErrorModel em2(topo, other);
    Rng b0 = em2.arcRng(0);
    Rng c0 = em.arcRng(0);
    bool diff_seed_same = true;
    for (int i = 0; i < 16; ++i)
        diff_seed_same = diff_seed_same && b0.next() == c0.next();
    EXPECT_FALSE(diff_seed_same);
}

TEST(ErrorModel, MetadataRoundTripsRatesAndSeed)
{
    FlattenedButterfly topo(4, 2);
    ErrorModelConfig cfg;
    cfg.corruptRate = 7.5e-5;
    cfg.eraseRate = 2.5e-5;
    cfg.burstStart = 0.001;
    cfg.burstStop = 0.25;
    cfg.burstFactor = 20.0;
    cfg.seed = 424242;
    ErrorModel em(topo, cfg);

    const auto kv = em.metadata();
    const auto find = [&](const std::string &key) -> std::string {
        for (const auto &[k, v] : kv) {
            if (k == key)
                return v;
        }
        ADD_FAILURE() << "missing metadata key " << key;
        return "";
    };
    EXPECT_EQ(std::strtod(find("error_corrupt_rate").c_str(), nullptr),
              7.5e-5);
    EXPECT_EQ(std::strtod(find("error_erase_rate").c_str(), nullptr),
              2.5e-5);
    EXPECT_EQ(std::strtod(find("error_burst_start").c_str(), nullptr),
              0.001);
    EXPECT_EQ(std::strtod(find("error_burst_stop").c_str(), nullptr),
              0.25);
    EXPECT_EQ(std::strtod(find("error_burst_factor").c_str(), nullptr),
              20.0);
    EXPECT_EQ(find("error_seed"), "424242");
}

// ---------------------------------------------------------------------
// Gilbert-Elliott long-run statistics
// ---------------------------------------------------------------------

/**
 * Drive one reliable channel until ~@p to_send flits are delivered,
 * returning its LinkStats.  Per cycle: tick, drain receiver, send
 * when the window allows (the routers' relative order).
 */
LinkStats
pumpReliable(const LinkErrorRates &rates, int to_send,
             std::uint64_t seed)
{
    Channel ch(1);
    LinkReliabilityConfig rel;
    rel.enabled = true;
    ch.enableReliability(rel, rates, Rng(seed));

    FlitId next = 0;
    int got = 0;
    for (Cycle t = 0; got < to_send && t < 50u * to_send; ++t) {
        ch.tick(t);
        while (ch.receiveFlit(t).has_value())
            ++got;
        if (next < static_cast<FlitId>(to_send) &&
            ch.canSendFlit(t)) {
            Flit f;
            f.id = next;
            f.packet = next;
            f.src = 1;
            f.dst = 2;
            f.head = f.tail = true;
            ch.sendFlit(f, t);
            ++next;
        }
    }
    EXPECT_EQ(got, to_send) << "channel wedged before delivering "
                               "the statistical sample";
    return ch.linkStats();
}

/**
 * The Gilbert-Elliott chain applies transitions per wire attempt in
 * the order enter(p = burstStart) -> draw -> leave(q = burstStop),
 * so the stationary probability of drawing in the bad state is
 *
 *     b = p / (p + q - p*q)
 *
 * and with erase = 0 the long-run per-attempt corruption rate is
 *
 *     E[corrupt] = c * ((1 - b) + b * f)
 *
 * for base rate c and burst factor f.  A long run must land within a
 * few standard errors of that expectation — the statistical check
 * that the burst process actually amplifies the base rate, not just
 * the unit checks of its knobs.
 */
TEST(GilbertElliott, LongRunCorruptionRateMatchesStationaryChain)
{
    LinkErrorRates rates;
    rates.corrupt = 0.02;
    rates.erase = 0.0;
    rates.burstStart = 0.05;
    rates.burstStop = 0.20;
    rates.burstFactor = 10.0;

    const double p = rates.burstStart;
    const double q = rates.burstStop;
    const double b = p / (p + q - p * q);
    const double expected =
        rates.corrupt * ((1.0 - b) + b * rates.burstFactor);

    const LinkStats st = pumpReliable(rates, 12000, 0x6E0b5);
    ASSERT_GT(st.attempts, 12000u);
    EXPECT_EQ(st.eraseInjected, 0u);
    const double observed =
        static_cast<double>(st.corruptInjected) /
        static_cast<double>(st.attempts);

    // 5-sigma band on a Bernoulli mean over >= attempts draws.
    const double sigma = std::sqrt(expected * (1.0 - expected) /
                                   static_cast<double>(st.attempts));
    EXPECT_NEAR(observed, expected, 5.0 * sigma)
        << "observed " << observed << " vs stationary " << expected
        << " over " << st.attempts << " attempts";

    // Every corruption was caught by the receiver's CRC (nothing
    // corrupt leaked, nothing clean was rejected).
    EXPECT_EQ(st.crcRejected, st.corruptInjected);
}

/** Without a burst process the long-run rate is the base rate. */
TEST(GilbertElliott, NoBurstMatchesBaseRate)
{
    LinkErrorRates rates;
    rates.corrupt = 0.03;

    const LinkStats st = pumpReliable(rates, 12000, 99);
    const double observed =
        static_cast<double>(st.corruptInjected) /
        static_cast<double>(st.attempts);
    const double sigma =
        std::sqrt(0.03 * 0.97 /
                  static_cast<double>(st.attempts));
    EXPECT_NEAR(observed, 0.03, 5.0 * sigma);
}

} // namespace
} // namespace fbfly
