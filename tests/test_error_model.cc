/**
 * @file
 * Tests for the transient-error model (fault/error_model.h):
 * uniform and per-arc rates, validation, deterministic per-arc Rng
 * streams, and the self-describing metadata block.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "fault/error_model.h"
#include "topology/flattened_butterfly.h"

namespace fbfly
{
namespace
{

TEST(ErrorModel, FreshModelHasNoErrors)
{
    FlattenedButterfly topo(4, 2); // 4 routers, K4, 12 arcs
    ErrorModel em(topo);
    EXPECT_FALSE(em.anyErrors());
    EXPECT_EQ(em.numArcs(), topo.arcs().size());
    EXPECT_TRUE(em.validateRates().empty());
    for (std::size_t i = 0; i < em.numArcs(); ++i) {
        EXPECT_EQ(em.arcRates(i).corrupt, 0.0);
        EXPECT_EQ(em.arcRates(i).erase, 0.0);
        EXPECT_FALSE(em.arcRates(i).any());
    }
}

TEST(ErrorModel, UniformRatesApplyToEveryArc)
{
    FlattenedButterfly topo(4, 2);
    ErrorModelConfig cfg;
    cfg.corruptRate = 1e-3;
    cfg.eraseRate = 1e-4;
    cfg.burstStart = 0.01;
    cfg.burstStop = 0.5;
    cfg.burstFactor = 10.0;
    ErrorModel em(topo, cfg);
    EXPECT_TRUE(em.anyErrors());
    EXPECT_TRUE(em.validateRates().empty());
    for (std::size_t i = 0; i < em.numArcs(); ++i) {
        const LinkErrorRates r = em.arcRates(i);
        EXPECT_EQ(r.corrupt, 1e-3);
        EXPECT_EQ(r.erase, 1e-4);
        EXPECT_EQ(r.burstStart, 0.01);
        EXPECT_EQ(r.burstStop, 0.5);
        EXPECT_EQ(r.burstFactor, 10.0);
    }

    em.setUniformRates(0.0, 0.0);
    EXPECT_FALSE(em.anyErrors());
}

TEST(ErrorModel, PerArcOverride)
{
    FlattenedButterfly topo(4, 2);
    ErrorModel em(topo);
    em.setArcRates(3, 0.5, 0.25);
    EXPECT_TRUE(em.anyErrors());
    EXPECT_EQ(em.arcRates(3).corrupt, 0.5);
    EXPECT_EQ(em.arcRates(3).erase, 0.25);
    EXPECT_EQ(em.arcRates(0).corrupt, 0.0);
    EXPECT_EQ(em.arcRates(0).erase, 0.0);
}

TEST(ErrorModel, ValidationCatchesBadConfigs)
{
    FlattenedButterfly topo(4, 2);
    {
        ErrorModelConfig cfg;
        cfg.corruptRate = 1.5;
        ErrorModel em(topo, cfg);
        EXPECT_FALSE(em.validateRates().empty());
    }
    {
        // corrupt + erase partition a single draw: their sum must
        // not exceed 1.
        ErrorModelConfig cfg;
        cfg.corruptRate = 0.7;
        cfg.eraseRate = 0.7;
        ErrorModel em(topo, cfg);
        EXPECT_FALSE(em.validateRates().empty());
    }
    {
        // Bursts can start but never stop: the bad state would be
        // absorbing by accident.
        ErrorModelConfig cfg;
        cfg.corruptRate = 0.01;
        cfg.burstStart = 0.1;
        cfg.burstStop = 0.0;
        ErrorModel em(topo, cfg);
        EXPECT_FALSE(em.validateRates().empty());
    }
    {
        ErrorModelConfig cfg;
        cfg.corruptRate = 0.01;
        cfg.burstFactor = 0.5;
        ErrorModel em(topo, cfg);
        EXPECT_FALSE(em.validateRates().empty());
    }
    {
        // Per-arc override can break soundness too.
        ErrorModel em(topo);
        em.setArcRates(0, 0.9, 0.9);
        EXPECT_FALSE(em.validateRates().empty());
    }
}

TEST(ErrorModel, ArcRngStreamsAreDeterministicAndPerArc)
{
    FlattenedButterfly topo(4, 2);
    ErrorModelConfig cfg;
    cfg.seed = 77;
    ErrorModel em(topo, cfg);

    Rng a0 = em.arcRng(0);
    Rng a0b = em.arcRng(0);
    Rng a1 = em.arcRng(1);
    bool same_arc_same = true;
    bool diff_arc_same = true;
    for (int i = 0; i < 16; ++i) {
        const std::uint64_t x = a0.next();
        same_arc_same = same_arc_same && x == a0b.next();
        diff_arc_same = diff_arc_same && x == a1.next();
    }
    EXPECT_TRUE(same_arc_same);
    EXPECT_FALSE(diff_arc_same);

    // A different model seed changes every stream.
    ErrorModelConfig other = cfg;
    other.seed = 78;
    ErrorModel em2(topo, other);
    Rng b0 = em2.arcRng(0);
    Rng c0 = em.arcRng(0);
    bool diff_seed_same = true;
    for (int i = 0; i < 16; ++i)
        diff_seed_same = diff_seed_same && b0.next() == c0.next();
    EXPECT_FALSE(diff_seed_same);
}

TEST(ErrorModel, MetadataRoundTripsRatesAndSeed)
{
    FlattenedButterfly topo(4, 2);
    ErrorModelConfig cfg;
    cfg.corruptRate = 7.5e-5;
    cfg.eraseRate = 2.5e-5;
    cfg.burstStart = 0.001;
    cfg.burstStop = 0.25;
    cfg.burstFactor = 20.0;
    cfg.seed = 424242;
    ErrorModel em(topo, cfg);

    const auto kv = em.metadata();
    const auto find = [&](const std::string &key) -> std::string {
        for (const auto &[k, v] : kv) {
            if (k == key)
                return v;
        }
        ADD_FAILURE() << "missing metadata key " << key;
        return "";
    };
    EXPECT_EQ(std::strtod(find("error_corrupt_rate").c_str(), nullptr),
              7.5e-5);
    EXPECT_EQ(std::strtod(find("error_erase_rate").c_str(), nullptr),
              2.5e-5);
    EXPECT_EQ(std::strtod(find("error_burst_start").c_str(), nullptr),
              0.001);
    EXPECT_EQ(std::strtod(find("error_burst_stop").c_str(), nullptr),
              0.25);
    EXPECT_EQ(std::strtod(find("error_burst_factor").c_str(), nullptr),
              20.0);
    EXPECT_EQ(find("error_seed"), "424242");
}

} // namespace
} // namespace fbfly
