/**
 * @file
 * Tests for the string-driven factories behind fbflysim.
 */

#include <gtest/gtest.h>

#include "harness/factory.h"
#include "topology/flattened_butterfly.h"

namespace fbfly
{
namespace
{

TEST(Factory, BuildsFbflyWithEveryRouting)
{
    for (const char *routing : {"dor", "minad", "val", "ugal",
                                "ugals", "closad", "default"}) {
        const auto b = makeNetworkBundle("fbfly-8-2", routing);
        EXPECT_EQ(b.topology->numNodes(), 64) << routing;
        EXPECT_EQ(b.terminalsPerRouter, 8) << routing;
        EXPECT_GE(b.routing->numVcs(), 1) << routing;
    }
}

TEST(Factory, DefaultFbflyRoutingIsClosAd)
{
    const auto b = makeNetworkBundle("fbfly-8-2", "default");
    EXPECT_EQ(b.routing->name(), "CLOS AD");
}

TEST(Factory, BuildsEveryTopologyKind)
{
    struct Case
    {
        const char *spec;
        std::int64_t nodes;
    };
    const Case cases[] = {
        {"fbfly-4-3", 64},      {"butterfly-4-2", 16},
        {"clos-64-8-4", 64},    {"fattree-128-8-4-4-4", 128},
        {"hypercube-5", 32},    {"torus-4-2", 16},
        {"ghc-4x4", 16},
    };
    for (const auto &c : cases) {
        const auto b = makeNetworkBundle(c.spec, "default");
        EXPECT_EQ(b.topology->numNodes(), c.nodes) << c.spec;
        EXPECT_NE(b.routing, nullptr) << c.spec;
    }
}

TEST(Factory, HypercubeDefaultsToHalfBandwidth)
{
    const auto b = makeNetworkBundle("hypercube-4", "default");
    EXPECT_EQ(b.channelPeriod, 2u);
    const auto f = makeNetworkBundle("fbfly-4-2", "default");
    EXPECT_EQ(f.channelPeriod, 1u);
}

TEST(Factory, BuildsEveryTrafficPattern)
{
    for (const char *name : {"uniform", "adversarial", "tornado",
                             "transpose", "bitcomp", "randperm"}) {
        const auto p = makeTraffic(name, 64, 8);
        ASSERT_NE(p, nullptr) << name;
        Rng rng(1);
        const NodeId d = p->dest(0, rng);
        EXPECT_GE(d, 0) << name;
        EXPECT_LT(d, 64) << name;
    }
}

TEST(FactoryDeath, RejectsUnknownTopology)
{
    EXPECT_EXIT(makeNetworkBundle("mesh-4-4", "default"),
                ::testing::ExitedWithCode(1), "unknown topology");
}

TEST(FactoryDeath, RejectsWrongArgumentCount)
{
    EXPECT_EXIT(makeNetworkBundle("fbfly-8", "default"),
                ::testing::ExitedWithCode(1), "expects");
}

TEST(FactoryDeath, RejectsBadRouting)
{
    EXPECT_EXIT(makeNetworkBundle("hypercube-4", "closad"),
                ::testing::ExitedWithCode(1), "ecube");
}

TEST(FactoryDeath, RejectsMalformedSizes)
{
    EXPECT_EXIT(makeNetworkBundle("fbfly-8-zzz", "default"),
                ::testing::ExitedWithCode(1), "bad");
}

TEST(FactoryDeath, RejectsUnknownTraffic)
{
    EXPECT_EXIT(makeTraffic("hotspot", 64, 8),
                ::testing::ExitedWithCode(1), "unknown traffic");
}

} // namespace
} // namespace fbfly
