/**
 * @file
 * Tests for the Section 4.2 packaging / cable-length model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cost/packaging.h"

namespace fbfly
{
namespace
{

TEST(Packaging, Table3Defaults)
{
    PackagingModel pkg;
    EXPECT_EQ(pkg.nodesPerCabinet, 128);
    EXPECT_DOUBLE_EQ(pkg.densityNodesPerM2, 75.0);
    EXPECT_DOUBLE_EQ(pkg.cableOverheadM, 2.0);
}

TEST(Packaging, EdgeLengthIsSqrtNOverD)
{
    PackagingModel pkg;
    EXPECT_NEAR(pkg.edgeLength(1024), std::sqrt(1024.0 / 75.0),
                1e-12);
    EXPECT_NEAR(pkg.edgeLength(75), 1.0, 1e-12);
}

TEST(Packaging, EdgeLengthMonotone)
{
    PackagingModel pkg;
    double prev = 0.0;
    for (std::int64_t n = 64; n <= 65536; n *= 2) {
        const double e = pkg.edgeLength(n);
        EXPECT_GT(e, prev);
        prev = e;
    }
}

TEST(Packaging, AverageLengthRatios)
{
    // Section 4.2: butterfly family ~E/3, folded Clos ~E/4.
    PackagingModel pkg;
    const std::int64_t n = 4096;
    const double e = pkg.edgeLength(n);
    EXPECT_NEAR(pkg.avgGlobalButterfly(n), e / 3.0, 1e-12);
    EXPECT_NEAR(pkg.avgGlobalClos(n), e / 4.0, 1e-12);
    EXPECT_NEAR(pkg.maxGlobalButterfly(n), e, 1e-12);
    EXPECT_NEAR(pkg.maxGlobalClos(n), e / 2.0, 1e-12);
}

TEST(Packaging, HypercubeAverageIsShortestAtScale)
{
    // "Because of the logarithmic term, as the network size
    // increases, the average cable length is shorter than the other
    // topologies."
    PackagingModel pkg;
    // The logarithmic term wins once the floor is large enough
    // (E ~ 15 m, i.e. N >= 16K at the Table 3 density).
    for (std::int64_t n = 16384; n <= 65536; n *= 2) {
        EXPECT_LT(pkg.avgGlobalHypercube(n),
                  pkg.avgGlobalClos(n));
        EXPECT_LT(pkg.avgGlobalClos(n),
                  pkg.avgGlobalButterfly(n));
    }
}

TEST(Packaging, HypercubeFormulaMatchesPaper)
{
    PackagingModel pkg;
    const std::int64_t n = 65536;
    const double e = pkg.edgeLength(n);
    EXPECT_NEAR(pkg.avgGlobalHypercube(n),
                (e - 1.0) / std::log2(e), 1e-12);
}

} // namespace
} // namespace fbfly
