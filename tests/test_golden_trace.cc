/**
 * @file
 * Golden-trace regression test: a tiny, fully pinned UGAL run on the
 * 2-ary 2-flat whose canonical trace text (TraceSink::toText) must
 * stay byte-identical to the committed fixture
 * tests/data/golden_trace_2ary2flat_ugal.txt.
 *
 * The trace text is integer-only, so it is byte-identical across
 * platforms, optimization levels and sanitizers — any divergence
 * means the simulator's cycle-by-cycle behavior changed (router
 * arbitration, channel timing, RNG stream, injection order, ...).
 * That is sometimes intentional; regenerate with
 *
 *     FBFLY_REGEN_GOLDEN=1 ./fbfly_tests --gtest_filter='GoldenTrace*'
 *
 * and commit the new fixture *together with an explanation of why
 * the schedule changed*.  On failure the test prints the first
 * divergent line with context rather than a 50 KiB string blob.
 *
 * The scenario itself lives in fixture_scenarios.h so the
 * shard-determinism suite can replay it at --shards N against the
 * same committed fixture.
 */

#include <gtest/gtest.h>

#include "fixture_scenarios.h"

namespace fbfly
{
namespace
{

using fixtures::checkAgainstFixture;
using fixtures::kGoldenFixture;
using fixtures::runGoldenScenario;

TEST(GoldenTrace, MatchesCommittedFixture)
{
    checkAgainstFixture(runGoldenScenario(), kGoldenFixture);
}

/** The golden scenario itself is deterministic run-to-run (guards
 *  against hidden global state making the fixture flaky). */
TEST(GoldenTrace, ScenarioIsReproducible)
{
    EXPECT_EQ(runGoldenScenario(), runGoldenScenario());
}

} // namespace
} // namespace fbfly
