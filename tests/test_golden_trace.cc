/**
 * @file
 * Golden-trace regression test: a tiny, fully pinned UGAL run on the
 * 2-ary 2-flat whose canonical trace text (TraceSink::toText) must
 * stay byte-identical to the committed fixture
 * tests/data/golden_trace_2ary2flat_ugal.txt.
 *
 * The trace text is integer-only, so it is byte-identical across
 * platforms, optimization levels and sanitizers — any divergence
 * means the simulator's cycle-by-cycle behavior changed (router
 * arbitration, channel timing, RNG stream, injection order, ...).
 * That is sometimes intentional; regenerate with
 *
 *     FBFLY_REGEN_GOLDEN=1 ./fbfly_tests --gtest_filter='GoldenTrace*'
 *
 * and commit the new fixture *together with an explanation of why
 * the schedule changed*.  On failure the test prints the first
 * divergent line with context rather than a 50 KiB string blob.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "network/network.h"
#include "obs/trace.h"
#include "routing/ugal.h"
#include "topology/flattened_butterfly.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

#ifndef FBFLY_TEST_DATA_DIR
#error "FBFLY_TEST_DATA_DIR must be defined by the build"
#endif

const char *const kFixturePath =
    FBFLY_TEST_DATA_DIR "/golden_trace_2ary2flat_ugal.txt";

/** The pinned golden scenario.  Any change here invalidates the
 *  fixture — bump the fixture file name if the scenario itself must
 *  evolve. */
std::string
runGoldenScenario()
{
    FlattenedButterfly topo(2, 2); // 4 nodes, 2 routers
    Ugal algo(topo, false);
    UniformRandom pattern(topo.numNodes());

    TraceSink sink(1 << 14);
    sink.setLevel(TraceLevel::kFull);

    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 4;
    cfg.seed = 2007; // ISCA'07
    cfg.trace = &sink;

    Network net(topo, algo, &pattern, cfg);
    BernoulliInjection inj(0.3, 1, 7);
    for (int c = 0; c < 100; ++c) {
        inj.tick(net, false);
        net.step();
    }
    EXPECT_EQ(sink.droppedRecords(), 0u)
        << "golden ring overflowed; enlarge the sink";
    return sink.toText();
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    return lines;
}

TEST(GoldenTrace, MatchesCommittedFixture)
{
    const std::string actual = runGoldenScenario();
    ASSERT_FALSE(actual.empty());

    if (std::getenv("FBFLY_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(kFixturePath, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << kFixturePath;
        out << actual;
        out.close();
        ASSERT_TRUE(out.good());
        GTEST_SKIP() << "regenerated " << kFixturePath << " ("
                     << actual.size() << " bytes) — commit it";
    }

    std::ifstream in(kFixturePath, std::ios::binary);
    ASSERT_TRUE(in) << "missing fixture " << kFixturePath
                    << " — run with FBFLY_REGEN_GOLDEN=1 to create "
                       "it";
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string expected = buf.str();

    if (actual == expected) {
        SUCCEED();
        return;
    }

    // Readable first-divergence report.
    const std::vector<std::string> exp = splitLines(expected);
    const std::vector<std::string> act = splitLines(actual);
    std::size_t i = 0;
    while (i < exp.size() && i < act.size() && exp[i] == act[i])
        ++i;
    std::ostringstream msg;
    msg << "golden trace diverged at line " << i + 1 << " of "
        << exp.size() << " (actual has " << act.size()
        << " lines)\n";
    for (std::size_t c = i >= 3 ? i - 3 : 0; c < i; ++c)
        msg << "  context:  " << exp[c] << "\n";
    msg << "  expected: "
        << (i < exp.size() ? exp[i] : "<end of fixture>") << "\n"
        << "  actual:   "
        << (i < act.size() ? act[i] : "<end of trace>") << "\n"
        << "regenerate with FBFLY_REGEN_GOLDEN=1 if the schedule "
           "change is intentional";
    ADD_FAILURE() << msg.str();
}

/** The golden scenario itself is deterministic run-to-run (guards
 *  against hidden global state making the fixture flaky). */
TEST(GoldenTrace, ScenarioIsReproducible)
{
    EXPECT_EQ(runGoldenScenario(), runGoldenScenario());
}

} // namespace
} // namespace fbfly
