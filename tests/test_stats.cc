/**
 * @file
 * Tests for the statistics accumulators (sim/stats.h).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "sim/stats.h"

namespace fbfly
{
namespace
{

TEST(RunningStats, EmptyHasNaNExtrema)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    // An empty accumulator has no extrema: 0.0 would look like a real
    // observation downstream (e.g. in JSON output), so min()/max()
    // return NaN until the first sample arrives.
    EXPECT_TRUE(std::isnan(s.min()));
    EXPECT_TRUE(std::isnan(s.max()));
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample)
{
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation)
{
    Rng rng(3);
    std::vector<double> xs;
    RunningStats s;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.nextDouble() * 100.0;
        xs.push_back(x);
        s.add(x);
    }
    double sum = 0.0;
    for (const double x : xs)
        sum += x;
    const double mean = sum / xs.size();
    double ss = 0.0;
    for (const double x : xs)
        ss += (x - mean) * (x - mean);
    const double var = ss / (xs.size() - 1);

    EXPECT_NEAR(s.mean(), mean, 1e-9);
    EXPECT_NEAR(s.variance(), var, 1e-6);
    EXPECT_NEAR(s.sum(), sum, 1e-6);
}

TEST(RunningStats, MergeEqualsSequential)
{
    Rng rng(4);
    RunningStats all;
    RunningStats a;
    RunningStats b;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.nextDouble() * 10.0 - 5.0;
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    RunningStats merged = a;
    merged.merge(b);
    EXPECT_EQ(merged.count(), all.count());
    EXPECT_NEAR(merged.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(merged.variance(), all.variance(), 1e-9);
    EXPECT_EQ(merged.min(), all.min());
    EXPECT_EQ(merged.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a;
    a.add(1.0);
    a.add(2.0);

    // Merging an empty operand is a no-op: the extrema must not be
    // polluted by the empty side's (absent) min/max.
    RunningStats empty;
    RunningStats merged = a;
    merged.merge(empty);
    EXPECT_EQ(merged.count(), 2u);
    EXPECT_EQ(merged.min(), 1.0);
    EXPECT_EQ(merged.max(), 2.0);
    EXPECT_NEAR(merged.mean(), 1.5, 1e-12);

    // Merging into an empty accumulator copies the other side exactly.
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_EQ(empty.min(), 1.0);
    EXPECT_EQ(empty.max(), 2.0);
    EXPECT_NEAR(empty.mean(), 1.5, 1e-12);

    // Empty-with-empty stays empty, with NaN extrema.
    RunningStats e1;
    RunningStats e2;
    e1.merge(e2);
    EXPECT_EQ(e1.count(), 0u);
    EXPECT_TRUE(std::isnan(e1.min()));
    EXPECT_TRUE(std::isnan(e1.max()));
}

TEST(RunningStats, MergeNegativeExtremaIntoEmpty)
{
    // Regression guard: if merge() seeded min/max from a default 0.0,
    // an all-negative operand merged into an empty accumulator would
    // report max() == 0.0.
    RunningStats neg;
    neg.add(-3.0);
    neg.add(-7.0);
    RunningStats empty;
    empty.merge(neg);
    EXPECT_EQ(empty.min(), -7.0);
    EXPECT_EQ(empty.max(), -3.0);
}

TEST(RunningStats, ResetClears)
{
    RunningStats s;
    s.add(10.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_TRUE(std::isnan(s.min()));
    EXPECT_TRUE(std::isnan(s.max()));
}

TEST(Histogram, CountsAndPercentiles)
{
    Histogram h(100);
    for (std::uint64_t i = 0; i < 100; ++i)
        h.add(i);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.percentile(0.01), 0u);
    EXPECT_EQ(h.percentile(0.50), 49u);
    EXPECT_EQ(h.percentile(1.00), 99u);
}

TEST(Histogram, GrowsToKeepPercentilesExact)
{
    // A sample past the current capacity grows the array instead of
    // saturating into the top bucket.
    Histogram h(10);
    h.add(5);
    h.add(1000);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.bucket(5), 1u);
    EXPECT_EQ(h.bucket(1000), 1u);
    EXPECT_EQ(h.bucket(9), 0u);
    EXPECT_GE(h.numBuckets(), 1001u);
    EXPECT_EQ(h.overflowCount(), 0u);
    EXPECT_EQ(h.percentile(1.0), 1000u);
}

TEST(Histogram, GrowthIsGeometric)
{
    Histogram h(4);
    EXPECT_EQ(h.numBuckets(), 4u);
    h.add(4); // doubles once
    EXPECT_EQ(h.numBuckets(), 8u);
    h.add(100); // 8 -> 128 in power-of-two steps
    EXPECT_EQ(h.numBuckets(), 128u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.bucket(100), 1u);
}

TEST(Histogram, LatenciesBeyondDefaultCapacityAreExact)
{
    // Regression for the p99 saturation bug: with a fixed 1024-bucket
    // array, saturated-load latency tails past 1024 cycles all landed
    // in bucket 1023 and p99 reported 1023 regardless of the true
    // tail.  The histogram now grows, so the percentile is exact.
    Histogram h(1024);
    for (std::uint64_t i = 0; i < 100; ++i)
        h.add(4000 + i); // all samples well past 1024
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.percentile(0.50), 4049u);
    EXPECT_EQ(h.percentile(0.99), 4098u);
    EXPECT_EQ(h.percentile(1.00), 4099u);
    EXPECT_EQ(h.maxSample(), 4099u);
}

TEST(Histogram, GrowthCapCountsOverflow)
{
    // With a small explicit cap, samples at/past the cap are tallied
    // as overflow and percentile queries landing there return the
    // recorded maximum instead of a clamped bucket index.
    Histogram h(8, 16);
    h.add(3);
    h.add(15);                    // grows to the cap, still exact
    EXPECT_EQ(h.numBuckets(), 16u);
    h.add(500);                   // beyond the cap -> overflow tally
    h.add(700);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.overflowCount(), 2u);
    EXPECT_EQ(h.maxSample(), 700u);
    EXPECT_EQ(h.numBuckets(), 16u); // never exceeds the cap
    EXPECT_EQ(h.percentile(0.25), 3u);
    EXPECT_EQ(h.percentile(0.50), 15u);
    EXPECT_EQ(h.percentile(1.00), 700u);
}

TEST(Histogram, PercentileOfPointMass)
{
    Histogram h(64);
    for (int i = 0; i < 10; ++i)
        h.add(7);
    EXPECT_EQ(h.percentile(0.01), 7u);
    EXPECT_EQ(h.percentile(0.99), 7u);
}

TEST(Histogram, ResetClears)
{
    Histogram h(16);
    h.add(3);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucket(3), 0u);
}

TEST(Histogram, ResetReleasesGrownBuckets)
{
    // Regression: reset() used to zero the counters but keep the
    // geometrically-grown bucket array, so one latency outlier in an
    // early measurement window pinned megabytes of counters for the
    // rest of a sweep.  Reset must shrink back to the construction
    // size (and stay exact afterwards).
    Histogram h(16);
    h.add(5000); // grows well past the initial 16 buckets
    EXPECT_GE(h.numBuckets(), 5001u);
    h.reset();
    EXPECT_EQ(h.numBuckets(), 16u);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.maxSample(), 0u);
    // Still fully functional after the shrink, including re-growth.
    h.add(3);
    h.add(40);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.bucket(40), 1u);
    EXPECT_EQ(h.percentile(1.0), 40u);

    // A histogram that never grew keeps its array across resets.
    Histogram small(8);
    small.add(2);
    small.reset();
    EXPECT_EQ(small.numBuckets(), 8u);
}

} // namespace
} // namespace fbfly
