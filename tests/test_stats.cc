/**
 * @file
 * Tests for the statistics accumulators (sim/stats.h).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "sim/stats.h"

namespace fbfly
{
namespace
{

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample)
{
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation)
{
    Rng rng(3);
    std::vector<double> xs;
    RunningStats s;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.nextDouble() * 100.0;
        xs.push_back(x);
        s.add(x);
    }
    double sum = 0.0;
    for (const double x : xs)
        sum += x;
    const double mean = sum / xs.size();
    double ss = 0.0;
    for (const double x : xs)
        ss += (x - mean) * (x - mean);
    const double var = ss / (xs.size() - 1);

    EXPECT_NEAR(s.mean(), mean, 1e-9);
    EXPECT_NEAR(s.variance(), var, 1e-6);
    EXPECT_NEAR(s.sum(), sum, 1e-6);
}

TEST(RunningStats, MergeEqualsSequential)
{
    Rng rng(4);
    RunningStats all;
    RunningStats a;
    RunningStats b;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.nextDouble() * 10.0 - 5.0;
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    RunningStats merged = a;
    merged.merge(b);
    EXPECT_EQ(merged.count(), all.count());
    EXPECT_NEAR(merged.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(merged.variance(), all.variance(), 1e-9);
    EXPECT_EQ(merged.min(), all.min());
    EXPECT_EQ(merged.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a;
    a.add(1.0);
    a.add(2.0);
    RunningStats empty;
    RunningStats merged = a;
    merged.merge(empty);
    EXPECT_EQ(merged.count(), 2u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_NEAR(empty.mean(), 1.5, 1e-12);
}

TEST(RunningStats, ResetClears)
{
    RunningStats s;
    s.add(10.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(Histogram, CountsAndPercentiles)
{
    Histogram h(100);
    for (std::uint64_t i = 0; i < 100; ++i)
        h.add(i);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.percentile(0.01), 0u);
    EXPECT_EQ(h.percentile(0.50), 49u);
    EXPECT_EQ(h.percentile(1.00), 99u);
}

TEST(Histogram, OverflowBucket)
{
    Histogram h(10);
    h.add(5);
    h.add(1000); // lands in bucket 9
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.percentile(1.0), 9u);
}

TEST(Histogram, PercentileOfPointMass)
{
    Histogram h(64);
    for (int i = 0; i < 10; ++i)
        h.add(7);
    EXPECT_EQ(h.percentile(0.01), 7u);
    EXPECT_EQ(h.percentile(0.99), 7u);
}

TEST(Histogram, ResetClears)
{
    Histogram h(16);
    h.add(3);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucket(3), 0u);
}

} // namespace
} // namespace fbfly
