/**
 * @file
 * Tests for the experiment harness (open-loop load points, sweeps,
 * batch runs) — the Section 3.2 methodology.
 */

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "routing/min_adaptive.h"
#include "routing/valiant.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

struct Fixture
{
    Fixture() : topo(8, 2), algo(topo), pattern(topo.numNodes())
    {
        expcfg.warmupCycles = 300;
        expcfg.measureCycles = 400;
        expcfg.drainCycles = 1500;
    }
    FlattenedButterfly topo;
    MinAdaptive algo;
    UniformRandom pattern;
    NetworkConfig netcfg;
    ExperimentConfig expcfg;
};

TEST(Experiment, AcceptedTracksOfferedBelowSaturation)
{
    Fixture f;
    for (const double load : {0.1, 0.3, 0.5, 0.7}) {
        const auto r = runLoadPoint(f.topo, f.algo, f.pattern,
                                    f.netcfg, f.expcfg, load);
        EXPECT_FALSE(r.saturated) << load;
        EXPECT_NEAR(r.accepted, load, 0.05) << load;
        EXPECT_GT(r.measuredPackets, 0u);
    }
}

TEST(Experiment, LatencyIncreasesWithLoad)
{
    Fixture f;
    const auto lo = runLoadPoint(f.topo, f.algo, f.pattern, f.netcfg,
                                 f.expcfg, 0.1);
    const auto hi = runLoadPoint(f.topo, f.algo, f.pattern, f.netcfg,
                                 f.expcfg, 0.9);
    EXPECT_GT(hi.avgLatency, lo.avgLatency);
    EXPECT_GE(lo.p99Latency, lo.avgLatency - 1.0);
}

TEST(Experiment, SaturationDetectedBeyondCapacity)
{
    // An adversarial pattern limits MIN AD to 1/k: a 0.9 offered
    // load cannot drain within the bound.
    FlattenedButterfly topo(8, 2);
    MinAdaptive algo(topo);
    AdversarialNeighbor wc(topo.numNodes(), topo.k());
    ExperimentConfig expcfg;
    expcfg.warmupCycles = 200;
    expcfg.measureCycles = 200;
    expcfg.drainCycles = 400;
    NetworkConfig netcfg;
    const auto r =
        runLoadPoint(topo, algo, wc, netcfg, expcfg, 0.9);
    EXPECT_TRUE(r.saturated);
    EXPECT_LT(r.accepted, 0.25);
}

TEST(Experiment, SweepPreservesOrder)
{
    Fixture f;
    const std::vector<double> loads{0.1, 0.2, 0.3};
    const auto rs = runLoadSweep(f.topo, f.algo, f.pattern, f.netcfg,
                                 f.expcfg, loads);
    ASSERT_EQ(rs.size(), loads.size());
    for (std::size_t i = 0; i < loads.size(); ++i)
        EXPECT_EQ(rs[i].offered, loads[i]);
}

TEST(Experiment, DeterministicForEqualSeeds)
{
    Fixture f;
    const auto a = runLoadPoint(f.topo, f.algo, f.pattern, f.netcfg,
                                f.expcfg, 0.4);
    const auto b = runLoadPoint(f.topo, f.algo, f.pattern, f.netcfg,
                                f.expcfg, 0.4);
    EXPECT_EQ(a.avgLatency, b.avgLatency);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.measuredPackets, b.measuredPackets);

    ExperimentConfig other = f.expcfg;
    other.seed = 999;
    const auto c = runLoadPoint(f.topo, f.algo, f.pattern, f.netcfg,
                                other, 0.4);
    EXPECT_NE(a.avgLatency, c.avgLatency);
}

TEST(Experiment, SaturationThroughputMatchesCapacity)
{
    Fixture f;
    const double t = measureSaturationThroughput(
        f.topo, f.algo, f.pattern, f.netcfg, f.expcfg);
    EXPECT_GT(t, 0.85);
    EXPECT_LE(t, 1.0 + 1e-9);
}

TEST(Batch, CompletesAndNormalizes)
{
    FlattenedButterfly topo(8, 2);
    Valiant algo(topo);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig netcfg;
    const auto r = runBatch(topo, algo, pattern, netcfg, 7, 10);
    EXPECT_EQ(r.batchSize, 10);
    EXPECT_GT(r.completionTime, 10u);
    EXPECT_NEAR(r.normalizedLatency,
                static_cast<double>(r.completionTime) / 10, 1e-12);
}

TEST(Batch, LargerBatchesAmortizeTransients)
{
    FlattenedButterfly topo(8, 2);
    Valiant algo(topo);
    AdversarialNeighbor wc(topo.numNodes(), topo.k());
    NetworkConfig netcfg;
    const auto small = runBatch(topo, algo, wc, netcfg, 7, 1);
    const auto large = runBatch(topo, algo, wc, netcfg, 7, 200);
    EXPECT_GT(small.normalizedLatency, large.normalizedLatency);
    // Large batches approach 1/throughput ~ 2.0 for VAL at 50%.
    EXPECT_NEAR(large.normalizedLatency, 2.0, 0.5);
}

} // namespace
} // namespace fbfly
