/**
 * @file
 * Tests for the experiment harness (open-loop load points, sweeps,
 * batch runs) — the Section 3.2 methodology.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "harness/experiment.h"
#include "network/router.h"
#include "routing/min_adaptive.h"
#include "routing/valiant.h"
#include "topology/flattened_butterfly.h"
#include "topology/topology.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

/**
 * Pathological algorithm: declares every packet unreachable at the
 * first router.  Drives runLoadPoint to the kUnreachable exit.
 */
class DropAll final : public RoutingAlgorithm
{
  public:
    std::string name() const override { return "DROP ALL"; }
    int numVcs() const override { return 1; }
    RouteDecision route(Router &, Flit &) override
    {
        return RouteDecision::dropped();
    }
};

/**
 * Pathological algorithm: forwards every flit out a fixed
 * inter-router port on VC 0 and never ejects.  All traffic funnels
 * onto the cycle of the router-successor graph, the credit loop
 * fills, and the network deadlocks — the kStalled exit.
 */
class RingForward final : public RoutingAlgorithm
{
  public:
    explicit RingForward(const Topology &topo)
        : next_(static_cast<std::size_t>(topo.numRouters()), kInvalid)
    {
        for (const auto &arc : topo.arcs()) {
            auto &slot = next_[static_cast<std::size_t>(arc.src)];
            if (slot == kInvalid)
                slot = arc.srcPort;
        }
    }
    std::string name() const override { return "RING FWD"; }
    int numVcs() const override { return 1; }
    RouteDecision route(Router &router, Flit &) override
    {
        return {next_[static_cast<std::size_t>(router.id())], 0,
                false};
    }

  private:
    std::vector<PortId> next_;
};

struct Fixture
{
    Fixture() : topo(8, 2), algo(topo), pattern(topo.numNodes())
    {
        expcfg.warmupCycles = 300;
        expcfg.measureCycles = 400;
        expcfg.drainCycles = 1500;
    }
    FlattenedButterfly topo;
    MinAdaptive algo;
    UniformRandom pattern;
    NetworkConfig netcfg;
    ExperimentConfig expcfg;
};

TEST(Experiment, AcceptedTracksOfferedBelowSaturation)
{
    Fixture f;
    for (const double load : {0.1, 0.3, 0.5, 0.7}) {
        const auto r = runLoadPoint(f.topo, f.algo, f.pattern,
                                    f.netcfg, f.expcfg, load);
        EXPECT_FALSE(r.saturated) << load;
        EXPECT_NEAR(r.accepted, load, 0.05) << load;
        EXPECT_GT(r.measuredPackets, 0u);
    }
}

TEST(Experiment, LatencyIncreasesWithLoad)
{
    Fixture f;
    const auto lo = runLoadPoint(f.topo, f.algo, f.pattern, f.netcfg,
                                 f.expcfg, 0.1);
    const auto hi = runLoadPoint(f.topo, f.algo, f.pattern, f.netcfg,
                                 f.expcfg, 0.9);
    EXPECT_GT(hi.avgLatency, lo.avgLatency);
    EXPECT_GE(lo.p99Latency, lo.avgLatency - 1.0);
}

TEST(Experiment, SaturationDetectedBeyondCapacity)
{
    // An adversarial pattern limits MIN AD to 1/k: a 0.9 offered
    // load cannot drain within the bound.
    FlattenedButterfly topo(8, 2);
    MinAdaptive algo(topo);
    AdversarialNeighbor wc(topo.numNodes(), topo.k());
    ExperimentConfig expcfg;
    expcfg.warmupCycles = 200;
    expcfg.measureCycles = 200;
    expcfg.drainCycles = 400;
    NetworkConfig netcfg;
    const auto r =
        runLoadPoint(topo, algo, wc, netcfg, expcfg, 0.9);
    EXPECT_TRUE(r.saturated);
    EXPECT_LT(r.accepted, 0.25);
}

TEST(Experiment, SweepPreservesOrder)
{
    Fixture f;
    const std::vector<double> loads{0.1, 0.2, 0.3};
    const auto rs = runLoadSweep(f.topo, f.algo, f.pattern, f.netcfg,
                                 f.expcfg, loads);
    ASSERT_EQ(rs.size(), loads.size());
    for (std::size_t i = 0; i < loads.size(); ++i)
        EXPECT_EQ(rs[i].offered, loads[i]);
}

TEST(Experiment, DeterministicForEqualSeeds)
{
    Fixture f;
    const auto a = runLoadPoint(f.topo, f.algo, f.pattern, f.netcfg,
                                f.expcfg, 0.4);
    const auto b = runLoadPoint(f.topo, f.algo, f.pattern, f.netcfg,
                                f.expcfg, 0.4);
    EXPECT_EQ(a.avgLatency, b.avgLatency);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.measuredPackets, b.measuredPackets);

    ExperimentConfig other = f.expcfg;
    other.seed = 999;
    const auto c = runLoadPoint(f.topo, f.algo, f.pattern, f.netcfg,
                                other, 0.4);
    EXPECT_NE(a.avgLatency, c.avgLatency);
}

TEST(Experiment, SaturationThroughputMatchesCapacity)
{
    Fixture f;
    const double t = measureSaturationThroughput(
        f.topo, f.algo, f.pattern, f.netcfg, f.expcfg);
    EXPECT_GT(t, 0.85);
    EXPECT_LE(t, 1.0 + 1e-9);
}

TEST(Batch, CompletesAndNormalizes)
{
    FlattenedButterfly topo(8, 2);
    Valiant algo(topo);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig netcfg;
    const auto r = runBatch(topo, algo, pattern, netcfg, 7, 10);
    EXPECT_EQ(r.batchSize, 10);
    EXPECT_GT(r.completionTime, 10u);
    EXPECT_NEAR(r.normalizedLatency,
                static_cast<double>(r.completionTime) / 10, 1e-12);
}

TEST(Batch, LargerBatchesAmortizeTransients)
{
    FlattenedButterfly topo(8, 2);
    Valiant algo(topo);
    AdversarialNeighbor wc(topo.numNodes(), topo.k());
    NetworkConfig netcfg;
    const auto small = runBatch(topo, algo, wc, netcfg, 7, 1);
    const auto large = runBatch(topo, algo, wc, netcfg, 7, 200);
    EXPECT_GT(small.normalizedLatency, large.normalizedLatency);
    // Large batches approach 1/throughput ~ 2.0 for VAL at 50%.
    EXPECT_NEAR(large.normalizedLatency, 2.0, 0.5);
}

// --- The five LoadPointStatus exits and the NaN validity contract --

TEST(LoadPointStatus5, DeliveredReportsFullStatistics)
{
    Fixture f;
    const auto r = runLoadPoint(f.topo, f.algo, f.pattern, f.netcfg,
                                f.expcfg, 0.2);
    EXPECT_EQ(r.status, LoadPointStatus::kDelivered);
    EXPECT_TRUE(r.valid());
    EXPECT_TRUE(r.latencyValid());
    EXPECT_FALSE(std::isnan(r.accepted));
    EXPECT_FALSE(std::isnan(r.avgLatency));
    EXPECT_FALSE(std::isnan(r.avgNetworkLatency));
    EXPECT_FALSE(std::isnan(r.avgHops));
    EXPECT_FALSE(std::isnan(r.p99Latency));
    EXPECT_GT(r.measuredPackets, 0u);
    EXPECT_EQ(r.measuredDropped, 0u);
    EXPECT_TRUE(r.diagnostics.empty());
}

TEST(LoadPointStatus5, SaturatedIsValidButLatencyIsBiased)
{
    FlattenedButterfly topo(8, 2);
    MinAdaptive algo(topo);
    AdversarialNeighbor wc(topo.numNodes(), topo.k());
    ExperimentConfig expcfg;
    expcfg.warmupCycles = 200;
    expcfg.measureCycles = 200;
    expcfg.drainCycles = 400;
    NetworkConfig netcfg;
    const auto r = runLoadPoint(topo, algo, wc, netcfg, expcfg, 0.9);
    EXPECT_EQ(r.status, LoadPointStatus::kSaturated);
    EXPECT_TRUE(r.saturated);
    // Accepted throughput is a real observation (the window closed)…
    EXPECT_TRUE(r.valid());
    EXPECT_FALSE(std::isnan(r.accepted));
    // …but the latency sample only covers the survivors.
    EXPECT_FALSE(r.latencyValid());
}

TEST(LoadPointStatus5, UnreachableCountsDropsAndKeepsLatencyNaN)
{
    FlattenedButterfly topo(4, 2);
    DropAll algo;
    UniformRandom pattern(topo.numNodes());
    ExperimentConfig expcfg;
    expcfg.warmupCycles = 100;
    expcfg.measureCycles = 100;
    expcfg.drainCycles = 2000;
    NetworkConfig netcfg;
    netcfg.vcDepth = 8;
    const auto r = runLoadPoint(topo, algo, pattern, netcfg, expcfg,
                                0.2);
    EXPECT_EQ(r.status, LoadPointStatus::kUnreachable);
    EXPECT_STREQ(toString(r.status), "unreachable");
    EXPECT_FALSE(r.saturated);
    EXPECT_GT(r.measuredDropped, 0u);
    EXPECT_GT(r.flitsDropped, 0u);
    // Nothing was ever ejected: throughput is an exact 0, latency is
    // unknown — not a fake 0.0.
    EXPECT_TRUE(r.valid());
    EXPECT_EQ(r.accepted, 0.0);
    EXPECT_EQ(r.measuredPackets, 0u);
    EXPECT_FALSE(r.latencyValid());
    EXPECT_TRUE(std::isnan(r.avgLatency));
    EXPECT_TRUE(std::isnan(r.avgNetworkLatency));
    EXPECT_TRUE(std::isnan(r.avgHops));
    EXPECT_TRUE(std::isnan(r.p99Latency));
}

TEST(LoadPointStatus5, StallBeforeWindowClosesReportsNoThroughput)
{
    // RingForward deadlocks the credit loop during warmup: nothing
    // about the measurement window is known, so every statistic stays
    // NaN and valid() is false — the old behaviour reported a silent
    // accepted == 0.0 here.
    FlattenedButterfly topo(4, 2);
    RingForward algo(topo);
    UniformRandom pattern(topo.numNodes());
    ExperimentConfig expcfg;
    expcfg.warmupCycles = 3000;
    expcfg.measureCycles = 100;
    expcfg.drainCycles = 2000;
    NetworkConfig netcfg;
    netcfg.vcDepth = 4;
    netcfg.watchdogCycles = 100;
    const auto r = runLoadPoint(topo, algo, pattern, netcfg, expcfg,
                                1.0);
    EXPECT_EQ(r.status, LoadPointStatus::kStalled);
    EXPECT_STREQ(toString(r.status), "stalled");
    EXPECT_TRUE(r.saturated);
    EXPECT_FALSE(r.valid());
    EXPECT_TRUE(std::isnan(r.accepted));
    EXPECT_FALSE(r.latencyValid());
    EXPECT_TRUE(std::isnan(r.avgLatency));
    EXPECT_TRUE(std::isnan(r.p99Latency));
    EXPECT_FALSE(r.diagnostics.empty()); // stall dump
}

TEST(LoadPointStatus5, StallAfterWindowClosesKeepsThroughput)
{
    // Short phases + a patient watchdog: the deadlock is only
    // *detected* in the drain phase, after the measurement window
    // closed, so the (zero) accepted throughput is a real
    // observation and valid() holds.
    FlattenedButterfly topo(4, 2);
    RingForward algo(topo);
    UniformRandom pattern(topo.numNodes());
    ExperimentConfig expcfg;
    expcfg.warmupCycles = 30;
    expcfg.measureCycles = 30;
    expcfg.drainCycles = 20000;
    NetworkConfig netcfg;
    netcfg.vcDepth = 4;
    netcfg.watchdogCycles = 500;
    const auto r = runLoadPoint(topo, algo, pattern, netcfg, expcfg,
                                1.0);
    EXPECT_EQ(r.status, LoadPointStatus::kStalled);
    EXPECT_TRUE(r.saturated);
    EXPECT_TRUE(r.valid());
    EXPECT_EQ(r.accepted, 0.0); // nothing ever ejects
    EXPECT_FALSE(r.latencyValid());
    EXPECT_FALSE(r.diagnostics.empty());
}

TEST(LoadPointStatus5, InvalidConfigIsAllNaN)
{
    Fixture f;
    NetworkConfig bad = f.netcfg;
    bad.vcDepth = 0;
    const auto r = runLoadPoint(f.topo, f.algo, f.pattern, bad,
                                f.expcfg, 0.2);
    EXPECT_EQ(r.status, LoadPointStatus::kInvalidConfig);
    EXPECT_STREQ(toString(r.status), "invalid-config");
    EXPECT_FALSE(r.valid());
    EXPECT_FALSE(r.latencyValid());
    EXPECT_TRUE(std::isnan(r.accepted));
    EXPECT_TRUE(std::isnan(r.avgLatency));
    EXPECT_TRUE(std::isnan(r.avgNetworkLatency));
    EXPECT_TRUE(std::isnan(r.avgHops));
    EXPECT_TRUE(std::isnan(r.p99Latency));
    EXPECT_EQ(r.measuredPackets, 0u);
    EXPECT_FALSE(r.diagnostics.empty()); // validation report
}

} // namespace
} // namespace fbfly
