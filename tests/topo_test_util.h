/**
 * @file
 * Test-only topology graph helpers shared by the structural test
 * suites (test_properties.cc invariant sweep, test_dragonfly.cc,
 * test_slim_fly.cc): BFS ground truth for distances/diameter and an
 * arc-table consistency check.
 *
 * Everything here treats a Topology purely as its arc list — the
 * same view the routers and the analytic models get — so a passing
 * check really is end-to-end agreement, not two copies of one
 * formula.
 */

#ifndef FBFLY_TESTS_TOPO_TEST_UTIL_H
#define FBFLY_TESTS_TOPO_TEST_UTIL_H

#include <gtest/gtest.h>

#include <queue>
#include <set>
#include <tuple>
#include <vector>

#include "topology/topology.h"

namespace fbfly::topotest
{

/** Out-neighbor lists over the (directed) inter-router arcs. */
inline std::vector<std::vector<RouterId>>
adjacency(const Topology &topo)
{
    std::vector<std::vector<RouterId>> adj(topo.numRouters());
    for (const Topology::Arc &a : topo.arcs())
        adj[a.src].push_back(a.dst);
    return adj;
}

/**
 * All-pairs router distances by BFS over the arcs (-1: unreachable).
 * This is the ground truth the closed-form diameter / average-hop
 * claims are checked against.
 */
inline std::vector<std::vector<int>>
allPairsDistances(const Topology &topo)
{
    const auto adj = adjacency(topo);
    const int n = topo.numRouters();
    std::vector<std::vector<int>> dist(
        n, std::vector<int>(n, -1));
    for (int s = 0; s < n; ++s) {
        std::queue<RouterId> q;
        dist[s][s] = 0;
        q.push(s);
        while (!q.empty()) {
            const RouterId u = q.front();
            q.pop();
            for (const RouterId v : adj[u]) {
                if (dist[s][v] < 0) {
                    dist[s][v] = dist[s][u] + 1;
                    q.push(v);
                }
            }
        }
    }
    return dist;
}

/**
 * Arc-table consistency for a bidirectional (direct) topology:
 * every arc stays inside the port ranges, no (router, port) drives
 * two arcs, and every arc has its exact reverse — channel symmetry.
 */
inline void
expectSymmetricArcs(const Topology &topo)
{
    using Key = std::tuple<RouterId, PortId, RouterId, PortId>;
    std::set<Key> table;
    std::set<std::pair<RouterId, PortId>> sources;
    const auto arcs = topo.arcs();
    for (const Topology::Arc &a : arcs) {
        ASSERT_GE(a.src, 0);
        ASSERT_LT(a.src, topo.numRouters());
        ASSERT_GE(a.dst, 0);
        ASSERT_LT(a.dst, topo.numRouters());
        EXPECT_GE(a.srcPort, 0);
        EXPECT_LT(a.srcPort, topo.numPorts(a.src));
        EXPECT_GE(a.dstPort, 0);
        EXPECT_LT(a.dstPort, topo.numPorts(a.dst));
        EXPECT_TRUE(
            table.insert({a.src, a.srcPort, a.dst, a.dstPort})
                .second)
            << "duplicate arc " << a.src << ":" << a.srcPort;
        EXPECT_TRUE(sources.insert({a.src, a.srcPort}).second)
            << "port " << a.srcPort << " of router " << a.src
            << " drives two arcs";
    }
    for (const Topology::Arc &a : arcs) {
        EXPECT_TRUE(
            table.count({a.dst, a.dstPort, a.src, a.srcPort}))
            << "arc " << a.src << ":" << a.srcPort << " -> "
            << a.dst << ":" << a.dstPort << " has no reverse";
    }
}

/** Unidirectional arcs crossing the canonical id split
 *  (src < R/2) != (dst < R/2) — the generic bisection count the
 *  analytic models use. */
inline std::int64_t
bisectionArcs(const Topology &topo)
{
    const int half = topo.numRouters() / 2;
    std::int64_t crossing = 0;
    for (const Topology::Arc &a : topo.arcs()) {
        if ((a.src < half) != (a.dst < half))
            ++crossing;
    }
    return crossing;
}

} // namespace fbfly::topotest

#endif // FBFLY_TESTS_TOPO_TEST_UTIL_H
