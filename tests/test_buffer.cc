/**
 * @file
 * Tests for the VC buffer (network/buffer.h).
 */

#include <gtest/gtest.h>

#include "network/buffer.h"

namespace fbfly
{
namespace
{

Flit
makeFlit(FlitId id)
{
    Flit f;
    f.id = id;
    return f;
}

TEST(VcBuffer, StartsEmpty)
{
    VcBuffer buf(4);
    EXPECT_TRUE(buf.empty());
    EXPECT_FALSE(buf.full());
    EXPECT_EQ(buf.size(), 0);
    EXPECT_EQ(buf.depth(), 4);
}

TEST(VcBuffer, PushPopFifo)
{
    VcBuffer buf(4);
    buf.push(makeFlit(1));
    buf.push(makeFlit(2));
    EXPECT_EQ(buf.size(), 2);
    EXPECT_EQ(buf.front().id, 1u);
    EXPECT_EQ(buf.pop().id, 1u);
    EXPECT_EQ(buf.pop().id, 2u);
    EXPECT_TRUE(buf.empty());
}

TEST(VcBuffer, FullAtDepth)
{
    VcBuffer buf(2);
    buf.push(makeFlit(1));
    EXPECT_FALSE(buf.full());
    buf.push(makeFlit(2));
    EXPECT_TRUE(buf.full());
}

TEST(VcBuffer, EraseAtMiddle)
{
    VcBuffer buf(8);
    for (FlitId i = 0; i < 5; ++i)
        buf.push(makeFlit(i));
    EXPECT_EQ(buf.eraseAt(2).id, 2u);
    EXPECT_EQ(buf.size(), 4);
    EXPECT_EQ(buf.at(0).id, 0u);
    EXPECT_EQ(buf.at(1).id, 1u);
    EXPECT_EQ(buf.at(2).id, 3u);
    EXPECT_EQ(buf.at(3).id, 4u);
}

TEST(VcBuffer, EraseAtFrontEqualsPop)
{
    VcBuffer buf(4);
    buf.push(makeFlit(7));
    buf.push(makeFlit(8));
    EXPECT_EQ(buf.eraseAt(0).id, 7u);
    EXPECT_EQ(buf.front().id, 8u);
}

TEST(VcBuffer, MutableAtAllowsRouting)
{
    VcBuffer buf(4);
    buf.push(makeFlit(1));
    buf.at(0).routed = true;
    buf.at(0).outPort = 3;
    EXPECT_TRUE(buf.front().routed);
    EXPECT_EQ(buf.front().outPort, 3);
}

TEST(VcBufferDeath, OverflowPanics)
{
    VcBuffer buf(1);
    buf.push(makeFlit(1));
    EXPECT_DEATH(buf.push(makeFlit(2)), "full VC buffer");
}

TEST(VcBufferDeath, PopEmptyPanics)
{
    VcBuffer buf(1);
    EXPECT_DEATH(buf.pop(), "empty VC buffer");
}

} // namespace
} // namespace fbfly
