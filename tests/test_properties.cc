/**
 * @file
 * Cross-cutting property tests: conservation, quiescence, hop and
 * latency invariants under randomized traffic, across every routing
 * algorithm; and consistency between the analytic models and the
 * simulated topologies.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "cost/topology_cost.h"
#include "harness/design_search.h"
#include "harness/factory.h"
#include "network/network.h"
#include "routing/clos_ad.h"
#include "routing/dor.h"
#include "routing/min_adaptive.h"
#include "routing/ugal.h"
#include "routing/valiant.h"
#include "topo_test_util.h"
#include "topology/flattened_butterfly.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

std::unique_ptr<RoutingAlgorithm>
makeAlgo(const std::string &name, const FlattenedButterfly &topo)
{
    if (name == "DOR")
        return std::make_unique<DimensionOrder>(topo);
    if (name == "MIN AD")
        return std::make_unique<MinAdaptive>(topo);
    if (name == "VAL")
        return std::make_unique<Valiant>(topo);
    if (name == "UGAL")
        return std::make_unique<Ugal>(topo, false);
    if (name == "UGAL-S")
        return std::make_unique<Ugal>(topo, true);
    return std::make_unique<ClosAd>(topo);
}

struct FuzzCase
{
    std::string algo;
    std::uint64_t seed;
};

void
PrintTo(const FuzzCase &c, std::ostream *os)
{
    *os << c.algo << "/seed" << c.seed;
}

class RoutingFuzz : public ::testing::TestWithParam<FuzzCase>
{
};

/**
 * Fuzz: random bursts of mixed traffic, then full drain.  Checks
 * conservation (every injected flit ejects exactly once), quiescence
 * (no stuck flits => no deadlock/livelock), the flattened-butterfly
 * hop bound (<= 2n' inter-router hops + ejection), and that latency
 * is at least the hop count.
 */
TEST_P(RoutingFuzz, ConservationAndBounds)
{
    const auto param = GetParam();
    FlattenedButterfly topo(3, 4); // 81 nodes, 27 routers, n'=3
    auto algo = makeAlgo(param.algo, topo);

    NetworkConfig cfg;
    cfg.numVcs = algo->numVcs();
    cfg.vcDepth = 4;
    cfg.seed = param.seed;
    Network net(topo, *algo, nullptr, cfg);

    Rng fuzz(param.seed * 7919 + 13);
    UniformRandom ur(topo.numNodes());
    AdversarialNeighbor wc(topo.numNodes(), topo.k());
    GroupTornado tor(topo.numNodes(), topo.k());

    std::uint64_t sent = 0;
    for (int burst = 0; burst < 20; ++burst) {
        const int kind = static_cast<int>(fuzz.nextBounded(3));
        const int packets = 1 + static_cast<int>(fuzz.nextBounded(60));
        for (int i = 0; i < packets; ++i) {
            const auto src = static_cast<NodeId>(
                fuzz.nextBounded(topo.numNodes()));
            Rng &trng = net.terminal(src).rng();
            NodeId dst;
            switch (kind) {
              case 0: dst = ur.dest(src, trng); break;
              case 1: dst = wc.dest(src, trng); break;
              default: dst = tor.dest(src, trng); break;
            }
            net.terminal(src).enqueuePacket(net.now(), dst, true);
            ++sent;
        }
        const int run = 1 + static_cast<int>(fuzz.nextBounded(40));
        for (int c = 0; c < run; ++c)
            net.step();
    }
    for (int c = 0; c < 20000 && !net.quiescent(); ++c)
        net.step();

    ASSERT_TRUE(net.quiescent())
        << "flits stuck after drain (deadlock or lost credit)";
    EXPECT_EQ(net.stats().measuredEjected, sent);
    EXPECT_EQ(net.stats().flitsInjected, net.stats().flitsEjected);
    EXPECT_LE(net.stats().hops.max(), 2 * topo.numDims() + 1);
    EXPECT_GE(net.stats().networkLatency.min(),
              net.stats().hops.min());
}

INSTANTIATE_TEST_SUITE_P(
    AlgoSeeds, RoutingFuzz,
    ::testing::Values(FuzzCase{"DOR", 1}, FuzzCase{"DOR", 2},
                      FuzzCase{"MIN AD", 1}, FuzzCase{"MIN AD", 2},
                      FuzzCase{"VAL", 1}, FuzzCase{"VAL", 2},
                      FuzzCase{"UGAL", 1}, FuzzCase{"UGAL", 2},
                      FuzzCase{"UGAL-S", 1}, FuzzCase{"UGAL-S", 2},
                      FuzzCase{"CLOS AD", 1},
                      FuzzCase{"CLOS AD", 2}));

TEST(ModelConsistency, CostInventoryMatchesSimulatedTopology)
{
    // The Section 4 link inventory and the simulated topology must
    // agree on structure for the exact k-ary n-flat configurations.
    TopologyCostModel model;
    const struct
    {
        int k;
        int n;
    } cases[] = {{4, 2}, {8, 2}, {4, 3}, {2, 4}, {16, 3}};
    for (const auto &c : cases) {
        FlattenedButterfly topo(c.k, c.n);
        const Inventory inv = model.kAryNFlat(c.k, c.n);
        EXPECT_EQ(inv.numNodes, topo.numNodes());
        EXPECT_EQ(inv.totalRouters(), topo.numRouters());
        EXPECT_EQ(inv.totalLinks(false),
                  static_cast<std::int64_t>(topo.arcs().size()))
            << c.k << "-ary " << c.n << "-flat";
    }
}

TEST(ModelConsistency, EffectiveRadixMatchesTopologyRadix)
{
    // Section 5.1.2's k' formula equals the constructed router
    // radix for the matching (k, n).
    for (int np = 1; np <= 3; ++np) {
        const int k = 64 / (np + 1);
        FlattenedButterfly topo(k, np + 1);
        EXPECT_EQ(topo.radix(),
                  FlattenedButterfly::effectiveRadix(64, np));
    }
}

TEST(ModelConsistency, CapacityNormalization)
{
    // All four compared topologies are charged for capacity 1: the
    // flattened butterfly's bisection (in 3-signal channel units)
    // equals N/2 unidirectional crossings, the Clos carries 2N
    // link-ends per level, and the hypercube's 2(N/2) crossings are
    // halved to 1.5 signals.
    TopologyCostModel model;
    const std::int64_t n = 1024;
    const auto fb = model.flattenedButterfly(n);
    const auto hc = model.hypercube(n);
    // Flattened butterfly 1K: 32 routers fully connected; crossing
    // a half split: 16*16 pairs * 2 directions = 512 = N/2.
    EXPECT_EQ(fb.totalLinks(false), 992);
    double hc_crossing_signals = 0.0;
    for (const auto &g : hc.links) {
        if (g.label == "dim9") // top dimension crosses the bisection
            hc_crossing_signals +=
                static_cast<double>(g.count) * g.signalsPerLink;
    }
    EXPECT_DOUBLE_EQ(hc_crossing_signals, 1024 * 1.5);
}

TEST(Determinism, WholeExperimentsAreReproducible)
{
    // End-to-end determinism across the full stack (topology,
    // routing, traffic, harness): byte-identical statistics.
    FlattenedButterfly topo(8, 2);
    ClosAd algo(topo);
    AdversarialNeighbor wc(topo.numNodes(), topo.k());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();

    auto fingerprint = [&]() {
        Network net(topo, algo, &wc, cfg);
        BernoulliInjection inj(0.44, 1, 321);
        for (int c = 0; c < 1200; ++c) {
            inj.tick(net, true);
            net.step();
        }
        const auto &st = net.stats();
        return std::tuple{st.flitsEjected, st.packetLatency.mean(),
                          st.packetLatency.variance(),
                          st.hops.sum(),
                          net.interRouterFlitCounts()};
    };
    EXPECT_EQ(fingerprint(), fingerprint());
}

// ---------------------------------------------------------------------
// All-family structural invariant sweep
// ---------------------------------------------------------------------

/**
 * One topology configuration with its closed-form expectations.
 * `diameter` is the terminal-pair router distance max(dist(inj(src),
 * ej(dst))) — identical to the router-graph diameter for direct
 * networks, and the leaf-to-leaf distance for the indirect ones.
 * `bisection` is the unidirectional arc count crossing the canonical
 * id split (-1: no tractable closed form, skip).
 */
struct TopoCase
{
    const char *spec;
    const char *routing;
    int routers;
    std::int64_t terminals;
    std::int64_t arcs;
    int diameter;
    std::int64_t bisection;
    bool symmetric;     ///< every arc has its reverse
    bool uniformDegree; ///< identical network out-degree everywhere
};

void
PrintTo(const TopoCase &c, std::ostream *os)
{
    *os << c.spec;
}

class TopologyInvariants : public ::testing::TestWithParam<TopoCase>
{
};

TEST_P(TopologyInvariants, StructureMatchesClosedFormAndBfs)
{
    const TopoCase &tc = GetParam();
    const NetworkBundle bundle =
        makeNetworkBundle(tc.spec, tc.routing);
    const Topology &topo = *bundle.topology;

    // Counts against the closed forms.
    EXPECT_EQ(topo.numRouters(), tc.routers);
    EXPECT_EQ(topo.numNodes(), tc.terminals);
    const auto arcs = topo.arcs();
    EXPECT_EQ(static_cast<std::int64_t>(arcs.size()), tc.arcs);
    if (tc.bisection >= 0)
        EXPECT_EQ(topotest::bisectionArcs(topo), tc.bisection);

    // Channel symmetry (direct / folded topologies only: the plain
    // butterfly is unidirectional by construction).
    if (tc.symmetric)
        topotest::expectSymmetricArcs(topo);

    // Degree symmetry: vertex-transitive families drive the same
    // number of inter-router channels everywhere.
    if (tc.uniformDegree) {
        std::vector<int> degree(topo.numRouters(), 0);
        for (const Topology::Arc &a : arcs)
            ++degree[a.src];
        for (RouterId r = 1; r < topo.numRouters(); ++r)
            EXPECT_EQ(degree[r], degree[0]) << "router " << r;
    }

    // BFS ground truth: every terminal pair is connected and the
    // worst-case router distance equals the claimed diameter.
    const auto dist = topotest::allPairsDistances(topo);
    int max_dist = 0;
    for (NodeId src = 0; src < topo.numNodes(); ++src) {
        const RouterId r1 = topo.injectionRouter(src);
        for (NodeId dst = 0; dst < topo.numNodes(); ++dst) {
            if (src == dst)
                continue;
            const RouterId r2 = topo.ejectionRouter(dst);
            ASSERT_GE(dist[r1][r2], 0)
                << "terminal " << src << " cannot reach " << dst;
            max_dist = std::max(max_dist, dist[r1][r2]);
        }
    }
    EXPECT_EQ(max_dist, tc.diameter);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, TopologyInvariants,
    ::testing::Values(
        // k-ary n-flats: k^(n-1) routers, each n'(k-1) channels.
        TopoCase{"fbfly-4-2", "ugal", 4, 16, 12, 1, 8, true, true},
        TopoCase{"fbfly-4-3", "ugal", 16, 64, 96, 2, 32, true,
                 true},
        // Conventional butterfly: unidirectional, stage-major ids,
        // so the id split cuts every stage-0 -> stage-1 channel.
        TopoCase{"butterfly-4-2", "dest", 8, 16, 16, 1, 16, false,
                 false},
        // Two-level folded Clos: L = 16 leaves + u = 4 middles,
        // L*u bidirectional links; the id split at router 10 cuts
        // the 10 lower leaves' uplinks (10 * 4 * 2 arcs).
        TopoCase{"clos-64-4-4", "adaptive", 20, 64, 128, 2, 80,
                 true, false},
        // Three-level fat tree: 16 leaves + 4 pods * 8 middles +
        // 4 tops; leaf-middle 16*8 + middle-top 32*4 links.
        TopoCase{"fattree-128-8-4-8-4", "adaptive", 52, 128, 512,
                 4, -1, true, false},
        // Hypercube: only the top dimension crosses the id split.
        TopoCase{"hypercube-5", "ecube", 32, 32, 160, 5, 32, true,
                 true},
        // 4x4 torus: 2 channels per dim per router; the top-dim
        // split cuts 2 links per column, both directions.
        TopoCase{"torus-4-2", "tordor", 16, 16, 64, 4, 16, true,
                 true},
        // 4x4 generalized hypercube: K4 in each dimension.
        TopoCase{"ghc-4x4", "ghcadapt", 16, 16, 96, 2, 32, true,
                 true},
        // Dragonfly(2,4,2): 9 groups of 4; crossing arcs are the
        // group-4-internal {16,17}x{18,19} locals (8) plus the
        // 16 lower-group x upper-group globals (32).
        TopoCase{"dragonfly-2-4-2", "dfugal", 36, 72, 180, 3, 40,
                 true, true},
        // Slim Fly MMS(5): subgraph-major ids put the whole
        // bisection on the q^3 cross channels.
        TopoCase{"slimfly-5-2", "sfugal", 50, 100, 350, 2, 250,
                 true, true}));

/**
 * The analytic structure fields the design search prunes with
 * (harness/design_search.h) against BFS ground truth, for every
 * family the enumerator emits: closed-form router/terminal counts
 * must match the built topology, and the closed-form diameter and
 * terminal-pair average minimal hop count must match the arc-list
 * BFS exactly.  (The dragonfly closed form models the canonical
 * local->global->local routes; it equals BFS for the h = 1 config
 * the enumeration windows cover — with h > 1 double-global
 * shortcuts make BFS an underestimate of routed hops, see
 * test_dragonfly.cc.)
 */
TEST(TopologyInvariants, DesignSearchAnalyticsMatchBfsGroundTruth)
{
    std::vector<DesignSpec> windows(2);
    windows[0].minTerminals = 12;
    windows[0].maxTerminalFactor = 3.0; // fbfly/clos/hc/ghc/df
    windows[1].minTerminals = 100;
    windows[1].maxTerminalFactor = 1.32; // slimfly-5-2 et al.

    std::set<std::string> seen;
    std::set<std::string> families;
    for (const DesignSpec &spec : windows) {
        for (const DesignCandidate &c :
             enumerateDesignCandidates(spec)) {
            // Variants share one topology; analytic claims too.
            if (!seen.insert(c.topoSpec).second)
                continue;
            families.insert(toString(c.family));
            SCOPED_TRACE(c.topoSpec);
            const NetworkBundle bundle =
                makeNetworkBundle(c.topoSpec, c.routing);
            const Topology &topo = *bundle.topology;
            ASSERT_EQ(topo.numRouters(), c.routers);
            ASSERT_EQ(topo.numNodes(), c.terminals);

            const auto dist = topotest::allPairsDistances(topo);
            // Terminal population per router (leaves only, for the
            // indirect families).
            std::vector<std::int64_t> cnt(topo.numRouters(), 0);
            for (NodeId v = 0; v < topo.numNodes(); ++v) {
                ASSERT_EQ(topo.injectionRouter(v),
                          topo.ejectionRouter(v));
                ++cnt[topo.injectionRouter(v)];
            }
            int max_dist = 0;
            double hop_sum = 0.0;
            for (RouterId r1 = 0; r1 < topo.numRouters(); ++r1) {
                if (cnt[r1] == 0)
                    continue;
                for (RouterId r2 = 0; r2 < topo.numRouters();
                     ++r2) {
                    if (cnt[r2] == 0)
                        continue;
                    ASSERT_GE(dist[r1][r2], 0) << "disconnected";
                    hop_sum += static_cast<double>(cnt[r1]) *
                               static_cast<double>(cnt[r2]) *
                               dist[r1][r2];
                    if (r1 != r2 || cnt[r1] > 1)
                        max_dist =
                            std::max(max_dist, dist[r1][r2]);
                }
            }
            EXPECT_EQ(max_dist, c.diameter);
            const double pairs =
                static_cast<double>(c.terminals) *
                static_cast<double>(c.terminals - 1);
            const double bfs_avg = hop_sum / pairs;
            EXPECT_NEAR(c.avgMinHops, bfs_avg,
                        1e-9 * std::max(1.0, bfs_avg));
        }
    }
    // The sweep really covered every family the enumerator knows.
    EXPECT_EQ(families,
              (std::set<std::string>{"fbfly", "clos", "hypercube",
                                     "ghc", "dragonfly",
                                     "slimfly"}));
}

} // namespace
} // namespace fbfly
