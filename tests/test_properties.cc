/**
 * @file
 * Cross-cutting property tests: conservation, quiescence, hop and
 * latency invariants under randomized traffic, across every routing
 * algorithm; and consistency between the analytic models and the
 * simulated topologies.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "cost/topology_cost.h"
#include "network/network.h"
#include "routing/clos_ad.h"
#include "routing/dor.h"
#include "routing/min_adaptive.h"
#include "routing/ugal.h"
#include "routing/valiant.h"
#include "topology/flattened_butterfly.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

std::unique_ptr<RoutingAlgorithm>
makeAlgo(const std::string &name, const FlattenedButterfly &topo)
{
    if (name == "DOR")
        return std::make_unique<DimensionOrder>(topo);
    if (name == "MIN AD")
        return std::make_unique<MinAdaptive>(topo);
    if (name == "VAL")
        return std::make_unique<Valiant>(topo);
    if (name == "UGAL")
        return std::make_unique<Ugal>(topo, false);
    if (name == "UGAL-S")
        return std::make_unique<Ugal>(topo, true);
    return std::make_unique<ClosAd>(topo);
}

struct FuzzCase
{
    std::string algo;
    std::uint64_t seed;
};

void
PrintTo(const FuzzCase &c, std::ostream *os)
{
    *os << c.algo << "/seed" << c.seed;
}

class RoutingFuzz : public ::testing::TestWithParam<FuzzCase>
{
};

/**
 * Fuzz: random bursts of mixed traffic, then full drain.  Checks
 * conservation (every injected flit ejects exactly once), quiescence
 * (no stuck flits => no deadlock/livelock), the flattened-butterfly
 * hop bound (<= 2n' inter-router hops + ejection), and that latency
 * is at least the hop count.
 */
TEST_P(RoutingFuzz, ConservationAndBounds)
{
    const auto param = GetParam();
    FlattenedButterfly topo(3, 4); // 81 nodes, 27 routers, n'=3
    auto algo = makeAlgo(param.algo, topo);

    NetworkConfig cfg;
    cfg.numVcs = algo->numVcs();
    cfg.vcDepth = 4;
    cfg.seed = param.seed;
    Network net(topo, *algo, nullptr, cfg);

    Rng fuzz(param.seed * 7919 + 13);
    UniformRandom ur(topo.numNodes());
    AdversarialNeighbor wc(topo.numNodes(), topo.k());
    GroupTornado tor(topo.numNodes(), topo.k());

    std::uint64_t sent = 0;
    for (int burst = 0; burst < 20; ++burst) {
        const int kind = static_cast<int>(fuzz.nextBounded(3));
        const int packets = 1 + static_cast<int>(fuzz.nextBounded(60));
        for (int i = 0; i < packets; ++i) {
            const auto src = static_cast<NodeId>(
                fuzz.nextBounded(topo.numNodes()));
            Rng &trng = net.terminal(src).rng();
            NodeId dst;
            switch (kind) {
              case 0: dst = ur.dest(src, trng); break;
              case 1: dst = wc.dest(src, trng); break;
              default: dst = tor.dest(src, trng); break;
            }
            net.terminal(src).enqueuePacket(net.now(), dst, true);
            ++sent;
        }
        const int run = 1 + static_cast<int>(fuzz.nextBounded(40));
        for (int c = 0; c < run; ++c)
            net.step();
    }
    for (int c = 0; c < 20000 && !net.quiescent(); ++c)
        net.step();

    ASSERT_TRUE(net.quiescent())
        << "flits stuck after drain (deadlock or lost credit)";
    EXPECT_EQ(net.stats().measuredEjected, sent);
    EXPECT_EQ(net.stats().flitsInjected, net.stats().flitsEjected);
    EXPECT_LE(net.stats().hops.max(), 2 * topo.numDims() + 1);
    EXPECT_GE(net.stats().networkLatency.min(),
              net.stats().hops.min());
}

INSTANTIATE_TEST_SUITE_P(
    AlgoSeeds, RoutingFuzz,
    ::testing::Values(FuzzCase{"DOR", 1}, FuzzCase{"DOR", 2},
                      FuzzCase{"MIN AD", 1}, FuzzCase{"MIN AD", 2},
                      FuzzCase{"VAL", 1}, FuzzCase{"VAL", 2},
                      FuzzCase{"UGAL", 1}, FuzzCase{"UGAL", 2},
                      FuzzCase{"UGAL-S", 1}, FuzzCase{"UGAL-S", 2},
                      FuzzCase{"CLOS AD", 1},
                      FuzzCase{"CLOS AD", 2}));

TEST(ModelConsistency, CostInventoryMatchesSimulatedTopology)
{
    // The Section 4 link inventory and the simulated topology must
    // agree on structure for the exact k-ary n-flat configurations.
    TopologyCostModel model;
    const struct
    {
        int k;
        int n;
    } cases[] = {{4, 2}, {8, 2}, {4, 3}, {2, 4}, {16, 3}};
    for (const auto &c : cases) {
        FlattenedButterfly topo(c.k, c.n);
        const Inventory inv = model.kAryNFlat(c.k, c.n);
        EXPECT_EQ(inv.numNodes, topo.numNodes());
        EXPECT_EQ(inv.totalRouters(), topo.numRouters());
        EXPECT_EQ(inv.totalLinks(false),
                  static_cast<std::int64_t>(topo.arcs().size()))
            << c.k << "-ary " << c.n << "-flat";
    }
}

TEST(ModelConsistency, EffectiveRadixMatchesTopologyRadix)
{
    // Section 5.1.2's k' formula equals the constructed router
    // radix for the matching (k, n).
    for (int np = 1; np <= 3; ++np) {
        const int k = 64 / (np + 1);
        FlattenedButterfly topo(k, np + 1);
        EXPECT_EQ(topo.radix(),
                  FlattenedButterfly::effectiveRadix(64, np));
    }
}

TEST(ModelConsistency, CapacityNormalization)
{
    // All four compared topologies are charged for capacity 1: the
    // flattened butterfly's bisection (in 3-signal channel units)
    // equals N/2 unidirectional crossings, the Clos carries 2N
    // link-ends per level, and the hypercube's 2(N/2) crossings are
    // halved to 1.5 signals.
    TopologyCostModel model;
    const std::int64_t n = 1024;
    const auto fb = model.flattenedButterfly(n);
    const auto hc = model.hypercube(n);
    // Flattened butterfly 1K: 32 routers fully connected; crossing
    // a half split: 16*16 pairs * 2 directions = 512 = N/2.
    EXPECT_EQ(fb.totalLinks(false), 992);
    double hc_crossing_signals = 0.0;
    for (const auto &g : hc.links) {
        if (g.label == "dim9") // top dimension crosses the bisection
            hc_crossing_signals +=
                static_cast<double>(g.count) * g.signalsPerLink;
    }
    EXPECT_DOUBLE_EQ(hc_crossing_signals, 1024 * 1.5);
}

TEST(Determinism, WholeExperimentsAreReproducible)
{
    // End-to-end determinism across the full stack (topology,
    // routing, traffic, harness): byte-identical statistics.
    FlattenedButterfly topo(8, 2);
    ClosAd algo(topo);
    AdversarialNeighbor wc(topo.numNodes(), topo.k());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();

    auto fingerprint = [&]() {
        Network net(topo, algo, &wc, cfg);
        BernoulliInjection inj(0.44, 1, 321);
        for (int c = 0; c < 1200; ++c) {
            inj.tick(net, true);
            net.step();
        }
        const auto &st = net.stats();
        return std::tuple{st.flitsEjected, st.packetLatency.mean(),
                          st.packetLatency.variance(),
                          st.hops.sum(),
                          net.interRouterFlitCounts()};
    };
    EXPECT_EQ(fingerprint(), fingerprint());
}

} // namespace
} // namespace fbfly
