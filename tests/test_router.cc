/**
 * @file
 * Router micro-tests: a single router wired to hand-driven channels,
 * exercising credit flow control, queue estimation, the greedy vs
 * sequential routing-decision allocators, round-robin arbitration,
 * and the speedup (bypass) switch path.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "network/channel.h"
#include "network/router.h"
#include "routing/routing.h"

namespace fbfly
{
namespace
{

/** Routes every flit to the port stored in its dst field, VC 0. */
class PortByDst : public RoutingAlgorithm
{
  public:
    std::string name() const override { return "port-by-dst"; }
    int numVcs() const override { return 1; }
    RouteDecision
    route(Router &, Flit &flit) override
    {
        return {flit.dst, 0};
    }
};

/** Chooses the emptier of ports 2 and 3; greedy or sequential. */
class MinQueueStub : public RoutingAlgorithm
{
  public:
    explicit MinQueueStub(bool seq) : seq_(seq) {}
    std::string name() const override { return "min-queue-stub"; }
    int numVcs() const override { return 1; }
    bool sequential() const override { return seq_; }
    RouteDecision
    route(Router &router, Flit &) override
    {
        const int q2 = router.estimatedQueue(2);
        const int q3 = router.estimatedQueue(3);
        return {q2 <= q3 ? 2 : 3, 0};
    }

  private:
    bool seq_;
};

Flit
makeFlit(FlitId id, NodeId dst_port, VcId vc = 0)
{
    Flit f;
    f.id = id;
    f.dst = dst_port;
    f.head = f.tail = true;
    f.packetSize = 1;
    f.vc = vc;
    return f;
}

/**
 * Test rig: one router with input channels on ports 0..in-1 and
 * output channels on the remaining ports.
 */
struct Rig
{
    Rig(int num_ports, int num_inputs, int num_vcs, int depth,
        bool bypass = true, int downstream_depth = 4)
        : router(0, num_ports, num_vcs, depth, Rng(1), bypass)
    {
        for (int p = 0; p < num_ports; ++p) {
            channels.push_back(std::make_unique<Channel>(1, 1));
            if (p < num_inputs)
                router.connectInput(p, channels.back().get());
            else
                router.connectOutput(p, channels.back().get(),
                                     downstream_depth);
        }
    }

    void
    step(Cycle t, RoutingAlgorithm &algo)
    {
        router.receive(t);
        router.routeAndTraverse(t, algo);
    }

    Channel &ch(int p) { return *channels[p]; }

    Router router;
    std::vector<std::unique_ptr<Channel>> channels;
};

TEST(Router, ForwardsAFlit)
{
    Rig rig(2, 1, 1, 4);
    PortByDst algo;

    rig.ch(0).sendFlit(makeFlit(1, 1), 0);
    rig.step(1, algo);
    const auto out = rig.ch(1).receiveFlit(2);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->id, 1u);
    EXPECT_EQ(out->hops, 1);
    EXPECT_FALSE(out->routed) << "route must not leak across hops";
}

TEST(Router, ReturnsCreditUpstream)
{
    Rig rig(2, 1, 1, 4);
    PortByDst algo;
    rig.ch(0).sendFlit(makeFlit(1, 1), 0);
    rig.step(1, algo);
    // The freed input slot's credit arrives one cycle later.
    EXPECT_EQ(rig.ch(0).receiveCredit(2).value(), 0);
}

TEST(Router, RespectsDownstreamCredits)
{
    // Downstream depth 1: the second flit must wait for a credit.
    Rig rig(2, 1, 1, 4, true, 1);
    PortByDst algo;
    rig.ch(0).sendFlit(makeFlit(1, 1), 0);
    rig.step(1, algo);
    ASSERT_TRUE(rig.ch(1).receiveFlit(2).has_value());

    rig.ch(0).sendFlit(makeFlit(2, 1), 1);
    rig.step(2, algo);
    EXPECT_FALSE(rig.ch(1).receiveFlit(3).has_value())
        << "no credits left, flit must stall";

    // Downstream frees the slot.
    rig.ch(1).sendCredit(0, 3);
    rig.step(4, algo);
    EXPECT_TRUE(rig.ch(1).receiveFlit(5).has_value());
}

TEST(Router, EstimatedQueueTracksCommittedAndCredits)
{
    Rig rig(3, 1, 1, 4, true, 4);
    PortByDst algo;
    EXPECT_EQ(rig.router.estimatedQueue(1), 0);

    rig.ch(0).sendFlit(makeFlit(1, 1), 0);
    rig.step(1, algo);
    // Flit departed: 1 credit consumed downstream, commitment
    // cleared.
    EXPECT_EQ(rig.router.estimatedQueue(1), 1);
    EXPECT_EQ(rig.router.credits(1, 0), 3);

    rig.ch(1).sendCredit(0, 2);
    rig.step(3, algo);
    EXPECT_EQ(rig.router.estimatedQueue(1), 0);
    EXPECT_EQ(rig.router.credits(1, 0), 4);
}

TEST(Router, GreedyAllocatorPilesOntoOneOutput)
{
    // Two inputs decide in the same cycle with a greedy allocator:
    // both see the same empty queues and pick the same port — the
    // paper's transient load imbalance (Section 3.2).
    Rig rig(4, 2, 1, 4);
    MinQueueStub algo(false);
    rig.ch(0).sendFlit(makeFlit(1, 0), 0);
    rig.ch(1).sendFlit(makeFlit(2, 0), 0);
    rig.step(1, algo);
    // Both chose port 2 (ties resolve to the lower port): one sent,
    // one left queued behind the port-2 channel bandwidth.
    EXPECT_TRUE(rig.ch(2).receiveFlit(2).has_value());
    EXPECT_FALSE(rig.ch(3).receiveFlit(2).has_value());
    EXPECT_EQ(rig.router.bufferedFlits(), 1);
}

TEST(Router, SequentialAllocatorSpreadsLoad)
{
    // With a sequential allocator the second decision sees the
    // first input's commitment and picks the other port.
    Rig rig(4, 2, 1, 4);
    MinQueueStub algo(true);
    rig.ch(0).sendFlit(makeFlit(1, 0), 0);
    rig.ch(1).sendFlit(makeFlit(2, 0), 0);
    rig.step(1, algo);
    EXPECT_TRUE(rig.ch(2).receiveFlit(2).has_value());
    EXPECT_TRUE(rig.ch(3).receiveFlit(2).has_value());
    EXPECT_EQ(rig.router.bufferedFlits(), 0);
}

TEST(Router, RoundRobinAlternatesBetweenInputs)
{
    // Two inputs contending for one output should alternate.
    Rig rig(3, 2, 1, 8, true, 8);
    PortByDst algo;
    for (Cycle t = 0; t < 4; ++t) {
        rig.ch(0).sendFlit(makeFlit(100 + t, 2), t);
        rig.ch(1).sendFlit(makeFlit(200 + t, 2), t);
    }
    std::vector<FlitId> order;
    for (Cycle t = 1; t <= 9; ++t) {
        rig.step(t, algo);
        while (auto f = rig.ch(2).receiveFlit(t))
            order.push_back(f->id);
    }
    ASSERT_EQ(order.size(), 8u);
    int src0 = 0;
    for (std::size_t i = 0; i < order.size(); ++i)
        src0 += order[i] < 200 ? 1 : 0;
    EXPECT_EQ(src0, 4) << "round-robin must serve both inputs";
    // No three consecutive grants to the same input.
    for (std::size_t i = 2; i < order.size(); ++i) {
        const bool a = order[i - 2] < 200;
        const bool b = order[i - 1] < 200;
        const bool c = order[i] < 200;
        EXPECT_FALSE(a == b && b == c);
    }
}

TEST(Router, BypassAvoidsHeadOfLineBlocking)
{
    // Flit 1 targets a credit-starved output; flit 2 behind it in
    // the same VC targets a free output and must still depart — the
    // "sufficient switch speedup" idealization of Section 3.2.
    Rig rig(3, 1, 1, 4, true, 1);
    PortByDst algo;
    // Exhaust port 1's single credit.
    rig.ch(0).sendFlit(makeFlit(1, 1), 0);
    rig.step(1, algo);
    ASSERT_TRUE(rig.ch(1).receiveFlit(2).has_value());

    rig.ch(0).sendFlit(makeFlit(2, 1), 1); // blocked
    rig.step(2, algo);
    rig.ch(0).sendFlit(makeFlit(3, 2), 2); // behind, free output
    rig.step(3, algo);
    EXPECT_FALSE(rig.ch(1).receiveFlit(4).has_value());
    const auto f = rig.ch(2).receiveFlit(4);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->id, 3u);
}

TEST(Router, FifoModeBlocksBehindStalledHead)
{
    // The strict FIFO path (multi-flit mode) must NOT bypass.
    Rig rig(3, 1, 1, 4, false, 1);
    PortByDst algo;
    rig.ch(0).sendFlit(makeFlit(1, 1), 0);
    rig.step(1, algo);
    ASSERT_TRUE(rig.ch(1).receiveFlit(2).has_value());

    rig.ch(0).sendFlit(makeFlit(2, 1), 1); // blocked head
    rig.ch(0).sendFlit(makeFlit(3, 2), 2); // stuck behind it
    rig.step(2, algo);
    rig.step(3, algo);
    rig.step(4, algo);
    EXPECT_FALSE(rig.ch(2).receiveFlit(5).has_value());
    EXPECT_EQ(rig.router.bufferedFlits(), 2);
}

TEST(Router, FifoModeKeepsMultiFlitPacketsContiguousPerVc)
{
    // Two 2-flit packets on different input VCs share output VC 0:
    // wormhole ownership must forbid interleaving.
    Rig rig(2, 1, 2, 4, false, 4);
    PortByDst algo;

    auto part = [](FlitId id, PacketId pkt, bool head, bool tail,
                   VcId vc) {
        Flit f;
        f.id = id;
        f.packet = pkt;
        f.dst = 1;
        f.head = head;
        f.tail = tail;
        f.packetSize = 2;
        f.vc = vc;
        return f;
    };
    rig.ch(0).sendFlit(part(10, 1, true, false, 0), 0);
    rig.ch(0).sendFlit(part(20, 2, true, false, 1), 1);
    rig.ch(0).sendFlit(part(11, 1, false, true, 0), 2);
    rig.ch(0).sendFlit(part(21, 2, false, true, 1), 3);

    std::vector<PacketId> order;
    for (Cycle t = 1; t <= 10; ++t) {
        rig.step(t, algo);
        while (auto f = rig.ch(1).receiveFlit(t))
            order.push_back(f->packet);
    }
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], order[1]) << "packets must not interleave";
    EXPECT_EQ(order[2], order[3]);
    EXPECT_NE(order[0], order[2]);
}

TEST(Router, SinkOutputsNeverRunOutOfCredits)
{
    Rig rig(2, 1, 1, 4, true, Router::kInfiniteCredits);
    PortByDst algo;
    for (Cycle t = 0; t < 20; ++t) {
        rig.ch(0).sendFlit(makeFlit(t, 1), t);
        rig.step(t + 1, algo);
    }
    int received = 0;
    for (Cycle t = 0; t <= 22; ++t) {
        while (rig.ch(1).receiveFlit(t).has_value())
            ++received;
    }
    EXPECT_EQ(received, 20);
    EXPECT_EQ(rig.router.estimatedQueue(1), 0)
        << "sink occupancy must not accumulate";
}

TEST(RouterDeath, RouteToUnwiredPortPanics)
{
    // Port 2 exists but has no channel: wire only port 1.
    Router bare(1, 3, 1, 4, Rng(2), true);
    Channel in(1, 1);
    Channel out(1, 1);
    bare.connectInput(0, &in);
    bare.connectOutput(1, &out, 4);
    PortByDst algo;
    in.sendFlit(makeFlit(1, 2), 0); // routes to unwired port 2
    bare.receive(1);
    EXPECT_DEATH(bare.routeAndTraverse(1, algo), "unwired");
}

} // namespace
} // namespace fbfly
