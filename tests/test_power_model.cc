/**
 * @file
 * Tests for the Section 5.3 / Table 5 power model.
 */

#include <gtest/gtest.h>

#include "power/power_model.h"

namespace fbfly
{
namespace
{

TEST(PowerModel, Table5Defaults)
{
    PowerModel pm;
    EXPECT_DOUBLE_EQ(pm.switchPowerW, 40.0);
    EXPECT_DOUBLE_EQ(pm.linkGlobalW, 0.200);
    EXPECT_DOUBLE_EQ(pm.linkGlobalLocalW, 0.160);
    EXPECT_DOUBLE_EQ(pm.linkLocalW, 0.040);
}

TEST(PowerModel, GlobalLocalRelationship)
{
    // "the power consumed to drive a local link is 20% less than
    // ... a global cable"; the dedicated local SerDes gives "over
    // 5x power reduction".
    PowerModel pm;
    EXPECT_NEAR(pm.linkGlobalLocalW, 0.8 * pm.linkGlobalW, 1e-12);
    EXPECT_GT(pm.linkGlobalW / pm.linkLocalW, 4.9);
}

TEST(PowerModel, SignalPowerDispatch)
{
    PowerModel pm;
    // Global cables cost P_gg regardless of topology style.
    EXPECT_DOUBLE_EQ(
        pm.signalPower(LinkLocale::GlobalCable, true), 0.200);
    EXPECT_DOUBLE_EQ(
        pm.signalPower(LinkLocale::GlobalCable, false), 0.200);
    // Local links: dedicated SerDes for direct topologies only.
    EXPECT_DOUBLE_EQ(
        pm.signalPower(LinkLocale::LocalCable, true), 0.040);
    EXPECT_DOUBLE_EQ(
        pm.signalPower(LinkLocale::LocalCable, false), 0.160);
    EXPECT_DOUBLE_EQ(
        pm.signalPower(LinkLocale::Backplane, true), 0.040);
}

TEST(PowerModel, SwitchPowerScalesWithBandwidth)
{
    PowerModel pm;
    Inventory inv;
    inv.routers.push_back({1, 384.0, "full"}); // radix-64 router
    EXPECT_NEAR(pm.power(inv).switchPower, 40.0, 1e-9);
    inv.routers[0].signalsPerRouter = 96.0;
    EXPECT_NEAR(pm.power(inv).switchPower, 10.0, 1e-9);
}

TEST(PowerModel, LinkPowerCountsSignals)
{
    PowerModel pm;
    Inventory inv;
    inv.direct = true;
    inv.links.push_back({LinkLocale::GlobalCable, 5.0, 100, 3.0,
                         "g"});
    EXPECT_NEAR(pm.power(inv).linkPower, 100 * 3.0 * 0.2, 1e-9);
}

TEST(PowerModel, FbflyBeatsClosOnPower)
{
    // Figure 15's ordering: flattened butterfly below the folded
    // Clos everywhere, by ~half in the two-dimension band.
    TopologyCostModel model;
    PowerModel pm;
    for (std::int64_t n = 1024; n <= 32768; n *= 2) {
        const double fb =
            pm.power(model.flattenedButterfly(n)).total();
        const double clos = pm.power(model.foldedClos(n)).total();
        EXPECT_LT(fb, clos) << n;
    }
    const double fb4k =
        pm.power(model.flattenedButterfly(4096)).total();
    const double clos4k = pm.power(model.foldedClos(4096)).total();
    EXPECT_GT(1.0 - fb4k / clos4k, 0.40);
}

TEST(PowerModel, HypercubeBurnsTheMost)
{
    TopologyCostModel model;
    PowerModel pm;
    for (std::int64_t n = 1024; n <= 16384; n *= 4) {
        const double hc = pm.power(model.hypercube(n)).total();
        EXPECT_GT(hc, pm.power(model.flattenedButterfly(n)).total());
        EXPECT_GT(hc,
                  pm.power(model.conventionalButterfly(n)).total());
    }
}

TEST(PowerModel, DirectLocalityLowersFbflyBelowButterflyAt1K)
{
    // "For 1K node network, the flattened butterfly provides lower
    // power consumption than the conventional butterfly since it
    // takes advantage of the dedicated SerDes to drive local links."
    TopologyCostModel model;
    PowerModel pm;
    EXPECT_LT(pm.power(model.flattenedButterfly(1024)).total(),
              pm.power(model.conventionalButterfly(1024)).total());
}

} // namespace
} // namespace fbfly
