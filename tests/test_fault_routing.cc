/**
 * @file
 * Fault-aware routing tests: adaptive algorithms mask dead channels,
 * deliver everything at low load around a failed link, never select
 * a dead port, and report unreachable destinations by dropping
 * instead of hanging.
 */

#include <gtest/gtest.h>

#include <memory>

#include "fault/fault_model.h"
#include "network/network.h"
#include "routing/ghc_adaptive.h"
#include "routing/min_adaptive.h"
#include "routing/ugal.h"
#include "routing/valiant.h"
#include "topology/flattened_butterfly.h"
#include "topology/generalized_hypercube.h"

namespace fbfly
{
namespace
{

std::size_t
arcIndexOf(const std::vector<Topology::Arc> &arcs, RouterId a,
           RouterId b)
{
    for (std::size_t i = 0; i < arcs.size(); ++i) {
        if (arcs[i].src == a && arcs[i].dst == b)
            return i;
    }
    ADD_FAILURE() << "no arc " << a << "->" << b;
    return 0;
}

/** Send every (src, dst) pair once and run to quiescence. */
std::uint64_t
sendAllPairs(Network &net, std::int64_t n)
{
    std::uint64_t sent = 0;
    for (NodeId dst = 0; dst < n; ++dst) {
        for (NodeId src = 0; src < n; ++src) {
            if (src == dst)
                continue;
            net.terminal(src).enqueuePacket(net.now(), dst, true);
            ++sent;
        }
        for (int c = 0; c < 100 && !net.quiescent(); ++c)
            net.step();
    }
    for (int c = 0; c < 5000 && !net.quiescent(); ++c)
        net.step();
    return sent;
}

class AdaptiveAroundDeadLink
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AdaptiveAroundDeadLink, DeliversEverythingAndMasksDeadPort)
{
    FlattenedButterfly topo(4, 2);
    std::unique_ptr<RoutingAlgorithm> algo;
    if (GetParam() == "minad")
        algo = std::make_unique<MinAdaptive>(topo);
    else if (GetParam() == "ugal")
        algo = std::make_unique<Ugal>(topo, false);
    else
        algo = std::make_unique<Valiant>(topo);

    FaultModel fm(topo);
    ASSERT_EQ(fm.failLinkBetween(0, 1), 2);
    ASSERT_TRUE(fm.connected());

    NetworkConfig cfg;
    cfg.numVcs = algo->numVcs();
    cfg.vcDepth = 8;
    cfg.faults = &fm;
    cfg.watchdogCycles = 2000;
    ASSERT_TRUE(Network::validate(topo, *algo, cfg).ok());
    Network net(topo, *algo, nullptr, cfg);

    const std::uint64_t sent = sendAllPairs(net, topo.numNodes());
    EXPECT_TRUE(net.quiescent());
    EXPECT_FALSE(net.stalled());
    EXPECT_EQ(net.stats().measuredEjected, sent);
    EXPECT_EQ(net.stats().flitsDropped, 0u);
    EXPECT_EQ(net.checkInvariants(), "");

    // The dead channel carried nothing, in either direction.
    const auto arcs = topo.arcs();
    const auto counts = net.interRouterFlitCounts();
    EXPECT_EQ(counts[arcIndexOf(arcs, 0, 1)], 0u);
    EXPECT_EQ(counts[arcIndexOf(arcs, 1, 0)], 0u);
    // Traffic between the severed routers flowed around the failure.
    EXPECT_GT(net.stats().hops.mean(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(FaultRouting, AdaptiveAroundDeadLink,
                         ::testing::Values("minad", "ugal", "val"));

TEST(FaultRouting, GhcAdaptiveRoutesAroundDeadLink)
{
    GeneralizedHypercube topo({4, 4});
    GhcAdaptive algo(topo);
    FaultModel fm(topo);
    ASSERT_EQ(fm.failLinkBetween(0, 1), 2); // dimension-0 neighbors
    ASSERT_TRUE(fm.connected());

    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 8;
    cfg.faults = &fm;
    cfg.watchdogCycles = 2000;
    Network net(topo, algo, nullptr, cfg);

    const std::uint64_t sent = sendAllPairs(net, topo.numNodes());
    EXPECT_TRUE(net.quiescent());
    EXPECT_EQ(net.stats().measuredEjected, sent);
    EXPECT_EQ(net.stats().flitsDropped, 0u);
    const auto counts = net.interRouterFlitCounts();
    const auto arcs = topo.arcs();
    EXPECT_EQ(counts[arcIndexOf(arcs, 0, 1)], 0u);
}

TEST(FaultRouting, UnreachableDestinationDropsInsteadOfHanging)
{
    // Sever router 1 completely: its nodes become unreachable.  The
    // network must drop those packets (budgeted escapes) and reach
    // quiescence rather than hang.
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    FaultModel fm(topo);
    for (RouterId r = 0; r < 4; ++r) {
        if (r != 1) {
            ASSERT_EQ(fm.failLinkBetween(1, r), 2);
        }
    }
    ASSERT_FALSE(fm.connected());

    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 8;
    cfg.faults = &fm;
    cfg.watchdogCycles = 5000;
    // validate() flags the disconnection; the run is still legal for
    // callers that accept drops.
    EXPECT_FALSE(Network::validate(topo, algo, cfg).ok());
    Network net(topo, algo, nullptr, cfg);

    // Nodes of router 0 -> nodes of router 1 (4 terminals each).
    std::uint64_t sent = 0;
    for (NodeId src = 0; src < 4; ++src) {
        for (NodeId dst = 4; dst < 8; ++dst) {
            net.terminal(src).enqueuePacket(net.now(), dst, true);
            ++sent;
        }
    }
    for (int c = 0; c < 20000 && !net.quiescent(); ++c)
        net.step();
    EXPECT_TRUE(net.quiescent());
    EXPECT_FALSE(net.stalled());
    EXPECT_EQ(net.stats().measuredEjected, 0u);
    EXPECT_EQ(net.stats().measuredDropped, sent);
    EXPECT_EQ(net.stats().packetsUnreachable, sent);
    EXPECT_EQ(net.checkInvariants(), "");
}

TEST(FaultRouting, MidRunLinkFailureIsSurvived)
{
    // A link that dies mid-run: packets in flight keep flowing,
    // later packets route around it, nothing is lost.
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    FaultModel fm(topo);
    fm.failLinkBetween(0, 1, /*at=*/50);

    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 8;
    cfg.faults = &fm;
    cfg.watchdogCycles = 2000;
    cfg.invariantCheckInterval = 16;
    Network net(topo, algo, nullptr, cfg);

    Rng rng(99);
    std::uint64_t sent = 0;
    for (int c = 0; c < 400; ++c) {
        const auto src = static_cast<NodeId>(rng.nextBounded(16));
        auto dst = static_cast<NodeId>(rng.nextBounded(16));
        if (dst == src)
            dst = (dst + 1) % 16;
        net.terminal(src).enqueuePacket(net.now(), dst, true);
        ++sent;
        net.step();
    }
    for (int c = 0; c < 5000 && !net.quiescent(); ++c)
        net.step();
    EXPECT_TRUE(net.quiescent());
    EXPECT_EQ(net.stats().measuredEjected, sent);
    EXPECT_EQ(net.stats().flitsDropped, 0u);
    EXPECT_EQ(net.checkInvariants(), "");
}

} // namespace
} // namespace fbfly
