/**
 * @file
 * Tests for the Section 5.2 wire-delay model and per-arc channel
 * latencies, including the paper's claim that the flattened
 * butterfly's packaging locality beats the folded Clos's
 * middle-stage detour on local traffic.
 */

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/wire_delay.h"
#include "network/network.h"
#include "routing/clos_ad.h"
#include "routing/folded_clos_adaptive.h"
#include "routing/min_adaptive.h"
#include "topology/flattened_butterfly.h"
#include "topology/folded_clos.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

TEST(WireDelay, LatencyForLength)
{
    WireDelayModel wire;
    wire.metersPerCycle = 0.25;
    wire.minLatency = 1;
    EXPECT_EQ(wire.latencyForLength(0.0), 1u);
    EXPECT_EQ(wire.latencyForLength(0.25), 1u);
    EXPECT_EQ(wire.latencyForLength(0.26), 2u);
    EXPECT_EQ(wire.latencyForLength(5.0), 20u);
}

TEST(WireDelay, FbflyArcLatenciesMatchArcList)
{
    FlattenedButterfly topo(8, 3);
    PackagingModel pkg;
    WireDelayModel wire;
    const auto lat = fbflyArcLatencies(topo, pkg, wire);
    EXPECT_EQ(lat.size(), topo.arcs().size());
    for (const Cycle c : lat)
        EXPECT_GE(c, wire.minLatency);
}

TEST(WireDelay, HigherDimensionsAreLonger)
{
    // In a 16-ary 4-flat, dimension 1 lives in a cabinet pair while
    // dimension 3 spans the floor (paper Figure 8).
    FlattenedButterfly topo(16, 4);
    PackagingModel pkg;
    WireDelayModel wire;
    const auto lat = fbflyArcLatencies(topo, pkg, wire);
    // Arc order: router-major, dims ascending, k-1 arcs per dim.
    const Cycle dim1 = lat[0];
    const Cycle dim3 = lat[2 * 15];
    EXPECT_LT(dim1, dim3);
}

TEST(WireDelay, ClosArcsAllGlobal)
{
    FoldedClos topo(1024, 32, 16);
    PackagingModel pkg;
    WireDelayModel wire;
    const auto lat = foldedClosArcLatencies(topo, pkg, wire);
    EXPECT_EQ(lat.size(), topo.arcs().size());
    for (std::size_t i = 1; i < lat.size(); ++i)
        EXPECT_EQ(lat[i], lat[0]);
    EXPECT_GT(lat[0], 1u);
}

TEST(WireDelay, NetworkHonoursPerArcLatencies)
{
    FlattenedButterfly topo(4, 2);
    ClosAd algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.arcLatencies.assign(topo.arcs().size(), 7);
    Network net(topo, algo, nullptr, cfg);
    net.terminal(0).enqueuePacket(0, 15, true);
    while (!net.quiescent())
        net.step();
    // 1 terminal hop (latency 1) + 1 inter-router hop (latency 7)
    // + ejection (latency 1) + per-router cycles: well above the
    // uniform-latency case.
    EXPECT_GE(net.stats().packetLatency.mean(), 9.0);
}

TEST(WireDelay, MismatchedArcLatenciesPanic)
{
    FlattenedButterfly topo(4, 2);
    ClosAd algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.arcLatencies.assign(3, 1); // wrong size
    EXPECT_DEATH(Network(topo, algo, nullptr, cfg), "arcLatencies");
}

/**
 * Section 5.2's claim: with realistic wire delays, local
 * (adjacent-router) traffic sees lower latency on the flattened
 * butterfly — whose packaging gives it minimal Manhattan distance —
 * than on the folded Clos, which detours through a central router
 * cabinet and pays the global-cable delay twice.  Measured at a
 * load below the minimal-routing cap (1/k) so the comparison is
 * about wire delay, not misrouting.
 */
TEST(WireDelay, FbflyBeatsClosOnLocalTrafficWithWireDelay)
{
    // N = 4K: the 16-ary 3-flat's dimension 1 lives inside a
    // cabinet pair (256-node subsystem), so adjacent-router traffic
    // rides a short local cable, while every folded-Clos packet
    // detours to the central cabinet and back over global cables.
    // Minimal routing at a load below 1/k isolates the wire-delay
    // effect from misrouting.
    constexpr std::int64_t kNodes = 4096;
    PackagingModel pkg;
    WireDelayModel wire;

    FlattenedButterfly fb(16, 3);
    MinAdaptive fb_algo(fb);
    FoldedClos fc(kNodes, 32, 16);
    FoldedClosAdaptive fc_algo(fc);
    AdversarialNeighbor wc(kNodes, 32);

    ExperimentConfig e;
    e.warmupCycles = 300;
    e.measureCycles = 300;
    e.drainCycles = 1500;

    NetworkConfig fb_cfg;
    fb_cfg.vcDepth = 32 / fb_algo.numVcs();
    fb_cfg.arcLatencies = fbflyArcLatencies(fb, pkg, wire);
    const auto fb_r =
        runLoadPoint(fb, fb_algo, wc, fb_cfg, e, 0.02);

    NetworkConfig fc_cfg;
    fc_cfg.vcDepth = 32 / fc_algo.numVcs();
    fc_cfg.arcLatencies = foldedClosArcLatencies(fc, pkg, wire);
    const auto fc_r =
        runLoadPoint(fc, fc_algo, wc, fc_cfg, e, 0.02);

    EXPECT_FALSE(fb_r.saturated);
    EXPECT_FALSE(fc_r.saturated);
    EXPECT_LT(fb_r.avgLatency, fc_r.avgLatency)
        << "the Clos must pay ~2x global wire delay on local "
           "traffic";
}

} // namespace
} // namespace fbfly
