/**
 * @file
 * Schema validation of the fbfly-sweep-v1 JSON document
 * (harness/result_writer.h) against the checked-in schema
 * tests/data/fbfly-sweep-v1.schema.json.
 *
 * Parsing and subset validation live in the shared test helper
 * tests/json_test_util.h (also used by the fbfly-pareto-v1 document
 * test): parsing the writer's output from scratch is itself the test
 * that the writer emits well-formed JSON (balanced structure,
 * escaped strings, no bare NaN).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/result_writer.h"
#include "json_test_util.h"
#include "routing/min_adaptive.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

#ifndef FBFLY_TEST_DATA_DIR
#error "FBFLY_TEST_DATA_DIR must be defined by the build"
#endif

using testjson::Json;
using testjson::JsonParser;
using testjson::validate;

Json
loadSchema()
{
    return testjson::loadSchema(FBFLY_TEST_DATA_DIR,
                                "fbfly-sweep-v1.schema.json");
}

// ---------------------------------------------------------------------
// Document generation
// ---------------------------------------------------------------------

/** A document with one real (obs-enabled) load point, one never-ran
 *  NaN point, and one batch point — covering every branch of the
 *  writer. */
std::string
makeDocument(const std::string &trace_file)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig netcfg;
    netcfg.vcDepth = 8;
    ExperimentConfig expcfg;
    expcfg.warmupCycles = 50;
    expcfg.measureCycles = 100;
    expcfg.drainCycles = 1000;
    expcfg.obs.metricsEnabled = true;
    expcfg.obs.metricsWindowCycles = 50;

    std::vector<SweepPointRecord> records;

    SweepPointRecord real;
    real.index = 0;
    real.series = "schema \"quoted\" series\n";
    real.topology = topo.name();
    real.routing = algo.name();
    real.traffic = pattern.name();
    real.seed = 42;
    real.wallSeconds = 0.25;
    real.load = runLoadPoint(topo, algo, pattern, netcfg, expcfg,
                             0.2);
    records.push_back(real);

    SweepPointRecord nan_point;
    nan_point.index = 1;
    nan_point.series = "never ran";
    nan_point.load.offered = 0.3;
    nan_point.load.status = LoadPointStatus::kInvalidConfig;
    records.push_back(nan_point); // all statistics still NaN

    SweepPointRecord batch;
    batch.index = 2;
    batch.kind = SweepPointKind::kBatch;
    batch.series = "batch";
    batch.batch.batchSize = 10;
    batch.batch.completionTime = 123;
    batch.batch.normalizedLatency = 12.3;
    records.push_back(batch);

    SweepRunMeta meta;
    meta.bench = "schema_test";
    meta.description = "document for schema validation";
    meta.extra.emplace_back("key", "value");
    meta.extraNumbers.emplace_back("step_rate_cycles_per_sec", 1.25e6);
    meta.extraNumbers.emplace_back("never_measured_rate",
                                   std::nan(""));
    meta.traceFile = trace_file;
    return sweepResultsToJson(meta, records, 2007, 3, 1.5);
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

TEST(SweepSchema, DocumentValidatesAgainstCheckedInSchema)
{
    const std::string doc = makeDocument("");
    JsonParser parser(doc);
    const Json root = parser.parse();
    const Json schema = loadSchema();
    ASSERT_EQ(schema.type, Json::Type::kObject);
    validate(root, schema, "$");
}

TEST(SweepSchema, RequiredKeysAndValues)
{
    const std::string doc = makeDocument("out.trace.json");
    JsonParser parser(doc);
    const Json root = parser.parse();

    ASSERT_EQ(root.type, Json::Type::kObject);
    const Json *schema_tag = root.find("schema");
    ASSERT_NE(schema_tag, nullptr);
    EXPECT_EQ(schema_tag->str, kSweepJsonSchema);
    EXPECT_EQ(root.find("seed")->number, 2007.0);
    EXPECT_EQ(root.find("threads")->number, 3.0);

    // trace_file round-trips as a string when set...
    const Json *tf = root.find("trace_file");
    ASSERT_NE(tf, nullptr);
    EXPECT_EQ(tf->type, Json::Type::kString);
    EXPECT_EQ(tf->str, "out.trace.json");

    const Json *points = root.find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_EQ(points->elems.size(), 3u);

    // ... and as null when unset.
    const std::string doc2 = makeDocument("");
    JsonParser p2(doc2);
    const Json root2 = p2.parse();
    EXPECT_EQ(root2.find("trace_file")->type, Json::Type::kNull);
}

TEST(SweepSchema, NaNSerializesAsNullNeverAsNumber)
{
    const std::string doc = makeDocument("");
    EXPECT_EQ(doc.find("nan"), std::string::npos);
    EXPECT_EQ(doc.find("inf"), std::string::npos);

    JsonParser parser(doc);
    const Json root = parser.parse();
    const Json &nan_point = root.find("points")->elems[1];

    // The never-ran point: every derived statistic is null, the
    // counters are real zeros, the status string survives.
    for (const char *key :
         {"accepted", "avg_latency", "avg_network_latency",
          "avg_hops", "p99_latency", "retransmit_rate"}) {
        const Json *v = nan_point.find(key);
        ASSERT_NE(v, nullptr) << key;
        EXPECT_EQ(v->type, Json::Type::kNull)
            << key << " should be null for a never-ran point";
    }
    EXPECT_EQ(nan_point.find("offered")->number, 0.3);
    EXPECT_EQ(nan_point.find("status")->str, "invalid-config");
    EXPECT_EQ(nan_point.find("valid")->type, Json::Type::kBool);
    EXPECT_FALSE(nan_point.find("valid")->boolean);

    // The real point's statistics are finite numbers.
    const Json &real = root.find("points")->elems[0];
    EXPECT_EQ(real.find("accepted")->type, Json::Type::kNumber);
    EXPECT_TRUE(std::isfinite(real.find("accepted")->number));
    // The escaped series label round-trips.
    EXPECT_EQ(real.find("series")->str, "schema \"quoted\" series\n");
}

TEST(SweepSchema, MetadataNumbersAreNumbersNotStrings)
{
    const std::string doc = makeDocument("");
    JsonParser parser(doc);
    const Json root = parser.parse();

    const Json *metadata = root.find("metadata");
    ASSERT_NE(metadata, nullptr);
    ASSERT_EQ(metadata->type, Json::Type::kObject);

    // extraNumbers entries land as real JSON numbers (NaN as null),
    // never as quoted strings.
    const Json *rate = metadata->find("step_rate_cycles_per_sec");
    ASSERT_NE(rate, nullptr);
    EXPECT_EQ(rate->type, Json::Type::kNumber);
    EXPECT_EQ(rate->number, 1.25e6);
    const Json *nan_rate = metadata->find("never_measured_rate");
    ASSERT_NE(nan_rate, nullptr);
    EXPECT_EQ(nan_rate->type, Json::Type::kNull);

    // No metadata *string* value may itself be a number in disguise:
    // a value that strtod parses in full is stringly-typed numeric
    // metadata, which downstream tooling would have to re-parse.
    // (micro_kernel's step rates regressed exactly this way once.)
    for (const auto &[key, value] : metadata->members) {
        if (value.type != Json::Type::kString ||
            value.str.empty())
            continue;
        char *end = nullptr;
        std::strtod(value.str.c_str(), &end);
        EXPECT_NE(end, value.str.c_str() + value.str.size())
            << "metadata key \"" << key
            << "\" holds the numeric string \"" << value.str
            << "\" — emit it via SweepRunMeta::extraNumbers instead";
    }
}

TEST(SweepSchema, MetricsObjectShape)
{
    const std::string doc = makeDocument("");
    JsonParser parser(doc);
    const Json root = parser.parse();
    const Json &real = root.find("points")->elems[0];

    const Json *metrics = real.find("metrics");
    ASSERT_NE(metrics, nullptr)
        << "obs-enabled point must carry a metrics object";
    ASSERT_EQ(metrics->type, Json::Type::kObject);
    const Json *counters = metrics->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_NE(counters->find("net.flits_injected"), nullptr);
    const Json *series = metrics->find("series");
    ASSERT_NE(series, nullptr);
    const Json *util = series->find("obs.channel_util.mean");
    ASSERT_NE(util, nullptr);
    EXPECT_NE(util->find("window_cycles"), nullptr);
    EXPECT_NE(util->find("values"), nullptr);

    // The never-ran point carries no metrics at all.
    EXPECT_EQ(root.find("points")->elems[1].find("metrics"),
              nullptr);

    // Batch points carry the batch fields.
    const Json &batch = root.find("points")->elems[2];
    EXPECT_EQ(batch.find("kind")->str, "batch");
    EXPECT_EQ(batch.find("batch_size")->number, 10.0);
    EXPECT_EQ(batch.find("completion_cycles")->number, 123.0);
}

} // namespace
} // namespace fbfly
