/**
 * @file
 * Schema validation of the fbfly-sweep-v1 JSON document
 * (harness/result_writer.h) against the checked-in schema
 * tests/data/fbfly-sweep-v1.schema.json.
 *
 * The test carries its own minimal recursive-descent JSON parser and
 * a validator for the JSON-Schema subset the schema file uses (type /
 * required / const / enum / properties / items) — no external
 * dependency, and parsing the writer's output from scratch is itself
 * the test that the writer emits well-formed JSON (balanced
 * structure, escaped strings, no bare NaN).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.h"
#include "harness/result_writer.h"
#include "routing/min_adaptive.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

#ifndef FBFLY_TEST_DATA_DIR
#error "FBFLY_TEST_DATA_DIR must be defined by the build"
#endif

// ---------------------------------------------------------------------
// Minimal JSON value + parser
// ---------------------------------------------------------------------

struct Json
{
    enum class Type
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject
    };
    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Json> elems;
    std::vector<std::pair<std::string, Json>> members;

    const Json *find(const std::string &key) const
    {
        for (const auto &[k, v] : members) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }
    const char *typeName() const
    {
        switch (type) {
        case Type::kNull:
            return "null";
        case Type::kBool:
            return "boolean";
        case Type::kNumber:
            return "number";
        case Type::kString:
            return "string";
        case Type::kArray:
            return "array";
        case Type::kObject:
            return "object";
        }
        return "?";
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    /** Parse one document; fails the test on malformed input. */
    Json parse()
    {
        Json v = value();
        skipWs();
        EXPECT_EQ(pos_, s_.size()) << "trailing garbage at " << pos_;
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }
    char peek()
    {
        skipWs();
        if (pos_ >= s_.size()) {
            ADD_FAILURE() << "unexpected end of JSON";
            return '\0';
        }
        return s_[pos_];
    }
    void expect(char c)
    {
        if (peek() != c) {
            ADD_FAILURE() << "expected '" << c << "' at " << pos_
                          << ", got '" << s_[pos_] << "'";
        }
        ++pos_;
    }
    bool consume(const char *lit)
    {
        const std::size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Json value()
    {
        switch (peek()) {
        case '{':
            return object();
        case '[':
            return array();
        case '"': {
            Json v;
            v.type = Json::Type::kString;
            v.str = string();
            return v;
        }
        case 't':
        case 'f': {
            Json v;
            v.type = Json::Type::kBool;
            v.boolean = consume("true");
            if (!v.boolean && !consume("false"))
                ADD_FAILURE() << "bad literal at " << pos_;
            return v;
        }
        case 'n': {
            Json v;
            if (!consume("null"))
                ADD_FAILURE() << "bad literal at " << pos_;
            return v;
        }
        default:
            return number();
        }
    }

    Json object()
    {
        Json v;
        v.type = Json::Type::kObject;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = string();
            expect(':');
            v.members.emplace_back(std::move(key), value());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Json array()
    {
        Json v;
        v.type = Json::Type::kArray;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.elems.push_back(value());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string string()
    {
        expect('"');
        std::string out;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                break;
            const char e = s_[pos_++];
            switch (e) {
            case '"':
            case '\\':
            case '/':
                out += e;
                break;
            case 'n':
                out += '\n';
                break;
            case 'r':
                out += '\r';
                break;
            case 't':
                out += '\t';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'u': {
                // ASCII-only decode (all the writer ever emits).
                if (pos_ + 4 <= s_.size()) {
                    out += static_cast<char>(std::strtol(
                        s_.substr(pos_, 4).c_str(), nullptr, 16));
                    pos_ += 4;
                }
                break;
            }
            default:
                ADD_FAILURE()
                    << "bad escape '\\" << e << "' at " << pos_;
            }
        }
        expect('"');
        return out;
    }

    Json number()
    {
        const char *start = s_.c_str() + pos_;
        char *end = nullptr;
        const double x = std::strtod(start, &end);
        if (end == start) {
            ADD_FAILURE() << "bad JSON value at " << pos_;
            ++pos_; // avoid an infinite loop on garbage
        } else {
            pos_ += static_cast<std::size_t>(end - start);
        }
        Json v;
        v.type = Json::Type::kNumber;
        v.number = x;
        return v;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Schema validator (the subset the schema file uses)
// ---------------------------------------------------------------------

bool
typeMatches(const Json &v, const std::string &name)
{
    if (name == "null")
        return v.type == Json::Type::kNull;
    if (name == "boolean")
        return v.type == Json::Type::kBool;
    if (name == "number")
        return v.type == Json::Type::kNumber;
    if (name == "string")
        return v.type == Json::Type::kString;
    if (name == "array")
        return v.type == Json::Type::kArray;
    if (name == "object")
        return v.type == Json::Type::kObject;
    ADD_FAILURE() << "schema names unknown type " << name;
    return false;
}

bool
literalEquals(const Json &a, const Json &b)
{
    if (a.type != b.type)
        return false;
    switch (a.type) {
    case Json::Type::kNull:
        return true;
    case Json::Type::kBool:
        return a.boolean == b.boolean;
    case Json::Type::kNumber:
        return a.number == b.number;
    case Json::Type::kString:
        return a.str == b.str;
    default:
        return false; // not needed for const/enum literals
    }
}

void
validate(const Json &v, const Json &schema, const std::string &path)
{
    // "type": a name or a list of alternatives.
    if (const Json *t = schema.find("type")) {
        bool ok = false;
        if (t->type == Json::Type::kString) {
            ok = typeMatches(v, t->str);
        } else {
            for (const Json &alt : t->elems)
                ok = ok || typeMatches(v, alt.str);
        }
        EXPECT_TRUE(ok) << path << ": has type " << v.typeName()
                        << ", schema disallows it";
        if (!ok)
            return;
    }
    if (const Json *c = schema.find("const")) {
        EXPECT_TRUE(literalEquals(v, *c))
            << path << ": const mismatch";
    }
    if (const Json *e = schema.find("enum")) {
        bool ok = false;
        for (const Json &alt : e->elems)
            ok = ok || literalEquals(v, alt);
        EXPECT_TRUE(ok) << path << ": value not in enum";
    }
    if (v.type == Json::Type::kObject) {
        if (const Json *req = schema.find("required")) {
            for (const Json &key : req->elems) {
                EXPECT_NE(v.find(key.str), nullptr)
                    << path << ": missing required key \"" << key.str
                    << "\"";
            }
        }
        if (const Json *props = schema.find("properties")) {
            for (const auto &[key, sub] : props->members) {
                if (const Json *child = v.find(key))
                    validate(*child, sub, path + "." + key);
            }
        }
    }
    if (v.type == Json::Type::kArray) {
        if (const Json *items = schema.find("items")) {
            for (std::size_t i = 0; i < v.elems.size(); ++i) {
                validate(v.elems[i], *items,
                         path + "[" + std::to_string(i) + "]");
            }
        }
    }
}

Json
loadSchema()
{
    const std::string path =
        std::string(FBFLY_TEST_DATA_DIR) +
        "/fbfly-sweep-v1.schema.json";
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "missing schema file " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    JsonParser parser(text);
    return parser.parse();
}

// ---------------------------------------------------------------------
// Document generation
// ---------------------------------------------------------------------

/** A document with one real (obs-enabled) load point, one never-ran
 *  NaN point, and one batch point — covering every branch of the
 *  writer. */
std::string
makeDocument(const std::string &trace_file)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig netcfg;
    netcfg.vcDepth = 8;
    ExperimentConfig expcfg;
    expcfg.warmupCycles = 50;
    expcfg.measureCycles = 100;
    expcfg.drainCycles = 1000;
    expcfg.obs.metricsEnabled = true;
    expcfg.obs.metricsWindowCycles = 50;

    std::vector<SweepPointRecord> records;

    SweepPointRecord real;
    real.index = 0;
    real.series = "schema \"quoted\" series\n";
    real.topology = topo.name();
    real.routing = algo.name();
    real.traffic = pattern.name();
    real.seed = 42;
    real.wallSeconds = 0.25;
    real.load = runLoadPoint(topo, algo, pattern, netcfg, expcfg,
                             0.2);
    records.push_back(real);

    SweepPointRecord nan_point;
    nan_point.index = 1;
    nan_point.series = "never ran";
    nan_point.load.offered = 0.3;
    nan_point.load.status = LoadPointStatus::kInvalidConfig;
    records.push_back(nan_point); // all statistics still NaN

    SweepPointRecord batch;
    batch.index = 2;
    batch.kind = SweepPointKind::kBatch;
    batch.series = "batch";
    batch.batch.batchSize = 10;
    batch.batch.completionTime = 123;
    batch.batch.normalizedLatency = 12.3;
    records.push_back(batch);

    SweepRunMeta meta;
    meta.bench = "schema_test";
    meta.description = "document for schema validation";
    meta.extra.emplace_back("key", "value");
    meta.extraNumbers.emplace_back("step_rate_cycles_per_sec", 1.25e6);
    meta.extraNumbers.emplace_back("never_measured_rate",
                                   std::nan(""));
    meta.traceFile = trace_file;
    return sweepResultsToJson(meta, records, 2007, 3, 1.5);
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

TEST(SweepSchema, DocumentValidatesAgainstCheckedInSchema)
{
    const std::string doc = makeDocument("");
    JsonParser parser(doc);
    const Json root = parser.parse();
    const Json schema = loadSchema();
    ASSERT_EQ(schema.type, Json::Type::kObject);
    validate(root, schema, "$");
}

TEST(SweepSchema, RequiredKeysAndValues)
{
    const std::string doc = makeDocument("out.trace.json");
    JsonParser parser(doc);
    const Json root = parser.parse();

    ASSERT_EQ(root.type, Json::Type::kObject);
    const Json *schema_tag = root.find("schema");
    ASSERT_NE(schema_tag, nullptr);
    EXPECT_EQ(schema_tag->str, kSweepJsonSchema);
    EXPECT_EQ(root.find("seed")->number, 2007.0);
    EXPECT_EQ(root.find("threads")->number, 3.0);

    // trace_file round-trips as a string when set...
    const Json *tf = root.find("trace_file");
    ASSERT_NE(tf, nullptr);
    EXPECT_EQ(tf->type, Json::Type::kString);
    EXPECT_EQ(tf->str, "out.trace.json");

    const Json *points = root.find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_EQ(points->elems.size(), 3u);

    // ... and as null when unset.
    const std::string doc2 = makeDocument("");
    JsonParser p2(doc2);
    const Json root2 = p2.parse();
    EXPECT_EQ(root2.find("trace_file")->type, Json::Type::kNull);
}

TEST(SweepSchema, NaNSerializesAsNullNeverAsNumber)
{
    const std::string doc = makeDocument("");
    EXPECT_EQ(doc.find("nan"), std::string::npos);
    EXPECT_EQ(doc.find("inf"), std::string::npos);

    JsonParser parser(doc);
    const Json root = parser.parse();
    const Json &nan_point = root.find("points")->elems[1];

    // The never-ran point: every derived statistic is null, the
    // counters are real zeros, the status string survives.
    for (const char *key :
         {"accepted", "avg_latency", "avg_network_latency",
          "avg_hops", "p99_latency", "retransmit_rate"}) {
        const Json *v = nan_point.find(key);
        ASSERT_NE(v, nullptr) << key;
        EXPECT_EQ(v->type, Json::Type::kNull)
            << key << " should be null for a never-ran point";
    }
    EXPECT_EQ(nan_point.find("offered")->number, 0.3);
    EXPECT_EQ(nan_point.find("status")->str, "invalid-config");
    EXPECT_EQ(nan_point.find("valid")->type, Json::Type::kBool);
    EXPECT_FALSE(nan_point.find("valid")->boolean);

    // The real point's statistics are finite numbers.
    const Json &real = root.find("points")->elems[0];
    EXPECT_EQ(real.find("accepted")->type, Json::Type::kNumber);
    EXPECT_TRUE(std::isfinite(real.find("accepted")->number));
    // The escaped series label round-trips.
    EXPECT_EQ(real.find("series")->str, "schema \"quoted\" series\n");
}

TEST(SweepSchema, MetadataNumbersAreNumbersNotStrings)
{
    const std::string doc = makeDocument("");
    JsonParser parser(doc);
    const Json root = parser.parse();

    const Json *metadata = root.find("metadata");
    ASSERT_NE(metadata, nullptr);
    ASSERT_EQ(metadata->type, Json::Type::kObject);

    // extraNumbers entries land as real JSON numbers (NaN as null),
    // never as quoted strings.
    const Json *rate = metadata->find("step_rate_cycles_per_sec");
    ASSERT_NE(rate, nullptr);
    EXPECT_EQ(rate->type, Json::Type::kNumber);
    EXPECT_EQ(rate->number, 1.25e6);
    const Json *nan_rate = metadata->find("never_measured_rate");
    ASSERT_NE(nan_rate, nullptr);
    EXPECT_EQ(nan_rate->type, Json::Type::kNull);

    // No metadata *string* value may itself be a number in disguise:
    // a value that strtod parses in full is stringly-typed numeric
    // metadata, which downstream tooling would have to re-parse.
    // (micro_kernel's step rates regressed exactly this way once.)
    for (const auto &[key, value] : metadata->members) {
        if (value.type != Json::Type::kString ||
            value.str.empty())
            continue;
        char *end = nullptr;
        std::strtod(value.str.c_str(), &end);
        EXPECT_NE(end, value.str.c_str() + value.str.size())
            << "metadata key \"" << key
            << "\" holds the numeric string \"" << value.str
            << "\" — emit it via SweepRunMeta::extraNumbers instead";
    }
}

TEST(SweepSchema, MetricsObjectShape)
{
    const std::string doc = makeDocument("");
    JsonParser parser(doc);
    const Json root = parser.parse();
    const Json &real = root.find("points")->elems[0];

    const Json *metrics = real.find("metrics");
    ASSERT_NE(metrics, nullptr)
        << "obs-enabled point must carry a metrics object";
    ASSERT_EQ(metrics->type, Json::Type::kObject);
    const Json *counters = metrics->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_NE(counters->find("net.flits_injected"), nullptr);
    const Json *series = metrics->find("series");
    ASSERT_NE(series, nullptr);
    const Json *util = series->find("obs.channel_util.mean");
    ASSERT_NE(util, nullptr);
    EXPECT_NE(util->find("window_cycles"), nullptr);
    EXPECT_NE(util->find("values"), nullptr);

    // The never-ran point carries no metrics at all.
    EXPECT_EQ(root.find("points")->elems[1].find("metrics"),
              nullptr);

    // Batch points carry the batch fields.
    const Json &batch = root.find("points")->elems[2];
    EXPECT_EQ(batch.find("kind")->str, "batch");
    EXPECT_EQ(batch.find("batch_size")->number, 10.0);
    EXPECT_EQ(batch.find("completion_cycles")->number, 123.0);
}

} // namespace
} // namespace fbfly
