/**
 * @file
 * Cross-module integration tests: the paper's headline claims on
 * scaled-down networks, checking simulation and analytic models
 * against each other.
 */

#include <gtest/gtest.h>

#include "cost/topology_cost.h"
#include "harness/experiment.h"
#include "power/power_model.h"
#include "routing/butterfly_dest.h"
#include "routing/clos_ad.h"
#include "routing/folded_clos_adaptive.h"
#include "routing/hypercube_ecube.h"
#include "routing/min_adaptive.h"
#include "routing/ugal.h"
#include "routing/valiant.h"
#include "topology/butterfly.h"
#include "topology/flattened_butterfly.h"
#include "topology/folded_clos.h"
#include "topology/hypercube.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

ExperimentConfig
fastPhasing()
{
    ExperimentConfig e;
    e.warmupCycles = 400;
    e.measureCycles = 400;
    e.drainCycles = 1200;
    return e;
}

/**
 * Figure 6 in miniature (N = 64, equal bisection): the flattened
 * butterfly matches the butterfly on benign traffic and the folded
 * Clos on adversarial traffic.
 */
TEST(Integration, TopologyComparisonSignature)
{
    constexpr std::int64_t kNodes = 64;
    FlattenedButterfly fb(8, 2);
    Butterfly bf(8, 2);
    FoldedClos fc(kNodes, 8, 4);
    Hypercube hc(6);

    ClosAd fb_algo(fb);
    ButterflyDest bf_algo(bf);
    FoldedClosAdaptive fc_algo(fc);
    HypercubeEcube hc_algo(hc);

    UniformRandom ur(kNodes);
    AdversarialNeighbor wc(kNodes, 8);

    auto accepted = [&](const Topology &t, RoutingAlgorithm &a,
                        const TrafficPattern &p, Cycle period) {
        NetworkConfig cfg;
        cfg.vcDepth = 32 / a.numVcs();
        cfg.channelPeriod = period;
        return runLoadPoint(t, a, p, cfg, fastPhasing(), 0.95)
            .accepted;
    };

    // Uniform random: fbfly, butterfly, hypercube ~ full; Clos ~50%.
    EXPECT_GT(accepted(fb, fb_algo, ur, 1), 0.8);
    EXPECT_GT(accepted(bf, bf_algo, ur, 1), 0.8);
    EXPECT_GT(accepted(hc, hc_algo, ur, 2), 0.8);
    const double clos_ur = accepted(fc, fc_algo, ur, 1);
    EXPECT_GT(clos_ur, 0.4);
    EXPECT_LT(clos_ur, 0.62);

    // Worst case: butterfly collapses to ~1/k; the others hold 50%.
    EXPECT_LT(accepted(bf, bf_algo, wc, 1), 0.2);
    EXPECT_GT(accepted(fb, fb_algo, wc, 1), 0.4);
    EXPECT_GT(accepted(fc, fc_algo, wc, 1), 0.4);
}

/**
 * The worst-case latency ordering near saturation (Figure 4(b)):
 * CLOS AD beats UGAL-S which is comparable to VAL.
 */
TEST(Integration, ClosAdLatencyAdvantage)
{
    FlattenedButterfly topo(16, 2); // 256 nodes
    AdversarialNeighbor wc(topo.numNodes(), topo.k());

    auto latency = [&](RoutingAlgorithm &a) {
        NetworkConfig cfg;
        cfg.vcDepth = 32 / a.numVcs();
        const auto r =
            runLoadPoint(topo, a, wc, cfg, fastPhasing(), 0.45);
        EXPECT_FALSE(r.saturated);
        return r.avgLatency;
    };

    Ugal ugal_s(topo, true);
    ClosAd clos_ad(topo);
    const double l_ugal_s = latency(ugal_s);
    const double l_clos = latency(clos_ad);
    EXPECT_LT(l_clos, l_ugal_s)
        << "CLOS AD must cut latency near saturation";
}

/**
 * Dynamic response ordering at batch size 1 (Figure 5): greedy UGAL
 * worst, CLOS AD best-or-equal.
 */
TEST(Integration, BatchOrderingSignature)
{
    FlattenedButterfly topo(16, 2);
    AdversarialNeighbor wc(topo.numNodes(), topo.k());

    auto norm = [&](RoutingAlgorithm &a) {
        NetworkConfig cfg;
        cfg.vcDepth = 32 / a.numVcs();
        return runBatch(topo, a, wc, cfg, 17, 1).normalizedLatency;
    };

    Ugal ugal(topo, false);
    Ugal ugal_s(topo, true);
    ClosAd clos_ad(topo);
    Valiant val(topo);

    const double g = norm(ugal);
    const double s = norm(ugal_s);
    const double c = norm(clos_ad);
    const double v = norm(val);
    EXPECT_GT(g, s);
    EXPECT_GT(g, v);
    EXPECT_LE(c, s);
}

/**
 * Simulation vs analytic consistency: the topologies the cost model
 * charges for equal capacity really do deliver comparable uniform
 * throughput in simulation.
 */
TEST(Integration, EqualCapacityIsRealInSimulation)
{
    constexpr std::int64_t kNodes = 64;
    FlattenedButterfly fb(8, 2);
    MinAdaptive fb_algo(fb);
    FoldedClos fc(kNodes, 8, 8); // untapered: the cost-model config
    FoldedClosAdaptive fc_algo(fc);
    UniformRandom ur(kNodes);

    NetworkConfig cfg;
    cfg.vcDepth = 16;
    const double t_fb = runLoadPoint(fb, fb_algo, ur, cfg,
                                     fastPhasing(), 1.0)
                            .accepted;
    const double t_fc = runLoadPoint(fc, fc_algo, ur, cfg,
                                     fastPhasing(), 1.0)
                            .accepted;
    EXPECT_GT(t_fb, 0.85);
    EXPECT_GT(t_fc, 0.85);
}

/**
 * Cost and power models agree on the paper's ordering at every
 * plotted size.
 */
TEST(Integration, CostAndPowerOrderingsAgree)
{
    TopologyCostModel model;
    PowerModel pm;
    for (std::int64_t n = 1024; n <= 65536; n *= 4) {
        const auto fb = model.flattenedButterfly(n);
        const auto clos = model.foldedClos(n);
        EXPECT_LT(model.price(fb).total(),
                  model.price(clos).total())
            << n;
        EXPECT_LT(pm.power(fb).total(), pm.power(clos).total())
            << n;
    }
}

/**
 * Zero-load latency ordering of Figure 6(a): flattened butterfly <
 * folded Clos < hypercube.
 */
TEST(Integration, ZeroLoadLatencyOrdering)
{
    constexpr std::int64_t kNodes = 64;
    FlattenedButterfly fb(8, 2);
    ClosAd fb_algo(fb);
    FoldedClos fc(kNodes, 8, 4);
    FoldedClosAdaptive fc_algo(fc);
    Hypercube hc(6);
    HypercubeEcube hc_algo(hc);
    UniformRandom ur(kNodes);

    auto lat = [&](const Topology &t, RoutingAlgorithm &a,
                   Cycle period) {
        NetworkConfig cfg;
        cfg.vcDepth = 32 / a.numVcs();
        cfg.channelPeriod = period;
        return runLoadPoint(t, a, ur, cfg, fastPhasing(), 0.1)
            .avgLatency;
    };

    const double l_fb = lat(fb, fb_algo, 1);
    const double l_fc = lat(fc, fc_algo, 1);
    const double l_hc = lat(hc, hc_algo, 2);
    EXPECT_LT(l_fb, l_fc);
    EXPECT_LT(l_fc, l_hc);
}

} // namespace
} // namespace fbfly
