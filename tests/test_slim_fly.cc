/**
 * @file
 * Slim Fly topology + routing tests (topology/slim_fly.h,
 * routing/slim_fly_routing.h): MMS structure vs closed form,
 * BFS-backed diameter-2 / minimal-hop ground truth, port-map
 * consistency, conservation under all-pairs delivery, and deadlock
 * freedom of the VC-dated scheme under saturating uniform and
 * adversarial loads — raw windowed progress plus a liveness-audited
 * load point.
 */

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "network/network.h"
#include "routing/slim_fly_routing.h"
#include "topo_test_util.h"
#include "topology/slim_fly.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

TEST(SlimFlyStructure, ValidQAcceptsPrimesCongruentOneModFour)
{
    EXPECT_TRUE(SlimFly::validQ(5));
    EXPECT_TRUE(SlimFly::validQ(13));
    EXPECT_TRUE(SlimFly::validQ(17));
    EXPECT_TRUE(SlimFly::validQ(29));
    EXPECT_FALSE(SlimFly::validQ(3));  // 3 mod 4
    EXPECT_FALSE(SlimFly::validQ(4));  // not prime
    EXPECT_FALSE(SlimFly::validQ(7));  // 3 mod 4
    EXPECT_FALSE(SlimFly::validQ(9));  // not prime
    EXPECT_FALSE(SlimFly::validQ(21)); // 1 mod 4 but 3*7
}

TEST(SlimFlyStructure, CountsMatchClosedForm)
{
    const struct
    {
        int q, p;
    } cases[] = {{5, 1}, {5, 2}, {13, 4}};
    for (const auto &c : cases) {
        SlimFly topo(c.q, c.p);
        EXPECT_EQ(topo.numRouters(), 2 * c.q * c.q);
        EXPECT_EQ(topo.numNodes(),
                  static_cast<std::int64_t>(c.p) * 2 * c.q * c.q);
        EXPECT_EQ(topo.w(), (c.q - 1) / 2);
        EXPECT_EQ(topo.networkRadix(), (3 * c.q - 1) / 2);
        EXPECT_EQ(topo.radix(), c.p + (3 * c.q - 1) / 2);
        for (RouterId r = 0; r < topo.numRouters(); ++r)
            EXPECT_EQ(topo.numPorts(r), topo.radix());
        // One arc per network port — the MMS graph is regular.
        EXPECT_EQ(static_cast<std::int64_t>(topo.arcs().size()),
                  static_cast<std::int64_t>(topo.numRouters()) *
                      topo.networkRadix());
    }
}

TEST(SlimFlyStructure, ArcsAreSymmetricAndPortConsistent)
{
    SlimFly topo(5, 2);
    topotest::expectSymmetricArcs(topo);
}

TEST(SlimFlyStructure, NeighborMapAndPortTowardAgree)
{
    SlimFly topo(5, 1);
    for (RouterId r = 0; r < topo.numRouters(); ++r) {
        for (PortId port = topo.p(); port < topo.radix(); ++port) {
            const RouterId nb = topo.neighborAt(r, port);
            ASSERT_GE(nb, 0);
            ASSERT_LT(nb, topo.numRouters());
            ASSERT_NE(nb, r);
            EXPECT_TRUE(topo.adjacent(r, nb));
            EXPECT_TRUE(topo.adjacent(nb, r)) << "asymmetric";
            EXPECT_EQ(topo.portToward(r, nb), port);
            // The reverse port maps back.
            EXPECT_EQ(topo.neighborAt(nb, topo.portToward(nb, r)),
                      r);
        }
    }
}

TEST(SlimFlyStructure, BfsConfirmsDiameterTwoAndMinimalHops)
{
    SlimFly topo(5, 1);
    const auto dist = topotest::allPairsDistances(topo);
    int diameter = 0;
    for (RouterId r1 = 0; r1 < topo.numRouters(); ++r1) {
        for (RouterId r2 = 0; r2 < topo.numRouters(); ++r2) {
            ASSERT_GE(dist[r1][r2], 0) << "disconnected";
            EXPECT_EQ(dist[r1][r2], topo.minimalHops(r1, r2))
                << r1 << " -> " << r2;
            diameter = std::max(diameter, dist[r1][r2]);
        }
    }
    EXPECT_EQ(diameter, 2);
}

TEST(SlimFlyStructure, CanonicalSplitSeparatesTheTwoSubgraphs)
{
    // Router ids are subgraph-major, so the generic id-split
    // bisection cuts exactly the cross channels: q per router of
    // subgraph 0, q^2 * q links, times two directions.
    SlimFly topo(5, 2);
    EXPECT_EQ(topotest::bisectionArcs(topo),
              2 * static_cast<std::int64_t>(topo.q()) * topo.q() *
                  topo.q());
}

TEST(SlimFlyMinimal, AllPairsDeliverWithinDiameterBound)
{
    SlimFly topo(5, 1); // 50 nodes, 50 routers
    SlimFlyMinimal algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, nullptr, cfg);
    std::uint64_t sent = 0;
    for (NodeId src = 0; src < topo.numNodes(); ++src) {
        for (NodeId dst = 0; dst < topo.numNodes(); ++dst) {
            if (src == dst)
                continue;
            net.terminal(src).enqueuePacket(net.now(), dst, true);
            ++sent;
        }
    }
    for (int c = 0; c < 60000 && !net.quiescent(); ++c)
        net.step();
    ASSERT_TRUE(net.quiescent()) << "undelivered packets";
    EXPECT_EQ(net.stats().measuredEjected, sent);
    EXPECT_EQ(net.stats().flitsInjected, net.stats().flitsEjected);
    // Diameter 2 + ejection.
    EXPECT_LE(net.stats().hops.max(), 3);
}

TEST(SlimFlyMinimal, NoDeadlockUnderSaturation)
{
    // Full buffers at offered load 1.0: the 2-VC date scheme covers
    // every (at most 2-hop) minimal route.
    SlimFly topo(5, 2);
    SlimFlyMinimal algo(topo);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 2; // tight buffers stress the dependency chain
    Network net(topo, algo, &pattern, cfg);
    BernoulliInjection inj(1.0, 1, 17);
    std::uint64_t last = 0;
    for (int w = 0; w < 8; ++w) {
        for (int c = 0; c < 300; ++c) {
            inj.tick(net, false);
            net.step();
        }
        ASSERT_GT(net.stats().flitsEjected, last)
            << "stall in window " << w;
        last = net.stats().flitsEjected;
    }
}

TEST(SlimFlyUgal, NoDeadlockUnderSaturatedAdversarial)
{
    // Adversarial neighbor traffic concentrates each router's load
    // on one channel; UGAL's Valiant detours use the two extra VC
    // dates of the 4-VC scheme.
    SlimFly topo(5, 2);
    SlimFlyUgal algo(topo);
    AdversarialNeighbor pattern(topo.numNodes(), topo.p());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 2;
    Network net(topo, algo, &pattern, cfg);
    BernoulliInjection inj(1.0, 1, 19);
    std::uint64_t last = 0;
    for (int w = 0; w < 8; ++w) {
        for (int c = 0; c < 300; ++c) {
            inj.tick(net, false);
            net.step();
        }
        ASSERT_GT(net.stats().flitsEjected, last)
            << "stall in window " << w;
        last = net.stats().flitsEjected;
    }
}

TEST(SlimFlyUgal, NoDeadlockUnderSaturatingLoadPoint)
{
    // Liveness-audited version of the saturation claim: the run
    // must end kDelivered/kSaturated — never kStalled with a
    // kDeadlock diagnosis — with zero recoveries and a clean
    // delivery audit.
    SlimFly topo(5, 2);
    SlimFlyUgal algo(topo);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig cfg;
    cfg.vcDepth = 2;
    ExperimentConfig e;
    e.warmupCycles = 300;
    e.measureCycles = 300;
    e.drainCycles = 4000;
    e.liveness.samplePeriod = 200; // diagnose early, not just on
                                   // watchdog fire
    const LoadPointResult r =
        runLoadPoint(topo, algo, pattern, cfg, e, 0.95);
    EXPECT_TRUE(r.status == LoadPointStatus::kDelivered ||
                r.status == LoadPointStatus::kSaturated)
        << toString(r.status) << "\n"
        << r.diagnostics;
    EXPECT_EQ(r.recoveries, 0);
    EXPECT_TRUE(r.liveness.empty()) << r.liveness;
    ASSERT_TRUE(r.deliveryChecked);
    EXPECT_EQ(r.delivery.dropped, 0u);
    EXPECT_EQ(r.delivery.duplicates, 0u);
    EXPECT_EQ(r.delivery.corruptions, 0u);
}

} // namespace
} // namespace fbfly
