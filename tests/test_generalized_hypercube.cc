/**
 * @file
 * Tests for the generalized hypercube (paper Section 2.3).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "topology/generalized_hypercube.h"

namespace fbfly
{
namespace
{

TEST(GeneralizedHypercube, PaperConfiguration)
{
    // The paper's (8,8,16) GHC serves 1K nodes with one router per
    // node — the concentration contrast of Figure 3.
    GeneralizedHypercube topo({8, 8, 16});
    EXPECT_EQ(topo.numNodes(), 1024);
    EXPECT_EQ(topo.numRouters(), 1024);
    // Ports: 1 terminal + 7 + 7 + 15 inter-router.
    EXPECT_EQ(topo.numPorts(0), 1 + 7 + 7 + 15);
}

TEST(GeneralizedHypercube, MixedRadixDigits)
{
    GeneralizedHypercube topo({3, 4});
    // Router ids are d1*3 + d0 with radices (3, 4).
    EXPECT_EQ(topo.routerDigit(0, 0), 0);
    EXPECT_EQ(topo.routerDigit(5, 0), 2); // 5 = 1*3 + 2
    EXPECT_EQ(topo.routerDigit(5, 1), 1);
    EXPECT_EQ(topo.routerDigit(11, 0), 2); // 11 = 3*3 + 2
    EXPECT_EQ(topo.routerDigit(11, 1), 3);
}

TEST(GeneralizedHypercube, NeighborChangesOneDigit)
{
    GeneralizedHypercube topo({3, 4, 2});
    for (RouterId r = 0; r < topo.numRouters(); ++r) {
        for (int d = 0; d < topo.numDims(); ++d) {
            for (int m = 0; m < topo.radixOf(d); ++m) {
                if (m == topo.routerDigit(r, d))
                    continue;
                const RouterId j = topo.neighbor(r, d, m);
                EXPECT_EQ(topo.routerDigit(j, d), m);
                for (int o = 0; o < topo.numDims(); ++o) {
                    if (o != d) {
                        EXPECT_EQ(topo.routerDigit(j, o),
                                  topo.routerDigit(r, o));
                    }
                }
            }
        }
    }
}

TEST(GeneralizedHypercube, ArcsSymmetricAndComplete)
{
    GeneralizedHypercube topo({3, 3});
    const auto arcs = topo.arcs();
    // Per router: (3-1) + (3-1) = 4 outgoing arcs.
    EXPECT_EQ(arcs.size(), 9u * 4);
    std::set<std::tuple<int, int, int, int>> seen;
    for (const auto &a : arcs)
        seen.insert({a.src, a.srcPort, a.dst, a.dstPort});
    for (const auto &a : arcs)
        EXPECT_TRUE(
            seen.count({a.dst, a.dstPort, a.src, a.srcPort}));
}

TEST(GeneralizedHypercube, MinimalHopsCountsDifferingDigits)
{
    GeneralizedHypercube topo({4, 4});
    EXPECT_EQ(topo.minimalHops(0, 0), 0);
    EXPECT_EQ(topo.minimalHops(0, 3), 1);
    EXPECT_EQ(topo.minimalHops(0, 4), 1);
    EXPECT_EQ(topo.minimalHops(0, 5), 2);
    EXPECT_EQ(topo.minimalHops(1, 14), 2);
}

TEST(GeneralizedHypercube, TerminalIsPortZero)
{
    GeneralizedHypercube topo({2, 2});
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        EXPECT_EQ(topo.injectionRouter(n), n);
        EXPECT_EQ(topo.injectionPort(n), 0);
    }
}

} // namespace
} // namespace fbfly
