/**
 * @file
 * Tests for the flattened butterfly topology (paper Section 2):
 * construction, Equation (1) connectivity, port bijections, scaling
 * formulas (Figure 2, Section 5.1.2), and path-diversity counts.
 */

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>
#include <tuple>

#include "common/radix.h"
#include "topology/flattened_butterfly.h"

namespace fbfly
{
namespace
{

TEST(FlattenedButterfly, PaperConfiguration32Ary2Flat)
{
    // The paper's simulated network: k'=63, n'=1, N=1024.
    FlattenedButterfly topo(32, 2);
    EXPECT_EQ(topo.numNodes(), 1024);
    EXPECT_EQ(topo.numRouters(), 32);
    EXPECT_EQ(topo.numDims(), 1);
    EXPECT_EQ(topo.radix(), 63);
}

TEST(FlattenedButterfly, Figure1dConnectivity)
{
    // 2-ary 4-flat (Figure 1(d)): "R4' is connected to R5' in
    // dimension 1, R6' in dimension 2, and R0' in dimension 3."
    FlattenedButterfly topo(2, 4);
    EXPECT_EQ(topo.numRouters(), 8);
    EXPECT_EQ(topo.numDims(), 3);
    EXPECT_EQ(topo.neighbor(4, 1, 1), 5);
    EXPECT_EQ(topo.neighbor(4, 2, 1), 6);
    EXPECT_EQ(topo.neighbor(4, 3, 0), 0);
}

TEST(FlattenedButterfly, Equation1)
{
    // j = i + [m - digit_d(i)] * k^(d-1) for every (i, d, m).
    FlattenedButterfly topo(4, 3);
    for (RouterId i = 0; i < topo.numRouters(); ++i) {
        for (int d = 1; d <= topo.numDims(); ++d) {
            for (int m = 0; m < topo.k(); ++m) {
                if (m == topo.routerDigit(i, d))
                    continue;
                const std::int64_t scale =
                    d == 1 ? 1 : ipow(topo.k(), d - 1);
                const RouterId expected =
                    i + (m - topo.routerDigit(i, d)) * scale;
                EXPECT_EQ(topo.neighbor(i, d, m), expected);
            }
        }
    }
}

TEST(FlattenedButterfly, RadixFormula)
{
    // k' = n(k-1) + 1 (paper Section 2.1).
    for (int k = 2; k <= 16; k *= 2) {
        for (int n = 2; n <= 4; ++n) {
            FlattenedButterfly topo(k, n);
            EXPECT_EQ(topo.radix(), n * (k - 1) + 1);
            EXPECT_EQ(topo.numPorts(0), topo.radix());
        }
    }
}

TEST(FlattenedButterfly, ArcCountMatchesFormula)
{
    // Each router has (k-1) channels per dimension.
    FlattenedButterfly topo(4, 3);
    const auto arcs = topo.arcs();
    EXPECT_EQ(static_cast<int>(arcs.size()),
              topo.numRouters() * topo.numDims() * (topo.k() - 1));
}

TEST(FlattenedButterfly, PaperLinkCount1K)
{
    // "the flattened butterfly requires 31 x 32 = 992 links"
    FlattenedButterfly topo(32, 2);
    EXPECT_EQ(topo.arcs().size(), 992u);
}

TEST(FlattenedButterfly, ArcsAreSymmetric)
{
    // Every directed arc has a reverse arc on the same port pair
    // (bidirectional channels).
    FlattenedButterfly topo(3, 3);
    std::set<std::tuple<int, int, int, int>> seen;
    for (const auto &a : topo.arcs())
        seen.insert({a.src, a.srcPort, a.dst, a.dstPort});
    for (const auto &a : topo.arcs()) {
        EXPECT_TRUE(seen.count({a.dst, a.dstPort, a.src, a.srcPort}))
            << a.src << ":" << a.srcPort << " -> " << a.dst << ":"
            << a.dstPort;
    }
}

TEST(FlattenedButterfly, PortsAreBijective)
{
    // On each router, every inter-router port carries exactly one
    // outgoing and one incoming arc; terminal ports carry none.
    FlattenedButterfly topo(4, 3);
    std::map<std::pair<int, int>, int> out_use;
    std::map<std::pair<int, int>, int> in_use;
    for (const auto &a : topo.arcs()) {
        ++out_use[{a.src, a.srcPort}];
        ++in_use[{a.dst, a.dstPort}];
        EXPECT_GE(a.srcPort, topo.k()) << "terminal port misused";
        EXPECT_GE(a.dstPort, topo.k()) << "terminal port misused";
        EXPECT_LT(a.srcPort, topo.radix());
    }
    for (const auto &[key, count] : out_use)
        EXPECT_EQ(count, 1);
    for (const auto &[key, count] : in_use)
        EXPECT_EQ(count, 1);
}

TEST(FlattenedButterfly, PortTowardRoundTrips)
{
    FlattenedButterfly topo(4, 3);
    for (RouterId r = 0; r < topo.numRouters(); ++r) {
        std::set<PortId> used;
        for (int d = 1; d <= topo.numDims(); ++d) {
            for (int m = 0; m < topo.k(); ++m) {
                if (m == topo.routerDigit(r, d))
                    continue;
                const PortId p = topo.portToward(r, d, m);
                EXPECT_TRUE(used.insert(p).second)
                    << "port reuse on router " << r;
                EXPECT_GE(p, topo.k());
                EXPECT_LT(p, topo.radix());
            }
        }
    }
}

TEST(FlattenedButterfly, TerminalMapping)
{
    FlattenedButterfly topo(4, 2);
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        EXPECT_EQ(topo.routerOf(n), n / 4);
        EXPECT_EQ(topo.terminalPort(n), n % 4);
        EXPECT_EQ(topo.injectionRouter(n), topo.ejectionRouter(n));
        EXPECT_EQ(topo.injectionPort(n), topo.ejectionPort(n));
    }
}

TEST(FlattenedButterfly, MinimalHopsAndHighestDiffDim)
{
    FlattenedButterfly topo(2, 4); // routers are 3-bit addresses
    EXPECT_EQ(topo.minimalHops(0b000, 0b000), 0);
    EXPECT_EQ(topo.minimalHops(0b000, 0b101), 2);
    EXPECT_EQ(topo.minimalHops(0b000, 0b111), 3);
    EXPECT_EQ(topo.highestDiffDim(0b000, 0b000), 0);
    EXPECT_EQ(topo.highestDiffDim(0b000, 0b001), 1);
    EXPECT_EQ(topo.highestDiffDim(0b000, 0b101), 3);
}

TEST(FlattenedButterfly, MaxNodesMatchesFigure2)
{
    // "with k' = 61, a network with just three dimensions scales to
    // 64K nodes"
    EXPECT_EQ(FlattenedButterfly::maxNodes(61, 3), 65536);
    // 32-ary 2-flat: k'=63 reaches 1024 at n'=1.
    EXPECT_EQ(FlattenedButterfly::maxNodes(63, 1), 1024);
    // Low-radix routers scale poorly (k' < 16).
    EXPECT_LT(FlattenedButterfly::maxNodes(15, 2), 256);
    // Infeasible radix yields no network.
    EXPECT_EQ(FlattenedButterfly::maxNodes(2, 3), 0);
}

TEST(FlattenedButterfly, MinDimsForRadixSection512)
{
    // "with radix-64 routers, a flattened butterfly with n'=1 only
    // requires k'=63 to scale to 1K nodes and with n'=3 only
    // requires k'=61 to scale to 64K nodes"
    EXPECT_EQ(FlattenedButterfly::minDimsForRadix(64, 1024), 1);
    EXPECT_EQ(FlattenedButterfly::minDimsForRadix(64, 65536), 3);
    EXPECT_EQ(FlattenedButterfly::effectiveRadix(64, 1), 63);
    EXPECT_EQ(FlattenedButterfly::effectiveRadix(64, 3), 61);
    // 4K fits at n'=2 (21^3 = 9261).
    EXPECT_EQ(FlattenedButterfly::minDimsForRadix(64, 4096), 2);
    EXPECT_EQ(FlattenedButterfly::minDimsForRadix(64, 9261), 2);
    EXPECT_EQ(FlattenedButterfly::minDimsForRadix(64, 9262), 3);
    // Impossible request.
    EXPECT_EQ(FlattenedButterfly::minDimsForRadix(4, 1000000), -1);
}

/** Path diversity (Section 2.2): i differing digits -> i! minimal
 *  routes.  Verified by explicit enumeration of productive-hop
 *  orderings on a 3-dimensional network. */
TEST(FlattenedButterfly, PathDiversityFactorial)
{
    FlattenedButterfly topo(2, 4);
    // Count minimal routes by DFS over productive hops.
    auto count_routes = [&](RouterId from, RouterId to) {
        std::function<int(RouterId)> dfs = [&](RouterId cur) -> int {
            if (cur == to)
                return 1;
            int total = 0;
            for (int d = 1; d <= topo.numDims(); ++d) {
                const int want = topo.routerDigit(to, d);
                if (topo.routerDigit(cur, d) != want)
                    total += dfs(topo.neighbor(cur, d, want));
            }
            return total;
        };
        return dfs(from);
    };
    EXPECT_EQ(count_routes(0b000, 0b001), 1); // 1 digit -> 1!
    EXPECT_EQ(count_routes(0b000, 0b011), 2); // 2 digits -> 2!
    EXPECT_EQ(count_routes(0b000, 0b111), 6); // 3 digits -> 3!
}

/** Parameterized structural sweep over several (k, n). */
class FbflyStructure
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(FbflyStructure, SizesAndDegreeConsistent)
{
    const auto [k, n] = GetParam();
    FlattenedButterfly topo(k, n);
    EXPECT_EQ(topo.numNodes(), ipow(k, n));
    EXPECT_EQ(topo.numRouters(), ipow(k, n - 1));
    const auto arcs = topo.arcs();
    // Out-degree is (n-1)(k-1) everywhere.
    std::vector<int> degree(topo.numRouters(), 0);
    for (const auto &a : arcs)
        ++degree[a.src];
    for (const int d : degree)
        EXPECT_EQ(d, (n - 1) * (k - 1));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FbflyStructure,
    ::testing::Values(std::pair{2, 2}, std::pair{2, 4},
                      std::pair{4, 2}, std::pair{4, 3},
                      std::pair{8, 2}, std::pair{3, 3}));

} // namespace
} // namespace fbfly
