/**
 * @file
 * Tests for the link-layer retry protocol (network/channel.h):
 * CRC-32C coverage, zero-rate timing transparency, recovery from
 * corruption and erasure, window back-pressure, duplicate
 * suppression, and timeout backoff.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "network/channel.h"
#include "network/flit.h"

namespace fbfly
{
namespace
{

Flit
makeFlit(FlitId id)
{
    Flit f;
    f.id = id;
    f.packet = id;
    f.src = 1;
    f.dst = 2;
    f.head = f.tail = true;
    f.vc = 0;
    return f;
}

/**
 * Drive @p ch for up to @p max_cycles, sending @p to_send flits as
 * the window allows and collecting everything the receiver accepts.
 * Per cycle: tick (transmitter state machine), receive, then send —
 * the same relative order the routers use.
 */
std::vector<Flit>
pump(Channel &ch, int to_send, Cycle max_cycles)
{
    std::vector<Flit> got;
    FlitId next = 0;
    for (Cycle t = 0; t < max_cycles; ++t) {
        ch.tick(t);
        while (auto f = ch.receiveFlit(t))
            got.push_back(*f);
        if (next < static_cast<FlitId>(to_send) &&
            ch.canSendFlit(t)) {
            ch.sendFlit(makeFlit(next), t);
            ++next;
        }
        if (static_cast<int>(got.size()) == to_send &&
            next == static_cast<FlitId>(to_send)) {
            // Everything delivered: keep ticking long enough for the
            // final acks to cross the wire and empty the replay
            // buffer.
            for (Cycle t2 = t + 1; t2 <= t + 4 * ch.latency() + 8;
                 ++t2)
                ch.tick(t2);
            break;
        }
    }
    return got;
}

TEST(FlitCrc, DetectsSingleFieldChanges)
{
    Flit a = makeFlit(7);
    a.createTime = 1234;
    a.linkSeq = 99;
    const std::uint32_t crc = flitCrc(a);
    EXPECT_EQ(flitCrc(a), crc); // deterministic

    Flit b = a;
    b.id ^= 1;
    EXPECT_NE(flitCrc(b), crc);
    b = a;
    b.packet ^= std::uint64_t{1} << 63;
    EXPECT_NE(flitCrc(b), crc);
    b = a;
    b.createTime ^= 4;
    EXPECT_NE(flitCrc(b), crc);
    b = a;
    b.linkSeq ^= 1;
    EXPECT_NE(flitCrc(b), crc);
    b = a;
    b.tail = false;
    EXPECT_NE(flitCrc(b), crc);

    // The crc field itself is excluded from the digest.
    b = a;
    b.crc ^= 0xdeadbeef;
    EXPECT_EQ(flitCrc(b), crc);
}

TEST(LinkRetry, ZeroRateIsTimingTransparent)
{
    // With no errors the protocol must deliver exactly like a plain
    // channel: same flits, same arrival cycles, no retransmissions.
    Channel plain(3, 1);
    Channel rel(3, 1);
    rel.enableReliability({true, 16, 32, 1024}, {}, Rng(42));

    std::vector<std::pair<Cycle, FlitId>> a, b;
    for (Cycle t = 0; t < 40; ++t) {
        rel.tick(t);
        if (t < 10) {
            ASSERT_TRUE(plain.canSendFlit(t));
            ASSERT_TRUE(rel.canSendFlit(t));
            plain.sendFlit(makeFlit(t), t);
            rel.sendFlit(makeFlit(t), t);
        }
        while (auto f = plain.receiveFlit(t))
            a.emplace_back(t, f->id);
        while (auto f = rel.receiveFlit(t))
            b.emplace_back(t, f->id);
    }
    EXPECT_EQ(a, b);
    const LinkStats &st = rel.linkStats();
    EXPECT_EQ(st.attempts, 10u);
    EXPECT_EQ(st.retransmits, 0u);
    EXPECT_EQ(st.timeouts, 0u);
    EXPECT_EQ(st.crcRejected, 0u);
    EXPECT_EQ(st.eraseInjected, 0u);
    EXPECT_EQ(st.corruptInjected, 0u);
    EXPECT_EQ(st.acksSent, 10u);
    EXPECT_EQ(rel.flitsInFlight(), 0);
    EXPECT_EQ(rel.replayOccupancy(), 0);
}

TEST(LinkRetry, RecoversFromCorruption)
{
    Channel ch(2, 1);
    LinkErrorRates rates;
    rates.corrupt = 0.3;
    ch.enableReliability({true, 8, 16, 256}, rates, Rng(7));

    const auto got = pump(ch, 50, 20000);
    ASSERT_EQ(got.size(), 50u);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].id, static_cast<FlitId>(i)) << i;

    const LinkStats &st = ch.linkStats();
    EXPECT_GT(st.corruptInjected, 0u);
    EXPECT_EQ(st.crcRejected, st.corruptInjected);
    EXPECT_GT(st.retransmits, 0u);
    EXPECT_EQ(st.attempts, 50u + st.retransmits);
    // Every flit was logically delivered exactly once.
    EXPECT_EQ(ch.flitsInFlight(), 0);
    EXPECT_EQ(ch.flitsInFlightOnVc(0), 0);
}

TEST(LinkRetry, RecoversFromErasure)
{
    Channel ch(2, 1);
    LinkErrorRates rates;
    rates.erase = 0.3;
    ch.enableReliability({true, 8, 16, 256}, rates, Rng(11));

    const auto got = pump(ch, 50, 20000);
    ASSERT_EQ(got.size(), 50u);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].id, static_cast<FlitId>(i)) << i;

    const LinkStats &st = ch.linkStats();
    EXPECT_GT(st.eraseInjected, 0u);
    EXPECT_GT(st.retransmits, 0u);
    // Go-back-N replays flits the receiver already accepted; they
    // must be suppressed, never re-delivered.
    EXPECT_EQ(ch.flitsInFlight(), 0);
    EXPECT_EQ(ch.replayOccupancy(), 0);
}

TEST(LinkRetry, MixedBurstErrorsStillInOrderExactlyOnce)
{
    Channel ch(4, 1);
    LinkErrorRates rates;
    rates.corrupt = 0.02;
    rates.erase = 0.02;
    rates.burstStart = 0.05;
    rates.burstStop = 0.2;
    rates.burstFactor = 10.0;
    ch.enableReliability({true, 16, 32, 512}, rates, Rng(2007));

    const auto got = pump(ch, 200, 100000);
    ASSERT_EQ(got.size(), 200u);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].id, static_cast<FlitId>(i)) << i;
    const LinkStats &st = ch.linkStats();
    EXPECT_GT(st.corruptInjected + st.eraseInjected, 0u);
    EXPECT_EQ(ch.flitsInFlight(), 0);
}

TEST(LinkRetry, WindowLimitsOutstandingFlits)
{
    // Long latency, tiny window: the fifth send must wait for the
    // first ack round trip.
    Channel ch(10, 1);
    ch.enableReliability({true, 4, 64, 1024}, {}, Rng(1));
    for (Cycle t = 0; t < 4; ++t) {
        ch.tick(t);
        ASSERT_TRUE(ch.canSendFlit(t));
        ch.sendFlit(makeFlit(t), t);
    }
    EXPECT_FALSE(ch.canSendFlit(4));
    EXPECT_EQ(ch.replayOccupancy(), 4);

    // Flits arrive at t=10.., acks return at t=20..; the window
    // reopens only then.
    bool opened_before_ack = false;
    for (Cycle t = 4; t < 30; ++t) {
        ch.tick(t);
        while (ch.receiveFlit(t).has_value()) {
        }
        if (t < 20 && ch.canSendFlit(t))
            opened_before_ack = true;
    }
    EXPECT_FALSE(opened_before_ack);
    EXPECT_TRUE(ch.canSendFlit(30));
    EXPECT_EQ(ch.replayOccupancy(), 0);
}

TEST(LinkRetry, TimeoutRetransmitsWithCappedBackoff)
{
    // The receiver never calls receiveFlit, so no acks ever return:
    // the transmitter must keep retrying on timeout, but back off
    // exponentially up to the cap instead of hammering the wire.
    Channel ch(1, 1);
    ch.enableReliability({true, 8, 16, 128}, {}, Rng(5));
    ch.tick(0);
    ch.sendFlit(makeFlit(0), 0);
    for (Cycle t = 1; t <= 2000; ++t)
        ch.tick(t);
    const LinkStats &st = ch.linkStats();
    EXPECT_GE(st.timeouts, 3u);
    EXPECT_EQ(st.retransmits, st.timeouts);
    // Without backoff 2000 cycles / 16 = 125 rounds; the doubling
    // schedule (16, 32, 64, then 128 each) allows at most ~18.
    EXPECT_LE(st.timeouts, 20u);
    // The flit is still unacked and still owned by the transmitter.
    EXPECT_EQ(ch.replayOccupancy(), 1);
    EXPECT_EQ(ch.flitsInFlight(), 1);
}

TEST(LinkRetry, DuplicatesFromSpuriousTimeoutAreSuppressed)
{
    // Provoke a spurious retransmission: timeout shorter than the
    // ack round trip makes the transmitter resend a flit the
    // receiver has already accepted.  The receiver must suppress the
    // duplicate, not deliver it twice.
    Channel ch(8, 1); // ack round trip = 16 > retryTimeout = 4
    ch.enableReliability({true, 8, 4, 8}, {}, Rng(3));
    std::vector<Flit> got;
    FlitId next = 0;
    for (Cycle t = 0; t < 200; ++t) {
        ch.tick(t);
        while (auto f = ch.receiveFlit(t))
            got.push_back(*f);
        if (next < 5 && ch.canSendFlit(t))
            ch.sendFlit(makeFlit(next++), t);
    }
    ASSERT_EQ(got.size(), 5u);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].id, static_cast<FlitId>(i)) << i;
    const LinkStats &st = ch.linkStats();
    EXPECT_GT(st.timeouts, 0u);
    EXPECT_GT(st.dupSuppressed, 0u);
    EXPECT_EQ(ch.flitsInFlight(), 0);
}

TEST(LinkRetry, DeterministicForEqualSeeds)
{
    const auto run = [](std::uint64_t seed) {
        Channel ch(2, 1);
        LinkErrorRates rates;
        rates.corrupt = 0.2;
        rates.erase = 0.1;
        ch.enableReliability({true, 8, 16, 256}, rates, Rng(seed));
        (void)pump(ch, 40, 20000);
        return ch.linkStats();
    };
    const LinkStats a = run(99);
    const LinkStats b = run(99);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.retransmits, b.retransmits);
    EXPECT_EQ(a.corruptInjected, b.corruptInjected);
    EXPECT_EQ(a.eraseInjected, b.eraseInjected);
    const LinkStats c = run(100);
    EXPECT_TRUE(a.attempts != c.attempts ||
                a.corruptInjected != c.corruptInjected ||
                a.eraseInjected != c.eraseInjected);
}

} // namespace
} // namespace fbfly
