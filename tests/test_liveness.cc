/**
 * @file
 * Liveness subsystem tests (sim/liveness.h): the classifier must
 * tell a genuine cyclic VC-dependency deadlock apart from a
 * fault-disconnected destination and from an injected missed wake,
 * and recovery must leave conservation invariants and the delivery
 * oracle's accounting clean.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault_model.h"
#include "harness/experiment.h"
#include "network/network.h"
#include "routing/dor.h"
#include "routing/min_adaptive.h"
#include "routing/routing.h"
#include "sim/delivery_oracle.h"
#include "sim/liveness.h"
#include "topology/flattened_butterfly.h"
#include "topology/topology.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

/**
 * Test-only routing that ignores minimality and walks the router
 * ring r -> r+1 -> ... until the destination's router.  On a 4-ary
 * 2-flat (4 fully connected routers) a packet two ring hops away
 * spans two arcs; with packetSize > vcDepth and one VC, four such
 * packets (one per router) form the textbook 4-lane credit cycle.
 */
class RingRouting : public RoutingAlgorithm
{
  public:
    explicit RingRouting(const Topology &topo) : topo_(topo)
    {
        const int R = topo.numRouters();
        next_.assign(static_cast<std::size_t>(R), kInvalid);
        for (const Topology::Arc &a : topo.arcs())
            if (a.dst == (a.src + 1) % R)
                next_[static_cast<std::size_t>(a.src)] = a.srcPort;
    }

    std::string name() const override { return "TEST-RING"; }
    int numVcs() const override { return 1; }

    RouteDecision route(Router &router, Flit &f) override;

    bool preservesFlowOrder() const override { return true; }

  private:
    const Topology &topo_;
    std::vector<PortId> next_;
};

RouteDecision
RingRouting::route(Router &router, Flit &f)
{
    const RouterId r = router.id();
    if (topo_.ejectionRouter(f.dst) == r)
        return {topo_.ejectionPort(f.dst), 0, false};
    return {next_[static_cast<std::size_t>(r)], 0, false};
}

/** First node attached to each router of @p topo. */
std::vector<NodeId>
firstNodePerRouter(const Topology &topo)
{
    std::vector<NodeId> first(
        static_cast<std::size_t>(topo.numRouters()), kInvalid);
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        const auto r =
            static_cast<std::size_t>(topo.injectionRouter(n));
        if (first[r] == kInvalid)
            first[r] = n;
    }
    return first;
}

TEST(Liveness, ClassifiesAndRecoversCyclicDeadlock)
{
    FlattenedButterfly topo(4, 2); // 4 routers, fully connected
    RingRouting algo(topo);
    DeliveryOracle oracle;

    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 2;
    cfg.packetSize = 8; // wormhole: packets span routers
    cfg.watchdogCycles = 200;
    cfg.oracle = &oracle;
    Network net(topo, algo, nullptr, cfg);

    // One 8-flit packet per router, each two ring hops ahead:
    // packet_i claims arc i->i+1 and then waits for arc i+1->i+2,
    // which packet_{i+1} owns — a closed 4-lane wait cycle.
    const std::vector<NodeId> srcs = firstNodePerRouter(topo);
    for (RouterId r = 0; r < 4; ++r)
        net.terminal(srcs[static_cast<std::size_t>(r)])
            .enqueuePacket(
                net.now(),
                srcs[static_cast<std::size_t>((r + 2) % 4)], true);

    for (int c = 0; c < 5000 && !net.stalled(); ++c)
        net.step();
    ASSERT_TRUE(net.stalled());
    EXPECT_EQ(net.checkInvariants(), "");

    const StallDiagnosis diag = analyzeStall(net);
    EXPECT_EQ(diag.cls, StallClass::kDeadlock);
    ASSERT_GE(diag.cycleMembers.size(), 2u);
    for (const CycleMember &m : diag.cycleMembers) {
        EXPECT_GE(m.arc, 0);
        EXPECT_EQ(m.credits, 0);     // closed credit cycle
        EXPECT_GT(m.occupancy, 0);   // held downstream buffer
        EXPECT_GE(m.waitsOnArc, 0);  // the next edge in the cycle
    }
    const std::string sum = diag.summary();
    EXPECT_NE(sum.find("deadlock"), std::string::npos) << sum;
    EXPECT_NE(sum.find("waits on arc"), std::string::npos) << sum;

    // Killing ONE victim must break the cycle; the survivors then
    // drain on their own.
    const RecoveryReport rep =
        applyRecovery(net, diag, RecoveryPolicy::kKillVictim);
    EXPECT_EQ(rep.packetsKilled, 1);
    EXPECT_GT(rep.flitsKilled, 0);
    ASSERT_EQ(rep.actions.size(), 1u);

    for (int c = 0; c < 20000 && !net.quiescent(); ++c)
        net.step();
    EXPECT_TRUE(net.quiescent());
    EXPECT_FALSE(net.stalled());
    EXPECT_EQ(net.checkInvariants(), "");
    EXPECT_EQ(net.stats().packetsEjected, 3u);
    EXPECT_EQ(net.stats().measuredDropped, 1u); // the victim

    // The oracle sees the kill as an expected loss: audit clean.
    const OracleReport orep = oracle.report(
        net.stats().measuredDropped, true, true);
    EXPECT_TRUE(orep.clean()) << orep.summary();
}

TEST(Liveness, HarnessRecoversAndReportsDeadlock)
{
    // Same deadlock-prone configuration, driven end to end through
    // runLoadPoint: sustained ring traffic two routers ahead wedges
    // repeatedly, the kill-victim policy recovers each time, and the
    // run must finish as kDeadlockRecovered with a clean oracle
    // audit and the structured liveness JSON attached.
    FlattenedButterfly topo(4, 2);
    RingRouting algo(topo);
    AdversarialNeighbor pattern(topo.numNodes(), 4, 2);

    NetworkConfig netcfg;
    netcfg.vcDepth = 2;
    netcfg.packetSize = 8;
    netcfg.watchdogCycles = 100;

    ExperimentConfig expcfg;
    expcfg.warmupCycles = 0;
    expcfg.measureCycles = 40;
    expcfg.drainCycles = 200000;
    expcfg.seed = 7;
    expcfg.liveness.policy = RecoveryPolicy::kKillVictim;
    expcfg.liveness.maxRecoveries = 100000;

    const LoadPointResult res =
        runLoadPoint(topo, algo, pattern, netcfg, expcfg, 0.25);
    EXPECT_EQ(res.status, LoadPointStatus::kDeadlockRecovered)
        << toString(res.status) << "\n"
        << res.diagnostics;
    EXPECT_GT(res.recoveries, 0);
    EXPECT_NE(res.liveness.find("\"liveness\": {"),
              std::string::npos);
    EXPECT_NE(res.liveness.find("\"class\": \"deadlock\""),
              std::string::npos);
    ASSERT_TRUE(res.deliveryChecked);
    EXPECT_TRUE(res.delivery.clean()) << res.delivery.summary();
}

TEST(Liveness, ClassifiesUnreachableDestination)
{
    // Disconnect router 1 entirely.  validate() would reject this
    // fault set, but the constructor applies it as-is — exactly the
    // post-churn disconnection scenario.  Fault-unaware DOR routes
    // to the dead port and parks forever.
    FlattenedButterfly topo(4, 2);
    DimensionOrder algo(topo);
    FaultModel fm(topo);
    ASSERT_GT(fm.failLinkBetween(0, 1), 0);
    ASSERT_GT(fm.failLinkBetween(2, 1), 0);
    ASSERT_GT(fm.failLinkBetween(3, 1), 0);

    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 4;
    cfg.faults = &fm;
    cfg.watchdogCycles = 100;
    Network net(topo, algo, nullptr, cfg);

    // Node 0 (router 0) -> node 4 (router 1).
    net.terminal(0).enqueuePacket(net.now(), 4, true);
    for (int c = 0; c < 2000 && !net.stalled(); ++c)
        net.step();
    ASSERT_TRUE(net.stalled());

    const StallDiagnosis diag = analyzeStall(net);
    EXPECT_EQ(diag.cls, StallClass::kUnreachable);
    EXPECT_GE(diag.unreachableHeads, 1);
    EXPECT_TRUE(diag.cycleMembers.empty());
    EXPECT_NE(diag.summary().find("unreachable"), std::string::npos);

    // Escape-drain is lossless but cannot reconnect a destination:
    // routes are re-decided (to the same dead port) and the stall
    // returns.
    const RecoveryReport ed =
        applyRecovery(net, diag, RecoveryPolicy::kEscapeDrain);
    EXPECT_TRUE(ed.routesInvalidated);
    EXPECT_EQ(ed.packetsKilled, 0);
    EXPECT_FALSE(net.stalled()); // watchdog reset by the restart
    for (int c = 0; c < 2000 && !net.stalled(); ++c)
        net.step();
    ASSERT_TRUE(net.stalled());

    const StallDiagnosis diag2 = analyzeStall(net);
    EXPECT_EQ(diag2.cls, StallClass::kUnreachable);

    // Killing the disconnected heads is the terminal recovery.
    const RecoveryReport rep =
        applyRecovery(net, diag2, RecoveryPolicy::kKillVictim);
    EXPECT_GE(rep.packetsKilled, 1);
    for (int c = 0; c < 2000 && !net.quiescent(); ++c)
        net.step();
    EXPECT_TRUE(net.quiescent());
    EXPECT_EQ(net.checkInvariants(), "");
    EXPECT_EQ(net.stats().measuredDropped, 1u);
}

TEST(Liveness, ClassifiesInjectedMissedWake)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.watchdogCycles = 100;
    cfg.verifyWakeContract = true;
    Network net(topo, algo, nullptr, cfg);

    // Strand router 1: its wakes are swallowed every cycle, so a
    // flit sent to it parks on the wire with no consumer — the
    // exact signature of a kernel missed-wake bug.
    net.debugSuppressComponent(1);
    net.terminal(0).enqueuePacket(net.now(), 4, false);
    for (int c = 0; c < 2000 && !net.stalled(); ++c)
        net.step();
    ASSERT_TRUE(net.stalled());

    // The shadow verifier caught the (injected) divergence live.
    ASSERT_TRUE(net.wakeDivergence().has_value());
    EXPECT_TRUE(net.wakeDivergence()->injected);
    EXPECT_EQ(net.wakeDivergence()->component, 1u);
    EXPECT_GT(net.wakeChecks(), 0u);

    const StallDiagnosis diag = analyzeStall(net);
    EXPECT_EQ(diag.cls, StallClass::kKernelBug);
    EXPECT_EQ(diag.strandedComponent, 1);
    EXPECT_NE(diag.summary().find("wake contract"),
              std::string::npos);

    // Recovery for a missed wake is a full re-wake (nothing is
    // killed); once the suppression is lifted the packet delivers.
    net.debugClearSuppressed();
    const RecoveryReport rep =
        applyRecovery(net, diag, RecoveryPolicy::kKillVictim);
    EXPECT_EQ(rep.packetsKilled, 0);
    for (int c = 0; c < 2000 && !net.quiescent(); ++c)
        net.step();
    EXPECT_TRUE(net.quiescent());
    EXPECT_EQ(net.stats().packetsEjected, 1u);
    EXPECT_EQ(net.checkInvariants(), "");
}

TEST(Liveness, VerifierCleanOnHealthyTraffic)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.verifyWakeContract = true;
    Network net(topo, algo, nullptr, cfg);

    for (int c = 0; c < 400; ++c) {
        net.terminal(static_cast<NodeId>(c % 16))
            .enqueuePacket(net.now(),
                           static_cast<NodeId>((c * 7 + 3) % 16),
                           false);
        net.step();
    }
    for (int c = 0; c < 2000 && !net.quiescent(); ++c)
        net.step();
    EXPECT_TRUE(net.quiescent());
    EXPECT_TRUE(net.verifyingWakes());
    EXPECT_GT(net.wakeChecks(), 0u);
    EXPECT_FALSE(net.wakeDivergence().has_value());
}

TEST(Liveness, StallDumpCarriesActiveSetState)
{
    // The PR 7 kernel's scheduling state must be visible in the
    // stall dump next to the classified diagnosis.
    FlattenedButterfly topo(4, 2);
    DimensionOrder algo(topo);
    FaultModel fm(topo);
    ASSERT_GT(fm.failLinkBetween(0, 1), 0);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.faults = &fm;
    cfg.watchdogCycles = 100;
    Network net(topo, algo, nullptr, cfg);
    net.terminal(0).enqueuePacket(net.now(), 4, false);
    for (int c = 0; c < 2000 && !net.stalled(); ++c)
        net.step();
    ASSERT_TRUE(net.stalled());
    const std::string dump = net.stallDump();
    EXPECT_NE(dump.find("active-set:"), std::string::npos) << dump;
    EXPECT_NE(dump.find("queued-next:"), std::string::npos) << dump;
}

TEST(Liveness, NamesAndJson)
{
    EXPECT_STREQ(toString(StallClass::kDeadlock), "deadlock");
    EXPECT_STREQ(toString(StallClass::kStarvation), "starvation");
    EXPECT_STREQ(toString(StallClass::kUnreachable), "unreachable");
    EXPECT_STREQ(toString(StallClass::kKernelBug), "kernel-bug");
    EXPECT_STREQ(toString(RecoveryPolicy::kAbort), "abort");
    EXPECT_STREQ(toString(RecoveryPolicy::kKillVictim),
                 "kill-victim");
    EXPECT_STREQ(toString(RecoveryPolicy::kEscapeDrain),
                 "escape-drain");
    EXPECT_STREQ(toString(LoadPointStatus::kDeadlockRecovered),
                 "deadlock-recovered");

    LivenessConfig cfg;
    cfg.policy = RecoveryPolicy::kKillVictim;
    StallDiagnosis d;
    d.cls = StallClass::kDeadlock;
    d.cycle = 42;
    CycleMember m;
    m.arc = 3;
    m.src = 0;
    m.dst = 1;
    m.vc = 0;
    d.cycleMembers.push_back(m);
    RecoveryReport r;
    r.policy = RecoveryPolicy::kKillVictim;
    r.flitsKilled = 2;
    r.packetsKilled = 1;
    r.actions.push_back({1, 0, 0, 9, 2});

    const std::string js = livenessJson(cfg, {d}, {r});
    EXPECT_NE(js.find("\"liveness\": {"), std::string::npos) << js;
    EXPECT_NE(js.find("\"policy\": \"kill-victim\""),
              std::string::npos);
    EXPECT_NE(js.find("\"class\": \"deadlock\""), std::string::npos);
    EXPECT_NE(js.find("\"cycle\": 42"), std::string::npos);
    EXPECT_NE(js.find("\"packets_killed\": 1"), std::string::npos);
    EXPECT_NE(js.find("\"kind\": \"kill\""), std::string::npos);
    // The fragment splices into a JSON object: no trailing comma,
    // balanced braces.
    EXPECT_EQ(js.back(), '}');
}

} // namespace
} // namespace fbfly
