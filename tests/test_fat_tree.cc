/**
 * @file
 * Tests for the three-level folded Clos (fat tree) and its adaptive
 * routing — the paper's "3-stage" Clos configurations.
 */

#include <gtest/gtest.h>

#include <map>

#include "harness/experiment.h"
#include "network/network.h"
#include "routing/fat_tree_adaptive.h"
#include "topology/fat_tree.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

// Untapered 128-node tree: 16 leaves of 8 terminals, 4 pods of 4
// leaves, u1 = c = 8 middles/pod, u2 = p = 4 tops — full bandwidth
// at both levels.
FatTree
smallTree()
{
    return FatTree(128, 8, 4, 8, 4);
}

TEST(FatTree, Structure)
{
    const FatTree topo = smallTree();
    EXPECT_EQ(topo.numNodes(), 128);
    EXPECT_EQ(topo.numLeaves(), 16);
    EXPECT_EQ(topo.numPods(), 4);
    EXPECT_EQ(topo.numRouters(), 16 + 4 * 8 + 4);
    EXPECT_EQ(topo.levelOf(0), FatTree::Level::Leaf);
    EXPECT_EQ(topo.levelOf(16), FatTree::Level::Middle);
    EXPECT_EQ(topo.levelOf(topo.topId(0)), FatTree::Level::Top);
}

TEST(FatTree, PortCounts)
{
    const FatTree topo = smallTree();
    EXPECT_EQ(topo.numPorts(0), 8 + 8);        // leaf: c + u1
    EXPECT_EQ(topo.numPorts(16), 4 + 4);       // middle: p + u2
    EXPECT_EQ(topo.numPorts(topo.topId(0)), 32); // top: pods * u1
}

TEST(FatTree, WiringBijective)
{
    const FatTree topo = smallTree();
    std::map<std::pair<int, int>, int> out_use;
    std::map<std::pair<int, int>, int> in_use;
    for (const auto &a : topo.arcs()) {
        ++out_use[{a.src, a.srcPort}];
        ++in_use[{a.dst, a.dstPort}];
    }
    for (const auto &[key, n] : out_use)
        EXPECT_EQ(n, 1) << key.first << ":" << key.second;
    for (const auto &[key, n] : in_use)
        EXPECT_EQ(n, 1) << key.first << ":" << key.second;
    // Arc count: 2 * (leaf-middle + middle-top).
    EXPECT_EQ(topo.arcs().size(),
              2u * (16 * 8 + 4 * 8 * 4));
}

TEST(FatTree, PodMembershipConsistent)
{
    const FatTree topo = smallTree();
    for (const auto &a : topo.arcs()) {
        if (topo.levelOf(a.src) == FatTree::Level::Leaf) {
            ASSERT_EQ(topo.levelOf(a.dst), FatTree::Level::Middle);
            EXPECT_EQ(topo.podOfLeaf(a.src),
                      topo.podOfMiddle(a.dst));
        }
    }
}

TEST(FatTreeAdaptive, HopCountsByCommonAncestorLevel)
{
    const FatTree topo = smallTree();
    FatTreeAdaptive algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();

    auto hops = [&](NodeId src, NodeId dst) {
        Network net(topo, algo, nullptr, cfg);
        net.terminal(src).enqueuePacket(0, dst, true);
        while (!net.quiescent())
            net.step();
        return net.stats().hops.mean();
    };

    EXPECT_EQ(hops(0, 7), 1.0);   // same leaf: eject
    EXPECT_EQ(hops(0, 15), 3.0);  // same pod: leaf-mid-leaf + eject
    EXPECT_EQ(hops(0, 127), 5.0); // cross pod: through a top router
}

TEST(FatTreeAdaptive, AllPairsDeliver)
{
    const FatTree topo = smallTree();
    FatTreeAdaptive algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 8;
    Network net(topo, algo, nullptr, cfg);
    std::uint64_t sent = 0;
    for (NodeId src = 0; src < 128; src += 3) {
        for (NodeId dst = 0; dst < 128; dst += 5) {
            if (src == dst)
                continue;
            net.terminal(src).enqueuePacket(net.now(), dst, true);
            ++sent;
        }
        for (int c = 0; c < 60 && !net.quiescent(); ++c)
            net.step();
    }
    for (int c = 0; c < 3000 && !net.quiescent(); ++c)
        net.step();
    EXPECT_TRUE(net.quiescent());
    EXPECT_EQ(net.stats().measuredEjected, sent);
}

TEST(FatTreeAdaptive, UntaperedDeliversFullUniformThroughput)
{
    const FatTree topo = smallTree(); // u1 = c, u1*u2 = p*c: no taper
    FatTreeAdaptive algo(topo);
    UniformRandom ur(topo.numNodes());
    ExperimentConfig e;
    e.warmupCycles = 400;
    e.measureCycles = 400;
    e.drainCycles = 1200;
    NetworkConfig cfg;
    const double t =
        runLoadPoint(topo, algo, ur, cfg, e, 1.0).accepted;
    EXPECT_GT(t, 0.8);
}

TEST(FatTreeAdaptive, TaperedVersionCapsProportionally)
{
    // 2:1 taper at both levels (u1 = c/2, pod uplink bandwidth
    // u1*u2 = half the pod's terminals): adversarial (all
    // cross-pod) traffic caps near 50%.
    FatTree topo(128, 8, 4, 4, 4);
    FatTreeAdaptive algo(topo);
    AdversarialNeighbor wc(topo.numNodes(), 32); // next pod
    ExperimentConfig e;
    e.warmupCycles = 400;
    e.measureCycles = 400;
    e.drainCycles = 1000;
    NetworkConfig cfg;
    const double t =
        runLoadPoint(topo, algo, wc, cfg, e, 0.9).accepted;
    EXPECT_GT(t, 0.4);
    EXPECT_LT(t, 0.62);
}

TEST(FatTreeDeath, RejectsSinglePod)
{
    EXPECT_EXIT(FatTree(32, 8, 4, 4, 4),
                ::testing::KilledBySignal(SIGABRT), "pods");
}

} // namespace
} // namespace fbfly
