/**
 * @file
 * Tests for radix-k address arithmetic (common/radix.h).
 */

#include <gtest/gtest.h>

#include "common/radix.h"
#include "common/rng.h"

namespace fbfly
{
namespace
{

TEST(Radix, DigitExtraction)
{
    // 1234 in base 10.
    EXPECT_EQ(digit(1234, 0, 10), 4);
    EXPECT_EQ(digit(1234, 1, 10), 3);
    EXPECT_EQ(digit(1234, 2, 10), 2);
    EXPECT_EQ(digit(1234, 3, 10), 1);
    EXPECT_EQ(digit(1234, 4, 10), 0);
    // 0b1010 in base 2.
    EXPECT_EQ(digit(10, 1, 2), 1);
    EXPECT_EQ(digit(10, 0, 2), 0);
}

TEST(Radix, SetDigitReplaces)
{
    EXPECT_EQ(setDigit(1234, 0, 10, 9), 1239);
    EXPECT_EQ(setDigit(1234, 2, 10, 0), 1034);
    EXPECT_EQ(setDigit(0, 3, 4, 3), 3 * 64);
}

TEST(Radix, SetDigitIdentity)
{
    for (int d = 0; d < 4; ++d)
        EXPECT_EQ(setDigit(1234, d, 10, digit(1234, d, 10)), 1234);
}

TEST(Radix, ToFromDigitsRoundTrip)
{
    const auto ds = toDigits(1234, 4, 10);
    ASSERT_EQ(ds.size(), 4u);
    EXPECT_EQ(ds[0], 4);
    EXPECT_EQ(ds[3], 1);
    EXPECT_EQ(fromDigits(ds, 10), 1234);
}

TEST(Radix, CountDiffDigits)
{
    EXPECT_EQ(countDiffDigits(0, 0, 4, 2), 0);
    EXPECT_EQ(countDiffDigits(0b1010, 0b0000, 4, 2), 2);
    EXPECT_EQ(countDiffDigits(0b1010, 0b0000, 4, 2, 1), 2);
    EXPECT_EQ(countDiffDigits(0b1010, 0b0000, 4, 2, 2), 1);
    EXPECT_EQ(countDiffDigits(1234, 1239, 4, 10), 1);
}

TEST(Radix, Ipow)
{
    EXPECT_EQ(ipow(2, 0), 1);
    EXPECT_EQ(ipow(2, 10), 1024);
    EXPECT_EQ(ipow(16, 4), 65536);
    EXPECT_EQ(ipow(10, 6), 1000000);
}

TEST(Radix, CeilLog)
{
    EXPECT_EQ(ceilLog(1, 2), 0);
    EXPECT_EQ(ceilLog(2, 2), 1);
    EXPECT_EQ(ceilLog(1024, 2), 10);
    EXPECT_EQ(ceilLog(1025, 2), 11);
    EXPECT_EQ(ceilLog(64, 64), 1);
    EXPECT_EQ(ceilLog(65, 64), 2);
    EXPECT_EQ(ceilLog(4096, 64), 2);
}

/** Property sweep: digit algebra is self-consistent in any base. */
class RadixProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RadixProperty, SetThenGetRoundTrips)
{
    const int k = GetParam();
    Rng rng(99);
    for (int iter = 0; iter < 500; ++iter) {
        const auto value = static_cast<std::int64_t>(
            rng.nextBounded(ipow(k, 5)));
        const int d = static_cast<int>(rng.nextBounded(5));
        const int v = static_cast<int>(rng.nextBounded(k));
        const auto out = setDigit(value, d, k, v);
        EXPECT_EQ(digit(out, d, k), v);
        // Other digits are untouched.
        for (int o = 0; o < 5; ++o) {
            if (o != d) {
                EXPECT_EQ(digit(out, o, k), digit(value, o, k));
            }
        }
    }
}

TEST_P(RadixProperty, DigitsComposition)
{
    const int k = GetParam();
    Rng rng(7);
    for (int iter = 0; iter < 200; ++iter) {
        const auto value = static_cast<std::int64_t>(
            rng.nextBounded(ipow(k, 6)));
        EXPECT_EQ(fromDigits(toDigits(value, 6, k), k), value);
    }
}

INSTANTIATE_TEST_SUITE_P(Bases, RadixProperty,
                         ::testing::Values(2, 3, 4, 8, 16, 32));

} // namespace
} // namespace fbfly
