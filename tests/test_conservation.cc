/**
 * @file
 * Flit-conservation property tests: the per-channel utilization the
 * observability layer integrates must reconcile *exactly* with the
 * simulator's own delivery accounting.
 *
 * Invariant (plain channels — no retry protocol, no drops): every
 * router-to-router hop of a flit is one traversal of exactly one
 * inter-router channel, and a flit's `hops` field counts its router
 * departures (the last one being onto its ejection channel, which is
 * not an inter-router arc).  Hence, on a run that ends quiescent,
 *
 *     sum over arcs of flitsCarried
 *         == NetworkStats::hopsEjected - NetworkStats::flitsEjected
 *
 * with both sides exact integers.  The test checks this on all five
 * topology families, which makes it a cheap but sharp cross-check of
 * per-topology channel wiring, router hop accounting, and the
 * ObsSampler's utilization integral in one go.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "harness/experiment.h"
#include "obs/metrics.h"
#include "obs/obs_sampler.h"
#include "routing/butterfly_dest.h"
#include "routing/folded_clos_adaptive.h"
#include "routing/hypercube_ecube.h"
#include "routing/min_adaptive.h"
#include "routing/torus_dor.h"
#include "routing/ugal.h"
#include "topology/butterfly.h"
#include "topology/flattened_butterfly.h"
#include "topology/folded_clos.h"
#include "topology/hypercube.h"
#include "topology/torus.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

/**
 * Deliver a small batch to quiescence and check the conservation
 * identity, both directly on the channel counters and through the
 * ObsSampler's running integral.
 */
void
expectConservation(const Topology &topo, RoutingAlgorithm &algo,
                   Cycle period = 1)
{
    UniformRandom pattern(topo.numNodes());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 8;
    cfg.channelPeriod = period;
    cfg.seed = 2007;
    Network net(topo, algo, &pattern, cfg);

    MetricsRegistry registry;
    ObsSampler sampler(net, registry, 64);

    loadBatch(net, 2, true);
    Cycle guard = 0;
    while (!net.quiescent()) {
        ASSERT_LT(guard++, 100000u) << "batch failed to drain";
        net.step();
        sampler.tick();
    }
    sampler.finish();

    const NetworkStats &st = net.stats();
    ASSERT_GT(st.flitsEjected, 0u);
    EXPECT_EQ(st.flitsDropped, 0u);

    const std::vector<std::uint64_t> carried =
        net.interRouterFlitCounts();
    const std::uint64_t on_wires = std::accumulate(
        carried.begin(), carried.end(), std::uint64_t{0});

    // The identity itself.
    EXPECT_EQ(on_wires, st.hopsEjected - st.flitsEjected)
        << topo.name() << " / " << algo.name()
        << ": channel traversals do not reconcile with hop "
           "accounting";

    // The sampler integrated the same flits (its baseline was the
    // freshly built network, i.e. zero).
    EXPECT_EQ(sampler.integratedChannelFlits(), on_wires);
    EXPECT_EQ(registry.counter("obs.channel_flits_integrated"),
              on_wires);

    // Utilization series are consistent with the integral: the mean
    // utilization summed over windows times (channels * window)
    // recovers the integral, up to the final partial window.
    const MetricsRegistry::Series *mean =
        registry.findSeries("obs.channel_util.mean");
    ASSERT_NE(mean, nullptr);
    EXPECT_EQ(registry.gauge("obs.windows"),
              static_cast<double>(mean->values.size()));
    for (const double v : mean->values)
        EXPECT_GE(v, 0.0);
}

TEST(Conservation, FlattenedButterflyMinAdaptive)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    expectConservation(topo, algo);
}

TEST(Conservation, FoldedClosAdaptive)
{
    FoldedClos topo(16, 4, 4);
    FoldedClosAdaptive algo(topo);
    expectConservation(topo, algo);
}

TEST(Conservation, HypercubeEcube)
{
    Hypercube topo(4);
    HypercubeEcube algo(topo);
    expectConservation(topo, algo, 2); // half-bandwidth channels
}

TEST(Conservation, TorusDor)
{
    Torus topo(4, 2);
    TorusDor algo(topo);
    expectConservation(topo, algo);
}

TEST(Conservation, ButterflyDest)
{
    Butterfly topo(2, 3);
    ButterflyDest algo(topo);
    expectConservation(topo, algo);
}

/**
 * Open-loop variant on UGAL: the run does not end quiescent
 * (background traffic keeps flowing), so the identity weakens to an
 * inequality — flits still inside have crossed wires but not ejected
 * — while the delivery oracle ties the measured population down
 * exactly.
 */
TEST(Conservation, OpenLoopIntegralBoundsAndCleanDelivery)
{
    FlattenedButterfly topo(4, 2);
    Ugal algo(topo, false);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig netcfg;
    netcfg.vcDepth = 8;

    ExperimentConfig expcfg;
    expcfg.warmupCycles = 200;
    expcfg.measureCycles = 300;
    expcfg.drainCycles = 2000;
    expcfg.verifyDelivery = true;
    expcfg.obs.metricsEnabled = true;
    expcfg.obs.metricsWindowCycles = 50;

    const LoadPointResult r =
        runLoadPoint(topo, algo, pattern, netcfg, expcfg, 0.3);
    ASSERT_TRUE(r.valid());
    ASSERT_EQ(r.status, LoadPointStatus::kDelivered);
    ASSERT_NE(r.metrics, nullptr);
    const MetricsRegistry &m = *r.metrics;

    const std::uint64_t integrated =
        m.counter("obs.channel_flits_integrated");
    const std::uint64_t hops = m.counter("net.hops_ejected");
    const std::uint64_t ejected = m.counter("net.flits_ejected");
    ASSERT_GE(hops, ejected);
    // Ejected flits account for hops - ejected wire crossings;
    // in-flight flits can only add to the integral.
    EXPECT_GE(integrated, hops - ejected);

    // The oracle confirms the measured population was delivered
    // exactly once, uncorrupted — the "delivered" side of the
    // conservation argument.
    ASSERT_TRUE(r.deliveryChecked);
    EXPECT_TRUE(r.delivery.clean()) << r.delivery.summary();
    EXPECT_EQ(r.delivery.delivered, r.measuredPackets);
}

} // namespace
} // namespace fbfly
