/**
 * @file
 * Tests for the observability layer (src/obs/): TraceSink ring
 * semantics and gating, MetricsRegistry determinism and JSON shape,
 * the Chrome trace_event exporter, the ObsSampler, and the
 * end-to-end reconciliation between trace event counts and the
 * MetricsRegistry counters of a real simulation run.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "harness/experiment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "routing/min_adaptive.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

Flit
makeFlit(FlitId id, NodeId src = 0, NodeId dst = 1)
{
    Flit f;
    f.id = id;
    f.packet = id;
    f.src = src;
    f.dst = dst;
    f.head = f.tail = true;
    return f;
}

// ---------------------------------------------------------------------
// TraceSink
// ---------------------------------------------------------------------

TEST(TraceSink, RecordsEventsWithTracksAndOperands)
{
    TraceSink sink(64);
    const std::int32_t r0 =
        sink.addTrack("router 0", TrackKind::kRouter);
    const std::int32_t c0 =
        sink.addTrack("chan 0: 0->1", TrackKind::kChannel);
    EXPECT_EQ(r0, 0);
    EXPECT_EQ(c0, 1);
    ASSERT_EQ(sink.tracks().size(), 2u);
    EXPECT_EQ(sink.tracks()[1].name, "chan 0: 0->1");
    EXPECT_EQ(sink.tracks()[1].kind, TrackKind::kChannel);

    sink.record(TraceEventType::kVcAlloc, 7, r0, makeFlit(42), 3, 1);
    sink.record(TraceEventType::kLinkTraverse, 8, c0, makeFlit(42));
    ASSERT_EQ(sink.size(), 2u);
    const TraceRecord &a = sink.at(0);
    EXPECT_EQ(a.cycle, 7u);
    EXPECT_EQ(a.flit, 42u);
    EXPECT_EQ(a.track, r0);
    EXPECT_EQ(a.a, 3);
    EXPECT_EQ(a.b, 1);
    EXPECT_EQ(a.type, TraceEventType::kVcAlloc);
    EXPECT_EQ(sink.at(1).type, TraceEventType::kLinkTraverse);
    EXPECT_EQ(sink.at(1).a, -1);
    EXPECT_EQ(sink.count(TraceEventType::kVcAlloc), 1u);
    EXPECT_EQ(sink.count(TraceEventType::kEject), 0u);
}

TEST(TraceSink, RingOverwritesOldestAndKeepsCounts)
{
    TraceSink sink(4);
    const std::int32_t t =
        sink.addTrack("node 0", TrackKind::kTerminal);
    for (FlitId i = 0; i < 10; ++i)
        sink.record(TraceEventType::kInject, i, t, makeFlit(i));
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.capacity(), 4u);
    EXPECT_EQ(sink.recorded(), 10u);
    EXPECT_EQ(sink.droppedRecords(), 6u);
    // Chronological read: the 4 youngest survive, oldest first.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(sink.at(i).flit, 6u + i);
    // Per-type counts survive the overwrite.
    EXPECT_EQ(sink.count(TraceEventType::kInject), 10u);
}

TEST(TraceSink, LevelAndMaskGateRecording)
{
    TraceSink sink(16);
    const std::int32_t t = sink.addTrack("r", TrackKind::kRouter);

    sink.setLevel(TraceLevel::kPackets);
    EXPECT_TRUE(sink.wants(TraceEventType::kInject));
    EXPECT_TRUE(sink.wants(TraceEventType::kEject));
    EXPECT_TRUE(sink.wants(TraceEventType::kDrop));
    EXPECT_FALSE(sink.wants(TraceEventType::kVcAlloc));
    EXPECT_FALSE(sink.wants(TraceEventType::kLinkTraverse));

    sink.record(TraceEventType::kVcAlloc, 0, t, makeFlit(1));
    sink.record(TraceEventType::kInject, 0, t, makeFlit(1));
    EXPECT_EQ(sink.size(), 1u);
    EXPECT_EQ(sink.recorded(), 1u);
    EXPECT_EQ(sink.count(TraceEventType::kVcAlloc), 0u);

    sink.setLevel(TraceLevel::kOff);
    sink.record(TraceEventType::kInject, 1, t, makeFlit(2));
    EXPECT_EQ(sink.size(), 1u);

    sink.setMask(~0u);
    sink.record(TraceEventType::kSwAlloc, 2, t, makeFlit(3));
    EXPECT_EQ(sink.size(), 2u);
}

TEST(TraceSink, CounterBufferIsBounded)
{
    TraceSink sink(8);
    const std::int32_t c = sink.addTrack("ch", TrackKind::kChannel);
    for (int i = 0; i < 20; ++i)
        sink.counter(c, i, 0.5 * i);
    EXPECT_LE(sink.counterSamples().size(), 8u);
    EXPECT_EQ(sink.counterSamples().size() +
                  sink.droppedCounterSamples(),
              20u);
    EXPECT_EQ(sink.counterSamples()[0].track, c);
    EXPECT_EQ(sink.counterSamples()[1].value, 0.5);
}

TEST(TraceSink, ToTextIsCanonical)
{
    TraceSink sink(16);
    const std::int32_t r = sink.addTrack("router 0",
                                         TrackKind::kRouter);
    sink.record(TraceEventType::kVcAlloc, 5, r, makeFlit(9, 2, 3), 1,
                0);
    const std::string text = sink.toText();
    EXPECT_NE(text.find("fbfly-trace-v1"), std::string::npos);
    EXPECT_NE(text.find("track 0 router router 0"),
              std::string::npos);
    EXPECT_NE(text.find("5 0 vc-alloc flit=9 pkt=9 src=2 dst=3 "
                        "a=1 b=0"),
              std::string::npos);
    // Serialization is pure: a second call is byte-identical.
    EXPECT_EQ(sink.toText(), text);
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesSeries)
{
    MetricsRegistry m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.counter("nope"), 0u);
    EXPECT_FALSE(m.hasCounter("nope"));
    EXPECT_TRUE(std::isnan(m.gauge("nope")));
    EXPECT_EQ(m.findSeries("nope"), nullptr);

    m.setCounter("a", 3);
    m.addCounter("a", 4);
    m.addCounter("b", 1);
    m.setGauge("g", 2.5);
    m.series("s", 100, 10).values.push_back(0.25);
    m.series("s", 999, 999).values.push_back(0.75); // window sticky

    EXPECT_EQ(m.counter("a"), 7u);
    EXPECT_EQ(m.counter("b"), 1u);
    EXPECT_EQ(m.gauge("g"), 2.5);
    const MetricsRegistry::Series *s = m.findSeries("s");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->windowCycles, 100u);
    EXPECT_EQ(s->startCycle, 10u);
    ASSERT_EQ(s->values.size(), 2u);
    EXPECT_EQ(s->values[1], 0.75);

    // Insertion order is preserved (the JSON / comparison order).
    ASSERT_EQ(m.counters().size(), 2u);
    EXPECT_EQ(m.counters()[0].first, "a");
    EXPECT_EQ(m.counters()[1].first, "b");
}

TEST(MetricsRegistry, ExactEqualityIncludingNaN)
{
    MetricsRegistry a;
    MetricsRegistry b;
    EXPECT_TRUE(a == b);
    a.setCounter("c", 1);
    EXPECT_FALSE(a == b);
    b.setCounter("c", 1);
    EXPECT_TRUE(a == b);

    // NaN gauges compare equal to themselves (determinism checks
    // must not fail on absent statistics).
    a.setGauge("g", std::nan(""));
    b.setGauge("g", std::nan(""));
    EXPECT_TRUE(a == b);
    b.setGauge("g", 1.0);
    EXPECT_FALSE(a == b);

    // Insertion order matters: same content, different order.
    MetricsRegistry c;
    MetricsRegistry d;
    c.setCounter("x", 1);
    c.setCounter("y", 2);
    d.setCounter("y", 2);
    d.setCounter("x", 1);
    EXPECT_FALSE(c == d);
}

TEST(MetricsRegistry, WriteJsonRendersNaNAsNull)
{
    MetricsRegistry m;
    m.setCounter("n.flits", 12);
    m.setGauge("lat.mean", 4.5);
    m.setGauge("lat.p99", std::nan(""));
    auto &s = m.series("util", 100, 0);
    s.values = {0.25, std::nan("")};

    std::ostringstream os;
    m.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"n.flits\": 12"), std::string::npos);
    EXPECT_NE(json.find("\"lat.mean\": 4.5"), std::string::npos);
    EXPECT_NE(json.find("\"lat.p99\": null"), std::string::npos);
    EXPECT_NE(json.find("\"window_cycles\": 100"),
              std::string::npos);
    EXPECT_NE(json.find("[0.25, null]"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
}

// ---------------------------------------------------------------------
// Chrome trace_event exporter
// ---------------------------------------------------------------------

TEST(TraceExport, EmitsMetadataInstantAndCounterEvents)
{
    TraceSink sink(16);
    const std::int32_t r = sink.addTrack("router 0",
                                         TrackKind::kRouter);
    const std::int32_t c = sink.addTrack("chan 0: 0->1",
                                         TrackKind::kChannel);
    sink.record(TraceEventType::kSwAlloc, 3, r, makeFlit(1), 2, 0);
    sink.record(TraceEventType::kLinkTraverse, 4, c, makeFlit(1));
    sink.counter(c, 100, 0.125);

    std::vector<TracePoint> pts;
    pts.push_back({"point 0: unit", &sink});
    pts.push_back({"null point", nullptr}); // skipped, not crashed
    const std::string json = tracesToChromeJson(pts);

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"point 0: unit\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"router 0\""), std::string::npos);
    // One instant event per record, tagged thread-scoped.
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"sw-alloc\""),
              std::string::npos);
    // The counter sample becomes a "C" event with its value.
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(json.find("0.125"), std::string::npos);
    // Cycle 3 is ts 3 (1 cycle = 1 us).
    EXPECT_NE(json.find("\"ts\": 3"), std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end reconciliation on a real run
// ---------------------------------------------------------------------

TEST(ObsEndToEnd, TraceCountsReconcileWithMetricsCounters)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig netcfg;
    netcfg.vcDepth = 8;

    ExperimentConfig expcfg;
    expcfg.warmupCycles = 100;
    expcfg.measureCycles = 200;
    expcfg.drainCycles = 1500;
    expcfg.seed = 2007;
    expcfg.obs.traceEnabled = true;
    expcfg.obs.traceCapacity = 1 << 16;
    expcfg.obs.metricsEnabled = true;
    expcfg.obs.metricsWindowCycles = 50;

    const LoadPointResult r =
        runLoadPoint(topo, algo, pattern, netcfg, expcfg, 0.3);
    ASSERT_TRUE(r.valid());
    ASSERT_NE(r.trace, nullptr);
    ASSERT_NE(r.metrics, nullptr);
    const TraceSink &sink = *r.trace;
    const MetricsRegistry &m = *r.metrics;

    // The lifecycle counts recorded by the sink must agree exactly
    // with the simulator's own statistics counters.
    EXPECT_EQ(sink.count(TraceEventType::kInject),
              m.counter("net.flits_injected"));
    EXPECT_EQ(sink.count(TraceEventType::kEject),
              m.counter("net.flits_ejected"));
    EXPECT_EQ(sink.count(TraceEventType::kDrop),
              m.counter("net.flits_dropped"));
    // Every link event is one inter-router wire traversal, so the
    // trace reconciles with the sampler's utilization integral
    // (plain channels here: no retry protocol, no retransmits).
    EXPECT_EQ(sink.count(TraceEventType::kRetry), 0u);
    EXPECT_EQ(sink.count(TraceEventType::kLinkTraverse),
              m.counter("obs.channel_flits_integrated"));
    // And the registry records the sink's own accounting.
    EXPECT_EQ(m.counter("trace.recorded"), sink.recorded());
    EXPECT_EQ(m.counter("trace.inject"),
              sink.count(TraceEventType::kInject));
    EXPECT_GT(sink.recorded(), 0u);

    // Every event must reference a registered track.
    const std::size_t num_tracks = sink.tracks().size();
    EXPECT_GT(num_tracks, 0u);
    for (std::size_t i = 0; i < sink.size(); ++i) {
        EXPECT_GE(sink.at(i).track, 0);
        EXPECT_LT(static_cast<std::size_t>(sink.at(i).track),
                  num_tracks);
    }

    // Latency gauges mirror the scalar result.
    EXPECT_EQ(m.gauge("latency.mean"), r.avgLatency);
    EXPECT_EQ(m.gauge("latency.p99"), r.p99Latency);
    EXPECT_EQ(m.counter("latency.count"), r.measuredPackets);

    // Sampler series exist and have one value per window.
    const MetricsRegistry::Series *util =
        m.findSeries("obs.channel_util.mean");
    ASSERT_NE(util, nullptr);
    EXPECT_EQ(util->windowCycles, 50u);
    EXPECT_GE(util->values.size(),
              static_cast<std::size_t>(
                  (expcfg.warmupCycles + expcfg.measureCycles) /
                  50));
    const MetricsRegistry::Series *occ =
        m.findSeries("obs.vc_occ.vc0");
    ASSERT_NE(occ, nullptr);
    EXPECT_EQ(occ->values.size(), util->values.size());
    for (const double v : util->values) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(ObsEndToEnd, DisabledObservabilityLeavesResultBare)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig netcfg;
    netcfg.vcDepth = 8;
    ExperimentConfig expcfg;
    expcfg.warmupCycles = 50;
    expcfg.measureCycles = 100;
    expcfg.drainCycles = 1000;

    const LoadPointResult r =
        runLoadPoint(topo, algo, pattern, netcfg, expcfg, 0.2);
    ASSERT_TRUE(r.valid());
    EXPECT_EQ(r.trace, nullptr);
    EXPECT_EQ(r.metrics, nullptr);
}

} // namespace
} // namespace fbfly
