/**
 * @file
 * Pinned fixture scenarios shared by the golden-trace,
 * idle-equivalence and shard-determinism suites.
 *
 * Every helper here produces integer-only canonical text (trace
 * text, counters, per-arc flit counts) that is byte-identical across
 * platforms, optimization levels and sanitizers, and is compared
 * against a committed fixture under tests/data/.  Each scenario
 * takes a `shards` parameter (NetworkConfig::shards) precisely so
 * the shard-determinism suite can assert that the sharded step
 * engine reproduces the committed fixtures byte for byte WITHOUT
 * regeneration — the contract of docs/DESIGN.md "Sharded step
 * engine".
 *
 * Any change to a scenario invalidates its fixture — bump the
 * fixture file name if the scenario itself must evolve.  Regenerate
 * with
 *
 *     FBFLY_REGEN_GOLDEN=1 ./fbfly_tests --gtest_filter='<suite>*'
 *
 * and commit the new fixture together with an explanation of why the
 * schedule changed.
 */

#ifndef FBFLY_TESTS_FIXTURE_SCENARIOS_H
#define FBFLY_TESTS_FIXTURE_SCENARIOS_H

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/error_model.h"
#include "harness/sweep.h"
#include "network/network.h"
#include "obs/trace.h"
#include "routing/min_adaptive.h"
#include "routing/ugal.h"
#include "topology/flattened_butterfly.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace fixtures
{

#ifndef FBFLY_TEST_DATA_DIR
#error "FBFLY_TEST_DATA_DIR must be defined by the build"
#endif

inline const char *const kGoldenFixture =
    FBFLY_TEST_DATA_DIR "/golden_trace_2ary2flat_ugal.txt";
inline const char *const kBurstyFixture =
    FBFLY_TEST_DATA_DIR "/idle_equivalence_bursty.txt";
inline const char *const kSweepFixture =
    FBFLY_TEST_DATA_DIR "/idle_equivalence_sweep.txt";

/** Read a committed fixture in full ("" + test failure if absent). */
inline std::string
readFixture(const char *path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ADD_FAILURE() << "missing fixture " << path
                      << " — run with FBFLY_REGEN_GOLDEN=1 to "
                         "create it";
        return std::string();
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/**
 * The pinned golden scenario (tests/test_golden_trace.cc): a tiny,
 * fully pinned UGAL run on the 2-ary 2-flat whose canonical trace
 * text must stay byte-identical to kGoldenFixture.
 */
inline std::string
runGoldenScenario(int shards = 1)
{
    FlattenedButterfly topo(2, 2); // 4 nodes, 2 routers
    Ugal algo(topo, false);
    UniformRandom pattern(topo.numNodes());

    TraceSink sink(1 << 14);
    sink.setLevel(TraceLevel::kFull);

    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 4;
    cfg.seed = 2007; // ISCA'07
    cfg.trace = &sink;
    cfg.shards = shards;

    Network net(topo, algo, &pattern, cfg);
    BernoulliInjection inj(0.3, 1, 7);
    for (int c = 0; c < 100; ++c) {
        inj.tick(net, false);
        net.step();
    }
    EXPECT_EQ(sink.droppedRecords(), 0u)
        << "golden ring overflowed; enlarge the sink";
    return sink.toText();
}

/** Append the integer-only observable state of @p net to @p os. */
inline void
dumpNetworkState(std::ostringstream &os, const Network &net)
{
    const NetworkStats &s = net.stats();
    os << "now " << net.now() << "\n"
       << "quiescent " << (net.quiescent() ? 1 : 0) << "\n"
       << "flitsInjected " << s.flitsInjected << "\n"
       << "flitsEjected " << s.flitsEjected << "\n"
       << "hopsEjected " << s.hopsEjected << "\n"
       << "packetsEjected " << s.packetsEjected << "\n"
       << "measuredCreated " << s.measuredCreated << "\n"
       << "measuredEjected " << s.measuredEjected << "\n"
       << "flitsDropped " << s.flitsDropped << "\n"
       << "packetsUnreachable " << s.packetsUnreachable << "\n"
       << "measuredDropped " << s.measuredDropped << "\n"
       << "pendingPackets " << s.pendingPackets << "\n";
    const std::vector<std::uint64_t> arcs =
        net.interRouterFlitCounts();
    for (std::size_t i = 0; i < arcs.size(); ++i)
        os << "arc " << i << " " << arcs[i] << "\n";
    const LinkStats ls = net.linkStats();
    os << "link.attempts " << ls.attempts << "\n"
       << "link.retransmits " << ls.retransmits << "\n"
       << "link.corruptInjected " << ls.corruptInjected << "\n"
       << "link.eraseInjected " << ls.eraseInjected << "\n"
       << "link.crcRejected " << ls.crcRejected << "\n"
       << "link.dupSuppressed " << ls.dupSuppressed << "\n"
       << "link.nacksSent " << ls.nacksSent << "\n"
       << "link.acksSent " << ls.acksSent << "\n"
       << "link.timeouts " << ls.timeouts << "\n";
}

/**
 * One leg of the pinned bursty scenario
 * (tests/test_idle_equivalence.cc): a 4-ary 2-flat driven by
 * explicit per-terminal bursts at epoch boundaries, each followed by
 * a long all-idle gap.
 *
 * @param with_errors when true, a transient-error model enables
 *        link-layer retry, whose timeout/backoff timers must fire
 *        identically across the idle gaps.  (Reliable links also
 *        make the Network fall back to one shard, so this leg
 *        doubles as the fallback's regression test.)
 */
inline std::string
runBurstyLeg(bool with_errors, int shards = 1)
{
    FlattenedButterfly topo(4, 2); // 16 nodes, 4 routers
    MinAdaptive algo(topo);

    ErrorModelConfig ecfg;
    ecfg.corruptRate = 0.02;
    ecfg.eraseRate = 0.01;
    ecfg.seed = 11;
    ErrorModel errors(topo, ecfg);

    TraceSink sink(1 << 16);
    sink.setLevel(TraceLevel::kFull);

    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 4;
    cfg.seed = 2007;
    cfg.errors = with_errors ? &errors : nullptr;
    cfg.trace = &sink;
    cfg.shards = shards;

    // Explicit destinations only: no traffic pattern, so an idle
    // cycle consumes no RNG anywhere by construction.
    Network net(topo, algo, nullptr, cfg);
    const NodeId n = static_cast<NodeId>(net.numNodes());

    for (int epoch = 0; epoch < 4; ++epoch) {
        // Burst: a deterministic subset of terminals each queue two
        // packets with pinned destinations.
        for (NodeId src = 0; src < n; ++src) {
            if ((src + epoch) % 3 != 0)
                continue;
            for (int p = 0; p < 2; ++p) {
                NodeId dst = static_cast<NodeId>(
                    (src * 7 + epoch * 5 + p + 1) % n);
                if (dst == src)
                    dst = static_cast<NodeId>((dst + 1) % n);
                net.terminal(src).enqueuePacket(net.now(), dst,
                                                true);
            }
        }
        // Busy phase: long enough for the burst (and any
        // retransmission rounds) to drain completely.
        for (int c = 0; c < 150; ++c)
            net.step();
        // Silent epoch: hundreds of cycles with no work anywhere.
        const int silence = 300 + 150 * epoch;
        for (int c = 0; c < silence; ++c)
            net.step();
    }

    EXPECT_EQ(sink.droppedRecords(), 0u)
        << "bursty ring overflowed; enlarge the sink";
    EXPECT_TRUE(net.quiescent())
        << "burst did not drain within its busy phase";

    std::ostringstream os;
    os << sink.toText();
    dumpNetworkState(os, net);
    return os.str();
}

/** Both bursty legs, concatenated into the canonical fixture text. */
inline std::string
runBurstyScenario(int shards = 1)
{
    std::ostringstream os;
    os << "=== leg plain ===\n";
    os << runBurstyLeg(false, shards);
    os << "=== leg reliable ===\n";
    os << runBurstyLeg(true, shards);
    return os.str();
}

/**
 * The pinned near-zero-load sweep: at 1-2% offered load the vast
 * majority of cycles are idle for the vast majority of components,
 * so this is where an idle-skipping kernel diverges first if a wake
 * condition is missing — and where a sharded engine diverges first
 * if a cross-shard arrival is committed out of order.
 */
inline std::vector<SweepPointRecord>
runIdleSweep(int threads, int shards = 1)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive min_ad(topo);
    UniformRandom pattern(topo.numNodes());

    ExperimentConfig expcfg;
    expcfg.warmupCycles = 200;
    expcfg.measureCycles = 400;
    expcfg.drainCycles = 2000;
    expcfg.obs.traceEnabled = true;
    expcfg.obs.traceCapacity = 1 << 15;
    expcfg.obs.metricsEnabled = true;
    expcfg.obs.metricsWindowCycles = 100;

    NetworkConfig netcfg;
    netcfg.vcDepth = 8;
    netcfg.shards = shards;

    SweepConfig cfg;
    cfg.threads = threads;
    cfg.masterSeed = 2007;
    SweepEngine engine(cfg);
    engine.addLoadSweep("idle MIN AD / uniform", topo, min_ad,
                        pattern, netcfg, expcfg, {0.01, 0.02});
    return engine.run();
}

/** Integer-only canonical text of a sweep run (fixture form). */
inline std::string
canonicalSweepText(const std::vector<SweepPointRecord> &recs)
{
    std::ostringstream os;
    for (const SweepPointRecord &r : recs) {
        os << "=== point " << r.index << " " << r.series << " ===\n"
           << "seed " << r.seed << "\n"
           << "status " << static_cast<int>(r.load.status) << "\n"
           << "measuredPackets " << r.load.measuredPackets << "\n"
           << "flitsDropped " << r.load.flitsDropped << "\n"
           << "measuredDropped " << r.load.measuredDropped << "\n";
        if (r.load.metrics != nullptr)
            for (const auto &c : r.load.metrics->counters())
                os << "counter " << c.first << " " << c.second
                   << "\n";
        if (r.load.trace != nullptr)
            os << r.load.trace->toText();
    }
    return os.str();
}

/** Shared fixture compare/regenerate helper (golden-trace idiom):
 *  regenerates @p path under FBFLY_REGEN_GOLDEN=1, otherwise fails
 *  with a readable first-divergence report. */
inline void
checkAgainstFixture(const std::string &actual, const char *path)
{
    ASSERT_FALSE(actual.empty());

    if (std::getenv("FBFLY_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        out.close();
        ASSERT_TRUE(out.good());
        GTEST_SKIP() << "regenerated " << path << " ("
                     << actual.size() << " bytes) — commit it";
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing fixture " << path
                    << " — run with FBFLY_REGEN_GOLDEN=1 to create "
                       "it";
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string expected = buf.str();

    if (actual == expected) {
        SUCCEED();
        return;
    }

    // Readable first-divergence report.
    std::vector<std::string> exp;
    std::vector<std::string> act;
    {
        std::istringstream is(expected);
        std::string line;
        while (std::getline(is, line))
            exp.push_back(line);
    }
    {
        std::istringstream is(actual);
        std::string line;
        while (std::getline(is, line))
            act.push_back(line);
    }
    std::size_t i = 0;
    while (i < exp.size() && i < act.size() && exp[i] == act[i])
        ++i;
    std::ostringstream msg;
    msg << "fixture " << path << " diverged at line " << i + 1
        << " of " << exp.size() << " (actual has " << act.size()
        << " lines)\n";
    for (std::size_t c = i >= 3 ? i - 3 : 0; c < i; ++c)
        msg << "  context:  " << exp[c] << "\n";
    msg << "  expected: "
        << (i < exp.size() ? exp[i] : "<end of fixture>") << "\n"
        << "  actual:   "
        << (i < act.size() ? act[i] : "<end of output>") << "\n"
        << "regenerate with FBFLY_REGEN_GOLDEN=1 if the schedule "
           "change is intentional";
    ADD_FAILURE() << msg.str();
}

} // namespace fixtures
} // namespace fbfly

#endif // FBFLY_TESTS_FIXTURE_SCENARIOS_H
