/**
 * @file
 * Test-only JSON parser and JSON-Schema-subset validator, shared by
 * the document-schema tests (test_sweep_schema.cc for
 * fbfly-sweep-v1, test_design_search.cc for fbfly-pareto-v1).
 *
 * The parser is a minimal recursive-descent implementation and the
 * validator covers exactly the subset the checked-in schema files
 * use (type / required / const / enum / properties / items) — no
 * external dependency, and parsing a writer's output from scratch is
 * itself the test that the writer emits well-formed JSON (balanced
 * structure, escaped strings, no bare NaN).
 *
 * Malformed input fails the current gtest test via ADD_FAILURE /
 * EXPECT, so these helpers are usable only inside tests.
 */

#ifndef FBFLY_TESTS_JSON_TEST_UTIL_H
#define FBFLY_TESTS_JSON_TEST_UTIL_H

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace fbfly::testjson
{

// ---------------------------------------------------------------------
// Minimal JSON value + parser
// ---------------------------------------------------------------------

struct Json
{
    enum class Type
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject
    };
    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Json> elems;
    std::vector<std::pair<std::string, Json>> members;

    const Json *find(const std::string &key) const
    {
        for (const auto &[k, v] : members) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }
    const char *typeName() const
    {
        switch (type) {
        case Type::kNull:
            return "null";
        case Type::kBool:
            return "boolean";
        case Type::kNumber:
            return "number";
        case Type::kString:
            return "string";
        case Type::kArray:
            return "array";
        case Type::kObject:
            return "object";
        }
        return "?";
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    /** Parse one document; fails the test on malformed input. */
    Json parse()
    {
        Json v = value();
        skipWs();
        EXPECT_EQ(pos_, s_.size()) << "trailing garbage at " << pos_;
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }
    char peek()
    {
        skipWs();
        if (pos_ >= s_.size()) {
            ADD_FAILURE() << "unexpected end of JSON";
            return '\0';
        }
        return s_[pos_];
    }
    void expect(char c)
    {
        if (peek() != c) {
            ADD_FAILURE() << "expected '" << c << "' at " << pos_
                          << ", got '" << s_[pos_] << "'";
        }
        ++pos_;
    }
    bool consume(const char *lit)
    {
        const std::size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Json value()
    {
        switch (peek()) {
        case '{':
            return object();
        case '[':
            return array();
        case '"': {
            Json v;
            v.type = Json::Type::kString;
            v.str = string();
            return v;
        }
        case 't':
        case 'f': {
            Json v;
            v.type = Json::Type::kBool;
            v.boolean = consume("true");
            if (!v.boolean && !consume("false"))
                ADD_FAILURE() << "bad literal at " << pos_;
            return v;
        }
        case 'n': {
            Json v;
            if (!consume("null"))
                ADD_FAILURE() << "bad literal at " << pos_;
            return v;
        }
        default:
            return number();
        }
    }

    Json object()
    {
        Json v;
        v.type = Json::Type::kObject;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = string();
            expect(':');
            v.members.emplace_back(std::move(key), value());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Json array()
    {
        Json v;
        v.type = Json::Type::kArray;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.elems.push_back(value());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string string()
    {
        expect('"');
        std::string out;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                break;
            const char e = s_[pos_++];
            switch (e) {
            case '"':
            case '\\':
            case '/':
                out += e;
                break;
            case 'n':
                out += '\n';
                break;
            case 'r':
                out += '\r';
                break;
            case 't':
                out += '\t';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'u': {
                // ASCII-only decode (all the writers ever emit).
                if (pos_ + 4 <= s_.size()) {
                    out += static_cast<char>(std::strtol(
                        s_.substr(pos_, 4).c_str(), nullptr, 16));
                    pos_ += 4;
                }
                break;
            }
            default:
                ADD_FAILURE()
                    << "bad escape '\\" << e << "' at " << pos_;
            }
        }
        expect('"');
        return out;
    }

    Json number()
    {
        const char *start = s_.c_str() + pos_;
        char *end = nullptr;
        const double x = std::strtod(start, &end);
        if (end == start) {
            ADD_FAILURE() << "bad JSON value at " << pos_;
            ++pos_; // avoid an infinite loop on garbage
        } else {
            pos_ += static_cast<std::size_t>(end - start);
        }
        Json v;
        v.type = Json::Type::kNumber;
        v.number = x;
        return v;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Schema validator (the subset the schema files use)
// ---------------------------------------------------------------------

inline bool
typeMatches(const Json &v, const std::string &name)
{
    if (name == "null")
        return v.type == Json::Type::kNull;
    if (name == "boolean")
        return v.type == Json::Type::kBool;
    if (name == "number")
        return v.type == Json::Type::kNumber;
    if (name == "string")
        return v.type == Json::Type::kString;
    if (name == "array")
        return v.type == Json::Type::kArray;
    if (name == "object")
        return v.type == Json::Type::kObject;
    ADD_FAILURE() << "schema names unknown type " << name;
    return false;
}

inline bool
literalEquals(const Json &a, const Json &b)
{
    if (a.type != b.type)
        return false;
    switch (a.type) {
    case Json::Type::kNull:
        return true;
    case Json::Type::kBool:
        return a.boolean == b.boolean;
    case Json::Type::kNumber:
        return a.number == b.number;
    case Json::Type::kString:
        return a.str == b.str;
    default:
        return false; // not needed for const/enum literals
    }
}

inline void
validate(const Json &v, const Json &schema, const std::string &path)
{
    // "type": a name or a list of alternatives.
    if (const Json *t = schema.find("type")) {
        bool ok = false;
        if (t->type == Json::Type::kString) {
            ok = typeMatches(v, t->str);
        } else {
            for (const Json &alt : t->elems)
                ok = ok || typeMatches(v, alt.str);
        }
        EXPECT_TRUE(ok) << path << ": has type " << v.typeName()
                        << ", schema disallows it";
        if (!ok)
            return;
    }
    if (const Json *c = schema.find("const")) {
        EXPECT_TRUE(literalEquals(v, *c))
            << path << ": const mismatch";
    }
    if (const Json *e = schema.find("enum")) {
        bool ok = false;
        for (const Json &alt : e->elems)
            ok = ok || literalEquals(v, alt);
        EXPECT_TRUE(ok) << path << ": value not in enum";
    }
    if (v.type == Json::Type::kObject) {
        if (const Json *req = schema.find("required")) {
            for (const Json &key : req->elems) {
                EXPECT_NE(v.find(key.str), nullptr)
                    << path << ": missing required key \"" << key.str
                    << "\"";
            }
        }
        if (const Json *props = schema.find("properties")) {
            for (const auto &[key, sub] : props->members) {
                if (const Json *child = v.find(key))
                    validate(*child, sub, path + "." + key);
            }
        }
    }
    if (v.type == Json::Type::kArray) {
        if (const Json *items = schema.find("items")) {
            for (std::size_t i = 0; i < v.elems.size(); ++i) {
                validate(v.elems[i], *items,
                         path + "[" + std::to_string(i) + "]");
            }
        }
    }
}

/** Load and parse a schema file from the test data directory
 *  (@p name e.g. "fbfly-sweep-v1.schema.json"). */
inline Json
loadSchema(const std::string &data_dir, const std::string &name)
{
    const std::string path = data_dir + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "missing schema file " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    JsonParser parser(text);
    return parser.parse();
}

} // namespace fbfly::testjson

#endif // FBFLY_TESTS_JSON_TEST_UTIL_H
