/**
 * @file
 * Tests for the per-topology baseline routing algorithms: butterfly
 * destination-tag, folded-Clos adaptive, hypercube e-cube, and GHC
 * minimal routing.
 */

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "network/network.h"
#include "routing/butterfly_dest.h"
#include "routing/folded_clos_adaptive.h"
#include "routing/ghc_adaptive.h"
#include "routing/ghc_minimal.h"
#include "routing/hypercube_ecube.h"
#include "topology/butterfly.h"
#include "topology/folded_clos.h"
#include "topology/generalized_hypercube.h"
#include "topology/hypercube.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

TEST(ButterflyDest, FixedHopCount)
{
    // Every packet crosses all n stages: hops = (n-1) inter-stage
    // + 1 ejection, independent of the pair.
    Butterfly topo(2, 4);
    ButterflyDest algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, nullptr, cfg);
    for (NodeId src = 0; src < topo.numNodes(); ++src)
        net.terminal(src).enqueuePacket(net.now(),
                                        (src + 5) % 16, true);
    while (!net.quiescent())
        net.step();
    EXPECT_EQ(net.stats().hops.min(), topo.n());
    EXPECT_EQ(net.stats().hops.max(), topo.n());
}

TEST(ButterflyDest, AdversarialCollapse)
{
    // The Figure 6(b) result in miniature: all of a router's
    // traffic aimed at one next-group router shares one channel,
    // capping throughput at ~1/k.
    Butterfly topo(8, 2);
    ButterflyDest algo(topo);
    AdversarialNeighbor pattern(topo.numNodes(), topo.k());
    ExperimentConfig expcfg;
    expcfg.warmupCycles = 400;
    expcfg.measureCycles = 400;
    expcfg.drainCycles = 800;
    NetworkConfig netcfg;
    const double t = runLoadPoint(topo, algo, pattern, netcfg,
                                  expcfg, 0.9)
                         .accepted;
    EXPECT_NEAR(t, 1.0 / topo.k(), 0.04);
}

TEST(FoldedClosAdaptive, LocalTrafficSkipsMiddleStage)
{
    FoldedClos topo(16, 4, 2);
    FoldedClosAdaptive algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, nullptr, cfg);
    // Same-leaf traffic: 1 hop (ejection only).
    net.terminal(0).enqueuePacket(0, 3, true);
    while (!net.quiescent())
        net.step();
    EXPECT_EQ(net.stats().hops.mean(), 1.0);
}

TEST(FoldedClosAdaptive, RemoteTrafficTakesUpDownPath)
{
    FoldedClos topo(16, 4, 2);
    FoldedClosAdaptive algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, nullptr, cfg);
    // Different leaf: up + down + ejection = 3 hops.
    net.terminal(0).enqueuePacket(0, 12, true);
    while (!net.quiescent())
        net.step();
    EXPECT_EQ(net.stats().hops.mean(), 3.0);
}

TEST(FoldedClosAdaptive, SpreadsLoadAcrossUplinks)
{
    // A burst from one leaf must be spread over both uplinks by the
    // sequential allocator: completion time ~ burst / uplinks.
    FoldedClos topo(16, 4, 2);
    FoldedClosAdaptive algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 16;
    Network net(topo, algo, nullptr, cfg);
    for (int i = 0; i < 16; ++i)
        net.terminal(i % 4).enqueuePacket(0, 12 + (i % 4), true);
    while (!net.quiescent())
        net.step();
    // 16 packets over 2 uplinks at 1 flit/cycle plus pipeline depth:
    // perfect spreading finishes in well under 16 + slack cycles.
    EXPECT_LT(net.now(), 20u);
}

TEST(FoldedClosAdaptive, TaperedClosCapsAtHalfThroughput)
{
    // Figure 6(a): the constant-bisection (2:1 tapered) folded Clos
    // delivers ~50% of capacity on uniform random traffic.
    FoldedClos topo(64, 8, 4);
    FoldedClosAdaptive algo(topo);
    UniformRandom pattern(topo.numNodes());
    ExperimentConfig expcfg;
    expcfg.warmupCycles = 400;
    expcfg.measureCycles = 400;
    expcfg.drainCycles = 800;
    NetworkConfig netcfg;
    const double t = runLoadPoint(topo, algo, pattern, netcfg,
                                  expcfg, 1.0)
                         .accepted;
    EXPECT_GT(t, 0.45);
    EXPECT_LT(t, 0.62);
}

TEST(HypercubeEcube, DimensionOrderAndMinimalHops)
{
    Hypercube topo(4);
    HypercubeEcube algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, nullptr, cfg);
    // 0 -> 0b1011: 3 differing bits -> 3 inter-router + ejection.
    net.terminal(0).enqueuePacket(0, 0b1011, true);
    while (!net.quiescent())
        net.step();
    EXPECT_EQ(net.stats().hops.mean(), 4.0);
}

TEST(HypercubeEcube, AllPairsDeliver)
{
    Hypercube topo(4);
    HypercubeEcube algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, nullptr, cfg);
    std::uint64_t sent = 0;
    for (NodeId src = 0; src < 16; ++src) {
        for (NodeId dst = 0; dst < 16; ++dst) {
            if (src != dst) {
                net.terminal(src).enqueuePacket(net.now(), dst,
                                                true);
                ++sent;
            }
        }
        for (int c = 0; c < 40 && !net.quiescent(); ++c)
            net.step();
    }
    for (int c = 0; c < 1000 && !net.quiescent(); ++c)
        net.step();
    EXPECT_TRUE(net.quiescent());
    EXPECT_EQ(net.stats().measuredEjected, sent);
}

TEST(GhcMinimal, MinimalHopsOnMixedRadix)
{
    GeneralizedHypercube topo({4, 4});
    GhcMinimal algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, nullptr, cfg);
    // 0 -> 15 (digits (3,3)): 2 inter-router + ejection.
    net.terminal(0).enqueuePacket(0, 15, true);
    while (!net.quiescent())
        net.step();
    EXPECT_EQ(net.stats().hops.mean(), 3.0);
}

TEST(GhcMinimal, ThinChannelsCollapseOnAdversarialTraffic)
{
    // Section 2.3: a cost-comparable GHC sizes its inter-router
    // channels at ~1/k of the terminal bandwidth (Figure 3's
    // mismatch).  With minimal routing and no load balancing,
    // adversarial traffic that must cross a dimension then runs at
    // the thin-channel rate — the same bottleneck as a conventional
    // butterfly — while uniform random traffic spreads across all
    // k-1 channels per dimension and still achieves full throughput.
    GeneralizedHypercube topo({8, 8});
    GhcMinimal algo(topo);
    ExperimentConfig expcfg;
    expcfg.warmupCycles = 400;
    expcfg.measureCycles = 400;
    expcfg.drainCycles = 800;
    NetworkConfig netcfg;
    netcfg.channelPeriod = 8; // 1/8-bandwidth inter-router channels

    AdversarialNeighbor wc(topo.numNodes(), 8);
    const double t_wc = runLoadPoint(topo, algo, wc, netcfg, expcfg,
                                     0.9)
                            .accepted;
    EXPECT_LT(t_wc, 0.2) << "minimal GHC must not load-balance this";

    UniformRandom ur(topo.numNodes());
    const double t_ur = runLoadPoint(topo, algo, ur, netcfg, expcfg,
                                     0.9)
                            .accepted;
    EXPECT_GT(t_ur, 0.7) << "benign traffic should still spread";
}

TEST(GhcAdaptive, DeliversMinimallyWithAdaptiveOrder)
{
    GeneralizedHypercube topo({4, 4});
    GhcAdaptive algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, nullptr, cfg);
    std::uint64_t sent = 0;
    for (NodeId src = 0; src < 16; ++src) {
        for (NodeId dst = 0; dst < 16; ++dst) {
            if (src == dst)
                continue;
            net.terminal(src).enqueuePacket(net.now(), dst, true);
            ++sent;
        }
        for (int c = 0; c < 40 && !net.quiescent(); ++c)
            net.step();
    }
    for (int c = 0; c < 1000 && !net.quiescent(); ++c)
        net.step();
    EXPECT_TRUE(net.quiescent());
    EXPECT_EQ(net.stats().measuredEjected, sent);
    // Adaptive order never adds hops: max = 2 dims + ejection.
    EXPECT_LE(net.stats().hops.max(), 3);
}

TEST(GhcAdaptive, PathDiversityDoesNotFixThinChannels)
{
    // Section 6 on reference [33]: adaptive routing adds path
    // diversity but "does not describe how load-balancing can be
    // achieved with the non-minimal routes" — on the adversarial
    // pattern every minimal path still crosses the same thin
    // channel, so adaptivity cannot recover throughput the way the
    // flattened butterfly's non-minimal routing does.
    GeneralizedHypercube topo({8, 8});
    GhcAdaptive adaptive(topo);
    GhcMinimal minimal(topo);
    ExperimentConfig expcfg;
    expcfg.warmupCycles = 400;
    expcfg.measureCycles = 400;
    expcfg.drainCycles = 800;
    AdversarialNeighbor wc(topo.numNodes(), 8);

    NetworkConfig a_cfg;
    a_cfg.vcDepth = 32 / adaptive.numVcs();
    a_cfg.channelPeriod = 8;
    const double t_adaptive =
        runLoadPoint(topo, adaptive, wc, a_cfg, expcfg, 0.9)
            .accepted;

    NetworkConfig m_cfg;
    m_cfg.channelPeriod = 8;
    const double t_minimal =
        runLoadPoint(topo, minimal, wc, m_cfg, expcfg, 0.9)
            .accepted;

    EXPECT_LT(t_adaptive, 0.25);
    EXPECT_LT(t_minimal, 0.25);
}

} // namespace
} // namespace fbfly
