/**
 * @file
 * Unit tests for RingQueue (common/ring_queue.h), the flat circular
 * FIFO under channel wires, ack lanes, replay windows and VC
 * buffers.  Covers geometric growth with relinearization, index
 * wraparound, erase_at's shorter-side shift on both halves, and
 * clear() keeping the allocation.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/ring_queue.h"

namespace fbfly
{
namespace
{

std::vector<int>
contents(const RingQueue<int> &q)
{
    std::vector<int> out;
    for (std::size_t i = 0; i < q.size(); ++i)
        out.push_back(q[i]);
    return out;
}

TEST(RingQueue, FifoOrderAndIndexedAccess)
{
    RingQueue<int> q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.capacity(), 0u); // allocation deferred to first push
    for (int i = 0; i < 5; ++i)
        q.push_back(i);
    EXPECT_EQ(q.size(), 5u);
    EXPECT_EQ(q.capacity(), 8u); // first allocation
    EXPECT_EQ(q.front(), 0);
    EXPECT_EQ(q[4], 4);
    q.pop_front();
    EXPECT_EQ(q.front(), 1);
    EXPECT_EQ(contents(q), (std::vector<int>{1, 2, 3, 4}));
}

TEST(RingQueue, InitialCapacityRoundsToPowerOfTwo)
{
    RingQueue<int> q(5);
    EXPECT_EQ(q.capacity(), 8u);
    RingQueue<int> q2(16);
    EXPECT_EQ(q2.capacity(), 16u);
}

TEST(RingQueue, WrapsAroundWithoutGrowing)
{
    RingQueue<int> q(4);
    // Drive head_ around the ring: push/pop in lockstep keeps size 1
    // while the physical index wraps several times.
    q.push_back(0);
    for (int i = 1; i < 20; ++i) {
        q.push_back(i);
        EXPECT_EQ(q.front(), i - 1);
        q.pop_front();
    }
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.capacity(), 4u); // never grew
    EXPECT_EQ(q.front(), 19);
}

TEST(RingQueue, GrowRelinearizesWrappedContents)
{
    RingQueue<int> q(4);
    for (int i = 0; i < 4; ++i)
        q.push_back(i);
    q.pop_front();
    q.pop_front();
    q.push_back(4);
    q.push_back(5); // physically wrapped: [4,5,2,3]
    EXPECT_EQ(q.capacity(), 4u);
    q.push_back(6); // forces 4 -> 8 growth mid-wrap
    EXPECT_EQ(q.capacity(), 8u);
    EXPECT_EQ(contents(q), (std::vector<int>{2, 3, 4, 5, 6}));
    q.push_back(7);
    q.push_back(8);
    q.push_back(9); // fills capacity 8 exactly
    EXPECT_EQ(q.capacity(), 8u);
    q.push_back(10); // 8 -> 16
    EXPECT_EQ(q.capacity(), 16u);
    EXPECT_EQ(contents(q),
              (std::vector<int>{2, 3, 4, 5, 6, 7, 8, 9, 10}));
}

TEST(RingQueue, EraseAtShiftsShorterSide)
{
    RingQueue<int> q;
    for (int i = 0; i < 7; ++i)
        q.push_back(i);
    // Front half: erasing index 1 shifts elements before it up.
    EXPECT_EQ(q.erase_at(1), 1);
    EXPECT_EQ(contents(q), (std::vector<int>{0, 2, 3, 4, 5, 6}));
    // Back half: erasing a late index shifts the tail down.
    EXPECT_EQ(q.erase_at(4), 5);
    EXPECT_EQ(contents(q), (std::vector<int>{0, 2, 3, 4, 6}));
    // Endpoints.
    EXPECT_EQ(q.erase_at(0), 0);
    EXPECT_EQ(q.erase_at(q.size() - 1), 6);
    EXPECT_EQ(contents(q), (std::vector<int>{2, 3, 4}));
    // Down to empty.
    EXPECT_EQ(q.erase_at(1), 3);
    EXPECT_EQ(q.erase_at(1), 4);
    EXPECT_EQ(q.erase_at(0), 2);
    EXPECT_TRUE(q.empty());
}

TEST(RingQueue, EraseAtWorksWhenWrapped)
{
    RingQueue<int> q(4);
    for (int i = 0; i < 4; ++i)
        q.push_back(i);
    q.pop_front();
    q.pop_front();
    q.push_back(4);
    q.push_back(5); // logical [2,3,4,5], physically wrapped
    EXPECT_EQ(q.erase_at(2), 4);
    EXPECT_EQ(contents(q), (std::vector<int>{2, 3, 5}));
    EXPECT_EQ(q.erase_at(0), 2);
    EXPECT_EQ(contents(q), (std::vector<int>{3, 5}));
}

TEST(RingQueue, ClearKeepsAllocation)
{
    RingQueue<std::string> q;
    for (int i = 0; i < 10; ++i)
        q.emplace_back("flit-" + std::to_string(i));
    const std::size_t cap = q.capacity();
    EXPECT_EQ(cap, 16u);
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.capacity(), cap); // buffer retained
    q.push_back("fresh");
    EXPECT_EQ(q.front(), "fresh");
    EXPECT_EQ(q.size(), 1u);
}

TEST(RingQueue, EmplaceReturnsSlotReference)
{
    RingQueue<std::pair<int, int>> q;
    auto &slot = q.emplace_back(3, 4);
    EXPECT_EQ(slot.first, 3);
    slot.second = 9;
    EXPECT_EQ(q.front().second, 9);
}

} // namespace
} // namespace fbfly
