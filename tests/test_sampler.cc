/**
 * @file
 * Tests for the time-series sampler and the hotspot traffic pattern.
 */

#include <gtest/gtest.h>

#include "harness/sampler.h"
#include "network/network.h"
#include "routing/min_adaptive.h"
#include "topology/flattened_butterfly.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

TEST(Sampler, WindowsCoverTheRun)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    UniformRandom ur(topo.numNodes());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, &ur, cfg);
    BernoulliInjection inj(0.3, 1, 5);

    TimeSeriesSampler sampler(net, 50);
    for (int c = 0; c < 500; ++c) {
        inj.tick(net, true);
        net.step();
        sampler.tick();
    }
    ASSERT_EQ(sampler.samples().size(), 10u);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(sampler.samples()[i].start, i * 50);
}

TEST(Sampler, AcceptedMatchesSteadyState)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    UniformRandom ur(topo.numNodes());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, &ur, cfg);
    BernoulliInjection inj(0.4, 1, 5);

    // Warm up, then sample.
    for (int c = 0; c < 300; ++c) {
        inj.tick(net, true);
        net.step();
    }
    TimeSeriesSampler sampler(net, 100);
    for (int c = 0; c < 1000; ++c) {
        inj.tick(net, true);
        net.step();
        sampler.tick();
    }
    double sum = 0.0;
    for (const auto &s : sampler.samples()) {
        sum += s.accepted;
        EXPECT_GT(s.avgLatency, 2.0);
        EXPECT_LT(s.avgLatency, 30.0);
        EXPECT_GE(s.inFlight, 0);
    }
    EXPECT_NEAR(sum / sampler.samples().size(), 0.4, 0.05);
}

TEST(Sampler, QuietWindowHasNoSamplesOfLatency)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, nullptr, cfg);
    TimeSeriesSampler sampler(net, 10);
    for (int c = 0; c < 20; ++c) {
        net.step();
        sampler.tick();
    }
    ASSERT_EQ(sampler.samples().size(), 2u);
    EXPECT_EQ(sampler.samples()[0].ejected, 0u);
    EXPECT_EQ(sampler.samples()[0].avgLatency, 0.0);
    EXPECT_EQ(sampler.samples()[0].accepted, 0.0);
}

TEST(Hotspot, MixesHotAndBackgroundTraffic)
{
    Hotspot pattern(64, {7, 9}, 0.5);
    Rng rng(3);
    int hot = 0;
    const int trials = 4000;
    for (int i = 0; i < trials; ++i) {
        const NodeId d = pattern.dest(0, rng);
        EXPECT_NE(d, 0);
        EXPECT_GE(d, 0);
        EXPECT_LT(d, 64);
        if (d == 7 || d == 9)
            ++hot;
    }
    // ~50% targeted + ~2/63 background hits.
    const double rate = static_cast<double>(hot) / trials;
    EXPECT_GT(rate, 0.45);
    EXPECT_LT(rate, 0.60);
}

TEST(Hotspot, ZeroFractionIsUniform)
{
    Hotspot pattern(64, {7}, 0.0);
    Rng rng(4);
    int hits = 0;
    for (int i = 0; i < 6300; ++i) {
        if (pattern.dest(0, rng) == 7)
            ++hits;
    }
    EXPECT_NEAR(hits, 100, 45); // ~1/63 of draws
}

TEST(Hotspot, EjectionLinkBoundsThroughput)
{
    // Many-to-one traffic is limited by the hot node's single
    // ejection channel: with H hot-targeting nodes the per-node
    // accepted rate cannot exceed ~1/H plus background.
    FlattenedButterfly topo(8, 2);
    MinAdaptive algo(topo);
    Hotspot pattern(topo.numNodes(), {0}, 1.0);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, &pattern, cfg);
    BernoulliInjection inj(0.5, 1, 9);
    for (int c = 0; c < 1500; ++c) {
        inj.tick(net, false);
        net.step();
    }
    const double accepted =
        static_cast<double>(net.stats().flitsEjected) /
        (1500.0 * topo.numNodes());
    EXPECT_LT(accepted, 0.05); // 1 flit/cycle over 63 senders
}

} // namespace
} // namespace fbfly
