/**
 * @file
 * Network integration tests: wiring, delivery, flit conservation,
 * determinism, and quiescence — parameterized across topologies.
 */

#include <gtest/gtest.h>

#include <memory>

#include "network/network.h"
#include "routing/butterfly_dest.h"
#include "routing/folded_clos_adaptive.h"
#include "routing/ghc_minimal.h"
#include "routing/hypercube_ecube.h"
#include "routing/min_adaptive.h"
#include "topology/butterfly.h"
#include "topology/flattened_butterfly.h"
#include "topology/folded_clos.h"
#include "topology/generalized_hypercube.h"
#include "topology/hypercube.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

/** A topology+routing bundle for parameterized network tests. */
struct Bundle
{
    std::string name;
    std::unique_ptr<Topology> topo;
    std::unique_ptr<RoutingAlgorithm> algo;
};

std::unique_ptr<Bundle>
makeBundle(const std::string &which)
{
    auto b = std::make_unique<Bundle>();
    b->name = which;
    if (which == "fbfly") {
        auto t = std::make_unique<FlattenedButterfly>(4, 2);
        b->algo = std::make_unique<MinAdaptive>(*t);
        b->topo = std::move(t);
    } else if (which == "fbfly3d") {
        auto t = std::make_unique<FlattenedButterfly>(2, 4);
        b->algo = std::make_unique<MinAdaptive>(*t);
        b->topo = std::move(t);
    } else if (which == "butterfly") {
        auto t = std::make_unique<Butterfly>(4, 2);
        b->algo = std::make_unique<ButterflyDest>(*t);
        b->topo = std::move(t);
    } else if (which == "clos") {
        auto t = std::make_unique<FoldedClos>(16, 4, 2);
        b->algo = std::make_unique<FoldedClosAdaptive>(*t);
        b->topo = std::move(t);
    } else if (which == "hypercube") {
        auto t = std::make_unique<Hypercube>(4);
        b->algo = std::make_unique<HypercubeEcube>(*t);
        b->topo = std::move(t);
    } else if (which == "ghc") {
        auto t = std::make_unique<GeneralizedHypercube>(
            std::vector<int>{4, 4});
        b->algo = std::make_unique<GhcMinimal>(*t);
        b->topo = std::move(t);
    }
    return b;
}

class NetworkAcrossTopologies
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(NetworkAcrossTopologies, DeliversEveryPairExactlyOnce)
{
    auto b = makeBundle(GetParam());
    NetworkConfig cfg;
    cfg.numVcs = b->algo->numVcs();
    cfg.vcDepth = 8;
    Network net(*b->topo, *b->algo, nullptr, cfg);

    // Every (src, dst) pair, one packet each, staged to avoid
    // unbounded queues.
    const std::int64_t n = b->topo->numNodes();
    std::uint64_t sent = 0;
    for (NodeId dst = 0; dst < n; ++dst) {
        for (NodeId src = 0; src < n; ++src) {
            if (src == dst)
                continue;
            net.terminal(src).enqueuePacket(net.now(), dst, true);
            ++sent;
        }
        for (int c = 0; c < 50 && !net.quiescent(); ++c)
            net.step();
    }
    for (int c = 0; c < 2000 && !net.quiescent(); ++c)
        net.step();
    EXPECT_TRUE(net.quiescent());
    EXPECT_EQ(net.stats().measuredEjected, sent);
    EXPECT_EQ(net.stats().flitsInjected, net.stats().flitsEjected);
}

TEST_P(NetworkAcrossTopologies, SurvivesSaturationWithoutDeadlock)
{
    auto b = makeBundle(GetParam());
    UniformRandom pattern(b->topo->numNodes());
    NetworkConfig cfg;
    cfg.numVcs = b->algo->numVcs();
    cfg.vcDepth = 4;
    Network net(*b->topo, *b->algo, &pattern, cfg);
    BernoulliInjection inj(1.0, 1, 77);

    std::uint64_t last_ejected = 0;
    for (int window = 0; window < 10; ++window) {
        for (int c = 0; c < 200; ++c) {
            inj.tick(net, false);
            net.step();
        }
        const std::uint64_t now_ejected = net.stats().flitsEjected;
        EXPECT_GT(now_ejected, last_ejected)
            << "no forward progress in window " << window;
        last_ejected = now_ejected;
    }
}

TEST_P(NetworkAcrossTopologies, DeterministicForEqualSeeds)
{
    auto run = [&](std::uint64_t seed) {
        auto b = makeBundle(GetParam());
        UniformRandom pattern(b->topo->numNodes());
        NetworkConfig cfg;
        cfg.numVcs = b->algo->numVcs();
        cfg.seed = seed;
        Network net(*b->topo, *b->algo, &pattern, cfg);
        BernoulliInjection inj(0.4, 1, seed ^ 0x1234);
        for (int c = 0; c < 500; ++c) {
            inj.tick(net, true);
            net.step();
        }
        return std::tuple{net.stats().flitsEjected,
                          net.stats().packetLatency.mean(),
                          net.stats().hops.sum()};
    };
    EXPECT_EQ(run(42), run(42));
    EXPECT_NE(std::get<0>(run(42)), std::get<0>(run(43)));
}

INSTANTIATE_TEST_SUITE_P(Topologies, NetworkAcrossTopologies,
                         ::testing::Values("fbfly", "fbfly3d",
                                           "butterfly", "clos",
                                           "hypercube", "ghc"));

TEST(Network, LatencyAccountsForSourceQueueing)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, nullptr, cfg);

    // Two packets queued at once: the second waits a cycle in the
    // source queue, so its total latency is one higher.
    net.terminal(0).enqueuePacket(0, 15, true);
    net.terminal(0).enqueuePacket(0, 15, true);
    while (!net.quiescent())
        net.step();
    EXPECT_EQ(net.stats().measuredEjected, 2u);
    EXPECT_NEAR(net.stats().packetLatency.max() -
                    net.stats().packetLatency.min(),
                1.0, 1e-9);
    EXPECT_GT(net.stats().networkLatency.mean(), 0.0);
    EXPECT_LE(net.stats().networkLatency.mean(),
              net.stats().packetLatency.mean());
}

TEST(Network, HopCountsAreMinimalUnderMinimalRouting)
{
    FlattenedButterfly topo(4, 3); // 2 dims
    MinAdaptive algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, nullptr, cfg);

    // src router 0, dst differs in both dimensions:
    // hops = 2 inter-router + 1 ejection = 3.
    const NodeId src = 0;
    const NodeId dst = 4 * 4 * 4 - 1; // router 15, both digits differ
    net.terminal(src).enqueuePacket(0, dst, true);
    while (!net.quiescent())
        net.step();
    EXPECT_EQ(net.stats().hops.mean(), 3.0);
}

TEST(Network, MultiFlitPacketsDeliverIntact)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.packetSize = 4; // exercises the FIFO (wormhole) switch path
    Network net(topo, algo, nullptr, cfg);

    for (NodeId src = 0; src < 8; ++src)
        net.terminal(src).enqueuePacket(0, 15 - src, true);
    for (int c = 0; c < 500 && !net.quiescent(); ++c)
        net.step();
    EXPECT_TRUE(net.quiescent());
    EXPECT_EQ(net.stats().measuredEjected, 8u);
    EXPECT_EQ(net.stats().flitsEjected, 32u);
}

TEST(Network, ConfigMismatchedVcsPanics)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs() + 3;
    EXPECT_DEATH(Network(topo, algo, nullptr, cfg), "VCs");
}

} // namespace
} // namespace fbfly
