/**
 * @file
 * Tests for the deterministic PRNG (common/rng.h).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"

namespace fbfly
{
namespace
{

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(12345);
    Rng b(12345);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(Rng, ZeroSeedStillProducesEntropy)
{
    Rng rng(0);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(rng.next());
    EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, NextBoundedStaysInRange)
{
    Rng rng(7);
    for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull,
                                      1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, NextBoundedOneIsAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, NextRangeInclusiveBounds)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 2000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(17);
    const int trials = 20000;
    for (const double p : {0.1, 0.5, 0.9}) {
        int hits = 0;
        for (int i = 0; i < trials; ++i)
            hits += rng.nextBernoulli(p) ? 1 : 0;
        const double rate = static_cast<double>(hits) / trials;
        EXPECT_NEAR(rate, p, 0.02) << "p=" << p;
    }
}

TEST(Rng, BernoulliDegenerateProbabilities)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBernoulli(0.0));
        EXPECT_TRUE(rng.nextBernoulli(1.0));
    }
}

TEST(Rng, SplitStreamsAreStableAndIndependent)
{
    Rng parent(23);
    Rng a1 = parent.split(1);
    Rng a2 = parent.split(1);
    Rng b = parent.split(2);
    // Same tag -> same stream; different tag -> different stream.
    EXPECT_EQ(a1.next(), a2.next());
    Rng a3 = parent.split(1);
    EXPECT_NE(a3.next(), b.next());
}

/** Uniformity sanity: chi-squared over 16 buckets stays far from
 *  pathological. */
class RngUniformity : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngUniformity, BoundedDrawsAreRoughlyUniform)
{
    const std::uint64_t bound = 16;
    Rng rng(GetParam());
    const int trials = 16000;
    std::vector<int> counts(bound, 0);
    for (int i = 0; i < trials; ++i)
        ++counts[rng.nextBounded(bound)];
    const double expected = static_cast<double>(trials) / bound;
    double chi2 = 0.0;
    for (const int c : counts) {
        const double d = c - expected;
        chi2 += d * d / expected;
    }
    // 15 degrees of freedom; 99.9th percentile is ~37.7.
    EXPECT_LT(chi2, 45.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngUniformity,
                         ::testing::Values(1, 42, 1000003,
                                           0xdeadbeefULL));

} // namespace
} // namespace fbfly
