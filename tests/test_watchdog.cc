/**
 * @file
 * Self-checking tests: Network::validate() pre-flight rejection,
 * the forward-progress watchdog, stall dumps, and the conservation
 * invariants on healthy runs.
 */

#include <gtest/gtest.h>

#include "fault/fault_model.h"
#include "harness/experiment.h"
#include "network/network.h"
#include "routing/clos_ad.h"
#include "routing/dor.h"
#include "routing/min_adaptive.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

TEST(Validate, AcceptsSoundConfiguration)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    const auto rep = Network::validate(topo, algo, cfg);
    EXPECT_TRUE(rep.ok());
    EXPECT_EQ(rep.summary(), "");
}

TEST(Validate, RejectsTooFewVcsForRouting)
{
    // CLOS AD on a 4-ary 3-flat needs 2 * n' = 4 VCs.
    FlattenedButterfly topo(4, 3);
    ClosAd algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = 2;
    const auto rep = Network::validate(topo, algo, cfg);
    EXPECT_FALSE(rep.ok());
    EXPECT_NE(rep.summary().find("VCs"), std::string::npos)
        << rep.summary();
}

TEST(Validate, RejectsNonPositiveKnobs)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 0;
    EXPECT_FALSE(Network::validate(topo, algo, cfg).ok());
    cfg.vcDepth = 32;
    cfg.packetSize = -1;
    EXPECT_FALSE(Network::validate(topo, algo, cfg).ok());
}

TEST(Validate, RejectsMismatchedArcLatencies)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.arcLatencies.assign(topo.arcs().size() + 1, 1);
    const auto rep = Network::validate(topo, algo, cfg);
    EXPECT_FALSE(rep.ok());
    EXPECT_NE(rep.summary().find("arcLatencies"), std::string::npos);
}

TEST(Validate, RejectsDisconnectingFaultSet)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    FaultModel fm(topo);
    for (RouterId r = 1; r < 4; ++r)
        fm.failLinkBetween(0, r);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.faults = &fm;
    const auto rep = Network::validate(topo, algo, cfg);
    EXPECT_FALSE(rep.ok());
    EXPECT_NE(rep.summary().find("disconnect"), std::string::npos)
        << rep.summary();
}

TEST(Validate, RejectsFaultModelOverDifferentTopology)
{
    FlattenedButterfly topo(4, 2);
    FlattenedButterfly other(8, 2);
    MinAdaptive algo(topo);
    FaultModel fm(other);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.faults = &fm;
    const auto rep = Network::validate(topo, algo, cfg);
    EXPECT_FALSE(rep.ok());
    EXPECT_NE(rep.summary().find("different topology"),
              std::string::npos)
        << rep.summary();
}

TEST(Watchdog, TripsOnStuckPacketWithDump)
{
    // Oblivious DOR cannot route around a failure: a packet headed
    // across the dead link parks on the dead output port forever.
    // The watchdog must notice and the dump must show the wedge.
    FlattenedButterfly topo(4, 2);
    DimensionOrder algo(topo);
    FaultModel fm(topo);
    ASSERT_EQ(fm.failLinkBetween(0, 1), 2);

    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 4;
    cfg.faults = &fm;
    cfg.watchdogCycles = 100;
    Network net(topo, algo, nullptr, cfg);

    // Node 0 (router 0) -> node 4 (router 1): must cross 0 -> 1.
    net.terminal(0).enqueuePacket(net.now(), 4, true);
    for (int c = 0; c < 2000 && !net.stalled(); ++c)
        net.step();
    EXPECT_TRUE(net.stalled());
    EXPECT_FALSE(net.quiescent());
    const std::string dump = net.stallDump();
    EXPECT_FALSE(dump.empty());
    EXPECT_NE(dump.find("router"), std::string::npos) << dump;
    // Conservation still holds while wedged: nothing was lost.
    EXPECT_EQ(net.checkInvariants(), "");
}

TEST(Watchdog, QuietOnHealthyAndIdleNetworks)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.watchdogCycles = 50;
    cfg.invariantCheckInterval = 8; // panics internally on violation
    Network net(topo, algo, nullptr, cfg);

    // Busy phase.
    for (int c = 0; c < 300; ++c) {
        net.terminal(static_cast<NodeId>(c % 16))
            .enqueuePacket(net.now(), static_cast<NodeId>((c + 5) % 16),
                           false);
        net.step();
        EXPECT_FALSE(net.stalled());
    }
    // Idle phase: no pending work, so no watchdog trigger however
    // long nothing moves.
    for (int c = 0; c < 500 && !net.quiescent(); ++c)
        net.step();
    ASSERT_TRUE(net.quiescent());
    for (int c = 0; c < 200; ++c)
        net.step();
    EXPECT_FALSE(net.stalled());
    EXPECT_EQ(net.checkInvariants(), "");
}

TEST(Harness, LoadPointReportsExplicitStatus)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    UniformRandom pattern(topo.numNodes());
    ExperimentConfig expcfg;
    expcfg.warmupCycles = 200;
    expcfg.measureCycles = 200;
    expcfg.drainCycles = 2000;
    NetworkConfig netcfg;
    netcfg.vcDepth = 8;

    const auto ok = runLoadPoint(topo, algo, pattern, netcfg, expcfg,
                                 0.2);
    EXPECT_EQ(ok.status, LoadPointStatus::kDelivered);
    EXPECT_STREQ(toString(ok.status), "delivered");
    EXPECT_EQ(ok.measuredDropped, 0u);

    // Invalid configuration: pre-flight rejection, no run.
    NetworkConfig bad = netcfg;
    bad.vcDepth = 0;
    const auto rej = runLoadPoint(topo, algo, pattern, bad, expcfg,
                                  0.2);
    EXPECT_EQ(rej.status, LoadPointStatus::kInvalidConfig);
    EXPECT_FALSE(rej.diagnostics.empty());

    // Stuck labeled packets: oblivious DOR wedges every packet that
    // must cross the dead link while background traffic keeps
    // flowing — the run ends at the drain bound with an explicit
    // kSaturated status (the global watchdog rightly stays quiet
    // because flits are still moving; a full-network stall is
    // covered by Watchdog.TripsOnStuckPacketWithDump).
    DimensionOrder dor(topo);
    FaultModel fm(topo);
    fm.failLinkBetween(0, 1);
    NetworkConfig faulty = netcfg;
    faulty.faults = &fm;
    faulty.watchdogCycles = 5000;
    const auto st = runLoadPoint(topo, dor, pattern, faulty, expcfg,
                                 0.2);
    EXPECT_EQ(st.status, LoadPointStatus::kSaturated);
    EXPECT_TRUE(st.saturated);
}

} // namespace
} // namespace fbfly
