/**
 * @file
 * Tests for the binary hypercube topology.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "topology/hypercube.h"

namespace fbfly
{
namespace
{

TEST(Hypercube, PaperConfiguration)
{
    // Figure 6's 10-dimensional hypercube: 1024 routers, one
    // terminal each.
    Hypercube topo(10);
    EXPECT_EQ(topo.numNodes(), 1024);
    EXPECT_EQ(topo.numRouters(), 1024);
    EXPECT_EQ(topo.numPorts(0), 11);
}

TEST(Hypercube, NeighborFlipsOneBit)
{
    Hypercube topo(4);
    for (RouterId r = 0; r < topo.numRouters(); ++r) {
        for (int d = 0; d < topo.dims(); ++d) {
            const RouterId n = topo.neighbor(r, d);
            EXPECT_EQ(r ^ n, 1 << d);
            EXPECT_EQ(topo.neighbor(n, d), r) << "involution";
        }
    }
}

TEST(Hypercube, ArcCountAndSymmetry)
{
    Hypercube topo(5);
    const auto arcs = topo.arcs();
    EXPECT_EQ(arcs.size(), 32u * 5);
    std::set<std::tuple<int, int, int, int>> seen;
    for (const auto &a : arcs)
        seen.insert({a.src, a.srcPort, a.dst, a.dstPort});
    for (const auto &a : arcs) {
        EXPECT_TRUE(
            seen.count({a.dst, a.dstPort, a.src, a.srcPort}));
        EXPECT_EQ(a.srcPort, a.dstPort) << "dimension ports match";
    }
}

TEST(Hypercube, TerminalPortIsLast)
{
    Hypercube topo(3);
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        EXPECT_EQ(topo.injectionRouter(n), n);
        EXPECT_EQ(topo.injectionPort(n), 3);
        EXPECT_EQ(topo.ejectionRouter(n), n);
        EXPECT_EQ(topo.ejectionPort(n), 3);
    }
}

TEST(Hypercube, BisectionIsHalfTheNodes)
{
    // Cutting on the top dimension: exactly N/2 arcs cross in each
    // direction — the B = N/2 (with half-width channels) used to
    // match bisection bandwidth in Figure 6.
    Hypercube topo(6);
    const std::int64_t half = topo.numNodes() / 2;
    int crossing = 0;
    for (const auto &a : topo.arcs()) {
        if ((a.src < half) != (a.dst < half))
            ++crossing;
    }
    EXPECT_EQ(crossing, topo.numNodes());
}

} // namespace
} // namespace fbfly
