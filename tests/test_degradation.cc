/**
 * @file
 * Tests for the graceful-degradation sweep (harness/degradation.h),
 * in particular the fault-draw *shortfall* contract: when
 * connectivity pruning cannot fail as many links as the fraction
 * requested, the sweep must report the effective count instead of
 * silently mislabeling the point.
 */

#include <gtest/gtest.h>

#include "harness/degradation.h"
#include "routing/min_adaptive.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

ExperimentConfig
shortPhasing()
{
    ExperimentConfig e;
    e.warmupCycles = 150;
    e.measureCycles = 200;
    e.drainCycles = 2000;
    e.seed = 321;
    return e;
}

TEST(Degradation, ShortfallPointIsLabeledNotMislabeled)
{
    // The 2-ary 2-flat has exactly one bidirectional inter-router
    // link, and that link is a cut edge: connectivity-preserving
    // pruning can fail *nothing*.  Requesting the full fraction must
    // yield a shortfall point that says so, not a point pretending
    // the link failed.
    FlattenedButterfly topo(2, 2);
    MinAdaptive algo(topo);
    UniformRandom pattern(topo.numNodes());

    DegradationConfig cfg;
    cfg.fractions = {1.0};
    cfg.lowLoad = 0.2;
    cfg.preserveConnectivity = true;
    cfg.exp = shortPhasing();
    cfg.net.vcDepth = 8;

    std::vector<SweepPointRecord> records;
    const auto pts =
        runDegradationSweep(topo, {&algo}, pattern, cfg, &records);
    ASSERT_EQ(pts.size(), 1u);
    const DegradationPoint &pt = pts[0];
    EXPECT_EQ(pt.totalLinks, 1);
    EXPECT_EQ(pt.requestedLinks, 1);
    EXPECT_EQ(pt.failedLinks, 0);
    EXPECT_TRUE(pt.shortfall());
    // The effective fraction is 0/1 — the cell really ran
    // fault-free, and its runs prove it.
    EXPECT_EQ(pt.lowLoad.status, LoadPointStatus::kDelivered);
    EXPECT_EQ(pt.lowLoad.measuredDropped, 0u);

    // The JSON series label carries the effective/requested counts
    // so downstream plots cannot mislabel the point.
    ASSERT_EQ(records.size(), 2u);
    EXPECT_NE(records[0].series.find("shortfall 0/1"),
              std::string::npos)
        << records[0].series;
}

TEST(Degradation, NoShortfallOnRichTopology)
{
    // K8 per dimension has link diversity to spare: small fractions
    // are honored in full and the label stays plain.
    FlattenedButterfly topo(4, 2); // K4: 6 bidirectional links
    MinAdaptive algo(topo);
    UniformRandom pattern(topo.numNodes());

    DegradationConfig cfg;
    cfg.fractions = {0.0, 0.2};
    cfg.lowLoad = 0.2;
    cfg.exp = shortPhasing();
    cfg.net.vcDepth = 8;

    std::vector<SweepPointRecord> records;
    const auto pts =
        runDegradationSweep(topo, {&algo}, pattern, cfg, &records);
    ASSERT_EQ(pts.size(), 2u);
    for (const auto &pt : pts) {
        EXPECT_EQ(pt.failedLinks, pt.requestedLinks);
        EXPECT_FALSE(pt.shortfall());
    }
    EXPECT_EQ(pts[0].failedLinks, 0);
    EXPECT_EQ(pts[1].failedLinks, 1); // round(0.2 * 6)
    for (const auto &rec : records)
        EXPECT_EQ(rec.series.find("shortfall"), std::string::npos)
            << rec.series;

    // Both algorithms' cells stay live and deliver at low load.
    EXPECT_EQ(pts[1].lowLoad.status, LoadPointStatus::kDelivered);
}

} // namespace
} // namespace fbfly
