/**
 * @file
 * Tests for the parallel sweep engine (harness/sweep.h) and the JSON
 * result writer (harness/result_writer.h): the determinism contract
 * (thread-count independence), splitmix64 seed derivation and
 * decorrelation, thread-pool behavior, and the fbfly-sweep-v1
 * document shape.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "harness/result_writer.h"
#include "harness/sweep.h"
#include "routing/min_adaptive.h"
#include "routing/valiant.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

// ---------------------------------------------------------------------
// Seed derivation
// ---------------------------------------------------------------------

TEST(DerivePointSeed, AdjacentIndicesDecorrelated)
{
    const std::uint64_t master = 2007;
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seen.insert(derivePointSeed(master, i));
    EXPECT_EQ(seen.size(), 1000u); // no collisions

    // Avalanche: one index step flips roughly half the output bits.
    int total = 0;
    for (std::uint64_t i = 0; i < 64; ++i) {
        total += std::popcount(derivePointSeed(master, i) ^
                               derivePointSeed(master, i + 1));
    }
    const double avg = total / 64.0;
    EXPECT_GT(avg, 24.0);
    EXPECT_LT(avg, 40.0);
}

TEST(DerivePointSeed, PureFunctionOfBothArguments)
{
    EXPECT_EQ(derivePointSeed(1, 7), derivePointSeed(1, 7));
    EXPECT_NE(derivePointSeed(1, 7), derivePointSeed(2, 7));
    EXPECT_NE(derivePointSeed(1, 7), derivePointSeed(1, 8));
    // The derivation never degenerates to the master seed itself.
    EXPECT_NE(derivePointSeed(1, 0), 1u);
}

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPool, RunsEveryJobExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.numThreads(), 4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);

    // The pool is reusable after wait().
    pool.submit([&counter] { counter += 10; });
    pool.wait();
    EXPECT_EQ(counter.load(), 110);
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([] { throw std::runtime_error("boom"); });
    for (int i = 0; i < 10; ++i)
        pool.submit([&ran] { ++ran; });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The remaining jobs still ran, and the error slot is cleared.
    EXPECT_EQ(ran.load(), 10);
    pool.submit([&ran] { ++ran; });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPool, ResolveThreads)
{
    EXPECT_EQ(ThreadPool::resolveThreads(3), 3);
    EXPECT_GE(ThreadPool::resolveThreads(0), 1);
    EXPECT_GE(ThreadPool::resolveThreads(-5), 1);
}

// ---------------------------------------------------------------------
// SweepEngine determinism contract
// ---------------------------------------------------------------------

struct SweepFixture
{
    SweepFixture()
        : topo(8, 2), min_ad(topo), val(topo),
          pattern(topo.numNodes())
    {
        expcfg.warmupCycles = 200;
        expcfg.measureCycles = 300;
        expcfg.drainCycles = 1500;
        netcfg.vcDepth = 8;
    }

    /** Queue the same fig04-style mini sweep on @p engine. */
    void queue(SweepEngine &engine)
    {
        engine.addLoadSweep("mini MIN AD", topo, min_ad, pattern,
                            netcfg, expcfg, {0.1, 0.3, 0.5, 0.7});
        engine.addLoadSweep("mini VAL", topo, val, pattern, netcfg,
                            expcfg, {0.1, 0.2, 0.4});
        engine.addBatch("mini batch VAL", topo, val, pattern, netcfg,
                        20);
    }

    FlattenedButterfly topo;
    MinAdaptive min_ad;
    Valiant val;
    UniformRandom pattern;
    NetworkConfig netcfg;
    ExperimentConfig expcfg;
};

/** Every simulation field must match bit for bit (wall time and
 *  scheduling are the only things allowed to differ). */
void
expectIdentical(const SweepPointRecord &a, const SweepPointRecord &b)
{
    ASSERT_EQ(a.index, b.index);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.series, b.series);
    EXPECT_EQ(a.seed, b.seed);
    if (a.kind == SweepPointKind::kBatch) {
        EXPECT_EQ(a.batch.batchSize, b.batch.batchSize);
        EXPECT_EQ(a.batch.completionTime, b.batch.completionTime);
        EXPECT_EQ(a.batch.normalizedLatency,
                  b.batch.normalizedLatency);
        return;
    }
    const LoadPointResult &x = a.load;
    const LoadPointResult &y = b.load;
    EXPECT_EQ(x.offered, y.offered);
    EXPECT_EQ(x.accepted, y.accepted);
    EXPECT_EQ(x.avgLatency, y.avgLatency);
    EXPECT_EQ(x.avgNetworkLatency, y.avgNetworkLatency);
    EXPECT_EQ(x.avgHops, y.avgHops);
    EXPECT_EQ(x.p99Latency, y.p99Latency);
    EXPECT_EQ(x.saturated, y.saturated);
    EXPECT_EQ(x.status, y.status);
    EXPECT_EQ(x.measuredPackets, y.measuredPackets);
    EXPECT_EQ(x.measuredDropped, y.measuredDropped);
    EXPECT_EQ(x.flitsDropped, y.flitsDropped);
}

TEST(SweepEngine, ThreadCountDoesNotChangeResults)
{
    SweepFixture f;

    SweepConfig serial;
    serial.threads = 1;
    serial.masterSeed = 2007;
    SweepEngine one(serial);
    f.queue(one);

    SweepConfig parallel = serial;
    parallel.threads = 4;
    SweepEngine four(parallel);
    f.queue(four);

    const auto &ra = one.run();
    const auto &rb = four.run();
    ASSERT_EQ(ra.size(), rb.size());
    EXPECT_EQ(four.threads(), 4);
    for (std::size_t i = 0; i < ra.size(); ++i)
        expectIdentical(ra[i], rb[i]);
}

TEST(SweepEngine, RecordsKeepQueueOrderAndMetadata)
{
    SweepFixture f;
    SweepConfig cfg;
    cfg.threads = 2;
    cfg.masterSeed = 42;
    SweepEngine engine(cfg);
    f.queue(engine);
    const auto &recs = engine.run();
    ASSERT_EQ(recs.size(), 8u);
    for (std::size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(recs[i].index, i);
        EXPECT_EQ(recs[i].seed, derivePointSeed(42, i));
        EXPECT_FALSE(recs[i].topology.empty());
        EXPECT_FALSE(recs[i].routing.empty());
        EXPECT_FALSE(recs[i].traffic.empty());
        EXPECT_GE(recs[i].wallSeconds, 0.0);
    }
    EXPECT_EQ(recs[0].kind, SweepPointKind::kLoadPoint);
    EXPECT_EQ(recs[7].kind, SweepPointKind::kBatch);
    EXPECT_EQ(recs[0].load.offered, 0.1);
    EXPECT_EQ(recs[3].load.offered, 0.7);
    EXPECT_GT(engine.totalWallSeconds(), 0.0);
    EXPECT_GE(engine.pointWallSecondsSum(),
              engine.totalWallSeconds() * 0.5);
}

// ---------------------------------------------------------------------
// Seed independence of sweep points
// ---------------------------------------------------------------------

TEST(SweepEngine, AdjacentPointsGetIndependentStreams)
{
    // Two points at the same offered load, adjacent indices: with
    // decorrelated injection/RNG streams they must not produce the
    // same sampled statistics.
    SweepFixture f;
    SweepConfig cfg;
    cfg.threads = 2;
    cfg.masterSeed = 7;
    SweepEngine engine(cfg);
    engine.addLoadPoint("a", f.topo, f.min_ad, f.pattern, f.netcfg,
                        f.expcfg, 0.4);
    engine.addLoadPoint("b", f.topo, f.min_ad, f.pattern, f.netcfg,
                        f.expcfg, 0.4);
    const auto &recs = engine.run();
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_NE(recs[0].seed, recs[1].seed);
    EXPECT_NE(recs[0].load.avgLatency, recs[1].load.avgLatency);
}

TEST(SweepEngine, PointRerunAloneReproducesInSweepResult)
{
    // The per-point seed depends only on (masterSeed, index), so the
    // same point run outside the engine with the derived seed must
    // match its in-sweep record exactly.
    SweepFixture f;
    SweepConfig cfg;
    cfg.threads = 3;
    cfg.masterSeed = 2007;
    SweepEngine engine(cfg);
    f.queue(engine);
    const auto &recs = engine.run();

    const std::size_t i = 2; // MIN AD @ 0.5
    ExperimentConfig solo = f.expcfg;
    solo.seed = derivePointSeed(2007, i);
    const LoadPointResult alone = runLoadPoint(
        f.topo, f.min_ad, f.pattern, f.netcfg, solo, 0.5);
    EXPECT_EQ(alone.accepted, recs[i].load.accepted);
    EXPECT_EQ(alone.avgLatency, recs[i].load.avgLatency);
    EXPECT_EQ(alone.avgHops, recs[i].load.avgHops);
    EXPECT_EQ(alone.p99Latency, recs[i].load.p99Latency);
    EXPECT_EQ(alone.measuredPackets, recs[i].load.measuredPackets);

    // And the batch point likewise.
    const std::size_t bi = 7;
    const BatchResult batchAlone =
        runBatch(f.topo, f.val, f.pattern, f.netcfg,
                 derivePointSeed(2007, bi), 20);
    EXPECT_EQ(batchAlone.completionTime,
              recs[bi].batch.completionTime);
}

// ---------------------------------------------------------------------
// JSON result writer
// ---------------------------------------------------------------------

TEST(ResultWriter, EmitsSchemaStatusAndNullForNaN)
{
    SweepPointRecord ok;
    ok.index = 0;
    ok.kind = SweepPointKind::kLoadPoint;
    ok.series = "s \"quoted\"";
    ok.topology = "t";
    ok.routing = "r";
    ok.traffic = "u";
    ok.seed = 99;
    ok.wallSeconds = 0.25;
    ok.load.offered = 0.5;
    ok.load.accepted = 0.5;
    ok.load.avgLatency = 3.5;
    ok.load.avgNetworkLatency = 2.5;
    ok.load.avgHops = 1.5;
    ok.load.p99Latency = 9.0;
    ok.load.measuredPackets = 10;

    SweepPointRecord bad = ok;
    bad.index = 1;
    bad.series = "invalid";
    bad.load = LoadPointResult{};
    bad.load.status = LoadPointStatus::kInvalidConfig;

    SweepRunMeta meta;
    meta.bench = "unit";
    meta.description = "desc";
    meta.extra = {{"key", "value"}};

    const std::string doc =
        sweepResultsToJson(meta, {ok, bad}, 2007, 4, 1.5);

    EXPECT_NE(doc.find("\"schema\": \"fbfly-sweep-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"bench\": \"unit\""), std::string::npos);
    EXPECT_NE(doc.find("\"threads\": 4"), std::string::npos);
    EXPECT_NE(doc.find("\"seed\": 2007"), std::string::npos);
    EXPECT_NE(doc.find("\"key\": \"value\""), std::string::npos);
    EXPECT_NE(doc.find("\"status\": \"delivered\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"status\": \"invalid-config\""),
              std::string::npos);
    // Escaping.
    EXPECT_NE(doc.find("s \\\"quoted\\\""), std::string::npos);
    // The invalid point's unknown statistics serialize as null, and
    // its validity is spelled out.
    EXPECT_NE(doc.find("\"accepted\": null"), std::string::npos);
    EXPECT_NE(doc.find("\"valid\": false"), std::string::npos);
    EXPECT_NE(doc.find("\"valid\": true"), std::string::npos);
    // No bare NaN token anywhere (JSON parsers reject it).
    EXPECT_EQ(doc.find("nan"), std::string::npos);
    // git describe is present (any value).
    EXPECT_NE(doc.find("\"git\": \""), std::string::npos);
}

TEST(ResultWriter, WritesFileForCompletedEngine)
{
    SweepFixture f;
    SweepConfig cfg;
    cfg.threads = 2;
    cfg.masterSeed = 5;
    SweepEngine engine(cfg);
    engine.addLoadPoint("pt", f.topo, f.min_ad, f.pattern, f.netcfg,
                        f.expcfg, 0.3);
    engine.run();

    const std::string path =
        testing::TempDir() + "fbfly_sweep_test.json";
    SweepRunMeta meta;
    meta.bench = "unit_file";
    ASSERT_TRUE(writeSweepResults(path, meta, engine));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string doc = ss.str();
    EXPECT_NE(doc.find("fbfly-sweep-v1"), std::string::npos);
    EXPECT_NE(doc.find("\"bench\": \"unit_file\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"offered\": 0.3"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ResultWriter, FailsGracefullyOnBadPath)
{
    SweepRunMeta meta;
    meta.bench = "x";
    EXPECT_FALSE(writeSweepResults(
        "/nonexistent-dir-xyz/out.json", meta, {}, 1, 1, 0.0));
}

} // namespace
} // namespace fbfly
