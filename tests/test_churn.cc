/**
 * @file
 * Tests for the churn/repair subsystem: Channel kill -> revive edge
 * cases, ChurnModel schedule properties, conservation invariants
 * through repeated kill/repair cycles, and the thread-count
 * determinism contract of the dynamic-service harness
 * (harness/churn.h) — 1-thread and 4-thread runChurnSweep must be
 * bit-identical, and a zero-churn run must reproduce a plain run of
 * the same harness bit for bit.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "fault/churn_model.h"
#include "harness/churn.h"
#include "harness/result_writer.h"
#include "network/channel.h"
#include "obs/trace.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

Flit
makeFlit(FlitId id, bool measured = false)
{
    Flit f;
    f.id = id;
    f.packet = static_cast<PacketId>(id);
    f.head = f.tail = true;
    f.measured = measured;
    return f;
}

// --- Channel kill -> revive edge cases ----------------------------

TEST(ChannelRevive, PlainRevivalIsLossless)
{
    // A dead plain channel refuses new sends, so nothing is ever
    // stranded: the in-flight flit keeps flying across the outage
    // and revival loses nothing.
    Channel ch(3, 1);
    ch.sendFlit(makeFlit(1), 0);
    ch.kill();
    EXPECT_FALSE(ch.canSendFlit(1));

    const Channel::ReviveLoss loss = ch.revive();
    EXPECT_EQ(loss.flits, 0u);
    EXPECT_EQ(loss.packets, 0u);
    EXPECT_EQ(loss.measuredPackets, 0u);
    EXPECT_FALSE(ch.dead());

    // The pre-outage flit arrives on schedule, and the channel
    // accepts traffic again.
    const auto f = ch.receiveFlit(3);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->id, 1u);
    EXPECT_TRUE(ch.canSendFlit(3));
    ch.sendFlit(makeFlit(2), 3);
    EXPECT_EQ(ch.receiveFlit(6)->id, 2u);
    EXPECT_EQ(ch.flitsInFlight(), 0);
}

TEST(ChannelRevive, ReliableRevivalAcceptedFlitsAreNotLost)
{
    // Flits the receiver accepted before the outage are below
    // expectedSeq: only their acks died with the link, so revival
    // must not count them as lost even though they still sit in the
    // replay buffer (the transmitter never saw the acks).
    Channel ch(1, 1);
    ch.enableReliability({true, 8, 16, 64}, {}, Rng(1));
    ch.sendFlit(makeFlit(1), 0);
    ch.sendFlit(makeFlit(2), 1);
    EXPECT_EQ(ch.receiveFlit(3)->id, 1u);
    EXPECT_EQ(ch.receiveFlit(3)->id, 2u);
    EXPECT_EQ(ch.replayOccupancy(), 2); // acks never drained

    ch.kill();
    const Channel::ReviveLoss loss = ch.revive();
    EXPECT_EQ(loss.flits, 0u);
    EXPECT_EQ(loss.packets, 0u);
    EXPECT_EQ(ch.replayOccupancy(), 0);
}

TEST(ChannelRevive, ReliableRevivalCountsUnacceptedReplayFlits)
{
    // Flits at or above the receiver's expectedSeq were never
    // accepted downstream; the outage outlived their retransmission
    // window, so revival reports them (and their packets, and the
    // measured subset) as losses for drop accounting.
    Channel ch(1, 1);
    ch.enableReliability({true, 8, 16, 64}, {}, Rng(1));
    ch.sendFlit(makeFlit(1), 0);
    EXPECT_EQ(ch.receiveFlit(2)->id, 1u); // accepted, expectedSeq = 1
    ch.sendFlit(makeFlit(2, /*measured=*/true), 2);
    ch.sendFlit(makeFlit(3), 3);
    ch.kill();

    const Channel::ReviveLoss loss = ch.revive();
    EXPECT_EQ(loss.flits, 2u);
    EXPECT_EQ(loss.packets, 2u);
    EXPECT_EQ(loss.measuredPackets, 1u);
    // Clean reset: window empty, nothing logically in flight.
    EXPECT_EQ(ch.replayOccupancy(), 0);
    EXPECT_EQ(ch.flitsInFlight(), 0);
}

TEST(ChannelRevive, StaleWireFlitsAreFlushedNotReplayed)
{
    // A flit still on the wire at revival carries a pre-outage
    // sequence number that would confuse the reset receiver; it must
    // be flushed (and counted lost), never delivered after repair.
    Channel ch(4, 1);
    ch.enableReliability({true, 8, 16, 64}, {}, Rng(1));
    ch.sendFlit(makeFlit(7), 0);
    ch.kill(); // flit still in flight (arrives at cycle 4)
    const Channel::ReviveLoss loss = ch.revive();
    EXPECT_EQ(loss.flits, 1u);

    // Post-repair traffic restarts at sequence zero and is the only
    // thing the receiver ever sees.
    ch.sendFlit(makeFlit(8), 1);
    const auto f = ch.receiveFlit(5);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->id, 8u);
    EXPECT_FALSE(ch.receiveFlit(10).has_value());
    EXPECT_EQ(ch.linkStats().dupSuppressed, 0u);
    EXPECT_EQ(ch.linkStats().crcRejected, 0u);
}

TEST(ChannelRevive, DuplicateSuppressionSurvivesRevivalBoundary)
{
    // Force a duplicate before the outage (timeout retransmission of
    // a flit whose original arrives fine), then kill/revive and check
    // the receiver still accepts the fresh sequence-zero stream: the
    // suppression state must reset with the window, not leak across
    // the revival boundary.
    Channel ch(1, 1);
    ch.enableReliability({true, 8, 4, 8}, {}, Rng(1));
    ch.sendFlit(makeFlit(1), 0);
    // No receive yet: the retry timeout (4) fires and retransmits.
    for (Cycle t = 1; t <= 6; ++t)
        ch.tick(t);
    EXPECT_GE(ch.linkStats().retransmits, 1u);
    // The original is accepted; the retransmitted copy is suppressed.
    EXPECT_EQ(ch.receiveFlit(8)->id, 1u);
    EXPECT_FALSE(ch.receiveFlit(8).has_value());
    EXPECT_GE(ch.linkStats().dupSuppressed, 1u);
    const std::uint64_t dups = ch.linkStats().dupSuppressed;

    ch.kill();
    (void)ch.revive();

    // Fresh traffic after repair: in-order, no false suppression.
    ch.sendFlit(makeFlit(2), 9);
    ch.sendFlit(makeFlit(3), 10);
    EXPECT_EQ(ch.receiveFlit(12)->id, 2u);
    EXPECT_EQ(ch.receiveFlit(12)->id, 3u);
    EXPECT_EQ(ch.linkStats().dupSuppressed, dups);
}

TEST(ChannelRevive, RepeatedKillRepairCyclesStayConsistent)
{
    // N kill/repair cycles with traffic in between: every epoch's
    // flits either deliver or are counted in the revival loss —
    // nothing is double-counted and nothing leaks into the logical
    // in-flight accounting.
    Channel ch(2, 1);
    ch.enableReliability({true, 8, 16, 64}, {}, Rng(3));
    Cycle t = 0;
    std::uint64_t lost = 0;
    int delivered = 0;
    FlitId next_id = 1;
    for (int cycle = 0; cycle < 5; ++cycle) {
        // Two flits that the receiver accepts...
        for (int i = 0; i < 2; ++i) {
            ch.tick(t);
            ch.sendFlit(makeFlit(next_id++), t);
            ++t;
        }
        t += 2;
        while (ch.receiveFlit(t).has_value())
            ++delivered;
        // ...and one stranded mid-wire by the failure.
        ch.tick(t);
        ch.sendFlit(makeFlit(next_id++), t);
        ch.kill();
        const Channel::ReviveLoss loss = ch.revive();
        lost += loss.flits;
        EXPECT_EQ(ch.flitsInFlight(), 0);
        EXPECT_EQ(ch.replayOccupancy(), 0);
        ++t;
    }
    EXPECT_EQ(delivered, 10);
    EXPECT_EQ(lost, 5u);
}

TEST(ChannelReviveDeath, ReviveOnLiveChannelPanics)
{
    Channel ch(1, 1);
    EXPECT_DEATH((void)ch.revive(), "revive on a live channel");
}

// --- ChurnModel schedule properties -------------------------------

ChurnConfig
linkChurnConfig(double mtbf, double mttr, Cycle horizon,
                std::uint64_t seed = 7)
{
    ChurnConfig cc;
    cc.linkMtbf = mtbf;
    cc.linkMttr = mttr;
    cc.horizon = horizon;
    cc.seed = seed;
    return cc;
}

TEST(ChurnModel, ScheduleIsDeterministicAndSorted)
{
    FlattenedButterfly topo(4, 2);
    ChurnConfig cc = linkChurnConfig(800, 200, 6000);
    cc.routerMtbf = 3000;
    cc.routerMttr = 400;
    const ChurnModel a(topo, cc);
    const ChurnModel b(topo, cc);

    ASSERT_GT(a.events().size(), 0u);
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        const ServiceEvent &ea = a.events()[i];
        const ServiceEvent &eb = b.events()[i];
        EXPECT_EQ(ea.at, eb.at);
        EXPECT_EQ(ea.kind, eb.kind);
        EXPECT_EQ(ea.link, eb.link);
        EXPECT_EQ(ea.router, eb.router);
        EXPECT_EQ(ea.episode, eb.episode);
        if (i > 0) {
            EXPECT_GE(ea.at, a.events()[i - 1].at);
        }
    }
    EXPECT_EQ(a.downEvents(), b.downEvents());
    EXPECT_EQ(a.prunedEpisodes(), b.prunedEpisodes());
}

TEST(ChurnModel, EveryDownEventHasAMatchingRepair)
{
    FlattenedButterfly topo(4, 2);
    const ChurnModel model(topo, linkChurnConfig(500, 150, 8000));
    ASSERT_TRUE(model.anyChurn());

    std::uint64_t downs = 0;
    std::uint64_t ups = 0;
    // episode id -> cycle of its down event.
    std::vector<std::pair<std::size_t, Cycle>> open;
    for (const ServiceEvent &ev : model.events()) {
        if (ev.isDown()) {
            ++downs;
            open.emplace_back(ev.episode, ev.at);
        } else {
            ++ups;
            bool matched = false;
            for (auto it = open.begin(); it != open.end(); ++it) {
                if (it->first == ev.episode) {
                    EXPECT_GE(ev.at, it->second);
                    open.erase(it);
                    matched = true;
                    break;
                }
            }
            EXPECT_TRUE(matched)
                << "repair without a prior outage, episode "
                << ev.episode;
        }
    }
    EXPECT_EQ(downs, ups) << "an outage was left open";
    EXPECT_TRUE(open.empty());
    EXPECT_EQ(downs, model.downEvents());
}

TEST(ChurnModel, LinkEventsUseRepresentativeArcs)
{
    FlattenedButterfly topo(4, 2);
    const ChurnModel model(topo, linkChurnConfig(500, 150, 8000));
    for (const ServiceEvent &ev : model.events()) {
        if (ev.kind != ServiceEvent::Kind::kLinkDown &&
            ev.kind != ServiceEvent::Kind::kLinkUp)
            continue;
        ASSERT_LT(ev.link, model.numArcs());
        const std::size_t rev = model.reverseArc(ev.link);
        ASSERT_NE(rev, ChurnModel::kNoPair)
            << "inter-router links are bidirectional";
        EXPECT_LT(ev.link, rev)
            << "representative arc must be the lower-indexed one";
    }
}

TEST(ChurnModel, ConnectivityPruningCancelsCriticalLinks)
{
    // The 2-ary 2-flat has exactly two terminal-hosting routers and
    // one bidirectional link between them: every link outage would
    // disconnect them, so pruning must cancel the entire schedule.
    FlattenedButterfly topo(2, 2);
    const ChurnModel model(topo, linkChurnConfig(300, 100, 10000));
    EXPECT_FALSE(model.anyChurn());
    EXPECT_EQ(model.downEvents(), 0u);
    EXPECT_GT(model.prunedEpisodes(), 0u);

    // With pruning off the same config produces a live schedule.
    ChurnConfig raw = linkChurnConfig(300, 100, 10000);
    raw.preserveConnectivity = false;
    const ChurnModel unpruned(topo, raw);
    EXPECT_TRUE(unpruned.anyChurn());
    EXPECT_GT(unpruned.downEvents(), 0u);
}

TEST(ChurnModel, ValidateConfigAcceptsSoundKnobs)
{
    FlattenedButterfly topo(4, 2);

    ChurnConfig ok = linkChurnConfig(500, 100, 1000);
    EXPECT_TRUE(ChurnModel(topo, ok).validateConfig().empty());

    ChurnConfig idle; // no churn at all: trivially sound
    EXPECT_TRUE(ChurnModel(topo, idle).validateConfig().empty());
}

TEST(ChurnModelDeath, IncompleteConfigPanics)
{
    // The constructor fails fast on unsound knobs (validateConfig);
    // a silent zero MTTR would model outages that never heal.
    FlattenedButterfly topo(4, 2);

    ChurnConfig no_mttr = linkChurnConfig(500, 0, 1000);
    EXPECT_DEATH(ChurnModel(topo, no_mttr), "churn config invalid");

    ChurnConfig no_horizon = linkChurnConfig(500, 100, 0);
    EXPECT_DEATH(ChurnModel(topo, no_horizon),
                 "churn config invalid");
}

// --- Conservation through kill/repair cycles ----------------------

/** Small, fast dynamic-service configuration shared by the harness
 *  tests below. */
ChurnRunConfig
smallRunConfig()
{
    ChurnRunConfig cfg;
    cfg.warmupCycles = 200;
    cfg.horizonCycles = 2500;
    cfg.drainCycles = 30000;
    cfg.baseLoad = 0.10;
    cfg.peakLoad = 0.30;
    cfg.diurnalPeriod = 1000;
    cfg.epochCycles = 250;
    cfg.recoveryWindow = 128;
    cfg.seed = 99;
    return cfg;
}

TEST(ChurnConservation, InvariantsHoldThroughKillRepairCycles)
{
    // Per-cycle conservation checks (flit and credit invariants,
    // Network::checkInvariants) across a schedule with many link and
    // router kill/repair transitions: any leak introduced by
    // killOutput/reviveOutput/revive() panics the run.
    FlattenedButterfly topo(4, 2);
    UniformRandom pattern(topo.numNodes());

    ChurnRunConfig cfg = smallRunConfig();
    cfg.invariantCheckInterval = 1;

    ChurnConfig cc = linkChurnConfig(400, 120, 0, 11);
    cc.routerMtbf = 1500;
    cc.routerMttr = 200;
    cc.horizon = static_cast<Cycle>(cfg.warmupCycles) +
                 cfg.horizonCycles;
    const ChurnModel model(topo, cc);
    ASSERT_GT(model.downEvents(), 2u);

    NetworkConfig netcfg;
    netcfg.vcDepth = 4;
    const ChurnPointResult r =
        runChurnPoint(topo, pattern, &model, netcfg, cfg);

    // The run finished (delivered, or legitimate unreachable drops
    // while a destination router was down) — never stalled or
    // rejected — and the end-to-end audit is clean across every
    // transition.
    EXPECT_TRUE(r.load.status == LoadPointStatus::kDelivered ||
                r.load.status == LoadPointStatus::kUnreachable)
        << toString(r.load.status) << "\n"
        << r.load.diagnostics;
    ASSERT_TRUE(r.load.deliveryChecked);
    EXPECT_TRUE(r.load.delivery.clean())
        << "silent loss/duplication across kill/repair cycles";
    EXPECT_GT(r.churn.downEvents, 0u);
    EXPECT_GT(r.churn.repairEvents, 0u);
}

// --- Dynamic-service determinism ----------------------------------

std::vector<SweepPointRecord>
runSmallChurnSweep(int threads)
{
    FlattenedButterfly topo(4, 2);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig netcfg;
    netcfg.vcDepth = 4;

    ChurnSweepConfig cfg;
    cfg.threads = threads;
    cfg.masterSeed = 2007;
    cfg.run = smallRunConfig();
    cfg.run.obs.traceEnabled = true;
    cfg.run.obs.traceCapacity = 1 << 15;

    ChurnCase none;
    none.label = "no churn";
    cfg.cases.push_back(none);

    ChurnCase links;
    links.label = "link churn";
    links.churn.linkMtbf = 600;
    links.churn.linkMttr = 150;
    cfg.cases.push_back(links);

    return runChurnSweep(topo, pattern, netcfg, cfg);
}

/** Serialize records with the wall-clock fields neutralized (wall
 *  time is the one legitimately nondeterministic output). */
std::string
canonicalJson(std::vector<SweepPointRecord> records)
{
    for (SweepPointRecord &rec : records)
        rec.wallSeconds = 0.0;
    SweepRunMeta meta;
    meta.bench = "test_churn";
    return sweepResultsToJson(meta, records, 2007, 1, 0.0);
}

TEST(ChurnDeterminism, SweepBitIdenticalAcrossThreadCounts)
{
    const std::vector<SweepPointRecord> serial =
        runSmallChurnSweep(1);
    const std::vector<SweepPointRecord> parallel =
        runSmallChurnSweep(4);
    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_EQ(serial.size(), 2u);

    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i) + ": " +
                     serial[i].series);
        const SweepPointRecord &a = serial[i];
        const SweepPointRecord &b = parallel[i];
        EXPECT_EQ(a.seed, b.seed);
        EXPECT_EQ(a.load.accepted, b.load.accepted);
        EXPECT_EQ(a.load.measuredPackets, b.load.measuredPackets);
        EXPECT_EQ(a.load.status, b.load.status);
        // The churn extension (event counts, losses, p99.9, the full
        // recovery-time distribution) serialized identically.
        EXPECT_EQ(a.extraJson, b.extraJson);
        // Bit-identical flit-lifecycle traces, churn/repair events
        // included.
        ASSERT_NE(a.load.trace, nullptr);
        ASSERT_NE(b.load.trace, nullptr);
        EXPECT_EQ(a.load.trace->toText(), b.load.trace->toText());
    }

    // The whole fbfly-sweep-v1 document, wall fields neutralized,
    // must match byte for byte.
    EXPECT_EQ(canonicalJson(serial), canonicalJson(parallel));
}

TEST(ChurnDeterminism, ZeroChurnReproducesPlainRunBitForBit)
{
    // A null churn model and a ChurnModel with an empty schedule must
    // drive byte-identical simulations: churn bookkeeping with no
    // events is a strict no-op.
    FlattenedButterfly topo(4, 2);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig netcfg;
    netcfg.vcDepth = 4;

    ChurnRunConfig cfg = smallRunConfig();
    cfg.obs.traceEnabled = true;
    cfg.obs.traceCapacity = 1 << 15;

    const ChurnModel empty(topo, ChurnConfig{});
    ASSERT_FALSE(empty.anyChurn());

    const ChurnPointResult plain =
        runChurnPoint(topo, pattern, nullptr, netcfg, cfg);
    const ChurnPointResult zero =
        runChurnPoint(topo, pattern, &empty, netcfg, cfg);

    EXPECT_EQ(plain.load.status, zero.load.status);
    EXPECT_EQ(plain.load.accepted, zero.load.accepted);
    EXPECT_EQ(plain.load.avgLatency, zero.load.avgLatency);
    EXPECT_EQ(plain.load.p99Latency, zero.load.p99Latency);
    EXPECT_EQ(plain.load.measuredPackets, zero.load.measuredPackets);
    EXPECT_EQ(plain.load.flitsDropped, zero.load.flitsDropped);
    EXPECT_EQ(plain.churn.downEvents, 0u);
    EXPECT_EQ(zero.churn.downEvents, 0u);
    EXPECT_EQ(churnExtraJson(ChurnConfig{}, plain.churn),
              churnExtraJson(ChurnConfig{}, zero.churn));
    ASSERT_NE(plain.load.trace, nullptr);
    ASSERT_NE(zero.load.trace, nullptr);
    EXPECT_EQ(plain.load.trace->toText(),
              zero.load.trace->toText());
}

} // namespace
} // namespace fbfly
