/**
 * @file
 * Tests for the conventional butterfly (k-ary n-fly): stage wiring,
 * destination-tag routing reachability, and the unique-path property
 * (no path diversity — Section 2 of the paper).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/radix.h"
#include "topology/butterfly.h"

namespace fbfly
{
namespace
{

TEST(Butterfly, PaperConfiguration)
{
    // Figure 6's conventional butterfly: 2 stages of radix-32
    // routers for 1024 nodes.
    Butterfly topo(32, 2);
    EXPECT_EQ(topo.numNodes(), 1024);
    EXPECT_EQ(topo.numRows(), 32);
    EXPECT_EQ(topo.numRouters(), 64);
}

TEST(Butterfly, StageAndRowDecomposition)
{
    Butterfly topo(2, 4);
    EXPECT_EQ(topo.numRouters(), 4 * 8);
    EXPECT_EQ(topo.stageOf(0), 0);
    EXPECT_EQ(topo.rowOf(0), 0);
    EXPECT_EQ(topo.stageOf(8), 1);
    EXPECT_EQ(topo.rowOf(8), 0);
    EXPECT_EQ(topo.stageOf(31), 3);
    EXPECT_EQ(topo.rowOf(31), 7);
}

TEST(Butterfly, ArcCount)
{
    // (n-1) wiring columns of N channels each.
    Butterfly topo(2, 4);
    EXPECT_EQ(topo.arcs().size(), 3u * 16);
    Butterfly big(32, 2);
    EXPECT_EQ(big.arcs().size(), 1024u);
}

TEST(Butterfly, ArcsAreFeedForwardAndBijective)
{
    Butterfly topo(4, 3);
    std::map<std::pair<int, int>, int> out_use;
    std::map<std::pair<int, int>, int> in_use;
    for (const auto &a : topo.arcs()) {
        EXPECT_EQ(topo.stageOf(a.dst), topo.stageOf(a.src) + 1);
        // Outputs are ports k..2k-1, inputs 0..k-1.
        EXPECT_GE(a.srcPort, topo.k());
        EXPECT_LT(a.srcPort, 2 * topo.k());
        EXPECT_GE(a.dstPort, 0);
        EXPECT_LT(a.dstPort, topo.k());
        ++out_use[{a.src, a.srcPort}];
        ++in_use[{a.dst, a.dstPort}];
    }
    for (const auto &[key, count] : out_use)
        EXPECT_EQ(count, 1);
    for (const auto &[key, count] : in_use)
        EXPECT_EQ(count, 1);
}

/** Walk destination-tag routing through the wiring tables and check
 *  it reaches the destination's ejection router, for every pair. */
TEST(Butterfly, DestinationTagRoutingReachesEveryPair)
{
    Butterfly topo(2, 4);
    // Build output-port -> next-router maps from the arcs.
    std::map<std::pair<int, int>, RouterId> wire;
    for (const auto &a : topo.arcs())
        wire[{a.src, a.srcPort}] = a.dst;

    for (NodeId src = 0; src < topo.numNodes(); ++src) {
        for (NodeId dst = 0; dst < topo.numNodes(); ++dst) {
            RouterId r = topo.injectionRouter(src);
            for (int s = 0; s + 1 < topo.n(); ++s) {
                const PortId p = topo.outputPortFor(s, dst);
                ASSERT_TRUE(wire.count({r, p}));
                r = wire[{r, p}];
            }
            EXPECT_EQ(r, topo.ejectionRouter(dst))
                << src << " -> " << dst;
            EXPECT_EQ(topo.outputPortFor(topo.n() - 1, dst),
                      topo.ejectionPort(dst));
        }
    }
}

TEST(Butterfly, NoPathDiversity)
{
    // The output port at every stage is a function of the
    // destination only: exactly one path per (src, dst) pair.
    Butterfly topo(4, 2);
    for (NodeId dst = 0; dst < topo.numNodes(); ++dst) {
        for (int s = 0; s < topo.n(); ++s) {
            const PortId p = topo.outputPortFor(s, dst);
            EXPECT_GE(p, topo.k());
            EXPECT_LT(p, 2 * topo.k());
        }
    }
}

TEST(Butterfly, InjectionEjectionDisjointRouters)
{
    Butterfly topo(4, 2);
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        EXPECT_EQ(topo.stageOf(topo.injectionRouter(n)), 0);
        EXPECT_EQ(topo.stageOf(topo.ejectionRouter(n)),
                  topo.n() - 1);
        EXPECT_LT(topo.injectionPort(n), topo.k());
        EXPECT_GE(topo.ejectionPort(n), topo.k());
    }
}

/** Flattening correspondence: collapsing the rows of a k-ary n-fly
 *  yields the k-ary n-flat's channels (paper Section 2.1). */
TEST(Butterfly, FlatteningEliminatesIntraRowChannels)
{
    Butterfly topo(4, 2);
    int intra_row = 0;
    int inter_row = 0;
    for (const auto &a : topo.arcs()) {
        if (topo.rowOf(a.src) == topo.rowOf(a.dst))
            ++intra_row;
        else
            ++inter_row;
    }
    // k-ary 2-fly: each router has one channel to its own row
    // (eliminated by flattening) and k-1 to other rows (kept):
    // kept channels = rows * (k-1) = the n-flat's arc count.
    EXPECT_EQ(intra_row, topo.numRows());
    EXPECT_EQ(inter_row, topo.numRows() * (topo.k() - 1));
}

} // namespace
} // namespace fbfly
