/**
 * @file
 * Unit tests for the ActiveSet scheduler (network/active_set.h) —
 * the PR 7 kernel's runnable-component tracker.  Exercises the wake
 * contract directly: generation swap, next-cycle heap bypass,
 * duplicate-timer suppression, tail masking, ascending iteration
 * order, and the introspection hooks the liveness classifier and
 * wake-contract verifier rely on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "network/active_set.h"

namespace fbfly
{
namespace
{

std::vector<std::uint32_t>
activeIds(const ActiveSet &as, std::uint32_t lo, std::uint32_t hi)
{
    std::vector<std::uint32_t> out;
    as.forEachIn(lo, hi, [&](std::uint32_t c) { out.push_back(c); });
    return out;
}

std::vector<std::uint32_t>
queuedIds(const ActiveSet &as)
{
    std::vector<std::uint32_t> out;
    as.forEachQueuedNext(
        [&](std::uint32_t c) { out.push_back(c); });
    return out;
}

TEST(ActiveSet, InitWakesEveryoneForCycleZero)
{
    ActiveSet as;
    as.init(70); // spans two 64-bit words, tail-masked
    EXPECT_EQ(as.size(), 70u);
    EXPECT_EQ(as.nextCycle(), 0u);
    ASSERT_TRUE(as.beginCycle(0));
    const auto ids = activeIds(as, 0, 70);
    ASSERT_EQ(ids.size(), 70u);
    EXPECT_EQ(ids.front(), 0u);
    EXPECT_EQ(ids.back(), 69u);
    // Nothing queued for cycle 1 yet; cycle 1 is globally idle.
    EXPECT_FALSE(as.beginCycle(1));
}

TEST(ActiveSet, GenerationSwapIsolatesCycles)
{
    ActiveSet as;
    as.init(8);
    as.beginCycle(0);               // consumes the init wake-all
    EXPECT_FALSE(as.beginCycle(1)); // fully idle cycle
    EXPECT_FALSE(as.activeNow(3));
    as.wakeNext(3);
    EXPECT_TRUE(as.queuedNext(3));
    EXPECT_FALSE(as.activeNow(3)); // only the NEXT cycle sees it
    ASSERT_TRUE(as.beginCycle(2));
    EXPECT_TRUE(as.activeNow(3));
    EXPECT_FALSE(as.queuedNext(3)); // the next generation is fresh
    EXPECT_EQ(activeIds(as, 0, 8), (std::vector<std::uint32_t>{3}));
    // A wake issued mid-cycle lands in the NEXT generation only.
    as.wakeNext(5);
    EXPECT_FALSE(as.activeNow(5));
    ASSERT_TRUE(as.beginCycle(3));
    EXPECT_TRUE(as.activeNow(5));
    EXPECT_FALSE(as.activeNow(3));
}

TEST(ActiveSet, WakeAtNextCycleBypassesHeap)
{
    ActiveSet as;
    as.init(4);
    as.beginCycle(0);
    // nextCycle is 1: a wake at 1 (or earlier) must go straight to
    // the bitmask — an early-consumed heap timer would lose it.
    as.wakeAt(2, 1);
    EXPECT_EQ(as.timerCount(), 0u);
    EXPECT_TRUE(as.queuedNext(2));
    ASSERT_TRUE(as.beginCycle(1));
    EXPECT_TRUE(as.activeNow(2));
}

TEST(ActiveSet, TimersSurfaceExactlyAtDeadline)
{
    ActiveSet as;
    as.init(4);
    as.beginCycle(0);
    as.wakeAt(1, 5);
    as.wakeAt(3, 3);
    EXPECT_EQ(as.timerCount(), 2u);
    EXPECT_EQ(as.nextTimerDeadline(), 3u);
    EXPECT_TRUE(as.timerPending(1));
    EXPECT_TRUE(as.anyWakePending(3));
    EXPECT_FALSE(as.anyWakePending(0));

    EXPECT_FALSE(as.beginCycle(1));
    EXPECT_FALSE(as.beginCycle(2));
    ASSERT_TRUE(as.beginCycle(3)); // component 3's deadline
    EXPECT_TRUE(as.activeNow(3));
    EXPECT_FALSE(as.activeNow(1));
    EXPECT_FALSE(as.timerPending(3)); // consumed
    EXPECT_EQ(as.timerCount(), 1u);

    EXPECT_FALSE(as.beginCycle(4));
    ASSERT_TRUE(as.beginCycle(5));
    EXPECT_TRUE(as.activeNow(1));
    EXPECT_EQ(as.timerCount(), 0u);
    EXPECT_EQ(as.nextTimerDeadline(), ActiveSet::kNeverQueued);
}

TEST(ActiveSet, DuplicateDeadlinesAreSuppressed)
{
    ActiveSet as;
    as.init(2);
    as.beginCycle(0);
    as.wakeAt(0, 4);
    as.wakeAt(0, 4);
    as.wakeAt(0, 4);
    EXPECT_EQ(as.timerCount(), 1u); // lastAt_ dedup
    as.wakeAt(0, 6); // a different deadline still queues
    EXPECT_EQ(as.timerCount(), 2u);
    as.beginCycle(1);
    as.beginCycle(2);
    as.beginCycle(3);
    ASSERT_TRUE(as.beginCycle(4));
    EXPECT_TRUE(as.activeNow(0));
    // The later deadline survived the fold and still dedups: the
    // dedup slot tracks the most recent queued deadline.
    as.wakeAt(0, 6);
    EXPECT_EQ(as.timerCount(), 1u); // 6 was still queued -> dedup'd
    as.beginCycle(5);
    ASSERT_TRUE(as.beginCycle(6));
    EXPECT_TRUE(as.activeNow(0));
    EXPECT_EQ(as.timerCount(), 0u);
}

TEST(ActiveSet, WakeAllNextMasksTailBits)
{
    ActiveSet as;
    as.init(65); // one bit into the second word
    as.beginCycle(0);
    as.wakeAllNext();
    const auto queued = queuedIds(as);
    ASSERT_EQ(queued.size(), 65u);
    EXPECT_EQ(queued.back(), 64u);
    ASSERT_TRUE(as.beginCycle(1));
    // forEachIn never visits ids past n, and respects [lo, hi).
    EXPECT_EQ(activeIds(as, 0, 65).size(), 65u);
    EXPECT_EQ(activeIds(as, 63, 65),
              (std::vector<std::uint32_t>{63, 64}));
    EXPECT_EQ(activeIds(as, 10, 12),
              (std::vector<std::uint32_t>{10, 11}));
}

TEST(ActiveSet, DeactivateStrandsCurrentCycleOnly)
{
    // The missed-wake injection hook: dropping a component from the
    // CURRENT set must not eat wakes queued for later cycles.
    ActiveSet as;
    as.init(4);
    as.beginCycle(0);
    as.deactivate(2);
    EXPECT_FALSE(as.activeNow(2));
    EXPECT_FALSE(as.anyWakePending(2));
    as.wakeNext(2);
    EXPECT_TRUE(as.anyWakePending(2));
    ASSERT_TRUE(as.beginCycle(1));
    EXPECT_TRUE(as.activeNow(2));
}

TEST(ActiveSet, ForEachInIsAscendingAcrossWords)
{
    ActiveSet as;
    as.init(130);
    as.beginCycle(0);
    for (const std::uint32_t c : {129u, 64u, 0u, 63u, 100u, 1u})
        as.wakeNext(c);
    as.beginCycle(1);
    EXPECT_EQ(activeIds(as, 0, 130),
              (std::vector<std::uint32_t>{0, 1, 63, 64, 100, 129}));
}

} // namespace
} // namespace fbfly
