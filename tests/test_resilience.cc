/**
 * @file
 * Tests for the resilience sweep (harness/resilience.h): zero-rate
 * timing transparency against the plain simulator, error absorption
 * with a clean delivery oracle, thread-count invariance, and the
 * self-describing JSON metadata/counters.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "harness/resilience.h"
#include "harness/result_writer.h"
#include "harness/sweep.h"
#include "routing/min_adaptive.h"
#include "routing/valiant.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

struct Fixture
{
    Fixture() : topo(4, 2), algo(topo), pattern(topo.numNodes())
    {
        exp.warmupCycles = 200;
        exp.measureCycles = 300;
        exp.drainCycles = 3000;
        exp.seed = 123;
    }
    FlattenedButterfly topo;
    MinAdaptive algo;
    UniformRandom pattern;
    ExperimentConfig exp;
};

TEST(Resilience, ZeroRateReproducesPlainRunBitIdentically)
{
    // The protocol-overhead control: at a zero error rate the retry
    // protocol never retransmits and must be timing-transparent —
    // the sweep's zero-rate cell reproduces a plain (no error model,
    // no retry) run of the same seed bit for bit.
    Fixture f;
    ResilienceConfig cfg;
    cfg.errorRates = {0.0};
    cfg.load = 0.3;
    cfg.measureSaturation = false;
    cfg.exp = f.exp;
    cfg.net.vcDepth = 8;
    const auto pts =
        runResilienceSweep(f.topo, {&f.algo}, f.pattern, cfg);
    ASSERT_EQ(pts.size(), 1u);
    const LoadPointResult &rel = pts[0].fixedLoad;

    // Plain baseline at the same queue index (= same derived seed).
    SweepConfig sweepcfg;
    sweepcfg.threads = 1;
    sweepcfg.masterSeed = cfg.exp.seed;
    SweepEngine engine(sweepcfg);
    NetworkConfig plaincfg = cfg.net;
    plaincfg.watchdogCycles = cfg.watchdogCycles;
    engine.addLoadPoint("baseline", f.topo, f.algo, f.pattern,
                        plaincfg, cfg.exp, cfg.load);
    const LoadPointResult &base = engine.run()[0].load;

    EXPECT_EQ(rel.status, base.status);
    EXPECT_EQ(rel.avgLatency, base.avgLatency);
    EXPECT_EQ(rel.avgNetworkLatency, base.avgNetworkLatency);
    EXPECT_EQ(rel.p99Latency, base.p99Latency);
    EXPECT_EQ(rel.accepted, base.accepted);
    EXPECT_EQ(rel.avgHops, base.avgHops);
    EXPECT_EQ(rel.measuredPackets, base.measuredPackets);

    // The protocol ran (acks flowed) but never had to retransmit.
    EXPECT_GT(rel.link.attempts, 0u);
    EXPECT_GT(rel.link.acksSent, 0u);
    EXPECT_EQ(rel.link.retransmits, 0u);
    EXPECT_EQ(rel.link.timeouts, 0u);
    EXPECT_EQ(rel.link.crcRejected, 0u);
    EXPECT_EQ(rel.retransmitRate, 0.0);
    // The plain baseline has no protocol at all.
    EXPECT_EQ(base.link.attempts, 0u);

    // Both runs audit clean at zero error rate (no oracle false
    // positives).
    ASSERT_TRUE(rel.deliveryChecked);
    ASSERT_TRUE(base.deliveryChecked);
    EXPECT_TRUE(rel.delivery.clean());
    EXPECT_TRUE(base.delivery.clean());
    EXPECT_EQ(rel.delivery.tracked, rel.delivery.delivered);
}

TEST(Resilience, ErrorsAreAbsorbedAndOracleStaysClean)
{
    Fixture f;
    ResilienceConfig cfg;
    cfg.errorRates = {1e-2};
    cfg.eraseShare = 0.25;
    cfg.load = 0.3;
    cfg.measureSaturation = false;
    cfg.exp = f.exp;
    cfg.net.vcDepth = 8;
    const auto pts =
        runResilienceSweep(f.topo, {&f.algo}, f.pattern, cfg);
    ASSERT_EQ(pts.size(), 1u);
    const ResiliencePoint &pt = pts[0];
    EXPECT_DOUBLE_EQ(pt.corruptRate, 1e-2 * 0.75);
    EXPECT_DOUBLE_EQ(pt.eraseRate, 1e-2 * 0.25);

    const LoadPointResult &r = pt.fixedLoad;
    ASSERT_EQ(r.status, LoadPointStatus::kDelivered);
    // Errors were injected and the protocol worked for a living.
    EXPECT_GT(r.link.corruptInjected, 0u);
    EXPECT_GT(r.link.eraseInjected, 0u);
    EXPECT_GT(r.link.crcRejected, 0u);
    EXPECT_GT(r.link.retransmits, 0u);
    ASSERT_FALSE(std::isnan(r.retransmitRate));
    EXPECT_GT(r.retransmitRate, 0.0);
    // Every injected error was absorbed below the network layer:
    // exactly-once, in-order, uncorrupted end-to-end delivery.
    ASSERT_TRUE(r.deliveryChecked);
    EXPECT_TRUE(r.delivery.clean()) << r.delivery.summary();
    EXPECT_GT(r.delivery.tracked, 0u);
    EXPECT_EQ(r.delivery.delivered, r.delivery.tracked);
    EXPECT_EQ(r.measuredDropped, 0u);
}

TEST(Resilience, ThreadCountDoesNotChangeResults)
{
    Fixture f;
    Valiant val(f.topo);
    const auto run = [&](int threads) {
        ResilienceConfig cfg;
        cfg.errorRates = {0.0, 5e-3};
        cfg.load = 0.25;
        cfg.measureSaturation = false;
        cfg.threads = threads;
        cfg.exp = f.exp;
        cfg.net.vcDepth = 8;
        return runResilienceSweep(f.topo, {&f.algo, &val}, f.pattern,
                                  cfg);
    };
    const auto a = run(1);
    const auto b = run(4);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].algorithm, b[i].algorithm) << i;
        EXPECT_EQ(a[i].fixedLoad.avgLatency, b[i].fixedLoad.avgLatency)
            << i;
        EXPECT_EQ(a[i].fixedLoad.accepted, b[i].fixedLoad.accepted)
            << i;
        EXPECT_EQ(a[i].fixedLoad.link.attempts,
                  b[i].fixedLoad.link.attempts)
            << i;
        EXPECT_EQ(a[i].fixedLoad.link.retransmits,
                  b[i].fixedLoad.link.retransmits)
            << i;
        EXPECT_EQ(a[i].fixedLoad.link.corruptInjected,
                  b[i].fixedLoad.link.corruptInjected)
            << i;
    }
}

TEST(Resilience, JsonCarriesErrorMetadataAndRetryCounters)
{
    Fixture f;
    ResilienceConfig cfg;
    cfg.errorRates = {0.0, 1e-3};
    cfg.load = 0.3;
    cfg.measureSaturation = false;
    cfg.exp = f.exp;
    cfg.net.vcDepth = 8;
    std::vector<SweepPointRecord> records;
    (void)runResilienceSweep(f.topo, {&f.algo}, f.pattern, cfg,
                             &records);
    ASSERT_EQ(records.size(), 2u);

    SweepRunMeta meta;
    meta.bench = "resilience_test";
    meta.extra = resilienceMetadata(cfg);
    const std::string json = sweepResultsToJson(
        meta, records, cfg.exp.seed, 1, /*total_wall_seconds=*/0.1);

    // Self-describing error model + retry knobs in the metadata.
    EXPECT_NE(json.find("\"error_rates\": \"0,0.001\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"erase_share\""), std::string::npos);
    EXPECT_NE(json.find("\"error_seed\""), std::string::npos);
    EXPECT_NE(json.find("\"retry_window_flits\""), std::string::npos);
    EXPECT_NE(json.find("\"retry_timeout\""), std::string::npos);

    // Per-point retry counters and the delivery audit.
    EXPECT_NE(json.find("\"link_attempts\""), std::string::npos);
    EXPECT_NE(json.find("\"link_retransmits\""), std::string::npos);
    EXPECT_NE(json.find("\"link_crc_rejected\""), std::string::npos);
    EXPECT_NE(json.find("\"retransmit_rate\""), std::string::npos);
    EXPECT_NE(json.find("\"delivery\""), std::string::npos);
    EXPECT_NE(json.find("\"clean\": true"), std::string::npos);
    EXPECT_EQ(json.find("\"clean\": false"), std::string::npos);
}

} // namespace
} // namespace fbfly
