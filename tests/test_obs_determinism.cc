/**
 * @file
 * Thread-count determinism for the observability layer: a sweep run
 * with --threads 1 and --threads 4 must produce *bit-identical*
 * traces (TraceSink::toText) and metrics (MetricsRegistry equality,
 * NaN-aware) for every point — the PR 2 determinism contract
 * extended to the collectors added by the obs subsystem.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/sweep.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "routing/min_adaptive.h"
#include "routing/valiant.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

/** One obs-enabled sweep over two series; returns the records. */
std::vector<SweepPointRecord>
runObsSweep(int threads)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive min_ad(topo);
    Valiant val(topo);
    UniformRandom pattern(topo.numNodes());

    ExperimentConfig expcfg;
    expcfg.warmupCycles = 100;
    expcfg.measureCycles = 200;
    expcfg.drainCycles = 1500;
    expcfg.obs.traceEnabled = true;
    expcfg.obs.traceCapacity = 1 << 15;
    expcfg.obs.metricsEnabled = true;
    expcfg.obs.metricsWindowCycles = 50;

    NetworkConfig netcfg;
    netcfg.vcDepth = 8;

    SweepConfig cfg;
    cfg.threads = threads;
    cfg.masterSeed = 2007;
    SweepEngine engine(cfg);
    engine.addLoadSweep("obs MIN AD / uniform", topo, min_ad,
                        pattern, netcfg, expcfg, {0.1, 0.3, 0.5});
    engine.addLoadSweep("obs VAL / uniform", topo, val, pattern,
                        netcfg, expcfg, {0.1, 0.3});
    return engine.run();
}

TEST(ObsDeterminism, TracesAndMetricsIdenticalAcrossThreadCounts)
{
    const std::vector<SweepPointRecord> serial = runObsSweep(1);
    const std::vector<SweepPointRecord> parallel = runObsSweep(4);
    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_EQ(serial.size(), 5u);

    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i) + ": " +
                     serial[i].series);
        const LoadPointResult &a = serial[i].load;
        const LoadPointResult &b = parallel[i].load;

        // Scalar results (already covered by test_sweep.cc for the
        // obs-off path; re-asserted here with collectors on, since
        // sampling shares the step loop).
        EXPECT_EQ(serial[i].seed, parallel[i].seed);
        EXPECT_EQ(a.accepted, b.accepted);
        EXPECT_EQ(a.measuredPackets, b.measuredPackets);

        // Bit-identical traces: the canonical text form, which
        // covers track registration order, event order, and every
        // integer field of every record.
        ASSERT_NE(a.trace, nullptr);
        ASSERT_NE(b.trace, nullptr);
        EXPECT_GT(a.trace->recorded(), 0u);
        EXPECT_EQ(a.trace->toText(), b.trace->toText());

        // Bit-identical metrics: exact equality, NaN == NaN.
        ASSERT_NE(a.metrics, nullptr);
        ASSERT_NE(b.metrics, nullptr);
        EXPECT_FALSE(a.metrics->empty());
        EXPECT_TRUE(*a.metrics == *b.metrics)
            << "MetricsRegistry diverged between thread counts";
    }
}

TEST(ObsDeterminism, PointsHaveIndependentCollectors)
{
    // Different points must not share sinks or registries (sharing
    // would race under threads and break per-point reconciliation).
    const std::vector<SweepPointRecord> recs = runObsSweep(2);
    for (std::size_t i = 0; i < recs.size(); ++i) {
        for (std::size_t j = i + 1; j < recs.size(); ++j) {
            EXPECT_NE(recs[i].load.trace.get(),
                      recs[j].load.trace.get());
            EXPECT_NE(recs[i].load.metrics.get(),
                      recs[j].load.metrics.get());
        }
    }
}

} // namespace
} // namespace fbfly
