/**
 * @file
 * Tests for the channel model (network/channel.h): latency,
 * bandwidth (period), FIFO order, and the credit lane.
 */

#include <gtest/gtest.h>

#include "network/channel.h"

namespace fbfly
{
namespace
{

Flit
makeFlit(FlitId id)
{
    Flit f;
    f.id = id;
    f.head = f.tail = true;
    return f;
}

TEST(Channel, DeliversAfterLatency)
{
    Channel ch(3, 1);
    ch.sendFlit(makeFlit(1), 10);
    EXPECT_FALSE(ch.receiveFlit(11).has_value());
    EXPECT_FALSE(ch.receiveFlit(12).has_value());
    const auto f = ch.receiveFlit(13);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->id, 1u);
}

TEST(Channel, FifoOrder)
{
    Channel ch(1, 1);
    ch.sendFlit(makeFlit(1), 0);
    ch.sendFlit(makeFlit(2), 1);
    ch.sendFlit(makeFlit(3), 2);
    EXPECT_EQ(ch.receiveFlit(5)->id, 1u);
    EXPECT_EQ(ch.receiveFlit(5)->id, 2u);
    EXPECT_EQ(ch.receiveFlit(5)->id, 3u);
    EXPECT_FALSE(ch.receiveFlit(5).has_value());
}

TEST(Channel, BandwidthOneFlitPerCycle)
{
    Channel ch(1, 1);
    EXPECT_TRUE(ch.canSendFlit(0));
    ch.sendFlit(makeFlit(1), 0);
    EXPECT_FALSE(ch.canSendFlit(0));
    EXPECT_TRUE(ch.canSendFlit(1));
}

TEST(Channel, HalfBandwidthPeriodTwo)
{
    // The Figure 6 hypercube uses period-2 channels.
    Channel ch(1, 2);
    ch.sendFlit(makeFlit(1), 0);
    EXPECT_FALSE(ch.canSendFlit(1));
    EXPECT_TRUE(ch.canSendFlit(2));
    ch.sendFlit(makeFlit(2), 2);
    EXPECT_FALSE(ch.canSendFlit(3));
}

TEST(Channel, PipelinedDespiteLatency)
{
    // Latency does not reduce throughput: one flit can enter every
    // cycle even with a long pipe.
    Channel ch(5, 1);
    for (Cycle t = 0; t < 10; ++t) {
        EXPECT_TRUE(ch.canSendFlit(t));
        ch.sendFlit(makeFlit(t), t);
    }
    int received = 0;
    for (Cycle t = 5; t < 15; ++t) {
        while (ch.receiveFlit(t).has_value())
            ++received;
    }
    EXPECT_EQ(received, 10);
}

TEST(Channel, CreditLaneLatencyAndOrder)
{
    Channel ch(2, 1);
    ch.sendCredit(0, 0);
    ch.sendCredit(1, 0);
    EXPECT_FALSE(ch.receiveCredit(1).has_value());
    EXPECT_EQ(ch.receiveCredit(2).value(), 0);
    EXPECT_EQ(ch.receiveCredit(2).value(), 1);
    EXPECT_FALSE(ch.receiveCredit(2).has_value());
}

TEST(Channel, CreditsUnlimitedBandwidth)
{
    Channel ch(1, 1);
    for (int i = 0; i < 8; ++i)
        ch.sendCredit(i % 2, 0);
    int got = 0;
    while (ch.receiveCredit(1).has_value())
        ++got;
    EXPECT_EQ(got, 8);
}

TEST(Channel, FlitsInFlightTracking)
{
    Channel ch(4, 1);
    EXPECT_EQ(ch.flitsInFlight(), 0);
    ch.sendFlit(makeFlit(1), 0);
    ch.sendFlit(makeFlit(2), 1);
    EXPECT_EQ(ch.flitsInFlight(), 2);
    (void)ch.receiveFlit(4);
    EXPECT_EQ(ch.flitsInFlight(), 1);
}

} // namespace
} // namespace fbfly
