/**
 * @file
 * Tests for the channel model (network/channel.h): latency,
 * bandwidth (period), FIFO order, and the credit lane.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "network/channel.h"

namespace fbfly
{
namespace
{

Flit
makeFlit(FlitId id)
{
    Flit f;
    f.id = id;
    f.head = f.tail = true;
    return f;
}

TEST(Channel, DeliversAfterLatency)
{
    Channel ch(3, 1);
    ch.sendFlit(makeFlit(1), 10);
    EXPECT_FALSE(ch.receiveFlit(11).has_value());
    EXPECT_FALSE(ch.receiveFlit(12).has_value());
    const auto f = ch.receiveFlit(13);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->id, 1u);
}

TEST(Channel, FifoOrder)
{
    Channel ch(1, 1);
    ch.sendFlit(makeFlit(1), 0);
    ch.sendFlit(makeFlit(2), 1);
    ch.sendFlit(makeFlit(3), 2);
    EXPECT_EQ(ch.receiveFlit(5)->id, 1u);
    EXPECT_EQ(ch.receiveFlit(5)->id, 2u);
    EXPECT_EQ(ch.receiveFlit(5)->id, 3u);
    EXPECT_FALSE(ch.receiveFlit(5).has_value());
}

TEST(Channel, BandwidthOneFlitPerCycle)
{
    Channel ch(1, 1);
    EXPECT_TRUE(ch.canSendFlit(0));
    ch.sendFlit(makeFlit(1), 0);
    EXPECT_FALSE(ch.canSendFlit(0));
    EXPECT_TRUE(ch.canSendFlit(1));
}

TEST(Channel, HalfBandwidthPeriodTwo)
{
    // The Figure 6 hypercube uses period-2 channels.
    Channel ch(1, 2);
    ch.sendFlit(makeFlit(1), 0);
    EXPECT_FALSE(ch.canSendFlit(1));
    EXPECT_TRUE(ch.canSendFlit(2));
    ch.sendFlit(makeFlit(2), 2);
    EXPECT_FALSE(ch.canSendFlit(3));
}

TEST(Channel, PipelinedDespiteLatency)
{
    // Latency does not reduce throughput: one flit can enter every
    // cycle even with a long pipe.
    Channel ch(5, 1);
    for (Cycle t = 0; t < 10; ++t) {
        EXPECT_TRUE(ch.canSendFlit(t));
        ch.sendFlit(makeFlit(t), t);
    }
    int received = 0;
    for (Cycle t = 5; t < 15; ++t) {
        while (ch.receiveFlit(t).has_value())
            ++received;
    }
    EXPECT_EQ(received, 10);
}

TEST(Channel, CreditLaneLatencyAndOrder)
{
    Channel ch(2, 1);
    ch.sendCredit(0, 0);
    ch.sendCredit(1, 0);
    EXPECT_FALSE(ch.receiveCredit(1).has_value());
    EXPECT_EQ(ch.receiveCredit(2).value(), 0);
    EXPECT_EQ(ch.receiveCredit(2).value(), 1);
    EXPECT_FALSE(ch.receiveCredit(2).has_value());
}

TEST(Channel, CreditsUnlimitedBandwidth)
{
    Channel ch(1, 1);
    for (int i = 0; i < 8; ++i)
        ch.sendCredit(i % 2, 0);
    int got = 0;
    while (ch.receiveCredit(1).has_value())
        ++got;
    EXPECT_EQ(got, 8);
}

TEST(Channel, FlitsInFlightTracking)
{
    Channel ch(4, 1);
    EXPECT_EQ(ch.flitsInFlight(), 0);
    ch.sendFlit(makeFlit(1), 0);
    ch.sendFlit(makeFlit(2), 1);
    EXPECT_EQ(ch.flitsInFlight(), 2);
    (void)ch.receiveFlit(4);
    EXPECT_EQ(ch.flitsInFlight(), 1);
}

// --- kill(): fail-stop semantics and edge cases -------------------

TEST(Channel, KillRefusesNewFlitsForever)
{
    Channel ch(2, 1);
    EXPECT_FALSE(ch.dead());
    EXPECT_TRUE(ch.canSendFlit(0));
    ch.kill();
    EXPECT_TRUE(ch.dead());
    for (Cycle t = 0; t < 5; ++t)
        EXPECT_FALSE(ch.canSendFlit(t)) << t;
}

TEST(Channel, KillDeliversInFlightFlitsAndCredits)
{
    // Fail-stop kills the *transmitter*; what is already on the wire
    // still arrives (the paper-world analogue: a cable pulled at the
    // source end does not vaporize photons already in flight).
    Channel ch(3, 1);
    ch.sendFlit(makeFlit(1), 0);
    ch.sendCredit(2, 0);
    ch.kill();
    const auto f = ch.receiveFlit(3);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->id, 1u);
    const auto c = ch.receiveCredit(3);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c.value(), 2);
    EXPECT_EQ(ch.flitsInFlight(), 0);
}

TEST(Channel, KillDropsAndCountsFutureCredits)
{
    Channel ch(1, 1);
    ch.sendCredit(0, 0);
    ch.kill();
    EXPECT_EQ(ch.creditsDropped(), 0u);
    ch.sendCredit(1, 1);
    ch.sendCredit(0, 2);
    ch.sendCredit(1, 3);
    EXPECT_EQ(ch.creditsDropped(), 3u);
    // Only the pre-kill credit arrives.
    EXPECT_EQ(ch.receiveCredit(10).value(), 0);
    EXPECT_FALSE(ch.receiveCredit(10).has_value());
    EXPECT_EQ(ch.creditsInFlightOnVc(1), 0);
}

TEST(ChannelDeath, SendOnDeadChannelPanics)
{
    Channel ch(1, 1);
    ch.kill();
    EXPECT_DEATH(ch.sendFlit(makeFlit(1), 0), "dead channel");
}

TEST(ChannelDeath, NonMonotonicSendPanics)
{
    // The channel is a FIFO wire: a send earlier than a previous
    // send would corrupt arrival order.
    Channel ch(1, 1);
    ch.sendFlit(makeFlit(1), 10);
    EXPECT_DEATH(ch.sendFlit(makeFlit(2), 5), "non-monotonic");
}

TEST(ChannelDeath, NonMonotonicReceivePanics)
{
    Channel ch(1, 1);
    (void)ch.receiveFlit(10);
    EXPECT_DEATH((void)ch.receiveFlit(9), "non-monotonic");
}

TEST(ChannelDeath, NonMonotonicCreditLanePanics)
{
    Channel ch(1, 1);
    ch.sendCredit(0, 10);
    EXPECT_DEATH(ch.sendCredit(0, 9), "non-monotonic");
    (void)ch.receiveCredit(10);
    EXPECT_DEATH((void)ch.receiveCredit(9), "non-monotonic");
}

TEST(ChannelDeath, BandwidthViolationPanics)
{
    Channel ch(1, 2);
    ch.sendFlit(makeFlit(1), 0);
    EXPECT_DEATH(ch.sendFlit(makeFlit(2), 1), "bandwidth");
}

TEST(ChannelDeath, ReliabilityAfterTrafficPanics)
{
    // The retry protocol numbers every flit from 0; enabling it
    // after unprotected traffic has flowed would desynchronize the
    // receiver.
    Channel ch(1, 1);
    ch.sendFlit(makeFlit(1), 0);
    EXPECT_DEATH(
        ch.enableReliability({true, 4, 8, 16}, {}, Rng(1)),
        "after traffic");
}

} // namespace
} // namespace fbfly
