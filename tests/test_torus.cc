/**
 * @file
 * Tests for the torus (k-ary n-cube) topology and its dateline
 * dimension-order routing — the low-radix baseline of the paper's
 * introduction.
 */

#include <gtest/gtest.h>

#include <set>

#include "harness/experiment.h"
#include "network/network.h"
#include "routing/torus_dor.h"
#include "routing/torus_valiant.h"
#include "topology/torus.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

TEST(Torus, Structure)
{
    Torus topo(4, 2);
    EXPECT_EQ(topo.numNodes(), 16);
    EXPECT_EQ(topo.numRouters(), 16);
    EXPECT_EQ(topo.numPorts(0), 5); // 2 per dim + terminal
    EXPECT_EQ(topo.arcs().size(), 16u * 4);
}

TEST(Torus, NeighborsWrapAround)
{
    Torus topo(4, 2);
    // Router 3 has digits (0,3): +1 in dim 0 wraps to digit 0.
    EXPECT_EQ(topo.neighbor(3, 0, true), 0);
    EXPECT_EQ(topo.neighbor(0, 0, false), 3);
    EXPECT_EQ(topo.neighbor(0, 1, false), 12);
    EXPECT_EQ(topo.neighbor(12, 1, true), 0);
}

TEST(Torus, MinimalHopsTakesShorterWay)
{
    Torus topo(8, 1);
    EXPECT_EQ(topo.minimalHops(0, 1), 1);
    EXPECT_EQ(topo.minimalHops(0, 4), 4);
    EXPECT_EQ(topo.minimalHops(0, 7), 1); // around the back
    Torus topo2(4, 3);
    EXPECT_EQ(topo2.minimalHops(0, 63), 3); // (3,3,3): 1 hop each
}

TEST(Torus, ArcsPairPlusWithMinus)
{
    Torus topo(4, 2);
    std::set<std::tuple<int, int, int, int>> seen;
    for (const auto &a : topo.arcs())
        seen.insert({a.src, a.srcPort, a.dst, a.dstPort});
    for (const auto &a : topo.arcs()) {
        // The reverse channel uses the opposite direction ports.
        EXPECT_TRUE(
            seen.count({a.dst, a.srcPort ^ 1, a.src, a.dstPort ^ 1}))
            << a.src << "->" << a.dst;
    }
}

TEST(TorusDor, AllPairsDeliverMinimally)
{
    Torus topo(4, 2);
    TorusDor algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    for (NodeId src = 0; src < 16; ++src) {
        for (NodeId dst = 0; dst < 16; ++dst) {
            if (src == dst)
                continue;
            Network net(topo, algo, nullptr, cfg);
            net.terminal(src).enqueuePacket(0, dst, true);
            for (int c = 0; c < 200 && !net.quiescent(); ++c)
                net.step();
            ASSERT_TRUE(net.quiescent())
                << src << " -> " << dst << " undelivered";
            EXPECT_EQ(net.stats().hops.mean(),
                      topo.minimalHops(src, dst) + 1)
                << src << " -> " << dst;
        }
    }
}

TEST(TorusDor, NoDeadlockUnderSaturation)
{
    // Wrap-around rings + full buffers: the dateline VCs must keep
    // the network live.
    Torus topo(4, 3);
    TorusDor algo(topo);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 2; // tight buffers stress the cycle
    Network net(topo, algo, &pattern, cfg);
    BernoulliInjection inj(1.0, 1, 9);
    std::uint64_t last = 0;
    for (int w = 0; w < 10; ++w) {
        for (int c = 0; c < 300; ++c) {
            inj.tick(net, false);
            net.step();
        }
        ASSERT_GT(net.stats().flitsEjected, last)
            << "stall in window " << w;
        last = net.stats().flitsEjected;
    }
}

TEST(TorusDor, TornadoUnderperformsOnTorus)
{
    // The classic torus weakness that motivated non-minimal routing
    // (GOAL, Valiant): tornado traffic drives DOR to ~k/(2(k-1)) of
    // the ring bandwidth in one direction.  It should saturate well
    // below uniform random.
    Torus topo(8, 1);
    TorusDor algo(topo);
    GroupTornado tornado(topo.numNodes(), 1);
    UniformRandom ur(topo.numNodes());
    ExperimentConfig e;
    e.warmupCycles = 400;
    e.measureCycles = 400;
    e.drainCycles = 1000;
    NetworkConfig cfg;
    // Offer a load the ring can carry under UR (its cap is ~0.7;
    // tornado's is 2/k = 0.25 because DOR sends the whole pattern
    // the same way around).
    const double t_tornado =
        runLoadPoint(topo, algo, tornado, cfg, e, 0.6).accepted;
    const double t_ur =
        runLoadPoint(topo, algo, ur, cfg, e, 0.6).accepted;
    EXPECT_LT(t_tornado, 0.35);
    EXPECT_GT(t_ur, 0.55);
}

TEST(TorusValiant, AllPairsDeliverWithinTwoPhases)
{
    Torus topo(4, 2);
    TorusValiant algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, nullptr, cfg);
    std::uint64_t sent = 0;
    for (NodeId src = 0; src < 16; ++src) {
        for (NodeId dst = 0; dst < 16; ++dst) {
            if (src == dst)
                continue;
            net.terminal(src).enqueuePacket(net.now(), dst, true);
            ++sent;
        }
        for (int c = 0; c < 80 && !net.quiescent(); ++c)
            net.step();
    }
    for (int c = 0; c < 2000 && !net.quiescent(); ++c)
        net.step();
    ASSERT_TRUE(net.quiescent());
    EXPECT_EQ(net.stats().measuredEjected, sent);
    // Two minimal phases + ejection: at most 2 * (2 dims * k/2) + 1.
    EXPECT_LE(net.stats().hops.max(), 2 * 2 * 2 + 1);
}

TEST(TorusValiant, NoDeadlockUnderSaturation)
{
    Torus topo(4, 2);
    TorusValiant algo(topo);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 2;
    Network net(topo, algo, &pattern, cfg);
    BernoulliInjection inj(1.0, 1, 21);
    std::uint64_t last = 0;
    for (int w = 0; w < 8; ++w) {
        for (int c = 0; c < 300; ++c) {
            inj.tick(net, false);
            net.step();
        }
        ASSERT_GT(net.stats().flitsEjected, last);
        last = net.stats().flitsEjected;
    }
}

TEST(TorusValiant, FixesTornadoAtValiantCost)
{
    // The Section 6 lineage: on the ring, tornado caps DOR at
    // ~2/k = 0.25, while Valiant (cap ~0.4 on the 8-ring after the
    // distance-4 tie bias) carries loads DOR cannot.  Offered 0.35
    // sits between the two caps.
    Torus topo(8, 1);
    GroupTornado tornado(topo.numNodes(), 1);
    ExperimentConfig e;
    e.warmupCycles = 400;
    e.measureCycles = 400;
    e.drainCycles = 1000;

    TorusDor dor(topo);
    NetworkConfig d_cfg;
    d_cfg.vcDepth = 32 / dor.numVcs();
    const double t_dor =
        runLoadPoint(topo, dor, tornado, d_cfg, e, 0.35).accepted;

    TorusValiant val(topo);
    NetworkConfig v_cfg;
    v_cfg.vcDepth = 32 / val.numVcs();
    const double t_val =
        runLoadPoint(topo, val, tornado, v_cfg, e, 0.35).accepted;

    EXPECT_LT(t_dor, 0.30);
    EXPECT_GT(t_val, 0.33);
}

TEST(Torus, ComparedToFbflyLatency)
{
    // The introduction's point: at equal node count the low-radix
    // torus has far higher hop count (and latency) than the
    // high-radix flattened butterfly.
    Torus torus(8, 2); // 64 nodes, diameter 8
    TorusDor t_algo(torus);
    UniformRandom ur(64);
    ExperimentConfig e;
    e.warmupCycles = 300;
    e.measureCycles = 300;
    e.drainCycles = 800;
    NetworkConfig cfg;
    const auto torus_r =
        runLoadPoint(torus, t_algo, ur, cfg, e, 0.2);
    // Average inter-router hops on an 8x8 torus is 4; the 8-ary
    // 2-flat needs at most 1.
    EXPECT_GT(torus_r.avgHops, 4.0);
}

} // namespace
} // namespace fbfly
