/**
 * @file
 * Dragonfly topology + routing tests (topology/dragonfly.h,
 * routing/dragonfly_routing.h): structure vs closed form, BFS-backed
 * diameter/minimal-hop ground truth, global-wiring consistency,
 * conservation under all-pairs delivery, and deadlock freedom of the
 * VC-dated scheme under saturating uniform and adversarial loads —
 * both raw windowed progress and a liveness-audited load point.
 */

#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.h"
#include "network/network.h"
#include "routing/dragonfly_routing.h"
#include "topo_test_util.h"
#include "topology/dragonfly.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

TEST(DragonflyStructure, CountsMatchClosedForm)
{
    const struct
    {
        int p, a, h;
    } cases[] = {{1, 2, 1}, {2, 4, 2}, {4, 4, 2}, {2, 6, 3}};
    for (const auto &c : cases) {
        Dragonfly topo(c.p, c.a, c.h);
        const int g = c.a * c.h + 1;
        EXPECT_EQ(topo.g(), g);
        EXPECT_EQ(topo.numRouters(), c.a * g);
        EXPECT_EQ(topo.numNodes(),
                  static_cast<std::int64_t>(c.p) * c.a * g);
        EXPECT_EQ(topo.radix(), c.p + (c.a - 1) + c.h);
        for (RouterId r = 0; r < topo.numRouters(); ++r)
            EXPECT_EQ(topo.numPorts(r), topo.radix());
        // One arc per network port: a-1 local + h global each.
        EXPECT_EQ(static_cast<int>(topo.arcs().size()),
                  topo.numRouters() * (c.a - 1 + c.h));
    }
}

TEST(DragonflyStructure, ArcsAreSymmetricAndPortConsistent)
{
    Dragonfly topo(2, 4, 2);
    topotest::expectSymmetricArcs(topo);
}

TEST(DragonflyStructure, GlobalWiringIsConsistent)
{
    Dragonfly topo(2, 4, 2);
    // Forward map and inverse agree: following router r's global
    // port j to group D, group D's notion of the G<->D link lands
    // back on (r, port j).
    for (RouterId r = 0; r < topo.numRouters(); ++r) {
        const int G = topo.groupOf(r);
        for (int j = 0; j < topo.h(); ++j) {
            const int D = topo.globalTarget(r, j);
            ASSERT_NE(D, G);
            ASSERT_GE(D, 0);
            ASSERT_LT(D, topo.g());
            EXPECT_EQ(topo.globalRouter(G, D), r);
            EXPECT_EQ(topo.globalPort(G, D),
                      topo.p() + (topo.a() - 1) + j);
        }
    }
    // Exactly one bidirectional global channel per group pair.
    int global_arcs = 0;
    for (const Topology::Arc &a : topo.arcs()) {
        if (topo.groupOf(a.src) != topo.groupOf(a.dst)) {
            ++global_arcs;
            EXPECT_EQ(a.src,
                      topo.globalRouter(topo.groupOf(a.src),
                                        topo.groupOf(a.dst)));
            EXPECT_EQ(a.dst,
                      topo.globalRouter(topo.groupOf(a.dst),
                                        topo.groupOf(a.src)));
        }
    }
    EXPECT_EQ(global_arcs, topo.g() * (topo.g() - 1));
}

TEST(DragonflyStructure, BfsBoundsCanonicalMinimalRoutes)
{
    // minimalHops() is the canonical local->global->local route the
    // routing algorithms take — a real path, so it upper-bounds the
    // BFS distance.  With h > 1 some cross-group pairs also have a
    // 2-hop global+global shortcut through a third group (both ends
    // gateway to the same hub router), so BFS can be strictly
    // shorter; it matches exactly whenever the pair is closer than
    // the full 3-hop worst case.
    Dragonfly topo(2, 4, 2);
    const auto dist = topotest::allPairsDistances(topo);
    int diameter = 0;
    int canonical_max = 0;
    for (RouterId r1 = 0; r1 < topo.numRouters(); ++r1) {
        for (RouterId r2 = 0; r2 < topo.numRouters(); ++r2) {
            ASSERT_GE(dist[r1][r2], 0) << "disconnected";
            const int canonical = topo.minimalHops(r1, r2);
            EXPECT_LE(dist[r1][r2], canonical) << r1 << "->" << r2;
            EXPECT_LE(canonical, 3);
            // Adjacency and same-group cases are exact: shortcuts
            // only shave the 3-hop canonical routes down to 2.
            if (canonical <= 2 || dist[r1][r2] <= 1)
                EXPECT_EQ(dist[r1][r2], canonical)
                    << r1 << " -> " << r2;
            diameter = std::max(diameter, dist[r1][r2]);
            canonical_max = std::max(canonical_max, canonical);
        }
    }
    EXPECT_EQ(diameter, 3);
    EXPECT_EQ(canonical_max, 3);
}

TEST(DragonflyMinimal, AllPairsDeliverWithinMinimalBound)
{
    Dragonfly topo(2, 4, 2); // 72 nodes, 36 routers
    DragonflyMinimal algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, nullptr, cfg);
    std::uint64_t sent = 0;
    for (NodeId src = 0; src < topo.numNodes(); ++src) {
        for (NodeId dst = 0; dst < topo.numNodes(); ++dst) {
            if (src == dst)
                continue;
            net.terminal(src).enqueuePacket(net.now(), dst, true);
            ++sent;
        }
    }
    for (int c = 0; c < 60000 && !net.quiescent(); ++c)
        net.step();
    ASSERT_TRUE(net.quiescent()) << "undelivered packets";
    EXPECT_EQ(net.stats().measuredEjected, sent);
    EXPECT_EQ(net.stats().flitsInjected, net.stats().flitsEjected);
    // Diameter 3 + ejection.
    EXPECT_LE(net.stats().hops.max(), 4);
}

TEST(DragonflyMinimal, NoDeadlockUnderSaturation)
{
    // Full buffers at offered load 1.0: the 3-VC date scheme must
    // keep the local->global->local chains live.
    Dragonfly topo(2, 4, 2);
    DragonflyMinimal algo(topo);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 2; // tight buffers stress the dependency chain
    Network net(topo, algo, &pattern, cfg);
    BernoulliInjection inj(1.0, 1, 11);
    std::uint64_t last = 0;
    for (int w = 0; w < 8; ++w) {
        for (int c = 0; c < 300; ++c) {
            inj.tick(net, false);
            net.step();
        }
        ASSERT_GT(net.stats().flitsEjected, last)
            << "stall in window " << w;
        last = net.stats().flitsEjected;
    }
}

TEST(DragonflyUgal, NoDeadlockUnderSaturatedAdversarial)
{
    // Neighbor-group traffic funnels every group's load through one
    // global channel; UGAL's Valiant detours add the two extra VC
    // dates the 5-VC scheme exists for.
    Dragonfly topo(2, 4, 2);
    DragonflyUgal algo(topo);
    AdversarialNeighbor pattern(topo.numNodes(),
                                topo.p() * topo.a());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 2;
    Network net(topo, algo, &pattern, cfg);
    BernoulliInjection inj(1.0, 1, 13);
    std::uint64_t last = 0;
    for (int w = 0; w < 8; ++w) {
        for (int c = 0; c < 300; ++c) {
            inj.tick(net, false);
            net.step();
        }
        ASSERT_GT(net.stats().flitsEjected, last)
            << "stall in window " << w;
        last = net.stats().flitsEjected;
    }
}

TEST(DragonflyUgal, NoDeadlockUnderSaturatingLoadPoint)
{
    // The liveness subsystem audits the same claim end-to-end: a
    // saturating load point must end kDelivered/kSaturated — never
    // kStalled with a kDeadlock diagnosis — with zero recoveries
    // and a clean delivery audit.
    Dragonfly topo(2, 4, 2);
    DragonflyUgal algo(topo);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig cfg;
    cfg.vcDepth = 2;
    ExperimentConfig e;
    e.warmupCycles = 300;
    e.measureCycles = 300;
    e.drainCycles = 4000;
    e.liveness.samplePeriod = 200; // diagnose early, not just on
                                   // watchdog fire
    const LoadPointResult r =
        runLoadPoint(topo, algo, pattern, cfg, e, 0.95);
    EXPECT_TRUE(r.status == LoadPointStatus::kDelivered ||
                r.status == LoadPointStatus::kSaturated)
        << toString(r.status) << "\n"
        << r.diagnostics;
    EXPECT_EQ(r.recoveries, 0);
    EXPECT_TRUE(r.liveness.empty()) << r.liveness;
    ASSERT_TRUE(r.deliveryChecked);
    EXPECT_EQ(r.delivery.dropped, 0u);
    EXPECT_EQ(r.delivery.duplicates, 0u);
    EXPECT_EQ(r.delivery.corruptions, 0u);
}

} // namespace
} // namespace fbfly
