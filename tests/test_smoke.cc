/**
 * @file
 * End-to-end smoke test: a small flattened butterfly delivers uniform
 * random traffic with sane latency.
 */

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "routing/min_adaptive.h"
#include "topology/flattened_butterfly.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

TEST(Smoke, SmallFbflyDeliversUniformTraffic)
{
    FlattenedButterfly topo(4, 2); // 16 nodes, 4 routers
    MinAdaptive algo(topo);
    UniformRandom pattern(topo.numNodes());

    NetworkConfig netcfg;
    netcfg.vcDepth = 32;

    ExperimentConfig expcfg;
    expcfg.warmupCycles = 200;
    expcfg.measureCycles = 500;
    expcfg.drainCycles = 5000;

    const LoadPointResult r =
        runLoadPoint(topo, algo, pattern, netcfg, expcfg, 0.3);
    EXPECT_FALSE(r.saturated);
    EXPECT_GT(r.measuredPackets, 0u);
    EXPECT_NEAR(r.accepted, 0.3, 0.05);
    EXPECT_GT(r.avgLatency, 3.0);
    EXPECT_LT(r.avgLatency, 60.0);
}

} // namespace
} // namespace fbfly
