/**
 * @file
 * Tests for traffic patterns and injection processes.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "network/network.h"
#include "routing/min_adaptive.h"
#include "topology/flattened_butterfly.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

TEST(UniformRandom, ExcludesSelfAndStaysInRange)
{
    UniformRandom pattern(64);
    Rng rng(1);
    for (NodeId src = 0; src < 64; ++src) {
        for (int i = 0; i < 50; ++i) {
            const NodeId d = pattern.dest(src, rng);
            EXPECT_NE(d, src);
            EXPECT_GE(d, 0);
            EXPECT_LT(d, 64);
        }
    }
}

TEST(UniformRandom, CoversAllDestinations)
{
    UniformRandom pattern(16);
    Rng rng(2);
    std::set<NodeId> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(pattern.dest(0, rng));
    EXPECT_EQ(seen.size(), 15u); // everything but the source
}

TEST(AdversarialNeighbor, TargetsNextGroup)
{
    // The paper's worst case: nodes of router R_i -> random node of
    // R_{i+1}.
    AdversarialNeighbor pattern(1024, 32);
    Rng rng(3);
    for (const NodeId src : {0, 31, 32, 500, 1023}) {
        for (int i = 0; i < 20; ++i) {
            const NodeId d = pattern.dest(src, rng);
            const int src_group = src / 32;
            const int dst_group = d / 32;
            EXPECT_EQ(dst_group, (src_group + 1) % 32);
        }
    }
}

TEST(AdversarialNeighbor, WrapsAround)
{
    AdversarialNeighbor pattern(64, 16);
    Rng rng(4);
    const NodeId d = pattern.dest(60, rng); // last group -> group 0
    EXPECT_LT(d, 16);
}

TEST(AdversarialNeighbor, CoversWholeTargetGroup)
{
    AdversarialNeighbor pattern(64, 8);
    Rng rng(5);
    std::set<NodeId> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(pattern.dest(0, rng));
    EXPECT_EQ(seen.size(), 8u);
    for (const NodeId d : seen) {
        EXPECT_GE(d, 8);
        EXPECT_LT(d, 16);
    }
}

TEST(BitComplement, IsInvolution)
{
    BitComplement pattern(256);
    Rng rng(6);
    for (NodeId n = 0; n < 256; ++n) {
        const NodeId d = pattern.dest(n, rng);
        EXPECT_EQ(d, 255 - n);
        EXPECT_EQ(pattern.dest(d, rng), n);
    }
}

TEST(Transpose, SwapsAddressHalves)
{
    Transpose pattern(256); // 8 bits
    Rng rng(7);
    EXPECT_EQ(pattern.dest(0x01, rng), 0x10);
    EXPECT_EQ(pattern.dest(0xA3, rng), 0x3A);
    for (NodeId n = 0; n < 256; ++n)
        EXPECT_EQ(pattern.dest(pattern.dest(n, rng), rng), n);
}

TEST(GroupTornado, TargetsOppositeGroup)
{
    GroupTornado pattern(64, 8); // 8 groups
    Rng rng(8);
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(pattern.dest(0, rng) / 8, 4);
        EXPECT_EQ(pattern.dest(40, rng) / 8, 1);
    }
}

TEST(RandomPermutation, IsABijection)
{
    RandomPermutation pattern(128, 99);
    Rng rng(9);
    std::set<NodeId> seen;
    for (NodeId n = 0; n < 128; ++n)
        seen.insert(pattern.dest(n, rng));
    EXPECT_EQ(seen.size(), 128u);
}

TEST(RandomPermutation, StableForSeed)
{
    RandomPermutation a(64, 5);
    RandomPermutation b(64, 5);
    RandomPermutation c(64, 6);
    Rng rng(10);
    int diff = 0;
    for (NodeId n = 0; n < 64; ++n) {
        EXPECT_EQ(a.dest(n, rng), b.dest(n, rng));
        diff += a.dest(n, rng) != c.dest(n, rng) ? 1 : 0;
    }
    EXPECT_GT(diff, 32);
}

TEST(BernoulliInjection, MatchesOfferedLoad)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, &pattern, cfg);

    BernoulliInjection inj(0.25, 1, 42);
    std::int64_t offered = 0;
    const int cycles = 4000;
    for (int c = 0; c < cycles; ++c) {
        const std::int64_t before = net.stats().pendingPackets;
        inj.tick(net, false);
        offered += net.stats().pendingPackets - before;
        net.step();
    }
    const double rate = static_cast<double>(offered) /
                        (static_cast<double>(cycles) *
                         topo.numNodes());
    EXPECT_NEAR(rate, 0.25, 0.01);
}

TEST(BernoulliInjection, AccountsForPacketSize)
{
    // offered load is in flits/node/cycle, so 4-flit packets are
    // generated at a quarter of the packet rate.
    EXPECT_NEAR(BernoulliInjection(0.8, 4, 1).offeredLoad(), 0.8,
                1e-12);
}

TEST(LoadBatch, EnqueuesExactCounts)
{
    FlattenedButterfly topo(4, 2);
    MinAdaptive algo(topo);
    UniformRandom pattern(topo.numNodes());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, &pattern, cfg);

    loadBatch(net, 7, true);
    EXPECT_EQ(net.stats().pendingPackets,
              7 * topo.numNodes());
    EXPECT_EQ(net.stats().measuredCreated,
              static_cast<std::uint64_t>(7 * topo.numNodes()));
}

} // namespace
} // namespace fbfly
