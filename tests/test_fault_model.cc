/**
 * @file
 * FaultModel tests: liveness queries, time-triggered activation,
 * router failures, deterministic random draws, and connectivity
 * analysis.
 */

#include <gtest/gtest.h>

#include "fault/fault_model.h"
#include "topology/flattened_butterfly.h"
#include "topology/generalized_hypercube.h"

namespace fbfly
{
namespace
{

/** Arc index of the directed channel a -> b (kNoArc if absent). */
constexpr std::size_t kNoArc = static_cast<std::size_t>(-1);

std::size_t
arcIndexOf(const FaultModel &fm, RouterId a, RouterId b)
{
    const auto &arcs = fm.arcs();
    for (std::size_t i = 0; i < arcs.size(); ++i) {
        if (arcs[i].src == a && arcs[i].dst == b)
            return i;
    }
    return kNoArc;
}

TEST(FaultModel, FreshModelHasNoFaults)
{
    FlattenedButterfly topo(4, 2); // 4 routers, K4, 12 arcs
    FaultModel fm(topo);
    EXPECT_FALSE(fm.anyFaults());
    EXPECT_TRUE(fm.connected());
    EXPECT_EQ(fm.numArcs(), topo.arcs().size());
    for (std::size_t i = 0; i < fm.numArcs(); ++i) {
        EXPECT_TRUE(fm.arcAlive(i, 0));
        EXPECT_EQ(fm.arcFailCycle(i), FaultModel::kNever);
    }
    EXPECT_EQ(fm.failedArcCount(1000000), 0);
}

TEST(FaultModel, FailLinkBetweenKillsBothDirections)
{
    FlattenedButterfly topo(4, 2);
    FaultModel fm(topo);
    EXPECT_EQ(fm.failLinkBetween(0, 1), 2);
    EXPECT_TRUE(fm.anyFaults());
    EXPECT_EQ(fm.failedArcCount(0), 2);

    const std::size_t fwd = arcIndexOf(fm, 0, 1);
    const std::size_t rev = arcIndexOf(fm, 1, 0);
    ASSERT_NE(fwd, kNoArc);
    ASSERT_NE(rev, kNoArc);
    EXPECT_FALSE(fm.arcAlive(fwd, 0));
    EXPECT_FALSE(fm.arcAlive(rev, 0));
    // Unrelated arcs stay up; K4 minus one edge stays connected.
    EXPECT_TRUE(fm.arcAlive(arcIndexOf(fm, 0, 2), 0));
    EXPECT_TRUE(fm.connected());

    // Non-adjacent pair: nothing to fail.
    GeneralizedHypercube ghc({4, 4});
    FaultModel gfm(ghc);
    EXPECT_EQ(gfm.failLinkBetween(0, 5), 0); // differ in both dims
}

TEST(FaultModel, TimeTriggeredActivation)
{
    FlattenedButterfly topo(4, 2);
    FaultModel fm(topo);
    fm.failArc(3, 100);
    EXPECT_TRUE(fm.arcAlive(3, 0));
    EXPECT_TRUE(fm.arcAlive(3, 99));
    EXPECT_FALSE(fm.arcAlive(3, 100));
    EXPECT_EQ(fm.arcFailCycle(3), 100);
    EXPECT_EQ(fm.failedArcCount(99), 0);
    EXPECT_EQ(fm.failedArcCount(100), 1);

    // The earlier of repeated failures wins.
    fm.failArc(3, 200);
    EXPECT_EQ(fm.arcFailCycle(3), 100);
    fm.failArc(3, 50);
    EXPECT_EQ(fm.arcFailCycle(3), 50);
}

TEST(FaultModel, RouterFailureKillsIncidentArcs)
{
    FlattenedButterfly topo(4, 2);
    FaultModel fm(topo);
    fm.failRouter(2, 10);
    EXPECT_TRUE(fm.routerAlive(2, 9));
    EXPECT_FALSE(fm.routerAlive(2, 10));
    for (std::size_t i = 0; i < fm.numArcs(); ++i) {
        const auto &a = fm.arcs()[i];
        if (a.src == 2 || a.dst == 2) {
            EXPECT_EQ(fm.arcFailCycle(i), 10) << i;
        } else {
            EXPECT_EQ(fm.arcFailCycle(i), FaultModel::kNever) << i;
        }
    }
    // A dead terminal-hosting router disconnects its terminals.
    EXPECT_FALSE(fm.connected());
}

TEST(FaultModel, IsolatingFaultSetReportedDeterministically)
{
    // Cutting every link of router 0 isolates its terminals; the
    // model reports it identically on every construction.
    for (int rep = 0; rep < 2; ++rep) {
        FlattenedButterfly topo(4, 2);
        FaultModel fm(topo);
        for (RouterId r = 1; r < 4; ++r)
            EXPECT_EQ(fm.failLinkBetween(0, r), 2);
        EXPECT_FALSE(fm.connected());
        EXPECT_EQ(fm.failedArcCount(0), 6);
    }
}

TEST(FaultModel, RandomDrawIsDeterministic)
{
    FlattenedButterfly topo(8, 2); // 8 routers, K8, 56 arcs
    FaultModel a(topo);
    FaultModel b(topo);
    EXPECT_EQ(a.failRandomLinks(5, 42), 5);
    EXPECT_EQ(b.failRandomLinks(5, 42), 5);
    for (std::size_t i = 0; i < a.numArcs(); ++i)
        EXPECT_EQ(a.arcFailCycle(i), b.arcFailCycle(i)) << i;
    EXPECT_EQ(a.failedArcCount(0), 10); // 5 links, both directions

    // A different seed gives a different set (with 28 choose 5
    // possibilities a collision would be a miracle).
    FaultModel c(topo);
    EXPECT_EQ(c.failRandomLinks(5, 43), 5);
    bool same = true;
    for (std::size_t i = 0; i < a.numArcs(); ++i)
        same = same && a.arcFailCycle(i) == c.arcFailCycle(i);
    EXPECT_FALSE(same);
}

TEST(FaultModel, FailRandomLinksShortfall)
{
    // The 2-ary 2-flat's single inter-router link is a cut edge:
    // connectivity-preserving pruning can fail nothing at all, and
    // the return value must say so (the caller labels results by the
    // effective count — the shortfall contract).
    FlattenedButterfly tiny(2, 2);
    FaultModel fm(tiny);
    EXPECT_EQ(static_cast<int>(fm.numArcs()) / 2, 1);
    EXPECT_EQ(fm.failRandomLinks(1, 5, 0, true), 0);
    EXPECT_FALSE(fm.anyFaults());
    EXPECT_TRUE(fm.connected());

    // Richer topology, excessive request: the draw stops when every
    // remaining link is critical, strictly short of the request, and
    // the network stays connected.
    FlattenedButterfly topo(8, 2); // K8: 28 bidirectional links
    FaultModel big(topo);
    const int failed = big.failRandomLinks(28, 5, 0, true);
    EXPECT_LT(failed, 28);
    EXPECT_GT(failed, 0);
    EXPECT_TRUE(big.connected());
    // The effective count matches the arcs actually failed.
    EXPECT_EQ(big.failedArcCount(0), 2 * failed);
}

TEST(FaultModel, RandomDrawPreservesConnectivity)
{
    FlattenedButterfly topo(4, 2); // K4: 6 links, spanning needs 3
    FaultModel fm(topo);
    // Ask for everything; connectivity pruning must refuse enough
    // links to keep all terminal routers mutually reachable.
    const int failed = fm.failRandomLinks(6, 7, 0, true);
    EXPECT_LT(failed, 6);
    EXPECT_TRUE(fm.connected());

    // Without pruning the full request is honored.
    FaultModel raw(topo);
    EXPECT_EQ(raw.failRandomLinks(6, 7, 0, false), 6);
    EXPECT_FALSE(raw.connected());
}

} // namespace
} // namespace fbfly
