/**
 * @file
 * Design-space search tests (harness/design_search.h):
 *
 *  - enumeration is deterministic and stable across calls;
 *  - the full search (enumerate -> prune -> parallel sweep ->
 *    frontier -> JSON) emits a byte-identical document at --threads
 *    1 vs 4 and --shards 1 vs 8 — the fbfly-pareto-v1 determinism
 *    contract;
 *  - the emitted document validates against the checked-in
 *    tests/data/fbfly-pareto-v1.schema.json, never serializes NaN,
 *    and carries no stringly-typed numbers in its metadata;
 *  - pruning is sound: budget violators are pruned with the right
 *    reason, surviving candidates dominate no one and respect the
 *    terminal range, the frontier is strictly improving.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <string>

#include "harness/design_search.h"
#include "json_test_util.h"

namespace fbfly
{
namespace
{

#ifndef FBFLY_TEST_DATA_DIR
#error "FBFLY_TEST_DATA_DIR must be defined by the build"
#endif

using testjson::Json;
using testjson::JsonParser;
using testjson::validate;

/** A small spec that still exercises several families (including
 *  dragonfly) in a few seconds of simulation. */
DesignSpec
smallSpec()
{
    DesignSpec spec;
    spec.minTerminals = 12;
    spec.maxTerminalFactor = 3.0; // terminals in [12, 36]
    spec.loads = {0.2, 0.9};
    spec.expcfg.warmupCycles = 200;
    spec.expcfg.measureCycles = 200;
    spec.expcfg.drainCycles = 4000;
    spec.expcfg.seed = 7;
    return spec;
}

TEST(DesignSearch, EnumerationOrderIsStableAcrossRuns)
{
    const DesignSpec spec = smallSpec();
    const auto a = enumerateDesignCandidates(spec);
    const auto b = enumerateDesignCandidates(spec);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].topoSpec, b[i].topoSpec) << i;
        EXPECT_EQ(a[i].routing, b[i].routing) << i;
        EXPECT_EQ(a[i].channelPeriod, b[i].channelPeriod) << i;
        EXPECT_EQ(a[i].vcDepth, b[i].vcDepth) << i;
        EXPECT_EQ(a[i].pruned, b[i].pruned) << i;
        EXPECT_EQ(a[i].pruneReason, b[i].pruneReason) << i;
        // Analytic fields are pure functions of the parameters:
        // exact equality, not approximate.
        EXPECT_EQ(a[i].avgMinHops, b[i].avgMinHops) << i;
        EXPECT_EQ(a[i].throughputBound, b[i].throughputBound) << i;
        EXPECT_EQ(a[i].costDollars, b[i].costDollars) << i;
        EXPECT_EQ(a[i].powerWatts, b[i].powerWatts) << i;
    }
}

TEST(DesignSearch, EnumerationRespectsTerminalRangeAndStructure)
{
    const DesignSpec spec = smallSpec();
    const auto cands = enumerateDesignCandidates(spec);
    ASSERT_FALSE(cands.empty());
    std::set<std::string> families;
    for (const auto &c : cands) {
        families.insert(toString(c.family));
        EXPECT_GE(c.terminals, spec.minTerminals) << c.topoSpec;
        EXPECT_LE(static_cast<double>(c.terminals),
                  spec.minTerminals * spec.maxTerminalFactor)
            << c.topoSpec;
        EXPECT_GT(c.routers, 0) << c.topoSpec;
        EXPECT_GT(c.radix, 0) << c.topoSpec;
        EXPECT_GT(c.diameter, 0) << c.topoSpec;
        EXPECT_GT(c.avgMinHops, 0.0) << c.topoSpec;
        EXPECT_LE(c.avgMinHops, c.diameter) << c.topoSpec;
        EXPECT_GT(c.channels, 0) << c.topoSpec;
        EXPECT_GT(c.bisectionArcs, 0) << c.topoSpec;
        EXPECT_GT(c.throughputBound, 0.0) << c.topoSpec;
        EXPECT_LE(c.throughputBound, 1.0) << c.topoSpec;
        EXPECT_GT(c.costDollars, 0.0) << c.topoSpec;
        EXPECT_GT(c.powerWatts, 0.0) << c.topoSpec;
        EXPECT_GT(c.numVcs, 0) << c.topoSpec;
        if (c.pruned) {
            EXPECT_TRUE(c.pruneReason == "cost-budget" ||
                        c.pruneReason == "power-budget" ||
                        c.pruneReason == "buffer-budget" ||
                        c.pruneReason == "dominated")
                << c.topoSpec << ": " << c.pruneReason;
        } else {
            EXPECT_TRUE(c.pruneReason.empty());
        }
    }
    // The [12, 36] window covers at least the paper's families plus
    // the dragonfly (12 terminals at p=2, a=2, h=1).
    EXPECT_TRUE(families.count("fbfly"));
    EXPECT_TRUE(families.count("clos"));
    EXPECT_TRUE(families.count("hypercube"));
    EXPECT_TRUE(families.count("ghc"));
    EXPECT_TRUE(families.count("dragonfly"));
}

TEST(DesignSearch, BudgetPruningUsesBudgetReasons)
{
    DesignSpec spec = smallSpec();
    // A cost ceiling low enough that something (the GHC at least)
    // must be cut, high enough that something survives.
    spec.maxCostPerTerminal = 150.0;
    const auto cands = enumerateDesignCandidates(spec);
    bool pruned_cost = false, survived = false;
    for (const auto &c : cands) {
        if (c.costPerTerminal > spec.maxCostPerTerminal) {
            EXPECT_TRUE(c.pruned) << c.topoSpec;
            EXPECT_EQ(c.pruneReason, "cost-budget") << c.topoSpec;
            pruned_cost = true;
        }
        if (!c.pruned) {
            EXPECT_LE(c.costPerTerminal, spec.maxCostPerTerminal);
            survived = true;
        }
    }
    EXPECT_TRUE(pruned_cost);
    EXPECT_TRUE(survived);
}

/** The tentpole contract: the emitted fbfly-pareto-v1 document is
 *  bit-identical for every --threads / --shards combination. */
TEST(DesignSearch, DocumentBitIdenticalAcrossThreadsAndShards)
{
    const DesignSpec spec = smallSpec();
    SweepConfig cfg1;
    cfg1.threads = 1;
    cfg1.masterSeed = 2007;
    const DesignSearchResult r1 = runDesignSearch(spec, cfg1);
    const std::string doc1 =
        designSearchToJson(spec, r1, cfg1.masterSeed, "test");

    SweepConfig cfg4 = cfg1;
    cfg4.threads = 4;
    const DesignSearchResult r4 = runDesignSearch(spec, cfg4);
    const std::string doc4 =
        designSearchToJson(spec, r4, cfg4.masterSeed, "test");
    EXPECT_EQ(doc1, doc4) << "threads 1 vs 4 changed the document";

    DesignSpec sharded = spec;
    sharded.shards = 8;
    const DesignSearchResult r8 = runDesignSearch(sharded, cfg4);
    const std::string doc8 =
        designSearchToJson(sharded, r8, cfg4.masterSeed, "test");
    EXPECT_EQ(doc1, doc8) << "shards 1 vs 8 changed the document";
}

TEST(DesignSearch, DocumentValidatesAgainstCheckedInSchema)
{
    const DesignSpec spec = smallSpec();
    SweepConfig cfg;
    cfg.threads = 2;
    cfg.masterSeed = 2007;
    const DesignSearchResult result = runDesignSearch(spec, cfg);
    const std::string doc =
        designSearchToJson(spec, result, cfg.masterSeed,
                           "design_search");

    // No bare NaN/inf tokens anywhere (the writer emits null).
    EXPECT_EQ(doc.find("nan"), std::string::npos);
    EXPECT_EQ(doc.find("inf"), std::string::npos);

    JsonParser parser(doc);
    const Json root = parser.parse();
    const Json schema = testjson::loadSchema(
        FBFLY_TEST_DATA_DIR, "fbfly-pareto-v1.schema.json");
    ASSERT_EQ(schema.type, Json::Type::kObject);
    validate(root, schema, "$");

    // Determinism contract: no run-dependent fields anywhere.
    EXPECT_EQ(root.find("threads"), nullptr);
    EXPECT_EQ(doc.find("wall_seconds"), std::string::npos);
    EXPECT_EQ(doc.find("shards"), std::string::npos);

    // Metadata numbers are numbers, and no metadata string is a
    // number in disguise.
    const Json *metadata = root.find("metadata");
    ASSERT_NE(metadata, nullptr);
    EXPECT_EQ(metadata->find("survivors_swept")->type,
              Json::Type::kNumber);
    for (const auto &[key, value] : metadata->members) {
        if (value.type != Json::Type::kString || value.str.empty())
            continue;
        char *end = nullptr;
        std::strtod(value.str.c_str(), &end);
        EXPECT_NE(end, value.str.c_str() + value.str.size())
            << "metadata key \"" << key
            << "\" holds the numeric string \"" << value.str << "\"";
    }

    // Cross-references resolve and counts agree.
    const Json *cands = root.find("candidates");
    const Json *points = root.find("points");
    const Json *frontier = root.find("frontier");
    ASSERT_NE(cands, nullptr);
    ASSERT_NE(points, nullptr);
    ASSERT_NE(frontier, nullptr);
    EXPECT_EQ(cands->elems.size(),
              metadata->find("candidates_enumerated")->number);
    EXPECT_EQ(points->elems.size(),
              metadata->find("survivors_swept")->number);
    EXPECT_EQ(frontier->elems.size(),
              metadata->find("frontier_size")->number);
    for (const Json &pt : points->elems) {
        const auto ci =
            static_cast<std::size_t>(pt.find("candidate")->number);
        ASSERT_LT(ci, cands->elems.size());
        EXPECT_FALSE(cands->elems[ci].find("pruned")->boolean)
            << "swept point references a pruned candidate";
    }
}

TEST(DesignSearch, FrontierIsStrictlyImproving)
{
    const DesignSpec spec = smallSpec();
    SweepConfig cfg;
    cfg.threads = 2;
    cfg.masterSeed = 2007;
    const DesignSearchResult result = runDesignSearch(spec, cfg);
    ASSERT_FALSE(result.points.empty());
    ASSERT_FALSE(result.frontier.empty());

    double last_cost = -1.0, last_thr = -1.0;
    for (const std::size_t fi : result.frontier) {
        const DesignPoint &pt = result.points[fi];
        EXPECT_TRUE(pt.onFrontier);
        ASSERT_TRUE(std::isfinite(pt.satThroughput));
        const DesignCandidate &c = result.candidates[pt.candidate];
        EXPECT_GE(c.costPerTerminal, last_cost);
        EXPECT_GT(pt.satThroughput, last_thr)
            << "frontier must strictly improve throughput";
        last_cost = c.costPerTerminal;
        last_thr = pt.satThroughput;
    }
    // Every non-frontier point is beaten or matched: some frontier
    // point has cost <= and throughput >=.
    for (const DesignPoint &pt : result.points) {
        if (pt.onFrontier || !std::isfinite(pt.satThroughput))
            continue;
        const DesignCandidate &c = result.candidates[pt.candidate];
        bool covered = false;
        for (const std::size_t fi : result.frontier) {
            const DesignPoint &f = result.points[fi];
            const DesignCandidate &fc =
                result.candidates[f.candidate];
            if (fc.costPerTerminal <= c.costPerTerminal &&
                f.satThroughput >= pt.satThroughput) {
                covered = true;
                break;
            }
        }
        EXPECT_TRUE(covered)
            << c.topoSpec << " is off the frontier but undominated";
    }
}

} // namespace
} // namespace fbfly
