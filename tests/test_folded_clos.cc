/**
 * @file
 * Tests for the two-level folded Clos / fat tree.
 */

#include <gtest/gtest.h>

#include <map>

#include "topology/folded_clos.h"

namespace fbfly
{
namespace
{

TEST(FoldedClos, PaperConfiguration)
{
    // Figure 6's folded Clos: 1024 nodes, 32 terminals and 16
    // uplinks per leaf (2:1 taper for constant bisection).
    FoldedClos topo(1024, 32, 16);
    EXPECT_EQ(topo.numNodes(), 1024);
    EXPECT_EQ(topo.numLeaves(), 32);
    EXPECT_EQ(topo.numRouters(), 48);
    EXPECT_EQ(topo.numPorts(0), 48);   // leaf: 32 + 16
    EXPECT_EQ(topo.numPorts(32), 32);  // middle: one port per leaf
}

TEST(FoldedClos, LeafMiddleClassification)
{
    FoldedClos topo(64, 8, 4);
    for (RouterId r = 0; r < topo.numLeaves(); ++r)
        EXPECT_TRUE(topo.isLeaf(r));
    for (RouterId r = topo.numLeaves(); r < topo.numRouters(); ++r)
        EXPECT_FALSE(topo.isLeaf(r));
}

TEST(FoldedClos, EveryLeafConnectsToEveryMiddleOnce)
{
    FoldedClos topo(64, 8, 4);
    std::map<std::pair<int, int>, int> pair_count;
    int up = 0;
    int down = 0;
    for (const auto &a : topo.arcs()) {
        if (topo.isLeaf(a.src)) {
            EXPECT_FALSE(topo.isLeaf(a.dst));
            ++pair_count[{a.src, a.dst}];
            ++up;
        } else {
            EXPECT_TRUE(topo.isLeaf(a.dst));
            ++down;
        }
    }
    EXPECT_EQ(up, topo.numLeaves() * topo.u());
    EXPECT_EQ(down, topo.numLeaves() * topo.u());
    for (const auto &[key, count] : pair_count)
        EXPECT_EQ(count, 1);
}

TEST(FoldedClos, PortLayout)
{
    FoldedClos topo(64, 8, 4);
    for (const auto &a : topo.arcs()) {
        if (topo.isLeaf(a.src)) {
            // Uplink ports start after the terminals; the middle
            // receives on the port indexed by the leaf.
            EXPECT_GE(a.srcPort, topo.c());
            EXPECT_LT(a.srcPort, topo.c() + topo.u());
            EXPECT_EQ(a.dstPort, a.src);
        }
    }
}

TEST(FoldedClos, TerminalMapping)
{
    FoldedClos topo(64, 8, 4);
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        EXPECT_EQ(topo.injectionRouter(n), n / 8);
        EXPECT_EQ(topo.injectionPort(n), n % 8);
        EXPECT_EQ(topo.ejectionRouter(n), topo.injectionRouter(n));
        EXPECT_LT(topo.injectionPort(n), topo.c());
    }
}

TEST(FoldedClos, UntaperedIsNonBlockingShape)
{
    // u == c: as many uplinks as terminals (the capacity-1
    // configuration the Section 4 cost model charges the Clos for).
    FoldedClos topo(64, 8, 8);
    EXPECT_EQ(topo.numRouters(), 8 + 8);
    EXPECT_EQ(topo.arcs().size(), 2u * 8 * 8);
}

TEST(FoldedClosDeath, RejectsBadGeometry)
{
    EXPECT_EXIT(FoldedClos(100, 32, 16),
                ::testing::KilledBySignal(SIGABRT), "multiple");
}

} // namespace
} // namespace fbfly
