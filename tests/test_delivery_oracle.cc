/**
 * @file
 * Tests for the end-to-end delivery oracle (sim/delivery_oracle.h):
 * clean audits, and detection of drops, duplicates, reorders, and
 * corrupted ejections.
 */

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/factory.h"
#include "sim/delivery_oracle.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

Flit
makePacket(PacketId id, NodeId src, NodeId dst, Cycle create)
{
    Flit f;
    f.id = id;
    f.packet = id;
    f.src = src;
    f.dst = dst;
    f.createTime = create;
    f.packetSize = 4;
    f.head = f.tail = true;
    f.measured = true;
    return f;
}

TEST(DeliveryOracle, CleanExactlyOnceInOrderRun)
{
    DeliveryOracle oracle;
    const Flit a = makePacket(1, 0, 5, 10);
    const Flit b = makePacket(2, 0, 5, 11); // same flow as a
    const Flit c = makePacket(3, 3, 7, 12); // different flow
    oracle.onInject(a);
    oracle.onInject(b);
    oracle.onInject(c);
    oracle.onEject(a);
    oracle.onEject(c); // cross-flow order is unconstrained
    oracle.onEject(b);

    const OracleReport rep = oracle.report(0, true);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.tracked, 3u);
    EXPECT_EQ(rep.delivered, 3u);
    EXPECT_EQ(rep.outstanding, 0u);
    EXPECT_EQ(rep.dropped, 0u);
    EXPECT_NE(rep.summary().find("[clean]"), std::string::npos);
}

TEST(DeliveryOracle, DetectsSilentDrops)
{
    DeliveryOracle oracle;
    oracle.onInject(makePacket(1, 0, 5, 10));
    oracle.onInject(makePacket(2, 1, 6, 11));
    oracle.onEject(makePacket(1, 0, 5, 10));

    // Drained with no router-reported drops: packet 2 is a silent
    // loss.
    OracleReport rep = oracle.report(0, true);
    EXPECT_FALSE(rep.clean());
    EXPECT_EQ(rep.outstanding, 1u);
    EXPECT_EQ(rep.dropped, 1u);

    // The router layer accounted for one drop (e.g. unreachable
    // destination under a fault set): the loss is explained.
    rep = oracle.report(1, true);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.expectedDropped, 1u);
    EXPECT_EQ(rep.dropped, 0u);

    // A run cut off mid-flight (saturated/stalled) cannot classify
    // outstanding packets as drops.
    rep = oracle.report(0, false);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.outstanding, 1u);
    EXPECT_EQ(rep.dropped, 0u);
}

TEST(DeliveryOracle, DetectsDuplicates)
{
    DeliveryOracle oracle;
    const Flit a = makePacket(1, 0, 5, 10);
    oracle.onInject(a);
    oracle.onEject(a);
    oracle.onEject(a);
    const OracleReport rep = oracle.report(0, true);
    EXPECT_FALSE(rep.clean());
    EXPECT_EQ(rep.duplicates, 1u);
    EXPECT_EQ(rep.delivered, 1u);
}

TEST(DeliveryOracle, DetectsSameFlowReorder)
{
    DeliveryOracle oracle;
    const Flit a = makePacket(1, 0, 5, 10);
    const Flit b = makePacket(2, 0, 5, 11);
    oracle.onInject(a);
    oracle.onInject(b);
    oracle.onEject(b); // overtakes a
    oracle.onEject(a);

    // Under an order-enforcing routing algorithm the reorder is a
    // violation.
    const OracleReport rep =
        oracle.report(0, true, /*order_enforced=*/true);
    EXPECT_FALSE(rep.clean());
    EXPECT_TRUE(rep.orderEnforced);
    EXPECT_EQ(rep.reorders, 1u);
    EXPECT_EQ(rep.delivered, 2u);
    EXPECT_NE(rep.summary().find("order enforced"),
              std::string::npos);

    // Under adaptive / non-minimal routing the same reorder is
    // inherent multipath behavior: counted, but advisory.
    const OracleReport lax =
        oracle.report(0, true, /*order_enforced=*/false);
    EXPECT_TRUE(lax.clean());
    EXPECT_FALSE(lax.orderEnforced);
    EXPECT_EQ(lax.reorders, 1u);
    EXPECT_NE(lax.summary().find("order advisory"),
              std::string::npos);
}

TEST(DeliveryOracle, DetectsCorruptedEjections)
{
    DeliveryOracle oracle;
    const Flit a = makePacket(1, 0, 5, 10);
    oracle.onInject(a);

    // Identity field mangled in transit.
    Flit bad = a;
    bad.createTime ^= 64;
    oracle.onEject(bad);

    // Ejection of a packet never injected (mangled packet id).
    oracle.onEject(makePacket(99, 2, 3, 4));

    const OracleReport rep = oracle.report(0, true);
    EXPECT_FALSE(rep.clean());
    EXPECT_EQ(rep.corruptions, 2u);
    EXPECT_EQ(rep.delivered, 0u);
    EXPECT_NE(rep.summary().find("VIOLATIONS"), std::string::npos);

    // The pristine copy still audits as delivered afterwards.
    oracle.onEject(a);
    EXPECT_EQ(oracle.report(0, true).delivered, 1u);
}

TEST(DeliveryOracle, SilentOnCleanRunsAcrossTopologies)
{
    // Error-free guard against oracle false positives: on every
    // topology family the harness audits, a clean low-load run must
    // report exactly-once in-order delivery with zero violations.
    for (const char *spec :
         {"fbfly-4-2", "butterfly-4-2", "clos-64-8-4", "hypercube-4",
          "torus-4-2"}) {
        const auto bundle = makeNetworkBundle(spec, "default");
        UniformRandom pattern(bundle.topology->numNodes());
        NetworkConfig netcfg;
        netcfg.vcDepth = 8;
        netcfg.channelPeriod = bundle.channelPeriod;
        ExperimentConfig expcfg;
        expcfg.warmupCycles = 150;
        expcfg.measureCycles = 200;
        expcfg.drainCycles = 3000;
        expcfg.seed = 17;
        ASSERT_TRUE(expcfg.verifyDelivery); // audits are the default
        const auto r =
            runLoadPoint(*bundle.topology, *bundle.routing, pattern,
                         netcfg, expcfg, 0.2);
        ASSERT_EQ(r.status, LoadPointStatus::kDelivered) << spec;
        ASSERT_TRUE(r.deliveryChecked) << spec;
        EXPECT_TRUE(r.delivery.clean())
            << spec << ": " << r.delivery.summary();
        EXPECT_GT(r.delivery.tracked, 0u) << spec;
        EXPECT_EQ(r.delivery.delivered, r.delivery.tracked) << spec;
        EXPECT_EQ(r.delivery.tracked, r.measuredPackets) << spec;
        // The enforcement flag follows the routing algorithm's order
        // contract (destination-tag / e-cube / torus DOR enforce;
        // CLOS AD and the adaptive folded Clos are advisory).
        EXPECT_EQ(r.delivery.orderEnforced,
                  bundle.routing->preservesFlowOrder())
            << spec;
    }
}

TEST(DeliveryOracle, EnforcesOrderUnderDeterministicRouting)
{
    // DOR promises per-flow FIFO; the harness must run the oracle in
    // enforced mode and the run must audit clean — i.e. the network
    // actually delivers in order under deterministic routing.
    const auto bundle = makeNetworkBundle("fbfly-4-2", "dor");
    ASSERT_TRUE(bundle.routing->preservesFlowOrder());
    UniformRandom pattern(bundle.topology->numNodes());
    NetworkConfig netcfg;
    netcfg.vcDepth = 8;
    ExperimentConfig expcfg;
    expcfg.warmupCycles = 150;
    expcfg.measureCycles = 200;
    expcfg.drainCycles = 3000;
    expcfg.seed = 23;
    const auto r = runLoadPoint(*bundle.topology, *bundle.routing,
                                pattern, netcfg, expcfg, 0.2);
    ASSERT_EQ(r.status, LoadPointStatus::kDelivered);
    ASSERT_TRUE(r.deliveryChecked);
    EXPECT_TRUE(r.delivery.orderEnforced);
    EXPECT_EQ(r.delivery.reorders, 0u);
    EXPECT_TRUE(r.delivery.clean()) << r.delivery.summary();
}

} // namespace
} // namespace fbfly
