/**
 * @file
 * Shard-determinism suite for the sharded step engine
 * (docs/DESIGN.md "Sharded step engine").
 *
 * The engine's contract is exact: `NetworkConfig::shards` is a
 * performance knob, never a semantics knob.  Every observable —
 * trace text, counters, per-arc flit counts, metrics registries,
 * latency doubles, full sweep JSON, liveness diagnoses — must be
 * bit-identical at any shard count, because all cross-shard
 * interaction flows through >= 1-cycle channels and the commit phase
 * replays staged effects in the sequential engine's exact order.
 *
 * Concretely, this suite replays the committed golden-trace and
 * idle-equivalence fixtures at --shards 2 and 8 and requires them to
 * pass byte for byte WITHOUT regeneration, then pins 1-vs-2-vs-8
 * equality on a wider 8-router scenario, a full sweep JSON document,
 * a churn (dynamic-service) run and a deadlock-recovery run.  The
 * TSan CI leg runs the whole suite to prove the phase workers are
 * race-free.
 *
 * The memory-lean side of the same PR is covered by the peak-RSS
 * gauge test on a 32k-terminal 32-ary 3-flat (slow label; skipped
 * under sanitizers, whose shadow memory makes RSS meaningless).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rss.h"
#include "fault/churn_model.h"
#include "fixture_scenarios.h"
#include "harness/churn.h"
#include "harness/experiment.h"
#include "harness/result_writer.h"
#include "network/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "routing/min_adaptive.h"
#include "routing/routing.h"
#include "routing/ugal.h"
#include "sim/liveness.h"
#include "topology/flattened_butterfly.h"
#include "topology/topology.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define FBFLY_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define FBFLY_UNDER_SANITIZER 1
#endif
#endif

namespace fbfly
{
namespace
{

using fixtures::canonicalSweepText;
using fixtures::kBurstyFixture;
using fixtures::kGoldenFixture;
using fixtures::kSweepFixture;
using fixtures::readFixture;
using fixtures::runBurstyScenario;
using fixtures::runGoldenScenario;
using fixtures::runIdleSweep;

// ---------------------------------------------------------------------
// Committed fixtures replayed at --shards N, no regeneration
// ---------------------------------------------------------------------

TEST(ShardDeterminism, GoldenTraceFixtureByteIdenticalAtAnyShardCount)
{
    const std::string expected = readFixture(kGoldenFixture);
    ASSERT_FALSE(expected.empty());
    for (const int shards : {1, 2, 8}) {
        SCOPED_TRACE("shards " + std::to_string(shards));
        EXPECT_EQ(runGoldenScenario(shards), expected);
    }
}

TEST(ShardDeterminism, BurstyFixtureByteIdenticalAtAnyShardCount)
{
    const std::string expected = readFixture(kBurstyFixture);
    ASSERT_FALSE(expected.empty());
    for (const int shards : {2, 8}) {
        SCOPED_TRACE("shards " + std::to_string(shards));
        EXPECT_EQ(runBurstyScenario(shards), expected);
    }
}

TEST(ShardDeterminism, IdleSweepFixtureByteIdenticalAtAnyShardCount)
{
    const std::string expected = readFixture(kSweepFixture);
    ASSERT_FALSE(expected.empty());
    for (const int shards : {2, 8}) {
        SCOPED_TRACE("shards " + std::to_string(shards));
        EXPECT_EQ(canonicalSweepText(runIdleSweep(1, shards)),
                  expected);
    }
}

// ---------------------------------------------------------------------
// Wider traced scenario: 8 routers, real cross-shard traffic
// ---------------------------------------------------------------------

/** A traced UGAL run on the 8-ary 2-flat (64 nodes, 8 routers):
 *  unlike the 2-router golden scenario, 8 shards here put every
 *  router in its own shard, so every inter-router arc is a
 *  cross-shard channel. */
std::string
runEightRouterScenario(int shards)
{
    FlattenedButterfly topo(8, 2);
    Ugal algo(topo, false);
    UniformRandom pattern(topo.numNodes());

    TraceSink sink(1 << 18);
    sink.setLevel(TraceLevel::kFull);

    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 4;
    cfg.seed = 2007;
    cfg.trace = &sink;
    cfg.shards = shards;

    Network net(topo, algo, &pattern, cfg);
    EXPECT_EQ(net.shardCount(), shards);
    BernoulliInjection inj(0.3, 1, 7);
    for (int c = 0; c < 300; ++c) {
        inj.tick(net, false);
        net.step();
    }
    for (int c = 0; c < 2000 && !net.quiescent(); ++c)
        net.step();
    EXPECT_TRUE(net.quiescent());
    EXPECT_EQ(net.checkInvariants(), "");
    EXPECT_EQ(sink.droppedRecords(), 0u)
        << "ring overflowed; enlarge the sink";

    std::ostringstream os;
    os << sink.toText();
    fixtures::dumpNetworkState(os, net);
    return os.str();
}

TEST(ShardDeterminism, EightRouterTraceIdenticalAcrossShardCounts)
{
    const std::string one = runEightRouterScenario(1);
    ASSERT_FALSE(one.empty());
    EXPECT_EQ(runEightRouterScenario(2), one);
    EXPECT_EQ(runEightRouterScenario(8), one);
}

TEST(ShardDeterminism, ShardCountClampsToRouterCount)
{
    FlattenedButterfly topo(2, 2); // 2 routers
    Ugal algo(topo, false);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.shards = 8;
    Network net(topo, algo, nullptr, cfg);
    EXPECT_EQ(net.shardCount(), 2);
}

// ---------------------------------------------------------------------
// Full sweep document: metrics registries and JSON text
// ---------------------------------------------------------------------

/** Render records as a full fbfly-sweep-v1 document with the
 *  wall-clock fields zeroed (the only legitimately nondeterministic
 *  bytes). */
std::string
sweepJsonZeroWall(std::vector<SweepPointRecord> recs)
{
    for (SweepPointRecord &r : recs)
        r.wallSeconds = 0.0;
    SweepRunMeta meta;
    meta.bench = "shard_determinism";
    meta.description = "sweep JSON identity across shard counts";
    return sweepResultsToJson(meta, recs, 2007, 1, 0.0);
}

TEST(ShardDeterminism, SweepJsonAndMetricsIdenticalAcrossShardCounts)
{
    const std::vector<SweepPointRecord> one = runIdleSweep(1, 1);
    const std::vector<SweepPointRecord> two = runIdleSweep(1, 2);
    const std::vector<SweepPointRecord> eight = runIdleSweep(1, 8);
    ASSERT_EQ(one.size(), 2u);
    ASSERT_EQ(two.size(), 2u);
    ASSERT_EQ(eight.size(), 2u);

    for (std::size_t i = 0; i < one.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        const LoadPointResult &a = one[i].load;
        for (const auto *b : {&two[i].load, &eight[i].load}) {
            // Doubles compared exactly: the commit phase replays
            // measured ejections in the sequential order, so even
            // Welford means are bit-identical.
            EXPECT_EQ(a.accepted, b->accepted);
            EXPECT_EQ(a.avgLatency, b->avgLatency);
            EXPECT_EQ(a.avgNetworkLatency, b->avgNetworkLatency);
            EXPECT_EQ(a.avgHops, b->avgHops);
            EXPECT_EQ(a.p99Latency, b->p99Latency);
            ASSERT_NE(a.metrics, nullptr);
            ASSERT_NE(b->metrics, nullptr);
            EXPECT_TRUE(*a.metrics == *b->metrics)
                << "MetricsRegistry diverged between shard counts";
        }
    }

    const std::string doc = sweepJsonZeroWall(one);
    EXPECT_EQ(sweepJsonZeroWall(two), doc);
    EXPECT_EQ(sweepJsonZeroWall(eight), doc);
}

// ---------------------------------------------------------------------
// Dynamic service (churn) and liveness recovery
// ---------------------------------------------------------------------

TEST(ShardDeterminism, ChurnRunIdenticalAcrossShardCounts)
{
    FlattenedButterfly topo(4, 2);
    UniformRandom pattern(topo.numNodes());

    ChurnRunConfig run;
    run.warmupCycles = 200;
    run.horizonCycles = 3000;
    run.drainCycles = 50000;
    run.baseLoad = 0.1;
    run.peakLoad = 0.3;
    run.diurnalPeriod = 1000;
    run.epochCycles = 500; // exercise routing adaptation + pins
    run.seed = 2007;

    ChurnConfig cc;
    cc.linkMtbf = 800;
    cc.linkMttr = 200;
    cc.horizon = run.warmupCycles + run.horizonCycles;
    cc.seed = 13;
    const ChurnModel model(topo, cc);

    auto runAt = [&](int shards) {
        NetworkConfig netcfg;
        netcfg.vcDepth = 4;
        netcfg.shards = shards;
        return runChurnPoint(topo, pattern, &model, netcfg, run);
    };

    const ChurnPointResult one = runAt(1);
    EXPECT_GT(one.churn.downEvents, 0u);
    for (const int shards : {2, 4}) {
        SCOPED_TRACE("shards " + std::to_string(shards));
        const ChurnPointResult other = runAt(shards);
        EXPECT_EQ(other.load.status, one.load.status);
        EXPECT_EQ(other.load.accepted, one.load.accepted);
        EXPECT_EQ(other.load.avgLatency, one.load.avgLatency);
        EXPECT_EQ(other.load.measuredPackets,
                  one.load.measuredPackets);
        EXPECT_EQ(other.load.flitsDropped, one.load.flitsDropped);
        EXPECT_EQ(other.load.measuredDropped,
                  one.load.measuredDropped);
        // The whole churn extension block (events, losses, epochs,
        // switches, pins, p99.9, recovery times) as one string.
        EXPECT_EQ(churnExtraJson(cc, other.churn),
                  churnExtraJson(cc, one.churn));
    }
}

/** Test-only routing that walks the router ring r -> r+1 -> ... —
 *  with one VC and packetSize > vcDepth, packets two ring hops
 *  apart form the textbook credit cycle (tests/test_liveness.cc). */
class ShardRingRouting : public RoutingAlgorithm
{
  public:
    explicit ShardRingRouting(const Topology &topo) : topo_(topo)
    {
        const int R = topo.numRouters();
        next_.assign(static_cast<std::size_t>(R), kInvalid);
        for (const Topology::Arc &a : topo.arcs())
            if (a.dst == (a.src + 1) % R)
                next_[static_cast<std::size_t>(a.src)] = a.srcPort;
    }

    std::string name() const override { return "TEST-RING"; }
    int numVcs() const override { return 1; }

    RouteDecision route(Router &router, Flit &f) override
    {
        const RouterId r = router.id();
        if (topo_.ejectionRouter(f.dst) == r)
            return {topo_.ejectionPort(f.dst), 0, false};
        return {next_[static_cast<std::size_t>(r)], 0, false};
    }

    bool preservesFlowOrder() const override { return true; }

  private:
    const Topology &topo_;
    std::vector<PortId> next_;
};

TEST(ShardDeterminism, LivenessRecoveryIdenticalAcrossShardCounts)
{
    // The deadlock-prone ring scenario driven end to end through
    // runLoadPoint: the watchdog, the stall classifier and the
    // kill-victim recovery all run in the serial portion of the
    // cycle, so their diagnoses must not depend on the shard count.
    FlattenedButterfly topo(4, 2);
    ShardRingRouting algo(topo);
    AdversarialNeighbor pattern(topo.numNodes(), 4, 2);

    ExperimentConfig expcfg;
    expcfg.warmupCycles = 0;
    expcfg.measureCycles = 40;
    expcfg.drainCycles = 200000;
    expcfg.seed = 7;
    expcfg.liveness.policy = RecoveryPolicy::kKillVictim;
    expcfg.liveness.maxRecoveries = 100000;

    auto runAt = [&](int shards) {
        NetworkConfig netcfg;
        netcfg.vcDepth = 2;
        netcfg.packetSize = 8;
        netcfg.watchdogCycles = 100;
        netcfg.shards = shards;
        return runLoadPoint(topo, algo, pattern, netcfg, expcfg,
                            0.25);
    };

    const LoadPointResult one = runAt(1);
    ASSERT_EQ(one.status, LoadPointStatus::kDeadlockRecovered)
        << toString(one.status) << "\n"
        << one.diagnostics;
    for (const int shards : {2, 4}) {
        SCOPED_TRACE("shards " + std::to_string(shards));
        const LoadPointResult other = runAt(shards);
        EXPECT_EQ(other.status, one.status);
        EXPECT_EQ(other.recoveries, one.recoveries);
        EXPECT_EQ(other.measuredPackets, one.measuredPackets);
        EXPECT_EQ(other.measuredDropped, one.measuredDropped);
        EXPECT_EQ(other.liveness, one.liveness)
            << "structured liveness JSON diverged";
    }
}

// ---------------------------------------------------------------------
// Memory-lean scale: peak-RSS gauge on a 32k-terminal point
// ---------------------------------------------------------------------

TEST(ShardDeterminism, PeakRssPerTerminalBoundedAt32kTerminals)
{
#ifdef FBFLY_UNDER_SANITIZER
    GTEST_SKIP() << "sanitizer shadow memory makes RSS meaningless";
#else
    // 32-ary 3-flat: 32768 terminals, 1024 routers.  The pooled
    // channel/VC state and hierarchical stats must keep the whole
    // simulator under 16 KiB per terminal — the budget that lets a
    // ~10^5-terminal k-ary n-flat fit on a laptop (bench/xscale).
    FlattenedButterfly topo(32, 3);
    MinAdaptive algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 4;
    cfg.shards = 8;
    Network net(topo, algo, nullptr, cfg);
    ASSERT_EQ(net.shardCount(), 8);

    // Cross-shard traffic through the phased engine, then drain.
    const NodeId n = static_cast<NodeId>(net.numNodes());
    for (int c = 0; c < 64; ++c) {
        const NodeId src = static_cast<NodeId>((c * 977) % n);
        NodeId dst = static_cast<NodeId>((c * 557 + n / 2) % n);
        if (dst == src)
            dst = static_cast<NodeId>((dst + 1) % n);
        net.terminal(src).enqueuePacket(net.now(), dst, false);
        net.step();
    }
    for (int c = 0; c < 5000 && !net.quiescent(); ++c)
        net.step();
    EXPECT_TRUE(net.quiescent());
    EXPECT_EQ(net.checkInvariants(), "");

    const std::uint64_t rss = peakRssBytes();
    ASSERT_GT(rss, 0u) << "peak-RSS gauge unavailable";
    const double per_terminal =
        static_cast<double>(rss) / static_cast<double>(n);
    EXPECT_LT(per_terminal, 16.0 * 1024.0)
        << "peak RSS " << rss << " bytes = " << per_terminal
        << " bytes/terminal";
#endif
}

} // namespace
} // namespace fbfly
