/**
 * @file
 * Tests for the five flattened-butterfly routing algorithms of paper
 * Section 3.1: delivery, hop bounds, VC discipline, and the
 * minimal/non-minimal behaviours that drive Figures 4 and 5.
 */

#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.h"
#include "network/network.h"
#include "routing/clos_ad.h"
#include "routing/dor.h"
#include "routing/min_adaptive.h"
#include "routing/ugal.h"
#include "routing/valiant.h"
#include "topology/flattened_butterfly.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{
namespace
{

std::unique_ptr<RoutingAlgorithm>
makeAlgo(const std::string &name, const FlattenedButterfly &topo)
{
    if (name == "DOR")
        return std::make_unique<DimensionOrder>(topo);
    if (name == "MIN AD")
        return std::make_unique<MinAdaptive>(topo);
    if (name == "VAL")
        return std::make_unique<Valiant>(topo);
    if (name == "UGAL")
        return std::make_unique<Ugal>(topo, false);
    if (name == "UGAL-S")
        return std::make_unique<Ugal>(topo, true);
    return std::make_unique<ClosAd>(topo);
}

class FbflyRoutingAlgos
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FbflyRoutingAlgos, NamesAndVcBudgetsAreConsistent)
{
    FlattenedButterfly topo(4, 3); // n' = 2
    auto algo = makeAlgo(GetParam(), topo);
    EXPECT_EQ(algo->name(), GetParam() == "CLOS AD" ? "CLOS AD"
                                                    : GetParam());
    EXPECT_GE(algo->numVcs(), 1);
    // Sequential allocators: UGAL-S and CLOS AD only.
    const bool seq =
        GetParam() == "UGAL-S" || GetParam() == "CLOS AD";
    EXPECT_EQ(algo->sequential(), seq);
}

TEST_P(FbflyRoutingAlgos, DeliversAllPairsOnMultiDimNetwork)
{
    FlattenedButterfly topo(3, 3); // 27 nodes, 9 routers, n'=2
    auto algo = makeAlgo(GetParam(), topo);
    NetworkConfig cfg;
    cfg.numVcs = algo->numVcs();
    cfg.vcDepth = 8;
    Network net(topo, *algo, nullptr, cfg);

    std::uint64_t sent = 0;
    for (NodeId src = 0; src < topo.numNodes(); ++src) {
        for (NodeId dst = 0; dst < topo.numNodes(); ++dst) {
            if (src == dst)
                continue;
            net.terminal(src).enqueuePacket(net.now(), dst, true);
            ++sent;
        }
        for (int c = 0; c < 60 && !net.quiescent(); ++c)
            net.step();
    }
    for (int c = 0; c < 3000 && !net.quiescent(); ++c)
        net.step();
    EXPECT_TRUE(net.quiescent()) << "undelivered packets";
    EXPECT_EQ(net.stats().measuredEjected, sent);
}

TEST_P(FbflyRoutingAlgos, NoDeadlockUnderSaturatedAdversarial)
{
    FlattenedButterfly topo(4, 3);
    auto algo = makeAlgo(GetParam(), topo);
    AdversarialNeighbor pattern(topo.numNodes(), topo.k());
    NetworkConfig cfg;
    cfg.numVcs = algo->numVcs();
    cfg.vcDepth = 4;
    Network net(topo, *algo, &pattern, cfg);
    BernoulliInjection inj(1.0, 1, 3);

    std::uint64_t last = 0;
    for (int window = 0; window < 8; ++window) {
        for (int c = 0; c < 250; ++c) {
            inj.tick(net, false);
            net.step();
        }
        EXPECT_GT(net.stats().flitsEjected, last)
            << "stalled in window " << window;
        last = net.stats().flitsEjected;
    }
}

INSTANTIATE_TEST_SUITE_P(Algos, FbflyRoutingAlgos,
                         ::testing::Values("DOR", "MIN AD", "VAL",
                                           "UGAL", "UGAL-S",
                                           "CLOS AD"));

TEST(MinAdaptive, TakesOnlyMinimalHops)
{
    FlattenedButterfly topo(4, 3);
    MinAdaptive algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, nullptr, cfg);

    // All pairs: hops must equal differing digits + 1 (ejection).
    for (NodeId src = 0; src < 16; ++src) {
        for (NodeId dst = 16; dst < 32; ++dst) {
            Network fresh(topo, algo, nullptr, cfg);
            fresh.terminal(src).enqueuePacket(0, dst, true);
            while (!fresh.quiescent())
                fresh.step();
            const int expected =
                topo.minimalHops(topo.routerOf(src),
                                 topo.routerOf(dst)) + 1;
            EXPECT_EQ(fresh.stats().hops.mean(), expected)
                << src << " -> " << dst;
        }
    }
}

TEST(Valiant, HopCountIsTwoPhaseBounded)
{
    FlattenedButterfly topo(4, 3); // n' = 2
    Valiant algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, nullptr, cfg);

    for (NodeId src = 0; src < topo.numNodes(); src += 7)
        net.terminal(src).enqueuePacket(0, (src + 17) % 64, true);
    while (!net.quiescent())
        net.step();
    // At most n' hops per phase plus the ejection hop.
    EXPECT_LE(net.stats().hops.max(), 2 * topo.numDims() + 1);
    EXPECT_GE(net.stats().hops.min(), 1);
}

TEST(Valiant, RandomizesIntermediates)
{
    // Two packets from the same source to the same destination
    // should (almost always) see different intermediates over many
    // trials: measured by hop-count variance.
    FlattenedButterfly topo(8, 2);
    Valiant algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, nullptr, cfg);
    for (int i = 0; i < 200; ++i)
        net.terminal(0).enqueuePacket(net.now(), 60, true);
    while (!net.quiescent())
        net.step();
    EXPECT_GT(net.stats().hops.stddev(), 0.1)
        << "VAL must not always pick the same intermediate";
}

TEST(Ugal, RoutesMinimallyAtLowLoad)
{
    // At negligible load the queue comparison always favours the
    // minimal path (q_min = 0), matching MIN AD (Section 3.1).
    FlattenedButterfly topo(8, 2);
    Ugal algo(topo, false);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, nullptr, cfg);
    for (NodeId src = 0; src < 8; ++src) {
        net.terminal(src).enqueuePacket(net.now(), 56 + src, true);
        for (int c = 0; c < 30; ++c)
            net.step();
    }
    while (!net.quiescent())
        net.step();
    // minimal = 1 inter-router hop + ejection.
    EXPECT_EQ(net.stats().hops.mean(), 2.0);
}

TEST(ClosAd, RoutesMinimallyAtLowLoad)
{
    FlattenedButterfly topo(8, 2);
    ClosAd algo(topo);
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    Network net(topo, algo, nullptr, cfg);
    for (NodeId src = 0; src < 8; ++src) {
        net.terminal(src).enqueuePacket(net.now(), 56 + src, true);
        for (int c = 0; c < 30; ++c)
            net.step();
    }
    while (!net.quiescent())
        net.step();
    EXPECT_EQ(net.stats().hops.mean(), 2.0);
}

TEST(ClosAd, HopCountNeverExceedsFoldedClosEquivalent)
{
    // CLOS AD's intermediate comes from the closest common
    // ancestors, so hops <= 2 * highestDiffDim + ejection.
    FlattenedButterfly topo(4, 3);
    ClosAd algo(topo);
    AdversarialNeighbor pattern(topo.numNodes(), topo.k());
    NetworkConfig cfg;
    cfg.numVcs = algo.numVcs();
    cfg.vcDepth = 4;
    Network net(topo, algo, &pattern, cfg);
    BernoulliInjection inj(0.6, 1, 5);
    for (int c = 0; c < 2000; ++c) {
        inj.tick(net, c > 500);
        net.step();
    }
    EXPECT_LE(net.stats().hops.max(), 2 * topo.numDims() + 1);
}

/** The throughput signature of Figure 4(b), on a scaled-down
 *  network: MIN AD collapses to ~1/k on adversarial traffic while
 *  the non-minimal adaptive algorithms deliver ~50%. */
TEST(FbflyRoutingThroughput, AdversarialSignature)
{
    FlattenedButterfly topo(8, 2); // 64 nodes, keeps the test fast
    AdversarialNeighbor pattern(topo.numNodes(), topo.k());
    ExperimentConfig expcfg;
    expcfg.warmupCycles = 400;
    expcfg.measureCycles = 400;
    expcfg.drainCycles = 1000;

    auto throughput = [&](RoutingAlgorithm &algo) {
        NetworkConfig netcfg;
        netcfg.vcDepth = 32 / algo.numVcs();
        return runLoadPoint(topo, algo, pattern, netcfg, expcfg,
                            0.9)
            .accepted;
    };

    MinAdaptive min_ad(topo);
    Valiant val(topo);
    Ugal ugal_s(topo, true);
    ClosAd clos_ad(topo);

    const double t_min = throughput(min_ad);
    EXPECT_NEAR(t_min, 1.0 / topo.k(), 0.04);
    EXPECT_GT(throughput(val), 0.4);
    EXPECT_GT(throughput(ugal_s), 0.4);
    EXPECT_GT(throughput(clos_ad), 0.4);
}

/** The benign signature of Figure 4(a): everything but VAL gets
 *  close to full throughput; VAL caps near 50%. */
TEST(FbflyRoutingThroughput, UniformSignature)
{
    FlattenedButterfly topo(8, 2);
    UniformRandom pattern(topo.numNodes());
    ExperimentConfig expcfg;
    expcfg.warmupCycles = 400;
    expcfg.measureCycles = 400;
    expcfg.drainCycles = 1000;

    auto throughput = [&](RoutingAlgorithm &algo) {
        NetworkConfig netcfg;
        netcfg.vcDepth = 32 / algo.numVcs();
        return runLoadPoint(topo, algo, pattern, netcfg, expcfg,
                            1.0)
            .accepted;
    };

    MinAdaptive min_ad(topo);
    Valiant val(topo);
    Ugal ugal_s(topo, true);
    ClosAd clos_ad(topo);

    EXPECT_GT(throughput(min_ad), 0.85);
    EXPECT_GT(throughput(ugal_s), 0.8);
    EXPECT_GT(throughput(clos_ad), 0.8);
    const double t_val = throughput(val);
    EXPECT_GT(t_val, 0.35);
    EXPECT_LT(t_val, 0.6);
}

/** The Figure 5 mechanism: greedy UGAL piles a router's whole burst
 *  onto the minimal channel; the sequential variant spreads it. */
TEST(FbflyRoutingTransient, GreedyVsSequentialBatch)
{
    // Full-size (32-ary) routers: the greedy pile-up is ~k deep.
    FlattenedButterfly topo(32, 2);
    AdversarialNeighbor pattern(topo.numNodes(), topo.k());
    NetworkConfig cfg;

    Ugal greedy(topo, false);
    Ugal sequential(topo, true);
    NetworkConfig g_cfg;
    g_cfg.vcDepth = 32 / greedy.numVcs();
    NetworkConfig s_cfg;
    s_cfg.vcDepth = 32 / sequential.numVcs();

    const auto g = runBatch(topo, greedy, pattern, g_cfg, 11, 1);
    const auto s = runBatch(topo, sequential, pattern, s_cfg, 11, 1);
    EXPECT_GT(g.normalizedLatency, 1.5 * s.normalizedLatency)
        << "greedy transient imbalance should dominate small "
           "batches";
}

} // namespace
} // namespace fbfly
