/**
 * @file
 * Tests for the Table 2 / Figure 7 cost model.
 */

#include <gtest/gtest.h>

#include "cost/cost_model.h"

namespace fbfly
{
namespace
{

TEST(CostModel, Table2Defaults)
{
    CostModel cm;
    EXPECT_DOUBLE_EQ(cm.routerChipCost, 90.0);
    EXPECT_DOUBLE_EQ(cm.routerDevelopmentCost, 300.0);
    EXPECT_DOUBLE_EQ(cm.backplanePerSignal, 1.95);
    EXPECT_DOUBLE_EQ(cm.cableOverheadPerSignal, 3.72);
    EXPECT_DOUBLE_EQ(cm.cablePerSignalMeter, 0.81);
    EXPECT_DOUBLE_EQ(cm.opticalPerSignal, 220.0);
}

TEST(CostModel, NearbyCableMatchesPaperFigure)
{
    // "a cable connecting nearby routers (within 2m) is about $5.34
    // per signal"
    CostModel cm;
    EXPECT_NEAR(cm.electricalSignalCost(2.0), 5.34, 1e-9);
}

TEST(CostModel, LinearBelowCriticalLength)
{
    CostModel cm;
    for (double len = 0.0; len <= 6.0; len += 0.5) {
        EXPECT_NEAR(cm.electricalSignalCost(len),
                    3.72 + 0.81 * len, 1e-9);
    }
}

TEST(CostModel, RepeaterStepAtCriticalLength)
{
    // Figure 7(b): a step of roughly one connector overhead at 6m.
    CostModel cm;
    const double just_under = cm.electricalSignalCost(6.0);
    const double just_over = cm.electricalSignalCost(6.01);
    EXPECT_NEAR(just_over - just_under,
                cm.cableOverheadPerSignal, 0.1);
}

TEST(CostModel, RepeatersAccumulate)
{
    CostModel cm;
    // 13m needs ceil(13/6)-1 = 2 repeaters.
    EXPECT_NEAR(cm.electricalSignalCost(13.0),
                3.72 + 0.81 * 13.0 + 2 * 3.72, 1e-9);
    // 18m: exactly 3 segments -> 2 repeaters.
    EXPECT_NEAR(cm.electricalSignalCost(18.0),
                3.72 + 0.81 * 18.0 + 2 * 3.72, 1e-9);
}

TEST(CostModel, CostIsMonotonicInLength)
{
    CostModel cm;
    double prev = 0.0;
    for (double len = 0.5; len <= 30.0; len += 0.5) {
        const double c = cm.electricalSignalCost(len);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

TEST(CostModel, SignalCostDispatch)
{
    CostModel cm;
    EXPECT_DOUBLE_EQ(cm.signalCost(LinkLocale::Backplane, 0.5),
                     1.95);
    EXPECT_NEAR(cm.signalCost(LinkLocale::LocalCable, 2.0), 5.34,
                1e-9);
    EXPECT_NEAR(cm.signalCost(LinkLocale::GlobalCable, 4.0),
                3.72 + 0.81 * 4.0, 1e-9);
}

TEST(CostModel, OpticalCrossoverIsFarBeyondMachineScale)
{
    CostModel cm;
    const double crossover = cm.opticalCrossoverLength();
    // Electrical must be cheaper just below, optical at/above.
    EXPECT_LT(cm.electricalSignalCost(crossover - 2.0),
              cm.opticalPerSignal);
    EXPECT_GE(cm.electricalSignalCost(crossover),
              cm.opticalPerSignal);
    // Far past the ~30 m edge of even a 64K-node floor.
    EXPECT_GT(crossover, 100.0);
    EXPECT_LT(crossover, 300.0);
}

TEST(CostModel, RouterCostScalesWithPins)
{
    CostModel cm;
    // Full radix-64 router: dev + full chip.
    EXPECT_NEAR(cm.routerCost(cm.baselineRouterSignals()),
                390.0, 1e-9);
    // Half the pins: dev + half the silicon — the hypercube
    // adjustment of Section 4.3.
    EXPECT_NEAR(cm.routerCost(cm.baselineRouterSignals() / 2),
                300.0 + 45.0, 1e-9);
    // Development cost is a floor.
    EXPECT_NEAR(cm.routerCost(0.0), 300.0, 1e-9);
}

} // namespace
} // namespace fbfly
