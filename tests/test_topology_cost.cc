/**
 * @file
 * Tests for the per-topology inventories and the Section 4.3 cost
 * comparison: link counts, stage calibrations, and the paper's
 * headline cost ordering.
 */

#include <gtest/gtest.h>

#include "cost/topology_cost.h"

namespace fbfly
{
namespace
{

TEST(TopologyCost, Paper1KLinkCounts)
{
    // "with N = 1K network, the folded Clos requires 2048 links
    // while the flattened butterfly requires 31 x 32 = 992 links"
    TopologyCostModel model;
    EXPECT_EQ(model.flattenedButterfly(1024).totalLinks(false), 992);
    EXPECT_EQ(model.foldedClos(1024).totalLinks(false), 2048);
}

TEST(TopologyCost, TerminalLinksAreTwoPerNode)
{
    TopologyCostModel model;
    for (const auto &inv :
         {model.flattenedButterfly(1024), model.foldedClos(1024),
          model.conventionalButterfly(1024),
          model.hypercube(1024)}) {
        EXPECT_EQ(inv.totalLinks(true) - inv.totalLinks(false),
                  2 * 1024)
            << inv.topology;
    }
}

TEST(TopologyCost, ClosLevelCalibration)
{
    // 1K fits in 2 stages; 2K..32K need 3 (the Figure 11 step).
    EXPECT_EQ(TopologyCostModel::closLevels(64), 1);
    EXPECT_EQ(TopologyCostModel::closLevels(128), 2);
    EXPECT_EQ(TopologyCostModel::closLevels(1024), 2);
    EXPECT_EQ(TopologyCostModel::closLevels(2048), 3);
    EXPECT_EQ(TopologyCostModel::closLevels(32768), 3);
    EXPECT_EQ(TopologyCostModel::closLevels(65536), 4);
}

TEST(TopologyCost, ButterflyStageCalibration)
{
    // "the conventional butterfly can scale to 4K nodes with only 2
    // stages ... when N > 4K, the butterfly requires 3 stages"
    EXPECT_EQ(TopologyCostModel::butterflyStages(64), 1);
    EXPECT_EQ(TopologyCostModel::butterflyStages(1024), 2);
    EXPECT_EQ(TopologyCostModel::butterflyStages(4096), 2);
    EXPECT_EQ(TopologyCostModel::butterflyStages(8192), 3);
}

TEST(TopologyCost, HypercubeRouterPerNode)
{
    TopologyCostModel model;
    const auto inv = model.hypercube(1024);
    EXPECT_EQ(inv.totalRouters(), 1024);
    // Inter-router channels are half-width (capacity match).
    for (const auto &g : inv.links) {
        if (g.label != "terminal") {
            EXPECT_DOUBLE_EQ(g.signalsPerLink, 1.5);
        }
    }
}

TEST(TopologyCost, FbflyCostReductionInPaperBand)
{
    // Abstract / Section 4.3: 35-53% cheaper than the folded Clos.
    // Our model tracks this band over the paper's sweep (small
    // sizes land a little above it because our dimension-1 links
    // are priced as cables, not backplanes).
    TopologyCostModel model;
    for (std::int64_t n = 1024; n <= 32768; n *= 2) {
        const double fb =
            model.price(model.flattenedButterfly(n)).total();
        const double clos = model.price(model.foldedClos(n)).total();
        const double reduction = 1.0 - fb / clos;
        EXPECT_GT(reduction, 0.30) << "N=" << n;
        EXPECT_LT(reduction, 0.65) << "N=" << n;
    }
}

TEST(TopologyCost, HypercubeIsMostExpensive)
{
    TopologyCostModel model;
    for (std::int64_t n = 256; n <= 65536; n *= 4) {
        const double hc = model.price(model.hypercube(n)).total();
        EXPECT_GT(hc,
                  model.price(model.flattenedButterfly(n)).total());
        EXPECT_GT(hc, model.price(model.foldedClos(n)).total());
        EXPECT_GT(
            hc, model.price(model.conventionalButterfly(n)).total());
    }
}

TEST(TopologyCost, ButterflyCheapestInMidRange)
{
    // "the conventional butterfly is a lower cost network for
    // 1K < N < 4K"
    TopologyCostModel model;
    for (const std::int64_t n : {2048, 4096}) {
        const double bf =
            model.price(model.conventionalButterfly(n)).total();
        EXPECT_LE(bf,
                  model.price(model.flattenedButterfly(n)).total())
            << n;
        EXPECT_LT(bf, model.price(model.foldedClos(n)).total()) << n;
    }
}

TEST(TopologyCost, LinkCostDominates)
{
    // Figure 10(a): for the butterfly family and the Clos, links are
    // the dominant cost at scale.
    TopologyCostModel model;
    for (std::int64_t n = 4096; n <= 65536; n *= 2) {
        EXPECT_GT(model.price(model.flattenedButterfly(n))
                      .linkFraction(),
                  0.5)
            << n;
        EXPECT_GT(model.price(model.foldedClos(n)).linkFraction(),
                  0.5)
            << n;
    }
}

TEST(TopologyCost, HypercubeRoutersDominateWhenSmall)
{
    // "Because of the number of routers in the hypercube, the
    // routers dominate the cost for small configurations."
    TopologyCostModel model;
    const auto p = model.price(model.hypercube(256));
    EXPECT_GT(p.routerCost, p.linkCost);
}

TEST(TopologyCost, KAryNFlatMatchesTable4)
{
    TopologyCostModel model;
    const auto inv = model.kAryNFlat(16, 3); // k'=46, N=4096
    EXPECT_EQ(inv.numNodes, 4096);
    EXPECT_EQ(inv.totalRouters(), 256);
    EXPECT_EQ(inv.routers[0].label, "radix-46");
    // Two dimensions of 15 channels per router.
    EXPECT_EQ(inv.totalLinks(false), 256 * 15 * 2);
}

TEST(TopologyCost, Figure13CostRisesWithDimensionality)
{
    TopologyCostModel model;
    const int ks[] = {64, 16, 8, 4, 2};
    const int ns[] = {2, 3, 4, 6, 12};
    double prev = 0.0;
    for (int i = 0; i < 5; ++i) {
        const auto inv = model.kAryNFlat(ks[i], ns[i]);
        const double per_node = model.price(inv).total() / 4096.0;
        EXPECT_GT(per_node, prev)
            << "cost must rise with n' (paper Figure 13)";
        prev = per_node;
    }
}

TEST(TopologyCost, Figure13CableLengthFallsWithDimensionality)
{
    // The line plot of Figure 13: average cable length decreases as
    // n' grows (lower dimensions span smaller subsystems).
    TopologyCostModel model;
    EXPECT_GT(model.kAryNFlat(64, 2).averageCableLength(),
              model.kAryNFlat(4, 6).averageCableLength());
    EXPECT_GT(model.kAryNFlat(16, 3).averageCableLength(),
              model.kAryNFlat(2, 12).averageCableLength());
}

TEST(TopologyCost, GhcCostsKTimesMoreRouters)
{
    // Section 2.3: concentration makes the flattened butterfly "more
    // economical than the GHC, reducing its cost by a factor of k".
    TopologyCostModel model;
    const auto ghc = model.generalizedHypercube(1024, 3);
    const auto fb = model.flattenedButterfly(1024);
    EXPECT_EQ(ghc.totalRouters(), 1024);
    EXPECT_EQ(fb.totalRouters(), 32);
    EXPECT_GT(model.price(ghc).total(),
              2.0 * model.price(fb).total());
}

TEST(TopologyCost, InventoryAccountingHelpers)
{
    Inventory inv;
    inv.routers.push_back({10, 100.0, "a"});
    inv.routers.push_back({5, 50.0, "b"});
    inv.links.push_back({LinkLocale::Backplane, 0.0, 7, 3.0,
                         "terminal"});
    inv.links.push_back({LinkLocale::GlobalCable, 4.0, 9, 3.0,
                         "x"});
    inv.links.push_back({LinkLocale::LocalCable, 2.0, 9, 3.0, "y"});
    EXPECT_EQ(inv.totalRouters(), 15);
    EXPECT_EQ(inv.totalLinks(true), 25);
    EXPECT_EQ(inv.totalLinks(false), 18);
    // Backplane excluded; equal signal weights -> plain average.
    EXPECT_NEAR(inv.averageCableLength(), 3.0, 1e-12);
}

TEST(TopologyCost, PricingIsLinearInCounts)
{
    TopologyCostModel model;
    Inventory one;
    one.links.push_back({LinkLocale::GlobalCable, 5.0, 1, 3.0, "x"});
    Inventory ten = one;
    ten.links[0].count = 10;
    EXPECT_NEAR(model.price(ten).linkCost,
                10.0 * model.price(one).linkCost, 1e-9);
}

} // namespace
} // namespace fbfly
