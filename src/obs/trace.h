/**
 * @file
 * Flit-lifecycle tracing (docs/OBSERVABILITY.md).
 *
 * A TraceSink records one TraceRecord per flit-lifecycle event —
 * injection, VC allocation (route decision), switch allocation
 * (traversal grant), link traversal, retransmission, nack, drop,
 * ejection — into a preallocated ring buffer.  Every event is tagged
 * with a *track*: a small integer naming the router, channel or
 * terminal it happened on, which becomes one timeline row in the
 * Chrome trace_event / Perfetto export (obs/trace_export.h).
 *
 * Cost discipline (the observability layer must never distort the
 * hot path it observes):
 *
 *  - **disabled** tracing is one branch: components hold a
 *    `TraceSink *` that is nullptr when tracing is off, and every
 *    record site goes through FBFLY_TRACE(), which tests the pointer
 *    and does nothing else.  Defining FBFLY_TRACE_DISABLED at compile
 *    time removes even that branch.
 *  - **enabled** tracing is an array store: the ring buffer is
 *    preallocated at construction, record() never allocates, and a
 *    run-time event mask (setMask / TraceLevel) drops unwanted
 *    categories before the store.
 *
 * Determinism: a TraceSink is single-simulation state (one Network,
 * one sink), written only from that simulation's thread.  The sweep
 * engine gives every point its own sink, and sinks are compared /
 * merged strictly in point-index order, so traces are bit-identical
 * for any `--threads N` — the PR 2 determinism contract extended to
 * observability (tests/test_obs_determinism.cc).
 */

#ifndef FBFLY_OBS_TRACE_H
#define FBFLY_OBS_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "network/flit.h"

namespace fbfly
{

/** Flit-lifecycle event categories. */
enum class TraceEventType : std::uint8_t
{
    /** Flit left its source queue onto the injection channel
     *  (terminal track). */
    kInject = 0,
    /** Routing decision made: output port + VC chosen for a buffered
     *  head flit (router track; a = outPort, b = outVc). */
    kVcAlloc = 1,
    /** Switch allocation grant: the flit won arbitration and departed
     *  on its output channel (router track; a = outPort, b = outVc). */
    kSwAlloc = 2,
    /** First wire attempt on an inter-router channel (channel
     *  track). */
    kLinkTraverse = 3,
    /** Retransmission wire attempt by the link-layer retry protocol
     *  (channel track). */
    kRetry = 4,
    /** Receiver nacked a corrupted or out-of-sequence arrival
     *  (channel track; a = expected link sequence, saturated). */
    kNack = 5,
    /** Flit dropped by a router (unreachable destination or wormhole
     *  truncation; router track). */
    kDrop = 6,
    /** Flit ejected at its destination terminal (terminal track). */
    kEject = 7,
    /** Service event: a channel or router went down (churn model;
     *  channel/router track; a = entity index, b = churn episode). */
    kChurn = 8,
    /** Service event: a channel or router came back up after repair
     *  (channel/router track; a = entity index, b = churn episode). */
    kRepair = 9,
    /** Liveness diagnosis: this lane is a member of a diagnosed
     *  cyclic VC dependency (channel track; a = VC, b = upstream
     *  credit level; see sim/liveness.h). */
    kDeadlock = 10,
    /** Liveness recovery action applied (router track; a = input
     *  port of the killed victim or -1 for escape-drain, b = flits
     *  killed). */
    kRecovery = 11,
};

/** Number of TraceEventType values (for per-type counters). */
inline constexpr int kNumTraceEventTypes = 12;

/** Short lowercase name of an event type ("inject", ...). */
const char *toString(TraceEventType t);

/**
 * Coarse run-time gating levels (each is an event mask preset).
 */
enum class TraceLevel : std::uint8_t
{
    /** Record nothing (mask 0); prefer a null sink pointer when the
     *  decision is static. */
    kOff = 0,
    /** Packet-boundary events only: inject, eject, drop — plus the
     *  (rare) churn/repair service events, which reconfigure the
     *  network and so belong in even the coarsest timeline. */
    kPackets = 1,
    /** Everything (the default). */
    kFull = 2,
};

/**
 * One traced event.  Fixed-size, integer-only — so the canonical text
 * serialization (toText) is byte-identical across platforms, build
 * modes and sanitizers, which the golden-trace regression fixture
 * relies on.
 */
struct TraceRecord
{
    Cycle cycle = 0;
    FlitId flit = 0;
    PacketId packet = 0;
    NodeId src = kInvalid;
    NodeId dst = kInvalid;
    /** Track (timeline row) the event belongs to. */
    std::int32_t track = -1;
    /** Event-specific operands (port/VC/sequence); -1 when unused. */
    std::int32_t a = -1;
    std::int32_t b = -1;
    TraceEventType type = TraceEventType::kInject;
};

/** What a track represents (names the Perfetto row grouping). */
enum class TrackKind : std::uint8_t
{
    kRouter = 0,
    kChannel = 1,
    kTerminal = 2,
};

/**
 * Ring-buffer trace sink; see the file comment for the contract.
 */
class TraceSink
{
  public:
    /** Default ring capacity: 1 Mi events (~48 MiB). */
    static constexpr std::size_t kDefaultCapacity =
        std::size_t{1} << 20;

    /**
     * @param capacity ring size in events (>= 1).  When the ring is
     *        full the *oldest* events are overwritten (the tail of a
     *        run is usually the interesting part) and
     *        droppedRecords() counts the loss.
     */
    explicit TraceSink(std::size_t capacity = kDefaultCapacity);

    /** @name Run-time gating @{ */

    /** Set the event mask from a coarse level preset. */
    void setLevel(TraceLevel level);

    /** Set the event mask directly (bit i gates TraceEventType i). */
    void setMask(std::uint32_t mask) { mask_ = mask; }

    std::uint32_t mask() const { return mask_; }

    /** True when @p t passes the current mask. */
    bool wants(TraceEventType t) const
    {
        return (mask_ &
                (1u << static_cast<unsigned>(t))) != 0;
    }

    /** @} */

    /** @name Track registry @{ */

    struct Track
    {
        std::string name;
        TrackKind kind;
    };

    /** Register a track; returns its id.  Called once per
     *  router/channel/terminal by Network at construction, in a
     *  deterministic order. */
    std::int32_t addTrack(std::string name, TrackKind kind);

    const std::vector<Track> &tracks() const { return tracks_; }

    /** @} */

    /** @name Recording (hot path) @{ */

    /**
     * Record one event.  Never allocates; drops silently (with a
     * count) once the mask rejects the type, and overwrites the
     * oldest event when the ring is full.
     */
    void record(TraceEventType type, Cycle cycle, std::int32_t track,
                const Flit &f, std::int32_t a = -1,
                std::int32_t b = -1);

    /** @} */

    /** @name Sharded-step staging @{
     *
     * Phase workers of a sharded step (DESIGN.md "Sharded step
     * engine") must not write the shared ring concurrently, so each
     * shard stages its records into a private buffer installed
     * thread-locally; the serial commit replays each phase segment in
     * ascending-shard order — the exact order the sequential loop
     * would have recorded — keeping the ring contents, overwrite
     * behavior and counters bit-identical.
     */

    /** Per-shard record staging buffer. */
    struct Stage
    {
        struct StagedRecord
        {
            TraceEventType type;
            Cycle cycle;
            std::int32_t track;
            Flit flit;
            std::int32_t a;
            std::int32_t b;
        };
        std::vector<StagedRecord> recs;
        /** Segment end offsets into `recs` (one per mark()). */
        std::vector<std::size_t> seg;

        void reset()
        {
            recs.clear();
            seg.clear();
        }

        /** Close the current phase segment. */
        void mark() { seg.push_back(recs.size()); }
    };

    /** Install @p stage as this thread's record redirect (nullptr to
     *  restore direct recording). */
    static void stageTo(Stage *stage) { tlsStage_ = stage; }

    /** RAII installer for stageTo(). */
    class StageGuard
    {
      public:
        explicit StageGuard(Stage *stage) { stageTo(stage); }
        ~StageGuard() { stageTo(nullptr); }
        StageGuard(const StageGuard &) = delete;
        StageGuard &operator=(const StageGuard &) = delete;
    };

    /** Replay phase segment @p seg_index of a staged record list
     *  through the real record() (serial commit path). */
    void replayStaged(const Stage &s, std::size_t seg_index);

    /**
     * Record one counter sample (a numeric time series point on a
     * track, e.g. per-channel utilization).  Kept in a separate
     * bounded buffer; exported as Chrome "C" (counter) events.
     */
    void counter(std::int32_t track, Cycle cycle, double value);

    /** @} */

    /** @name Reading @{ */

    /** Events currently held (<= capacity). */
    std::size_t size() const { return size_; }

    std::size_t capacity() const { return ring_.size(); }

    /** @p i-th held event in chronological order (0 = oldest). */
    const TraceRecord &at(std::size_t i) const;

    /** Events ever accepted by the mask (recorded + overwritten). */
    std::uint64_t recorded() const { return recorded_; }

    /** Events lost to ring overwrite. */
    std::uint64_t droppedRecords() const
    {
        return recorded_ > size_ ? recorded_ - size_ : 0;
    }

    /** Events of type @p t ever accepted (survives overwrite). */
    std::uint64_t count(TraceEventType t) const
    {
        return counts_[static_cast<std::size_t>(t)];
    }

    struct CounterSample
    {
        Cycle cycle;
        std::int32_t track;
        double value;
    };

    const std::vector<CounterSample> &counterSamples() const
    {
        return counterSamples_;
    }

    /** Counter samples dropped once the counter buffer filled. */
    std::uint64_t droppedCounterSamples() const
    {
        return droppedCounters_;
    }

    /** @} */

    /**
     * Canonical text serialization: a track table followed by one
     * line per held event (chronological) and per counter sample —
     * integers and round-trip-exact doubles only, '\n' line endings.
     * Byte-identical across platforms for identical simulations; the
     * golden-trace fixture (tests/test_golden_trace.cc) and the
     * thread-count determinism test compare this form.
     */
    std::string toText() const;

  private:
    /** Per-thread record redirect for phased stepping (null when the
     *  thread writes the ring directly). */
    static inline thread_local Stage *tlsStage_ = nullptr;

    std::vector<TraceRecord> ring_;
    std::size_t head_ = 0; ///< next write position
    std::size_t size_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint32_t mask_;
    std::uint64_t counts_[kNumTraceEventTypes] = {};
    std::vector<Track> tracks_;
    std::vector<CounterSample> counterSamples_;
    std::size_t counterCapacity_;
    std::uint64_t droppedCounters_ = 0;
};

/**
 * Record-site macro: one pointer test when tracing is off, nothing
 * at all when compiled out with FBFLY_TRACE_DISABLED.
 */
#ifndef FBFLY_TRACE_DISABLED
#define FBFLY_TRACE(sink, ...)                                        \
    do {                                                              \
        if ((sink) != nullptr)                                        \
            (sink)->record(__VA_ARGS__);                              \
    } while (0)
#else
#define FBFLY_TRACE(sink, ...)                                        \
    do {                                                              \
    } while (0)
#endif

} // namespace fbfly

#endif // FBFLY_OBS_TRACE_H
