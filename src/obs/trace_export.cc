#include "obs/trace_export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/log.h"

namespace fbfly
{

namespace
{

void
jsonString(std::ostringstream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\r':
            os << "\\r";
            break;
        case '\t':
            os << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
jsonNumber(std::ostringstream &os, double x)
{
    if (!std::isfinite(x)) {
        os << "null";
        return;
    }
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, x);
        if (std::strtod(buf, nullptr) == x)
            break;
    }
    os << buf;
}

/** Emit a metadata event naming a process or thread. */
void
writeMeta(std::ostringstream &os, bool &first, const char *what,
          std::size_t pid, std::int64_t tid, const std::string &name)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "    {\"ph\": \"M\", \"pid\": " << pid;
    if (tid >= 0)
        os << ", \"tid\": " << tid;
    os << ", \"name\": \"" << what << "\", \"args\": {\"name\": ";
    jsonString(os, name);
    os << "}}";
}

} // namespace

std::string
tracesToChromeJson(const std::vector<TracePoint> &points)
{
    std::ostringstream os;
    os << "{\"traceEvents\": [\n";
    bool first = true;
    for (std::size_t pid = 0; pid < points.size(); ++pid) {
        const TracePoint &pt = points[pid];
        if (pt.trace == nullptr)
            continue;
        const TraceSink &sink = *pt.trace;

        writeMeta(os, first, "process_name", pid, -1,
                  pt.label.empty()
                      ? "point " + std::to_string(pid)
                      : pt.label);
        const auto &tracks = sink.tracks();
        for (std::size_t t = 0; t < tracks.size(); ++t) {
            writeMeta(os, first, "thread_name", pid,
                      static_cast<std::int64_t>(t), tracks[t].name);
        }

        char buf[256];
        for (std::size_t i = 0; i < sink.size(); ++i) {
            const TraceRecord &r = sink.at(i);
            if (!first)
                os << ",\n";
            first = false;
            // One cycle = 1 us of trace time.
            std::snprintf(
                buf, sizeof buf,
                "    {\"ph\": \"i\", \"s\": \"t\", \"pid\": %zu, "
                "\"tid\": %d, \"ts\": %" PRIu64 ", \"name\": "
                "\"%s\", \"args\": {\"flit\": %" PRIu64
                ", \"packet\": %" PRIu64
                ", \"src\": %d, \"dst\": %d, \"a\": %d, \"b\": %d}}",
                pid, r.track, static_cast<std::uint64_t>(r.cycle),
                toString(r.type), static_cast<std::uint64_t>(r.flit),
                static_cast<std::uint64_t>(r.packet), r.src, r.dst,
                r.a, r.b);
            os << buf;
        }

        for (const TraceSink::CounterSample &c :
             sink.counterSamples()) {
            if (!first)
                os << ",\n";
            first = false;
            os << "    {\"ph\": \"C\", \"pid\": " << pid
               << ", \"tid\": " << c.track << ", \"ts\": "
               << static_cast<std::uint64_t>(c.cycle)
               << ", \"name\": ";
            const std::string &track_name =
                c.track >= 0 && static_cast<std::size_t>(c.track) <
                                     sink.tracks().size()
                    ? sink.tracks()[static_cast<std::size_t>(c.track)]
                          .name
                    : std::string("counter");
            jsonString(os, track_name + " util");
            os << ", \"args\": {\"value\": ";
            jsonNumber(os, c.value);
            os << "}}";
        }
    }
    os << "\n  ],\n  \"displayTimeUnit\": \"ms\"\n}";
    return os.str();
}

bool
writeChromeTrace(const std::string &path,
                 const std::vector<TracePoint> &points)
{
    std::ofstream out(path);
    if (!out) {
        FBFLY_WARN("cannot open '", path, "' for trace output");
        return false;
    }
    out << tracesToChromeJson(points) << "\n";
    out.flush();
    if (!out) {
        FBFLY_WARN("short write of trace JSON to '", path, "'");
        return false;
    }
    return true;
}

} // namespace fbfly
