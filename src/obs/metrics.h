/**
 * @file
 * MetricsRegistry — named counters, gauges and time series
 * (docs/OBSERVABILITY.md).
 *
 * A registry is a deterministic, insertion-ordered bag of
 *
 *  - **counters**: monotonic uint64 totals (flits injected, wire
 *    attempts, trace events per type, ...);
 *  - **gauges**: instantaneous doubles (latency summary statistics,
 *    utilization means, ...);
 *  - **series**: fixed-cadence double time series (per-window channel
 *    utilization, per-VC buffer occupancy, ...) with their window
 *    width recorded alongside.
 *
 * One registry belongs to one simulation point; the sweep engine
 * snapshots a registry per point and the result writer embeds it in
 * the per-point JSON ("metrics" object).  Equality is exact —
 * bit-identical doubles — which is what the `--threads 1` vs
 * `--threads N` determinism test compares.
 */

#ifndef FBFLY_OBS_METRICS_H
#define FBFLY_OBS_METRICS_H

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace fbfly
{

/**
 * Insertion-ordered counters / gauges / series.
 */
class MetricsRegistry
{
  public:
    struct Series
    {
        /** Window width in cycles (sampling cadence). */
        std::uint64_t windowCycles = 0;
        /** First cycle covered by values[0]. */
        std::uint64_t startCycle = 0;
        std::vector<double> values;

        bool operator==(const Series &o) const = default;
    };

    /** @name Writing @{ */

    /** Set (or create) counter @p name. */
    void setCounter(const std::string &name, std::uint64_t value);

    /** Add @p delta to counter @p name (created at 0). */
    void addCounter(const std::string &name, std::uint64_t delta);

    /** Set (or create) gauge @p name. */
    void setGauge(const std::string &name, double value);

    /** Get-or-create series @p name (window set on creation). */
    Series &series(const std::string &name,
                   std::uint64_t window_cycles,
                   std::uint64_t start_cycle);

    /** @} */

    /** @name Reading @{ */

    /** Counter value, or 0 when absent. */
    std::uint64_t counter(const std::string &name) const;

    /** True when counter @p name exists. */
    bool hasCounter(const std::string &name) const;

    /** Gauge value, or NaN when absent. */
    double gauge(const std::string &name) const;

    /** Series lookup; nullptr when absent. */
    const Series *findSeries(const std::string &name) const;

    /** Insertion-ordered views. */
    const std::vector<std::pair<std::string, std::uint64_t>> &
    counters() const
    {
        return counters_;
    }
    const std::vector<std::pair<std::string, double>> &gauges() const
    {
        return gauges_;
    }
    const std::vector<std::pair<std::string, Series>> &
    allSeries() const
    {
        return series_;
    }

    bool empty() const
    {
        return counters_.empty() && gauges_.empty() &&
               series_.empty();
    }

    /** @} */

    /**
     * Exact (bit-identical doubles) equality, used by the
     * thread-count determinism contract.
     */
    bool operator==(const MetricsRegistry &o) const;

    /**
     * Append this registry as a JSON object:
     * `{"counters": {...}, "gauges": {...}, "series": {...}}` with
     * NaN/inf rendered as null and doubles in shortest round-trip
     * form (the fbfly-sweep-v1 conventions).
     */
    void writeJson(std::ostream &os) const;

  private:
    std::vector<std::pair<std::string, std::uint64_t>> counters_;
    std::vector<std::pair<std::string, double>> gauges_;
    std::vector<std::pair<std::string, Series>> series_;
    std::unordered_map<std::string, std::size_t> counterIndex_;
    std::unordered_map<std::string, std::size_t> gaugeIndex_;
    std::unordered_map<std::string, std::size_t> seriesIndex_;
};

} // namespace fbfly

#endif // FBFLY_OBS_METRICS_H
