/**
 * @file
 * ObsSampler — fixed-cadence observability sampling
 * (docs/OBSERVABILITY.md).
 *
 * Ticks once per simulated cycle alongside the network and, at every
 * window boundary (the same cadence as the harness
 * TimeSeriesSampler), derives:
 *
 *  - **per-channel utilization**: flits carried by each inter-router
 *    channel during the window, divided by the window width — the
 *    mean and max across channels go into MetricsRegistry series
 *    ("obs.channel_util.mean" / "obs.channel_util.max"), and, when a
 *    TraceSink is attached, each channel's own utilization becomes a
 *    counter sample on that channel's track (a Perfetto counter row);
 *  - **per-VC buffer occupancy**: flits buffered network-wide on each
 *    virtual channel, one series per VC ("obs.vc_occ.vc<k>").
 *
 * The sampler also integrates the per-channel flit deltas into a
 * running total, which the conservation property test
 * (tests/test_conservation.cc) reconciles against flits-delivered
 * from the DeliveryOracle / NetworkStats.
 *
 * Cost discipline: tick() is a branch + compare per cycle; all real
 * work happens only on window boundaries.
 */

#ifndef FBFLY_OBS_OBS_SAMPLER_H
#define FBFLY_OBS_OBS_SAMPLER_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace fbfly
{

class Network;
class MetricsRegistry;

/**
 * Window-cadence sampler over one Network; see the file comment.
 */
class ObsSampler
{
  public:
    /**
     * @param net           the network to observe (must outlive the
     *                      sampler).  Baseline channel counts are
     *                      snapshotted here, so construct the sampler
     *                      at the cycle sampling should start.
     * @param registry      destination for the utilization/occupancy
     *                      series.
     * @param window_cycles window width in cycles (>= 1).
     */
    ObsSampler(Network &net, MetricsRegistry &registry,
               std::uint64_t window_cycles);

    /** Call once per cycle, after Network::step(). */
    void tick();

    /**
     * Close out: emit the final partial window (if any cycles
     * elapsed since the last boundary) and publish summary gauges
     * ("obs.channel_util.overall_mean", "obs.windows").
     * Idempotent; further tick() calls are ignored.
     */
    void finish();

    /**
     * Sum over all inter-router channels of flits carried since
     * construction (integral of utilization over the observed
     * interval).  Valid at any time.
     */
    std::uint64_t integratedChannelFlits() const;

    /** Completed windows so far. */
    std::uint64_t windows() const { return windows_; }

    std::uint64_t windowCycles() const { return windowCycles_; }

  private:
    /** Emit one window covering @p cycles cycles (>= 1). */
    void emitWindow(std::uint64_t cycles);

    Network &net_;
    MetricsRegistry &registry_;
    std::uint64_t windowCycles_;
    /** Cycle at which sampling started (construction time). */
    Cycle startCycle_;
    /** Cycle of the last emitted boundary. */
    Cycle lastBoundary_;
    /** Per-arc flit counts at the last boundary. */
    std::vector<std::uint64_t> lastCounts_;
    /** Per-arc flit counts at construction (integral baseline). */
    std::vector<std::uint64_t> baseCounts_;
    std::uint64_t windows_ = 0;
    /** Sum of per-window mean utilizations (for the overall mean). */
    double utilMeanSum_ = 0.0;
    bool finished_ = false;
};

} // namespace fbfly

#endif // FBFLY_OBS_OBS_SAMPLER_H
