/**
 * @file
 * Chrome trace_event-format exporter (docs/OBSERVABILITY.md).
 *
 * Serializes one or more TraceSinks into the legacy Chrome
 * `trace_event` JSON array format, which Perfetto
 * (https://ui.perfetto.dev) loads directly:
 *
 *  - each *point* (one simulation / TraceSink) becomes one process
 *    (`pid` = point index, named by a process_name metadata event);
 *  - each *track* (router / channel / terminal) becomes one thread
 *    (`tid` = track id, named by a thread_name metadata event);
 *  - flit-lifecycle events become thread-scoped instant events
 *    (`"ph": "i"`, `"s": "t"`) carrying flit/packet/src/dst/port/vc
 *    args;
 *  - counter samples (per-channel utilization, per-VC occupancy)
 *    become counter events (`"ph": "C"`).
 *
 * Timebase: one simulated cycle = 1 µs of trace time (`ts` is in
 * microseconds in the trace_event format), so the Perfetto timeline
 * reads directly in cycles.
 *
 * Multiple points are merged strictly in the order given — for sweep
 * runs that is point-index order, independent of the thread count
 * that executed them (the determinism contract).
 */

#ifndef FBFLY_OBS_TRACE_EXPORT_H
#define FBFLY_OBS_TRACE_EXPORT_H

#include <string>
#include <vector>

#include "obs/trace.h"

namespace fbfly
{

/** One simulation's trace, labeled for the process row. */
struct TracePoint
{
    /** Process label, e.g. "point 3: fig4a MIN AD / UR @ 0.4". */
    std::string label;
    /** The events (may be null — the point is skipped). */
    const TraceSink *trace = nullptr;
};

/**
 * Render @p points as a Chrome trace_event JSON document
 * (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
 */
std::string tracesToChromeJson(const std::vector<TracePoint> &points);

/**
 * Write tracesToChromeJson() + '\n' to @p path.
 *
 * @return true on success; false (with a warning) on I/O failure.
 */
bool writeChromeTrace(const std::string &path,
                      const std::vector<TracePoint> &points);

} // namespace fbfly

#endif // FBFLY_OBS_TRACE_EXPORT_H
