#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/log.h"

namespace fbfly
{

const char *
toString(TraceEventType t)
{
    switch (t) {
    case TraceEventType::kInject:
        return "inject";
    case TraceEventType::kVcAlloc:
        return "vc-alloc";
    case TraceEventType::kSwAlloc:
        return "sw-alloc";
    case TraceEventType::kLinkTraverse:
        return "link";
    case TraceEventType::kRetry:
        return "retry";
    case TraceEventType::kNack:
        return "nack";
    case TraceEventType::kDrop:
        return "drop";
    case TraceEventType::kEject:
        return "eject";
    case TraceEventType::kChurn:
        return "churn";
    case TraceEventType::kRepair:
        return "repair";
    case TraceEventType::kDeadlock:
        return "deadlock";
    case TraceEventType::kRecovery:
        return "recovery";
    }
    return "?";
}

namespace
{

std::uint32_t
levelMask(TraceLevel level)
{
    switch (level) {
    case TraceLevel::kOff:
        return 0;
    case TraceLevel::kPackets:
        return (1u << static_cast<unsigned>(TraceEventType::kInject)) |
               (1u << static_cast<unsigned>(TraceEventType::kDrop)) |
               (1u << static_cast<unsigned>(TraceEventType::kEject)) |
               (1u << static_cast<unsigned>(TraceEventType::kChurn)) |
               (1u << static_cast<unsigned>(TraceEventType::kRepair)) |
               (1u <<
                static_cast<unsigned>(TraceEventType::kDeadlock)) |
               (1u <<
                static_cast<unsigned>(TraceEventType::kRecovery));
    case TraceLevel::kFull:
        break;
    }
    return (1u << kNumTraceEventTypes) - 1u;
}

} // namespace

TraceSink::TraceSink(std::size_t capacity)
    : mask_(levelMask(TraceLevel::kFull)),
      counterCapacity_(capacity)
{
    FBFLY_ASSERT(capacity >= 1, "trace ring capacity must be >= 1");
    ring_.resize(capacity);
}

void
TraceSink::setLevel(TraceLevel level)
{
    mask_ = levelMask(level);
}

std::int32_t
TraceSink::addTrack(std::string name, TrackKind kind)
{
    const auto id = static_cast<std::int32_t>(tracks_.size());
    tracks_.push_back({std::move(name), kind});
    return id;
}

void
TraceSink::record(TraceEventType type, Cycle cycle,
                  std::int32_t track, const Flit &f, std::int32_t a,
                  std::int32_t b)
{
    if (!wants(type))
        return;
    if (Stage *s = tlsStage_; s != nullptr) {
        s->recs.push_back({type, cycle, track, f, a, b});
        return;
    }
    TraceRecord &r = ring_[head_];
    r.cycle = cycle;
    r.flit = f.id;
    r.packet = f.packet;
    r.src = f.src;
    r.dst = f.dst;
    r.track = track;
    r.a = a;
    r.b = b;
    r.type = type;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (size_ < ring_.size())
        ++size_;
    ++recorded_;
    ++counts_[static_cast<std::size_t>(type)];
}

void
TraceSink::replayStaged(const Stage &s, std::size_t seg_index)
{
    FBFLY_ASSERT(seg_index < s.seg.size(),
                 "staged trace segment out of range");
    FBFLY_ASSERT(tlsStage_ == nullptr,
                 "trace replay must not run with a stage installed");
    const std::size_t lo = seg_index == 0 ? 0 : s.seg[seg_index - 1];
    const std::size_t hi = s.seg[seg_index];
    for (std::size_t i = lo; i < hi; ++i) {
        const Stage::StagedRecord &r = s.recs[i];
        record(r.type, r.cycle, r.track, r.flit, r.a, r.b);
    }
}

void
TraceSink::counter(std::int32_t track, Cycle cycle, double value)
{
    if (counterSamples_.size() >= counterCapacity_) {
        ++droppedCounters_;
        return;
    }
    counterSamples_.push_back({cycle, track, value});
}

const TraceRecord &
TraceSink::at(std::size_t i) const
{
    FBFLY_ASSERT(i < size_, "trace record index out of range");
    // Oldest record sits at head_ when the ring has wrapped, else 0.
    const std::size_t start =
        size_ == ring_.size() ? head_ : std::size_t{0};
    std::size_t pos = start + i;
    if (pos >= ring_.size())
        pos -= ring_.size();
    return ring_[pos];
}

std::string
TraceSink::toText() const
{
    std::ostringstream os;
    os << "fbfly-trace-v1 tracks=" << tracks_.size()
       << " events=" << size_ << " recorded=" << recorded_
       << " dropped=" << droppedRecords()
       << " counters=" << counterSamples_.size() << "\n";
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
        static const char *kKind[] = {"router", "channel", "terminal"};
        os << "track " << i << ' '
           << kKind[static_cast<std::size_t>(tracks_[i].kind)] << ' '
           << tracks_[i].name << "\n";
    }
    char line[192];
    for (std::size_t i = 0; i < size_; ++i) {
        const TraceRecord &r = at(i);
        std::snprintf(line, sizeof line,
                      "%" PRIu64 " %d %s flit=%" PRIu64
                      " pkt=%" PRIu64 " src=%d dst=%d a=%d b=%d\n",
                      static_cast<std::uint64_t>(r.cycle), r.track,
                      toString(r.type),
                      static_cast<std::uint64_t>(r.flit),
                      static_cast<std::uint64_t>(r.packet), r.src,
                      r.dst, r.a, r.b);
        os << line;
    }
    for (const CounterSample &c : counterSamples_) {
        // Round-trip-exact double formatting (like the JSON writer):
        // the shortest %g form that parses back to the same bits.
        char num[40];
        for (int prec = 15; prec <= 17; ++prec) {
            std::snprintf(num, sizeof num, "%.*g", prec, c.value);
            if (std::strtod(num, nullptr) == c.value)
                break;
        }
        std::snprintf(line, sizeof line,
                      "%" PRIu64 " %d counter %s\n",
                      static_cast<std::uint64_t>(c.cycle), c.track,
                      num);
        os << line;
    }
    return os.str();
}

} // namespace fbfly
