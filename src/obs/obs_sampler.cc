#include "obs/obs_sampler.h"

#include <algorithm>
#include <string>

#include "common/log.h"
#include "network/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fbfly
{

ObsSampler::ObsSampler(Network &net, MetricsRegistry &registry,
                       std::uint64_t window_cycles)
    : net_(net),
      registry_(registry),
      windowCycles_(window_cycles),
      startCycle_(net.now()),
      lastBoundary_(net.now()),
      lastCounts_(net.interRouterFlitCounts()),
      baseCounts_(lastCounts_)
{
    FBFLY_ASSERT(window_cycles >= 1,
                 "sampler window must be >= 1 cycle");
}

void
ObsSampler::tick()
{
    if (finished_)
        return;
    const Cycle now = net_.now();
    if (now - lastBoundary_ < windowCycles_)
        return;
    emitWindow(windowCycles_);
    lastBoundary_ = now;
}

void
ObsSampler::finish()
{
    if (finished_)
        return;
    const Cycle now = net_.now();
    if (now > lastBoundary_) {
        emitWindow(now - lastBoundary_);
        lastBoundary_ = now;
    }
    registry_.setGauge("obs.windows",
                       static_cast<double>(windows_));
    registry_.setGauge("obs.channel_util.overall_mean",
                       windows_ > 0
                           ? utilMeanSum_ /
                                 static_cast<double>(windows_)
                           : 0.0);
    registry_.setCounter("obs.channel_flits_integrated",
                         integratedChannelFlits());
    finished_ = true;
}

std::uint64_t
ObsSampler::integratedChannelFlits() const
{
    const std::vector<std::uint64_t> counts =
        net_.interRouterFlitCounts();
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < counts.size(); ++i)
        total += counts[i] - baseCounts_[i];
    return total;
}

void
ObsSampler::emitWindow(std::uint64_t cycles)
{
    const Cycle now = net_.now();
    const std::vector<std::uint64_t> counts =
        net_.interRouterFlitCounts();
    TraceSink *sink = net_.traceSink();

    // Per-channel utilization: flits carried this window / cycles.
    double sum = 0.0;
    double max = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const std::uint64_t delta = counts[i] - lastCounts_[i];
        const double util = static_cast<double>(delta) /
                            static_cast<double>(cycles);
        sum += util;
        max = std::max(max, util);
        if (sink != nullptr) {
            const std::int32_t track = net_.arcTrack(i);
            if (track >= 0)
                sink->counter(track, now, util);
        }
    }
    const double mean =
        counts.empty() ? 0.0
                       : sum / static_cast<double>(counts.size());
    utilMeanSum_ += mean;

    registry_.series("obs.channel_util.mean", windowCycles_,
                     startCycle_)
        .values.push_back(mean);
    registry_.series("obs.channel_util.max", windowCycles_,
                     startCycle_)
        .values.push_back(max);

    // Per-VC buffer occupancy (instantaneous, network-wide).
    const int num_vcs = net_.numVcs();
    for (VcId vc = 0; vc < num_vcs; ++vc) {
        registry_
            .series("obs.vc_occ.vc" + std::to_string(vc),
                    windowCycles_, startCycle_)
            .values.push_back(
                static_cast<double>(net_.bufferedFlitsOnVc(vc)));
    }

    lastCounts_ = counts;
    ++windows_;
}

} // namespace fbfly
