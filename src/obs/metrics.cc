#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

namespace fbfly
{

namespace
{

/** JSON string literal with escaping (metric names are plain ASCII
 *  in practice, but stay correct for anything). */
void
jsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\r':
            os << "\\r";
            break;
        case '\t':
            os << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/** Shortest round-trip double; NaN/inf as null (fbfly-sweep-v1). */
void
jsonNumber(std::ostream &os, double x)
{
    if (!std::isfinite(x)) {
        os << "null";
        return;
    }
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, x);
        if (std::strtod(buf, nullptr) == x)
            break;
    }
    os << buf;
}

} // namespace

void
MetricsRegistry::setCounter(const std::string &name,
                            std::uint64_t value)
{
    const auto it = counterIndex_.find(name);
    if (it != counterIndex_.end()) {
        counters_[it->second].second = value;
        return;
    }
    counterIndex_.emplace(name, counters_.size());
    counters_.emplace_back(name, value);
}

void
MetricsRegistry::addCounter(const std::string &name,
                            std::uint64_t delta)
{
    const auto it = counterIndex_.find(name);
    if (it != counterIndex_.end()) {
        counters_[it->second].second += delta;
        return;
    }
    counterIndex_.emplace(name, counters_.size());
    counters_.emplace_back(name, delta);
}

void
MetricsRegistry::setGauge(const std::string &name, double value)
{
    const auto it = gaugeIndex_.find(name);
    if (it != gaugeIndex_.end()) {
        gauges_[it->second].second = value;
        return;
    }
    gaugeIndex_.emplace(name, gauges_.size());
    gauges_.emplace_back(name, value);
}

MetricsRegistry::Series &
MetricsRegistry::series(const std::string &name,
                        std::uint64_t window_cycles,
                        std::uint64_t start_cycle)
{
    const auto it = seriesIndex_.find(name);
    if (it != seriesIndex_.end())
        return series_[it->second].second;
    seriesIndex_.emplace(name, series_.size());
    series_.emplace_back(name, Series{window_cycles, start_cycle, {}});
    return series_.back().second;
}

std::uint64_t
MetricsRegistry::counter(const std::string &name) const
{
    const auto it = counterIndex_.find(name);
    return it != counterIndex_.end() ? counters_[it->second].second
                                     : 0;
}

bool
MetricsRegistry::hasCounter(const std::string &name) const
{
    return counterIndex_.find(name) != counterIndex_.end();
}

double
MetricsRegistry::gauge(const std::string &name) const
{
    const auto it = gaugeIndex_.find(name);
    return it != gaugeIndex_.end()
               ? gauges_[it->second].second
               : std::numeric_limits<double>::quiet_NaN();
}

const MetricsRegistry::Series *
MetricsRegistry::findSeries(const std::string &name) const
{
    const auto it = seriesIndex_.find(name);
    return it != seriesIndex_.end() ? &series_[it->second].second
                                    : nullptr;
}

bool
MetricsRegistry::operator==(const MetricsRegistry &o) const
{
    // Exact comparison, including NaN gauges: compare bit patterns
    // via the round-trip rule (NaN == NaN here, unlike IEEE) so a
    // "both unobserved" pair does not spuriously differ.
    if (counters_ != o.counters_ || series_ != o.series_)
        return false;
    if (gauges_.size() != o.gauges_.size())
        return false;
    for (std::size_t i = 0; i < gauges_.size(); ++i) {
        if (gauges_[i].first != o.gauges_[i].first)
            return false;
        const double a = gauges_[i].second;
        const double b = o.gauges_[i].second;
        if (std::isnan(a) && std::isnan(b))
            continue;
        if (a != b)
            return false;
    }
    return true;
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    os << "{\"counters\": {";
    for (std::size_t i = 0; i < counters_.size(); ++i) {
        if (i > 0)
            os << ", ";
        jsonString(os, counters_[i].first);
        os << ": " << counters_[i].second;
    }
    os << "}, \"gauges\": {";
    for (std::size_t i = 0; i < gauges_.size(); ++i) {
        if (i > 0)
            os << ", ";
        jsonString(os, gauges_[i].first);
        os << ": ";
        jsonNumber(os, gauges_[i].second);
    }
    os << "}, \"series\": {";
    for (std::size_t i = 0; i < series_.size(); ++i) {
        if (i > 0)
            os << ", ";
        jsonString(os, series_[i].first);
        const Series &s = series_[i].second;
        os << ": {\"window_cycles\": " << s.windowCycles
           << ", \"start_cycle\": " << s.startCycle
           << ", \"values\": [";
        for (std::size_t j = 0; j < s.values.size(); ++j) {
            if (j > 0)
                os << ", ";
            jsonNumber(os, s.values[j]);
        }
        os << "]}";
    }
    os << "}}";
}

} // namespace fbfly
