#include "fault/churn_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.h"
#include "common/rng.h"

namespace fbfly
{

namespace
{

constexpr std::uint64_t kLinkTag = 0x4c696e6b4368726eULL;   // "LinkChrn"
constexpr std::uint64_t kRouterTag = 0x527472436875726eULL; // "RtrChurn"

/** One exponential draw with mean @p mean, floored at one cycle
 *  (sub-cycle outages/uptimes are not representable) and capped well
 *  inside the Cycle range. */
Cycle
expDraw(Rng &rng, double mean)
{
    const double u = rng.nextDouble(); // [0, 1), so 1-u > 0
    double d = -mean * std::log1p(-u);
    if (!(d >= 1.0))
        d = 1.0;
    constexpr double kCap = 9.0e18;
    if (d > kCap)
        d = kCap;
    return static_cast<Cycle>(d);
}

/** Shortest decimal form that round-trips (metadata values). */
std::string
formatDouble(double x)
{
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, x);
        if (std::strtod(buf, nullptr) == x)
            break;
    }
    return buf;
}

} // namespace

ChurnModel::ChurnModel(const Topology &topo, const ChurnConfig &cfg)
    : topo_(topo), cfg_(cfg), arcs_(topo.arcs())
{
    const std::string bad = validateConfig();
    FBFLY_ASSERT(bad.empty(), "churn config invalid: ", bad);

    // Pair each arc with its reverse (same endpoints, swapped): a
    // link outage takes both directions down and repairs both.
    reverseArc_.assign(arcs_.size(), kNoPair);
    for (std::size_t i = 0; i < arcs_.size(); ++i) {
        if (reverseArc_[i] != kNoPair)
            continue;
        for (std::size_t j = i + 1; j < arcs_.size(); ++j) {
            if (arcs_[j].src == arcs_[i].dst &&
                arcs_[j].dst == arcs_[i].src &&
                reverseArc_[j] == kNoPair) {
                reverseArc_[i] = j;
                reverseArc_[j] = i;
                break;
            }
        }
    }

    hostsTerminal_.assign(
        static_cast<std::size_t>(topo.numRouters()), 0);
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        hostsTerminal_[topo.injectionRouter(n)] = 1;
        hostsTerminal_[topo.ejectionRouter(n)] = 1;
    }

    std::vector<Episode> episodes;
    generateEpisodes(episodes);
    buildEvents(episodes);
}

void
ChurnModel::generateEpisodes(std::vector<Episode> &episodes) const
{
    const Cycle horizon = cfg_.horizon;
    if (horizon == 0)
        return;

    // Per-entity renewal streams: derived only from (seed, kind,
    // entity index), so the schedule is independent of everything
    // else in the run (the ErrorModel determinism contract).
    if (cfg_.linkMtbf > 0.0) {
        Rng base(cfg_.seed ^ kLinkTag);
        for (std::size_t i = 0; i < arcs_.size(); ++i) {
            if (reverseArc_[i] != kNoPair && reverseArc_[i] < i)
                continue; // pair represented by the lower index
            Rng rng = base.split(i);
            Cycle t = 0;
            for (;;) {
                const Cycle up = expDraw(rng, cfg_.linkMtbf);
                if (up >= horizon - t)
                    break; // next failure lands past the horizon
                t += up;
                const Cycle down = expDraw(rng, cfg_.linkMttr);
                episodes.push_back({t, t + down, false, i, kInvalid});
                t += down;
                if (t >= horizon)
                    break;
            }
        }
    }
    if (cfg_.routerMtbf > 0.0) {
        Rng base(cfg_.seed ^ kRouterTag);
        const int num_routers = topo_.numRouters();
        for (RouterId r = 0; r < num_routers; ++r) {
            Rng rng = base.split(static_cast<std::uint64_t>(r));
            Cycle t = 0;
            for (;;) {
                const Cycle up = expDraw(rng, cfg_.routerMtbf);
                if (up >= horizon - t)
                    break;
                t += up;
                const Cycle down = expDraw(rng, cfg_.routerMttr);
                episodes.push_back(
                    {t, t + down, true, kNoPair, r});
                t += down;
                if (t >= horizon)
                    break;
            }
        }
    }
}

void
ChurnModel::buildEvents(const std::vector<Episode> &episodes)
{
    events_.clear();
    events_.reserve(episodes.size() * 2);
    for (std::size_t e = 0; e < episodes.size(); ++e) {
        const Episode &ep = episodes[e];
        ServiceEvent down;
        down.at = ep.downAt;
        down.kind = ep.isRouter ? ServiceEvent::Kind::kRouterDown
                                : ServiceEvent::Kind::kLinkDown;
        down.link = ep.link;
        down.router = ep.router;
        down.episode = e;
        ServiceEvent up = down;
        up.at = ep.upAt;
        up.kind = ep.isRouter ? ServiceEvent::Kind::kRouterUp
                              : ServiceEvent::Kind::kLinkUp;
        events_.push_back(down);
        events_.push_back(up);
    }
    // Deterministic total order: by cycle, repairs before failures
    // at the same cycle (a healed entity can carry traffic again the
    // cycle another one fails), episodes as the final tie-break.
    std::sort(events_.begin(), events_.end(),
              [](const ServiceEvent &a, const ServiceEvent &b) {
                  if (a.at != b.at)
                      return a.at < b.at;
                  if (a.isDown() != b.isDown())
                      return !a.isDown();
                  return a.episode < b.episode;
              });

    if (cfg_.preserveConnectivity && !episodes.empty()) {
        std::vector<char> cancelled(episodes.size(), 0);
        pruneDisconnecting(cancelled);
        std::vector<ServiceEvent> kept;
        kept.reserve(events_.size());
        for (const ServiceEvent &ev : events_)
            if (!cancelled[ev.episode])
                kept.push_back(ev);
        events_.swap(kept);
        for (const char c : cancelled)
            pruned_ += c ? 1 : 0;
    }

    downEvents_ = 0;
    for (const ServiceEvent &ev : events_)
        downEvents_ += ev.isDown() ? 1 : 0;
}

void
ChurnModel::pruneDisconnecting(std::vector<char> &cancelled) const
{
    const int num_routers = topo_.numRouters();
    std::vector<char> downArc(arcs_.size(), 0);
    std::vector<char> downRouter(
        static_cast<std::size_t>(num_routers), 0);

    // Strong connectivity of the *alive* terminal-hosting routers
    // over alive arcs, with one trial entity additionally down.
    const auto connected = [&](std::size_t extra_a,
                               std::size_t extra_b,
                               RouterId extra_router) {
        const auto router_down = [&](RouterId r) {
            return downRouter[static_cast<std::size_t>(r)] != 0 ||
                   r == extra_router;
        };
        RouterId seed = kInvalid;
        for (RouterId r = 0; r < num_routers; ++r) {
            if (hostsTerminal_[r] && !router_down(r)) {
                seed = r;
                break;
            }
        }
        if (seed == kInvalid)
            return true; // no alive terminal routers left to split
        const auto arc_dead = [&](std::size_t i) {
            return i == extra_a || i == extra_b || downArc[i] != 0 ||
                   router_down(arcs_[i].src) ||
                   router_down(arcs_[i].dst);
        };
        for (const bool forward : {true, false}) {
            std::vector<char> seen(num_routers, 0);
            std::vector<RouterId> frontier{seed};
            seen[seed] = 1;
            while (!frontier.empty()) {
                const RouterId r = frontier.back();
                frontier.pop_back();
                for (std::size_t i = 0; i < arcs_.size(); ++i) {
                    if (arc_dead(i))
                        continue;
                    const RouterId from =
                        forward ? arcs_[i].src : arcs_[i].dst;
                    const RouterId to =
                        forward ? arcs_[i].dst : arcs_[i].src;
                    if (from == r && !seen[to]) {
                        seen[to] = 1;
                        frontier.push_back(to);
                    }
                }
            }
            for (RouterId r = 0; r < num_routers; ++r)
                if (hostsTerminal_[r] && !router_down(r) && !seen[r])
                    return false;
        }
        return true;
    };

    for (const ServiceEvent &ev : events_) {
        if (cancelled[ev.episode])
            continue;
        switch (ev.kind) {
        case ServiceEvent::Kind::kLinkUp:
            downArc[ev.link] = 0;
            if (reverseArc_[ev.link] != kNoPair)
                downArc[reverseArc_[ev.link]] = 0;
            break;
        case ServiceEvent::Kind::kRouterUp:
            downRouter[static_cast<std::size_t>(ev.router)] = 0;
            break;
        case ServiceEvent::Kind::kLinkDown: {
            const std::size_t rev = reverseArc_[ev.link];
            if (!connected(ev.link, rev, kInvalid)) {
                cancelled[ev.episode] = 1;
                break;
            }
            downArc[ev.link] = 1;
            if (rev != kNoPair)
                downArc[rev] = 1;
            break;
        }
        case ServiceEvent::Kind::kRouterDown:
            if (!connected(kNoPair, kNoPair, ev.router)) {
                cancelled[ev.episode] = 1;
                break;
            }
            downRouter[static_cast<std::size_t>(ev.router)] = 1;
            break;
        }
    }
}

std::string
ChurnModel::validateConfig() const
{
    std::string out;
    const auto bad = [&out](const std::string &msg) {
        if (!out.empty())
            out += "; ";
        out += msg;
    };
    if (cfg_.linkMtbf < 0.0 || cfg_.linkMttr < 0.0 ||
        cfg_.routerMtbf < 0.0 || cfg_.routerMttr < 0.0)
        bad("MTBF/MTTR must be non-negative");
    if (cfg_.linkMtbf > 0.0 && cfg_.linkMttr < 1.0)
        bad("linkMtbf set but linkMttr < 1 cycle");
    if (cfg_.routerMtbf > 0.0 && cfg_.routerMttr < 1.0)
        bad("routerMtbf set but routerMttr < 1 cycle");
    if ((cfg_.linkMtbf > 0.0 && cfg_.linkMtbf < 1.0) ||
        (cfg_.routerMtbf > 0.0 && cfg_.routerMtbf < 1.0))
        bad("a nonzero MTBF must be >= 1 cycle");
    if ((cfg_.linkMtbf > 0.0 || cfg_.routerMtbf > 0.0) &&
        cfg_.horizon == 0)
        bad("churn enabled but horizon is 0");
    return out;
}

std::vector<std::pair<std::string, std::string>>
ChurnModel::metadata() const
{
    std::vector<std::pair<std::string, std::string>> kv;
    kv.emplace_back("link_mtbf", formatDouble(cfg_.linkMtbf));
    kv.emplace_back("link_mttr", formatDouble(cfg_.linkMttr));
    kv.emplace_back("router_mtbf", formatDouble(cfg_.routerMtbf));
    kv.emplace_back("router_mttr", formatDouble(cfg_.routerMttr));
    kv.emplace_back("churn_horizon", std::to_string(cfg_.horizon));
    kv.emplace_back("churn_seed", std::to_string(cfg_.seed));
    kv.emplace_back("preserve_connectivity",
                    cfg_.preserveConnectivity ? "true" : "false");
    kv.emplace_back("churn_down_events",
                    std::to_string(downEvents_));
    kv.emplace_back("churn_pruned_episodes",
                    std::to_string(pruned_));
    return kv;
}

} // namespace fbfly
