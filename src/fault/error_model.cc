#include "fault/error_model.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/log.h"

namespace fbfly
{

namespace
{

/** Shortest decimal form that round-trips (for metadata values). */
std::string
formatDouble(double x)
{
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, x);
        if (std::strtod(buf, nullptr) == x)
            break;
    }
    return buf;
}

} // namespace

ErrorModel::ErrorModel(const Topology &topo,
                       const ErrorModelConfig &cfg)
    : topo_(topo), cfg_(cfg),
      corrupt_(topo.arcs().size(), cfg.corruptRate),
      erase_(topo.arcs().size(), cfg.eraseRate)
{
}

void
ErrorModel::setUniformRates(double corrupt, double erase)
{
    cfg_.corruptRate = corrupt;
    cfg_.eraseRate = erase;
    corrupt_.assign(corrupt_.size(), corrupt);
    erase_.assign(erase_.size(), erase);
}

void
ErrorModel::setArcRates(std::size_t arc_index, double corrupt,
                        double erase)
{
    FBFLY_ASSERT(arc_index < corrupt_.size(),
                 "setArcRates arc index ", arc_index, " out of range");
    corrupt_[arc_index] = corrupt;
    erase_[arc_index] = erase;
}

LinkErrorRates
ErrorModel::arcRates(std::size_t arc_index) const
{
    FBFLY_ASSERT(arc_index < corrupt_.size(),
                 "arcRates arc index ", arc_index, " out of range");
    LinkErrorRates r;
    r.corrupt = corrupt_[arc_index];
    r.erase = erase_[arc_index];
    r.burstStart = cfg_.burstStart;
    r.burstStop = cfg_.burstStop;
    r.burstFactor = cfg_.burstFactor;
    return r;
}

Rng
ErrorModel::arcRng(std::size_t arc_index) const
{
    // Channel-private stream: depends only on (model seed, arc
    // index), never on event order, so results are reproducible at
    // any sweep-engine thread count.
    Rng base(cfg_.seed ^ 0x4c696e6b45727273ULL); // "LinkErrs"
    return base.split(arc_index);
}

bool
ErrorModel::anyErrors() const
{
    for (std::size_t i = 0; i < corrupt_.size(); ++i) {
        if (corrupt_[i] > 0.0 || erase_[i] > 0.0)
            return true;
    }
    return false;
}

std::string
ErrorModel::validateRates() const
{
    std::ostringstream os;
    auto prob = [&os](const char *name, double p) {
        if (!(p >= 0.0 && p <= 1.0))
            os << name << " must be in [0, 1] (got " << p << ")\n";
    };
    prob("burstStart", cfg_.burstStart);
    prob("burstStop", cfg_.burstStop);
    if (cfg_.burstFactor < 1.0)
        os << "burstFactor must be >= 1 (got " << cfg_.burstFactor
           << ")\n";
    if (cfg_.burstStart > 0.0 && cfg_.burstStop <= 0.0)
        os << "burstStop must be > 0 when bursts can start "
              "(the bad state would be absorbing)\n";
    for (std::size_t i = 0; i < corrupt_.size(); ++i) {
        const double c = corrupt_[i];
        const double e = erase_[i];
        if (!(c >= 0.0 && c <= 1.0) || !(e >= 0.0 && e <= 1.0) ||
            c + e > 1.0) {
            os << "arc " << i << " rates out of range: corrupt=" << c
               << " erase=" << e << " (each in [0,1], sum <= 1)\n";
        }
    }
    return os.str();
}

std::vector<std::pair<std::string, std::string>>
ErrorModel::metadata() const
{
    std::vector<std::pair<std::string, std::string>> kv;
    kv.emplace_back("error_corrupt_rate",
                    formatDouble(cfg_.corruptRate));
    kv.emplace_back("error_erase_rate", formatDouble(cfg_.eraseRate));
    kv.emplace_back("error_burst_start",
                    formatDouble(cfg_.burstStart));
    kv.emplace_back("error_burst_stop", formatDouble(cfg_.burstStop));
    kv.emplace_back("error_burst_factor",
                    formatDouble(cfg_.burstFactor));
    kv.emplace_back("error_seed", std::to_string(cfg_.seed));
    return kv;
}

} // namespace fbfly
