/**
 * @file
 * Error model — transient bit errors on inter-router channels.
 *
 * The fail-stop FaultModel (fault_model.h) covers links that die;
 * this model covers links that *lie*: the long, cheap electrical
 * cables central to the paper's cost argument (Sections 5-6) suffer
 * transient bit errors in deployed machines, which real high-radix
 * routers (the YARC/BlackWidow lineage the paper builds on) survive
 * with CRC-protected flits and link-level retry.
 *
 * An ErrorModel assigns each directed inter-router arc a per-wire-
 * attempt corruption probability (flit arrives with flipped bits,
 * caught by the receiver's CRC) and erasure probability (flit never
 * arrives), plus an optional Gilbert-Elliott burst process that
 * amplifies both while the channel is in its bad state.
 *
 * Like the FaultModel it is pure description: the Network applies it
 * by enabling each channel's link-layer retry protocol
 * (Channel::enableReliability) with the arc's rates and a
 * channel-private Rng stream derived from the model's seed — so
 * error draws are independent of cross-channel event order and the
 * sweep engine's thread count, and any (topology, config) pair
 * reproduces bit-identically at any `--threads N`.
 */

#ifndef FBFLY_FAULT_ERROR_MODEL_H
#define FBFLY_FAULT_ERROR_MODEL_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "network/channel.h"
#include "topology/topology.h"

namespace fbfly
{

/**
 * Uniform transient-error configuration (per wire attempt).
 */
struct ErrorModelConfig
{
    /** P(flit corrupted on the wire) per attempt. */
    double corruptRate = 0.0;
    /** P(flit erased — lost on the wire) per attempt. */
    double eraseRate = 0.0;
    /** Gilbert-Elliott: P(good -> bad) per attempt. */
    double burstStart = 0.0;
    /** Gilbert-Elliott: P(bad -> good) per attempt. */
    double burstStop = 1.0;
    /** Rate multiplier while in the bad (bursty) state. */
    double burstFactor = 1.0;
    /** Seed of the error-draw streams (independent of the
     *  simulation seed: the same traffic can be replayed under
     *  different error draws and vice versa). */
    std::uint64_t seed = 1;
};

/**
 * Deterministic per-arc transient-error rates over a topology.
 */
class ErrorModel
{
  public:
    /** @param topo topology the arcs refer to (must outlive the
     *         model; arc indices follow topo.arcs()).
     *  @param cfg  uniform initial rates for every arc. */
    explicit ErrorModel(const Topology &topo,
                        const ErrorModelConfig &cfg = {});

    /** Set every arc's rates (burst parameters stay as configured). */
    void setUniformRates(double corrupt, double erase);

    /** Override one arc's rates (heterogeneous links, e.g. only the
     *  long global cables of a dimension are error-prone). */
    void setArcRates(std::size_t arc_index, double corrupt,
                     double erase);

    /** Full per-attempt rates for arc @p arc_index, burst process
     *  included — the shape Channel::enableReliability consumes. */
    LinkErrorRates arcRates(std::size_t arc_index) const;

    /** Channel-private error-draw stream for arc @p arc_index,
     *  derived from the model seed. */
    Rng arcRng(std::size_t arc_index) const;

    /** True when any arc has a nonzero corruption or erasure rate. */
    bool anyErrors() const;

    /**
     * Config sanity: all rates/probabilities in [0, 1],
     * corrupt + erase <= 1 per arc (they partition one draw), and
     * burstStop > 0 when bursts can start (else the bad state is
     * absorbing by accident).
     *
     * @return empty string when sound, else a description.
     */
    std::string validateRates() const;

    /**
     * Self-describing key/value pairs (rates, burst parameters,
     * seed) for the sweep JSON metadata block, so resilience results
     * carry their own error configuration.
     */
    std::vector<std::pair<std::string, std::string>> metadata() const;

    std::size_t numArcs() const { return corrupt_.size(); }
    const Topology &topology() const { return topo_; }
    const ErrorModelConfig &config() const { return cfg_; }
    std::uint64_t seed() const { return cfg_.seed; }

  private:
    const Topology &topo_;
    ErrorModelConfig cfg_;
    std::vector<double> corrupt_;
    std::vector<double> erase_;
};

} // namespace fbfly

#endif // FBFLY_FAULT_ERROR_MODEL_H
