/**
 * @file
 * Fault model — failed links and routers for degradation studies.
 *
 * The paper's central argument (Section 4) is that the flattened
 * butterfly's path diversity lets adaptive routing balance load around
 * hotspots; the same diversity is what lets a deployed network route
 * around *failures*.  A FaultModel describes which directed
 * inter-router channels (arcs) and routers are failed, and from which
 * cycle, so the simulator can evaluate graceful degradation.
 *
 * Semantics (fail-stop):
 *  - a failed arc refuses new flits from its activation cycle onward;
 *    flits already in flight on the wire are still delivered (the
 *    transmitter fails, not the photons already under way);
 *  - a failed router fails every arc incident to it, in both
 *    directions, plus the injection/ejection channels of its
 *    terminals;
 *  - a FaultModel's faults are permanent — the entity never comes
 *    back for the rest of the run.  Repairable outages are a separate
 *    model: fault/churn_model.h generates MTBF/MTTR renewal schedules
 *    whose downs are matched by repairs (docs/FAULTS.md, "Churn and
 *    repair");
 *  - everything is deterministic: random fault sets are drawn from the
 *    library's own Rng, so a (topology, seed, count) triple always
 *    produces the same fault set.
 *
 * The model is pure description: the Network applies it (see
 * NetworkConfig::faults), routers expose per-port liveness to routing
 * algorithms, and Network::validate() rejects fault sets that
 * disconnect a terminal before a simulation can hang on them.
 */

#ifndef FBFLY_FAULT_FAULT_MODEL_H
#define FBFLY_FAULT_FAULT_MODEL_H

#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.h"
#include "topology/topology.h"

namespace fbfly
{

/**
 * A deterministic set of (time-triggered) link and router failures.
 */
class FaultModel
{
  public:
    /** Activation cycle meaning "never fails". */
    static constexpr Cycle kNever = std::numeric_limits<Cycle>::max();

    /** @param topo topology the faults refer to (must outlive the
     *         model; arc indices follow topo.arcs()). */
    explicit FaultModel(const Topology &topo);

    /** @name Fault injection @{ */

    /** Fail one directed arc (index into Topology::arcs()) at cycle
     *  @p at.  Earlier of repeated calls wins. */
    void failArc(std::size_t arc_index, Cycle at = 0);

    /**
     * Fail the bidirectional link between routers @p a and @p b
     * (every arc a->b and b->a) at cycle @p at.
     *
     * @return number of directed arcs failed (0 if not adjacent).
     */
    int failLinkBetween(RouterId a, RouterId b, Cycle at = 0);

    /** Fail router @p r (and so every arc and terminal channel
     *  incident to it) at cycle @p at. */
    void failRouter(RouterId r, Cycle at = 0);

    /**
     * Fail @p count bidirectional links drawn uniformly at random.
     *
     * Deterministic for a given (topology, seed).  When
     * @p preserve_connectivity is set, candidate links whose failure
     * would disconnect some pair of terminal-hosting routers (given
     * all faults injected so far, evaluated at end-of-time) are
     * skipped, so the resulting network stays routable.
     *
     * **Shortfall contract**: connectivity pruning can exhaust its
     * candidate pool before reaching @p count — on small or sparse
     * topologies (a cut edge can never fail) and at high fractions
     * (once the survivors form a spanning tree, every remaining link
     * is critical).  The draw then stops early and the return value
     * is *less than* @p count.  Callers MUST label results by the
     * returned effective count, never by the requested one — see
     * DegradationPoint::shortfall(), which the degradation harness
     * records for exactly this reason, and tests/test_fault_model.cc
     * (FailRandomLinksShortfall).
     *
     * @return the number of links actually failed (may be < count
     *         when connectivity pruning runs out of candidates).
     */
    int failRandomLinks(int count, std::uint64_t seed, Cycle at = 0,
                        bool preserve_connectivity = true);

    /** @} */

    /** @name Liveness queries @{ */

    /** True when arc @p arc_index accepts new flits at @p cycle
     *  (both endpoint routers alive, arc not failed). */
    bool arcAlive(std::size_t arc_index, Cycle cycle) const;

    /** True when router @p r is alive at @p cycle. */
    bool routerAlive(RouterId r, Cycle cycle) const;

    /**
     * Cycle at which arc @p arc_index stops accepting flits — the
     * earliest of its own failure and its endpoint routers' failures
     * (kNever if none).
     */
    Cycle arcFailCycle(std::size_t arc_index) const;

    /** Cycle at which router @p r fails (kNever if it does not). */
    Cycle routerFailCycle(RouterId r) const
    {
        return routerFail_[static_cast<std::size_t>(r)];
    }

    /** Directed arcs dead at @p cycle. */
    int failedArcCount(Cycle cycle) const;

    /** True when any fault exists (at any activation cycle). */
    bool anyFaults() const;

    /**
     * True when, with every fault active (end-of-time), all
     * terminal-hosting routers are alive and mutually reachable over
     * alive arcs (strong connectivity restricted to what terminals
     * need).
     */
    bool connected() const;

    /** @} */

    std::size_t numArcs() const { return arcs_.size(); }
    const Topology &topology() const { return topo_; }
    const std::vector<Topology::Arc> &arcs() const { return arcs_; }

  private:
    /** Strong-connectivity check with arc @p extra_a / @p extra_b
     *  (a trial bidirectional failure) additionally dead; pass
     *  kNoExtra for a plain check. */
    static constexpr std::size_t kNoExtra =
        std::numeric_limits<std::size_t>::max();
    bool connectedWithout(std::size_t extra_a,
                          std::size_t extra_b) const;

    const Topology &topo_;
    std::vector<Topology::Arc> arcs_;
    std::vector<Cycle> arcFail_;    // per arc, own failure only
    std::vector<Cycle> routerFail_; // per router
    /** Paired reverse arc of each arc (kNoPair if unidirectional). */
    std::vector<std::size_t> reverseArc_;
    static constexpr std::size_t kNoPair =
        std::numeric_limits<std::size_t>::max();
    /** Routers that host at least one terminal. */
    std::vector<char> hostsTerminal_;
};

} // namespace fbfly

#endif // FBFLY_FAULT_FAULT_MODEL_H
