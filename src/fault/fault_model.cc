#include "fault/fault_model.h"

#include <algorithm>
#include <numeric>

#include "common/log.h"
#include "common/rng.h"

namespace fbfly
{

FaultModel::FaultModel(const Topology &topo)
    : topo_(topo), arcs_(topo.arcs())
{
    arcFail_.assign(arcs_.size(), kNever);
    routerFail_.assign(static_cast<std::size_t>(topo.numRouters()),
                       kNever);

    // Pair each arc with its reverse (same endpoints, swapped) so
    // link-level (bidirectional) failures can be expressed.
    reverseArc_.assign(arcs_.size(), kNoPair);
    for (std::size_t i = 0; i < arcs_.size(); ++i) {
        if (reverseArc_[i] != kNoPair)
            continue;
        for (std::size_t j = i + 1; j < arcs_.size(); ++j) {
            if (arcs_[j].src == arcs_[i].dst &&
                arcs_[j].dst == arcs_[i].src &&
                reverseArc_[j] == kNoPair) {
                reverseArc_[i] = j;
                reverseArc_[j] = i;
                break;
            }
        }
    }

    hostsTerminal_.assign(routerFail_.size(), 0);
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        hostsTerminal_[topo.injectionRouter(n)] = 1;
        hostsTerminal_[topo.ejectionRouter(n)] = 1;
    }
}

void
FaultModel::failArc(std::size_t arc_index, Cycle at)
{
    FBFLY_ASSERT(arc_index < arcs_.size(),
                 "failArc index ", arc_index, " out of range (",
                 arcs_.size(), " arcs)");
    arcFail_[arc_index] = std::min(arcFail_[arc_index], at);
}

int
FaultModel::failLinkBetween(RouterId a, RouterId b, Cycle at)
{
    int failed = 0;
    for (std::size_t i = 0; i < arcs_.size(); ++i) {
        if ((arcs_[i].src == a && arcs_[i].dst == b) ||
            (arcs_[i].src == b && arcs_[i].dst == a)) {
            failArc(i, at);
            ++failed;
        }
    }
    return failed;
}

void
FaultModel::failRouter(RouterId r, Cycle at)
{
    FBFLY_ASSERT(r >= 0 &&
                 static_cast<std::size_t>(r) < routerFail_.size(),
                 "failRouter id ", r, " out of range");
    routerFail_[r] = std::min(routerFail_[r], at);
}

int
FaultModel::failRandomLinks(int count, std::uint64_t seed, Cycle at,
                            bool preserve_connectivity)
{
    // Candidate pool: one representative arc per bidirectional link
    // (the lower-indexed arc of each pair; unpaired arcs stand for
    // themselves), not already failed.
    std::vector<std::size_t> pool;
    for (std::size_t i = 0; i < arcs_.size(); ++i) {
        if (reverseArc_[i] != kNoPair && reverseArc_[i] < i)
            continue; // the pair is represented by the lower index
        if (arcFail_[i] != kNever)
            continue;
        pool.push_back(i);
    }

    // Fisher-Yates shuffle with the library Rng: deterministic for a
    // given (topology, seed).
    Rng rng(seed);
    for (std::size_t i = pool.size(); i > 1; --i)
        std::swap(pool[i - 1], pool[rng.nextBounded(i)]);

    int failed = 0;
    for (const std::size_t i : pool) {
        if (failed >= count)
            break;
        const std::size_t rev = reverseArc_[i];
        if (preserve_connectivity &&
            !connectedWithout(i, rev == kNoPair ? kNoExtra : rev)) {
            continue; // this link is currently a cut edge; skip it
        }
        failArc(i, at);
        if (rev != kNoPair)
            failArc(rev, at);
        ++failed;
    }
    return failed;
}

Cycle
FaultModel::arcFailCycle(std::size_t arc_index) const
{
    FBFLY_ASSERT(arc_index < arcs_.size(), "arcFailCycle range");
    const Topology::Arc &a = arcs_[arc_index];
    Cycle c = arcFail_[arc_index];
    c = std::min(c, routerFail_[static_cast<std::size_t>(a.src)]);
    c = std::min(c, routerFail_[static_cast<std::size_t>(a.dst)]);
    return c;
}

bool
FaultModel::arcAlive(std::size_t arc_index, Cycle cycle) const
{
    return cycle < arcFailCycle(arc_index);
}

bool
FaultModel::routerAlive(RouterId r, Cycle cycle) const
{
    FBFLY_ASSERT(r >= 0 &&
                 static_cast<std::size_t>(r) < routerFail_.size(),
                 "routerAlive id range");
    return cycle < routerFail_[r];
}

int
FaultModel::failedArcCount(Cycle cycle) const
{
    int n = 0;
    for (std::size_t i = 0; i < arcs_.size(); ++i)
        n += arcAlive(i, cycle) ? 0 : 1;
    return n;
}

bool
FaultModel::anyFaults() const
{
    for (const Cycle c : arcFail_)
        if (c != kNever)
            return true;
    for (const Cycle c : routerFail_)
        if (c != kNever)
            return true;
    return false;
}

bool
FaultModel::connected() const
{
    return connectedWithout(kNoExtra, kNoExtra);
}

bool
FaultModel::connectedWithout(std::size_t extra_a,
                             std::size_t extra_b) const
{
    const int num_routers = static_cast<int>(routerFail_.size());

    // All terminal-hosting routers must themselves be alive.
    RouterId seed = kInvalid;
    for (RouterId r = 0; r < num_routers; ++r) {
        if (!hostsTerminal_[r])
            continue;
        if (routerFail_[r] != kNever)
            return false;
        if (seed == kInvalid)
            seed = r;
    }
    if (seed == kInvalid)
        return true; // no terminals, nothing to disconnect

    const auto arc_dead = [&](std::size_t i) {
        return i == extra_a || i == extra_b ||
               arcFail_[i] != kNever ||
               routerFail_[arcs_[i].src] != kNever ||
               routerFail_[arcs_[i].dst] != kNever;
    };

    // BFS forward (can every terminal router be reached from seed?)
    // and backward (can seed be reached from every terminal router?):
    // together this gives the strong connectivity terminals need,
    // because reachability via seed composes.
    for (const bool forward : {true, false}) {
        std::vector<char> seen(num_routers, 0);
        std::vector<RouterId> frontier{seed};
        seen[seed] = 1;
        while (!frontier.empty()) {
            const RouterId r = frontier.back();
            frontier.pop_back();
            for (std::size_t i = 0; i < arcs_.size(); ++i) {
                if (arc_dead(i))
                    continue;
                const RouterId from =
                    forward ? arcs_[i].src : arcs_[i].dst;
                const RouterId to =
                    forward ? arcs_[i].dst : arcs_[i].src;
                if (from == r && !seen[to]) {
                    seen[to] = 1;
                    frontier.push_back(to);
                }
            }
        }
        for (RouterId r = 0; r < num_routers; ++r)
            if (hostsTerminal_[r] && !seen[r])
                return false;
    }
    return true;
}

} // namespace fbfly
