/**
 * @file
 * Churn model — link/router failure *and repair* renewal processes.
 *
 * The fail-stop FaultModel (fault_model.h) describes faults that
 * never heal; real fabrics instead run for months under continuous
 * component churn: a link fails, a technician reseats the cable, the
 * link comes back.  A ChurnModel describes that service lifetime as
 * per-entity alternating renewal processes — each bidirectional link
 * and each router draws exponential up-times (mean MTBF) and repair
 * times (mean MTTR) from its own private RNG stream — and expands
 * them into one deterministic, time-sorted schedule of down/up
 * ServiceEvents that the Network applies while it steps.
 *
 * Determinism contract (same as ErrorModel): every entity's draws
 * come from a stream derived only from (model seed, entity kind,
 * entity index), never from shared state or event order, so a
 * (topology, config) pair reproduces the identical schedule — and a
 * churn sweep is bit-identical at any `--threads N`.
 *
 * Repair pairing: every down event carries a matching up event, even
 * when the repair lands past the horizon — an outage is never left
 * open, so a run can always drain to quiescence after its service
 * window ends.
 *
 * Connectivity pruning (preserveConnectivity): walking the schedule
 * in time order with the current down-set, any *link* outage that
 * would disconnect two alive terminal-hosting routers is cancelled
 * (both its down and up events).  Router outages are never pruned:
 * a down router's own terminals are unreachable by design (fail-stop
 * semantics; routing drops their traffic and the drops are
 * accounted), but a router outage that would disconnect the
 * *remaining* alive terminal routers from each other is cancelled.
 */

#ifndef FBFLY_FAULT_CHURN_MODEL_H
#define FBFLY_FAULT_CHURN_MODEL_H

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "topology/topology.h"

namespace fbfly
{

/**
 * Alternating-renewal churn configuration.  A zero MTBF disables
 * churn for that entity kind.
 */
struct ChurnConfig
{
    /** Mean cycles between failures per bidirectional link
     *  (0: links never fail). */
    double linkMtbf = 0.0;
    /** Mean repair time per link outage, cycles. */
    double linkMttr = 0.0;
    /** Mean cycles between failures per router (0: routers never
     *  fail). */
    double routerMtbf = 0.0;
    /** Mean repair time per router outage, cycles. */
    double routerMttr = 0.0;
    /** Failures are drawn in [0, horizon); repairs may land past it
     *  (every outage always heals). */
    Cycle horizon = 0;
    /** Seed of the per-entity renewal streams (independent of the
     *  simulation seed). */
    std::uint64_t seed = 1;
    /** Cancel outages that would disconnect alive terminal-hosting
     *  routers from each other (see file comment). */
    bool preserveConnectivity = true;
};

/**
 * One scheduled service transition.
 */
struct ServiceEvent
{
    enum class Kind : std::uint8_t
    {
        kLinkDown,
        kLinkUp,
        kRouterDown,
        kRouterUp,
    };

    Cycle at = 0;
    Kind kind = Kind::kLinkDown;
    /** Representative arc index of the link (the lower-indexed arc
     *  of a reverse pair; see reverseArc()).  Valid for link events. */
    std::size_t link = 0;
    /** Valid for router events. */
    RouterId router = kInvalid;
    /** Outage id pairing each down event with its up event. */
    std::size_t episode = 0;

    bool isDown() const
    {
        return kind == Kind::kLinkDown || kind == Kind::kRouterDown;
    }
};

/**
 * Deterministic link/router churn schedule over a topology.
 */
class ChurnModel
{
  public:
    static constexpr std::size_t kNoPair =
        std::numeric_limits<std::size_t>::max();

    /** @param topo topology the events refer to (must outlive the
     *         model; arc indices follow topo.arcs()). */
    explicit ChurnModel(const Topology &topo,
                        const ChurnConfig &cfg = {});

    /** The full schedule, sorted by cycle (ties broken by episode
     *  id, ups before downs). */
    const std::vector<ServiceEvent> &events() const
    {
        return events_;
    }

    /** Paired reverse arc of @p arc_index (kNoPair when the arc is
     *  unidirectional). */
    std::size_t reverseArc(std::size_t arc_index) const
    {
        return reverseArc_[arc_index];
    }

    /** Outages in the schedule (down events, links + routers). */
    std::uint64_t downEvents() const { return downEvents_; }

    /** Outages cancelled by connectivity pruning. */
    std::uint64_t prunedEpisodes() const { return pruned_; }

    /** True when the schedule contains any event. */
    bool anyChurn() const { return !events_.empty(); }

    /**
     * Config sanity: MTBF/MTTR pairs complete (an entity kind with a
     * nonzero MTBF needs a nonzero MTTR), means >= 1 cycle, and a
     * nonzero horizon when any churn is enabled.
     *
     * @return empty string when sound, else a description.
     */
    std::string validateConfig() const;

    /**
     * Self-describing key/value pairs (rates, horizon, seed,
     * schedule summary) for the sweep JSON metadata block.
     */
    std::vector<std::pair<std::string, std::string>> metadata() const;

    std::size_t numArcs() const { return arcs_.size(); }
    const std::vector<Topology::Arc> &arcs() const { return arcs_; }
    const Topology &topology() const { return topo_; }
    const ChurnConfig &config() const { return cfg_; }

  private:
    /** One generated outage before pruning. */
    struct Episode
    {
        Cycle downAt;
        Cycle upAt;
        bool isRouter;
        std::size_t link;
        RouterId router;
    };

    void generateEpisodes(std::vector<Episode> &episodes) const;
    void buildEvents(const std::vector<Episode> &episodes);
    void pruneDisconnecting(std::vector<char> &cancelled) const;

    const Topology &topo_;
    ChurnConfig cfg_;
    std::vector<Topology::Arc> arcs_;
    /** Paired reverse arc of each arc (kNoPair if unidirectional). */
    std::vector<std::size_t> reverseArc_;
    /** Routers that host at least one terminal. */
    std::vector<char> hostsTerminal_;

    std::vector<ServiceEvent> events_;
    std::uint64_t downEvents_ = 0;
    std::uint64_t pruned_ = 0;
};

} // namespace fbfly

#endif // FBFLY_FAULT_CHURN_MODEL_H
