#include "harness/wire_delay.h"

#include <cmath>

#include "common/log.h"
#include "common/radix.h"
#include "topology/flattened_butterfly.h"
#include "topology/folded_clos.h"

namespace fbfly
{

Cycle
WireDelayModel::latencyForLength(double meters) const
{
    FBFLY_ASSERT(meters >= 0.0 && metersPerCycle > 0.0,
                 "bad wire-delay query");
    const auto cycles = static_cast<Cycle>(
        std::ceil(meters / metersPerCycle));
    return std::max(minLatency, cycles);
}

std::vector<Cycle>
fbflyArcLatencies(const FlattenedButterfly &topo,
                  const PackagingModel &pkg,
                  const WireDelayModel &wire)
{
    const std::int64_t n = topo.numNodes();
    const int np = topo.numDims();
    const int k = topo.k();

    // Physical extent of each dimension: local dimensions stay in a
    // cabinet pair; the top two span a full floor axis; dimensions
    // in between span their own subsystem.  Within a dimension the
    // like elements are spread uniformly over that extent, so the
    // cable between values a and b runs |a - b| / k of it — the
    // "minimal Manhattan distance" packaging of Section 5.2, under
    // which the adjacent-router (worst-case pattern) channels are
    // physically short.
    std::vector<double> extent(np + 1, 0.0);
    std::vector<bool> local(np + 1, false);
    std::int64_t subsystem = k;
    for (int d = 1; d <= np; ++d) {
        subsystem *= k;
        local[d] = pkg.subsystemIsLocal(subsystem);
        extent[d] = d >= np - 1
            ? pkg.edgeLength(n)
            : pkg.edgeLength(std::min(subsystem, n));
    }

    // Arc order mirrors FlattenedButterfly::arcs(): router-major,
    // then dimension, then target value.
    std::vector<Cycle> out;
    out.reserve(static_cast<std::size_t>(topo.numRouters()) * np *
                (k - 1));
    for (RouterId r = 0; r < topo.numRouters(); ++r) {
        for (int d = 1; d <= np; ++d) {
            const int mine = topo.routerDigit(r, d);
            for (int m = 0; m < k; ++m) {
                if (m == mine)
                    continue;
                double len = pkg.localCableM;
                if (!local[d]) {
                    const double raw =
                        std::abs(m - mine) * extent[d] / k;
                    len = std::max(raw, pkg.localCableM) +
                          pkg.cableOverheadM;
                }
                out.push_back(wire.latencyForLength(len));
            }
        }
    }
    return out;
}

std::vector<Cycle>
foldedClosArcLatencies(const FoldedClos &topo,
                       const PackagingModel &pkg,
                       const WireDelayModel &wire)
{
    const double len =
        pkg.avgGlobalClos(topo.numNodes()) + pkg.cableOverheadM;
    const Cycle lat = wire.latencyForLength(len);
    return std::vector<Cycle>(topo.arcs().size(), lat);
}

} // namespace fbfly
