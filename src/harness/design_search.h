/**
 * @file
 * Topology design-space search (ROADMAP "design-space autotuner").
 *
 * The paper picks the flattened butterfly by hand-comparing a few
 * candidate topologies at fixed cost (Figures 11-13); this harness
 * treats the choice as the optimization problem it really is.  Given
 * a terminal-count requirement and optional cost/power budgets it
 *
 *  1. **enumerates** (family, size parameters, channel slicing,
 *     VC/buffer organization) candidates across the flattened
 *     butterfly, folded Clos, hypercube and generalized hypercube of
 *     the paper plus the post-2007 dragonfly and Slim Fly;
 *  2. **prunes analytically** with the existing cost/power models
 *     (src/cost/, src/power/) and closed-form structure (diameter,
 *     average minimal hops, channel counts, canonical-split
 *     bisection): budget violations, buffer-budget deviations and
 *     Pareto-dominated candidates never reach simulation;
 *  3. **sweeps the survivors** on the parallel sweep engine
 *     (harness/sweep.h) at the spec's offered loads under uniform
 *     random traffic; and
 *  4. emits the **cost-performance Pareto frontier** as an
 *     `fbfly-pareto-v1` JSON document.
 *
 * Determinism contract: the emitted document is bit-identical for
 * any --threads / --shards combination — candidate enumeration is a
 * fixed nested loop, per-point seeds derive from (masterSeed, index)
 * alone, and the document carries no wall-clock or thread-count
 * fields (tests/test_design_search.cc).
 */

#ifndef FBFLY_HARNESS_DESIGN_SEARCH_H
#define FBFLY_HARNESS_DESIGN_SEARCH_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "harness/experiment.h"
#include "harness/sweep.h"

namespace fbfly
{

/** Version tag of the design-search JSON document. */
inline constexpr const char *kParetoJsonSchema = "fbfly-pareto-v1";

/** Topology families the search enumerates. */
enum class TopoFamily
{
    kFlattenedButterfly,
    kFoldedClos,
    kHypercube,
    kGeneralizedHypercube,
    kDragonfly,
    kSlimFly,
};

/** Short family tag ("fbfly", "clos", ...). */
const char *toString(TopoFamily f);

/**
 * What to search for.
 */
struct DesignSpec
{
    /** Candidates must serve at least this many terminals... */
    std::int64_t minTerminals = 64;
    /** ... and at most maxTerminalFactor x minTerminals (build-outs
     *  beyond the requirement waste the budget). */
    double maxTerminalFactor = 8.0;
    /** Cost budget in $ per terminal (<= 0: unbounded). */
    double maxCostPerTerminal = 0.0;
    /** Power budget in W per terminal (<= 0: unbounded). */
    double maxPowerPerTerminal = 0.0;
    /** Offered loads (flits/node/cycle) the survivor sweep runs
     *  under uniform random traffic; the last (highest) load's
     *  accepted throughput is the performance axis of the frontier,
     *  the first (lowest) load's latency is reported alongside. */
    std::vector<double> loads = {0.1, 0.4, 0.8};
    /** Phasing of each survivor load point. */
    ExperimentConfig expcfg;
    /** Step-engine shards inside each point (NetworkConfig::shards;
     *  results are bit-identical for every value). */
    int shards = 1;
};

/**
 * One enumerated configuration with its analytic scorecard.
 */
struct DesignCandidate
{
    TopoFamily family = TopoFamily::kFlattenedButterfly;
    /** Factory topology spec, e.g. "fbfly-8-2" (harness/factory.h). */
    std::string topoSpec;
    /** Factory routing name, e.g. "ugal". */
    std::string routing;
    /** Channel slicing: inter-router cycles per flit (1 full-rate,
     *  2 half-rate with proportionally cheaper cables). */
    Cycle channelPeriod = 1;
    /** Buffer organization: flits per VC. */
    int vcDepth = 8;
    /** VCs the routing algorithm requires. */
    int numVcs = 1;

    /** @name Closed-form / analytic structure @{ */
    std::int64_t terminals = 0;
    std::int64_t routers = 0;
    int radix = 0;
    /** Inter-router diameter. */
    int diameter = 0;
    /** Mean minimal inter-router hops over ordered terminal pairs. */
    double avgMinHops = 0.0;
    /** Directed inter-router channels. */
    std::int64_t channels = 0;
    /** Directed channels crossing the canonical id-split bisection. */
    std::int64_t bisectionArcs = 0;
    /** Uniform-random throughput upper bound, flits/node/cycle:
     *  min(1, channels / (terminals * avgMinHops * channelPeriod)). */
    double throughputBound = 0.0;
    double costDollars = 0.0;
    double powerWatts = 0.0;
    double costPerTerminal = 0.0;
    double powerPerTerminal = 0.0;
    /** @} */

    /** Set when analytic pruning rejected the candidate;
     *  pruneReason is one of "cost-budget", "power-budget",
     *  "buffer-budget", "dominated". */
    bool pruned = false;
    std::string pruneReason;
};

/**
 * Measured results of one surviving candidate.
 */
struct DesignPoint
{
    /** Index into DesignSearchResult::candidates. */
    std::size_t candidate = 0;
    /** One result per DesignSpec::loads entry, in order. */
    std::vector<LoadPointResult> loads;
    /** Accepted throughput at the highest offered load (NaN when
     *  that point never completed its window). */
    double satThroughput = LoadPointResult::kUnknown;
    /** Average latency at the lowest offered load (NaN when not
     *  trustworthy there). */
    double lowLoadLatency = LoadPointResult::kUnknown;
    /** True when the point is on the cost-performance frontier. */
    bool onFrontier = false;
};

/**
 * Everything a search run produced.
 */
struct DesignSearchResult
{
    /** Every enumerated candidate, in enumeration order (stable
     *  across runs: a fixed nested loop over static tables). */
    std::vector<DesignCandidate> candidates;
    /** One entry per surviving (unpruned) candidate, in candidate
     *  order. */
    std::vector<DesignPoint> points;
    /** Indices into `points`, sorted by cost per terminal ascending:
     *  the Pareto frontier over (cost/terminal down, saturation
     *  throughput up). */
    std::vector<std::size_t> frontier;
};

/**
 * Enumerate and analytically score/prune the candidate set without
 * running any simulation.  Deterministic: two calls with the same
 * spec return identical sequences.
 */
std::vector<DesignCandidate>
enumerateDesignCandidates(const DesignSpec &spec);

/**
 * Full search: enumerate, prune, sweep survivors on the parallel
 * engine, mark the Pareto frontier.
 */
DesignSearchResult runDesignSearch(const DesignSpec &spec,
                                   const SweepConfig &sweep_cfg);

/**
 * Render a completed search as an `fbfly-pareto-v1` JSON document
 * (no trailing newline).  Deliberately carries no wall-clock,
 * thread-count or shard-count fields: the document is bit-identical
 * for any execution configuration.
 */
std::string designSearchToJson(const DesignSpec &spec,
                               const DesignSearchResult &result,
                               std::uint64_t master_seed,
                               const std::string &bench);

/**
 * Write designSearchToJson() + '\n' to @p path.
 *
 * @return true on success; false (with a warning) on I/O failure.
 */
bool writeDesignSearch(const std::string &path,
                       const DesignSpec &spec,
                       const DesignSearchResult &result,
                       std::uint64_t master_seed,
                       const std::string &bench);

} // namespace fbfly

#endif // FBFLY_HARNESS_DESIGN_SEARCH_H
