#include "harness/churn.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>

#include "common/log.h"
#include "obs/obs_sampler.h"
#include "routing/switchable.h"
#include "sim/stats.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{

namespace
{

/** Offered load of the diurnal triangle ramp at cycle @p t. */
double
shapedLoad(const ChurnRunConfig &cfg, Cycle t)
{
    double load = cfg.baseLoad;
    if (cfg.diurnalPeriod > 1 && cfg.peakLoad > cfg.baseLoad) {
        // Integer-phase triangle wave 0 -> 1 -> 0 (no libm trig, so
        // the shape is bit-identical across platforms).
        const Cycle period = cfg.diurnalPeriod;
        const Cycle ph = t % period;
        const Cycle half = period / 2;
        const double frac =
            ph < half
                ? static_cast<double>(ph) / static_cast<double>(half)
                : static_cast<double>(period - ph) /
                      static_cast<double>(period - half);
        load += (cfg.peakLoad - cfg.baseLoad) * frac;
    }
    return load;
}

/** Shortest round-trip decimal form of @p x; NaN/inf as "null". */
std::string
jsonDouble(double x)
{
    if (!std::isfinite(x))
        return "null";
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, x);
        if (std::strtod(buf, nullptr) == x)
            break;
    }
    return buf;
}

} // namespace

ChurnPointResult
runChurnPoint(const FlattenedButterfly &topo,
              const TrafficPattern &pattern, const ChurnModel *churn,
              NetworkConfig netcfg, const ChurnRunConfig &cfg)
{
    SwitchableRouting algo(topo);

    netcfg.numVcs = algo.numVcs();
    netcfg.seed = cfg.seed;
    netcfg.churn = churn;
    netcfg.watchdogCycles = cfg.watchdogCycles;
    netcfg.invariantCheckInterval = cfg.invariantCheckInterval;

    ChurnPointResult res;

    const ValidationReport rep =
        Network::validate(topo, algo, netcfg);
    if (!rep.ok()) {
        res.load.status = LoadPointStatus::kInvalidConfig;
        res.load.diagnostics = rep.summary();
        return res;
    }

    DeliveryOracle oracle;
    if (cfg.verifyDelivery)
        netcfg.oracle = &oracle;

    std::shared_ptr<TraceSink> sink;
    if (cfg.obs.traceEnabled) {
        sink = std::make_shared<TraceSink>(cfg.obs.traceCapacity);
        sink->setLevel(cfg.obs.traceLevel);
        netcfg.trace = sink.get();
    }

    Network net(topo, algo, &pattern, netcfg);

    // The epoch adaptor reads channel-utilization telemetry, so
    // metrics are force-enabled while adapting, with the sampling
    // window locked to the epoch length (one fresh window per epoch
    // boundary).
    const bool adapting = cfg.epochCycles > 0;
    std::shared_ptr<MetricsRegistry> metrics;
    std::optional<ObsSampler> sampler;
    if (adapting || cfg.obs.metricsEnabled) {
        metrics = std::make_shared<MetricsRegistry>();
        sampler.emplace(net, *metrics,
                        adapting ? cfg.epochCycles
                                 : cfg.obs.metricsWindowCycles);
    }
    const auto obsTick = [&sampler] {
        if (sampler.has_value())
            sampler->tick();
    };

    BernoulliInjection inj(shapedLoad(cfg, 0), netcfg.packetSize,
                           cfg.seed ^ 0x496e6a65637431ULL);

    // Trailing-window delivered-flit tracking for recovery SLOs.
    const std::size_t window = static_cast<std::size_t>(
        std::max<Cycle>(cfg.recoveryWindow, 1));
    std::vector<std::uint64_t> ejRing(window, 0);
    std::size_t ringPos = 0;
    std::uint64_t windowEjected = 0;
    std::uint64_t lastEjected = 0;

    struct PendingRecovery
    {
        Cycle at;
        double target; // recoveryFraction * pre-event window flits
    };
    std::vector<PendingRecovery> pending;
    ChurnStats &cs = res.churn;

    const std::vector<ServiceEvent> noEvents;
    const std::vector<ServiceEvent> &events =
        churn != nullptr ? churn->events() : noEvents;
    std::size_t evIdx = 0;

    const Cycle warmup = static_cast<Cycle>(cfg.warmupCycles);
    const Cycle horizonEnd = warmup + cfg.horizonCycles;

    // Time-average offered load over the horizon (load shape + job
    // batches), for the record's `offered` field.
    double offeredSum = 0.0;

    // Liveness bookkeeping (sim/liveness.h).
    std::vector<StallDiagnosis> diags;
    std::vector<RecoveryReport> recs;

    const auto fillObserved = [&](bool drained) {
        const NetworkStats &st = net.stats();
        LoadPointResult &r = res.load;
        r.recoveries = static_cast<int>(recs.size());
        if (!diags.empty())
            r.liveness = livenessJson(cfg.liveness, diags, recs);
        r.measuredPackets = st.measuredEjected;
        r.measuredDropped = st.measuredDropped;
        r.flitsDropped = st.flitsDropped;
        r.link = net.linkStats();
        if (r.link.attempts > 0) {
            r.retransmitRate =
                static_cast<double>(r.link.retransmits) /
                static_cast<double>(r.link.attempts);
        }
        if (cfg.verifyDelivery) {
            r.delivery = oracle.report(st.measuredDropped, drained,
                                       algo.preservesFlowOrder());
            r.deliveryChecked = true;
            if (!r.delivery.clean()) {
                FBFLY_WARN("delivery violation under churn: ",
                           r.delivery.summary());
            }
        }
        if (st.measuredEjected > 0) {
            r.avgLatency = st.packetLatency.mean();
            r.avgNetworkLatency = st.networkLatency.mean();
            r.avgHops = st.hops.mean();
        }
        if (st.latencyHist.count() > 0) {
            r.p99Latency = static_cast<double>(
                st.latencyHist.percentile(0.99));
            cs.p999Latency = static_cast<double>(
                st.latencyHist.percentile(0.999));
        }

        cs.downEvents = st.churnDownEvents;
        cs.repairEvents = st.churnRepairEvents;
        cs.flitsLost = st.churnFlitsLost;
        cs.packetsLost = st.churnPacketsLost;
        cs.measuredLost = st.churnMeasuredLost;
        cs.prunedEpisodes =
            churn != nullptr ? churn->prunedEpisodes() : 0;
        cs.routingSwitches = algo.switches();
        cs.pinnedMinAd =
            algo.packetsPinned(RouteAlgoId::kMinAdaptive);
        cs.pinnedUgal = algo.packetsPinned(RouteAlgoId::kUgal);
        cs.pinnedVal = algo.packetsPinned(RouteAlgoId::kValiant);
        if (!cs.recoveryCycles.empty()) {
            double sum = 0.0, mx = 0.0;
            for (const double v : cs.recoveryCycles) {
                sum += v;
                mx = std::max(mx, v);
            }
            cs.meanRecoveryCycles =
                sum / static_cast<double>(cs.recoveryCycles.size());
            cs.maxRecoveryCycles = mx;
        }

        if (sampler.has_value())
            sampler->finish();
        if (metrics != nullptr) {
            MetricsRegistry &m = *metrics;
            m.setCounter("net.flits_injected", st.flitsInjected);
            m.setCounter("net.flits_ejected", st.flitsEjected);
            m.setCounter("net.hops_ejected", st.hopsEjected);
            m.setCounter("net.packets_ejected", st.packetsEjected);
            m.setCounter("net.measured_created", st.measuredCreated);
            m.setCounter("net.measured_ejected", st.measuredEjected);
            m.setCounter("net.flits_dropped", st.flitsDropped);
            m.setCounter("link.attempts", r.link.attempts);
            m.setCounter("link.retransmits", r.link.retransmits);
            m.setCounter("link.crc_rejected", r.link.crcRejected);
            m.setCounter("link.nacks_sent", r.link.nacksSent);
            m.setCounter("link.timeouts", r.link.timeouts);
            if (sink != nullptr) {
                m.setCounter("trace.recorded", sink->recorded());
                m.setCounter("trace.dropped",
                             sink->droppedRecords());
                for (int t = 0; t < kNumTraceEventTypes; ++t) {
                    const auto type = static_cast<TraceEventType>(t);
                    m.setCounter(std::string("trace.") +
                                     toString(type),
                                 sink->count(type));
                }
            }
            const DistSummary lat =
                summarize(st.packetLatency, st.latencyHist);
            m.setCounter("latency.count", lat.count);
            m.setGauge("latency.mean", lat.mean);
            m.setGauge("latency.stddev", lat.stddev);
            m.setGauge("latency.min", lat.min);
            m.setGauge("latency.max", lat.max);
            m.setGauge("latency.p50", lat.p50);
            m.setGauge("latency.p99", lat.p99);
            m.setCounter("churn.down_events", cs.downEvents);
            m.setCounter("churn.repair_events", cs.repairEvents);
            m.setCounter("churn.flits_lost", cs.flitsLost);
            m.setCounter("churn.packets_lost", cs.packetsLost);
            m.setCounter("churn.measured_lost", cs.measuredLost);
            m.setCounter("route.switches", cs.routingSwitches);
            m.setCounter("route.pinned_min_ad", cs.pinnedMinAd);
            m.setCounter("route.pinned_ugal", cs.pinnedUgal);
            m.setCounter("route.pinned_val", cs.pinnedVal);
            m.setCounter("recovery.events", cs.recoveryEvents);
            m.setCounter("recovery.recovered", cs.recoveredEvents);
            m.setGauge("recovery.mean_cycles",
                       cs.meanRecoveryCycles);
            m.setGauge("recovery.max_cycles", cs.maxRecoveryCycles);
            m.setGauge("latency.p999", cs.p999Latency);
        }
        res.load.trace = sink;
        res.load.metrics = metrics;
    };

    const auto stalledOut = [&](bool measure_complete,
                                std::uint64_t ej0,
                                std::uint64_t ej1) {
        res.load.status = LoadPointStatus::kStalled;
        res.load.diagnostics = net.stallDump();
        if (!diags.empty())
            res.load.diagnostics += "\n" + diags.back().summary();
        res.load.saturated = true;
        fillObserved(false);
        if (measure_complete) {
            res.load.accepted =
                static_cast<double>(ej1 - ej0) /
                (static_cast<double>(net.numNodes()) *
                 static_cast<double>(cfg.horizonCycles));
        }
        return res;
    };

    // Stall handling after each service cycle: diagnose, attempt the
    // configured recovery, abort only when recovery cannot help (see
    // the twin in runLoadPoint).
    enum class LivenessOutcome
    {
        kContinue,
        kAbort,
    };
    const auto livenessTick = [&]() -> LivenessOutcome {
        const LivenessConfig &lcfg = cfg.liveness;
        const bool fired = net.stalled();
        bool sampled = false;
        if (!fired) {
            if (lcfg.samplePeriod == 0 || net.quiescent())
                return LivenessOutcome::kContinue;
            const Cycle idle = net.now() - net.lastProgressCycle();
            if (idle == 0 || idle % lcfg.samplePeriod != 0)
                return LivenessOutcome::kContinue;
            sampled = true;
        }
        StallDiagnosis diag = analyzeStall(net);
        if (sampled && diag.cls != StallClass::kDeadlock)
            return LivenessOutcome::kContinue;
        diags.push_back(std::move(diag));
        if (lcfg.policy == RecoveryPolicy::kAbort ||
            static_cast<int>(recs.size()) >= lcfg.maxRecoveries)
            return LivenessOutcome::kAbort;
        const RecoveryReport rep =
            applyRecovery(net, diags.back(), lcfg.policy);
        recs.push_back(rep);
        if (!rep.acted() &&
            diags.back().cls != StallClass::kKernelBug)
            return LivenessOutcome::kAbort;
        return LivenessOutcome::kContinue;
    };

    // One cycle of the service loop: shaped injection, churn-aware
    // recovery tracking, epoch-boundary routing adaptation.
    const auto serviceCycle = [&](bool measuring) {
        const Cycle t = net.now();

        // Down events firing this cycle: capture the pre-event
        // trailing throughput as the recovery target.
        while (evIdx < events.size() && events[evIdx].at <= t) {
            const ServiceEvent &ev = events[evIdx++];
            if (ev.isDown() && t >= warmup && t < horizonEnd) {
                ++cs.recoveryEvents;
                pending.push_back(
                    {t, cfg.recoveryFraction *
                            static_cast<double>(windowEjected)});
            }
        }

        const double load = shapedLoad(cfg, t);
        if (measuring)
            offeredSum += load;
        inj.setOfferedLoad(load);
        inj.tick(net, measuring);
        if (cfg.jobPeriod > 0 && cfg.jobPacketsPerNode > 0 &&
            t > 0 && t % cfg.jobPeriod == 0)
            loadBatch(net, cfg.jobPacketsPerNode, measuring);

        net.step();
        obsTick();

        // Advance the trailing delivered-flit window.
        const std::uint64_t ej = net.stats().flitsEjected;
        windowEjected -= ejRing[ringPos];
        ejRing[ringPos] = ej - lastEjected;
        windowEjected += ejRing[ringPos];
        ringPos = ringPos + 1 == window ? 0 : ringPos + 1;
        lastEjected = ej;

        // Recovery: throughput restored to the pre-event target.
        for (std::size_t i = 0; i < pending.size();) {
            if (static_cast<double>(windowEjected) >=
                pending[i].target) {
                cs.recoveryCycles.push_back(static_cast<double>(
                    net.now() - pending[i].at));
                ++cs.recoveredEvents;
                pending[i] = pending.back();
                pending.pop_back();
            } else {
                ++i;
            }
        }

        // Epoch boundary: re-select the routing policy from the
        // channel-utilization telemetry of the window just closed.
        if (adapting && net.now() % cfg.epochCycles == 0) {
            ++cs.epochs;
            const MetricsRegistry::Series *mean =
                metrics->findSeries("obs.channel_util.mean");
            const MetricsRegistry::Series *mx =
                metrics->findSeries("obs.channel_util.max");
            if (mean != nullptr && !mean->values.empty() &&
                mx != nullptr && !mx->values.empty()) {
                const double m = mean->values.back();
                const double M = mx->values.back();
                const double imb = M / std::max(m, 1e-9);
                RouteAlgoId want = RouteAlgoId::kMinAdaptive;
                if (imb >= cfg.imbalanceVal &&
                    m <= cfg.valMeanUtilMax)
                    want = RouteAlgoId::kValiant;
                else if (imb >= cfg.imbalanceUgal)
                    want = RouteAlgoId::kUgal;
                algo.select(want);
            }
        }
    };

    // Unmeasured warm-up under the load shape (churn already live).
    for (Cycle c = 0; c < warmup; ++c) {
        serviceCycle(false);
        if (livenessTick() == LivenessOutcome::kAbort)
            return stalledOut(false, 0, 0);
    }

    // The measured service horizon: every injected packet labeled.
    const std::uint64_t ejected0 = net.stats().flitsEjected;
    for (Cycle c = 0; c < cfg.horizonCycles; ++c) {
        serviceCycle(true);
        if (livenessTick() == LivenessOutcome::kAbort)
            return stalledOut(false, 0, 0);
    }
    const std::uint64_t ejected1 = net.stats().flitsEjected;

    // Drain: background (unmeasured) traffic continues, pending
    // repairs keep arriving, until every labeled packet delivered or
    // accounted as dropped.
    bool saturated = false;
    for (int drained = 0;
         net.stats().measuredEjected + net.stats().measuredDropped <
         net.stats().measuredCreated;
         ++drained) {
        if (drained >= cfg.drainCycles) {
            saturated = true;
            break;
        }
        serviceCycle(false);
        if (livenessTick() == LivenessOutcome::kAbort)
            return stalledOut(true, ejected0, ejected1);
    }

    fillObserved(!saturated);
    res.load.offered =
        cfg.horizonCycles > 0
            ? offeredSum / static_cast<double>(cfg.horizonCycles) +
                  (cfg.jobPeriod > 0
                       ? static_cast<double>(cfg.jobPacketsPerNode *
                                             netcfg.packetSize) /
                             static_cast<double>(cfg.jobPeriod)
                       : 0.0)
            : 0.0;
    res.load.accepted =
        static_cast<double>(ejected1 - ejected0) /
        (static_cast<double>(net.numNodes()) *
         static_cast<double>(cfg.horizonCycles));
    res.load.saturated = saturated;
    if (saturated)
        res.load.status = LoadPointStatus::kSaturated;
    else if (!recs.empty())
        res.load.status = LoadPointStatus::kDeadlockRecovered;
    else if (net.stats().measuredDropped > 0)
        res.load.status = LoadPointStatus::kUnreachable;
    else
        res.load.status = LoadPointStatus::kDelivered;
    return res;
}

std::string
churnExtraJson(const ChurnConfig &cc, const ChurnStats &cs)
{
    std::ostringstream os;
    os << "\"churn\": {";
    os << "\"link_mtbf\": " << jsonDouble(cc.linkMtbf)
       << ", \"link_mttr\": " << jsonDouble(cc.linkMttr)
       << ", \"router_mtbf\": " << jsonDouble(cc.routerMtbf)
       << ", \"router_mttr\": " << jsonDouble(cc.routerMttr)
       << ", \"horizon\": " << cc.horizon
       << ", \"down_events\": " << cs.downEvents
       << ", \"repair_events\": " << cs.repairEvents
       << ", \"pruned_episodes\": " << cs.prunedEpisodes
       << ", \"flits_lost\": " << cs.flitsLost
       << ", \"packets_lost\": " << cs.packetsLost
       << ", \"measured_lost\": " << cs.measuredLost
       << ", \"epochs\": " << cs.epochs
       << ", \"routing_switches\": " << cs.routingSwitches
       << ", \"pinned_min_ad\": " << cs.pinnedMinAd
       << ", \"pinned_ugal\": " << cs.pinnedUgal
       << ", \"pinned_val\": " << cs.pinnedVal
       << ", \"p999_latency\": " << jsonDouble(cs.p999Latency);
    os << ", \"recovery\": {\"events\": " << cs.recoveryEvents
       << ", \"recovered\": " << cs.recoveredEvents
       << ", \"mean_cycles\": " << jsonDouble(cs.meanRecoveryCycles)
       << ", \"max_cycles\": " << jsonDouble(cs.maxRecoveryCycles)
       << ", \"samples\": [";
    for (std::size_t i = 0; i < cs.recoveryCycles.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << jsonDouble(cs.recoveryCycles[i]);
    }
    os << "]}}";
    return os.str();
}

std::vector<SweepPointRecord>
runChurnSweep(const FlattenedButterfly &topo,
              const TrafficPattern &pattern,
              const NetworkConfig &netcfg, const ChurnSweepConfig &cfg)
{
    std::vector<SweepPointRecord> records(cfg.cases.size());
    ThreadPool pool(cfg.threads);
    for (std::size_t i = 0; i < cfg.cases.size(); ++i) {
        pool.submit([&, i] {
            SweepPointRecord &rec = records[i];
            const std::uint64_t pseed =
                derivePointSeed(cfg.masterSeed, i);

            ChurnRunConfig rc = cfg.run;
            rc.seed = pseed;

            // The churn schedule runs on absolute cycles; cover the
            // warm-up and the measured horizon (repairs for any
            // still-open episode land during the drain).
            ChurnConfig cc = cfg.cases[i].churn;
            cc.horizon = static_cast<Cycle>(rc.warmupCycles) +
                         rc.horizonCycles;
            cc.seed = pseed ^ 0x436875726e4d646cULL; // "ChurnMdl"
            const ChurnModel model(topo, cc);

            const auto t0 = std::chrono::steady_clock::now();
            const ChurnPointResult r =
                runChurnPoint(topo, pattern, &model, netcfg, rc);
            const std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - t0;

            rec.index = i;
            rec.kind = SweepPointKind::kChurn;
            rec.series = cfg.cases[i].label;
            rec.topology = topo.name();
            rec.routing = "SWITCHABLE";
            rec.traffic = pattern.name();
            rec.seed = pseed;
            rec.wallSeconds = dt.count();
            rec.load = r.load;
            rec.extraJson = churnExtraJson(cc, r.churn);
        });
    }
    pool.wait();
    return records;
}

} // namespace fbfly
