/**
 * @file
 * Time-series sampling of a running network.
 *
 * The paper's Figure 5 studies dynamic response through batch
 * completion times; this sampler exposes the same transients as
 * explicit time series — per-window accepted throughput, average
 * latency of the packets ejected in the window, and network
 * occupancy — so step-response experiments (a traffic pattern or
 * load changing mid-run) can be plotted cycle by cycle.
 */

#ifndef FBFLY_HARNESS_SAMPLER_H
#define FBFLY_HARNESS_SAMPLER_H

#include <vector>

#include "common/types.h"

namespace fbfly
{

class Network;

/**
 * One aggregated sample window.
 */
struct Sample
{
    /** First cycle of the window. */
    Cycle start = 0;
    /** Accepted throughput over the window, flits/node/cycle. */
    double accepted = 0.0;
    /** Mean total latency of packets ejected in the window (0 when
     *  none ejected). */
    double avgLatency = 0.0;
    /** Packets ejected in the window. */
    std::uint64_t ejected = 0;
    /** Flits resident in the network at the window boundary. */
    std::int64_t inFlight = 0;
    /** Packets waiting in source queues at the window boundary. */
    std::int64_t backlog = 0;
};

/**
 * Collects fixed-width sample windows from a network.
 *
 * Call tick() once per cycle after Network::step(); a Sample is
 * appended every @p window_cycles.
 */
class TimeSeriesSampler
{
  public:
    /**
     * @param net network to observe (must outlive the sampler).
     * @param window_cycles window width (>= 1).
     */
    TimeSeriesSampler(const Network &net, int window_cycles);

    /** Observe the just-completed cycle. */
    void tick();

    /** Windows collected so far. */
    const std::vector<Sample> &samples() const { return samples_; }

  private:
    const Network &net_;
    int window_;
    int phase_ = 0;

    Cycle windowStart_ = 0;
    std::uint64_t lastFlitsEjected_ = 0;
    std::uint64_t lastPacketsEjected_ = 0;
    double lastLatencySum_ = 0.0;
    std::uint64_t lastLatencyCount_ = 0;

    std::vector<Sample> samples_;
};

} // namespace fbfly

#endif // FBFLY_HARNESS_SAMPLER_H
