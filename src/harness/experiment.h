/**
 * @file
 * Experiment harness: the open-loop and batch methodologies of paper
 * Section 3.2.
 *
 * Open loop: "The simulator is warmed up under load without taking
 * measurements until steady-state is reached.  Then a sample of
 * injected packets is labeled during a measurement interval.  The
 * simulation is run until all labeled packets exit the system."
 * runLoadPoint() implements exactly this, reporting average labeled
 * latency and the accepted throughput over the measurement window;
 * a bounded drain detects saturation (labeled packets that never
 * leave).
 *
 * Batch: loadBatch() + runBatch() measure the time to deliver a
 * fixed batch, normalized by batch size — the dynamic-response /
 * transient-load-imbalance experiment of Figure 5.
 */

#ifndef FBFLY_HARNESS_EXPERIMENT_H
#define FBFLY_HARNESS_EXPERIMENT_H

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "network/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/delivery_oracle.h"
#include "sim/liveness.h"

namespace fbfly
{

class Topology;
class RoutingAlgorithm;
class TrafficPattern;

/**
 * Observability knobs for one run (docs/OBSERVABILITY.md).
 *
 * Both collectors are per-run (per sweep point) state: each
 * runLoadPoint call owns its sink and registry, written only from
 * the thread executing that point — so results are bit-identical for
 * any sweep thread count.
 */
struct ObsConfig
{
    /** Record flit-lifecycle events into a TraceSink (exported to
     *  Chrome trace_event JSON by the benches' --trace-out). */
    bool traceEnabled = false;
    /** Trace ring capacity in events.  Every sweep point keeps its
     *  ring alive until the post-run merge, so this default is
     *  deliberately smaller than TraceSink::kDefaultCapacity:
     *  256 Ki events (~12 MiB) per point, oldest overwritten first
     *  (the tail of a run is the interesting part). */
    std::size_t traceCapacity = std::size_t{1} << 18;
    /** Event mask preset (kFull records everything). */
    TraceLevel traceLevel = TraceLevel::kFull;
    /** Collect a MetricsRegistry (counters, latency gauges, channel
     *  utilization / VC occupancy series). */
    bool metricsEnabled = false;
    /** Sampling window for the utilization / occupancy series. */
    std::uint64_t metricsWindowCycles = 100;
};

/**
 * Experiment phasing parameters.
 */
struct ExperimentConfig
{
    /** Cycles of unmeasured warm-up under load. */
    int warmupCycles = 10000;
    /** Cycles during which injected packets are labeled. */
    int measureCycles = 10000;
    /** Drain bound; labeled packets still inside => saturated. */
    int drainCycles = 100000;
    /** Per-run master seed. */
    std::uint64_t seed = 1;
    /**
     * Audit end-to-end delivery with a DeliveryOracle: every labeled
     * packet is fingerprinted at injection and checked at ejection
     * for exactly-once, in-order (per flow), uncorrupted delivery.
     * The audit is reported in LoadPointResult::delivery and warned
     * about when violated; it never changes simulation behavior.
     */
    bool verifyDelivery = true;

    /** Observability collection (off by default: tracing costs one
     *  dead branch per record site, metrics cost nothing). */
    ObsConfig obs;

    /** Stall diagnosis & recovery (sim/liveness.h).  The default
     *  (kAbort) keeps the pre-liveness behavior — a watchdog fire
     *  ends the run as kStalled — but the dump now carries the
     *  classified diagnosis. */
    LivenessConfig liveness;
};

/**
 * How a load-point run ended.  Every run terminates with an explicit
 * status — a run can no longer hang silently.
 */
enum class LoadPointStatus
{
    /** All labeled packets were delivered. */
    kDelivered,
    /** The drain bound was hit with labeled packets still inside
     *  (classic saturation). */
    kSaturated,
    /** Labeled packets were dropped as unreachable (fault sets that
     *  cut off destinations, or exhausted misroute budgets). */
    kUnreachable,
    /** The forward-progress watchdog fired: nothing moved for
     *  netcfg.watchdogCycles cycles with work still pending
     *  (deadlock/livelock).  diagnostics holds the stall dump. */
    kStalled,
    /** Network::validate() rejected the configuration before the
     *  run; diagnostics holds the validation report. */
    kInvalidConfig,
    /** The run stalled at least once but liveness recovery (see
     *  ExperimentConfig::liveness) unblocked it and the run then
     *  completed.  `liveness` holds the structured diagnosis; killed
     *  victims are counted in measuredDropped / flitsDropped and in
     *  the oracle's expected losses. */
    kDeadlockRecovered,
};

/** Short human-readable name of a status ("delivered", ...). */
const char *toString(LoadPointStatus s);

/**
 * Result of one offered-load point.
 *
 * NaN convention: every derived statistic (accepted, the latency
 * aggregates, avgHops) defaults to NaN and is only overwritten with a
 * real number once the corresponding observation exists.  A run that
 * is rejected pre-flight (kInvalidConfig) or wedges before the
 * measurement window completes (kStalled) therefore reports NaN —
 * never a fake 0.0 that a sweep consumer could silently average.
 * Use valid() / latencyValid() before aggregating.
 */
struct LoadPointResult
{
    /** Not-a-number: the value of every statistic that was never
     *  observed. */
    static constexpr double kUnknown =
        std::numeric_limits<double>::quiet_NaN();

    /** Offered load, flits/node/cycle. */
    double offered = 0.0;
    /** Accepted throughput over the measurement window,
     *  flits/node/cycle; NaN unless the window completed. */
    double accepted = kUnknown;
    /** Average labeled packet latency (creation -> ejection), cycles;
     *  NaN with no labeled ejections, biased when saturated. */
    double avgLatency = kUnknown;
    /** Average labeled latency excluding source queueing. */
    double avgNetworkLatency = kUnknown;
    /** Average channel traversals of labeled packets. */
    double avgHops = kUnknown;
    /** 99th-percentile labeled latency (exact; the histogram grows
     *  to cover the largest observed latency). */
    double p99Latency = kUnknown;
    /** Labeled packets still undelivered at the drain bound
     *  (kept for backward compatibility: status == kSaturated). */
    bool saturated = false;
    std::uint64_t measuredPackets = 0;

    /** How the run ended (always set). */
    LoadPointStatus status = LoadPointStatus::kDelivered;
    /** Labeled packets dropped as unreachable. */
    std::uint64_t measuredDropped = 0;
    /** Total flits dropped over the whole run. */
    std::uint64_t flitsDropped = 0;
    /** Stall dump + liveness diagnosis (kStalled) or validation
     *  report (kInvalidConfig); empty otherwise. */
    std::string diagnostics;

    /** Liveness recovery attempts applied during the run. */
    int recoveries = 0;
    /** Pre-serialized fbfly-sweep-v1 `"liveness": {...}` fragment
     *  (sim/liveness.h livenessJson()); empty when the run never
     *  stalled. */
    std::string liveness;

    /** Link-layer reliability counters summed over all inter-router
     *  channels (all zero when the retry protocol is off). */
    LinkStats link;
    /** Retransmissions per wire attempt (NaN with zero attempts,
     *  i.e. before any flit crossed an inter-router channel). */
    double retransmitRate = kUnknown;

    /** End-to-end delivery audit (see ExperimentConfig ::
     *  verifyDelivery); all-zero when auditing was off. */
    OracleReport delivery;
    /** True when the delivery oracle ran for this point. */
    bool deliveryChecked = false;

    /** Flit-lifecycle trace (null unless obs.traceEnabled).  Shared
     *  so sweep records can be copied cheaply; the sink is immutable
     *  once the run ends. */
    std::shared_ptr<const TraceSink> trace;
    /** Collected metrics (null unless obs.metricsEnabled). */
    std::shared_ptr<const MetricsRegistry> metrics;

    /**
     * True when the measurement window completed, i.e. `accepted`
     * is a real observation.  False for pre-flight rejections and
     * for runs that stalled before the window closed.
     */
    bool valid() const { return !std::isnan(accepted); }

    /**
     * True when the latency aggregates (avgLatency, p99Latency, ...)
     * are trustworthy: the run completed its window, did not
     * saturate (a saturated run only reports the survivors' latency,
     * a biased sample), and at least one labeled packet ejected.
     */
    bool latencyValid() const
    {
        return valid() && !saturated && measuredPackets > 0;
    }
};

/**
 * Result of one batch run.
 */
struct BatchResult
{
    int batchSize = 0;
    /** Cycles from time zero until the whole batch is delivered. */
    Cycle completionTime = 0;
    /** completionTime / batchSize (Figure 5's y-axis). */
    double normalizedLatency = 0.0;
};

/**
 * Run one offered-load point on a freshly built network.
 *
 * @param topo    topology (outlives the call).
 * @param algo    routing algorithm; cfg.numVcs is overridden to
 *                algo.numVcs().
 * @param pattern traffic pattern.
 * @param netcfg  network configuration (vcDepth etc.).
 * @param expcfg  phasing parameters.
 * @param offered offered load in flits/node/cycle.
 */
LoadPointResult runLoadPoint(const Topology &topo,
                             RoutingAlgorithm &algo,
                             const TrafficPattern &pattern,
                             NetworkConfig netcfg,
                             const ExperimentConfig &expcfg,
                             double offered);

/**
 * Sweep several offered loads (independent runs).
 */
std::vector<LoadPointResult> runLoadSweep(
    const Topology &topo, RoutingAlgorithm &algo,
    const TrafficPattern &pattern, NetworkConfig netcfg,
    const ExperimentConfig &expcfg, const std::vector<double> &loads);

/**
 * Estimate saturation throughput: the accepted rate when offered
 * load exceeds capacity (runs at offered = 1.0).
 */
double measureSaturationThroughput(const Topology &topo,
                                   RoutingAlgorithm &algo,
                                   const TrafficPattern &pattern,
                                   NetworkConfig netcfg,
                                   const ExperimentConfig &expcfg);

/**
 * Deliver a batch of @p batch_size packets per node and report the
 * normalized completion time (Figure 5).
 *
 * @param max_cycles safety bound on the run length.
 */
BatchResult runBatch(const Topology &topo, RoutingAlgorithm &algo,
                     const TrafficPattern &pattern,
                     NetworkConfig netcfg, std::uint64_t seed,
                     int batch_size, Cycle max_cycles = 10000000);

} // namespace fbfly

#endif // FBFLY_HARNESS_EXPERIMENT_H
