/**
 * @file
 * Resilience sweep: latency/throughput inflation and retransmission
 * cost versus transient bit-error rate.
 *
 * The paper's cost advantage comes from long, cheap electrical
 * cables (Sections 5-6) — exactly the links that suffer transient
 * bit errors in deployed high-radix machines.  This harness
 * quantifies what surviving those errors costs: for each per-flit
 * error rate it builds a deterministic ErrorModel, runs every
 * routing algorithm at a fixed load (and optionally at saturation)
 * with the link-layer retry protocol enabled, and reports latency,
 * accepted throughput, the retransmission-rate overhead, and the
 * end-to-end delivery audit (every error must be absorbed by
 * link-level retry — the oracle must stay clean).
 *
 * All cells execute on the parallel sweep engine; error draws are
 * channel-private streams seeded from the error model, so results
 * are bit-identical at any --threads N.  A zero error rate is
 * transparent: the protocol runs but never retransmits, reproducing
 * the error-free simulation bit-identically.
 */

#ifndef FBFLY_HARNESS_RESILIENCE_H
#define FBFLY_HARNESS_RESILIENCE_H

#include <string>
#include <utility>
#include <vector>

#include "fault/error_model.h"
#include "harness/experiment.h"
#include "harness/sweep.h"

namespace fbfly
{

class Topology;
class RoutingAlgorithm;
class TrafficPattern;

/**
 * Resilience sweep parameters.
 */
struct ResilienceConfig
{
    /** Per-wire-attempt total error rates to evaluate (corruption +
     *  erasure, split by eraseShare). */
    std::vector<double> errorRates = {0.0, 1e-5, 1e-4, 1e-3};
    /** Fraction of each rate that is erasure (flit lost) rather than
     *  corruption (flit mangled, caught by CRC). */
    double eraseShare = 0.25;
    /** Offered load of the fixed-load latency point. */
    double load = 0.4;
    /** Also run an offered = 1.0 saturation point per cell. */
    bool measureSaturation = true;
    /** Burst parameters and error seed; corrupt/erase rates are
     *  overridden per sweep point. */
    ErrorModelConfig errorBase;
    /** Retry-protocol knobs (always enabled by this harness, also at
     *  zero rate — the protocol is timing-transparent there). */
    LinkReliabilityConfig retry;
    /** Watchdog backing every run. */
    Cycle watchdogCycles = 20000;
    /** Sweep worker threads (<= 0: all hardware threads). */
    int threads = 1;
    /** Experiment phasing; exp.seed is the sweep's master seed. */
    ExperimentConfig exp;
    /** Base network knobs; numVcs, seed, errors, linkRetry and
     *  watchdogCycles are overridden per run. */
    NetworkConfig net;
};

/**
 * One (error rate, algorithm) cell of the sweep.
 */
struct ResiliencePoint
{
    /** Total per-attempt error rate of the cell. */
    double errorRate = 0.0;
    /** Corruption / erasure split actually applied. */
    double corruptRate = 0.0;
    double eraseRate = 0.0;
    /** Routing algorithm name. */
    std::string algorithm;
    /** The cfg.load run: latency inflation + retry counters. */
    LoadPointResult fixedLoad;
    /** Offered = 1.0 run (valid() false when
     *  !cfg.measureSaturation). */
    LoadPointResult saturation;
};

/**
 * Run the sweep: for each error rate, build one ErrorModel and
 * evaluate every algorithm under it.  Cells execute on a SweepEngine
 * with cfg.threads workers; queue order (= seed-derivation order) is
 * rate-major, algorithm-minor, so output is thread-count
 * independent.
 *
 * @param records_out when non-null, receives the engine's raw
 *        per-point records (for JSON output via ResultWriter).
 * @return points in (rate-major, algorithm-minor) order.
 */
std::vector<ResiliencePoint> runResilienceSweep(
    const Topology &topo,
    const std::vector<RoutingAlgorithm *> &algos,
    const TrafficPattern &pattern, const ResilienceConfig &cfg,
    std::vector<SweepPointRecord> *records_out = nullptr);

/**
 * Self-describing metadata for the sweep JSON: the swept rates, the
 * corruption/erasure split, burst parameters, the error seed and the
 * retry knobs — so a resilience JSON document fully specifies the
 * error model that produced it.
 */
std::vector<std::pair<std::string, std::string>>
resilienceMetadata(const ResilienceConfig &cfg);

} // namespace fbfly

#endif // FBFLY_HARNESS_RESILIENCE_H
