#include "harness/result_writer.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.h"

namespace fbfly
{

const char *
gitDescribe()
{
#ifdef FBFLY_GIT_DESCRIBE
    return FBFLY_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

void
jsonAppendString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\r':
            os << "\\r";
            break;
        case '\t':
            os << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
jsonAppendNumber(std::ostream &os, double x)
{
    if (!std::isfinite(x)) {
        os << "null";
        return;
    }
    // Shortest representation that round-trips: try increasing
    // precision so 0.3 prints as "0.3", not "0.29999999999999999".
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, x);
        if (std::strtod(buf, nullptr) == x)
            break;
    }
    os << buf;
}

namespace
{

/** Local shorthands for the shared emission primitives. */
void
jsonString(std::ostringstream &os, const std::string &s)
{
    jsonAppendString(os, s);
}

void
jsonNumber(std::ostringstream &os, double x)
{
    jsonAppendNumber(os, x);
}

const char *
kindName(SweepPointKind k)
{
    switch (k) {
    case SweepPointKind::kLoadPoint:
        return "load";
    case SweepPointKind::kBatch:
        return "batch";
    case SweepPointKind::kChurn:
        return "churn";
    }
    return "?";
}

void
writePoint(std::ostringstream &os, const SweepPointRecord &rec)
{
    os << "    {\"index\": " << rec.index << ", \"kind\": \""
       << kindName(rec.kind) << "\", \"series\": ";
    jsonString(os, rec.series);
    os << ", \"topology\": ";
    jsonString(os, rec.topology);
    os << ", \"routing\": ";
    jsonString(os, rec.routing);
    os << ", \"traffic\": ";
    jsonString(os, rec.traffic);
    os << ", \"seed\": " << rec.seed << ", \"wall_seconds\": ";
    jsonNumber(os, rec.wallSeconds);
    if (rec.kind == SweepPointKind::kBatch) {
        os << ", \"batch_size\": " << rec.batch.batchSize
           << ", \"completion_cycles\": " << rec.batch.completionTime
           << ", \"normalized_latency\": ";
        jsonNumber(os, rec.batch.normalizedLatency);
        os << "}";
        return;
    }
    const LoadPointResult &r = rec.load;
    os << ", \"offered\": ";
    jsonNumber(os, r.offered);
    os << ", \"accepted\": ";
    jsonNumber(os, r.accepted);
    os << ", \"avg_latency\": ";
    jsonNumber(os, r.avgLatency);
    os << ", \"avg_network_latency\": ";
    jsonNumber(os, r.avgNetworkLatency);
    os << ", \"avg_hops\": ";
    jsonNumber(os, r.avgHops);
    os << ", \"p99_latency\": ";
    jsonNumber(os, r.p99Latency);
    os << ", \"status\": \"" << toString(r.status) << "\""
       << ", \"valid\": " << (r.valid() ? "true" : "false")
       << ", \"saturated\": " << (r.saturated ? "true" : "false")
       << ", \"measured_packets\": " << r.measuredPackets
       << ", \"measured_dropped\": " << r.measuredDropped
       << ", \"flits_dropped\": " << r.flitsDropped;
    // Link-layer reliability counters (all zero when the retry
    // protocol was off for this point).
    os << ", \"link_attempts\": " << r.link.attempts
       << ", \"link_retransmits\": " << r.link.retransmits
       << ", \"link_corrupt_injected\": " << r.link.corruptInjected
       << ", \"link_erase_injected\": " << r.link.eraseInjected
       << ", \"link_crc_rejected\": " << r.link.crcRejected
       << ", \"link_dup_suppressed\": " << r.link.dupSuppressed
       << ", \"link_nacks\": " << r.link.nacksSent
       << ", \"link_acks\": " << r.link.acksSent
       << ", \"link_timeouts\": " << r.link.timeouts
       << ", \"retransmit_rate\": ";
    jsonNumber(os, r.retransmitRate);
    if (r.deliveryChecked) {
        const OracleReport &d = r.delivery;
        os << ", \"delivery\": {\"tracked\": " << d.tracked
           << ", \"delivered\": " << d.delivered
           << ", \"outstanding\": " << d.outstanding
           << ", \"expected_dropped\": " << d.expectedDropped
           << ", \"dropped\": " << d.dropped
           << ", \"duplicates\": " << d.duplicates
           << ", \"reorders\": " << d.reorders
           << ", \"order_enforced\": "
           << (d.orderEnforced ? "true" : "false")
           << ", \"corruptions\": " << d.corruptions
           << ", \"clean\": " << (d.clean() ? "true" : "false")
           << "}";
    }
    // Observability: the point's MetricsRegistry (counters, gauges,
    // utilization/occupancy series), present only when the point ran
    // with obs.metricsEnabled.
    if (r.metrics != nullptr && !r.metrics->empty()) {
        os << ", \"metrics\": ";
        r.metrics->writeJson(os);
    }
    // Liveness extension: present only when the run diagnosed at
    // least one stall (sim/liveness.h livenessJson()).
    if (!r.liveness.empty())
        os << ", " << r.liveness;
    // Kind-specific extension block (e.g. the churn object of a
    // dynamic-service point) — pre-serialized by the harness.
    if (!rec.extraJson.empty())
        os << ", " << rec.extraJson;
    os << "}";
}

} // namespace

std::string
sweepResultsToJson(const SweepRunMeta &meta,
                   const std::vector<SweepPointRecord> &records,
                   std::uint64_t master_seed, int threads,
                   double total_wall_seconds)
{
    double serial = 0.0;
    for (const auto &rec : records)
        serial += rec.wallSeconds;
    const double speedup =
        total_wall_seconds > 0.0 ? serial / total_wall_seconds : 0.0;

    std::ostringstream os;
    os << "{\n  \"schema\": \"" << kSweepJsonSchema << "\",\n";
    os << "  \"bench\": ";
    jsonString(os, meta.bench);
    os << ",\n  \"git\": ";
    jsonString(os, gitDescribe());
    os << ",\n  \"seed\": " << master_seed;
    os << ",\n  \"threads\": " << threads;
    os << ",\n  \"wall_seconds_total\": ";
    jsonNumber(os, total_wall_seconds);
    os << ",\n  \"wall_seconds_points_sum\": ";
    jsonNumber(os, serial);
    os << ",\n  \"parallel_speedup\": ";
    jsonNumber(os, speedup);
    os << ",\n  \"trace_file\": ";
    if (meta.traceFile.empty())
        os << "null";
    else
        jsonString(os, meta.traceFile);
    os << ",\n  \"metadata\": {";
    bool first = true;
    if (!meta.description.empty()) {
        os << "\"description\": ";
        jsonString(os, meta.description);
        first = false;
    }
    for (const auto &[key, value] : meta.extra) {
        if (!first)
            os << ", ";
        jsonString(os, key);
        os << ": ";
        jsonString(os, value);
        first = false;
    }
    for (const auto &[key, value] : meta.extraNumbers) {
        if (!first)
            os << ", ";
        jsonString(os, key);
        os << ": ";
        jsonNumber(os, value);
        first = false;
    }
    os << "},\n  \"points\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        writePoint(os, records[i]);
        if (i + 1 < records.size())
            os << ",";
        os << "\n";
    }
    os << "  ]\n}";
    return os.str();
}

bool
writeSweepResults(const std::string &path, const SweepRunMeta &meta,
                  const std::vector<SweepPointRecord> &records,
                  std::uint64_t master_seed, int threads,
                  double total_wall_seconds)
{
    std::ofstream out(path);
    if (!out) {
        FBFLY_WARN("cannot open '", path, "' for sweep JSON output");
        return false;
    }
    out << sweepResultsToJson(meta, records, master_seed, threads,
                              total_wall_seconds)
        << "\n";
    out.flush();
    if (!out) {
        FBFLY_WARN("short write of sweep JSON to '", path, "'");
        return false;
    }
    return true;
}

bool
writeSweepResults(const std::string &path, const SweepRunMeta &meta,
                  const SweepEngine &engine)
{
    return writeSweepResults(path, meta, engine.records(),
                             engine.masterSeed(), engine.threads(),
                             engine.totalWallSeconds());
}

} // namespace fbfly
