/**
 * @file
 * String-driven factories for topologies, routing algorithms, and
 * traffic patterns — the glue behind the `fbflysim` command-line
 * driver and a convenient way to parameterize experiments.
 *
 * Topology specs (sizes are positional, separated by '-'):
 *   fbfly-K-N        k-ary n-flat flattened butterfly
 *   butterfly-K-N    k-ary n-fly conventional butterfly
 *   clos-NODES-C-U   two-level folded Clos
 *   fattree-NODES-C-P-U1-U2  three-level folded Clos
 *   hypercube-D      binary hypercube, D dimensions
 *   torus-K-N        k-ary n-cube
 *   ghc-K1xK2x...    generalized hypercube with given radices
 *   dragonfly-P-A-H  balanced dragonfly (g = a*h + 1 groups)
 *   slimfly-Q-P      Slim Fly MMS graph (prime q ≡ 1 mod 4)
 *
 * Routing names: dor, minad, val, ugal, ugals, closad (flattened
 * butterfly); dest (butterfly); adaptive (clos/fattree); ecube
 * (hypercube); ghcmin, ghcadapt (ghc); tordor (torus); dfmin,
 * dfugal (dragonfly); sfmin, sfugal (slimfly) — or "default".
 *
 * Traffic names: uniform, adversarial, tornado, transpose, bitcomp,
 * randperm.
 */

#ifndef FBFLY_HARNESS_FACTORY_H
#define FBFLY_HARNESS_FACTORY_H

#include <memory>
#include <string>

#include "routing/routing.h"
#include "topology/topology.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{

/**
 * A topology with a compatible routing algorithm and metadata.
 */
struct NetworkBundle
{
    std::unique_ptr<Topology> topology;
    std::unique_ptr<RoutingAlgorithm> routing;
    /** Terminals per router group (the adversarial pattern's group
     *  size). */
    int terminalsPerRouter = 1;
    /** Suggested channel period (2 for the equal-bisection
     *  hypercube). */
    Cycle channelPeriod = 1;
};

/**
 * Build a topology + routing pair from specs.
 *
 * @param topo_spec    e.g. "fbfly-32-2".
 * @param routing_name e.g. "closad" or "default".
 * @throws exits via fatal() on malformed specs.
 */
NetworkBundle makeNetworkBundle(const std::string &topo_spec,
                                const std::string &routing_name);

/**
 * Build a traffic pattern by name for @p num_nodes terminals.
 *
 * @param group_size the adversarial/tornado router-group size.
 * @param seed       seed for randperm.
 */
std::unique_ptr<TrafficPattern> makeTraffic(
    const std::string &name, std::int64_t num_nodes, int group_size,
    std::uint64_t seed = 1);

} // namespace fbfly

#endif // FBFLY_HARNESS_FACTORY_H
