#include "harness/resilience.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/log.h"
#include "routing/routing.h"
#include "topology/topology.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{

namespace
{

/** Shortest decimal form that round-trips (metadata values). */
std::string
formatDouble(double x)
{
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, x);
        if (std::strtod(buf, nullptr) == x)
            break;
    }
    return buf;
}

} // namespace

std::vector<ResiliencePoint>
runResilienceSweep(const Topology &topo,
                   const std::vector<RoutingAlgorithm *> &algos,
                   const TrafficPattern &pattern,
                   const ResilienceConfig &cfg,
                   std::vector<SweepPointRecord> *records_out)
{
    FBFLY_ASSERT(cfg.eraseShare >= 0.0 && cfg.eraseShare <= 1.0,
                 "eraseShare must be in [0, 1]");

    // Phase 1 (serial, cheap): one error model per rate, shared by
    // every algorithm so they face identical error statistics.  The
    // models must outlive every queued run.
    std::vector<std::unique_ptr<ErrorModel>> models;
    models.reserve(cfg.errorRates.size());
    for (const double rate : cfg.errorRates) {
        ErrorModelConfig emc = cfg.errorBase;
        emc.corruptRate = rate * (1.0 - cfg.eraseShare);
        emc.eraseRate = rate * cfg.eraseShare;
        models.push_back(std::make_unique<ErrorModel>(topo, emc));
    }

    // Phase 2: queue every (rate, algorithm) cell on the engine.
    // Queue order (= seed-derivation order) is rate-major,
    // algorithm-minor, fixed-load before saturation.
    SweepConfig sweepcfg;
    sweepcfg.threads = cfg.threads;
    sweepcfg.masterSeed = cfg.exp.seed;
    SweepEngine engine(sweepcfg);

    std::vector<ResiliencePoint> out;
    struct CellIdx
    {
        std::size_t fixedLoad;
        std::size_t saturation; // unused when !measureSaturation
    };
    std::vector<CellIdx> cells;
    for (std::size_t e = 0; e < cfg.errorRates.size(); ++e) {
        const ErrorModel &em = *models[e];
        for (RoutingAlgorithm *algo : algos) {
            FBFLY_ASSERT(algo != nullptr,
                         "null algorithm in resilience sweep");
            NetworkConfig netcfg = cfg.net;
            netcfg.errors = &em;
            netcfg.linkRetry = cfg.retry;
            // Always run the protocol, also at zero rate: it is
            // timing-transparent there, and keeping it on makes the
            // zero-rate point the protocol-overhead control.
            netcfg.linkRetry.enabled = true;
            netcfg.watchdogCycles = cfg.watchdogCycles;

            ResiliencePoint pt;
            pt.errorRate = cfg.errorRates[e];
            pt.corruptRate = em.config().corruptRate;
            pt.eraseRate = em.config().eraseRate;
            pt.algorithm = algo->name();
            out.push_back(std::move(pt));

            char series[96];
            std::snprintf(series, sizeof series,
                          "resilience ber=%g %s", cfg.errorRates[e],
                          algo->name().c_str());
            CellIdx idx{};
            idx.fixedLoad = engine.addLoadPoint(
                std::string(series) + " fixed-load", topo, *algo,
                pattern, netcfg, cfg.exp, cfg.load);
            if (cfg.measureSaturation) {
                idx.saturation = engine.addLoadPoint(
                    std::string(series) + " saturation", topo, *algo,
                    pattern, netcfg, cfg.exp, 1.0);
            }
            cells.push_back(idx);
        }
    }

    const auto &records = engine.run();
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i].fixedLoad = records[cells[i].fixedLoad].load;
        if (cfg.measureSaturation)
            out[i].saturation = records[cells[i].saturation].load;
    }
    if (records_out != nullptr)
        *records_out = records;
    return out;
}

std::vector<std::pair<std::string, std::string>>
resilienceMetadata(const ResilienceConfig &cfg)
{
    std::vector<std::pair<std::string, std::string>> kv;
    std::string rates;
    for (const double r : cfg.errorRates) {
        if (!rates.empty())
            rates += ',';
        rates += formatDouble(r);
    }
    kv.emplace_back("error_rates", rates);
    kv.emplace_back("erase_share", formatDouble(cfg.eraseShare));
    kv.emplace_back("error_burst_start",
                    formatDouble(cfg.errorBase.burstStart));
    kv.emplace_back("error_burst_stop",
                    formatDouble(cfg.errorBase.burstStop));
    kv.emplace_back("error_burst_factor",
                    formatDouble(cfg.errorBase.burstFactor));
    kv.emplace_back("error_seed",
                    std::to_string(cfg.errorBase.seed));
    kv.emplace_back("retry_window_flits",
                    std::to_string(cfg.retry.windowFlits));
    kv.emplace_back("retry_timeout",
                    std::to_string(cfg.retry.retryTimeout));
    kv.emplace_back("retry_max_timeout",
                    std::to_string(cfg.retry.maxTimeout));
    kv.emplace_back("fixed_load", formatDouble(cfg.load));
    return kv;
}

} // namespace fbfly
