/**
 * @file
 * Machine-readable sweep results (docs/SWEEPS.md).
 *
 * Emits one JSON document per sweep run ("fbfly-sweep-v1" schema):
 * run metadata (bench name, master seed, thread count, git describe,
 * wall time, parallel speedup) plus one object per executed point —
 * offered/accepted/latency/p99/status/wall-time for load points,
 * batch size/completion/normalized latency for batch runs.
 *
 * NaN statistics (a run's validity convention, see
 * LoadPointResult) serialize as JSON null, never as a number a
 * downstream consumer could average by accident.
 */

#ifndef FBFLY_HARNESS_RESULT_WRITER_H
#define FBFLY_HARNESS_RESULT_WRITER_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "harness/sweep.h"

namespace fbfly
{

/** Version tag written into every document. */
inline constexpr const char *kSweepJsonSchema = "fbfly-sweep-v1";

/** Source revision baked in at configure time ("unknown" outside a
 *  git checkout). */
const char *gitDescribe();

/** @name JSON emission primitives
 *  Shared by every fbfly-*-v1 document writer (this one and the
 *  design-search Pareto writer, harness/design_search.h) so all
 *  documents share one escaping and number-formatting policy.
 *  @{ */

/** Append a JSON string literal (with escaping) to @p os. */
void jsonAppendString(std::ostream &os, const std::string &s);

/** Append a double in its shortest round-trip form; NaN/inf emit
 *  JSON null, never a bare token a parser would reject. */
void jsonAppendNumber(std::ostream &os, double x);

/** @} */

/**
 * Run-level metadata for a sweep JSON document.
 */
struct SweepRunMeta
{
    /** Bench / experiment name, e.g. "fig04_routing". */
    std::string bench;
    /** Free-form description (optional). */
    std::string description;
    /** Extra string key/value pairs merged into "metadata". */
    std::vector<std::pair<std::string, std::string>> extra;
    /** Extra *numeric* key/value pairs merged into "metadata" —
     *  emitted as JSON numbers (round-trip-exact, NaN -> null),
     *  never as quoted strings.  Use this for rates/counts so
     *  downstream tooling can consume them without parsing. */
    std::vector<std::pair<std::string, double>> extraNumbers;
    /** Path of the Chrome-trace JSON written for this run ("" when
     *  tracing was off); serialized as top-level "trace_file" (null
     *  when empty).  See docs/OBSERVABILITY.md. */
    std::string traceFile;
};

/**
 * Render a completed sweep as a JSON document (no trailing newline).
 *
 * @param meta     run-level metadata.
 * @param records  executed points, in index order.
 * @param master_seed seed the per-point seeds derive from.
 * @param threads  worker count of the run.
 * @param total_wall_seconds wall clock of the whole run.
 */
std::string sweepResultsToJson(
    const SweepRunMeta &meta,
    const std::vector<SweepPointRecord> &records,
    std::uint64_t master_seed, int threads,
    double total_wall_seconds);

/**
 * Write sweepResultsToJson() + '\n' to @p path.
 *
 * @return true on success; false (with a warning) on I/O failure.
 */
bool writeSweepResults(const std::string &path,
                       const SweepRunMeta &meta,
                       const std::vector<SweepPointRecord> &records,
                       std::uint64_t master_seed, int threads,
                       double total_wall_seconds);

/** Convenience overload for a completed SweepEngine. */
bool writeSweepResults(const std::string &path,
                       const SweepRunMeta &meta,
                       const SweepEngine &engine);

} // namespace fbfly

#endif // FBFLY_HARNESS_RESULT_WRITER_H
