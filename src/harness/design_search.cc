#include "harness/design_search.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "common/log.h"
#include "cost/topology_cost.h"
#include "harness/factory.h"
#include "harness/result_writer.h"
#include "power/power_model.h"
#include "topology/topology.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{

const char *
toString(TopoFamily f)
{
    switch (f) {
    case TopoFamily::kFlattenedButterfly:
        return "fbfly";
    case TopoFamily::kFoldedClos:
        return "clos";
    case TopoFamily::kHypercube:
        return "hypercube";
    case TopoFamily::kGeneralizedHypercube:
        return "ghc";
    case TopoFamily::kDragonfly:
        return "dragonfly";
    case TopoFamily::kSlimFly:
        return "slimfly";
    }
    return "?";
}

namespace
{

std::int64_t
ipow(std::int64_t base, int exp)
{
    std::int64_t v = 1;
    for (int i = 0; i < exp; ++i)
        v *= base;
    return v;
}

/**
 * One (family, size parameters) point of the enumeration grid with
 * its closed-form structure.  The channel-slicing / buffer variants
 * expand from this.
 */
struct FamilyConfig
{
    TopoFamily family;
    std::string spec;    ///< factory topology spec
    std::string routing; ///< factory routing name
    /** Raw size parameters, family-specific (see the add* helpers). */
    std::int64_t px[3] = {0, 0, 0};

    std::int64_t terminals = 0;
    std::int64_t routers = 0;
    int radix = 0;
    int diameter = 0;
    /** Mean minimal inter-router hops over ordered terminal pairs
     *  (closed form; tests/test_properties.cc checks it against BFS
     *  ground truth per family). */
    double avgMinHops = 0.0;
};

/** Terminal-pair average from the mean distance to a uniformly
 *  random router (self included) — valid for vertex-transitive
 *  direct topologies with a fixed terminal count per router. */
double
terminalPairAvg(double dbar, std::int64_t terminals)
{
    return dbar * static_cast<double>(terminals) /
           static_cast<double>(terminals - 1);
}

void
addFbfly(std::vector<FamilyConfig> &out)
{
    for (const int k : {2, 4, 8, 16, 32}) {
        for (const int n : {2, 3, 4}) {
            FamilyConfig c;
            c.family = TopoFamily::kFlattenedButterfly;
            c.spec = "fbfly-" + std::to_string(k) + "-" +
                     std::to_string(n);
            c.routing = "ugal";
            c.px[0] = k;
            c.px[1] = n;
            c.terminals = ipow(k, n);
            c.routers = ipow(k, n - 1);
            c.radix = n * (k - 1) + 1;
            c.diameter = n - 1;
            c.avgMinHops = terminalPairAvg(
                static_cast<double>(n - 1) * (k - 1) / k,
                c.terminals);
            out.push_back(std::move(c));
        }
    }
}

void
addClos(std::vector<FamilyConfig> &out)
{
    for (const int cc : {4, 8}) {
        for (const int taper : {1, 2}) {
            const int u = cc / taper;
            for (const std::int64_t leaves : {4, 8, 16, 32, 64, 128}) {
                FamilyConfig c;
                c.family = TopoFamily::kFoldedClos;
                const std::int64_t nodes = cc * leaves;
                c.spec = "clos-" + std::to_string(nodes) + "-" +
                         std::to_string(cc) + "-" + std::to_string(u);
                c.routing = "adaptive";
                c.px[0] = nodes;
                c.px[1] = cc;
                c.px[2] = u;
                c.terminals = nodes;
                c.routers = leaves + u;
                c.radix = static_cast<int>(
                    std::max<std::int64_t>(cc + u, leaves));
                c.diameter = 2;
                // Same-leaf pairs are 0 hops, cross-leaf pairs 2.
                c.avgMinHops = 2.0 * cc * (leaves - 1) /
                               static_cast<double>(cc * leaves - 1);
                out.push_back(std::move(c));
            }
        }
    }
}

void
addHypercube(std::vector<FamilyConfig> &out)
{
    for (int d = 4; d <= 10; ++d) {
        FamilyConfig c;
        c.family = TopoFamily::kHypercube;
        c.spec = "hypercube-" + std::to_string(d);
        c.routing = "ecube";
        c.px[0] = d;
        c.terminals = std::int64_t{1} << d;
        c.routers = c.terminals;
        c.radix = d + 1;
        c.diameter = d;
        c.avgMinHops = terminalPairAvg(d / 2.0, c.terminals);
        out.push_back(std::move(c));
    }
}

void
addGhc(std::vector<FamilyConfig> &out)
{
    for (const int k : {4, 8, 16}) {
        for (const int m : {2, 3}) {
            FamilyConfig c;
            c.family = TopoFamily::kGeneralizedHypercube;
            c.spec = "ghc-" + std::to_string(k);
            for (int i = 1; i < m; ++i)
                c.spec += "x" + std::to_string(k);
            c.routing = "ghcadapt";
            c.px[0] = k;
            c.px[1] = m;
            c.terminals = ipow(k, m);
            c.routers = c.terminals;
            c.radix = m * (k - 1) + 1;
            c.diameter = m;
            c.avgMinHops = terminalPairAvg(
                static_cast<double>(m) * (k - 1) / k, c.terminals);
            out.push_back(std::move(c));
        }
    }
}

void
addDragonfly(std::vector<FamilyConfig> &out)
{
    static constexpr int kConfigs[][3] = {
        {2, 2, 1}, {2, 4, 2}, {4, 4, 2},
        {2, 6, 3}, {4, 8, 4}, {8, 8, 4},
    };
    for (const auto &pah : kConfigs) {
        const int p = pah[0], a = pah[1], h = pah[2];
        const std::int64_t g = std::int64_t{a} * h + 1;
        FamilyConfig c;
        c.family = TopoFamily::kDragonfly;
        c.spec = "dragonfly-" + std::to_string(p) + "-" +
                 std::to_string(a) + "-" + std::to_string(h);
        c.routing = "dfugal";
        c.px[0] = p;
        c.px[1] = a;
        c.px[2] = h;
        c.routers = a * g;
        c.terminals = p * c.routers;
        c.radix = p + (a - 1) + h;
        c.diameter = 3;
        // Same group: 1 hop.  Cross group: the global hop plus one
        // local hop per non-gateway endpoint ((a-1)/a each side).
        const double rr = static_cast<double>(c.routers);
        const double sum =
            static_cast<double>(g) * a * (a - 1) +
            static_cast<double>(g) * (g - 1) *
                (static_cast<double>(a) * a + 2.0 * a * (a - 1));
        c.avgMinHops = terminalPairAvg(sum / (rr * rr), c.terminals);
        out.push_back(std::move(c));
    }
}

void
addSlimFly(std::vector<FamilyConfig> &out)
{
    for (const int q : {5, 13, 17}) {
        for (const int p : {2, 4, 8}) {
            FamilyConfig c;
            c.family = TopoFamily::kSlimFly;
            c.spec = "slimfly-" + std::to_string(q) + "-" +
                     std::to_string(p);
            c.routing = "sfugal";
            c.px[0] = q;
            c.px[1] = p;
            c.routers = 2 * std::int64_t{q} * q;
            c.terminals = p * c.routers;
            const int deg = (3 * q - 1) / 2;
            c.radix = p + deg;
            c.diameter = 2;
            const double rr = static_cast<double>(c.routers);
            c.avgMinHops = terminalPairAvg(
                (deg + 2.0 * (rr - 1 - deg)) / rr, c.terminals);
            out.push_back(std::move(c));
        }
    }
}

/**
 * Cost/power inventory of one candidate, built with the existing
 * TopologyCostModel builders.  Channel slicing (period > 1) divides
 * the signal count of every inter-router cable by the period — the
 * paper's Section 4 tradeoff: narrower channels, proportionally
 * cheaper wiring, proportionally lower peak bandwidth.  Router cost
 * is conservatively kept at full width.  The hypercube builder
 * already prices the half-bandwidth (period-2) channels its
 * capacity-matched configuration requires, so it is exempt.
 */
Inventory
candidateInventory(const TopologyCostModel &model,
                   const FamilyConfig &cfg, Cycle period)
{
    Inventory inv;
    switch (cfg.family) {
    case TopoFamily::kFlattenedButterfly:
        inv = model.kAryNFlat(static_cast<int>(cfg.px[0]),
                              static_cast<int>(cfg.px[1]));
        break;
    case TopoFamily::kFoldedClos: {
        // The instance-exact two-level clos (the library foldedClos()
        // builder prices the paper's radix-64 configuration, not the
        // simulated clos-N-C-U instance).
        const std::int64_t nodes = cfg.px[0];
        const std::int64_t cc = cfg.px[1];
        const std::int64_t u = cfg.px[2];
        const std::int64_t leaves = nodes / cc;
        const CostModel &cm = model.cost();
        const PackagingModel &pk = model.packaging();
        inv.topology = cfg.spec;
        inv.numNodes = nodes;
        inv.direct = false;
        inv.routers.push_back(
            {leaves, static_cast<double>(cc + u) * cm.signalsPerPort *
                         2.0,
             "leaf"});
        inv.routers.push_back(
            {u, static_cast<double>(leaves) * cm.signalsPerPort * 2.0,
             "middle"});
        inv.links.push_back({LinkLocale::Backplane, 0.0, 2 * nodes,
                             cm.signalsPerPort, "terminal"});
        // Up/down cables all route to central cabinets (global,
        // average E/4), like the library builder.
        inv.links.push_back({LinkLocale::GlobalCable,
                             pk.avgGlobalClos(nodes) +
                                 pk.cableOverheadM,
                             2 * leaves * u, cm.signalsPerPort,
                             "up/down"});
        break;
    }
    case TopoFamily::kHypercube:
        inv = model.hypercube(std::int64_t{1} << cfg.px[0]);
        break;
    case TopoFamily::kGeneralizedHypercube:
        inv = model.generalizedHypercube(
            cfg.terminals, static_cast<int>(cfg.px[1]));
        break;
    case TopoFamily::kDragonfly:
        inv = model.dragonfly(static_cast<int>(cfg.px[0]),
                              static_cast<int>(cfg.px[1]),
                              static_cast<int>(cfg.px[2]));
        break;
    case TopoFamily::kSlimFly:
        inv = model.slimFly(static_cast<int>(cfg.px[0]),
                            static_cast<int>(cfg.px[1]));
        break;
    }
    if (cfg.family != TopoFamily::kHypercube && period > 1) {
        for (auto &g : inv.links) {
            if (g.label != "terminal")
                g.signalsPerLink /= static_cast<double>(period);
        }
    }
    return inv;
}

/** B dominates A: no worse on every analytic axis, better on one. */
bool
dominates(const DesignCandidate &b, const DesignCandidate &a)
{
    if (b.costPerTerminal > a.costPerTerminal ||
        b.powerPerTerminal > a.powerPerTerminal ||
        b.throughputBound < a.throughputBound ||
        b.avgMinHops > a.avgMinHops)
        return false;
    return b.costPerTerminal < a.costPerTerminal ||
           b.powerPerTerminal < a.powerPerTerminal ||
           b.throughputBound > a.throughputBound ||
           b.avgMinHops < a.avgMinHops;
}

} // namespace

std::vector<DesignCandidate>
enumerateDesignCandidates(const DesignSpec &spec)
{
    std::vector<FamilyConfig> configs;
    addFbfly(configs);
    addClos(configs);
    addHypercube(configs);
    addGhc(configs);
    addDragonfly(configs);
    addSlimFly(configs);

    const std::int64_t lo = spec.minTerminals;
    const std::int64_t hi = static_cast<std::int64_t>(std::floor(
        static_cast<double>(spec.minTerminals) *
        spec.maxTerminalFactor));

    const TopologyCostModel model;
    std::vector<DesignCandidate> out;
    for (const FamilyConfig &cfg : configs) {
        if (cfg.terminals < lo || cfg.terminals > hi)
            continue;
        // Structure is shared by all slicing/buffer variants; build
        // the topology once per grid point.
        const NetworkBundle bundle =
            makeNetworkBundle(cfg.spec, cfg.routing);
        const auto arcs = bundle.topology->arcs();
        const int routers = bundle.topology->numRouters();
        std::int64_t bisection = 0;
        for (const auto &arc : arcs) {
            if ((arc.src < routers / 2) != (arc.dst < routers / 2))
                ++bisection;
        }
        // The capacity-matched hypercube is defined with
        // half-bandwidth channels; other families get both slicings.
        const bool is_hc = cfg.family == TopoFamily::kHypercube;
        const std::vector<Cycle> periods =
            is_hc ? std::vector<Cycle>{2} : std::vector<Cycle>{1, 2};
        for (const Cycle period : periods) {
            for (const int depth : {4, 8}) {
                DesignCandidate cand;
                cand.family = cfg.family;
                cand.topoSpec = cfg.spec;
                cand.routing = cfg.routing;
                cand.channelPeriod = period;
                cand.vcDepth = depth;
                cand.numVcs = bundle.routing->numVcs();
                cand.terminals = cfg.terminals;
                cand.routers = cfg.routers;
                cand.radix = cfg.radix;
                cand.diameter = cfg.diameter;
                cand.avgMinHops = cfg.avgMinHops;
                cand.channels =
                    static_cast<std::int64_t>(arcs.size());
                cand.bisectionArcs = bisection;
                // Channel-count bound on uniform-random throughput:
                // lambda * T * avgHops flit-hops/cycle must fit in
                // channels/period hops of aggregate bandwidth.
                cand.throughputBound = std::min(
                    1.0, static_cast<double>(cand.channels) /
                             (static_cast<double>(cand.terminals) *
                              cand.avgMinHops *
                              static_cast<double>(period)));
                const Inventory inv =
                    candidateInventory(model, cfg, period);
                cand.costDollars = model.price(inv).total();
                cand.powerWatts = PowerModel{}.power(inv).total();
                cand.costPerTerminal =
                    cand.costDollars /
                    static_cast<double>(cand.terminals);
                cand.powerPerTerminal =
                    cand.powerWatts /
                    static_cast<double>(cand.terminals);
                out.push_back(std::move(cand));
            }
        }
    }

    // --- Analytic pruning -----------------------------------------
    // 1/2: budget gates.
    for (DesignCandidate &c : out) {
        if (spec.maxCostPerTerminal > 0.0 &&
            c.costPerTerminal > spec.maxCostPerTerminal) {
            c.pruned = true;
            c.pruneReason = "cost-budget";
        } else if (spec.maxPowerPerTerminal > 0.0 &&
                   c.powerPerTerminal > spec.maxPowerPerTerminal) {
            c.pruned = true;
            c.pruneReason = "power-budget";
        }
    }
    // 3: buffer budget.  Variants of one (topology, slicing) differ
    // only in buffer organization, invisible to the analytic model;
    // keep the one closest to the paper's ~32 flits/port budget
    // (numVcs * vcDepth), prune the rest before simulation.
    std::map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i].pruned)
            continue;
        groups[out[i].topoSpec + "|" + out[i].routing + "|" +
               std::to_string(out[i].channelPeriod)]
            .push_back(i);
    }
    for (const auto &[key, idxs] : groups) {
        (void)key;
        std::size_t best = idxs.front();
        auto deviation = [&](std::size_t i) {
            return std::abs(out[i].numVcs * out[i].vcDepth - 32);
        };
        for (const std::size_t i : idxs) {
            if (deviation(i) < deviation(best) ||
                (deviation(i) == deviation(best) &&
                 out[i].vcDepth > out[best].vcDepth))
                best = i;
        }
        for (const std::size_t i : idxs) {
            if (i != best) {
                out[i].pruned = true;
                out[i].pruneReason = "buffer-budget";
            }
        }
    }
    // 4: intra-family dominance on (cost/terminal, power/terminal,
    // throughput bound, avg minimal hops).  Deliberately *within* a
    // family only — ranking across families from analytic bounds is
    // exactly what the measured frontier exists to do.
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i].pruned)
            continue;
        for (std::size_t j = 0; j < out.size(); ++j) {
            if (i == j || out[j].pruned ||
                out[j].family != out[i].family)
                continue;
            if (dominates(out[j], out[i])) {
                out[i].pruned = true;
                out[i].pruneReason = "dominated";
                break;
            }
        }
    }
    return out;
}

DesignSearchResult
runDesignSearch(const DesignSpec &spec, const SweepConfig &sweep_cfg)
{
    DesignSearchResult res;
    res.candidates = enumerateDesignCandidates(spec);

    std::vector<std::size_t> survivors;
    for (std::size_t i = 0; i < res.candidates.size(); ++i) {
        if (!res.candidates[i].pruned)
            survivors.push_back(i);
    }

    // The engine holds references into these; the vector may
    // reallocate but the pointed-to objects stay put.
    struct SweptCandidate
    {
        NetworkBundle bundle;
        std::unique_ptr<TrafficPattern> traffic;
    };
    std::vector<SweptCandidate> swept;
    swept.reserve(survivors.size());

    SweepEngine engine(sweep_cfg);
    for (const std::size_t si : survivors) {
        const DesignCandidate &cand = res.candidates[si];
        SweptCandidate sc;
        sc.bundle = makeNetworkBundle(cand.topoSpec, cand.routing);
        sc.traffic = std::make_unique<UniformRandom>(
            sc.bundle.topology->numNodes());
        swept.push_back(std::move(sc));
        const SweptCandidate &ref = swept.back();

        NetworkConfig netcfg;
        netcfg.vcDepth = cand.vcDepth;
        netcfg.channelPeriod = cand.channelPeriod;
        netcfg.shards = spec.shards;
        const std::string series =
            std::string("design ") + toString(cand.family) + " " +
            cand.topoSpec + "/" + cand.routing + " cp" +
            std::to_string(cand.channelPeriod) + " vd" +
            std::to_string(cand.vcDepth);
        for (const double load : spec.loads) {
            engine.addLoadPoint(series, *ref.bundle.topology,
                                *ref.bundle.routing, *ref.traffic,
                                netcfg, spec.expcfg, load);
        }
    }
    engine.run();

    const auto &records = engine.records();
    std::size_t rec = 0;
    for (const std::size_t si : survivors) {
        DesignPoint pt;
        pt.candidate = si;
        for (std::size_t l = 0; l < spec.loads.size(); ++l)
            pt.loads.push_back(records[rec++].load);
        // Saturation throughput: accepted rate at the highest
        // offered load whose window completed.
        for (auto it = pt.loads.rbegin(); it != pt.loads.rend();
             ++it) {
            if (it->valid()) {
                pt.satThroughput = it->accepted;
                break;
            }
        }
        if (!pt.loads.empty() && pt.loads.front().latencyValid())
            pt.lowLoadLatency = pt.loads.front().avgLatency;
        res.points.push_back(std::move(pt));
    }

    // Pareto frontier over (cost/terminal down, saturation
    // throughput up): sort by cost, keep every point that beats the
    // best throughput seen so far.
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < res.points.size(); ++i) {
        if (std::isfinite(res.points[i].satThroughput))
            order.push_back(i);
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  const DesignCandidate &ca =
                      res.candidates[res.points[a].candidate];
                  const DesignCandidate &cb =
                      res.candidates[res.points[b].candidate];
                  if (ca.costPerTerminal != cb.costPerTerminal)
                      return ca.costPerTerminal < cb.costPerTerminal;
                  if (res.points[a].satThroughput !=
                      res.points[b].satThroughput)
                      return res.points[a].satThroughput >
                             res.points[b].satThroughput;
                  return res.points[a].candidate <
                         res.points[b].candidate;
              });
    double best = -1.0;
    for (const std::size_t i : order) {
        if (res.points[i].satThroughput > best) {
            best = res.points[i].satThroughput;
            res.points[i].onFrontier = true;
            res.frontier.push_back(i);
        }
    }
    return res;
}

namespace
{

void
writeCandidateJson(std::ostringstream &os, const DesignCandidate &c,
                   std::size_t index)
{
    os << "    {\"index\": " << index << ", \"family\": \""
       << toString(c.family) << "\", \"topology\": ";
    jsonAppendString(os, c.topoSpec);
    os << ", \"routing\": ";
    jsonAppendString(os, c.routing);
    os << ", \"channel_period\": " << c.channelPeriod
       << ", \"vc_depth\": " << c.vcDepth
       << ", \"num_vcs\": " << c.numVcs
       << ", \"terminals\": " << c.terminals
       << ", \"routers\": " << c.routers
       << ", \"radix\": " << c.radix
       << ", \"diameter\": " << c.diameter
       << ", \"avg_min_hops\": ";
    jsonAppendNumber(os, c.avgMinHops);
    os << ", \"channels\": " << c.channels
       << ", \"bisection_arcs\": " << c.bisectionArcs
       << ", \"throughput_bound\": ";
    jsonAppendNumber(os, c.throughputBound);
    os << ", \"cost_dollars\": ";
    jsonAppendNumber(os, c.costDollars);
    os << ", \"power_watts\": ";
    jsonAppendNumber(os, c.powerWatts);
    os << ", \"cost_per_terminal\": ";
    jsonAppendNumber(os, c.costPerTerminal);
    os << ", \"power_per_terminal\": ";
    jsonAppendNumber(os, c.powerPerTerminal);
    os << ", \"pruned\": " << (c.pruned ? "true" : "false")
       << ", \"prune_reason\": ";
    if (c.pruned)
        jsonAppendString(os, c.pruneReason);
    else
        os << "null";
    os << "}";
}

void
writePointJson(std::ostringstream &os, const DesignPoint &pt)
{
    os << "    {\"candidate\": " << pt.candidate << ", \"loads\": [";
    for (std::size_t i = 0; i < pt.loads.size(); ++i) {
        const LoadPointResult &r = pt.loads[i];
        if (i > 0)
            os << ", ";
        os << "{\"offered\": ";
        jsonAppendNumber(os, r.offered);
        os << ", \"accepted\": ";
        jsonAppendNumber(os, r.accepted);
        os << ", \"avg_latency\": ";
        jsonAppendNumber(os, r.avgLatency);
        os << ", \"avg_network_latency\": ";
        jsonAppendNumber(os, r.avgNetworkLatency);
        os << ", \"avg_hops\": ";
        jsonAppendNumber(os, r.avgHops);
        os << ", \"p99_latency\": ";
        jsonAppendNumber(os, r.p99Latency);
        os << ", \"status\": \"" << toString(r.status)
           << "\", \"valid\": " << (r.valid() ? "true" : "false")
           << ", \"measured_packets\": " << r.measuredPackets << "}";
    }
    os << "], \"saturation_throughput\": ";
    jsonAppendNumber(os, pt.satThroughput);
    os << ", \"low_load_latency\": ";
    jsonAppendNumber(os, pt.lowLoadLatency);
    os << ", \"on_frontier\": " << (pt.onFrontier ? "true" : "false")
       << "}";
}

} // namespace

std::string
designSearchToJson(const DesignSpec &spec,
                   const DesignSearchResult &result,
                   std::uint64_t master_seed, const std::string &bench)
{
    // Bit-identity contract: nothing in this document may depend on
    // wall clock, thread count or shard count.
    std::ostringstream os;
    os << "{\n  \"schema\": \"" << kParetoJsonSchema << "\",\n";
    os << "  \"bench\": ";
    jsonAppendString(os, bench);
    os << ",\n  \"git\": ";
    jsonAppendString(os, gitDescribe());
    os << ",\n  \"seed\": " << master_seed;
    os << ",\n  \"spec\": {\"min_terminals\": " << spec.minTerminals
       << ", \"max_terminal_factor\": ";
    jsonAppendNumber(os, spec.maxTerminalFactor);
    os << ", \"max_cost_per_terminal\": ";
    jsonAppendNumber(os, spec.maxCostPerTerminal);
    os << ", \"max_power_per_terminal\": ";
    jsonAppendNumber(os, spec.maxPowerPerTerminal);
    os << ", \"loads\": [";
    for (std::size_t i = 0; i < spec.loads.size(); ++i) {
        if (i > 0)
            os << ", ";
        jsonAppendNumber(os, spec.loads[i]);
    }
    os << "], \"warmup_cycles\": " << spec.expcfg.warmupCycles
       << ", \"measure_cycles\": " << spec.expcfg.measureCycles
       << ", \"drain_cycles\": " << spec.expcfg.drainCycles << "}";

    std::size_t pruned = 0;
    for (const auto &c : result.candidates)
        pruned += c.pruned ? 1 : 0;
    // Families actually swept, sorted unique (the map is ordered).
    std::map<std::string, int> families;
    for (const auto &c : result.candidates) {
        if (!c.pruned)
            ++families[toString(c.family)];
    }
    std::string family_list;
    for (const auto &[name, count] : families) {
        (void)count;
        if (!family_list.empty())
            family_list += ",";
        family_list += name;
    }
    os << ",\n  \"metadata\": {\"candidates_enumerated\": "
       << result.candidates.size() << ", \"candidates_pruned\": "
       << pruned << ", \"survivors_swept\": " << result.points.size()
       << ", \"frontier_size\": " << result.frontier.size()
       << ", \"families\": ";
    jsonAppendString(os, family_list);
    os << "}";

    os << ",\n  \"candidates\": [\n";
    for (std::size_t i = 0; i < result.candidates.size(); ++i) {
        writeCandidateJson(os, result.candidates[i], i);
        os << (i + 1 < result.candidates.size() ? ",\n" : "\n");
    }
    os << "  ],\n  \"points\": [\n";
    for (std::size_t i = 0; i < result.points.size(); ++i) {
        writePointJson(os, result.points[i]);
        os << (i + 1 < result.points.size() ? ",\n" : "\n");
    }
    os << "  ],\n  \"frontier\": [\n";
    for (std::size_t i = 0; i < result.frontier.size(); ++i) {
        const DesignPoint &pt = result.points[result.frontier[i]];
        const DesignCandidate &c = result.candidates[pt.candidate];
        os << "    {\"candidate\": " << pt.candidate
           << ", \"family\": \"" << toString(c.family)
           << "\", \"topology\": ";
        jsonAppendString(os, c.topoSpec);
        os << ", \"cost_per_terminal\": ";
        jsonAppendNumber(os, c.costPerTerminal);
        os << ", \"power_per_terminal\": ";
        jsonAppendNumber(os, c.powerPerTerminal);
        os << ", \"saturation_throughput\": ";
        jsonAppendNumber(os, pt.satThroughput);
        os << ", \"low_load_latency\": ";
        jsonAppendNumber(os, pt.lowLoadLatency);
        os << "}";
        os << (i + 1 < result.frontier.size() ? ",\n" : "\n");
    }
    os << "  ]\n}";
    return os.str();
}

bool
writeDesignSearch(const std::string &path, const DesignSpec &spec,
                  const DesignSearchResult &result,
                  std::uint64_t master_seed, const std::string &bench)
{
    std::ofstream out(path);
    if (!out) {
        FBFLY_WARN("cannot open '", path,
                   "' for design-search JSON output");
        return false;
    }
    out << designSearchToJson(spec, result, master_seed, bench)
        << "\n";
    out.flush();
    if (!out) {
        FBFLY_WARN("short write of design-search JSON to '", path,
                   "'");
        return false;
    }
    return true;
}

} // namespace fbfly
