#include "harness/experiment.h"

#include "common/log.h"
#include "routing/routing.h"
#include "topology/topology.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{

const char *
toString(LoadPointStatus s)
{
    switch (s) {
    case LoadPointStatus::kDelivered:
        return "delivered";
    case LoadPointStatus::kSaturated:
        return "saturated";
    case LoadPointStatus::kUnreachable:
        return "unreachable";
    case LoadPointStatus::kStalled:
        return "stalled";
    case LoadPointStatus::kInvalidConfig:
        return "invalid-config";
    }
    return "?";
}

LoadPointResult
runLoadPoint(const Topology &topo, RoutingAlgorithm &algo,
             const TrafficPattern &pattern, NetworkConfig netcfg,
             const ExperimentConfig &expcfg, double offered)
{
    netcfg.numVcs = algo.numVcs();
    netcfg.seed = expcfg.seed;

    LoadPointResult res;
    res.offered = offered;

    // Pre-flight: refuse to run configurations that would corrupt or
    // hang the simulation.
    const ValidationReport rep = Network::validate(topo, algo, netcfg);
    if (!rep.ok()) {
        res.status = LoadPointStatus::kInvalidConfig;
        res.diagnostics = rep.summary();
        return res;
    }

    // The oracle outlives the network (the network holds a pointer).
    DeliveryOracle oracle;
    if (expcfg.verifyDelivery)
        netcfg.oracle = &oracle;

    Network net(topo, algo, &pattern, netcfg);
    BernoulliInjection inj(offered, netcfg.packetSize,
                           expcfg.seed ^ 0x496e6a65637431ULL);

    // Copy the counters and whatever statistics are backed by real
    // observations into res; fields with no observation keep their
    // NaN default (LoadPointResult's validity convention).
    const auto fillObserved = [&](bool drained) {
        const NetworkStats &st = net.stats();
        res.measuredPackets = st.measuredEjected;
        res.measuredDropped = st.measuredDropped;
        res.flitsDropped = st.flitsDropped;
        res.link = net.linkStats();
        if (res.link.attempts > 0) {
            res.retransmitRate =
                static_cast<double>(res.link.retransmits) /
                static_cast<double>(res.link.attempts);
        }
        if (expcfg.verifyDelivery) {
            res.delivery =
                oracle.report(st.measuredDropped, drained,
                              algo.preservesFlowOrder());
            res.deliveryChecked = true;
            if (!res.delivery.clean()) {
                FBFLY_WARN("end-to-end delivery violation at "
                           "offered=", offered, ": ",
                           res.delivery.summary());
            }
        }
        if (st.measuredEjected > 0) {
            res.avgLatency = st.packetLatency.mean();
            res.avgNetworkLatency = st.networkLatency.mean();
            res.avgHops = st.hops.mean();
        }
        if (st.latencyHist.count() > 0) {
            res.p99Latency = static_cast<double>(
                st.latencyHist.percentile(0.99));
        }
    };

    // measure_complete: the measurement window closed, so accepted
    // throughput is known even though the run then wedged.
    const auto stalledOut = [&](bool measure_complete,
                                std::uint64_t ej0, std::uint64_t ej1) {
        res.status = LoadPointStatus::kStalled;
        res.diagnostics = net.stallDump();
        res.saturated = true; // no labeled packet will ever leave
        fillObserved(false);
        if (measure_complete) {
            res.accepted =
                static_cast<double>(ej1 - ej0) /
                (static_cast<double>(net.numNodes()) *
                 expcfg.measureCycles);
        }
        return res;
    };

    // Warm up under load without labeling.
    for (int c = 0; c < expcfg.warmupCycles; ++c) {
        inj.tick(net, false);
        net.step();
        if (net.stalled())
            return stalledOut(false, 0, 0);
    }

    // Label packets created during the measurement interval, and
    // count all ejected flits in the window for accepted throughput.
    const std::uint64_t ejected0 = net.stats().flitsEjected;
    for (int c = 0; c < expcfg.measureCycles; ++c) {
        inj.tick(net, true);
        net.step();
        if (net.stalled())
            return stalledOut(false, 0, 0);
    }
    const std::uint64_t ejected1 = net.stats().flitsEjected;

    // Run until every labeled packet has left the system (delivered
    // or dropped as unreachable), continuing to inject background
    // traffic so the network state persists.
    bool saturated = false;
    for (int drained = 0;
         net.stats().measuredEjected + net.stats().measuredDropped <
         net.stats().measuredCreated;
         ++drained) {
        if (drained >= expcfg.drainCycles) {
            saturated = true;
            break;
        }
        inj.tick(net, false);
        net.step();
        if (net.stalled())
            return stalledOut(true, ejected0, ejected1);
    }

    fillObserved(!saturated);
    res.accepted = static_cast<double>(ejected1 - ejected0) /
                   (static_cast<double>(net.numNodes()) *
                    expcfg.measureCycles);
    res.saturated = saturated;
    if (saturated)
        res.status = LoadPointStatus::kSaturated;
    else if (net.stats().measuredDropped > 0)
        res.status = LoadPointStatus::kUnreachable;
    else
        res.status = LoadPointStatus::kDelivered;
    return res;
}

std::vector<LoadPointResult>
runLoadSweep(const Topology &topo, RoutingAlgorithm &algo,
             const TrafficPattern &pattern, NetworkConfig netcfg,
             const ExperimentConfig &expcfg,
             const std::vector<double> &loads)
{
    std::vector<LoadPointResult> out;
    out.reserve(loads.size());
    for (const double load : loads) {
        out.push_back(runLoadPoint(topo, algo, pattern, netcfg,
                                   expcfg, load));
    }
    return out;
}

double
measureSaturationThroughput(const Topology &topo,
                            RoutingAlgorithm &algo,
                            const TrafficPattern &pattern,
                            NetworkConfig netcfg,
                            const ExperimentConfig &expcfg)
{
    return runLoadPoint(topo, algo, pattern, netcfg, expcfg, 1.0)
        .accepted;
}

BatchResult
runBatch(const Topology &topo, RoutingAlgorithm &algo,
         const TrafficPattern &pattern, NetworkConfig netcfg,
         std::uint64_t seed, int batch_size, Cycle max_cycles)
{
    netcfg.numVcs = algo.numVcs();
    netcfg.seed = seed;
    Network net(topo, algo, &pattern, netcfg);

    loadBatch(net, batch_size, true);
    while (!net.quiescent()) {
        FBFLY_ASSERT(net.now() < max_cycles,
                     "batch run exceeded ", max_cycles,
                     " cycles (livelock or saturation bug?)");
        net.step();
    }

    BatchResult res;
    res.batchSize = batch_size;
    res.completionTime = net.now();
    res.normalizedLatency =
        static_cast<double>(net.now()) / batch_size;
    return res;
}

} // namespace fbfly
