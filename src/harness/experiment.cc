#include "harness/experiment.h"

#include <optional>

#include "common/log.h"
#include "obs/obs_sampler.h"
#include "routing/routing.h"
#include "sim/stats.h"
#include "topology/topology.h"
#include "traffic/injection.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{

const char *
toString(LoadPointStatus s)
{
    switch (s) {
    case LoadPointStatus::kDelivered:
        return "delivered";
    case LoadPointStatus::kSaturated:
        return "saturated";
    case LoadPointStatus::kUnreachable:
        return "unreachable";
    case LoadPointStatus::kStalled:
        return "stalled";
    case LoadPointStatus::kInvalidConfig:
        return "invalid-config";
    case LoadPointStatus::kDeadlockRecovered:
        return "deadlock-recovered";
    }
    return "?";
}

LoadPointResult
runLoadPoint(const Topology &topo, RoutingAlgorithm &algo,
             const TrafficPattern &pattern, NetworkConfig netcfg,
             const ExperimentConfig &expcfg, double offered)
{
    netcfg.numVcs = algo.numVcs();
    netcfg.seed = expcfg.seed;

    LoadPointResult res;
    res.offered = offered;

    // Pre-flight: refuse to run configurations that would corrupt or
    // hang the simulation.
    const ValidationReport rep = Network::validate(topo, algo, netcfg);
    if (!rep.ok()) {
        res.status = LoadPointStatus::kInvalidConfig;
        res.diagnostics = rep.summary();
        return res;
    }

    // The oracle outlives the network (the network holds a pointer).
    DeliveryOracle oracle;
    if (expcfg.verifyDelivery)
        netcfg.oracle = &oracle;

    // Per-run observability state (docs/OBSERVABILITY.md): the sink
    // and registry belong to this run alone, so sweep results are
    // identical for any thread count.
    std::shared_ptr<TraceSink> sink;
    if (expcfg.obs.traceEnabled) {
        sink = std::make_shared<TraceSink>(expcfg.obs.traceCapacity);
        sink->setLevel(expcfg.obs.traceLevel);
        netcfg.trace = sink.get();
    }

    Network net(topo, algo, &pattern, netcfg);

    std::shared_ptr<MetricsRegistry> metrics;
    std::optional<ObsSampler> sampler;
    if (expcfg.obs.metricsEnabled) {
        metrics = std::make_shared<MetricsRegistry>();
        sampler.emplace(net, *metrics,
                        expcfg.obs.metricsWindowCycles);
    }
    const auto obsTick = [&sampler] {
        if (sampler.has_value())
            sampler->tick();
    };

    BernoulliInjection inj(offered, netcfg.packetSize,
                           expcfg.seed ^ 0x496e6a65637431ULL);

    // Liveness bookkeeping: every diagnosis made and every recovery
    // applied during this run (sim/liveness.h).
    std::vector<StallDiagnosis> diags;
    std::vector<RecoveryReport> recs;

    // Copy the counters and whatever statistics are backed by real
    // observations into res; fields with no observation keep their
    // NaN default (LoadPointResult's validity convention).
    const auto fillObserved = [&](bool drained) {
        const NetworkStats &st = net.stats();
        res.measuredPackets = st.measuredEjected;
        res.measuredDropped = st.measuredDropped;
        res.flitsDropped = st.flitsDropped;
        res.link = net.linkStats();
        if (res.link.attempts > 0) {
            res.retransmitRate =
                static_cast<double>(res.link.retransmits) /
                static_cast<double>(res.link.attempts);
        }
        if (expcfg.verifyDelivery) {
            res.delivery =
                oracle.report(st.measuredDropped, drained,
                              algo.preservesFlowOrder());
            res.deliveryChecked = true;
            if (!res.delivery.clean()) {
                FBFLY_WARN("end-to-end delivery violation at "
                           "offered=", offered, ": ",
                           res.delivery.summary());
            }
        }
        if (st.measuredEjected > 0) {
            res.avgLatency = st.packetLatency.mean();
            res.avgNetworkLatency = st.networkLatency.mean();
            res.avgHops = st.hops.mean();
        }
        if (st.latencyHist.count() > 0) {
            res.p99Latency = static_cast<double>(
                st.latencyHist.percentile(0.99));
        }

        // Observability: close the sampling window and publish the
        // registry.  Counters first, then gauges — insertion order is
        // the JSON order and the determinism-comparison order.
        if (sampler.has_value())
            sampler->finish();
        if (metrics != nullptr) {
            MetricsRegistry &m = *metrics;
            m.setCounter("net.flits_injected", st.flitsInjected);
            m.setCounter("net.flits_ejected", st.flitsEjected);
            m.setCounter("net.hops_ejected", st.hopsEjected);
            m.setCounter("net.packets_ejected", st.packetsEjected);
            m.setCounter("net.measured_created", st.measuredCreated);
            m.setCounter("net.measured_ejected", st.measuredEjected);
            m.setCounter("net.flits_dropped", st.flitsDropped);
            m.setCounter("link.attempts", res.link.attempts);
            m.setCounter("link.retransmits", res.link.retransmits);
            m.setCounter("link.crc_rejected", res.link.crcRejected);
            m.setCounter("link.nacks_sent", res.link.nacksSent);
            m.setCounter("link.timeouts", res.link.timeouts);
            if (sink != nullptr) {
                m.setCounter("trace.recorded", sink->recorded());
                m.setCounter("trace.dropped",
                             sink->droppedRecords());
                for (int t = 0; t < kNumTraceEventTypes; ++t) {
                    const auto type = static_cast<TraceEventType>(t);
                    m.setCounter(std::string("trace.") +
                                     toString(type),
                                 sink->count(type));
                }
            }
            const DistSummary lat =
                summarize(st.packetLatency, st.latencyHist);
            m.setCounter("latency.count", lat.count);
            m.setGauge("latency.mean", lat.mean);
            m.setGauge("latency.stddev", lat.stddev);
            m.setGauge("latency.min", lat.min);
            m.setGauge("latency.max", lat.max);
            m.setGauge("latency.p50", lat.p50);
            m.setGauge("latency.p99", lat.p99);
            m.setGauge("network_latency.mean",
                       st.measuredEjected > 0
                           ? st.networkLatency.mean()
                           : LoadPointResult::kUnknown);
            m.setGauge("hops.mean", st.measuredEjected > 0
                                        ? st.hops.mean()
                                        : LoadPointResult::kUnknown);
        }
        res.recoveries = static_cast<int>(recs.size());
        if (!diags.empty())
            res.liveness =
                livenessJson(expcfg.liveness, diags, recs);
        res.trace = sink;
        res.metrics = metrics;
    };

    // measure_complete: the measurement window closed, so accepted
    // throughput is known even though the run then wedged.
    const auto stalledOut = [&](bool measure_complete,
                                std::uint64_t ej0, std::uint64_t ej1) {
        res.status = LoadPointStatus::kStalled;
        res.diagnostics = net.stallDump();
        if (!diags.empty())
            res.diagnostics += "\n" + diags.back().summary();
        res.saturated = true; // no labeled packet will ever leave
        fillObserved(false);
        if (measure_complete) {
            res.accepted =
                static_cast<double>(ej1 - ej0) /
                (static_cast<double>(net.numNodes()) *
                 expcfg.measureCycles);
        }
        return res;
    };

    // Stall handling after each step.  Returns kContinue when nothing
    // is wrong (or a recovery unblocked the network) and kAbort when
    // the run must end as kStalled.
    enum class LivenessOutcome
    {
        kContinue,
        kAbort,
    };
    const auto livenessTick = [&]() -> LivenessOutcome {
        const LivenessConfig &lcfg = expcfg.liveness;
        const bool fired = net.stalled();
        // Optional early sampling: diagnose before the watchdog
        // horizon, but only *act* on a definite cyclic deadlock (a
        // slow network is not a stalled one).
        bool sampled = false;
        if (!fired) {
            if (lcfg.samplePeriod == 0 || net.quiescent())
                return LivenessOutcome::kContinue;
            const Cycle idle = net.now() - net.lastProgressCycle();
            if (idle == 0 || idle % lcfg.samplePeriod != 0)
                return LivenessOutcome::kContinue;
            sampled = true;
        }
        StallDiagnosis diag = analyzeStall(net);
        if (sampled && diag.cls != StallClass::kDeadlock)
            return LivenessOutcome::kContinue;
        diags.push_back(std::move(diag));
        if (lcfg.policy == RecoveryPolicy::kAbort ||
            static_cast<int>(recs.size()) >= lcfg.maxRecoveries)
            return LivenessOutcome::kAbort;
        const RecoveryReport rep =
            applyRecovery(net, diags.back(), lcfg.policy);
        recs.push_back(rep);
        // A kernel-bug recovery "acts" by re-waking everything in
        // restartAfterRecovery(); anything else that neither killed
        // a victim nor re-decided a route cannot have unblocked the
        // network, so give up rather than spin until maxRecoveries.
        if (!rep.acted() &&
            diags.back().cls != StallClass::kKernelBug)
            return LivenessOutcome::kAbort;
        return LivenessOutcome::kContinue;
    };

    // Warm up under load without labeling.
    for (int c = 0; c < expcfg.warmupCycles; ++c) {
        inj.tick(net, false);
        net.step();
        obsTick();
        if (livenessTick() == LivenessOutcome::kAbort)
            return stalledOut(false, 0, 0);
    }

    // Label packets created during the measurement interval, and
    // count all ejected flits in the window for accepted throughput.
    const std::uint64_t ejected0 = net.stats().flitsEjected;
    for (int c = 0; c < expcfg.measureCycles; ++c) {
        inj.tick(net, true);
        net.step();
        obsTick();
        if (livenessTick() == LivenessOutcome::kAbort)
            return stalledOut(false, 0, 0);
    }
    const std::uint64_t ejected1 = net.stats().flitsEjected;

    // Run until every labeled packet has left the system (delivered
    // or dropped as unreachable), continuing to inject background
    // traffic so the network state persists.
    bool saturated = false;
    for (int drained = 0;
         net.stats().measuredEjected + net.stats().measuredDropped <
         net.stats().measuredCreated;
         ++drained) {
        if (drained >= expcfg.drainCycles) {
            saturated = true;
            break;
        }
        inj.tick(net, false);
        net.step();
        obsTick();
        if (livenessTick() == LivenessOutcome::kAbort)
            return stalledOut(true, ejected0, ejected1);
    }

    fillObserved(!saturated);
    res.accepted = static_cast<double>(ejected1 - ejected0) /
                   (static_cast<double>(net.numNodes()) *
                    expcfg.measureCycles);
    res.saturated = saturated;
    if (saturated)
        res.status = LoadPointStatus::kSaturated;
    else if (!recs.empty())
        // Recovery unblocked the run and it completed; this takes
        // precedence over kUnreachable, which the killed victims'
        // measuredDropped would otherwise trigger.
        res.status = LoadPointStatus::kDeadlockRecovered;
    else if (net.stats().measuredDropped > 0)
        res.status = LoadPointStatus::kUnreachable;
    else
        res.status = LoadPointStatus::kDelivered;
    return res;
}

std::vector<LoadPointResult>
runLoadSweep(const Topology &topo, RoutingAlgorithm &algo,
             const TrafficPattern &pattern, NetworkConfig netcfg,
             const ExperimentConfig &expcfg,
             const std::vector<double> &loads)
{
    std::vector<LoadPointResult> out;
    out.reserve(loads.size());
    for (const double load : loads) {
        out.push_back(runLoadPoint(topo, algo, pattern, netcfg,
                                   expcfg, load));
    }
    return out;
}

double
measureSaturationThroughput(const Topology &topo,
                            RoutingAlgorithm &algo,
                            const TrafficPattern &pattern,
                            NetworkConfig netcfg,
                            const ExperimentConfig &expcfg)
{
    return runLoadPoint(topo, algo, pattern, netcfg, expcfg, 1.0)
        .accepted;
}

BatchResult
runBatch(const Topology &topo, RoutingAlgorithm &algo,
         const TrafficPattern &pattern, NetworkConfig netcfg,
         std::uint64_t seed, int batch_size, Cycle max_cycles)
{
    netcfg.numVcs = algo.numVcs();
    netcfg.seed = seed;
    Network net(topo, algo, &pattern, netcfg);

    loadBatch(net, batch_size, true);
    while (!net.quiescent()) {
        FBFLY_ASSERT(net.now() < max_cycles,
                     "batch run exceeded ", max_cycles,
                     " cycles (livelock or saturation bug?)");
        net.step();
    }

    BatchResult res;
    res.batchSize = batch_size;
    res.completionTime = net.now();
    res.normalizedLatency =
        static_cast<double>(net.now()) / batch_size;
    return res;
}

} // namespace fbfly
