/**
 * @file
 * Wire-delay model (paper Section 5.2).
 *
 * Channel latency (time of flight) depends on the physical length of
 * each cable, not on the hop count.  This module derives per-arc
 * channel latencies from the Section 4.2 packaging model so the
 * simulator can compare topologies with realistic wire delays:
 * the flattened butterfly packages like a direct network with
 * minimal Manhattan distance, while a folded Clos detours through a
 * central router cabinet and pays ~2x global wire delay on local
 * (worst-case-pattern) traffic.
 */

#ifndef FBFLY_HARNESS_WIRE_DELAY_H
#define FBFLY_HARNESS_WIRE_DELAY_H

#include <vector>

#include "common/types.h"
#include "cost/packaging.h"

namespace fbfly
{

class FlattenedButterfly;
class FoldedClos;

/**
 * Converts cable lengths into channel latencies.
 */
struct WireDelayModel
{
    /** Signal propagation distance per router cycle: ~0.2 m/ns in
     *  copper at a 1.25 ns cycle (Cray BlackWidow-class 800 MHz). */
    double metersPerCycle = 0.25;
    /** Floor for any channel (router-to-router pipelining). */
    Cycle minLatency = 1;

    /** Latency of a cable of @p meters. */
    Cycle latencyForLength(double meters) const;
};

/**
 * Per-arc latencies for a flattened butterfly, indexed like
 * FlattenedButterfly::arcs().  Dimension-d cables use the packaging
 * model's per-dimension lengths plus vertical overhead.
 */
std::vector<Cycle> fbflyArcLatencies(const FlattenedButterfly &topo,
                                     const PackagingModel &pkg,
                                     const WireDelayModel &wire);

/**
 * Per-arc latencies for a two-level folded Clos: every up/down cable
 * runs to the central router cabinet (average E/4 plus overhead).
 */
std::vector<Cycle> foldedClosArcLatencies(const FoldedClos &topo,
                                          const PackagingModel &pkg,
                                          const WireDelayModel &wire);

} // namespace fbfly

#endif // FBFLY_HARNESS_WIRE_DELAY_H
