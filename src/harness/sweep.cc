#include "harness/sweep.h"

#include <chrono>
#include <utility>

#include "common/log.h"
#include "routing/routing.h"
#include "topology/topology.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{

std::uint64_t
derivePointSeed(std::uint64_t master_seed, std::uint64_t point_index)
{
    // splitmix64 (Steele, Lea & Flood): advance the state by the
    // point index scaled with the golden-gamma increment, then apply
    // the finalizer.  Bijective in the state, full avalanche — a
    // one-bit change of either argument flips about half the output.
    std::uint64_t z =
        master_seed + (point_index + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

int
ThreadPool::resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int num_threads)
{
    const int n = resolveThreads(num_threads);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        workers_.emplace_back([this](const std::stop_token &stop) {
            workerLoop(stop);
        });
    }
}

ThreadPool::~ThreadPool()
{
    // Drain what was submitted, then stop the workers.  jthread's
    // destructor requests stop and joins; waking the sleepers is all
    // that is left to do.
    try {
        wait();
    } catch (...) {
        // Destruction must not throw; wait() already cleared the
        // exception slot.
    }
    for (auto &w : workers_)
        w.request_stop();
    workCv_.notify_all();
}

void
ThreadPool::submit(std::function<void()> job)
{
    FBFLY_ASSERT(job != nullptr, "null job submitted to ThreadPool");
    {
        const std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(job));
    }
    workCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idleCv_.wait(lock,
                 [this] { return queue_.empty() && active_ == 0; });
    if (firstError_) {
        std::exception_ptr err = std::exchange(firstError_, nullptr);
        lock.unlock();
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop(const std::stop_token &stop)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        workCv_.wait(lock, stop,
                     [this] { return !queue_.empty(); });
        if (queue_.empty()) {
            // Only reachable on stop with a drained queue.
            return;
        }
        std::function<void()> job = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
        lock.unlock();
        try {
            job();
        } catch (...) {
            const std::lock_guard<std::mutex> relock(mu_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        lock.lock();
        --active_;
        if (queue_.empty() && active_ == 0)
            idleCv_.notify_all();
    }
}

// ---------------------------------------------------------------------
// SweepEngine
// ---------------------------------------------------------------------

SweepEngine::SweepEngine(SweepConfig cfg)
    : cfg_(cfg), threads_(ThreadPool::resolveThreads(cfg.threads))
{
}

std::size_t
SweepEngine::reserveRecord(const std::string &series,
                           SweepPointKind kind, const Topology &topo,
                           const RoutingAlgorithm &algo,
                           const TrafficPattern &pattern)
{
    const std::size_t index = records_.size();
    SweepPointRecord rec;
    rec.index = index;
    rec.kind = kind;
    rec.series = series;
    rec.topology = topo.name();
    rec.routing = algo.name();
    rec.traffic = pattern.name();
    rec.seed = derivePointSeed(cfg_.masterSeed,
                               static_cast<std::uint64_t>(index));
    records_.push_back(std::move(rec));
    return index;
}

std::size_t
SweepEngine::addLoadPoint(const std::string &series,
                          const Topology &topo,
                          RoutingAlgorithm &algo,
                          const TrafficPattern &pattern,
                          const NetworkConfig &netcfg,
                          const ExperimentConfig &expcfg,
                          double offered)
{
    FBFLY_ASSERT(!ran_, "SweepEngine::addLoadPoint after run()");
    const std::size_t index = reserveRecord(
        series, SweepPointKind::kLoadPoint, topo, algo, pattern);
    jobs_.push_back([&topo, &algo, &pattern, netcfg, expcfg,
                     offered](SweepPointRecord &rec) {
        ExperimentConfig pointcfg = expcfg;
        pointcfg.seed = rec.seed;
        rec.load = runLoadPoint(topo, algo, pattern, netcfg,
                                pointcfg, offered);
    });
    return index;
}

void
SweepEngine::addLoadSweep(const std::string &series,
                          const Topology &topo,
                          RoutingAlgorithm &algo,
                          const TrafficPattern &pattern,
                          const NetworkConfig &netcfg,
                          const ExperimentConfig &expcfg,
                          const std::vector<double> &loads)
{
    for (const double load : loads) {
        addLoadPoint(series, topo, algo, pattern, netcfg, expcfg,
                     load);
    }
}

std::size_t
SweepEngine::addBatch(const std::string &series, const Topology &topo,
                      RoutingAlgorithm &algo,
                      const TrafficPattern &pattern,
                      const NetworkConfig &netcfg, int batch_size,
                      Cycle max_cycles)
{
    FBFLY_ASSERT(!ran_, "SweepEngine::addBatch after run()");
    const std::size_t index = reserveRecord(
        series, SweepPointKind::kBatch, topo, algo, pattern);
    jobs_.push_back([&topo, &algo, &pattern, netcfg, batch_size,
                     max_cycles](SweepPointRecord &rec) {
        rec.batch = runBatch(topo, algo, pattern, netcfg, rec.seed,
                             batch_size, max_cycles);
    });
    return index;
}

const std::vector<SweepPointRecord> &
SweepEngine::run()
{
    FBFLY_ASSERT(!ran_, "SweepEngine::run() called twice");
    ran_ = true;

    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    {
        ThreadPool pool(threads_);
        for (std::size_t i = 0; i < jobs_.size(); ++i) {
            // Each job owns exactly records_[i]; the vector is fully
            // sized before any worker starts, so concurrent writes
            // touch disjoint elements.
            SweepPointRecord &rec = records_[i];
            Job &job = jobs_[i];
            pool.submit([&rec, &job] {
                const auto p0 = Clock::now();
                job(rec);
                rec.wallSeconds =
                    std::chrono::duration<double>(Clock::now() - p0)
                        .count();
            });
        }
        pool.wait();
    }
    totalWall_ =
        std::chrono::duration<double>(Clock::now() - t0).count();
    jobs_.clear();
    return records_;
}

double
SweepEngine::pointWallSecondsSum() const
{
    double sum = 0.0;
    for (const auto &rec : records_)
        sum += rec.wallSeconds;
    return sum;
}

} // namespace fbfly
