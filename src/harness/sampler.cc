#include "harness/sampler.h"

#include "common/log.h"
#include "network/network.h"

namespace fbfly
{

TimeSeriesSampler::TimeSeriesSampler(const Network &net,
                                     int window_cycles)
    : net_(net), window_(window_cycles)
{
    FBFLY_ASSERT(window_cycles >= 1, "window must be >= 1 cycle");
    const NetworkStats &st = net.stats();
    lastFlitsEjected_ = st.flitsEjected;
    lastPacketsEjected_ = st.packetsEjected;
    lastLatencySum_ = st.packetLatency.sum();
    lastLatencyCount_ = st.packetLatency.count();
    windowStart_ = net.now();
}

void
TimeSeriesSampler::tick()
{
    if (++phase_ < window_)
        return;
    phase_ = 0;

    const NetworkStats &st = net_.stats();
    Sample s;
    s.start = windowStart_;
    s.ejected = st.packetsEjected - lastPacketsEjected_;
    s.accepted =
        static_cast<double>(st.flitsEjected - lastFlitsEjected_) /
        (static_cast<double>(net_.numNodes()) * window_);
    // Latency stats accumulate over measured packets; experiments
    // that sample time series label every packet as measured.
    const std::uint64_t lat_n =
        st.packetLatency.count() - lastLatencyCount_;
    const double lat_sum =
        st.packetLatency.sum() - lastLatencySum_;
    s.avgLatency =
        lat_n > 0 ? lat_sum / static_cast<double>(lat_n) : 0.0;
    s.inFlight = static_cast<std::int64_t>(st.flitsInjected) -
                 static_cast<std::int64_t>(st.flitsEjected);
    s.backlog = st.pendingPackets;
    samples_.push_back(s);

    lastFlitsEjected_ = st.flitsEjected;
    lastPacketsEjected_ = st.packetsEjected;
    lastLatencySum_ = st.packetLatency.sum();
    lastLatencyCount_ = st.packetLatency.count();
    windowStart_ = net_.now();
}

} // namespace fbfly
