#include "harness/degradation.h"

#include <cmath>

#include "common/log.h"
#include "fault/fault_model.h"
#include "routing/routing.h"
#include "topology/topology.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{

std::vector<DegradationPoint>
runDegradationSweep(const Topology &topo,
                    const std::vector<RoutingAlgorithm *> &algos,
                    const TrafficPattern &pattern,
                    const DegradationConfig &cfg)
{
    // Bidirectional link count: inter-router arcs come in reverse
    // pairs in every topology this harness targets.
    const auto arcs = topo.arcs();
    const int total_links = static_cast<int>(arcs.size() / 2);

    std::vector<DegradationPoint> out;
    for (const double frac : cfg.fractions) {
        const int want = static_cast<int>(
            std::lround(frac * total_links));

        // One fault set per fraction, shared by all algorithms so
        // they are compared on identical failures.
        FaultModel fm(topo);
        const int failed =
            want > 0 ? fm.failRandomLinks(want, cfg.faultSeed,
                                          /*at=*/0,
                                          cfg.preserveConnectivity)
                     : 0;
        if (failed < want) {
            FBFLY_WARN("degradation: fraction ", frac, " requested ",
                       want, " links but only ", failed,
                       " could fail without disconnecting a terminal");
        }

        for (RoutingAlgorithm *algo : algos) {
            FBFLY_ASSERT(algo != nullptr,
                         "null algorithm in degradation sweep");
            NetworkConfig netcfg = cfg.net;
            netcfg.faults = fm.anyFaults() ? &fm : nullptr;
            netcfg.watchdogCycles = cfg.watchdogCycles;

            DegradationPoint pt;
            pt.fraction = frac;
            pt.failedLinks = failed;
            pt.totalLinks = total_links;
            pt.algorithm = algo->name();
            pt.saturation = runLoadPoint(topo, *algo, pattern,
                                         netcfg, cfg.exp, 1.0);
            pt.lowLoad = runLoadPoint(topo, *algo, pattern, netcfg,
                                      cfg.exp, cfg.lowLoad);
            out.push_back(std::move(pt));
        }
    }
    return out;
}

} // namespace fbfly
