#include "harness/degradation.h"

#include <cmath>
#include <cstdio>
#include <memory>

#include "common/log.h"
#include "fault/fault_model.h"
#include "routing/routing.h"
#include "topology/topology.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{

std::vector<DegradationPoint>
runDegradationSweep(const Topology &topo,
                    const std::vector<RoutingAlgorithm *> &algos,
                    const TrafficPattern &pattern,
                    const DegradationConfig &cfg,
                    std::vector<SweepPointRecord> *records_out)
{
    // Bidirectional link count: inter-router arcs come in reverse
    // pairs in every topology this harness targets.
    const auto arcs = topo.arcs();
    const int total_links = static_cast<int>(arcs.size() / 2);

    // Phase 1 (serial, cheap): draw one fault set per fraction,
    // shared by all algorithms so they are compared on identical
    // failures.  The models must outlive every queued run.
    std::vector<std::unique_ptr<FaultModel>> faultSets;
    std::vector<int> failedCounts;
    std::vector<int> requestedCounts;
    faultSets.reserve(cfg.fractions.size());
    for (const double frac : cfg.fractions) {
        const int want =
            static_cast<int>(std::lround(frac * total_links));
        auto fm = std::make_unique<FaultModel>(topo);
        const int failed =
            want > 0 ? fm->failRandomLinks(want, cfg.faultSeed,
                                           /*at=*/0,
                                           cfg.preserveConnectivity)
                     : 0;
        if (failed < want) {
            // Shortfall: the pruning ran out of candidates.  The
            // sweep still runs the cell, but records both counts so
            // consumers label the point by its *effective* fraction
            // (DegradationPoint::shortfall()) instead of silently
            // mislabeling it with the requested one.
            FBFLY_WARN("degradation: fraction ", frac, " requested ",
                       want, " links but only ", failed,
                       " could fail without disconnecting a terminal");
        }
        requestedCounts.push_back(want);
        failedCounts.push_back(failed);
        faultSets.push_back(std::move(fm));
    }

    // Phase 2: every (fraction, algorithm) cell is two independent
    // load points — queue them all on the sweep engine.  Queue order
    // (= seed-derivation order) is fraction-major, algorithm-minor,
    // saturation before low-load, so results are reproducible and
    // thread-count independent.
    SweepConfig sweepcfg;
    sweepcfg.threads = cfg.threads;
    sweepcfg.masterSeed = cfg.exp.seed;
    SweepEngine engine(sweepcfg);

    std::vector<DegradationPoint> out;
    struct CellIdx
    {
        std::size_t saturation;
        std::size_t lowLoad;
    };
    std::vector<CellIdx> cells;
    for (std::size_t f = 0; f < cfg.fractions.size(); ++f) {
        const FaultModel &fm = *faultSets[f];
        for (RoutingAlgorithm *algo : algos) {
            FBFLY_ASSERT(algo != nullptr,
                         "null algorithm in degradation sweep");
            NetworkConfig netcfg = cfg.net;
            netcfg.faults = fm.anyFaults() ? &fm : nullptr;
            netcfg.watchdogCycles = cfg.watchdogCycles;

            DegradationPoint pt;
            pt.fraction = cfg.fractions[f];
            pt.requestedLinks = requestedCounts[f];
            pt.failedLinks = failedCounts[f];
            pt.totalLinks = total_links;
            pt.algorithm = algo->name();
            out.push_back(std::move(pt));

            // Shortfall cells carry their effective link count in
            // the series label so the JSON is never mislabeled.
            char series[96];
            if (failedCounts[f] < requestedCounts[f]) {
                std::snprintf(series, sizeof series,
                              "degradation f=%.3f (shortfall %d/%d) "
                              "%s",
                              cfg.fractions[f], failedCounts[f],
                              requestedCounts[f],
                              algo->name().c_str());
            } else {
                std::snprintf(series, sizeof series,
                              "degradation f=%.3f %s",
                              cfg.fractions[f],
                              algo->name().c_str());
            }
            CellIdx idx;
            idx.saturation = engine.addLoadPoint(
                std::string(series) + " saturation", topo, *algo,
                pattern, netcfg, cfg.exp, 1.0);
            idx.lowLoad = engine.addLoadPoint(
                std::string(series) + " low-load", topo, *algo,
                pattern, netcfg, cfg.exp, cfg.lowLoad);
            cells.push_back(idx);
        }
    }

    const auto &records = engine.run();
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i].saturation = records[cells[i].saturation].load;
        out[i].lowLoad = records[cells[i].lowLoad].load;
    }
    if (records_out != nullptr)
        *records_out = records;
    return out;
}

} // namespace fbfly
