/**
 * @file
 * Parallel sweep engine (docs/SWEEPS.md).
 *
 * Every figure bench replays the paper's evaluation as a set of
 * *independent* simulations — one Network per (algorithm, pattern,
 * offered-load) point.  The SweepEngine executes those points
 * concurrently on a bounded pool of std::jthread workers fed from a
 * work queue, while keeping results **bit-identical regardless of
 * thread count or scheduling order**:
 *
 *  - each queued point gets an index, and its RNG seed is derived as
 *    splitmix64(masterSeed, index) (derivePointSeed) — never from
 *    shared mutable state or execution order;
 *  - each point builds its own Network (runLoadPoint / runBatch
 *    already do); the shared Topology, RoutingAlgorithm and
 *    TrafficPattern objects are stateless during routing (all
 *    simulation RNG lives inside the per-point Network);
 *  - results are written into a pre-sized, index-addressed record
 *    vector, so completion order cannot reorder output.
 *
 * The determinism contract is enforced by tests/test_sweep.cc: a
 * sweep run with 1 thread and with N threads must produce identical
 * results, field for field.
 */

#ifndef FBFLY_HARNESS_SWEEP_H
#define FBFLY_HARNESS_SWEEP_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.h"

namespace fbfly
{

class Topology;
class RoutingAlgorithm;
class TrafficPattern;

/**
 * Per-point seed derivation: a splitmix64 hash of
 * (master_seed, point_index).
 *
 * Adjacent indices yield decorrelated streams (splitmix64 is a
 * bijective avalanche mixer), and the derivation depends on nothing
 * but its two arguments, so a point rerun in isolation reproduces
 * its in-sweep result exactly.
 */
std::uint64_t derivePointSeed(std::uint64_t master_seed,
                              std::uint64_t point_index);

/**
 * Bounded pool of std::jthread workers fed from a FIFO work queue.
 *
 * Jobs may be submitted from the owning thread at any time; wait()
 * blocks until the queue is empty and every in-flight job finished.
 * The first exception thrown by a job is captured and rethrown from
 * wait() (remaining queued jobs still run).  Destruction joins all
 * workers after draining the queue.
 */
class ThreadPool
{
  public:
    /**
     * @param num_threads worker count; <= 0 selects
     *        std::thread::hardware_concurrency() (at least 1).
     */
    explicit ThreadPool(int num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int numThreads() const
    {
        return static_cast<int>(workers_.size());
    }

    /** Enqueue one job. */
    void submit(std::function<void()> job);

    /**
     * Block until all submitted jobs completed; rethrows the first
     * job exception (if any), clearing it.
     */
    void wait();

    /** Map a requested thread count to an actual one (<= 0: all
     *  hardware threads; always >= 1). */
    static int resolveThreads(int requested);

  private:
    void workerLoop(const std::stop_token &stop);

    std::mutex mu_;
    std::condition_variable_any workCv_; ///< workers sleep here
    std::condition_variable idleCv_;     ///< wait() sleeps here
    std::deque<std::function<void()>> queue_;
    int active_ = 0;
    std::exception_ptr firstError_;
    std::vector<std::jthread> workers_; ///< last: joins before rest
};

/** What kind of simulation a sweep point ran. */
enum class SweepPointKind
{
    kLoadPoint, ///< open-loop offered-load point (runLoadPoint)
    kBatch,     ///< fixed-batch delivery run (runBatch)
    kChurn,     ///< dynamic-service run (runChurnPoint, harness/churn.h)
};

/**
 * One executed sweep point: identification, the derived seed, the
 * wall-clock cost, and the simulation result.
 */
struct SweepPointRecord
{
    /** Queue position; also the seed-derivation index. */
    std::size_t index = 0;
    SweepPointKind kind = SweepPointKind::kLoadPoint;
    /** Series label, e.g. "fig4a MIN AD / uniform". */
    std::string series;
    std::string topology;
    std::string routing;
    std::string traffic;
    /** The derived per-point seed actually used. */
    std::uint64_t seed = 0;
    /** Wall-clock seconds this point took on its worker. */
    double wallSeconds = 0.0;

    /** Valid when kind == kLoadPoint or kChurn (churn points reuse
     *  the load-point result shape for their steady-state fields). */
    LoadPointResult load;
    /** Valid when kind == kBatch. */
    BatchResult batch;

    /** Extra kind-specific JSON, spliced verbatim into this point's
     *  object right before its closing brace ("" for none).  Must be
     *  a comma-free-prefix fragment like `"churn": {...}`.  Used by
     *  the fbfly-sweep-v1 churn extension (docs/SWEEPS.md). */
    std::string extraJson;
};

/**
 * Sweep engine configuration.
 */
struct SweepConfig
{
    /** Worker threads; <= 0 selects all hardware threads. */
    int threads = 1;
    /** Master seed; per-point seeds derive from it by index. */
    std::uint64_t masterSeed = 1;
};

/**
 * Queue-then-run sweep executor.
 *
 * Usage: construct, add*() every point (series by series), run()
 * once, then read records() — ordered by queue index, independent of
 * scheduling.  The referenced Topology / RoutingAlgorithm /
 * TrafficPattern objects must outlive run() and may be shared across
 * points (they are read-only during simulation).
 */
class SweepEngine
{
  public:
    explicit SweepEngine(SweepConfig cfg);

    /** Queue one offered-load point; returns its index. */
    std::size_t addLoadPoint(const std::string &series,
                             const Topology &topo,
                             RoutingAlgorithm &algo,
                             const TrafficPattern &pattern,
                             const NetworkConfig &netcfg,
                             const ExperimentConfig &expcfg,
                             double offered);

    /** Queue one point per load (a whole latency-vs-load series). */
    void addLoadSweep(const std::string &series, const Topology &topo,
                      RoutingAlgorithm &algo,
                      const TrafficPattern &pattern,
                      const NetworkConfig &netcfg,
                      const ExperimentConfig &expcfg,
                      const std::vector<double> &loads);

    /** Queue one batch run; returns its index. */
    std::size_t addBatch(const std::string &series,
                         const Topology &topo, RoutingAlgorithm &algo,
                         const TrafficPattern &pattern,
                         const NetworkConfig &netcfg, int batch_size,
                         Cycle max_cycles = 10000000);

    /** Points queued so far. */
    std::size_t size() const { return jobs_.size(); }

    /**
     * Execute every queued point on the pool and return the records
     * in queue order.  One-shot: a second call is rejected.
     */
    const std::vector<SweepPointRecord> &run();

    /** Records of a completed run (empty before run()). */
    const std::vector<SweepPointRecord> &records() const
    {
        return records_;
    }

    /** Actual worker count run() uses. */
    int threads() const { return threads_; }

    std::uint64_t masterSeed() const { return cfg_.masterSeed; }

    /** Wall-clock seconds of the whole run() call. */
    double totalWallSeconds() const { return totalWall_; }

    /** Sum of per-point wall seconds (the serial-equivalent cost). */
    double pointWallSecondsSum() const;

  private:
    /** A queued point: fills its record when invoked. */
    using Job = std::function<void(SweepPointRecord &)>;

    std::size_t reserveRecord(const std::string &series,
                              SweepPointKind kind,
                              const Topology &topo,
                              const RoutingAlgorithm &algo,
                              const TrafficPattern &pattern);

    SweepConfig cfg_;
    int threads_;
    bool ran_ = false;
    std::vector<Job> jobs_;
    std::vector<SweepPointRecord> records_;
    double totalWall_ = 0.0;
};

} // namespace fbfly

#endif // FBFLY_HARNESS_SWEEP_H
