/**
 * @file
 * Dynamic service mode: long-horizon churn runs with repair,
 * epoch-driven reconfiguration and recovery-time SLOs
 * (docs/FAULTS.md, "Churn and repair").
 *
 * Where runLoadPoint() measures a steady state, runChurnPoint()
 * measures a network *in service*: links and routers fail and are
 * repaired on MTBF/MTTR renewal schedules (fault/churn_model.h),
 * offered load follows a diurnal ramp with periodic job-arrival
 * batches, and an online adaptor re-selects the routing policy
 * (MIN AD / UGAL / VAL, routing/switchable.h) at every epoch boundary
 * from ObsSampler channel-utilization telemetry.
 *
 * Headline robustness metrics, beyond the steady-state aggregates:
 *
 *  - **per-event recovery time** — for every down event inside the
 *    measured horizon, the cycles until trailing-window delivered
 *    throughput returns to `recoveryFraction` of its pre-event level;
 *  - **p99.9 tail latency under churn** — the 99.9th percentile of
 *    labeled packet latency across the whole horizon (reported next
 *    to the steady-state p99);
 *  - **delivery cleanliness across reconfigurations** — the
 *    DeliveryOracle audits exactly-once delivery through every
 *    kill/repair/routing-switch transition; packets lost to link
 *    repair (unacked replay state) are accounted as expected drops.
 *
 * Determinism: the churn schedule, the load shape, the epoch adaptor
 * and every recovery-time sample are pure functions of simulation
 * state, so runChurnSweep() output is bit-identical at any
 * --threads N (tests/test_churn.cc).
 */

#ifndef FBFLY_HARNESS_CHURN_H
#define FBFLY_HARNESS_CHURN_H

#include <string>
#include <vector>

#include "fault/churn_model.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "topology/flattened_butterfly.h"

namespace fbfly
{

class TrafficPattern;

/**
 * Phasing, load-shape, adaptation and SLO knobs of one churn run.
 */
struct ChurnRunConfig
{
    /** @name Phasing @{ */
    /** Unmeasured warm-up cycles before the horizon.  The churn
     *  schedule runs on absolute cycles, so size the ChurnModel
     *  horizon as warmupCycles + horizonCycles. */
    int warmupCycles = 1000;
    /** Measured service horizon: every packet injected during these
     *  cycles is labeled. */
    Cycle horizonCycles = 20000;
    /** Drain bound after the horizon (labeled packets still inside
     *  at the bound => saturated). */
    int drainCycles = 100000;
    /** @} */

    /** @name Load shape @{ */
    /** Offered-load floor, flits/node/cycle. */
    double baseLoad = 0.2;
    /** Offered-load peak of the diurnal ramp. */
    double peakLoad = 0.5;
    /** Triangle-wave period of the diurnal ramp, cycles
     *  (0: constant baseLoad). */
    Cycle diurnalPeriod = 8000;
    /** Every jobPeriod cycles a batch "job" arrives at every node
     *  (0: no jobs). */
    Cycle jobPeriod = 0;
    /** Packets per node per job arrival. */
    int jobPacketsPerNode = 0;
    /** @} */

    /** @name Epoch-driven routing adaptation @{ */
    /** Epoch length, cycles (0: no adaptation; the run stays on
     *  MIN AD).  Also the channel-utilization telemetry window. */
    Cycle epochCycles = 500;
    /** max/mean channel utilization at or above this selects UGAL. */
    double imbalanceUgal = 2.5;
    /** max/mean at or above this — with mean utilization headroom
     *  below valMeanUtilMax — selects VAL. */
    double imbalanceVal = 5.0;
    /** Mean-utilization ceiling for the VAL escalation (VAL halves
     *  best-case throughput, so only escalate with headroom). */
    double valMeanUtilMax = 0.25;
    /** @} */

    /** @name Recovery-time SLO detection @{ */
    /** Trailing window (cycles) over which delivered throughput is
     *  tracked for recovery detection. */
    Cycle recoveryWindow = 256;
    /** A down event is "recovered" when trailing-window delivered
     *  flits return to this fraction of their pre-event level. */
    double recoveryFraction = 0.7;
    /** @} */

    /** Per-run master seed. */
    std::uint64_t seed = 2007;
    /** Audit end-to-end delivery across every transition. */
    bool verifyDelivery = true;
    /** Forward-progress watchdog bound for the run (mixed-policy VC
     *  sharing and escape routing void the analytic deadlock
     *  guarantees, so churn runs are always watchdog-backed). */
    Cycle watchdogCycles = 50000;
    /** Run conservation invariant checks every N cycles (0: off). */
    Cycle invariantCheckInterval = 0;
    /** Observability collection (metrics are force-enabled when
     *  epochCycles > 0 — the adaptor reads them). */
    ObsConfig obs;

    /** Stall diagnosis & recovery (sim/liveness.h).  Churn runs
     *  default to kEscapeDrain: repairs already re-decide routes, so
     *  a lossless re-decide is the natural first response to a
     *  watchdog fire, and the classifier escalates a genuine cyclic
     *  deadlock through the same reporting path. */
    LivenessConfig liveness{RecoveryPolicy::kEscapeDrain};
};

/**
 * Churn-specific results of one run (next to the reused
 * LoadPointResult steady-state aggregates).
 */
struct ChurnStats
{
    /** @name Service events (whole run, incl. warmup and drain) @{ */
    std::uint64_t downEvents = 0;
    std::uint64_t repairEvents = 0;
    /** Episodes the ChurnModel pruned to preserve connectivity. */
    std::uint64_t prunedEpisodes = 0;
    /** @} */

    /** @name Repair losses (folded into the drop counters) @{ */
    std::uint64_t flitsLost = 0;
    std::uint64_t packetsLost = 0;
    std::uint64_t measuredLost = 0;
    /** @} */

    /** @name Epoch adaptation @{ */
    std::uint64_t epochs = 0;
    std::uint64_t routingSwitches = 0;
    /** Packets pinned to each policy at their first decision. */
    std::uint64_t pinnedMinAd = 0;
    std::uint64_t pinnedUgal = 0;
    std::uint64_t pinnedVal = 0;
    /** @} */

    /** p99.9 labeled latency (NaN without labeled ejections). */
    double p999Latency = LoadPointResult::kUnknown;

    /** @name Recovery-time SLO @{ */
    /** Down events inside the measured horizon (tracked events). */
    std::uint64_t recoveryEvents = 0;
    /** Tracked events whose throughput recovered before run end. */
    std::uint64_t recoveredEvents = 0;
    /** Per-recovered-event fault->throughput-restored times. */
    std::vector<double> recoveryCycles;
    /** Mean / max over recoveryCycles (NaN when empty). */
    double meanRecoveryCycles = LoadPointResult::kUnknown;
    double maxRecoveryCycles = LoadPointResult::kUnknown;
    /** @} */
};

/** Result of one dynamic-service run. */
struct ChurnPointResult
{
    /** Steady-state aggregates over the horizon (offered is the
     *  time-average of the load shape; accepted, latency, delivery
     *  audit, status as in runLoadPoint). */
    LoadPointResult load;
    ChurnStats churn;
};

/**
 * Run one dynamic-service point on a freshly built network.
 *
 * @param topo    the flattened butterfly (outlives the call).
 * @param pattern destination-draw traffic pattern.
 * @param churn   churn schedule, or nullptr for a churn-free run of
 *                the same harness (the zero-churn determinism
 *                fixture).  Must be built over @p topo.
 * @param netcfg  network knobs (numVcs/seed are overridden).
 * @param cfg     phasing / load-shape / adaptation / SLO knobs.
 */
ChurnPointResult runChurnPoint(const FlattenedButterfly &topo,
                               const TrafficPattern &pattern,
                               const ChurnModel *churn,
                               NetworkConfig netcfg,
                               const ChurnRunConfig &cfg);

/** One sweep case: a labeled churn intensity. */
struct ChurnCase
{
    /** Series label, e.g. "churn mtbf=4000". */
    std::string label;
    /** MTBF/MTTR rates; horizon/seed are filled per point by the
     *  sweep (horizon = warmup + horizon cycles, seed derived from
     *  the point index). */
    ChurnConfig churn;
};

/** Churn sweep configuration. */
struct ChurnSweepConfig
{
    /** Worker threads; <= 0 selects all hardware threads. */
    int threads = 1;
    /** Master seed; per-point seeds derive from it by index. */
    std::uint64_t masterSeed = 2007;
    /** Shared run knobs (per-point seed overrides run.seed). */
    ChurnRunConfig run;
    /** The churn intensities to sweep. */
    std::vector<ChurnCase> cases;
};

/**
 * Run every case on a ThreadPool and return index-addressed
 * SweepPointRecords (kind kChurn; steady-state fields in .load, the
 * churn extension serialized into .extraJson) — bit-identical for
 * any cfg.threads (the PR 2 determinism contract).
 */
std::vector<SweepPointRecord> runChurnSweep(
    const FlattenedButterfly &topo, const TrafficPattern &pattern,
    const NetworkConfig &netcfg, const ChurnSweepConfig &cfg);

/**
 * Serialize the churn extension block of one point:
 * `"churn": {...}` with config echo, event/loss counters, epoch
 * adaptation counters, p99.9 and the recovery-time distribution
 * (fbfly-sweep-v1, docs/SWEEPS.md).
 */
std::string churnExtraJson(const ChurnConfig &cc,
                           const ChurnStats &cs);

} // namespace fbfly

#endif // FBFLY_HARNESS_CHURN_H
