/**
 * @file
 * Graceful-degradation sweep: throughput and latency versus the
 * fraction of failed links.
 *
 * The flattened butterfly's path diversity — the same property that
 * lets non-minimal adaptive routing balance adversarial load (paper
 * Section 4) — also lets it route around failures.  This harness
 * quantifies that: for each failed-link fraction it draws a
 * deterministic, connectivity-preserving random fault set
 * (FaultModel::failRandomLinks) and measures, per routing algorithm,
 * the saturation throughput (offered = 1.0) and a low-load latency
 * point.  Adaptive algorithms (MIN AD, UGAL) that mask failed ports
 * and spread load over the surviving channels degrade gracefully;
 * oblivious VAL keeps routing through its random intermediates'
 * dimension-order subroutes and pays escape detours for every path
 * that a failure crosses.
 *
 * Every run is backed by the forward-progress watchdog, so a sweep
 * always terminates with an explicit per-run LoadPointStatus.
 */

#ifndef FBFLY_HARNESS_DEGRADATION_H
#define FBFLY_HARNESS_DEGRADATION_H

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/sweep.h"

namespace fbfly
{

class Topology;
class RoutingAlgorithm;
class TrafficPattern;

/**
 * Degradation sweep parameters.
 */
struct DegradationConfig
{
    /** Failed-link fractions to evaluate (of bidirectional
     *  inter-router links). */
    std::vector<double> fractions = {0.0, 0.025, 0.05, 0.075, 0.10};
    /** Offered load of the latency point, flits/node/cycle. */
    double lowLoad = 0.2;
    /** Seed of the random fault draw (the same fault set is shared
     *  by every algorithm at a given fraction). */
    std::uint64_t faultSeed = 0xFA0175;
    /** Skip links whose loss would disconnect a terminal. */
    bool preserveConnectivity = true;
    /** Watchdog backing every run (escape routing forfeits the
     *  analytic deadlock guarantee; see docs/FAULTS.md). */
    Cycle watchdogCycles = 10000;
    /** Sweep worker threads (<= 0: all hardware threads).  Every
     *  (fraction, algorithm, load) cell is an independent simulation;
     *  results are bit-identical for any thread count
     *  (docs/SWEEPS.md). */
    int threads = 1;
    /** Experiment phasing (warm-up / measure / drain windows).
     *  exp.seed is the sweep's master seed: each cell runs with a
     *  splitmix64-derived per-point seed. */
    ExperimentConfig exp;
    /** Base network knobs (vcDepth etc.); numVcs, seed, faults and
     *  watchdogCycles are overridden per run. */
    NetworkConfig net;
};

/**
 * One (fraction, algorithm) cell of the sweep.
 */
struct DegradationPoint
{
    /** Requested failed-link fraction. */
    double fraction = 0.0;
    /** Bidirectional links the fraction asked for. */
    int requestedLinks = 0;
    /** Bidirectional links actually failed.  May be **less than
     *  requestedLinks**: FaultModel::failRandomLinks skips candidate
     *  links whose loss would disconnect a terminal and can exhaust
     *  its candidate pool (small or sparse topologies, high
     *  fractions).  Consumers must label sweep points by this value,
     *  not by the requested fraction — see shortfall(). */
    int failedLinks = 0;
    /** Total bidirectional links in the topology. */
    int totalLinks = 0;
    /** Routing algorithm name. */
    std::string algorithm;
    /** Offered = 1.0 run; accepted is the saturation throughput. */
    LoadPointResult saturation;
    /** Low-load run (cfg.lowLoad); avgLatency is the headline. */
    LoadPointResult lowLoad;

    /** True when connectivity pruning failed fewer links than the
     *  fraction requested; the cell's effective fraction is
     *  failedLinks / totalLinks, not `fraction`. */
    bool shortfall() const { return failedLinks < requestedLinks; }
};

/**
 * Run the sweep: for each fraction, draw one fault set and evaluate
 * every algorithm on it.  All cells execute on a SweepEngine with
 * cfg.threads workers; point seeds derive from cfg.exp.seed by cell
 * index, so the output is identical for any thread count.
 *
 * @param topo  topology (outlives the call).
 * @param algos algorithms to compare (non-owning; all must be
 *              compatible with @p topo).
 * @param pattern traffic pattern.
 * @param cfg   sweep parameters.
 * @param records_out when non-null, receives the engine's raw
 *              per-point records (for JSON output via ResultWriter).
 * @return points in (fraction-major, algorithm-minor) order.
 */
std::vector<DegradationPoint> runDegradationSweep(
    const Topology &topo,
    const std::vector<RoutingAlgorithm *> &algos,
    const TrafficPattern &pattern, const DegradationConfig &cfg,
    std::vector<SweepPointRecord> *records_out = nullptr);

} // namespace fbfly

#endif // FBFLY_HARNESS_DEGRADATION_H
