#include "harness/factory.h"

#include <sstream>
#include <vector>

#include "common/log.h"
#include "routing/butterfly_dest.h"
#include "routing/clos_ad.h"
#include "routing/dor.h"
#include "routing/dragonfly_routing.h"
#include "routing/fat_tree_adaptive.h"
#include "routing/folded_clos_adaptive.h"
#include "routing/ghc_adaptive.h"
#include "routing/ghc_minimal.h"
#include "routing/hypercube_ecube.h"
#include "routing/min_adaptive.h"
#include "routing/slim_fly_routing.h"
#include "routing/torus_dor.h"
#include "routing/torus_valiant.h"
#include "routing/ugal.h"
#include "routing/valiant.h"
#include "topology/butterfly.h"
#include "topology/dragonfly.h"
#include "topology/fat_tree.h"
#include "topology/flattened_butterfly.h"
#include "topology/folded_clos.h"
#include "topology/generalized_hypercube.h"
#include "topology/hypercube.h"
#include "topology/slim_fly.h"
#include "topology/torus.h"

namespace fbfly
{

namespace
{

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, sep))
        out.push_back(item);
    return out;
}

long
toInt(const std::string &s, const char *what)
{
    try {
        std::size_t pos = 0;
        const long v = std::stol(s, &pos);
        if (pos != s.size() || v <= 0)
            FBFLY_FATAL("bad ", what, ": '", s, "'");
        return v;
    } catch (const std::exception &) {
        FBFLY_FATAL("bad ", what, ": '", s, "'");
    }
}

std::unique_ptr<RoutingAlgorithm>
makeFbflyRouting(const std::string &name,
                 const FlattenedButterfly &topo)
{
    if (name == "dor")
        return std::make_unique<DimensionOrder>(topo);
    if (name == "minad")
        return std::make_unique<MinAdaptive>(topo);
    if (name == "val")
        return std::make_unique<Valiant>(topo);
    if (name == "ugal")
        return std::make_unique<Ugal>(topo, false);
    if (name == "ugals")
        return std::make_unique<Ugal>(topo, true);
    if (name == "closad" || name == "default")
        return std::make_unique<ClosAd>(topo);
    FBFLY_FATAL("unknown flattened-butterfly routing '", name,
                "' (dor|minad|val|ugal|ugals|closad)");
}

} // namespace

NetworkBundle
makeNetworkBundle(const std::string &topo_spec,
                  const std::string &routing_name)
{
    NetworkBundle bundle;
    const auto parts = split(topo_spec, '-');
    FBFLY_ASSERT(!parts.empty(), "empty topology spec");
    const std::string &kind = parts[0];

    auto expect_args = [&](std::size_t n) {
        if (parts.size() != n + 1) {
            FBFLY_FATAL("topology '", kind, "' expects ", n,
                        " size arguments, got ", parts.size() - 1,
                        " in '", topo_spec, "'");
        }
    };

    if (kind == "fbfly") {
        expect_args(2);
        const int k = static_cast<int>(toInt(parts[1], "k"));
        const int n = static_cast<int>(toInt(parts[2], "n"));
        auto topo = std::make_unique<FlattenedButterfly>(k, n);
        bundle.routing = makeFbflyRouting(routing_name, *topo);
        bundle.terminalsPerRouter = k;
        bundle.topology = std::move(topo);
    } else if (kind == "butterfly") {
        expect_args(2);
        const int k = static_cast<int>(toInt(parts[1], "k"));
        const int n = static_cast<int>(toInt(parts[2], "n"));
        auto topo = std::make_unique<Butterfly>(k, n);
        if (routing_name != "default" && routing_name != "dest")
            FBFLY_FATAL("butterfly supports only 'dest' routing");
        bundle.routing = std::make_unique<ButterflyDest>(*topo);
        bundle.terminalsPerRouter = k;
        bundle.topology = std::move(topo);
    } else if (kind == "clos") {
        expect_args(3);
        const auto nodes = toInt(parts[1], "nodes");
        const int c = static_cast<int>(toInt(parts[2], "c"));
        const int u = static_cast<int>(toInt(parts[3], "u"));
        auto topo = std::make_unique<FoldedClos>(nodes, c, u);
        if (routing_name != "default" && routing_name != "adaptive")
            FBFLY_FATAL("clos supports only 'adaptive' routing");
        bundle.routing =
            std::make_unique<FoldedClosAdaptive>(*topo);
        bundle.terminalsPerRouter = c;
        bundle.topology = std::move(topo);
    } else if (kind == "fattree") {
        expect_args(5);
        const auto nodes = toInt(parts[1], "nodes");
        const int c = static_cast<int>(toInt(parts[2], "c"));
        const int p = static_cast<int>(toInt(parts[3], "p"));
        const int u1 = static_cast<int>(toInt(parts[4], "u1"));
        const int u2 = static_cast<int>(toInt(parts[5], "u2"));
        auto topo = std::make_unique<FatTree>(nodes, c, p, u1, u2);
        if (routing_name != "default" && routing_name != "adaptive")
            FBFLY_FATAL("fattree supports only 'adaptive' routing");
        bundle.routing = std::make_unique<FatTreeAdaptive>(*topo);
        bundle.terminalsPerRouter = c;
        bundle.topology = std::move(topo);
    } else if (kind == "hypercube") {
        expect_args(1);
        const int d = static_cast<int>(toInt(parts[1], "dims"));
        auto topo = std::make_unique<Hypercube>(d);
        if (routing_name != "default" && routing_name != "ecube")
            FBFLY_FATAL("hypercube supports only 'ecube' routing");
        bundle.routing = std::make_unique<HypercubeEcube>(*topo);
        bundle.terminalsPerRouter = 1;
        bundle.channelPeriod = 2; // equal-bisection default (Fig. 6)
        bundle.topology = std::move(topo);
    } else if (kind == "torus") {
        expect_args(2);
        const int k = static_cast<int>(toInt(parts[1], "k"));
        const int n = static_cast<int>(toInt(parts[2], "n"));
        auto topo = std::make_unique<Torus>(k, n);
        if (routing_name == "torval") {
            bundle.routing = std::make_unique<TorusValiant>(*topo);
        } else if (routing_name == "default" ||
                   routing_name == "tordor") {
            bundle.routing = std::make_unique<TorusDor>(*topo);
        } else {
            FBFLY_FATAL("torus supports 'tordor' or 'torval' "
                        "routing");
        }
        bundle.terminalsPerRouter = 1;
        bundle.topology = std::move(topo);
    } else if (kind == "ghc") {
        expect_args(1);
        std::vector<int> radices;
        for (const auto &r : split(parts[1], 'x'))
            radices.push_back(static_cast<int>(toInt(r, "radix")));
        auto topo =
            std::make_unique<GeneralizedHypercube>(radices);
        if (routing_name == "ghcadapt") {
            bundle.routing = std::make_unique<GhcAdaptive>(*topo);
        } else if (routing_name == "default" ||
                   routing_name == "ghcmin") {
            bundle.routing = std::make_unique<GhcMinimal>(*topo);
        } else {
            FBFLY_FATAL("ghc supports 'ghcmin' or 'ghcadapt' "
                        "routing");
        }
        bundle.terminalsPerRouter = 1;
        bundle.topology = std::move(topo);
    } else if (kind == "dragonfly") {
        expect_args(3);
        const int p = static_cast<int>(toInt(parts[1], "p"));
        const int a = static_cast<int>(toInt(parts[2], "a"));
        const int h = static_cast<int>(toInt(parts[3], "h"));
        auto topo = std::make_unique<Dragonfly>(p, a, h);
        if (routing_name == "dfmin") {
            bundle.routing = std::make_unique<DragonflyMinimal>(*topo);
        } else if (routing_name == "default" ||
                   routing_name == "dfugal") {
            bundle.routing = std::make_unique<DragonflyUgal>(*topo);
        } else {
            FBFLY_FATAL("dragonfly supports 'dfmin' or 'dfugal' "
                        "routing");
        }
        // Adversarial group = the dragonfly group: neighbor-group
        // traffic funnels through one global channel per pair.
        bundle.terminalsPerRouter = p * a;
        bundle.topology = std::move(topo);
    } else if (kind == "slimfly") {
        expect_args(2);
        const int q = static_cast<int>(toInt(parts[1], "q"));
        const int p = static_cast<int>(toInt(parts[2], "p"));
        auto topo = std::make_unique<SlimFly>(q, p);
        if (routing_name == "sfmin") {
            bundle.routing = std::make_unique<SlimFlyMinimal>(*topo);
        } else if (routing_name == "default" ||
                   routing_name == "sfugal") {
            bundle.routing = std::make_unique<SlimFlyUgal>(*topo);
        } else {
            FBFLY_FATAL("slimfly supports 'sfmin' or 'sfugal' "
                        "routing");
        }
        bundle.terminalsPerRouter = p;
        bundle.topology = std::move(topo);
    } else {
        FBFLY_FATAL("unknown topology kind '", kind,
                    "' (fbfly|butterfly|clos|fattree|hypercube|"
                    "torus|ghc|dragonfly|slimfly)");
    }
    return bundle;
}

std::unique_ptr<TrafficPattern>
makeTraffic(const std::string &name, std::int64_t num_nodes,
            int group_size, std::uint64_t seed)
{
    if (name == "uniform")
        return std::make_unique<UniformRandom>(num_nodes);
    if (name == "adversarial") {
        return std::make_unique<AdversarialNeighbor>(num_nodes,
                                                     group_size);
    }
    if (name == "tornado")
        return std::make_unique<GroupTornado>(num_nodes, group_size);
    if (name == "transpose")
        return std::make_unique<Transpose>(num_nodes);
    if (name == "bitcomp")
        return std::make_unique<BitComplement>(num_nodes);
    if (name == "randperm")
        return std::make_unique<RandomPermutation>(num_nodes, seed);
    FBFLY_FATAL("unknown traffic '", name,
                "' (uniform|adversarial|tornado|transpose|bitcomp|"
                "randperm)");
}

} // namespace fbfly
