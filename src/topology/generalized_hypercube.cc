#include "topology/generalized_hypercube.h"

#include "common/log.h"

namespace fbfly
{

GeneralizedHypercube::GeneralizedHypercube(std::vector<int> radices)
    : radices_(std::move(radices))
{
    FBFLY_ASSERT(!radices_.empty(), "GHC needs >= 1 dimension");
    numNodes_ = 1;
    strides_.resize(radices_.size());
    portBase_.resize(radices_.size());
    int base = 1; // port 0 is the terminal
    for (std::size_t i = 0; i < radices_.size(); ++i) {
        FBFLY_ASSERT(radices_[i] >= 2, "GHC radix >= 2 per dimension");
        strides_[i] = numNodes_;
        numNodes_ *= radices_[i];
        portBase_[i] = base;
        base += radices_[i] - 1;
    }
    totalPorts_ = base;
}

std::string
GeneralizedHypercube::name() const
{
    std::string s = "GHC(";
    for (std::size_t i = 0; i < radices_.size(); ++i) {
        if (i)
            s += ",";
        s += std::to_string(radices_[i]);
    }
    return s + ")";
}

int
GeneralizedHypercube::numPorts(RouterId) const
{
    return totalPorts_;
}

std::vector<Topology::Arc>
GeneralizedHypercube::arcs() const
{
    std::vector<Arc> out;
    for (RouterId r = 0; r < numNodes_; ++r) {
        for (int d = 0; d < numDims(); ++d) {
            const int mine = routerDigit(r, d);
            for (int m = 0; m < radices_[d]; ++m) {
                if (m == mine)
                    continue;
                const RouterId j = neighbor(r, d, m);
                out.push_back({r, portToward(r, d, m),
                               j, portToward(j, d, mine)});
            }
        }
    }
    return out;
}

int
GeneralizedHypercube::routerDigit(RouterId r, int dim) const
{
    return static_cast<int>((r / strides_[dim]) % radices_[dim]);
}

RouterId
GeneralizedHypercube::neighbor(RouterId r, int dim, int value) const
{
    const int mine = routerDigit(r, dim);
    return r + static_cast<RouterId>((value - mine) * strides_[dim]);
}

PortId
GeneralizedHypercube::portToward(RouterId r, int dim, int value) const
{
    const int mine = routerDigit(r, dim);
    FBFLY_ASSERT(value != mine && value >= 0 && value < radices_[dim],
                 "GHC portToward bad value");
    const int idx = value < mine ? value : value - 1;
    return portBase_[dim] + idx;
}

int
GeneralizedHypercube::minimalHops(RouterId a, RouterId b) const
{
    int hops = 0;
    for (int d = 0; d < numDims(); ++d) {
        if (routerDigit(a, d) != routerDigit(b, d))
            ++hops;
    }
    return hops;
}

} // namespace fbfly
