/**
 * @file
 * Three-level folded Clos (fat tree).
 *
 * The configuration the paper's Clos needs beyond 1K nodes ("a
 * 3-stage folded-Clos"), organized BlackWidow-style: leaves carry
 * terminals and uplink into per-pod middle routers; pod middles
 * uplink into a top stage that spans all pods.
 *
 *  - leaves:   L = N/c, grouped into pods of p leaves;
 *  - middles:  u1 per pod, each connecting once to every leaf of its
 *              pod (down degree p) and carrying u2 uplinks;
 *  - tops:     u2 routers, each connecting once to every middle of
 *              every pod (down degree pods * u1).
 *
 * Taper u1/c at the first level and u2/p... at the second controls
 * the bisection, mirroring the 2-level FoldedClos class.
 *
 * Router ids: leaves [0, L), middles [L, L + pods*u1), tops after
 * that.  Leaf ports: 0..c-1 terminals, c+i = uplink to pod middle i.
 * Middle ports: 0..p-1 down to pod leaves, p+j = uplink to top j.
 * Top ports: one per (pod, middle) pair, index pod*u1 + middle.
 */

#ifndef FBFLY_TOPOLOGY_FAT_TREE_H
#define FBFLY_TOPOLOGY_FAT_TREE_H

#include "topology/topology.h"

namespace fbfly
{

/**
 * Three-level tapered fat tree.
 */
class FatTree : public Topology
{
  public:
    /**
     * @param num_nodes terminals (multiple of c * p).
     * @param c terminals per leaf.
     * @param p leaves per pod.
     * @param u1 uplinks per leaf == middles per pod.
     * @param u2 uplinks per middle == number of top routers.
     */
    FatTree(std::int64_t num_nodes, int c, int p, int u1, int u2);

    /** @name Topology interface @{ */
    std::string name() const override;
    std::int64_t numNodes() const override { return numNodes_; }
    int numRouters() const override
    {
        return numLeaves_ + numPods_ * u1_ + u2_;
    }
    int numPorts(RouterId r) const override;
    std::vector<Arc> arcs() const override;
    RouterId injectionRouter(NodeId node) const override;
    PortId injectionPort(NodeId node) const override;
    RouterId ejectionRouter(NodeId node) const override;
    PortId ejectionPort(NodeId node) const override;
    /** @} */

    /** @name Structure @{ */
    int c() const { return c_; }
    int p() const { return p_; }
    int u1() const { return u1_; }
    int u2() const { return u2_; }
    int numLeaves() const { return numLeaves_; }
    int numPods() const { return numPods_; }

    enum class Level { Leaf, Middle, Top };
    Level levelOf(RouterId r) const;

    RouterId leafOf(NodeId node) const { return node / c_; }
    int podOfLeaf(RouterId leaf) const { return leaf / p_; }
    int podOfMiddle(RouterId middle) const
    {
        return (middle - numLeaves_) / u1_;
    }
    /** Index of a middle within its pod. */
    int middleIndex(RouterId middle) const
    {
        return (middle - numLeaves_) % u1_;
    }
    RouterId middleId(int pod, int index) const
    {
        return numLeaves_ + pod * u1_ + index;
    }
    RouterId topId(int index) const
    {
        return numLeaves_ + numPods_ * u1_ + index;
    }

    /** Leaf port of uplink @p i. */
    PortId leafUplinkPort(int i) const { return c_ + i; }
    /** Middle port down to the pod-local leaf @p leaf_in_pod. */
    PortId middleDownPort(int leaf_in_pod) const
    {
        return leaf_in_pod;
    }
    /** Middle port of uplink @p j. */
    PortId middleUplinkPort(int j) const { return p_ + j; }
    /** Top port down to (pod, middle-index). */
    PortId topDownPort(int pod, int middle_index) const
    {
        return pod * u1_ + middle_index;
    }
    /** @} */

  private:
    std::int64_t numNodes_;
    int c_;
    int p_;
    int u1_;
    int u2_;
    int numLeaves_;
    int numPods_;
};

} // namespace fbfly

#endif // FBFLY_TOPOLOGY_FAT_TREE_H
