#include "topology/topology.h"

namespace fbfly
{

Topology::~Topology() = default;

} // namespace fbfly
