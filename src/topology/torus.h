/**
 * @file
 * k-ary n-cube (torus) topology.
 *
 * The low-radix baseline of the paper's introduction: "Over the past
 * 20 years k-ary n-cubes have been widely used — SGI Origin 2000,
 * Cray T3E, Cray XT3.  Low-radix networks, such as k-ary n-cubes,
 * are unable to take full advantage of increased router bandwidth."
 * Including it lets the library demonstrate that contrast directly:
 * the generalized hypercube / flattened butterfly replace each
 * dimension's ring with a complete graph.
 *
 * One terminal per router.  Ports: dimension d owns ports 2d (the
 * "+" direction) and 2d+1 (the "-" direction); port 2n is the
 * terminal.  For k == 2 the two directions collapse onto the same
 * neighbor but remain distinct physical channels.
 */

#ifndef FBFLY_TOPOLOGY_TORUS_H
#define FBFLY_TOPOLOGY_TORUS_H

#include "topology/topology.h"

namespace fbfly
{

/**
 * k-ary n-cube with unidirectional channel pairs per direction.
 */
class Torus : public Topology
{
  public:
    /**
     * @param k ring size per dimension (>= 2).
     * @param n number of dimensions (N = k^n).
     */
    Torus(int k, int n);

    /** @name Topology interface @{ */
    std::string name() const override;
    std::int64_t numNodes() const override { return numNodes_; }
    int numRouters() const override
    {
        return static_cast<int>(numNodes_);
    }
    int numPorts(RouterId r) const override;
    std::vector<Arc> arcs() const override;
    RouterId injectionRouter(NodeId node) const override { return node; }
    PortId injectionPort(NodeId) const override { return 2 * n_; }
    RouterId ejectionRouter(NodeId node) const override { return node; }
    PortId ejectionPort(NodeId) const override { return 2 * n_; }
    /** @} */

    /** @name Structure @{ */
    int k() const { return k_; }
    int n() const { return n_; }

    /** Digit of router @p r in dimension @p dim (0-based). */
    int routerDigit(RouterId r, int dim) const;

    /** Neighbor in dimension @p dim: @p plus ? +1 : -1 (mod k). */
    RouterId neighbor(RouterId r, int dim, bool plus) const;

    /** Output port for direction (@p dim, @p plus). */
    PortId portFor(int dim, bool plus) const
    {
        return 2 * dim + (plus ? 0 : 1);
    }

    /** Minimal hop count (shortest way around each ring). */
    int minimalHops(RouterId a, RouterId b) const;
    /** @} */

  private:
    int k_;
    int n_;
    std::int64_t numNodes_;
};

} // namespace fbfly

#endif // FBFLY_TOPOLOGY_TORUS_H
