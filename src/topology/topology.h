/**
 * @file
 * Topology interface.
 *
 * A Topology describes the static structure of a network: how many
 * routers, how ports are laid out, which directed channels (arcs)
 * connect them, and where each terminal attaches.  The Network class
 * instantiates routers and channels from this description; routing
 * algorithms are written against the concrete subclasses, which expose
 * coordinate math (e.g. "the port toward value m in dimension d").
 */

#ifndef FBFLY_TOPOLOGY_TOPOLOGY_H
#define FBFLY_TOPOLOGY_TOPOLOGY_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace fbfly
{

/**
 * Static description of a network structure.
 */
class Topology
{
  public:
    /** One directed inter-router channel. */
    struct Arc
    {
        RouterId src;
        PortId srcPort;
        RouterId dst;
        PortId dstPort;
    };

    virtual ~Topology();

    /** Topology name for reports. */
    virtual std::string name() const = 0;

    /** Number of terminals (processing nodes). */
    virtual std::int64_t numNodes() const = 0;

    /** Number of routers. */
    virtual int numRouters() const = 0;

    /** Ports on router @p r (terminal + inter-router + unused). */
    virtual int numPorts(RouterId r) const = 0;

    /** All directed inter-router channels. */
    virtual std::vector<Arc> arcs() const = 0;

    /** Router a node injects into. */
    virtual RouterId injectionRouter(NodeId n) const = 0;

    /** Port (on the injection router) a node injects into. */
    virtual PortId injectionPort(NodeId n) const = 0;

    /** Router a node ejects from (== injection router unless the
     *  topology is unidirectional, like the conventional butterfly). */
    virtual RouterId ejectionRouter(NodeId n) const = 0;

    /** Port (on the ejection router) a node ejects from. */
    virtual PortId ejectionPort(NodeId n) const = 0;
};

} // namespace fbfly

#endif // FBFLY_TOPOLOGY_TOPOLOGY_H
