/**
 * @file
 * Slim Fly topology (Besta & Hoefler, SC 2014) — the
 * diameter-2 MMS-graph competitor the design-space search
 * (harness/design_search.h) compares against the paper's topologies.
 *
 * The router graph is the McKay-Miller-Siran (MMS) construction over
 * GF(q) for a prime q with q ≡ 1 (mod 4): two subgraphs of q^2
 * routers each, labeled (s, x, y) with s ∈ {0,1} and x, y ∈ GF(q).
 * With ξ a primitive element of GF(q),
 *
 *   X  = {ξ^0, ξ^2, ..., ξ^(q-3)}   (the quadratic residues),
 *   X' = {ξ^1, ξ^3, ..., ξ^(q-2)}   (the non-residues),
 *
 * and q ≡ 1 (mod 4) makes both sets symmetric (X = -X, X' = -X'), so
 * the following adjacency is well-defined and undirected:
 *
 *   (0, x, y) ~ (0, x, y')  iff  y - y' ∈ X      (intra "row"),
 *   (1, m, c) ~ (1, m, c')  iff  c - c' ∈ X'     (intra "row"),
 *   (0, x, y) ~ (1, m, c)   iff  y = m*x + c     (cross).
 *
 * Network radix (3q-1)/2, diameter 2, 2q^2 routers — about 25% fewer
 * routers than any diameter-2 alternative of equal radix, which is
 * exactly why it lands on the cost-performance frontier.
 *
 * Router ids: s*q^2 + x*q + y.  Port layout per router (p terminals):
 *   [0, p)               terminals (node id router*p + t);
 *   [p, p + (q-1)/2)     intra-row channels, indexed by the position
 *                        of the offset in the sorted generator set;
 *   [p + (q-1)/2, ... + q)  cross channels, indexed by the other
 *                        subgraph's row coordinate (m for s=0, x for
 *                        s=1).
 */

#ifndef FBFLY_TOPOLOGY_SLIM_FLY_H
#define FBFLY_TOPOLOGY_SLIM_FLY_H

#include <vector>

#include "topology/topology.h"

namespace fbfly
{

/**
 * Slim Fly MMS network: 2q^2 routers, p terminals each.
 */
class SlimFly : public Topology
{
  public:
    /**
     * @param q prime with q ≡ 1 (mod 4): 5, 13, 17, 29, ...
     * @param p terminals per router (>= 1).
     */
    SlimFly(int q, int p);

    /** @name Topology interface @{ */
    std::string name() const override;
    std::int64_t numNodes() const override { return numNodes_; }
    int numRouters() const override { return 2 * q_ * q_; }
    int numPorts(RouterId r) const override;
    std::vector<Arc> arcs() const override;
    RouterId injectionRouter(NodeId node) const override
    {
        return static_cast<RouterId>(node / p_);
    }
    PortId injectionPort(NodeId node) const override
    {
        return static_cast<PortId>(node % p_);
    }
    RouterId ejectionRouter(NodeId node) const override
    {
        return injectionRouter(node);
    }
    PortId ejectionPort(NodeId node) const override
    {
        return injectionPort(node);
    }
    /** @} */

    /** @name Structure @{ */
    int q() const { return q_; }
    int p() const { return p_; }
    /** Intra-row channels per router: (q-1)/2. */
    int w() const { return w_; }
    /** Full router radix p + (3q-1)/2. */
    int radix() const { return p_ + w_ + q_; }
    /** Inter-router (network) radix (3q-1)/2. */
    int networkRadix() const { return w_ + q_; }

    int setOf(RouterId r) const { return r / (q_ * q_); }
    int rowOf(RouterId r) const { return (r / q_) % q_; }
    int colOf(RouterId r) const { return r % q_; }
    RouterId routerAt(int s, int row, int col) const
    {
        return (s * q_ + row) * q_ + col;
    }

    /** True when a single channel joins @p r1 and @p r2. */
    bool adjacent(RouterId r1, RouterId r2) const;

    /** Router reached from @p r via inter-router port @p port
     *  (p <= port < radix). */
    RouterId neighborAt(RouterId r, PortId port) const;

    /** Port on @p r toward the adjacent router @p to. */
    PortId portToward(RouterId r, RouterId to) const;

    /** Inter-router hops of a minimal route: 0, 1 or 2 (the MMS
     *  graph has diameter 2). */
    int minimalHops(RouterId src, RouterId dst) const
    {
        if (src == dst)
            return 0;
        return adjacent(src, dst) ? 1 : 2;
    }

    /** True when @p q is a valid Slim Fly parameter here: a prime
     *  with q ≡ 1 (mod 4). */
    static bool validQ(int q);
    /** @} */

  private:
    int q_;
    int p_;
    int w_; ///< (q-1)/2 intra-row generators
    std::int64_t numNodes_;
    std::vector<int> genEven_; ///< X, sorted ascending
    std::vector<int> genOdd_;  ///< X', sorted ascending
    std::vector<int> idxEven_; ///< offset -> index in X (-1: not in)
    std::vector<int> idxOdd_;  ///< offset -> index in X' (-1: not in)

    const std::vector<int> &gens(int s) const
    {
        return s == 0 ? genEven_ : genOdd_;
    }
    const std::vector<int> &idx(int s) const
    {
        return s == 0 ? idxEven_ : idxOdd_;
    }
};

} // namespace fbfly

#endif // FBFLY_TOPOLOGY_SLIM_FLY_H
