#include "topology/hypercube.h"

#include "common/log.h"
#include "common/radix.h"

namespace fbfly
{

Hypercube::Hypercube(int dims) : dims_(dims)
{
    FBFLY_ASSERT(dims >= 1 && dims <= 30, "hypercube dims range");
    numNodes_ = std::int64_t{1} << dims;
}

std::string
Hypercube::name() const
{
    return std::to_string(dims_) + "-cube";
}

int
Hypercube::numPorts(RouterId) const
{
    return dims_ + 1; // dims links + 1 terminal
}

std::vector<Topology::Arc>
Hypercube::arcs() const
{
    std::vector<Arc> out;
    out.reserve(static_cast<std::size_t>(numNodes_) * dims_);
    for (RouterId r = 0; r < numNodes_; ++r) {
        for (int d = 0; d < dims_; ++d)
            out.push_back({r, d, neighbor(r, d), d});
    }
    return out;
}

} // namespace fbfly
