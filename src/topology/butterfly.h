/**
 * @file
 * Conventional butterfly (k-ary n-fly).
 *
 * A unidirectional multistage network: n stages of k^(n-1) routers,
 * each with k inputs and k outputs.  Stage s output p leads to the
 * stage s+1 router whose row has digit (n-2-s) replaced by p, so a
 * packet's path is fully determined by its destination (no path
 * diversity — the weakness the flattened butterfly fixes).
 *
 * Router ids: stage * numRows + row.  Ports 0..k-1 are inputs,
 * k..2k-1 are outputs (output p is port k+p).  Stage-0 inputs and
 * stage-(n-1) outputs attach terminals.
 */

#ifndef FBFLY_TOPOLOGY_BUTTERFLY_H
#define FBFLY_TOPOLOGY_BUTTERFLY_H

#include "topology/topology.h"

namespace fbfly
{

/**
 * k-ary n-fly conventional butterfly.
 */
class Butterfly : public Topology
{
  public:
    /**
     * @param k router arity (k inputs, k outputs).
     * @param n number of stages (N = k^n nodes).
     */
    Butterfly(int k, int n);

    /** @name Topology interface @{ */
    std::string name() const override;
    std::int64_t numNodes() const override { return numNodes_; }
    int numRouters() const override { return n_ * numRows_; }
    int numPorts(RouterId r) const override;
    std::vector<Arc> arcs() const override;
    RouterId injectionRouter(NodeId node) const override;
    PortId injectionPort(NodeId node) const override;
    RouterId ejectionRouter(NodeId node) const override;
    PortId ejectionPort(NodeId node) const override;
    /** @} */

    /** @name Butterfly structure @{ */
    int k() const { return k_; }
    int n() const { return n_; }
    int numRows() const { return numRows_; }
    int stageOf(RouterId r) const { return r / numRows_; }
    int rowOf(RouterId r) const { return r % numRows_; }

    /**
     * Destination-tag routing: the output port a packet for @p dst
     * must take at a stage-@p stage router.
     */
    PortId outputPortFor(int stage, NodeId dst) const;

    /** Row reached by taking output @p p from row @p row at
     *  @p stage. */
    int nextRow(int stage, int row, int p) const;
    /** @} */

  private:
    int k_;
    int n_;
    std::int64_t numNodes_;
    int numRows_;
};

} // namespace fbfly

#endif // FBFLY_TOPOLOGY_BUTTERFLY_H
