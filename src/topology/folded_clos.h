/**
 * @file
 * Two-level folded Clos (fat tree).
 *
 * Leaf routers carry c terminals and u uplinks; each of the u middle
 * routers connects once to every leaf.  With u < c the network is
 * tapered: the paper's Figure 6 comparison holds bisection bandwidth
 * constant across topologies, which gives the folded Clos a 2:1 taper
 * (u = c/2) and hence 50% uniform-random throughput — the folded Clos
 * "uses 1/2 of the bandwidth for load-balancing to the middle
 * stages".  With u = c the network is non-blocking (the configuration
 * the Section 4 cost comparison charges the Clos for).
 *
 * Router ids: leaves 0..L-1 then middles L..L+u-1.  Leaf ports:
 * 0..c-1 terminals, c+i = uplink to middle i.  Middle ports: port l
 * connects down to leaf l.
 */

#ifndef FBFLY_TOPOLOGY_FOLDED_CLOS_H
#define FBFLY_TOPOLOGY_FOLDED_CLOS_H

#include "topology/topology.h"

namespace fbfly
{

/**
 * Two-level folded-Clos network.
 */
class FoldedClos : public Topology
{
  public:
    /**
     * @param num_nodes total terminals (must be a multiple of c).
     * @param c terminals per leaf router.
     * @param u uplinks per leaf == number of middle routers.
     */
    FoldedClos(std::int64_t num_nodes, int c, int u);

    /** @name Topology interface @{ */
    std::string name() const override;
    std::int64_t numNodes() const override { return numNodes_; }
    int numRouters() const override { return numLeaves_ + u_; }
    int numPorts(RouterId r) const override;
    std::vector<Arc> arcs() const override;
    RouterId injectionRouter(NodeId node) const override;
    PortId injectionPort(NodeId node) const override;
    RouterId ejectionRouter(NodeId node) const override;
    PortId ejectionPort(NodeId node) const override;
    /** @} */

    /** @name Structure @{ */
    int c() const { return c_; }
    int u() const { return u_; }
    int numLeaves() const { return numLeaves_; }
    bool isLeaf(RouterId r) const { return r < numLeaves_; }
    RouterId leafOf(NodeId node) const { return node / c_; }
    /** Uplink port on a leaf toward middle @p i. */
    PortId uplinkPort(int i) const { return c_ + i; }
    /** Down port on a middle toward leaf @p l. */
    PortId downPort(RouterId leaf) const { return leaf; }
    /** @} */

  private:
    std::int64_t numNodes_;
    int c_;
    int u_;
    int numLeaves_;
};

} // namespace fbfly

#endif // FBFLY_TOPOLOGY_FOLDED_CLOS_H
