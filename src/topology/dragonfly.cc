#include "topology/dragonfly.h"

#include "common/log.h"

namespace fbfly
{

Dragonfly::Dragonfly(int p, int a, int h)
    : p_(p), a_(a), h_(h), g_(a * h + 1)
{
    FBFLY_ASSERT(p_ >= 1, "dragonfly needs p >= 1 terminal/router");
    FBFLY_ASSERT(a_ >= 2, "dragonfly needs a >= 2 routers/group");
    FBFLY_ASSERT(h_ >= 1, "dragonfly needs h >= 1 global/router");
    numNodes_ = static_cast<std::int64_t>(p_) * a_ * g_;
}

std::string
Dragonfly::name() const
{
    return "dragonfly(" + std::to_string(p_) + "," +
           std::to_string(a_) + "," + std::to_string(h_) + ")";
}

int
Dragonfly::numPorts(RouterId) const
{
    return radix();
}

PortId
Dragonfly::localPort(RouterId r, int peer) const
{
    const int own = localOf(r);
    FBFLY_ASSERT(peer != own && peer >= 0 && peer < a_,
                 "dragonfly localPort bad peer");
    return p_ + (peer < own ? peer : peer - 1);
}

int
Dragonfly::globalTarget(RouterId r, int j) const
{
    FBFLY_ASSERT(j >= 0 && j < h_, "dragonfly bad global offset");
    const int G = groupOf(r);
    const int gi = localOf(r) * h_ + j;
    return gi + (gi >= G ? 1 : 0);
}

std::vector<Topology::Arc>
Dragonfly::arcs() const
{
    std::vector<Arc> out;
    const int routers = numRouters();
    for (RouterId r = 0; r < routers; ++r) {
        const int G = groupOf(r);
        const int L = localOf(r);
        // Local channels: the group is a complete graph.
        for (int m = 0; m < a_; ++m) {
            if (m == L)
                continue;
            out.push_back({r, localPort(r, m), routerAt(G, m),
                           localPort(routerAt(G, m), L)});
        }
        // Global channels: one per (group pair), owned at both ends
        // by the router whose local index the channel index selects.
        for (int j = 0; j < h_; ++j) {
            const int D = globalTarget(r, j);
            out.push_back({r,
                           static_cast<PortId>(p_ + (a_ - 1) + j),
                           globalRouter(D, G), globalPort(D, G)});
        }
    }
    return out;
}

int
Dragonfly::minimalHops(RouterId src, RouterId dst) const
{
    if (src == dst)
        return 0;
    const int gs = groupOf(src);
    const int gd = groupOf(dst);
    if (gs == gd)
        return 1;
    // local (unless already at the global-channel owner) + global +
    // local (unless the far end lands on dst).
    int hops = 1; // the global hop
    if (src != globalRouter(gs, gd))
        ++hops;
    if (dst != globalRouter(gd, gs))
        ++hops;
    return hops;
}

} // namespace fbfly
