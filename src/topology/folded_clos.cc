#include "topology/folded_clos.h"

#include "common/log.h"

namespace fbfly
{

FoldedClos::FoldedClos(std::int64_t num_nodes, int c, int u)
    : numNodes_(num_nodes), c_(c), u_(u)
{
    FBFLY_ASSERT(c >= 1 && u >= 1, "folded Clos needs c,u >= 1");
    FBFLY_ASSERT(num_nodes % c == 0,
                 "node count must be a multiple of c");
    numLeaves_ = static_cast<int>(num_nodes / c);
    FBFLY_ASSERT(numLeaves_ >= 2, "folded Clos needs >= 2 leaves");
}

std::string
FoldedClos::name() const
{
    return "folded-Clos(c=" + std::to_string(c_) +
           ",u=" + std::to_string(u_) + ")";
}

int
FoldedClos::numPorts(RouterId r) const
{
    return isLeaf(r) ? c_ + u_ : numLeaves_;
}

std::vector<Topology::Arc>
FoldedClos::arcs() const
{
    std::vector<Arc> out;
    out.reserve(static_cast<std::size_t>(numLeaves_) * u_ * 2);
    for (RouterId l = 0; l < numLeaves_; ++l) {
        for (int i = 0; i < u_; ++i) {
            const RouterId m = numLeaves_ + i;
            out.push_back({l, uplinkPort(i), m, downPort(l)});
            out.push_back({m, downPort(l), l, uplinkPort(i)});
        }
    }
    return out;
}

RouterId
FoldedClos::injectionRouter(NodeId node) const
{
    return leafOf(node);
}

PortId
FoldedClos::injectionPort(NodeId node) const
{
    return node % c_;
}

RouterId
FoldedClos::ejectionRouter(NodeId node) const
{
    return leafOf(node);
}

PortId
FoldedClos::ejectionPort(NodeId node) const
{
    return node % c_;
}

} // namespace fbfly
