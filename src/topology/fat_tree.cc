#include "topology/fat_tree.h"

#include "common/log.h"

namespace fbfly
{

FatTree::FatTree(std::int64_t num_nodes, int c, int p, int u1,
                 int u2)
    : numNodes_(num_nodes), c_(c), p_(p), u1_(u1), u2_(u2)
{
    FBFLY_ASSERT(c >= 1 && p >= 1 && u1 >= 1 && u2 >= 1,
                 "fat tree parameters must be positive");
    FBFLY_ASSERT(num_nodes % (static_cast<std::int64_t>(c) * p) == 0,
                 "node count must be a multiple of c * p");
    numLeaves_ = static_cast<int>(num_nodes / c);
    numPods_ = numLeaves_ / p_;
    FBFLY_ASSERT(numPods_ >= 2, "fat tree needs >= 2 pods "
                 "(use FoldedClos for 2-level networks)");
}

std::string
FatTree::name() const
{
    return "fat-tree(c=" + std::to_string(c_) +
           ",p=" + std::to_string(p_) + ",u1=" + std::to_string(u1_) +
           ",u2=" + std::to_string(u2_) + ")";
}

FatTree::Level
FatTree::levelOf(RouterId r) const
{
    if (r < numLeaves_)
        return Level::Leaf;
    if (r < numLeaves_ + numPods_ * u1_)
        return Level::Middle;
    return Level::Top;
}

int
FatTree::numPorts(RouterId r) const
{
    switch (levelOf(r)) {
      case Level::Leaf:
        return c_ + u1_;
      case Level::Middle:
        return p_ + u2_;
      case Level::Top:
        return numPods_ * u1_;
    }
    return 0;
}

std::vector<Topology::Arc>
FatTree::arcs() const
{
    std::vector<Arc> out;
    // Leaf <-> pod middles.
    for (RouterId leaf = 0; leaf < numLeaves_; ++leaf) {
        const int pod = podOfLeaf(leaf);
        const int leaf_in_pod = leaf % p_;
        for (int i = 0; i < u1_; ++i) {
            const RouterId mid = middleId(pod, i);
            out.push_back({leaf, leafUplinkPort(i), mid,
                           middleDownPort(leaf_in_pod)});
            out.push_back({mid, middleDownPort(leaf_in_pod), leaf,
                           leafUplinkPort(i)});
        }
    }
    // Pod middles <-> tops.
    for (int pod = 0; pod < numPods_; ++pod) {
        for (int i = 0; i < u1_; ++i) {
            const RouterId mid = middleId(pod, i);
            for (int j = 0; j < u2_; ++j) {
                const RouterId top = topId(j);
                out.push_back({mid, middleUplinkPort(j), top,
                               topDownPort(pod, i)});
                out.push_back({top, topDownPort(pod, i), mid,
                               middleUplinkPort(j)});
            }
        }
    }
    return out;
}

RouterId
FatTree::injectionRouter(NodeId node) const
{
    return leafOf(node);
}

PortId
FatTree::injectionPort(NodeId node) const
{
    return node % c_;
}

RouterId
FatTree::ejectionRouter(NodeId node) const
{
    return leafOf(node);
}

PortId
FatTree::ejectionPort(NodeId node) const
{
    return node % c_;
}

} // namespace fbfly
