#include "topology/torus.h"

#include <algorithm>

#include "common/log.h"
#include "common/radix.h"

namespace fbfly
{

Torus::Torus(int k, int n) : k_(k), n_(n)
{
    FBFLY_ASSERT(k >= 2 && n >= 1, "torus requires k >= 2, n >= 1");
    numNodes_ = ipow(k, n);
}

std::string
Torus::name() const
{
    return std::to_string(k_) + "-ary " + std::to_string(n_) +
           "-cube";
}

int
Torus::numPorts(RouterId) const
{
    return 2 * n_ + 1;
}

std::vector<Topology::Arc>
Torus::arcs() const
{
    // The "+" output of r meets the "-" input of its successor and
    // vice versa, giving two unidirectional channels per ring edge.
    std::vector<Arc> out;
    out.reserve(static_cast<std::size_t>(numNodes_) * 2 * n_);
    for (RouterId r = 0; r < numNodes_; ++r) {
        for (int d = 0; d < n_; ++d) {
            out.push_back({r, portFor(d, true),
                           neighbor(r, d, true), portFor(d, false)});
            out.push_back({r, portFor(d, false),
                           neighbor(r, d, false),
                           portFor(d, true)});
        }
    }
    return out;
}

int
Torus::routerDigit(RouterId r, int dim) const
{
    return digit(r, dim, k_);
}

RouterId
Torus::neighbor(RouterId r, int dim, bool plus) const
{
    const int mine = routerDigit(r, dim);
    const int next = plus ? (mine + 1) % k_ : (mine + k_ - 1) % k_;
    return static_cast<RouterId>(setDigit(r, dim, k_, next));
}

int
Torus::minimalHops(RouterId a, RouterId b) const
{
    int hops = 0;
    for (int d = 0; d < n_; ++d) {
        const int delta =
            std::abs(routerDigit(a, d) - routerDigit(b, d));
        hops += std::min(delta, k_ - delta);
    }
    return hops;
}

} // namespace fbfly
