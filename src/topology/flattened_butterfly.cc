#include "topology/flattened_butterfly.h"

#include "common/log.h"
#include "common/radix.h"

namespace fbfly
{

FlattenedButterfly::FlattenedButterfly(int k, int n) : k_(k), n_(n)
{
    FBFLY_ASSERT(k >= 2, "flattened butterfly requires k >= 2");
    FBFLY_ASSERT(n >= 2, "flattened butterfly requires n >= 2 "
                 "(n' >= 1 dimension)");
    numNodes_ = ipow(k, n);
    numRouters_ = static_cast<int>(ipow(k, n - 1));
    FBFLY_ASSERT(k <= 127, "digit table uses int8 digits");

    digits_.resize(static_cast<std::size_t>(numRouters_) * (n - 1));
    for (RouterId r = 0; r < numRouters_; ++r) {
        std::int64_t v = r;
        for (int d = 0; d < n - 1; ++d) {
            digits_[static_cast<std::size_t>(r) * (n - 1) + d] =
                static_cast<std::int8_t>(v % k);
            v /= k;
        }
    }
}

std::string
FlattenedButterfly::name() const
{
    return std::to_string(k_) + "-ary " + std::to_string(n_) + "-flat";
}

int
FlattenedButterfly::numPorts(RouterId) const
{
    // k terminal ports + (k-1) ports in each of n-1 dimensions
    // == radix k' = n(k-1)+1.
    return radix();
}

std::vector<Topology::Arc>
FlattenedButterfly::arcs() const
{
    std::vector<Arc> out;
    out.reserve(static_cast<std::size_t>(numRouters_) * numDims() *
                (k_ - 1));
    for (RouterId r = 0; r < numRouters_; ++r) {
        for (int d = 1; d <= numDims(); ++d) {
            const int mine = routerDigit(r, d);
            for (int m = 0; m < k_; ++m) {
                if (m == mine)
                    continue;
                const RouterId j = neighbor(r, d, m);
                out.push_back({r, portToward(r, d, m),
                               j, portToward(j, d, mine)});
            }
        }
    }
    return out;
}

RouterId
FlattenedButterfly::injectionRouter(NodeId node) const
{
    return routerOf(node);
}

PortId
FlattenedButterfly::injectionPort(NodeId node) const
{
    return terminalPort(node);
}

RouterId
FlattenedButterfly::ejectionRouter(NodeId node) const
{
    return routerOf(node);
}

PortId
FlattenedButterfly::ejectionPort(NodeId node) const
{
    return terminalPort(node);
}

RouterId
FlattenedButterfly::routerOf(NodeId node) const
{
    FBFLY_ASSERT(node >= 0 && node < numNodes_, "node id range");
    return node / k_;
}

RouterId
FlattenedButterfly::neighbor(RouterId r, int dim, int value) const
{
    // Equation (1) of the paper: j = i + [m - digit_d(i)] k^(d-1).
    return static_cast<RouterId>(setDigit(r, dim - 1, k_, value));
}

PortId
FlattenedButterfly::portToward(RouterId r, int dim, int value) const
{
    const int mine = routerDigit(r, dim);
    FBFLY_ASSERT(value != mine && value >= 0 && value < k_,
                 "portToward: value ", value, " invalid for digit ",
                 mine);
    const int base = k_ + (dim - 1) * (k_ - 1);
    const int idx = value < mine ? value : value - 1;
    return base + idx;
}

PortId
FlattenedButterfly::terminalPort(NodeId node) const
{
    return node % k_;
}

int
FlattenedButterfly::minimalHops(RouterId a, RouterId b) const
{
    const std::int8_t *da =
        &digits_[static_cast<std::size_t>(a) * (n_ - 1)];
    const std::int8_t *db =
        &digits_[static_cast<std::size_t>(b) * (n_ - 1)];
    int hops = 0;
    for (int d = 0; d < n_ - 1; ++d)
        hops += da[d] != db[d] ? 1 : 0;
    return hops;
}

int
FlattenedButterfly::highestDiffDim(RouterId a, RouterId b) const
{
    const std::int8_t *da =
        &digits_[static_cast<std::size_t>(a) * (n_ - 1)];
    const std::int8_t *db =
        &digits_[static_cast<std::size_t>(b) * (n_ - 1)];
    for (int d = n_ - 2; d >= 0; --d) {
        if (da[d] != db[d])
            return d + 1;
    }
    return 0;
}

std::int64_t
FlattenedButterfly::maxNodes(int k_prime, int n_prime)
{
    // Invert k' = n(k-1)+1 with n = n'+1: the largest feasible base k
    // is 1 + (k'-1)/n.
    const int n = n_prime + 1;
    const int k = 1 + (k_prime - 1) / n;
    if (k < 2)
        return 0;
    return ipow(k, n);
}

int
FlattenedButterfly::minDimsForRadix(int router_radix, std::int64_t n,
                                    int max_dims)
{
    // Section 5.1.2: smallest n' with floor(k/(n'+1))^(n'+1) >= N.
    for (int np = 1; np <= max_dims; ++np) {
        const std::int64_t base = router_radix / (np + 1);
        if (base < 2)
            break;
        if (ipow(base, np + 1) >= n)
            return np;
    }
    return -1;
}

int
FlattenedButterfly::effectiveRadix(int router_radix, int n_prime)
{
    // Section 5.1.2: k' = (floor(k/(n'+1)) - 1)(n'+1) + 1.
    const int base = router_radix / (n_prime + 1);
    return (base - 1) * (n_prime + 1) + 1;
}

} // namespace fbfly
