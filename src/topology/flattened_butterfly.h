/**
 * @file
 * The flattened butterfly topology (paper Section 2).
 *
 * A k-ary n-flat is derived from a k-ary n-fly by flattening the
 * routers of each row into one: N = k^n nodes are served by N/k
 * routers of radix k' = n(k-1)+1, connected in n' = n-1 dimensions.
 * In each dimension every group of k routers is completely connected
 * (Equation 1 of the paper).
 *
 * Addressing: a node has an n-digit radix-k address; digit 0 selects
 * the terminal port on its router and digits 1..n-1 form the (n-1)-
 * digit router address.  An inter-router hop in dimension d
 * (1 <= d <= n') changes router digit d-1 (= node digit d).
 */

#ifndef FBFLY_TOPOLOGY_FLATTENED_BUTTERFLY_H
#define FBFLY_TOPOLOGY_FLATTENED_BUTTERFLY_H

#include <string>
#include <vector>

#include "topology/topology.h"

namespace fbfly
{

/**
 * k-ary n-flat flattened butterfly.
 */
class FlattenedButterfly : public Topology
{
  public:
    /**
     * @param k digits base == terminals per router.
     * @param n digits per node address (n >= 2); dimensions n' = n-1.
     */
    FlattenedButterfly(int k, int n);

    /** @name Topology interface @{ */
    std::string name() const override;
    std::int64_t numNodes() const override { return numNodes_; }
    int numRouters() const override { return numRouters_; }
    int numPorts(RouterId r) const override;
    std::vector<Arc> arcs() const override;
    RouterId injectionRouter(NodeId node) const override;
    PortId injectionPort(NodeId node) const override;
    RouterId ejectionRouter(NodeId node) const override;
    PortId ejectionPort(NodeId node) const override;
    /** @} */

    /** @name Flattened-butterfly parameters @{ */
    int k() const { return k_; }
    int n() const { return n_; }
    /** Number of inter-router dimensions, n' = n-1. */
    int numDims() const { return n_ - 1; }
    /** Router radix k' = n(k-1)+1 (terminals + inter-router ports). */
    int radix() const { return n_ * (k_ - 1) + 1; }
    /** @} */

    /** @name Coordinate math used by routing algorithms @{ */

    /** Router serving a node. */
    RouterId routerOf(NodeId node) const;

    /** Digit of router @p r in dimension @p dim (1..n'). */
    int
    routerDigit(RouterId r, int dim) const
    {
        return digits_[static_cast<std::size_t>(r) * (n_ - 1) +
                       (dim - 1)];
    }

    /** Router reached from @p r by setting dimension @p dim to
     *  @p value. */
    RouterId neighbor(RouterId r, int dim, int value) const;

    /**
     * Output port on @p r for the channel toward @p value in
     * dimension @p dim.  @p value must differ from r's own digit.
     */
    PortId portToward(RouterId r, int dim, int value) const;

    /** Terminal port on routerOf(node) serving @p node. */
    PortId terminalPort(NodeId node) const;

    /** Minimal inter-router hops between routers @p a and @p b. */
    int minimalHops(RouterId a, RouterId b) const;

    /** Highest dimension in which @p a and @p b differ (0 if equal).
     *  In the folded-Clos analogy this is the level of the closest
     *  common ancestor, which bounds the CLOS AD intermediate set. */
    int highestDiffDim(RouterId a, RouterId b) const;

    /** @} */

    /** @name Static scaling formulas (paper Figure 2 / Section 5.1.2)
     *  @{ */

    /** Nodes reachable with radix k' and n' dimensions: the largest
     *  N = k^(n'+1) with k' >= n(k-1)+1, or 0 if even k=2 is
     *  infeasible. */
    static std::int64_t maxNodes(int k_prime, int n_prime);

    /** Smallest n' such that radix-k routers scale to >= N nodes
     *  (Section 5.1.2), or -1 if none exists up to @p max_dims. */
    static int minDimsForRadix(int router_radix, std::int64_t n,
                               int max_dims = 16);

    /** Effective radix k' used when building with radix-k routers and
     *  n' dimensions (Section 5.1.2). */
    static int effectiveRadix(int router_radix, int n_prime);

    /** @} */

  private:
    int k_;
    int n_;
    std::int64_t numNodes_;
    int numRouters_;
    /** Precomputed router digits, [r * (n-1) + (dim-1)] — digit
     *  queries are on the routing hot path. */
    std::vector<std::int8_t> digits_;
};

} // namespace fbfly

#endif // FBFLY_TOPOLOGY_FLATTENED_BUTTERFLY_H
