#include "topology/butterfly.h"

#include "common/log.h"
#include "common/radix.h"

namespace fbfly
{

Butterfly::Butterfly(int k, int n) : k_(k), n_(n)
{
    FBFLY_ASSERT(k >= 2 && n >= 2, "butterfly requires k,n >= 2");
    numNodes_ = ipow(k, n);
    numRows_ = static_cast<int>(ipow(k, n - 1));
}

std::string
Butterfly::name() const
{
    return std::to_string(k_) + "-ary " + std::to_string(n_) + "-fly";
}

int
Butterfly::numPorts(RouterId) const
{
    return 2 * k_;
}

std::vector<Topology::Arc>
Butterfly::arcs() const
{
    std::vector<Arc> out;
    out.reserve(static_cast<std::size_t>(n_ - 1) * numRows_ * k_);
    for (int s = 0; s + 1 < n_; ++s) {
        for (int row = 0; row < numRows_; ++row) {
            const RouterId src = s * numRows_ + row;
            for (int p = 0; p < k_; ++p) {
                const int row2 = nextRow(s, row, p);
                const RouterId dst = (s + 1) * numRows_ + row2;
                // The receiving input port is the sender's digit in
                // the rewritten position, making ports unique per
                // source.
                const PortId in = digit(row, n_ - 2 - s, k_);
                out.push_back({src, k_ + p, dst, in});
            }
        }
    }
    return out;
}

RouterId
Butterfly::injectionRouter(NodeId node) const
{
    return static_cast<RouterId>(node / k_);
}

PortId
Butterfly::injectionPort(NodeId node) const
{
    return node % k_;
}

RouterId
Butterfly::ejectionRouter(NodeId node) const
{
    return (n_ - 1) * numRows_ + static_cast<RouterId>(node / k_);
}

PortId
Butterfly::ejectionPort(NodeId node) const
{
    return k_ + node % k_;
}

PortId
Butterfly::outputPortFor(int stage, NodeId dst) const
{
    FBFLY_ASSERT(stage >= 0 && stage < n_, "stage range");
    if (stage == n_ - 1)
        return k_ + dst % k_; // terminal hop: digit 0
    // Rewrite row digit (n-2-stage) == node digit (n-1-stage).
    return k_ + digit(dst, n_ - 1 - stage, k_);
}

int
Butterfly::nextRow(int stage, int row, int p) const
{
    return static_cast<int>(setDigit(row, n_ - 2 - stage, k_, p));
}

} // namespace fbfly
