/**
 * @file
 * Binary hypercube.
 *
 * 2^n routers with one terminal each; port d (0 <= d < n) connects
 * router r to r XOR 2^d; port n is the terminal.  Used as a
 * comparison topology in paper Section 3.3 (a 10-dimensional
 * hypercube for N = 1024, with half-bandwidth channels so bisection
 * bandwidth matches the flattened butterfly) and in the Section 4
 * cost model.
 */

#ifndef FBFLY_TOPOLOGY_HYPERCUBE_H
#define FBFLY_TOPOLOGY_HYPERCUBE_H

#include "topology/topology.h"

namespace fbfly
{

/**
 * n-dimensional binary hypercube, one terminal per router.
 */
class Hypercube : public Topology
{
  public:
    /** @param dims number of dimensions (N = 2^dims nodes). */
    explicit Hypercube(int dims);

    /** @name Topology interface @{ */
    std::string name() const override;
    std::int64_t numNodes() const override { return numNodes_; }
    int numRouters() const override
    {
        return static_cast<int>(numNodes_);
    }
    int numPorts(RouterId r) const override;
    std::vector<Arc> arcs() const override;
    RouterId injectionRouter(NodeId node) const override { return node; }
    PortId injectionPort(NodeId) const override { return dims_; }
    RouterId ejectionRouter(NodeId node) const override { return node; }
    PortId ejectionPort(NodeId) const override { return dims_; }
    /** @} */

    /** @name Structure @{ */
    int dims() const { return dims_; }
    RouterId neighbor(RouterId r, int d) const { return r ^ (1 << d); }
    /** @} */

  private:
    int dims_;
    std::int64_t numNodes_;
};

} // namespace fbfly

#endif // FBFLY_TOPOLOGY_HYPERCUBE_H
