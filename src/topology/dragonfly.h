/**
 * @file
 * Dragonfly topology (Kim, Dally, Scott & Abts, ISCA 2008) — a
 * post-2007 competitor the design-space search (harness/
 * design_search.h) compares against the paper's topologies.
 *
 * A dragonfly(p, a, h) groups a routers into a fully-connected local
 * cluster; each router carries p terminals and h global channels, and
 * the g = a*h + 1 groups are themselves fully connected (exactly one
 * bidirectional global channel per group pair — the balanced
 * configuration of the dragonfly paper, a = 2p = 2h scaled to the
 * parameters given here).
 *
 * Router ids: group-major, router (G, L) has id G*a + L.  Port layout
 * per router:
 *   [0, p)            terminals (node G*a*p + L*p + t);
 *   [p, p+a-1)        local channels to the other routers of the
 *                     group (portToward order: by peer local index,
 *                     own index skipped);
 *   [p+a-1, p+a-1+h)  global channels.
 *
 * Global wiring uses the canonical consecutive assignment: group G's
 * global channel gi (0 <= gi < a*h) connects to group D = gi + (gi >=
 * G), and lives on router L = gi/h, port offset gi%h.  Each group
 * pair therefore gets exactly one bidirectional link whose endpoints
 * both ends can compute in O(1).
 */

#ifndef FBFLY_TOPOLOGY_DRAGONFLY_H
#define FBFLY_TOPOLOGY_DRAGONFLY_H

#include "topology/topology.h"

namespace fbfly
{

/**
 * Balanced dragonfly: g = a*h + 1 fully-connected groups of a
 * fully-connected routers, p terminals and h global channels each.
 */
class Dragonfly : public Topology
{
  public:
    /**
     * @param p terminals per router (>= 1).
     * @param a routers per group (>= 2).
     * @param h global channels per router (>= 1).
     */
    Dragonfly(int p, int a, int h);

    /** @name Topology interface @{ */
    std::string name() const override;
    std::int64_t numNodes() const override { return numNodes_; }
    int numRouters() const override { return a_ * g_; }
    int numPorts(RouterId r) const override;
    std::vector<Arc> arcs() const override;
    RouterId injectionRouter(NodeId node) const override
    {
        return static_cast<RouterId>(node / p_);
    }
    PortId injectionPort(NodeId node) const override
    {
        return static_cast<PortId>(node % p_);
    }
    RouterId ejectionRouter(NodeId node) const override
    {
        return injectionRouter(node);
    }
    PortId ejectionPort(NodeId node) const override
    {
        return injectionPort(node);
    }
    /** @} */

    /** @name Structure @{ */
    int p() const { return p_; }
    int a() const { return a_; }
    int h() const { return h_; }
    /** Group count g = a*h + 1. */
    int g() const { return g_; }
    int radix() const { return p_ + (a_ - 1) + h_; }

    int groupOf(RouterId r) const { return r / a_; }
    int localOf(RouterId r) const { return r % a_; }
    RouterId routerAt(int group, int local) const
    {
        return group * a_ + local;
    }

    /** Local port on @p r toward local index @p peer (!= own). */
    PortId localPort(RouterId r, int peer) const;

    /** Group G's global-channel index toward group D (!= G). */
    int globalIndex(int G, int D) const
    {
        return D < G ? D : D - 1;
    }
    /** Group reached by @p r's global port offset @p j in [0, h). */
    int globalTarget(RouterId r, int j) const;
    /** (router, port) of group @p G's end of the G<->D link. */
    RouterId globalRouter(int G, int D) const
    {
        return routerAt(G, globalIndex(G, D) / h_);
    }
    PortId globalPort(int G, int D) const
    {
        return p_ + (a_ - 1) + globalIndex(G, D) % h_;
    }

    /** Inter-router hops of a minimal route (0..3). */
    int minimalHops(RouterId src, RouterId dst) const;
    /** @} */

  private:
    int p_;
    int a_;
    int h_;
    int g_;
    std::int64_t numNodes_;
};

} // namespace fbfly

#endif // FBFLY_TOPOLOGY_DRAGONFLY_H
