/**
 * @file
 * Generalized hypercube (Bhuyan & Agrawal), paper Section 2.3.
 *
 * A mixed-radix k-ary n-cube whose rings are replaced by complete
 * connections: in dimension i every group of k_i routers is fully
 * connected.  Exactly one terminal attaches to each router — the
 * paper's (8,8,16) GHC serves 1K nodes with 1024 routers, which is
 * what makes it a factor of k more expensive than the concentrated
 * flattened butterfly.
 *
 * Port layout: port 0 is the terminal; dimension i (0-based) owns
 * ports base_i .. base_i + k_i - 2, where base_0 = 1.
 */

#ifndef FBFLY_TOPOLOGY_GENERALIZED_HYPERCUBE_H
#define FBFLY_TOPOLOGY_GENERALIZED_HYPERCUBE_H

#include <vector>

#include "topology/topology.h"

namespace fbfly
{

/**
 * Mixed-radix generalized hypercube.
 */
class GeneralizedHypercube : public Topology
{
  public:
    /** @param radices per-dimension group sizes, e.g. {8, 8, 16}. */
    explicit GeneralizedHypercube(std::vector<int> radices);

    /** @name Topology interface @{ */
    std::string name() const override;
    std::int64_t numNodes() const override { return numNodes_; }
    int numRouters() const override
    {
        return static_cast<int>(numNodes_);
    }
    int numPorts(RouterId r) const override;
    std::vector<Arc> arcs() const override;
    RouterId injectionRouter(NodeId node) const override { return node; }
    PortId injectionPort(NodeId) const override { return 0; }
    RouterId ejectionRouter(NodeId node) const override { return node; }
    PortId ejectionPort(NodeId) const override { return 0; }
    /** @} */

    /** @name Structure @{ */
    int numDims() const { return static_cast<int>(radices_.size()); }
    int radixOf(int dim) const { return radices_[dim]; }

    /** Mixed-radix digit of router @p r in dimension @p dim. */
    int routerDigit(RouterId r, int dim) const;

    /** Router reached by setting dimension @p dim to @p value. */
    RouterId neighbor(RouterId r, int dim, int value) const;

    /** Port toward @p value in @p dim (value != own digit). */
    PortId portToward(RouterId r, int dim, int value) const;

    /** Minimal inter-router hops between two routers. */
    int minimalHops(RouterId a, RouterId b) const;
    /** @} */

  private:
    std::vector<int> radices_;
    std::vector<std::int64_t> strides_; // dim i stride in router ids
    std::vector<int> portBase_;
    std::int64_t numNodes_;
    int totalPorts_;
};

} // namespace fbfly

#endif // FBFLY_TOPOLOGY_GENERALIZED_HYPERCUBE_H
