#include "topology/slim_fly.h"

#include <algorithm>

#include "common/log.h"

namespace fbfly
{

namespace
{

bool
isPrime(int n)
{
    if (n < 2)
        return false;
    for (int d = 2; d * d <= n; ++d) {
        if (n % d == 0)
            return false;
    }
    return true;
}

/** Smallest primitive root of the prime field GF(q). */
int
primitiveRoot(int q)
{
    for (int g = 2; g < q; ++g) {
        // g is primitive iff no proper power g^k (k < q-1, k | q-1)
        // is 1; checking every k < q-1 is fine at these sizes.
        int v = g;
        bool primitive = true;
        for (int k = 1; k < q - 1; ++k) {
            if (v == 1) {
                primitive = false;
                break;
            }
            v = static_cast<int>(
                (static_cast<long long>(v) * g) % q);
        }
        if (primitive && v == 1)
            return g;
    }
    FBFLY_FATAL("no primitive root mod ", q);
}

} // namespace

bool
SlimFly::validQ(int q)
{
    return isPrime(q) && q % 4 == 1;
}

SlimFly::SlimFly(int q, int p) : q_(q), p_(p), w_((q - 1) / 2)
{
    FBFLY_ASSERT(validQ(q_), "Slim Fly needs a prime q with q ≡ 1 "
                             "(mod 4): 5, 13, 17, 29, ... (got ",
                 q_, ")");
    FBFLY_ASSERT(p_ >= 1, "Slim Fly needs p >= 1 terminal/router");
    numNodes_ = static_cast<std::int64_t>(p_) * 2 * q_ * q_;

    // Even powers of a primitive element are the quadratic residues
    // X, odd powers the non-residues X'.  q ≡ 1 (mod 4) puts -1 in X,
    // so both sets are negation-symmetric and the intra-row graphs
    // are undirected.
    const int xi = primitiveRoot(q_);
    int v = 1;
    for (int e = 0; e < q_ - 1; ++e) {
        (e % 2 == 0 ? genEven_ : genOdd_).push_back(v);
        v = static_cast<int>((static_cast<long long>(v) * xi) % q_);
    }
    std::sort(genEven_.begin(), genEven_.end());
    std::sort(genOdd_.begin(), genOdd_.end());
    idxEven_.assign(q_, -1);
    idxOdd_.assign(q_, -1);
    for (int i = 0; i < w_; ++i) {
        idxEven_[genEven_[i]] = i;
        idxOdd_[genOdd_[i]] = i;
    }
    for (const int d : genEven_) {
        FBFLY_ASSERT(idxEven_[(q_ - d) % q_] >= 0,
                     "generator set X not symmetric");
    }
}

std::string
SlimFly::name() const
{
    return "slimfly(q=" + std::to_string(q_) + "," +
           std::to_string(p_) + ")";
}

int
SlimFly::numPorts(RouterId) const
{
    return radix();
}

bool
SlimFly::adjacent(RouterId r1, RouterId r2) const
{
    const int s1 = setOf(r1);
    const int s2 = setOf(r2);
    if (s1 == s2) {
        if (rowOf(r1) != rowOf(r2))
            return false;
        const int d = (colOf(r1) - colOf(r2) + q_) % q_;
        return d != 0 && idx(s1)[d] >= 0;
    }
    // Cross edge (0,x,y) ~ (1,m,c) iff y = m*x + c (mod q).
    const RouterId a = s1 == 0 ? r1 : r2;
    const RouterId b = s1 == 0 ? r2 : r1;
    const int x = rowOf(a);
    const int y = colOf(a);
    const int m = rowOf(b);
    const int c = colOf(b);
    return y == static_cast<int>(
                    (static_cast<long long>(m) * x + c) % q_);
}

RouterId
SlimFly::neighborAt(RouterId r, PortId port) const
{
    const int s = setOf(r);
    const int row = rowOf(r);
    const int col = colOf(r);
    FBFLY_ASSERT(port >= p_ && port < radix(),
                 "Slim Fly neighborAt: not an inter-router port");
    if (port < p_ + w_) {
        // Intra-row: step by the port's generator offset.
        const int d = gens(s)[port - p_];
        return routerAt(s, row, (col + d) % q_);
    }
    // Cross: the port index is the other subgraph's row coordinate.
    const int other_row = port - p_ - w_;
    if (s == 0) {
        // (0,x,y) -> (1,m, y - m*x).
        const int c = static_cast<int>(
            ((static_cast<long long>(col) -
              static_cast<long long>(other_row) * row) % q_ + q_) %
            q_);
        return routerAt(1, other_row, c);
    }
    // (1,m,c) -> (0,x, m*x + c).
    const int y = static_cast<int>(
        (static_cast<long long>(row) * other_row + col) % q_);
    return routerAt(0, other_row, y);
}

PortId
SlimFly::portToward(RouterId r, RouterId to) const
{
    const int s = setOf(r);
    if (s == setOf(to)) {
        const int d = (colOf(to) - colOf(r) + q_) % q_;
        const int i = idx(s)[d];
        FBFLY_ASSERT(rowOf(r) == rowOf(to) && i >= 0,
                     "Slim Fly portToward: routers not adjacent");
        return p_ + i;
    }
    return p_ + w_ + rowOf(to);
}

std::vector<Topology::Arc>
SlimFly::arcs() const
{
    std::vector<Arc> out;
    const int routers = numRouters();
    for (RouterId r = 0; r < routers; ++r) {
        for (PortId port = p_; port < radix(); ++port) {
            const RouterId j = neighborAt(r, port);
            out.push_back({r, port, j, portToward(j, r)});
        }
    }
    return out;
}

} // namespace fbfly
