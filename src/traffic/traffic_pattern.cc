#include "traffic/traffic_pattern.h"

#include <algorithm>
#include <numeric>

#include "common/log.h"

namespace fbfly
{

namespace
{

bool
isPowerOfTwo(std::int64_t x)
{
    return x > 0 && (x & (x - 1)) == 0;
}

} // namespace

TrafficPattern::TrafficPattern(std::int64_t num_nodes)
    : numNodes_(num_nodes)
{
    FBFLY_ASSERT(num_nodes >= 2, "traffic needs at least two nodes");
}

TrafficPattern::~TrafficPattern() = default;

UniformRandom::UniformRandom(std::int64_t num_nodes)
    : TrafficPattern(num_nodes)
{
}

NodeId
UniformRandom::dest(NodeId src, Rng &rng) const
{
    // Uniform over the other N-1 nodes.
    const auto draw = static_cast<NodeId>(
        rng.nextBounded(static_cast<std::uint64_t>(numNodes_ - 1)));
    return draw >= src ? draw + 1 : draw;
}

AdversarialNeighbor::AdversarialNeighbor(std::int64_t num_nodes,
                                         int group_size,
                                         int group_offset)
    : TrafficPattern(num_nodes), groupSize_(group_size),
      groupOffset_(group_offset)
{
    FBFLY_ASSERT(group_size >= 1 && num_nodes % group_size == 0,
                 "group size must divide node count");
    const std::int64_t groups = num_nodes / group_size;
    FBFLY_ASSERT(group_offset % groups != 0,
                 "group offset must move traffic off-router");
}

NodeId
AdversarialNeighbor::dest(NodeId src, Rng &rng) const
{
    const std::int64_t groups = numNodes_ / groupSize_;
    const std::int64_t g = (src / groupSize_ + groupOffset_) % groups;
    const auto within = static_cast<std::int64_t>(
        rng.nextBounded(static_cast<std::uint64_t>(groupSize_)));
    return static_cast<NodeId>(g * groupSize_ + within);
}

BitComplement::BitComplement(std::int64_t num_nodes)
    : TrafficPattern(num_nodes)
{
    FBFLY_ASSERT(isPowerOfTwo(num_nodes),
                 "bit-complement requires a power-of-two node count");
}

NodeId
BitComplement::dest(NodeId src, Rng &) const
{
    return static_cast<NodeId>((numNodes_ - 1) ^ src);
}

Transpose::Transpose(std::int64_t num_nodes)
    : TrafficPattern(num_nodes)
{
    FBFLY_ASSERT(isPowerOfTwo(num_nodes),
                 "transpose requires a power-of-two node count");
    bits_ = 0;
    while ((std::int64_t{1} << bits_) < num_nodes)
        ++bits_;
    FBFLY_ASSERT(bits_ % 2 == 0,
                 "transpose requires an even number of address bits");
}

NodeId
Transpose::dest(NodeId src, Rng &) const
{
    const int half = bits_ / 2;
    const std::int64_t lo = src & ((std::int64_t{1} << half) - 1);
    const std::int64_t hi = src >> half;
    return static_cast<NodeId>((lo << half) | hi);
}

GroupTornado::GroupTornado(std::int64_t num_nodes, int group_size)
    : TrafficPattern(num_nodes), groupSize_(group_size)
{
    FBFLY_ASSERT(group_size >= 1 && num_nodes % group_size == 0,
                 "group size must divide node count");
    FBFLY_ASSERT(num_nodes / group_size >= 2, "need >= 2 groups");
}

NodeId
GroupTornado::dest(NodeId src, Rng &rng) const
{
    const std::int64_t groups = numNodes_ / groupSize_;
    const std::int64_t g = (src / groupSize_ + groups / 2) % groups;
    const auto within = static_cast<std::int64_t>(
        rng.nextBounded(static_cast<std::uint64_t>(groupSize_)));
    return static_cast<NodeId>(g * groupSize_ + within);
}

Hotspot::Hotspot(std::int64_t num_nodes, std::vector<NodeId> hot,
                 double fraction)
    : TrafficPattern(num_nodes), hot_(std::move(hot)),
      fraction_(fraction)
{
    FBFLY_ASSERT(!hot_.empty(), "hotspot needs >= 1 hot node");
    FBFLY_ASSERT(fraction >= 0.0 && fraction <= 1.0,
                 "hot fraction in [0,1]");
    for (const NodeId h : hot_)
        FBFLY_ASSERT(h >= 0 && h < num_nodes, "hot node range");
}

NodeId
Hotspot::dest(NodeId src, Rng &rng) const
{
    if (rng.nextBernoulli(fraction_)) {
        const NodeId h = hot_[rng.nextBounded(hot_.size())];
        if (h != src)
            return h;
    }
    const auto draw = static_cast<NodeId>(
        rng.nextBounded(static_cast<std::uint64_t>(numNodes_ - 1)));
    return draw >= src ? draw + 1 : draw;
}

RandomPermutation::RandomPermutation(std::int64_t num_nodes,
                                     std::uint64_t seed)
    : TrafficPattern(num_nodes), perm_(num_nodes)
{
    std::iota(perm_.begin(), perm_.end(), 0);
    Rng rng(seed);
    // Fisher-Yates shuffle with the deterministic stream.
    for (std::int64_t i = num_nodes - 1; i > 0; --i) {
        const auto j = static_cast<std::int64_t>(
            rng.nextBounded(static_cast<std::uint64_t>(i + 1)));
        std::swap(perm_[i], perm_[j]);
    }
}

NodeId
RandomPermutation::dest(NodeId src, Rng &) const
{
    return perm_[src];
}

} // namespace fbfly
