#include "traffic/injection.h"

#include "common/log.h"
#include "network/network.h"

namespace fbfly
{

BernoulliInjection::BernoulliInjection(double offered_load,
                                       int packet_size,
                                       std::uint64_t seed)
    : rate_(offered_load / packet_size), packetSize_(packet_size),
      rng_(seed)
{
    FBFLY_ASSERT(offered_load >= 0.0 && rate_ <= 1.0,
                 "offered load out of range: ", offered_load);
}

void
BernoulliInjection::setOfferedLoad(double offered_load)
{
    rate_ = offered_load / packetSize_;
    FBFLY_ASSERT(offered_load >= 0.0 && rate_ <= 1.0,
                 "offered load out of range: ", offered_load);
}

void
BernoulliInjection::tick(Network &net, bool measured)
{
    const std::int64_t n = net.numNodes();
    const Cycle now = net.now();
    for (NodeId node = 0; node < n; ++node) {
        if (rng_.nextBernoulli(rate_))
            net.terminal(node).enqueuePacket(now, kInvalid, measured);
    }
}

void
loadBatch(Network &net, int packets_per_node, bool measured)
{
    const std::int64_t n = net.numNodes();
    const Cycle now = net.now();
    for (NodeId node = 0; node < n; ++node) {
        for (int i = 0; i < packets_per_node; ++i)
            net.terminal(node).enqueuePacket(now, kInvalid, measured);
    }
}

OnOffInjection::OnOffInjection(double offered_load, double mean_burst,
                               int packet_size, std::uint64_t seed,
                               double on_rate)
    : onRate_(on_rate / packet_size), packetSize_(packet_size),
      rng_(seed)
{
    FBFLY_ASSERT(mean_burst >= 1.0, "mean burst length >= 1");
    FBFLY_ASSERT(on_rate > 0.0 && on_rate <= 1.0,
                 "on_rate must be in (0, 1]");
    const double packet_load = offered_load / packet_size;
    FBFLY_ASSERT(packet_load <= onRate_ + 1e-12,
                 "offered load exceeds the on-state rate");

    // Long-run on fraction f satisfies f * onRate = packet_load;
    // mean burst length B gives pOnToOff = 1/B; balance
    // f = pOffToOn / (pOffToOn + pOnToOff) yields pOffToOn.
    const double f = packet_load / onRate_;
    pOnToOff_ = 1.0 / mean_burst;
    if (f >= 1.0 - 1e-12) {
        pOffToOn_ = 1.0;
        pOnToOff_ = 0.0;
    } else {
        pOffToOn_ = pOnToOff_ * f / (1.0 - f);
        FBFLY_ASSERT(pOffToOn_ <= 1.0,
                     "burst/load combination infeasible");
    }
}

void
OnOffInjection::tick(Network &net, bool measured)
{
    const std::int64_t n = net.numNodes();
    if (on_.empty())
        on_.assign(n, 0);
    const Cycle now = net.now();
    for (NodeId node = 0; node < n; ++node) {
        if (on_[node]) {
            if (rng_.nextBernoulli(pOnToOff_))
                on_[node] = 0;
        } else if (rng_.nextBernoulli(pOffToOn_)) {
            on_[node] = 1;
        }
        if (on_[node] && rng_.nextBernoulli(onRate_))
            net.terminal(node).enqueuePacket(now, kInvalid, measured);
    }
}

double
OnOffInjection::offeredLoad() const
{
    const double f =
        pOnToOff_ + pOffToOn_ > 0.0
            ? pOffToOn_ / (pOffToOn_ + pOnToOff_)
            : 1.0;
    return f * onRate_ * packetSize_;
}

} // namespace fbfly
