/**
 * @file
 * Injection processes.
 *
 * The paper injects packets with a Bernoulli process (Section 3.2)
 * for the open-loop latency/throughput experiments, and delivers
 * fixed-size batches for the dynamic-response experiment of
 * Figure 5.
 */

#ifndef FBFLY_TRAFFIC_INJECTION_H
#define FBFLY_TRAFFIC_INJECTION_H

#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace fbfly
{

class Network;

/**
 * Open-loop Bernoulli packet injection.
 *
 * Each cycle, each node independently generates a packet with
 * probability offered_load / packet_size, so the offered load in
 * flits/node/cycle equals @p offered_load.
 */
class BernoulliInjection
{
  public:
    /**
     * @param offered_load flits per node per cycle in [0, 1].
     * @param packet_size  flits per packet.
     * @param seed         stream seed (independent of network streams).
     */
    BernoulliInjection(double offered_load, int packet_size,
                       std::uint64_t seed);

    /**
     * Enqueue this cycle's arrivals at every terminal of @p net.
     *
     * @param measured whether packets created this cycle belong to
     *        the measurement sample.
     */
    void tick(Network &net, bool measured);

    double offeredLoad() const { return rate_ * packetSize_; }

    /**
     * Retarget the offered load (flits per node per cycle, in
     * [0, 1]) without disturbing the RNG stream — the diurnal /
     * batch-phase load shapes of the dynamic-service harness
     * (src/harness/churn.h) ramp this every cycle.
     */
    void setOfferedLoad(double offered_load);

  private:
    double rate_; // packets per node per cycle
    int packetSize_;
    Rng rng_;
};

/**
 * Batch injection: load every node's source queue with a fixed number
 * of packets at time zero; terminals then drain them as fast as flow
 * control allows (Figure 5).
 */
void loadBatch(Network &net, int packets_per_node, bool measured);

/**
 * Two-state Markov-modulated (on/off) bursty injection.
 *
 * Each node alternates between an "on" state, injecting a packet
 * every cycle with probability on_rate, and a silent "off" state.
 * The state transition probabilities are derived from the requested
 * average offered load and mean burst length, so the long-run load
 * matches a Bernoulli process of the same rate while arrivals are
 * clumped — the transient stress that motivates the paper's
 * sequential-allocator and adaptive-intermediate results.
 */
class OnOffInjection
{
  public:
    /**
     * @param offered_load  average flits per node per cycle.
     * @param mean_burst    mean "on" period length in cycles (>= 1).
     * @param packet_size   flits per packet.
     * @param seed          stream seed.
     * @param on_rate       injection probability while "on"
     *                      (default 1.0: saturated bursts).
     */
    OnOffInjection(double offered_load, double mean_burst,
                   int packet_size, std::uint64_t seed,
                   double on_rate = 1.0);

    /** Enqueue this cycle's arrivals at every terminal of @p net. */
    void tick(Network &net, bool measured);

    double offeredLoad() const;

  private:
    double onRate_;   // packets/cycle while on
    double pOnToOff_; // on -> off transition probability
    double pOffToOn_; // off -> on transition probability
    int packetSize_;
    Rng rng_;
    std::vector<char> on_;
};

} // namespace fbfly

#endif // FBFLY_TRAFFIC_INJECTION_H
