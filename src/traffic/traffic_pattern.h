/**
 * @file
 * Synthetic traffic patterns (paper Section 3.2).
 *
 * A TrafficPattern maps a source node to a destination node, possibly
 * using randomness.  Destinations are drawn when a packet is injected;
 * for the patterns used in the paper (uniform random and the
 * adversarial adjacent-router pattern) this is statistically identical
 * to drawing at creation time and keeps source queues O(1) per packet.
 */

#ifndef FBFLY_TRAFFIC_TRAFFIC_PATTERN_H
#define FBFLY_TRAFFIC_TRAFFIC_PATTERN_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace fbfly
{

/**
 * Abstract source -> destination map.
 */
class TrafficPattern
{
  public:
    explicit TrafficPattern(std::int64_t num_nodes);
    virtual ~TrafficPattern();

    virtual std::string name() const = 0;

    /**
     * Destination for a packet from @p src.
     *
     * @param rng the source terminal's private stream.
     */
    virtual NodeId dest(NodeId src, Rng &rng) const = 0;

    std::int64_t numNodes() const { return numNodes_; }

  protected:
    std::int64_t numNodes_;
};

/**
 * Uniform random traffic over all nodes other than the source — the
 * benign pattern of Figure 4(a).
 */
class UniformRandom : public TrafficPattern
{
  public:
    explicit UniformRandom(std::int64_t num_nodes);
    std::string name() const override { return "uniform-random"; }
    NodeId dest(NodeId src, Rng &rng) const override;
};

/**
 * The paper's worst-case pattern: each node attached to router R_i
 * sends to a randomly selected node attached to router R_{i+1}
 * (Section 3.2).  With minimal routing all of a router's injected
 * traffic then contends for one inter-router channel.
 *
 * @p group_size is the number of terminals per router (k for a
 * flattened butterfly); groups wrap around.
 */
class AdversarialNeighbor : public TrafficPattern
{
  public:
    AdversarialNeighbor(std::int64_t num_nodes, int group_size,
                        int group_offset = 1);
    std::string name() const override { return "adversarial-neighbor"; }
    NodeId dest(NodeId src, Rng &rng) const override;

  private:
    int groupSize_;
    int groupOffset_;
};

/**
 * Bit-complement permutation: dst = ~src (mod N); N must be a power
 * of two.
 */
class BitComplement : public TrafficPattern
{
  public:
    explicit BitComplement(std::int64_t num_nodes);
    std::string name() const override { return "bit-complement"; }
    NodeId dest(NodeId src, Rng &rng) const override;
};

/**
 * Transpose permutation: the address (b bits, b even) is rotated by
 * b/2, swapping the high and low halves; N must be an even power of
 * two.
 */
class Transpose : public TrafficPattern
{
  public:
    explicit Transpose(std::int64_t num_nodes);
    std::string name() const override { return "transpose"; }
    NodeId dest(NodeId src, Rng &rng) const override;

  private:
    int bits_;
};

/**
 * Group tornado: traffic from the nodes of router group g goes to a
 * random node of group (g + G/2) mod G — an adversarial pattern at
 * maximal group distance.
 */
class GroupTornado : public TrafficPattern
{
  public:
    GroupTornado(std::int64_t num_nodes, int group_size);
    std::string name() const override { return "group-tornado"; }
    NodeId dest(NodeId src, Rng &rng) const override;

  private:
    int groupSize_;
};

/**
 * Hotspot traffic: with probability @p fraction the destination is
 * one of a few fixed hot nodes (uniformly among them); otherwise
 * uniform random.  Models the many-to-few contention that adaptive
 * routing cannot fix (the hot ejection link itself saturates), a
 * useful contrast to the channel-imbalance patterns it can.
 */
class Hotspot : public TrafficPattern
{
  public:
    /**
     * @param hot     the hot destinations (non-empty).
     * @param fraction probability of targeting a hot node, in [0,1].
     */
    Hotspot(std::int64_t num_nodes, std::vector<NodeId> hot,
            double fraction);
    std::string name() const override { return "hotspot"; }
    NodeId dest(NodeId src, Rng &rng) const override;

  private:
    std::vector<NodeId> hot_;
    double fraction_;
};

/**
 * A fixed random permutation of the nodes, drawn once from a seed.
 */
class RandomPermutation : public TrafficPattern
{
  public:
    RandomPermutation(std::int64_t num_nodes, std::uint64_t seed);
    std::string name() const override { return "random-permutation"; }
    NodeId dest(NodeId src, Rng &rng) const override;

  private:
    std::vector<NodeId> perm_;
};

} // namespace fbfly

#endif // FBFLY_TRAFFIC_TRAFFIC_PATTERN_H
