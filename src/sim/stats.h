/**
 * @file
 * Statistics collection for simulation experiments.
 *
 * RunningStats accumulates count/mean/variance/min/max with Welford's
 * online algorithm; Histogram buckets integer samples (e.g. packet
 * latencies) for percentile queries.
 */

#ifndef FBFLY_SIM_STATS_H
#define FBFLY_SIM_STATS_H

#include <cstdint>
#include <vector>

namespace fbfly
{

/**
 * Online mean / variance / extrema accumulator.
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Discard all samples. */
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return mean_ * static_cast<double>(count_); }

    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bucket histogram of non-negative integer samples.
 *
 * Samples at or above the bucket count land in the final (overflow)
 * bucket; percentile queries therefore saturate at the top bucket.
 */
class Histogram
{
  public:
    /** @param num_buckets number of unit-width buckets (>= 1). */
    explicit Histogram(std::size_t num_buckets = 1024);

    /** Record one sample. */
    void add(std::uint64_t x);

    /** Discard all samples. */
    void reset();

    std::uint64_t count() const { return count_; }

    /** Number of samples in bucket @p b. */
    std::uint64_t bucket(std::size_t b) const { return buckets_.at(b); }

    std::size_t numBuckets() const { return buckets_.size(); }

    /**
     * Smallest value v such that at least @p p of the samples are <= v.
     *
     * @param p percentile in (0, 1].
     */
    std::uint64_t percentile(double p) const;

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
};

} // namespace fbfly

#endif // FBFLY_SIM_STATS_H
