/**
 * @file
 * Statistics collection for simulation experiments.
 *
 * RunningStats accumulates count/mean/variance/min/max with Welford's
 * online algorithm; Histogram buckets integer samples (e.g. packet
 * latencies) for percentile queries.
 *
 * Empty-accumulator convention: an accumulator with no samples has no
 * extrema, so min()/max() return NaN (not 0.0, which JSON output
 * would serialize as a real observation).  Consumers that need a
 * sentinel-free check should test count() == 0.
 */

#ifndef FBFLY_SIM_STATS_H
#define FBFLY_SIM_STATS_H

#include <cstdint>
#include <limits>
#include <vector>

namespace fbfly
{

/**
 * Online mean / variance / extrema accumulator.
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /**
     * Merge another accumulator into this one.
     *
     * Any operand may be empty: merging an empty accumulator is a
     * no-op, and merging into an empty accumulator copies the other
     * side exactly (count, moments and extrema).
     */
    void merge(const RunningStats &other);

    /** Discard all samples. */
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Smallest sample; NaN when no samples were added. */
    double min() const
    {
        return count_ ? min_
                      : std::numeric_limits<double>::quiet_NaN();
    }
    /** Largest sample; NaN when no samples were added. */
    double max() const
    {
        return count_ ? max_
                      : std::numeric_limits<double>::quiet_NaN();
    }
    double sum() const { return mean_ * static_cast<double>(count_); }

    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Histogram of non-negative integer samples with unit-width buckets.
 *
 * The bucket array grows geometrically (powers of two) to cover the
 * largest sample seen, so percentile() is exact — a sample of 5000
 * lands in bucket 5000, not in a saturating overflow bucket.  Growth
 * is capped at maxBuckets(); samples at or beyond the cap are counted
 * in an explicit overflow tally together with the largest overflowed
 * value, and percentile queries that land in the overflow region
 * return that maximum (an upper bound) instead of silently clamping
 * to the top bucket.
 */
class Histogram
{
  public:
    /** Growth cap default: 2^20 unit buckets (8 MiB of counters). */
    static constexpr std::size_t kDefaultMaxBuckets =
        std::size_t{1} << 20;

    /**
     * @param num_buckets initial number of unit-width buckets (>= 1);
     *        the array grows past this on demand.
     * @param max_buckets growth cap (>= num_buckets is not required;
     *        the cap also bounds the initial size).
     */
    explicit Histogram(std::size_t num_buckets = 1024,
                       std::size_t max_buckets = kDefaultMaxBuckets);

    /** Record one sample. */
    void add(std::uint64_t x);

    /** Discard all samples.  Buckets grown past the construction
     *  size are released back to the allocator (a single latency
     *  outlier must not pin megabytes of counters across
     *  measurement windows). */
    void reset();

    std::uint64_t count() const { return count_; }

    /** Number of samples in bucket @p b (0 for unallocated buckets). */
    std::uint64_t bucket(std::size_t b) const
    {
        return b < buckets_.size() ? buckets_[b] : 0;
    }

    /** Currently allocated buckets (grows with the samples). */
    std::size_t numBuckets() const { return buckets_.size(); }

    /** Growth cap, in unit buckets. */
    std::size_t maxBuckets() const { return maxBuckets_; }

    /** Samples at or beyond the growth cap. */
    std::uint64_t overflowCount() const { return overflow_; }

    /** Largest sample recorded (0 when empty). */
    std::uint64_t maxSample() const { return maxSample_; }

    /**
     * Smallest value v such that at least @p p of the samples are
     * <= v.  Exact for all samples below the growth cap; queries that
     * land among overflowed samples return maxSample().
     *
     * @param p percentile in (0, 1].
     */
    std::uint64_t percentile(double p) const;

  private:
    std::vector<std::uint64_t> buckets_;
    /** Construction-time bucket count; reset() shrinks back to it. */
    std::size_t initialBuckets_;
    std::size_t maxBuckets_;
    std::uint64_t count_ = 0;
    /** Samples >= maxBuckets_. */
    std::uint64_t overflow_ = 0;
    std::uint64_t maxSample_ = 0;
};

/**
 * Flat summary of one distribution — the shape the observability
 * layer publishes as MetricsRegistry gauges (docs/OBSERVABILITY.md).
 * NaN fields follow the empty-accumulator convention above (and
 * serialize as null in the fbfly-sweep-v1 JSON).
 */
struct DistSummary
{
    std::uint64_t count = 0;
    double mean = std::numeric_limits<double>::quiet_NaN();
    double stddev = std::numeric_limits<double>::quiet_NaN();
    double min = std::numeric_limits<double>::quiet_NaN();
    double max = std::numeric_limits<double>::quiet_NaN();
    double p50 = std::numeric_limits<double>::quiet_NaN();
    double p99 = std::numeric_limits<double>::quiet_NaN();
};

/**
 * Summarize a Welford accumulator (moments/extrema) together with its
 * matching histogram (percentiles).  Either source may be empty; an
 * empty source leaves its fields NaN (count comes from @p rs).
 */
DistSummary summarize(const RunningStats &rs, const Histogram &hist);

} // namespace fbfly

#endif // FBFLY_SIM_STATS_H
