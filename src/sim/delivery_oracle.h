/**
 * @file
 * Delivery oracle — end-to-end exactly-once delivery checking.
 *
 * The link-layer retry protocol (network/channel.h) claims that any
 * transient corruption or erasure on the wire is absorbed below the
 * network layer: every packet still arrives exactly once, in per-flow
 * FIFO order, with its payload intact.  The oracle checks that claim
 * end to end, independently of the mechanism under test: it
 * fingerprints every measured packet at injection and verifies each
 * ejection against the ledger, classifying failures as
 *
 *  - **drop**: a tracked packet never ejected (beyond the drops the
 *    router layer itself reported, e.g. unreachable destinations
 *    under a fail-stop fault set);
 *  - **duplicate**: the same packet ejected more than once;
 *  - **reorder**: a packet overtaking an earlier injection of the
 *    same (src, dst) flow.  Reorders are always *counted*, but they
 *    dirty the report only when the routing algorithm promises
 *    per-flow FIFO (RoutingAlgorithm::preservesFlowOrder) — adaptive
 *    and non-minimal algorithms (UGAL, VAL, adaptive Clos) reorder
 *    same-flow packets even at a zero error rate, inherently, by
 *    routing them through different intermediates;
 *  - **corruption**: an ejected packet whose identity fields no
 *    longer match its injection fingerprint (or an ejection that
 *    matches no tracked packet at all).
 *
 * A clean report from a run with nonzero error injection is the
 * acceptance evidence that the retry protocol works; a clean report
 * at zero error rate guards against oracle false positives.
 *
 * One oracle serves one Network (wired via NetworkConfig::oracle);
 * the sweep engine gives each load point its own network and oracle,
 * so there is no cross-thread sharing.
 */

#ifndef FBFLY_SIM_DELIVERY_ORACLE_H
#define FBFLY_SIM_DELIVERY_ORACLE_H

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/types.h"
#include "network/flit.h"

namespace fbfly
{

/**
 * Outcome of an end-to-end delivery audit.
 */
struct OracleReport
{
    /** Packets fingerprinted at injection. */
    std::uint64_t tracked = 0;
    /** Tracked packets ejected exactly once with matching
     *  fingerprint. */
    std::uint64_t delivered = 0;
    /** Tracked packets never ejected (drain ended without them). */
    std::uint64_t outstanding = 0;
    /** Drops the router layer accounted for (unreachable /
     *  truncated packets under fail-stop faults). */
    std::uint64_t expectedDropped = 0;
    /** Outstanding packets *beyond* the expected drops — silent
     *  losses the network cannot explain. */
    std::uint64_t dropped = 0;
    /** Ejections of an already-delivered packet. */
    std::uint64_t duplicates = 0;
    /** Deliveries overtaking an earlier same-flow injection. */
    std::uint64_t reorders = 0;
    /** Fingerprint mismatches or ejections of unknown packets. */
    std::uint64_t corruptions = 0;
    /**
     * True when the run's routing algorithm promises per-flow FIFO
     * delivery (RoutingAlgorithm::preservesFlowOrder): reorders then
     * count as violations.  False for adaptive / non-minimal routing,
     * whose multipath reorders are inherent — still reported above,
     * but advisory.
     */
    bool orderEnforced = false;

    /** True when delivery was exactly-once and uncorrupted — and, if
     *  the routing promises order, in per-flow FIFO order. */
    bool clean() const
    {
        return dropped == 0 && duplicates == 0 && corruptions == 0 &&
               (!orderEnforced || reorders == 0);
    }

    /** One-line human-readable summary. */
    std::string summary() const;
};

/**
 * Packet ledger: fingerprints at injection, audits at ejection.
 */
class DeliveryOracle
{
  public:
    DeliveryOracle() = default;

    /** Record a measured packet entering the network (head flit at
     *  the source terminal). */
    void onInject(const Flit &head);

    /** Audit a measured packet leaving the network (tail flit at the
     *  destination terminal). */
    void onEject(const Flit &tail);

    /**
     * Final audit.
     *
     * @param expected_dropped measured packets the router layer
     *        reported dropping (NetworkStats::measuredDropped);
     *        that many missing packets are explained, anything
     *        beyond is a silent drop.
     * @param drained true when the run drained every measured packet
     *        out of the network (delivered or dropped).  When false
     *        (saturated or stalled runs cut off with packets still
     *        in flight) outstanding packets cannot be classified, so
     *        the `dropped` category reports 0 and only duplicates /
     *        reorders / corruptions remain meaningful.
     * @param order_enforced true when the routing algorithm promises
     *        per-flow FIFO (RoutingAlgorithm::preservesFlowOrder):
     *        reorders then dirty the report instead of being
     *        advisory.
     */
    OracleReport report(std::uint64_t expected_dropped = 0,
                        bool drained = true,
                        bool order_enforced = false) const;

    /** Packets tracked so far. */
    std::uint64_t tracked() const { return tracked_; }

  private:
    struct Entry
    {
        std::uint64_t fingerprint;
        /** Injection order within the packet's (src, dst) flow. */
        std::uint64_t flowSeq;
        std::uint64_t flow;
        bool delivered = false;
    };

    static std::uint64_t fingerprint(const Flit &f);
    static std::uint64_t flowKey(const Flit &f);

    std::unordered_map<PacketId, Entry> packets_;
    /** Per-flow injection counters. */
    std::unordered_map<std::uint64_t, std::uint64_t> flowInjected_;
    /** Per-flow highest delivered flowSeq watermark (+1). */
    std::unordered_map<std::uint64_t, std::uint64_t> flowWatermark_;

    std::uint64_t tracked_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t duplicates_ = 0;
    std::uint64_t reorders_ = 0;
    std::uint64_t corruptions_ = 0;
};

} // namespace fbfly

#endif // FBFLY_SIM_DELIVERY_ORACLE_H
