#include "sim/liveness.h"

#include <algorithm>
#include <sstream>

#include "common/log.h"
#include "network/channel.h"
#include "network/network.h"
#include "network/router.h"
#include "network/terminal.h"
#include "obs/trace.h"

namespace fbfly
{

const char *
toString(StallClass c)
{
    switch (c) {
    case StallClass::kNone:
        return "none";
    case StallClass::kDeadlock:
        return "deadlock";
    case StallClass::kStarvation:
        return "starvation";
    case StallClass::kUnreachable:
        return "unreachable";
    case StallClass::kKernelBug:
        return "kernel-bug";
    }
    return "?";
}

const char *
toString(RecoveryPolicy p)
{
    switch (p) {
    case RecoveryPolicy::kAbort:
        return "abort";
    case RecoveryPolicy::kKillVictim:
        return "kill-victim";
    case RecoveryPolicy::kEscapeDrain:
        return "escape-drain";
    }
    return "?";
}

namespace
{

/**
 * Iterative Tarjan over the lane wait-for graph.  comp[v] is the SCC
 * id of lane v; SCCs are numbered in reverse-topological order, but
 * the classifier only cares about membership and size.
 */
struct SccResult
{
    std::vector<int> comp;
    int count = 0;
};

SccResult
stronglyConnectedComponents(const std::vector<std::vector<int>> &adj)
{
    const int n = static_cast<int>(adj.size());
    SccResult res;
    res.comp.assign(static_cast<std::size_t>(n), -1);
    std::vector<int> index(static_cast<std::size_t>(n), -1);
    std::vector<int> low(static_cast<std::size_t>(n), 0);
    std::vector<char> onStack(static_cast<std::size_t>(n), 0);
    std::vector<int> stack;
    struct Frame
    {
        int v;
        std::size_t child;
    };
    std::vector<Frame> frames;
    int next = 0;
    for (int s = 0; s < n; ++s) {
        if (index[static_cast<std::size_t>(s)] != -1)
            continue;
        frames.push_back({s, 0});
        index[static_cast<std::size_t>(s)] = next;
        low[static_cast<std::size_t>(s)] = next;
        ++next;
        stack.push_back(s);
        onStack[static_cast<std::size_t>(s)] = 1;
        while (!frames.empty()) {
            Frame &f = frames.back();
            const auto fv = static_cast<std::size_t>(f.v);
            if (f.child < adj[fv].size()) {
                const int w = adj[fv][f.child++];
                const auto wi = static_cast<std::size_t>(w);
                if (index[wi] == -1) {
                    index[wi] = next;
                    low[wi] = next;
                    ++next;
                    stack.push_back(w);
                    onStack[wi] = 1;
                    frames.push_back({w, 0});
                } else if (onStack[wi]) {
                    low[fv] = std::min(low[fv], index[wi]);
                }
            } else {
                const int v = f.v;
                const auto vi = static_cast<std::size_t>(v);
                frames.pop_back();
                if (!frames.empty()) {
                    const auto pi =
                        static_cast<std::size_t>(frames.back().v);
                    low[pi] = std::min(low[pi], low[vi]);
                }
                if (low[vi] == index[vi]) {
                    for (;;) {
                        const int w = stack.back();
                        stack.pop_back();
                        onStack[static_cast<std::size_t>(w)] = 0;
                        res.comp[static_cast<std::size_t>(w)] =
                            res.count;
                        if (w == v)
                            break;
                    }
                    ++res.count;
                }
            }
        }
    }
    return res;
}

} // namespace

StallDiagnosis
analyzeStall(const Network &net)
{
    StallDiagnosis d;
    const Cycle now = net.now();
    d.cycle = now;

    // (1) Kernel bug: a component with actionable work but no wake
    // pending in the ActiveSet can never run again — everything below
    // assumes the kernel at least *offered* each component a turn.
    const ActiveSet &as = net.activeSet();
    for (std::uint32_t c = 0; c < as.size(); ++c) {
        if (!net.componentHasActionableWork(c, now))
            continue;
        if (as.anyWakePending(c))
            continue;
        d.cls = StallClass::kKernelBug;
        d.strandedComponent = c;
        return d;
    }

    const Topology &topo = net.topologyRef();
    const int R = net.numRouters();
    const auto N = static_cast<NodeId>(net.numNodes());
    const int V = net.numVcs();
    const auto &arcs = net.arcList();
    const auto A = static_cast<std::int64_t>(arcs.size());
    const bool bypass = net.packetSize() == 1;

    // Lane ids: inter-router arc a, VC v -> a * V + v; injection
    // channel of node n -> (A + n) * V + v.  A lane names the
    // downstream input-unit buffer the transmitter's credits track.
    const auto L = static_cast<int>((A + N) * V);

    // (router, input port) -> base lane feeding it (-1: ejection-only
    // or unwired), and (router, output port) -> outgoing arc index
    // (-1: ejection port, which has infinite credits).
    std::vector<std::vector<std::int64_t>> feed(
        static_cast<std::size_t>(R));
    std::vector<std::vector<std::int64_t>> outArc(
        static_cast<std::size_t>(R));
    for (RouterId r = 0; r < R; ++r) {
        const int ports =
            net.router(r).numPorts();
        feed[static_cast<std::size_t>(r)].assign(
            static_cast<std::size_t>(ports), -1);
        outArc[static_cast<std::size_t>(r)].assign(
            static_cast<std::size_t>(ports), -1);
    }
    for (std::int64_t a = 0; a < A; ++a) {
        const Topology::Arc &arc = arcs[static_cast<std::size_t>(a)];
        feed[static_cast<std::size_t>(arc.dst)]
            [static_cast<std::size_t>(arc.dstPort)] = a * V;
        outArc[static_cast<std::size_t>(arc.src)]
              [static_cast<std::size_t>(arc.srcPort)] = a;
    }
    for (NodeId n = 0; n < N; ++n)
        feed[static_cast<std::size_t>(topo.injectionRouter(n))]
            [static_cast<std::size_t>(topo.injectionPort(n))] =
                (A + n) * V;

    std::vector<std::vector<int>> adj(static_cast<std::size_t>(L));
    std::vector<char> laneOccupied(static_cast<std::size_t>(L), 0);

    auto addEdge = [&](std::int64_t from, std::int64_t to) {
        adj[static_cast<std::size_t>(from)].push_back(
            static_cast<int>(to));
        ++d.graphEdges;
    };

    // (2) Scan every input unit for blocked/unrouted packet heads and
    // add one wait-for edge per head blocked on an exhausted (but
    // alive) credit lane.
    for (RouterId r = 0; r < R; ++r) {
        const Router &rt = net.router(r);
        for (PortId p = 0; p < rt.numPorts(); ++p) {
            const std::int64_t laneBase =
                feed[static_cast<std::size_t>(r)]
                    [static_cast<std::size_t>(p)];
            for (VcId v = 0; v < V; ++v) {
                const InputUnit &in = rt.inputUnit(p, v);
                if (in.buf.empty())
                    continue;
                if (laneBase >= 0)
                    laneOccupied[static_cast<std::size_t>(laneBase +
                                                          v)] = 1;

                auto noteHead = [&](const Flit &f, bool routed,
                                    PortId op, VcId ov) {
                    StuckHead h;
                    h.router = r;
                    h.port = p;
                    h.vc = v;
                    h.packet = f.packet;
                    h.dst = f.dst;
                    if (!routed) {
                        h.unrouted = true;
                        d.stuckHeads.push_back(h);
                        return;
                    }
                    const bool alive = rt.outputAlive(op);
                    h.deadOutput = !alive;
                    bool blocked = !alive;
                    if (alive) {
                        const std::int64_t a =
                            outArc[static_cast<std::size_t>(r)]
                                  [static_cast<std::size_t>(op)];
                        if (a >= 0) {
                            bool ownerConflict = false;
                            if (!bypass) {
                                // Wormhole: the output VC may be
                                // held by another input unit whose
                                // tail has not passed yet.
                                const int owner = rt.vcOwner(op, ov);
                                const int self =
                                    static_cast<int>(p) * V + v;
                                ownerConflict =
                                    owner != -1 && owner != self;
                            }
                            const int cr = rt.credits(op, ov);
                            blocked = cr <= 0 || ownerConflict;
                            if (blocked) {
                                h.waitsOnArc = a;
                                h.waitsOnVc = ov;
                                if (laneBase >= 0)
                                    addEdge(laneBase + v, a * V + ov);
                            }
                        }
                        // a < 0: ejection port, infinite credits —
                        // not blocked.
                    }
                    if (blocked)
                        d.stuckHeads.push_back(h);
                };

                if (bypass) {
                    for (int i = 0; i < in.buf.size(); ++i) {
                        const Flit &f = in.buf.at(i);
                        if (!f.head)
                            continue;
                        noteHead(f, f.routed, f.outPort, f.outVc);
                    }
                } else {
                    if (in.dropping)
                        continue; // mid-truncation, draining
                    const Flit &front = in.buf.front();
                    if (in.routed)
                        noteHead(front, true, in.outPort, in.outVc);
                    else if (front.head)
                        noteHead(front, false, kInvalid, kInvalid);
                    // Body flit at the front with no route and no
                    // dropping flag cannot happen between steps.
                }
            }
        }
    }
    d.graphLanes = static_cast<int>(std::count(
        laneOccupied.begin(), laneOccupied.end(), char{1}));

    // (3) Cycle detection over the wait-for graph.
    const SccResult scc = stronglyConnectedComponents(adj);
    std::vector<int> sccSize(static_cast<std::size_t>(scc.count), 0);
    for (int l = 0; l < L; ++l)
        ++sccSize[static_cast<std::size_t>(
            scc.comp[static_cast<std::size_t>(l)])];
    int cyclic = -1;
    for (int l = 0; l < L && cyclic < 0; ++l) {
        const int comp = scc.comp[static_cast<std::size_t>(l)];
        if (sccSize[static_cast<std::size_t>(comp)] >= 2) {
            cyclic = comp;
            break;
        }
        for (const int w : adj[static_cast<std::size_t>(l)])
            if (w == l) {
                cyclic = comp; // self-loop: a one-lane cycle
                break;
            }
    }
    if (cyclic >= 0) {
        d.cls = StallClass::kDeadlock;
        for (int l = 0; l < L; ++l) {
            if (scc.comp[static_cast<std::size_t>(l)] != cyclic)
                continue;
            CycleMember m;
            m.vc = l % V;
            const std::int64_t laneIdx = l / V;
            if (laneIdx < A) {
                const Topology::Arc &arc =
                    arcs[static_cast<std::size_t>(laneIdx)];
                m.arc = laneIdx;
                m.src = arc.src;
                m.dst = arc.dst;
                m.dstPort = arc.dstPort;
                m.occupancy =
                    net.router(arc.dst)
                        .inputUnit(arc.dstPort, m.vc)
                        .buf.size();
                m.credits =
                    net.router(arc.src).credits(arc.srcPort, m.vc);
            } else {
                m.node = static_cast<NodeId>(laneIdx - A);
                m.dst = topo.injectionRouter(m.node);
                m.dstPort = topo.injectionPort(m.node);
                m.occupancy = net.router(m.dst)
                                  .inputUnit(m.dstPort, m.vc)
                                  .buf.size();
                m.credits = net.terminal(m.node).credits(m.vc);
            }
            // The blocked head this lane holds, and the edge it
            // follows inside the cycle.
            for (const StuckHead &h : d.stuckHeads)
                if (h.router == m.dst && h.port == m.dstPort &&
                    h.vc == m.vc) {
                    m.headPacket = h.packet;
                    m.headDst = h.dst;
                    break;
                }
            for (const int w : adj[static_cast<std::size_t>(l)])
                if (scc.comp[static_cast<std::size_t>(w)] == cyclic) {
                    m.waitsOnArc = w / V;
                    m.waitsOnVc = w % V;
                    break;
                }
            d.cycleMembers.push_back(m);
        }
        if (TraceSink *tr = net.traceSink())
            for (const CycleMember &m : d.cycleMembers)
                if (m.arc >= 0)
                    tr->record(
                        TraceEventType::kDeadlock, now,
                        net.arcTrack(
                            static_cast<std::size_t>(m.arc)),
                        Flit{}, m.vc, m.credits);
        return d;
    }

    // (4) Unreachable destinations: BFS over alive arcs from each
    // stuck head's router to its packet's ejection router.
    std::vector<std::vector<RouterId>> radj(
        static_cast<std::size_t>(R));
    for (std::int64_t a = 0; a < A; ++a)
        if (!net.arcChannel(static_cast<std::size_t>(a)).dead()) {
            const Topology::Arc &arc =
                arcs[static_cast<std::size_t>(a)];
            radj[static_cast<std::size_t>(arc.src)].push_back(
                arc.dst);
        }
    std::vector<std::vector<char>> reach(
        static_cast<std::size_t>(R)); // lazily filled per source
    auto reachable = [&](RouterId from, RouterId to) {
        std::vector<char> &vis =
            reach[static_cast<std::size_t>(from)];
        if (vis.empty()) {
            vis.assign(static_cast<std::size_t>(R), 0);
            vis[static_cast<std::size_t>(from)] = 1;
            std::vector<RouterId> q{from};
            for (std::size_t i = 0; i < q.size(); ++i)
                for (const RouterId w :
                     radj[static_cast<std::size_t>(q[i])])
                    if (!vis[static_cast<std::size_t>(w)]) {
                        vis[static_cast<std::size_t>(w)] = 1;
                        q.push_back(w);
                    }
        }
        return vis[static_cast<std::size_t>(to)] != 0;
    };
    for (StuckHead &h : d.stuckHeads) {
        if (h.dst == kInvalid)
            continue;
        if (!reachable(h.router, topo.ejectionRouter(h.dst)) ||
            net.ejectionChannel(h.dst).dead()) {
            h.unreachable = true;
            ++d.unreachableHeads;
        }
    }
    if (d.unreachableHeads > 0) {
        d.cls = StallClass::kUnreachable;
        return d;
    }

    // (5) Blocked heads with no cycle and reachable destinations:
    // starvation/livelock.  No stuck heads at all: the watchdog fired
    // on slow-but-live traffic (e.g. deep retransmission backoff).
    d.cls = d.stuckHeads.empty() ? StallClass::kNone
                                 : StallClass::kStarvation;
    return d;
}

RecoveryReport
applyRecovery(Network &net, const StallDiagnosis &d,
              RecoveryPolicy policy)
{
    RecoveryReport rep;
    rep.policy = policy;
    if (policy == RecoveryPolicy::kAbort)
        return rep;

    const Cycle now = net.now();
    TraceSink *tr = net.traceSink();

    auto killAt = [&](RouterId r, PortId p, VcId v, PacketId pkt) {
        const int flits = net.router(r).killVictimPacket(p, v, now);
        if (flits == 0)
            return false;
        rep.flitsKilled += flits;
        ++rep.packetsKilled;
        rep.actions.push_back({r, p, v, pkt, flits});
        if (tr != nullptr)
            tr->record(TraceEventType::kRecovery, now,
                       net.routerTrack(r), Flit{}, p, flits);
        return true;
    };

    if (policy == RecoveryPolicy::kEscapeDrain) {
        for (RouterId r = 0; r < net.numRouters(); ++r)
            net.router(r).invalidateRoutes();
        rep.routesInvalidated = true;
        if (tr != nullptr && net.numRouters() > 0)
            tr->record(TraceEventType::kRecovery, now,
                       net.routerTrack(0), Flit{}, -1, 0);
    } else { // kKillVictim
        switch (d.cls) {
        case StallClass::kDeadlock:
            // One victim breaks the cycle; the survivors drain
            // through the freed buffer.
            for (const CycleMember &m : d.cycleMembers)
                if (killAt(m.dst, m.dstPort, m.vc, m.headPacket))
                    break;
            break;
        case StallClass::kUnreachable:
            // Every disconnected head blocks its lane forever; kill
            // them all.
            for (const StuckHead &h : d.stuckHeads)
                if (h.unreachable)
                    killAt(h.router, h.port, h.vc, h.packet);
            break;
        case StallClass::kStarvation:
            if (!d.stuckHeads.empty()) {
                const StuckHead &h = d.stuckHeads.front();
                killAt(h.router, h.port, h.vc, h.packet);
            }
            break;
        case StallClass::kKernelBug:
        case StallClass::kNone:
            // Nothing to kill — the restart's full re-wake below is
            // itself the repair for a missed wake.
            break;
        }
    }

    net.restartAfterRecovery();
    return rep;
}

std::string
StallDiagnosis::summary() const
{
    std::ostringstream os;
    os << "liveness diagnosis @ cycle " << cycle << ": "
       << fbfly::toString(cls) << "\n"
       << "  wait-for graph: " << graphLanes
       << " occupied lanes, " << graphEdges << " credit-wait edges, "
       << stuckHeads.size() << " stuck heads\n";
    switch (cls) {
    case StallClass::kKernelBug:
        os << "  stranded component " << strandedComponent
           << ": actionable work but no pending wake (active-set "
              "wake contract violated)\n";
        break;
    case StallClass::kDeadlock:
        os << "  cyclic VC dependency, " << cycleMembers.size()
           << " lanes:\n";
        for (const CycleMember &m : cycleMembers) {
            if (m.arc >= 0)
                os << "    arc " << m.arc << " (r" << m.src << "->r"
                   << m.dst << " port " << m.dstPort << ")";
            else
                os << "    inj node " << m.node << " (->r" << m.dst
                   << ")";
            os << " vc " << m.vc << ": occupancy " << m.occupancy
               << ", credits " << m.credits << ", head pkt "
               << m.headPacket << " -> node " << m.headDst
               << ", waits on ";
            if (m.waitsOnArc >= 0)
                os << "arc " << m.waitsOnArc << " vc " << m.waitsOnVc;
            else
                os << "?";
            os << "\n";
        }
        break;
    case StallClass::kUnreachable:
        os << "  " << unreachableHeads
           << " head(s) with disconnected destinations:\n";
        for (const StuckHead &h : stuckHeads)
            if (h.unreachable)
                os << "    r" << h.router << " port " << h.port
                   << " vc " << h.vc << ": pkt " << h.packet
                   << " -> node " << h.dst
                   << (h.deadOutput ? " (dead output)" : "") << "\n";
        break;
    case StallClass::kStarvation: {
        int listed = 0;
        for (const StuckHead &h : stuckHeads) {
            if (listed++ >= 8) {
                os << "    ... ("
                   << (stuckHeads.size() -
                       static_cast<std::size_t>(listed) + 1)
                   << " more)\n";
                break;
            }
            os << "    r" << h.router << " port " << h.port << " vc "
               << h.vc << ": pkt " << h.packet << " -> node " << h.dst
               << (h.unrouted ? " (unrouted)" : "")
               << (h.deadOutput ? " (dead output)" : "");
            if (h.waitsOnArc >= 0)
                os << ", waits on arc " << h.waitsOnArc << " vc "
                   << h.waitsOnVc;
            os << "\n";
        }
        break;
    }
    case StallClass::kNone:
        os << "  no blocked heads found; the watchdog horizon may be "
              "too short for this configuration\n";
        break;
    }
    return os.str();
}

std::string
livenessJson(const LivenessConfig &cfg,
             const std::vector<StallDiagnosis> &diags,
             const std::vector<RecoveryReport> &recs)
{
    std::ostringstream os;
    os << "\"liveness\": {\"policy\": \"" << toString(cfg.policy)
       << "\", \"max_recoveries\": " << cfg.maxRecoveries
       << ", \"stalls\": " << diags.size()
       << ", \"recoveries\": " << recs.size();
    int flits = 0;
    int packets = 0;
    for (const RecoveryReport &r : recs) {
        flits += r.flitsKilled;
        packets += r.packetsKilled;
    }
    os << ", \"flits_killed\": " << flits
       << ", \"packets_killed\": " << packets << ", \"diagnoses\": [";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const StallDiagnosis &d = diags[i];
        if (i > 0)
            os << ", ";
        os << "{\"class\": \"" << toString(d.cls)
           << "\", \"cycle\": " << d.cycle
           << ", \"graph_lanes\": " << d.graphLanes
           << ", \"graph_edges\": " << d.graphEdges
           << ", \"stuck_heads\": " << d.stuckHeads.size()
           << ", \"unreachable_heads\": " << d.unreachableHeads
           << ", \"stranded_component\": " << d.strandedComponent
           << ", \"cycle_members\": [";
        for (std::size_t j = 0; j < d.cycleMembers.size(); ++j) {
            const CycleMember &m = d.cycleMembers[j];
            if (j > 0)
                os << ", ";
            os << "{\"arc\": " << m.arc << ", \"node\": " << m.node
               << ", \"src\": " << m.src << ", \"dst\": " << m.dst
               << ", \"vc\": " << m.vc
               << ", \"occupancy\": " << m.occupancy
               << ", \"credits\": " << m.credits
               << ", \"head_packet\": " << m.headPacket
               << ", \"waits_on_arc\": " << m.waitsOnArc
               << ", \"waits_on_vc\": " << m.waitsOnVc << "}";
        }
        os << "]}";
    }
    os << "], \"recovery_actions\": [";
    bool first = true;
    for (const RecoveryReport &r : recs) {
        if (r.routesInvalidated) {
            if (!first)
                os << ", ";
            first = false;
            os << "{\"kind\": \"escape-drain\"}";
        }
        for (const RecoveryAction &a : r.actions) {
            if (!first)
                os << ", ";
            first = false;
            os << "{\"kind\": \"kill\", \"router\": " << a.router
               << ", \"port\": " << a.port << ", \"vc\": " << a.vc
               << ", \"packet\": " << a.packet
               << ", \"flits_killed\": " << a.flitsKilled << "}";
        }
    }
    os << "]}";
    return os.str();
}

} // namespace fbfly
