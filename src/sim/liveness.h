/**
 * @file
 * Liveness subsystem: stall classification, diagnosis and recovery.
 *
 * The forward-progress watchdog (NetworkConfig::watchdogCycles) can
 * only say "nothing moved for N cycles".  This module says *why*, by
 * constructing the VC/channel wait-for graph from the stalled
 * network's ground truth — blocked packet heads, exhausted credits,
 * wormhole VC ownership, dead ports, pending link-layer
 * retransmission state — and running SCC cycle detection over it:
 *
 *  - **true deadlock**: a cycle of credit-exhausted VC lanes, each
 *    holding buffered flits whose heads wait on the next lane in the
 *    cycle.  No flit in the cycle can ever move;
 *  - **unreachable destination**: a blocked or unrouted head whose
 *    destination has no alive path from where the packet sits
 *    (post-fault disconnection under an oblivious algorithm that
 *    neither reroutes nor drops);
 *  - **kernel bug**: a component with actionable work but no pending
 *    wake in the ActiveSet — the active-set kernel's wake contract
 *    was violated and work is stranded (see
 *    NetworkConfig::verifyWakeContract for the per-cycle shadow
 *    verifier that catches these as they happen);
 *  - **starvation/livelock**: none of the above — progress is
 *    possible but not taken (arbitration pathologies, livelocked
 *    misrouting).
 *
 * A diagnosis can then drive one of three recovery policies.  Killed
 * victims are accounted exactly like routing drops (credits returned
 * upstream, drop counters advanced), so conservation invariants hold
 * and the DeliveryOracle sees them as expected losses; the harness
 * surfaces a recovered run as LoadPointStatus::kDeadlockRecovered
 * with the structured diagnosis in stallDump() text, fbfly-sweep-v1
 * JSON ("liveness" object) and Perfetto trace events
 * (kDeadlock/kRecovery).  See docs/FAULTS.md ("Liveness").
 */

#ifndef FBFLY_SIM_LIVENESS_H
#define FBFLY_SIM_LIVENESS_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace fbfly
{

class Network;

/** What a stall diagnosis concluded. */
enum class StallClass
{
    /** No stall found (pending work exists but nothing is blocked —
     *  e.g. the watchdog horizon was simply too short). */
    kNone = 0,
    /** Cyclic VC dependency: a credit cycle no flit can escape. */
    kDeadlock,
    /** Progress is possible but not taken. */
    kStarvation,
    /** A blocked packet's destination is disconnected from it. */
    kUnreachable,
    /** A component has actionable work but no pending wake: the
     *  active-set kernel's wake contract was violated. */
    kKernelBug,
};

const char *toString(StallClass c);

/** Recovery policy applied after a diagnosis. */
enum class RecoveryPolicy
{
    /** No recovery: report the diagnosis and end the run (the
     *  pre-liveness behavior, now with a classified dump). */
    kAbort = 0,
    /** Kill a victim packet to break the wait: one cycle member for
     *  a deadlock, every disconnected head for an unreachable
     *  stall.  Victims fold into drop stats and the oracle's
     *  expected losses. */
    kKillVictim,
    /** Invalidate every not-yet-traversing route decision and
     *  re-wake the network: frozen escape/hot-potato decisions are
     *  re-decided against the current topology (the same mechanism
     *  repairs apply; lossless). */
    kEscapeDrain,
};

const char *toString(RecoveryPolicy p);

/** Harness-level liveness knobs (experiment/churn configs). */
struct LivenessConfig
{
    RecoveryPolicy policy = RecoveryPolicy::kAbort;
    /** Recovery attempts before giving up and reporting kStalled. */
    int maxRecoveries = 4;
    /** Also run the classifier every this-many cycles while the
     *  network is not progressing, instead of waiting for the full
     *  watchdog horizon; recovery triggers early only on a definite
     *  (cyclic) deadlock.  0: diagnose on watchdog fire only. */
    Cycle samplePeriod = 0;
};

/** One blocked (or unrouted) packet head found by the analyzer. */
struct StuckHead
{
    RouterId router = kInvalid;
    PortId port = kInvalid; ///< input port the head is buffered at
    VcId vc = kInvalid;     ///< input VC
    PacketId packet = 0;
    NodeId dst = kInvalid;
    /** True: no route decision (waiting on the routing algorithm);
     *  false: routed but blocked on credits/ownership/a dead port. */
    bool unrouted = false;
    /** Routed to an output whose port has been killed. */
    bool deadOutput = false;
    /** Destination disconnected from this router over alive arcs. */
    bool unreachable = false;
    /** Inter-router arc of the lane the head waits on for credits,
     *  or -1 when the wait is not a live credit wait. */
    std::int64_t waitsOnArc = -1;
    VcId waitsOnVc = kInvalid;
};

/** One VC lane in a diagnosed wait cycle. */
struct CycleMember
{
    /** Inter-router arc index, or -1 for an injection lane. */
    std::int64_t arc = -1;
    /** Injection lane's node (arc == -1). */
    NodeId node = kInvalid;
    /** Transmitting router (kInvalid for an injection lane). */
    RouterId src = kInvalid;
    /** Receiving router (the holder of the waited-on buffer). */
    RouterId dst = kInvalid;
    /** Receiving router's input port. */
    PortId dstPort = kInvalid;
    VcId vc = kInvalid;
    /** Downstream input-unit buffer occupancy (the held resource). */
    int occupancy = 0;
    /** Upstream credit level (0 in a closed credit cycle). */
    int credits = 0;
    /** Blocked head waiting at the downstream unit. */
    PacketId headPacket = 0;
    NodeId headDst = kInvalid;
    /** The arc/VC lane that head waits on (the next cycle edge). */
    std::int64_t waitsOnArc = -1;
    VcId waitsOnVc = kInvalid;
};

/** Structured result of one stall diagnosis. */
struct StallDiagnosis
{
    StallClass cls = StallClass::kNone;
    /** Cycle the diagnosis ran. */
    Cycle cycle = 0;
    /** Wait-for graph size: lanes holding buffered flits. */
    int graphLanes = 0;
    /** Credit-wait edges between live lanes. */
    int graphEdges = 0;
    /** All blocked/unrouted heads found (victim candidates). */
    std::vector<StuckHead> stuckHeads;
    /** kDeadlock: the lanes of the first wait cycle found. */
    std::vector<CycleMember> cycleMembers;
    /** kKernelBug: stranded component id (routers [0, R),
     *  terminals [R, R + N)), else -1. */
    std::int64_t strandedComponent = -1;
    /** kUnreachable: heads whose destinations are disconnected. */
    int unreachableHeads = 0;

    /** Human-readable diagnosis (appended to stallDump() output). */
    std::string summary() const;
};

/** What a recovery attempt did. */
struct RecoveryAction
{
    RouterId router = kInvalid;
    PortId port = kInvalid;
    VcId vc = kInvalid;
    PacketId packet = 0;
    int flitsKilled = 0;
};

/** Aggregate result of one applyRecovery() call. */
struct RecoveryReport
{
    RecoveryPolicy policy = RecoveryPolicy::kAbort;
    int flitsKilled = 0;
    int packetsKilled = 0;
    bool routesInvalidated = false;
    std::vector<RecoveryAction> actions;

    /** True when the attempt plausibly unblocked the network (it
     *  killed something, re-decided routes, or re-woke a stranded
     *  component). */
    bool acted() const
    {
        return packetsKilled > 0 || routesInvalidated;
    }
};

/**
 * Diagnose a stalled network: build the wait-for graph over VC lanes
 * (inter-router arcs and injection channels, one lane per VC), run
 * SCC cycle detection, and classify (see StallClass).  Read-only
 * except for kDeadlock Perfetto trace events on cycle-member lanes
 * when a trace sink is attached.  Call between steps — typically
 * when Network::stalled() turns true.
 */
StallDiagnosis analyzeStall(const Network &net);

/**
 * Apply @p policy to a diagnosed stall.  kAbort does nothing.  The
 * other policies end with Network::restartAfterRecovery(), which
 * folds victim accounting into the aggregate stats (conservation
 * invariants and DeliveryOracle expected losses stay consistent),
 * resets the watchdog and re-wakes every component.  For a
 * kKernelBug diagnosis the re-wake itself is the repair — a missed
 * wake is recovered by re-scheduling everything.
 */
RecoveryReport applyRecovery(Network &net, const StallDiagnosis &d,
                             RecoveryPolicy policy);

/**
 * The fbfly-sweep-v1 "liveness" JSON extension for one run:
 * `"liveness": {...}` (no trailing comma/brace), summarizing the
 * configured policy, every diagnosis and every recovery.  Empty
 * vectors produce a minimal object; callers splice the fragment only
 * when at least one stall was diagnosed.
 */
std::string livenessJson(const LivenessConfig &cfg,
                         const std::vector<StallDiagnosis> &diags,
                         const std::vector<RecoveryReport> &recs);

} // namespace fbfly

#endif // FBFLY_SIM_LIVENESS_H
