#include "sim/delivery_oracle.h"

#include <sstream>

namespace fbfly
{

namespace
{

/** SplitMix64-style finalizer for fingerprint mixing. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

std::string
OracleReport::summary() const
{
    std::ostringstream os;
    os << "delivery oracle: tracked=" << tracked
       << " delivered=" << delivered << " outstanding=" << outstanding
       << " (expected_dropped=" << expectedDropped << ")"
       << " dropped=" << dropped << " duplicates=" << duplicates
       << " reorders=" << reorders
       << (orderEnforced ? " (order enforced)" : " (order advisory)")
       << " corruptions=" << corruptions
       << (clean() ? " [clean]" : " [VIOLATIONS]");
    return os.str();
}

std::uint64_t
DeliveryOracle::fingerprint(const Flit &f)
{
    // Identity fields shared by every flit of a packet; any
    // corruption that survives the link layer perturbs at least one
    // of them (or the packet id used to look the entry up).
    std::uint64_t h = mix64(f.packet ^ 0x6f7261636c65ULL);
    h = mix64(h ^ static_cast<std::uint64_t>(
                      static_cast<std::uint32_t>(f.src)));
    h = mix64(h ^ (static_cast<std::uint64_t>(
                       static_cast<std::uint32_t>(f.dst))
                   << 1));
    h = mix64(h ^ f.createTime);
    h = mix64(h ^ static_cast<std::uint64_t>(
                      static_cast<std::uint32_t>(f.packetSize)));
    return h;
}

std::uint64_t
DeliveryOracle::flowKey(const Flit &f)
{
    return (static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(f.src))
            << 32) |
           static_cast<std::uint64_t>(
               static_cast<std::uint32_t>(f.dst));
}

void
DeliveryOracle::onInject(const Flit &head)
{
    const std::uint64_t flow = flowKey(head);
    Entry e;
    e.fingerprint = fingerprint(head);
    e.flow = flow;
    e.flowSeq = flowInjected_[flow]++;
    packets_.emplace(head.packet, e);
    ++tracked_;
}

void
DeliveryOracle::onEject(const Flit &tail)
{
    const auto it = packets_.find(tail.packet);
    if (it == packets_.end()) {
        // An ejection that matches nothing we injected: its packet
        // id (or measured flag) was mangled in transit.
        ++corruptions_;
        return;
    }
    Entry &e = it->second;
    if (e.delivered) {
        ++duplicates_;
        return;
    }
    if (fingerprint(tail) != e.fingerprint) {
        ++corruptions_;
        return;
    }
    e.delivered = true;
    ++delivered_;
    // In-order per flow: the watermark holds 1 + the highest flowSeq
    // delivered so far; a delivery below it was overtaken by a later
    // injection of the same (src, dst) flow.
    auto &watermark = flowWatermark_[e.flow];
    if (e.flowSeq < watermark)
        ++reorders_;
    else
        watermark = e.flowSeq + 1;
}

OracleReport
DeliveryOracle::report(std::uint64_t expected_dropped, bool drained,
                       bool order_enforced) const
{
    OracleReport rep;
    rep.orderEnforced = order_enforced;
    rep.tracked = tracked_;
    rep.delivered = delivered_;
    rep.duplicates = duplicates_;
    rep.reorders = reorders_;
    rep.corruptions = corruptions_;
    rep.expectedDropped = expected_dropped;
    for (const auto &[id, e] : packets_) {
        if (!e.delivered)
            ++rep.outstanding;
    }
    rep.dropped = drained && rep.outstanding > expected_dropped
                      ? rep.outstanding - expected_dropped
                      : 0;
    return rep;
}

} // namespace fbfly
