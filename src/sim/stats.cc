#include "sim/stats.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace fbfly
{

void
RunningStats::add(double x)
{
    ++count_;
    if (count_ == 1) {
        mean_ = min_ = max_ = x;
        m2_ = 0.0;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStats::merge(const RunningStats &other)
{
    // Empty operands first: an empty accumulator has meaningless
    // internal extrema (min_/max_ = 0.0), so it must never take part
    // in the combination arithmetic below.
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(std::size_t num_buckets, std::size_t max_buckets)
    : buckets_(std::clamp<std::size_t>(num_buckets, 1,
                                       std::max<std::size_t>(
                                           max_buckets, 1)),
               0),
      initialBuckets_(buckets_.size()),
      maxBuckets_(std::max<std::size_t>(max_buckets, 1))
{
}

void
Histogram::add(std::uint64_t x)
{
    ++count_;
    maxSample_ = count_ == 1 ? x : std::max(maxSample_, x);
    if (x >= static_cast<std::uint64_t>(maxBuckets_)) {
        ++overflow_;
        return;
    }
    const auto idx = static_cast<std::size_t>(x);
    if (idx >= buckets_.size()) {
        // Geometric growth: double until the sample fits, so a
        // sequence of increasing samples costs amortized O(1) each.
        std::size_t grown = buckets_.size() * 2;
        while (grown <= idx)
            grown *= 2;
        buckets_.resize(std::min(grown, maxBuckets_), 0);
    }
    ++buckets_[idx];
}

void
Histogram::reset()
{
    if (buckets_.size() > initialBuckets_) {
        // Release geometrically-grown storage, not just the counts:
        // one latency outlier otherwise pins megabytes of buckets
        // for the rest of a sweep.  Swapping in a fresh vector
        // actually frees the memory (shrink_to_fit is advisory).
        std::vector<std::uint64_t>(initialBuckets_, 0)
            .swap(buckets_);
    } else {
        std::fill(buckets_.begin(), buckets_.end(), 0);
    }
    count_ = 0;
    overflow_ = 0;
    maxSample_ = 0;
}

std::uint64_t
Histogram::percentile(double p) const
{
    FBFLY_ASSERT(p > 0.0 && p <= 1.0, "percentile out of range");
    if (count_ == 0)
        return 0;
    const std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(count_)));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        seen += buckets_[b];
        if (seen >= target)
            return b;
    }
    // The query lands among the samples beyond the growth cap; the
    // only exact statistic retained for them is the maximum.
    return maxSample_;
}

DistSummary
summarize(const RunningStats &rs, const Histogram &hist)
{
    DistSummary s;
    s.count = rs.count();
    if (rs.count() > 0) {
        s.mean = rs.mean();
        s.stddev = rs.stddev();
        s.min = rs.min();
        s.max = rs.max();
    }
    if (hist.count() > 0) {
        s.p50 = static_cast<double>(hist.percentile(0.50));
        s.p99 = static_cast<double>(hist.percentile(0.99));
    }
    return s;
}

} // namespace fbfly
