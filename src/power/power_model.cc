#include "power/power_model.h"

namespace fbfly
{

double
PowerModel::signalPower(LinkLocale locale, bool direct) const
{
    if (locale == LinkLocale::GlobalCable)
        return linkGlobalW;
    return direct ? linkLocalW : linkGlobalLocalW;
}

PowerBreakdown
PowerModel::power(const Inventory &inv) const
{
    PowerBreakdown out;
    for (const auto &g : inv.routers) {
        out.switchPower += static_cast<double>(g.count) *
                           switchPowerW * g.signalsPerRouter /
                           baselineRouterSignals;
    }
    for (const auto &g : inv.links) {
        out.linkPower += static_cast<double>(g.count) *
                         g.signalsPerLink *
                         signalPower(g.locale, inv.direct);
    }
    return out;
}

} // namespace fbfly
