/**
 * @file
 * Power model (paper Section 5.3, Table 5).
 *
 * Total network power = P_switch + P_link.  P_switch is proportional
 * to the router's total bandwidth (the signals it actually uses);
 * P_link depends on the medium each SerDes drives.  Direct topologies
 * (flattened butterfly, hypercube) dedicate SerDes to local links and
 * pay only P_link_ll (40 mW/signal) for them; indirect topologies
 * (butterfly, folded Clos) must provision global-capable SerDes
 * everywhere and pay P_link_gl (160 mW) even on local runs.  Global
 * cables always cost P_link_gg (200 mW).
 */

#ifndef FBFLY_POWER_POWER_MODEL_H
#define FBFLY_POWER_POWER_MODEL_H

#include "cost/topology_cost.h"

namespace fbfly
{

/** Priced power of an inventory, in watts. */
struct PowerBreakdown
{
    double switchPower = 0.0;
    double linkPower = 0.0;
    double total() const { return switchPower + linkPower; }
};

/**
 * Table 5 power parameters and the per-inventory evaluator.
 */
struct PowerModel
{
    /** Switch power of a fully-used radix-64 router, W. */
    double switchPowerW = 40.0;
    /** Per-signal SerDes power driving a global cable, W. */
    double linkGlobalW = 0.200;
    /** Per-signal power of a global-capable SerDes on a local link
     *  (20% below global: equalizer/driver savings), W. */
    double linkGlobalLocalW = 0.160;
    /** Per-signal power of a dedicated short-reach SerDes, W. */
    double linkLocalW = 0.040;

    /** Signals of a fully-used radix-64 router (both directions). */
    double baselineRouterSignals = 64 * 3.0 * 2.0;

    /** Power of one signal on the given medium.
     *
     *  @param direct whether the topology can dedicate local SerDes.
     */
    double signalPower(LinkLocale locale, bool direct) const;

    /** Total power of an inventory. */
    PowerBreakdown power(const Inventory &inv) const;
};

} // namespace fbfly

#endif // FBFLY_POWER_POWER_MODEL_H
