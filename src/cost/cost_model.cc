#include "cost/cost_model.h"

#include <cmath>

#include "common/log.h"

namespace fbfly
{

double
CostModel::electricalSignalCost(double meters) const
{
    FBFLY_ASSERT(meters >= 0.0, "negative cable length");
    double cost = cableOverheadPerSignal + cablePerSignalMeter * meters;
    if (meters > criticalLengthM) {
        // One repeater per critical length; its cost is dominated by
        // the extra connector overhead (Figure 7(b)).
        const int repeaters = static_cast<int>(
            std::ceil(meters / criticalLengthM)) - 1;
        cost += repeaters * cableOverheadPerSignal;
    }
    return cost;
}

double
CostModel::signalCost(LinkLocale locale, double meters) const
{
    switch (locale) {
      case LinkLocale::Backplane:
        return backplanePerSignal;
      case LinkLocale::LocalCable:
      case LinkLocale::GlobalCable:
        return electricalSignalCost(meters);
    }
    return 0.0;
}

double
CostModel::opticalCrossoverLength() const
{
    // Repeatered electrical cost grows ~ (slope + overhead/critical)
    // per meter; find the first meter where optics win.
    double len = criticalLengthM;
    while (electricalSignalCost(len) < opticalPerSignal &&
           len < 10000.0) {
        len += 1.0;
    }
    return len;
}

double
CostModel::routerCost(double signals_used) const
{
    FBFLY_ASSERT(signals_used >= 0.0, "negative signal count");
    return routerDevelopmentCost +
           routerChipCost * signals_used / baselineRouterSignals();
}

} // namespace fbfly
