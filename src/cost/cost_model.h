/**
 * @file
 * Component cost model (paper Section 4.1, Tables 2 and 3).
 *
 * Network cost = router cost + link cost.  Router cost is amortized
 * development plus silicon that scales with the pins (signals)
 * actually used — this is how the paper "appropriately adjusts" the
 * hypercube's router cost.  Link cost depends on where the link lives
 * in the packaging hierarchy: backplane traces, electrical cables
 * whose cost is linear in length, repeaters beyond the 6 m critical
 * length (Figure 7), or optical cables for very long runs.
 */

#ifndef FBFLY_COST_COST_MODEL_H
#define FBFLY_COST_COST_MODEL_H

namespace fbfly
{

/**
 * Where a link lives in the packaging hierarchy.
 */
enum class LinkLocale
{
    /** Backplane trace within a chassis (< 1 m). */
    Backplane,
    /** Short cable between nearby cabinets (~2 m). */
    LocalCable,
    /** Global cable across the machine-room floor. */
    GlobalCable,
};

/**
 * Dollar costs of network components (Table 2) and the cable cost
 * model of Figure 7.
 */
struct CostModel
{
    /** Recurring silicon cost of a fully-used radix-64 router. */
    double routerChipCost = 90.0;
    /** Development cost amortized per router part ($6M / 20k). */
    double routerDevelopmentCost = 300.0;

    /** Backplane cost per differential signal. */
    double backplanePerSignal = 1.95;
    /** Electrical-cable overhead (connectors/shielding/assembly)
     *  per signal — the y-intercept of Figure 7(a). */
    double cableOverheadPerSignal = 3.72;
    /** Electrical-cable copper cost per signal-meter — the slope of
     *  Figure 7(a). */
    double cablePerSignalMeter = 0.81;
    /** Optical cable cost per signal (not used by default, as in the
     *  paper). */
    double opticalPerSignal = 220.0;
    /** Longest cable drivable at full rate; repeaters beyond. */
    double criticalLengthM = 6.0;

    /** Baseline router radix whose full use costs routerChipCost. */
    int baselineRadix = 64;
    /** Differential pairs per port per direction (Table 3). */
    double signalsPerPort = 3.0;

    /**
     * Cost of one electrical signal of @p meters, inserting a
     * repeater (≈ one extra connector overhead) per critical length
     * exceeded — the stepped model of Figure 7(b).
     */
    double electricalSignalCost(double meters) const;

    /** Cost of one signal of the given locale and length. */
    double signalCost(LinkLocale locale, double meters) const;

    /**
     * Length beyond which an optical signal ($220) undercuts a
     * repeatered electrical one — the "optical technology still
     * remains relatively expensive" trade-off of Section 4.1.
     * With Table 2 numbers this is ~150 m, far past any cable in the
     * studied systems, which is why the comparison uses electrical
     * signalling with repeaters throughout.
     */
    double opticalCrossoverLength() const;

    /**
     * Cost of one router using @p signals_used of its pins, where a
     * full radix-64 router uses baselineRadix * signalsPerPort *
     * 2 directions.
     */
    double routerCost(double signals_used) const;

    /** Signals on a fully-used baseline router (both directions). */
    double baselineRouterSignals() const
    {
        return baselineRadix * signalsPerPort * 2.0;
    }
};

} // namespace fbfly

#endif // FBFLY_COST_COST_MODEL_H
