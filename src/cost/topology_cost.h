/**
 * @file
 * Per-topology hardware inventories and pricing (paper Section 4.3).
 *
 * An Inventory lists the routers (with the signals they actually use)
 * and the unidirectional links (with packaging locale and length) of
 * a network built from radix-64 routers at constant capacity
 * (saturation throughput 1.0 on uniform random traffic):
 *
 *  - flattened butterfly: n' chosen per Section 5.1.2; dimension-1
 *    links are short local cables, higher dimensions are global
 *    cables (top two dimensions span the 2-D floor, E/3 average;
 *    deeper dimensions span only their subsystem);
 *  - conventional butterfly: ceil(log64 N) stages; a 2-stage network
 *    keeps its single wiring column local, 3-stage wiring is global;
 *  - folded Clos: the non-blocking (capacity-1) configuration the
 *    paper charges the Clos for — 2N(L-1) unidirectional global
 *    links routed to central cabinets, with the 1K->2K stage step;
 *  - hypercube: one router per node with half-bandwidth channels
 *    (1.5 signals/link) so capacity matches, per-dimension geometric
 *    cable lengths;
 *  - generalized hypercube: the Section 2.3 straw man, one
 *    full-bandwidth router per node.
 *
 * Links are counted unidirectionally: the paper's N=1K example gives
 * 31*32 = 992 inter-router links for the flattened butterfly vs 2048
 * for the folded Clos, both reproduced exactly by these builders.
 * Terminal connections contribute 2 unidirectional backplane links
 * per node (inject + eject).
 */

#ifndef FBFLY_COST_TOPOLOGY_COST_H
#define FBFLY_COST_TOPOLOGY_COST_H

#include <cstdint>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "cost/packaging.h"

namespace fbfly
{

/** A set of identical links. */
struct LinkGroup
{
    LinkLocale locale = LinkLocale::Backplane;
    /** Cable length in meters (includes vertical overhead);
     *  meaningless for backplane traces. */
    double lengthM = 0.0;
    /** Unidirectional link count. */
    std::int64_t count = 0;
    /** Differential signals per link (1.5 for the half-bandwidth
     *  hypercube channels). */
    double signalsPerLink = 3.0;
    std::string label;
};

/** A set of identical routers. */
struct RouterGroup
{
    std::int64_t count = 0;
    /** Signals used per router, both directions. */
    double signalsPerRouter = 0.0;
    std::string label;
};

/** Everything a topology instance is built from. */
struct Inventory
{
    std::string topology;
    std::int64_t numNodes = 0;
    /** Direct topologies can dedicate SerDes to local links
     *  (Section 5.3). */
    bool direct = false;

    std::vector<RouterGroup> routers;
    std::vector<LinkGroup> links;

    std::int64_t totalRouters() const;
    /** Unidirectional links, optionally without terminal links. */
    std::int64_t totalLinks(bool include_terminal = true) const;
    /** Signal-count-weighted average cable length over actual cables
     *  (local + global; backplane and terminal links excluded). */
    double averageCableLength() const;
};

/** Priced inventory. */
struct CostBreakdown
{
    double routerCost = 0.0;
    double linkCost = 0.0;
    double total() const { return routerCost + linkCost; }
    double linkFraction() const
    {
        const double t = total();
        return t > 0.0 ? linkCost / t : 0.0;
    }
};

/**
 * Builds and prices inventories for the four compared topologies.
 */
class TopologyCostModel
{
  public:
    explicit TopologyCostModel(CostModel cost = {},
                               PackagingModel pkg = {});

    const CostModel &cost() const { return cost_; }
    const PackagingModel &packaging() const { return pkg_; }

    /** @name Inventory builders (radix-64 building blocks) @{ */

    /** Flattened butterfly with the smallest workable n'
     *  (Section 5.1.2). */
    Inventory flattenedButterfly(std::int64_t n) const;

    /** Flattened butterfly at a forced dimensionality, radix-64
     *  building blocks with partially-populated dimensions. */
    Inventory flattenedButterflyDims(std::int64_t n,
                                     int n_prime) const;

    /** Exact k-ary n-flat (N = k^n, radix k' = n(k-1)+1 routers) —
     *  the Table 4 configurations priced in Figure 13. */
    Inventory kAryNFlat(int k, int n) const;

    /** Conventional butterfly (k-ary n-fly from 64x64 crossbars). */
    Inventory conventionalButterfly(std::int64_t n) const;

    /** Non-blocking folded Clos (capacity 1). */
    Inventory foldedClos(std::int64_t n) const;

    /** Binary hypercube with half-bandwidth channels (capacity 1). */
    Inventory hypercube(std::int64_t n) const;

    /** Generalized hypercube with ~balanced per-dimension radices
     *  and one node per router (Section 2.3). */
    Inventory generalizedHypercube(std::int64_t n, int dims) const;

    /** Balanced dragonfly(p, a, h): g = a*h + 1 fully-connected
     *  groups of a fully-connected routers (topology/dragonfly.h).
     *  Intra-group channels are local when the group fits a cabinet
     *  pair; inter-group channels span the floor (E/3 average). */
    Inventory dragonfly(int p, int a, int h) const;

    /** Slim Fly MMS graph: 2q^2 routers, p terminals each
     *  (topology/slim_fly.h).  MMS wiring has no exploitable
     *  locality, so every inter-router channel is charged as a
     *  global cable (E/3 average). */
    Inventory slimFly(int q, int p) const;

    /** @} */

    /** Price an inventory with the Table 2 component costs. */
    CostBreakdown price(const Inventory &inv) const;

    /** Folded-Clos level count for @p n nodes (paper calibration:
     *  1K fits in 2 stages, 2K..32K need 3). */
    static int closLevels(std::int64_t n);

    /** Conventional-butterfly stage count for @p n nodes. */
    static int butterflyStages(std::int64_t n);

  private:
    /** A short cable between adjacent cabinets. */
    LinkGroup localLink(std::int64_t count, double signals,
                        const std::string &label) const;

    /** A global cable of @p raw_length_m plus vertical overhead. */
    LinkGroup globalLink(double raw_length_m, std::int64_t count,
                         double signals,
                         const std::string &label) const;

    /** Shared dimension pricing for flattened-butterfly builders. */
    void addFbflyDims(Inventory &inv, std::int64_t n,
                      std::int64_t routers, int terminals,
                      const std::vector<int> &sizes) const;

    CostModel cost_;
    PackagingModel pkg_;
};

} // namespace fbfly

#endif // FBFLY_COST_TOPOLOGY_COST_H
