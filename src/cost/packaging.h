/**
 * @file
 * Packaging and cable-length model (paper Section 4.2, Table 3).
 *
 * Systems are packaged as a 2-D floor of cabinets; the edge of the
 * layout is E = sqrt(N/D) with D the deployment density (the Table 3
 * figure of 75 nodes/m^2 already folds in the 2x row-spacing factor
 * applied to the cabinet depth: 128 / (0.57 * 1.44 * 2) ≈ 78/m^2).
 * Every actual cable run adds 2 m of vertical overhead.
 *
 * Average global cable lengths: flattened butterfly and conventional
 * butterfly E/3 (random offset along one floor axis), folded Clos E/4
 * (all cables to a central router cabinet), hypercube a geometric
 * series per dimension averaging ~(E-1)/log2(E).
 */

#ifndef FBFLY_COST_PACKAGING_H
#define FBFLY_COST_PACKAGING_H

#include <cstdint>

namespace fbfly
{

/**
 * Table 3 packaging assumptions and the Section 4.2 length model.
 */
struct PackagingModel
{
    /** Nodes per cabinet (Cray BlackWidow-style). */
    int nodesPerCabinet = 128;
    /** Deployment density, nodes per square meter of machine-room
     *  floor (includes row spacing). */
    double densityNodesPerM2 = 75.0;
    /** Vertical cable run added to every cable (1 m at each end). */
    double cableOverheadM = 2.0;
    /** Length of a "very short" cable between adjacent cabinets. */
    double localCableM = 2.0;
    /** Longest run still served by a backplane trace. */
    double backplaneReachM = 1.0;

    /** Edge length E of the 2-D cabinet layout for @p n nodes. */
    double edgeLength(std::int64_t n) const;

    /** Average global cable length (no overhead): butterfly family,
     *  E/3. */
    double avgGlobalButterfly(std::int64_t n) const;

    /** Average global cable length (no overhead): folded Clos, E/4
     *  (central routing cabinet). */
    double avgGlobalClos(std::int64_t n) const;

    /** Average cable length (no overhead) across hypercube
     *  dimensions, ≈ (E-1)/log2(E). */
    double avgGlobalHypercube(std::int64_t n) const;

    /** Maximum cable length: butterfly family E, Clos/hypercube
     *  E/2. */
    double maxGlobalButterfly(std::int64_t n) const;
    double maxGlobalClos(std::int64_t n) const;

    /** A dimension's cable run stays local (cabinet-pair) when its
     *  subsystem is small enough. */
    bool subsystemIsLocal(std::int64_t subsystem_nodes) const
    {
        return subsystem_nodes <= 2 * nodesPerCabinet;
    }

    /**
     * Raw cable length (no vertical overhead) of a flattened-
     * butterfly dimension whose subsystem holds @p subsystem_nodes
     * of a machine of @p total_nodes.  Local dimensions use short
     * cables; the top two dimensions span the full floor's
     * rows/columns (E/3); dimensions in between span their own
     * subsystem.  Shared by the cost model and the Section 5.2
     * wire-delay model.
     */
    double fbflyDimCableLength(std::int64_t total_nodes,
                               std::int64_t subsystem_nodes,
                               bool top_two) const;
};

} // namespace fbfly

#endif // FBFLY_COST_PACKAGING_H
