#include "cost/packaging.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace fbfly
{

double
PackagingModel::edgeLength(std::int64_t n) const
{
    FBFLY_ASSERT(n >= 1, "edgeLength of empty system");
    return std::sqrt(static_cast<double>(n) / densityNodesPerM2);
}

double
PackagingModel::avgGlobalButterfly(std::int64_t n) const
{
    return edgeLength(n) / 3.0;
}

double
PackagingModel::avgGlobalClos(std::int64_t n) const
{
    return edgeLength(n) / 4.0;
}

double
PackagingModel::avgGlobalHypercube(std::int64_t n) const
{
    const double e = edgeLength(n);
    if (e <= 2.0)
        return e / 2.0;
    return (e - 1.0) / std::log2(e);
}

double
PackagingModel::maxGlobalButterfly(std::int64_t n) const
{
    return edgeLength(n);
}

double
PackagingModel::maxGlobalClos(std::int64_t n) const
{
    return edgeLength(n) / 2.0;
}

double
PackagingModel::fbflyDimCableLength(std::int64_t total_nodes,
                                    std::int64_t subsystem_nodes,
                                    bool top_two) const
{
    if (subsystemIsLocal(subsystem_nodes))
        return localCableM;
    if (top_two)
        return avgGlobalButterfly(total_nodes);
    return avgGlobalButterfly(
        std::min(subsystem_nodes, total_nodes));
}

} // namespace fbfly
