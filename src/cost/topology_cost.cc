#include "cost/topology_cost.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "common/radix.h"
#include "topology/flattened_butterfly.h"

namespace fbfly
{

std::int64_t
Inventory::totalRouters() const
{
    std::int64_t total = 0;
    for (const auto &g : routers)
        total += g.count;
    return total;
}

std::int64_t
Inventory::totalLinks(bool include_terminal) const
{
    std::int64_t total = 0;
    for (const auto &g : links) {
        if (!include_terminal && g.label == "terminal")
            continue;
        total += g.count;
    }
    return total;
}

double
Inventory::averageCableLength() const
{
    double len = 0.0;
    double signals = 0.0;
    for (const auto &g : links) {
        if (g.locale == LinkLocale::Backplane)
            continue;
        const double s =
            static_cast<double>(g.count) * g.signalsPerLink;
        len += s * g.lengthM;
        signals += s;
    }
    return signals > 0.0 ? len / signals : 0.0;
}

TopologyCostModel::TopologyCostModel(CostModel cost,
                                     PackagingModel pkg)
    : cost_(cost), pkg_(pkg)
{
}

LinkGroup
TopologyCostModel::localLink(std::int64_t count, double signals,
                             const std::string &label) const
{
    return {LinkLocale::LocalCable, pkg_.localCableM, count, signals,
            label};
}

LinkGroup
TopologyCostModel::globalLink(double raw_length_m,
                              std::int64_t count, double signals,
                              const std::string &label) const
{
    return {LinkLocale::GlobalCable,
            raw_length_m + pkg_.cableOverheadM, count, signals,
            label};
}

void
TopologyCostModel::addFbflyDims(Inventory &inv, std::int64_t n,
                                std::int64_t routers, int terminals,
                                const std::vector<int> &sizes) const
{
    // Dimension d connects the like elements of sizes[d-1] subsystems
    // of dimensions 1..d-1.  A dimension whose subsystem fits in a
    // cabinet pair uses short local cables (the paper's dimension-1
    // packaging); the top two dimensions are mapped across the
    // rows/columns of the full 2-D floor (average E/3, Section 4.2);
    // dimensions in between span only their own subsystem.
    const int n_prime = static_cast<int>(sizes.size());
    std::int64_t subsystem = terminals;
    for (int d = 1; d <= n_prime; ++d) {
        subsystem *= sizes[d - 1];
        if (sizes[d - 1] <= 1)
            continue;
        const std::int64_t count =
            routers * static_cast<std::int64_t>(sizes[d - 1] - 1);
        const std::string label = "dim" + std::to_string(d);
        if (pkg_.subsystemIsLocal(subsystem)) {
            inv.links.push_back(
                localLink(count, cost_.signalsPerPort, label));
            continue;
        }
        const double raw = pkg_.fbflyDimCableLength(
            n, subsystem, d >= n_prime - 1);
        inv.links.push_back(
            globalLink(raw, count, cost_.signalsPerPort, label));
    }
}

Inventory
TopologyCostModel::flattenedButterfly(std::int64_t n) const
{
    const int np = FlattenedButterfly::minDimsForRadix(
        cost_.baselineRadix, n);
    FBFLY_ASSERT(np > 0, "no flattened butterfly of ", n,
                 " nodes with radix-", cost_.baselineRadix,
                 " routers");
    return flattenedButterflyDims(n, np);
}

Inventory
TopologyCostModel::flattenedButterflyDims(std::int64_t n,
                                          int n_prime) const
{
    const int c = cost_.baselineRadix / (n_prime + 1);
    FBFLY_ASSERT(c >= 2, "radix too small for n' = ", n_prime);
    const std::int64_t routers = (n + c - 1) / c;

    // Split the routers into n' dimensions as evenly as possible,
    // each of size <= c (the butterfly-derived limit).
    std::vector<int> sizes(n_prime, 1);
    std::int64_t remaining = routers;
    for (int i = n_prime - 1; i >= 0; --i) {
        const double root = std::pow(
            static_cast<double>(remaining), 1.0 / (i + 1));
        int s = static_cast<int>(std::ceil(root - 1e-9));
        s = std::clamp(s, 1, c);
        sizes[i] = s;
        remaining = (remaining + s - 1) / s;
    }
    FBFLY_ASSERT(sizes[0] <= c, "dimension overflow");

    Inventory inv;
    inv.topology = "flattened butterfly (n'=" +
                   std::to_string(n_prime) + ")";
    inv.numNodes = n;
    inv.direct = true;

    int inter_ports = 0;
    for (const int s : sizes)
        inter_ports += s - 1;
    RouterGroup rg;
    rg.count = routers;
    rg.signalsPerRouter =
        (c + inter_ports) * cost_.signalsPerPort * 2.0;
    rg.label = "radix-" + std::to_string(c + inter_ports);
    inv.routers.push_back(rg);

    // Terminal links: inject + eject per node, backplane.
    inv.links.push_back({LinkLocale::Backplane, 0.0, 2 * n,
                         cost_.signalsPerPort, "terminal"});

    addFbflyDims(inv, n, routers, c, sizes);
    return inv;
}

Inventory
TopologyCostModel::kAryNFlat(int k, int n) const
{
    const std::int64_t nodes = ipow(k, n);
    const std::int64_t routers = ipow(k, n - 1);
    const int n_prime = n - 1;

    Inventory inv;
    inv.topology = std::to_string(k) + "-ary " + std::to_string(n) +
                   "-flat";
    inv.numNodes = nodes;
    inv.direct = true;

    RouterGroup rg;
    rg.count = routers;
    const int radix = n * (k - 1) + 1;
    rg.signalsPerRouter = radix * cost_.signalsPerPort * 2.0;
    rg.label = "radix-" + std::to_string(radix);
    inv.routers.push_back(rg);

    inv.links.push_back({LinkLocale::Backplane, 0.0, 2 * nodes,
                         cost_.signalsPerPort, "terminal"});

    addFbflyDims(inv, nodes, routers, k,
                 std::vector<int>(n_prime, k));
    return inv;
}

int
TopologyCostModel::butterflyStages(std::int64_t n)
{
    // 64x64 crossover routers: stages = ceil(log64 N).
    return std::max(1, ceilLog(n, 64));
}

Inventory
TopologyCostModel::conventionalButterfly(std::int64_t n) const
{
    const int k = cost_.baselineRadix;
    const int stages = butterflyStages(n);

    Inventory inv;
    inv.topology = "conventional butterfly (" +
                   std::to_string(stages) + "-stage)";
    inv.numNodes = n;
    inv.direct = false;

    RouterGroup rg;
    rg.count = stages * ((n + k - 1) / k);
    rg.signalsPerRouter = cost_.baselineRouterSignals();
    rg.label = "radix-" + std::to_string(k);
    inv.routers.push_back(rg);

    inv.links.push_back({LinkLocale::Backplane, 0.0, 2 * n,
                         cost_.signalsPerPort, "terminal"});

    if (stages >= 2) {
        // Inter-stage wiring spans the floor like the flattened
        // butterfly's channels it gives rise to (Section 4.2: same
        // Lmax and Lavg).
        if (n <= 2 * pkg_.nodesPerCabinet) {
            inv.links.push_back(localLink(
                static_cast<std::int64_t>(stages - 1) * n,
                cost_.signalsPerPort, "stage"));
        } else {
            inv.links.push_back(globalLink(
                pkg_.avgGlobalButterfly(n),
                static_cast<std::int64_t>(stages - 1) * n,
                cost_.signalsPerPort, "stage"));
        }
    }
    return inv;
}

int
TopologyCostModel::closLevels(std::int64_t n)
{
    // Paper calibration: a radix-64 folded Clos fits 1K nodes in 2
    // stages and needs a third from 2K to 32K (N_max(L) = 32^L for
    // L >= 2), a fourth beyond.
    if (n <= 64)
        return 1;
    int levels = 2;
    std::int64_t reach = 1024;
    while (reach < n) {
        reach *= 32;
        ++levels;
    }
    return levels;
}

Inventory
TopologyCostModel::foldedClos(std::int64_t n) const
{
    const int levels = closLevels(n);
    const int half = cost_.baselineRadix / 2;

    Inventory inv;
    inv.topology =
        "folded Clos (" + std::to_string(levels) + "-level)";
    inv.numNodes = n;
    inv.direct = false;

    // Levels 1..L-1: 32 down + 32 up; top level: 64 down.
    if (levels >= 2) {
        RouterGroup mid;
        mid.count = static_cast<std::int64_t>(levels - 1) *
                    ((n + half - 1) / half);
        mid.signalsPerRouter = cost_.baselineRouterSignals();
        mid.label = "leaf/middle";
        inv.routers.push_back(mid);
    }
    RouterGroup top;
    top.count = std::max<std::int64_t>(
        1, (n + cost_.baselineRadix - 1) / cost_.baselineRadix);
    top.signalsPerRouter = cost_.baselineRouterSignals();
    top.label = "top";
    inv.routers.push_back(top);

    inv.links.push_back({LinkLocale::Backplane, 0.0, 2 * n,
                         cost_.signalsPerPort, "terminal"});

    if (levels >= 2) {
        // 2N unidirectional links per level boundary, all routed to
        // central router cabinets (global, average E/4).
        inv.links.push_back(globalLink(
            pkg_.avgGlobalClos(n),
            2 * n * static_cast<std::int64_t>(levels - 1),
            cost_.signalsPerPort, "up/down"));
    }
    return inv;
}

Inventory
TopologyCostModel::hypercube(std::int64_t n) const
{
    const int dims = ceilLog(n, 2);
    FBFLY_ASSERT((std::int64_t{1} << dims) == n,
                 "hypercube requires a power-of-two node count");

    Inventory inv;
    inv.topology = std::to_string(dims) + "-cube";
    inv.numNodes = n;
    inv.direct = true;

    // Half-bandwidth channels (1.5 signals/link) hold capacity equal
    // to the other topologies; terminal stays full bandwidth.
    const double link_signals = cost_.signalsPerPort / 2.0;
    RouterGroup rg;
    rg.count = n;
    rg.signalsPerRouter =
        (dims * link_signals + cost_.signalsPerPort) * 2.0;
    rg.label = "radix-" + std::to_string(dims + 1);
    inv.routers.push_back(rg);

    inv.links.push_back({LinkLocale::Backplane, 0.0, 2 * n,
                         cost_.signalsPerPort, "terminal"});

    // Dimension d spans a 2^(d+1)-node subsystem; cable lengths form
    // the geometric series of Section 4.2.  Dimensions within a
    // cabinet pair use short cables (one router per node module, so
    // every link leaves its module through a cable).
    for (int d = 0; d < dims; ++d) {
        const std::int64_t span = std::int64_t{1} << (d + 1);
        const std::string label = "dim" + std::to_string(d);
        if (span <= 2 * pkg_.nodesPerCabinet) {
            inv.links.push_back(localLink(n, link_signals, label));
        } else {
            inv.links.push_back(globalLink(pkg_.edgeLength(span) / 2.0,
                                           n, link_signals, label));
        }
    }
    return inv;
}

Inventory
TopologyCostModel::generalizedHypercube(std::int64_t n,
                                        int dims) const
{
    FBFLY_ASSERT(dims >= 1, "GHC needs >= 1 dimension");

    // Near-balanced per-dimension radices with product >= n.
    std::vector<int> radices(dims, 1);
    std::int64_t remaining = n;
    for (int i = dims - 1; i >= 0; --i) {
        const double root = std::pow(
            static_cast<double>(remaining), 1.0 / (i + 1));
        const int s = std::max(
            2, static_cast<int>(std::ceil(root - 1e-9)));
        radices[i] = s;
        remaining = (remaining + s - 1) / s;
    }

    Inventory inv;
    inv.topology = "generalized hypercube";
    inv.numNodes = n;
    inv.direct = true;

    int inter_ports = 0;
    for (const int r : radices)
        inter_ports += r - 1;
    RouterGroup rg;
    rg.count = n;
    rg.signalsPerRouter =
        (inter_ports + 1) * cost_.signalsPerPort * 2.0;
    rg.label = "radix-" + std::to_string(inter_ports + 1);
    inv.routers.push_back(rg);

    inv.links.push_back({LinkLocale::Backplane, 0.0, 2 * n,
                         cost_.signalsPerPort, "terminal"});

    std::int64_t subsystem = 1;
    for (int d = 0; d < dims; ++d) {
        subsystem *= radices[d];
        const std::int64_t count =
            n * static_cast<std::int64_t>(radices[d] - 1);
        const std::string label = "dim" + std::to_string(d + 1);
        if (subsystem <= 2 * pkg_.nodesPerCabinet) {
            inv.links.push_back(
                localLink(count, cost_.signalsPerPort, label));
            continue;
        }
        const bool top_two = d >= dims - 2;
        const double raw = pkg_.avgGlobalButterfly(
            top_two ? n : std::min(subsystem, n));
        inv.links.push_back(
            globalLink(raw, count, cost_.signalsPerPort, label));
    }
    return inv;
}

Inventory
TopologyCostModel::dragonfly(int p, int a, int h) const
{
    FBFLY_ASSERT(p >= 1 && a >= 2 && h >= 1,
                 "bad dragonfly parameters");
    const int g = a * h + 1;
    const std::int64_t routers = static_cast<std::int64_t>(a) * g;
    const std::int64_t nodes = routers * p;
    const int radix = p + (a - 1) + h;

    Inventory inv;
    inv.topology = "dragonfly(" + std::to_string(p) + "," +
                   std::to_string(a) + "," + std::to_string(h) + ")";
    inv.numNodes = nodes;
    inv.direct = true;

    RouterGroup rg;
    rg.count = routers;
    rg.signalsPerRouter = radix * cost_.signalsPerPort * 2.0;
    rg.label = "radix-" + std::to_string(radix);
    inv.routers.push_back(rg);

    inv.links.push_back({LinkLocale::Backplane, 0.0, 2 * nodes,
                         cost_.signalsPerPort, "terminal"});

    // Intra-group complete graph: a(a-1) unidirectional links per
    // group, short cables while the group fits a cabinet pair.
    const std::int64_t local_count =
        routers * static_cast<std::int64_t>(a - 1);
    const std::int64_t group_nodes =
        static_cast<std::int64_t>(p) * a;
    if (pkg_.subsystemIsLocal(group_nodes)) {
        inv.links.push_back(
            localLink(local_count, cost_.signalsPerPort, "local"));
    } else {
        inv.links.push_back(globalLink(
            pkg_.avgGlobalButterfly(std::min(group_nodes, nodes)),
            local_count, cost_.signalsPerPort, "local"));
    }

    // Inter-group wiring: one bidirectional channel per group pair,
    // i.e. g(g-1) = routers*h unidirectional links across the floor.
    inv.links.push_back(globalLink(
        pkg_.avgGlobalButterfly(nodes),
        routers * static_cast<std::int64_t>(h),
        cost_.signalsPerPort, "global"));
    return inv;
}

Inventory
TopologyCostModel::slimFly(int q, int p) const
{
    FBFLY_ASSERT(q >= 5 && p >= 1, "bad Slim Fly parameters");
    const std::int64_t routers = 2 * static_cast<std::int64_t>(q) * q;
    const std::int64_t nodes = routers * p;
    const int net_radix = (3 * q - 1) / 2;
    const int radix = p + net_radix;

    Inventory inv;
    inv.topology = "slim fly (q=" + std::to_string(q) + ")";
    inv.numNodes = nodes;
    inv.direct = true;

    RouterGroup rg;
    rg.count = routers;
    rg.signalsPerRouter = radix * cost_.signalsPerPort * 2.0;
    rg.label = "radix-" + std::to_string(radix);
    inv.routers.push_back(rg);

    inv.links.push_back({LinkLocale::Backplane, 0.0, 2 * nodes,
                         cost_.signalsPerPort, "terminal"});

    // The MMS graph's algebraic wiring offers no cabinet locality to
    // exploit; every inter-router channel crosses the floor.
    inv.links.push_back(globalLink(pkg_.avgGlobalButterfly(nodes),
                                   routers * net_radix,
                                   cost_.signalsPerPort, "mms"));
    return inv;
}

CostBreakdown
TopologyCostModel::price(const Inventory &inv) const
{
    CostBreakdown out;
    for (const auto &g : inv.routers) {
        out.routerCost += static_cast<double>(g.count) *
                          cost_.routerCost(g.signalsPerRouter);
    }
    for (const auto &g : inv.links) {
        out.linkCost += static_cast<double>(g.count) *
                        g.signalsPerLink *
                        cost_.signalCost(g.locale, g.lengthM);
    }
    return out;
}

} // namespace fbfly
