#include "network/router.h"

#include <algorithm>

#include "common/log.h"
#include "obs/trace.h"

namespace fbfly
{

Router::Router(RouterId id, int num_ports, int num_vcs, int vc_depth,
               Rng rng, bool bypass)
    : id_(id), numPorts_(num_ports), numVcs_(num_vcs),
      vcDepth_(vc_depth), rng_(rng), bypass_(bypass)
{
    FBFLY_ASSERT(num_ports > 0 && num_vcs > 0 && vc_depth > 0,
                 "bad router geometry: ports=", num_ports,
                 " vcs=", num_vcs, " depth=", vc_depth);

    inputs_.resize(static_cast<std::size_t>(numPorts_) * numVcs_);
    for (auto &in : inputs_)
        in.buf = VcBuffer(vcDepth_);
    inputChannels_.assign(numPorts_, nullptr);
    outputs_.resize(numPorts_);
    inOccupiedList_.assign(inputs_.size(), 0);
    candidates_.resize(numPorts_);
    blockedTag_.assign(inputs_.size(), 0);
    aliveOut_.assign(numPorts_, 1);
}

void
Router::connectInput(PortId port, Channel *ch)
{
    FBFLY_ASSERT(port >= 0 && port < numPorts_, "input port range");
    FBFLY_ASSERT(inputChannels_[port] == nullptr,
                 "router ", id_, " input port ", port, " double-wired");
    inputChannels_[port] = ch;
}

void
Router::connectOutput(PortId port, Channel *ch, int downstream_depth)
{
    FBFLY_ASSERT(port >= 0 && port < numPorts_, "output port range");
    OutputUnit &ou = outputs_[port];
    FBFLY_ASSERT(ou.channel == nullptr,
                 "router ", id_, " output port ", port, " double-wired");
    ou.channel = ch;
    ou.downstreamDepth = downstream_depth;
    ou.credits.assign(numVcs_, downstream_depth);
    ou.vcOwner.assign(numVcs_, -1);
}

void
Router::markOccupied(int unit)
{
    if (!inOccupiedList_[unit]) {
        inOccupiedList_[unit] = 1;
        occupied_.push_back(unit);
    }
}

void
Router::receive(Cycle now)
{
    // Credits arrive on the channels this router transmits on; a
    // reliable channel's transmitter state machine (ack processing,
    // timeouts, retransmissions) advances here too, before this
    // cycle's new sends.
    for (auto &ou : outputs_) {
        if (ou.channel == nullptr)
            continue;
        if (ou.channel->needsTick(now))
            ou.channel->tick(now);
        if (!ou.channel->hasCreditArrival(now))
            continue;
        while (auto vc = ou.channel->receiveCredit(now)) {
            FBFLY_ASSERT(*vc >= 0 && *vc < numVcs_, "credit VC range");
            ++ou.credits[*vc];
            FBFLY_ASSERT(ou.credits[*vc] <= ou.downstreamDepth,
                         "credit overflow on router ", id_);
        }
    }

    // Flits arrive on input channels.
    for (PortId p = 0; p < numPorts_; ++p) {
        Channel *ch = inputChannels_[p];
        if (ch == nullptr || !ch->hasFlitArrival(now))
            continue;
        while (auto f = ch->receiveFlit(now)) {
            FBFLY_ASSERT(f->vc >= 0 && f->vc < numVcs_,
                         "arriving flit VC range");
            // The route decided at the previous hop is consumed.
            f->routed = false;
            f->outPort = kInvalid;
            f->outVc = kInvalid;
            const int unit = unitIndex(p, f->vc);
            inputs_[unit].buf.push(*f);
            ++bufferedFlits_;
            if (bypass_ && f->head) {
                ++unroutedFlits_;
                ++inputs_[unit].unrouted;
            }
            markOccupied(unit);
        }
    }
}

int
Router::routeAndTraverse(Cycle now, RoutingAlgorithm &algo,
                         bool sequential)
{
    // "Sufficient switch speedup": alternate routing and allocation
    // until the switch makes no further progress this cycle.  Output
    // channels self-limit to one flit per period via canSendFlit, so
    // link bandwidth is respected while input buffers drain freely.
    int moved = 0;
    for (;;) {
        moved += routePass(now, algo, sequential);
        const int granted = allocatePass(now);
        if (granted == 0)
            break;
        moved += granted;
    }
    return moved;
}

void
Router::accountDrop(const Flit &f, int unit, Cycle now)
{
    FBFLY_TRACE(trace_, TraceEventType::kDrop, now, traceTrack_, f);
    --bufferedFlits_;
    ++droppedFlits_;
    ++pendingDropFlits_;
    if (f.tail) {
        ++droppedPackets_;
        ++pendingDropPackets_;
        if (f.measured) {
            ++droppedMeasured_;
            ++pendingDropMeasured_;
        }
    }
    // The freed buffer slot's credit goes back upstream as usual.
    const PortId in_port = unit / numVcs_;
    const VcId in_vc = unit % numVcs_;
    if (inputChannels_[in_port] != nullptr)
        inputChannels_[in_port]->sendCredit(in_vc, now);
}

int
Router::routePass(Cycle now, RoutingAlgorithm &algo, bool sequential)
{
    int dropped = 0;

    // Drain wormhole packets truncated by a link failure or an
    // unreachable drop: their remaining flits are dropped (and
    // credited) as they surface.
    if (!bypass_ && droppingUnits_ > 0) {
        for (std::size_t i = 0; i < occupied_.size(); ++i) {
            InputUnit &in = inputs_[occupied_[i]];
            while (in.dropping && !in.buf.empty()) {
                const Flit f = in.buf.pop();
                FBFLY_ASSERT(!f.head,
                             "head flit in a truncated packet");
                accountDrop(f, occupied_[i], now);
                ++dropped;
                if (f.tail) {
                    in.dropping = false;
                    --droppingUnits_;
                }
            }
        }
    }

    if (bypass_ && unroutedFlits_ == 0)
        return dropped;

    // Collect input units with routing work, compacting units that
    // have drained out of the occupied list.
    needRoute_.clear();
    for (std::size_t i = 0; i < occupied_.size();) {
        const int unit = occupied_[i];
        InputUnit &in = inputs_[unit];
        if (in.buf.empty()) {
            inOccupiedList_[unit] = 0;
            occupied_[i] = occupied_.back();
            occupied_.pop_back();
            continue;
        }
        if (bypass_) {
            if (in.unrouted > 0)
                needRoute_.push_back(unit);
        } else if (!in.dropping && !in.routed &&
                   in.buf.front().head) {
            needRoute_.push_back(unit);
        }
        ++i;
    }
    if (needRoute_.empty())
        return dropped;

    // Deterministic decision order with a rotating start so that no
    // input is permanently favoured by the sequential allocator.
    std::sort(needRoute_.begin(), needRoute_.end());
    const int total = static_cast<int>(inputs_.size());
    const int start = routeRotate_++ % total;
    auto pivot = std::lower_bound(needRoute_.begin(),
                                  needRoute_.end(), start);
    std::rotate(needRoute_.begin(), pivot, needRoute_.end());

    const bool seq = sequential;
    deferredCommits_.clear();

    auto decide = [&](Flit &head) -> RouteDecision {
        const RouteDecision d = algo.route(*this, head);
        if (d.drop)
            return d;
        FBFLY_ASSERT(d.outPort >= 0 && d.outPort < numPorts_,
                     "route decision port range on router ", id_);
        FBFLY_ASSERT(d.outVc >= 0 && d.outVc < numVcs_,
                     "route decision VC range on router ", id_);
        FBFLY_ASSERT(outputs_[d.outPort].channel != nullptr,
                     "routed to unwired output ", d.outPort,
                     " on router ", id_);
        if (seq) {
            outputs_[d.outPort].committed += head.packetSize;
        } else {
            deferredCommits_.emplace_back(d.outPort,
                                          head.packetSize);
        }
        FBFLY_TRACE(trace_, TraceEventType::kVcAlloc, now,
                    traceTrack_, head, d.outPort, d.outVc);
        return d;
    };

    for (const int unit : needRoute_) {
        InputUnit &in = inputs_[unit];
        if (bypass_) {
            // Unrouted heads are usually the newest arrivals (a
            // suffix of the buffer), but a link failure can re-expose
            // routed flits anywhere: scan from the back until all
            // unrouted flits are handled.
            for (int j = in.buf.size() - 1;
                 j >= 0 && in.unrouted > 0; --j) {
                Flit &f = in.buf.at(j);
                if (!f.head || f.routed)
                    continue;
                const RouteDecision d = decide(f);
                --unroutedFlits_;
                --in.unrouted;
                if (d.drop) {
                    // Unreachable: remove the flit, credit the slot.
                    const Flit gone = in.buf.eraseAt(j);
                    accountDrop(gone, unit, now);
                    ++dropped;
                    continue;
                }
                f.routed = true;
                f.outPort = d.outPort;
                f.outVc = d.outVc;
            }
        } else {
            Flit &head = in.buf.front();
            const RouteDecision d = decide(head);
            if (d.drop) {
                const Flit gone = in.buf.pop();
                accountDrop(gone, unit, now);
                ++dropped;
                // Body flits of a dropped multi-flit packet are
                // discarded as they arrive.
                if (!gone.tail) {
                    in.dropping = true;
                    ++droppingUnits_;
                }
                continue;
            }
            in.routed = true;
            in.outPort = d.outPort;
            in.outVc = d.outVc;
        }
    }

    // Greedy allocator: all of this pass's decisions used the same
    // snapshot; apply their queue updates en masse (Section 3.1).
    for (const auto &[port, flits] : deferredCommits_)
        outputs_[port].committed += flits;
    return dropped;
}

int
Router::allocatePass(Cycle now)
{
    // Gather, per output port, one candidate flit per input unit
    // that could traverse this cycle.
    usedOutputs_.clear();
    ++passTag_;
    for (std::size_t i = 0; i < occupied_.size(); ++i) {
        const int unit = occupied_[i];
        InputUnit &in = inputs_[unit];
        if (in.buf.empty())
            continue;

        if (bypass_) {
            // Any routed flit whose output is available may go: a
            // blocked flit does not block the ones behind it, and a
            // unit may offer one flit per distinct output (it can
            // win several in a cycle — input speedup).  A (port,vc)
            // found blocked in this pass is remembered so the
            // (common) runs of same-destination flits skip the
            // checks.
            for (int j = 0; j < in.buf.size(); ++j) {
                const Flit &f = in.buf.at(j);
                if (!f.routed)
                    continue;
                const int tag_idx = unitIndex(f.outPort, f.outVc);
                if (blockedTag_[tag_idx] == passTag_)
                    continue;
                OutputUnit &ou = outputs_[f.outPort];
                if (!ou.channel->canSendFlit(now) ||
                    ou.credits[f.outVc] <= 0) {
                    blockedTag_[tag_idx] = passTag_;
                    continue;
                }
                auto &cands = candidates_[f.outPort];
                if (!cands.empty() && cands.back().first == unit)
                    continue; // one offer per output per unit
                if (cands.empty())
                    usedOutputs_.push_back(f.outPort);
                cands.emplace_back(unit, j);
            }
        } else {
            if (!in.routed)
                continue;
            OutputUnit &ou = outputs_[in.outPort];
            if (!ou.channel->canSendFlit(now) ||
                ou.credits[in.outVc] <= 0) {
                continue;
            }
            const int owner = ou.vcOwner[in.outVc];
            const bool is_head = in.buf.front().head;
            // Wormhole: a head may claim a free VC; body flits may
            // only continue on a VC their packet already owns.
            if (owner == -1 ? !is_head : owner != unit)
                continue;
            if (candidates_[in.outPort].empty())
                usedOutputs_.push_back(in.outPort);
            candidates_[in.outPort].emplace_back(unit, 0);
        }
    }

    // Arbitrate each contested output, collecting winners before
    // any buffer mutation: a unit can win several outputs in one
    // pass, and erasing lower buffer indices first would invalidate
    // the higher ones.
    const int total = static_cast<int>(inputs_.size());
    winners_.clear();
    for (const PortId port : usedOutputs_) {
        auto &cands = candidates_[port];
        OutputUnit &ou = outputs_[port];

        // Round-robin arbitration: grant the candidate closest after
        // the last winner.
        std::pair<int, int> best = cands[0];
        int bestDist = (best.first - ou.rrPtr + total) % total;
        for (std::size_t i = 1; i < cands.size(); ++i) {
            const int dist =
                (cands[i].first - ou.rrPtr + total) % total;
            if (dist < bestDist) {
                best = cands[i];
                bestDist = dist;
            }
        }
        cands.clear();
        winners_.push_back({port, best.first, best.second});
        ou.rrPtr = (best.first + 1) % total;
    }

    // Execute grants in descending buffer-index order per unit so
    // pending indices stay valid as flits are erased.
    std::sort(winners_.begin(), winners_.end(),
              [](const Grant &a, const Grant &b) {
                  if (a.unit != b.unit)
                      return a.unit < b.unit;
                  return a.index > b.index;
              });

    for (const Grant &g : winners_) {
        InputUnit &in = inputs_[g.unit];
        OutputUnit &ou = outputs_[g.port];
        Flit f = bypass_ ? in.buf.eraseAt(g.index) : in.buf.pop();
        --bufferedFlits_;

        const VcId out_vc = bypass_ ? f.outVc : in.outVc;
        FBFLY_ASSERT(out_vc >= 0 && out_vc < numVcs_,
                     "grant without route");
        if (f.head)
            ou.vcOwner[out_vc] = g.unit;
        if (f.tail) {
            ou.vcOwner[out_vc] = -1;
            if (!bypass_)
                in.routed = false;
        }

        f.vc = out_vc;
        ++f.hops;
        // The route is consumed by this hop.
        f.routed = false;
        f.outPort = kInvalid;
        f.outVc = kInvalid;

        if (ou.downstreamDepth != kInfiniteCredits)
            --ou.credits[out_vc];
        if (ou.committed > 0)
            --ou.committed;
        FBFLY_TRACE(trace_, TraceEventType::kSwAlloc, now,
                    traceTrack_, f, g.port, out_vc);
        ou.channel->sendFlit(f, now);

        // Return a credit for the freed input-buffer slot.
        const PortId in_port = g.unit / numVcs_;
        const VcId in_vc = g.unit % numVcs_;
        if (inputChannels_[in_port] != nullptr)
            inputChannels_[in_port]->sendCredit(in_vc, now);
    }
    return static_cast<int>(winners_.size());
}

void
Router::killOutput(PortId port)
{
    FBFLY_ASSERT(port >= 0 && port < numPorts_,
                 "killOutput port range on router ", id_);
    if (!aliveOut_[port])
        return; // already dead
    aliveOut_[port] = 0;
    ++deadOutputs_;

    OutputUnit &ou = outputs_[port];

    // Re-expose flits already routed to the dead port so the next
    // routing pass can steer them around the failure (fault-aware
    // algorithms) or leave them visibly stuck (oblivious algorithms,
    // caught by the forward-progress watchdog).
    for (std::size_t u = 0; u < inputs_.size(); ++u) {
        InputUnit &in = inputs_[u];
        if (bypass_) {
            for (int j = 0; j < in.buf.size(); ++j) {
                Flit &f = in.buf.at(j);
                if (!f.routed || f.outPort != port)
                    continue;
                f.routed = false;
                f.outPort = kInvalid;
                f.outVc = kInvalid;
                ++unroutedFlits_;
                ++in.unrouted;
                markOccupied(static_cast<int>(u));
            }
        } else if (in.routed && in.outPort == port) {
            in.routed = false;
            in.outPort = kInvalid;
            in.outVc = kInvalid;
            if (!in.buf.empty() && !in.buf.front().head) {
                // Mid-traversal wormhole packet: its head already
                // left on the (now dead) channel.  Truncate — the
                // remaining flits are unroutable without the head.
                in.dropping = true;
                ++droppingUnits_;
                markOccupied(static_cast<int>(u));
            }
        }
    }

    // Committed counts and VC ownership on a dead output are
    // meaningless: no algorithm consults a dead port's queue, and no
    // flit will ever depart through it again.
    ou.committed = 0;
    for (auto &owner : ou.vcOwner)
        owner = -1;
}

void
Router::reviveOutput(PortId port, const std::vector<int> &credits)
{
    FBFLY_ASSERT(port >= 0 && port < numPorts_,
                 "reviveOutput port range on router ", id_);
    if (aliveOut_[port])
        return; // already alive
    OutputUnit &ou = outputs_[port];
    FBFLY_ASSERT(ou.channel != nullptr,
                 "reviveOutput on unwired port ", port, " of router ",
                 id_);
    FBFLY_ASSERT(credits.size() ==
                     static_cast<std::size_t>(numVcs_),
                 "reviveOutput credit vector size");
    aliveOut_[port] = 1;
    --deadOutputs_;
    for (VcId v = 0; v < numVcs_; ++v) {
        FBFLY_ASSERT(credits[v] >= 0 &&
                         credits[v] <= ou.downstreamDepth,
                     "reviveOutput credit level out of range on "
                     "router ", id_, " port ", port, " vc ", v);
        ou.credits[v] = credits[v];
    }
    // killOutput already zeroed committed/vcOwner; the port starts
    // its second life with no allocation state, like at wiring time.
    ou.committed = 0;
    for (auto &owner : ou.vcOwner)
        owner = -1;
}

void
Router::invalidateRoutes()
{
    for (std::size_t u = 0; u < inputs_.size(); ++u) {
        InputUnit &in = inputs_[u];
        if (bypass_) {
            for (int j = 0; j < in.buf.size(); ++j) {
                Flit &f = in.buf.at(j);
                if (!f.routed)
                    continue;
                OutputUnit &ou = outputs_[f.outPort];
                if (ou.committed > 0)
                    --ou.committed;
                f.routed = false;
                f.outPort = kInvalid;
                f.outVc = kInvalid;
                ++unroutedFlits_;
                ++in.unrouted;
                markOccupied(static_cast<int>(u));
            }
        } else {
            // A unit whose front flit is a body is mid-traversal
            // (its head already departed): the path is committed.
            if (!in.routed || in.buf.empty() ||
                !in.buf.front().head)
                continue;
            OutputUnit &ou = outputs_[in.outPort];
            ou.committed = std::max(
                0, ou.committed - in.buf.front().packetSize);
            in.routed = false;
            in.outPort = kInvalid;
            in.outVc = kInvalid;
        }
    }
}

int
Router::estimatedQueue(PortId port) const
{
    FBFLY_ASSERT(port >= 0 && port < numPorts_, "queue query range");
    const OutputUnit &ou = outputs_[port];
    int occ = ou.committed;
    if (ou.downstreamDepth != kInfiniteCredits) {
        for (const int c : ou.credits)
            occ += ou.downstreamDepth - c;
    }
    return occ;
}

int
Router::credits(PortId port, VcId vc) const
{
    FBFLY_ASSERT(port >= 0 && port < numPorts_ && vc >= 0 &&
                 vc < numVcs_, "credit query range");
    return outputs_[port].credits.empty()
        ? 0 : outputs_[port].credits[vc];
}

int
Router::bufferedFlitsOnVc(VcId vc) const
{
    FBFLY_ASSERT(vc >= 0 && vc < numVcs_, "VC occupancy query range");
    int total = 0;
    for (PortId p = 0; p < numPorts_; ++p)
        total += inputs_[unitIndex(p, vc)].buf.size();
    return total;
}

const InputUnit &
Router::inputUnit(PortId port, VcId vc) const
{
    return inputs_[unitIndex(port, vc)];
}

bool
Router::hasActionableWork(Cycle now) const
{
    if (bufferedFlits_ > 0)
        return true;
    for (const auto &ou : outputs_)
        if (ou.channel != nullptr &&
            (ou.channel->needsTick(now) ||
             ou.channel->hasCreditArrival(now)))
            return true;
    for (const Channel *ch : inputChannels_)
        if (ch != nullptr && ch->hasFlitArrival(now))
            return true;
    return false;
}

int
Router::killVictimPacket(PortId port, VcId vc, Cycle now)
{
    FBFLY_ASSERT(port >= 0 && port < numPorts_ && vc >= 0 &&
                 vc < numVcs_,
                 "killVictimPacket range on router ", id_);
    const int unit = unitIndex(port, vc);
    InputUnit &in = inputs_[unit];
    if (in.buf.empty() || in.dropping)
        return 0;

    int dropped = 0;
    if (bypass_) {
        // Single-flit packets: the frontmost flit is a complete
        // packet.  A routed victim releases its output commitment;
        // an unrouted one its pending routing work.
        const Flit f = in.buf.eraseAt(0);
        if (f.routed) {
            OutputUnit &ou = outputs_[f.outPort];
            if (ou.committed > 0)
                --ou.committed;
        } else {
            --unroutedFlits_;
            --in.unrouted;
        }
        accountDrop(f, unit, now);
        dropped = 1;
    } else {
        // Wormhole: only a packet whose head is still buffered here
        // can be killed cleanly — once the head departed, the
        // downstream hop owns the packet (truncating it here would
        // strand a headless remainder downstream).
        if (!in.buf.front().head)
            return 0;
        if (in.routed) {
            OutputUnit &ou = outputs_[in.outPort];
            ou.committed = std::max(
                0, ou.committed - in.buf.front().packetSize);
            in.routed = false;
            in.outPort = kInvalid;
            in.outVc = kInvalid;
        }
        bool saw_tail = false;
        while (!in.buf.empty() && !saw_tail) {
            const Flit f = in.buf.pop();
            saw_tail = f.tail;
            accountDrop(f, unit, now);
            ++dropped;
        }
        if (!saw_tail) {
            // The remainder is still in flight; discard on arrival
            // like a truncated packet (routePass drains it).
            in.dropping = true;
            ++droppingUnits_;
        }
    }
    return dropped;
}

} // namespace fbfly
