/**
 * @file
 * PhasePool — persistent worker threads for the sharded step engine
 * (DESIGN.md "Sharded step engine").
 *
 * A sharded Network::step() runs two parallel phases per cycle, so
 * thread startup cost must be amortized across the whole run: the
 * pool keeps (shards - 1) workers parked on a condition variable and
 * dispatches one phase at a time via an epoch counter.  The calling
 * thread always executes shard 0 itself, so a phase uses exactly
 * `shards` threads and the pool adds no context switch when
 * shards == 1 (no workers are created).
 *
 * The mutex/condition-variable handoff at phase start and end
 * establishes the happens-before edges between phases: everything a
 * worker wrote in phase k is visible to every thread in phase k+1 and
 * to the serial commit.  Exceptions thrown by a shard job are
 * captured and rethrown on the calling thread after all shards of
 * the phase have finished (FBFLY_ASSERT aborts, as it does serially).
 */

#ifndef FBFLY_NETWORK_SHARD_POOL_H
#define FBFLY_NETWORK_SHARD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fbfly
{

/**
 * Fixed-size phase-synchronous worker pool; see the file comment.
 */
class PhasePool
{
  public:
    /** @param workers extra threads beyond the caller (shards - 1). */
    explicit PhasePool(int workers)
    {
        threads_.reserve(workers > 0 ? workers : 0);
        for (int i = 0; i < workers; ++i)
            threads_.emplace_back(
                [this, i] { workerLoop(i); });
    }

    ~PhasePool()
    {
        {
            std::lock_guard lk(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        // jthread members join on destruction.
    }

    PhasePool(const PhasePool &) = delete;
    PhasePool &operator=(const PhasePool &) = delete;

    /** Threads a phase runs on (workers + the caller). */
    int shards() const
    {
        return static_cast<int>(threads_.size()) + 1;
    }

    /**
     * Run one phase: @p job(shard) for every shard in [0, shards()),
     * worker i executing shard i + 1 and the calling thread shard 0.
     * Returns once every shard finished; rethrows the first captured
     * exception (caller's own first).
     */
    void run(const std::function<void(int)> &job)
    {
        if (threads_.empty()) {
            job(0);
            return;
        }
        {
            std::lock_guard lk(mu_);
            job_ = &job;
            pending_ = static_cast<int>(threads_.size());
            ++epoch_;
        }
        cv_.notify_all();

        std::exception_ptr mainError;
        try {
            job(0);
        } catch (...) {
            mainError = std::current_exception();
        }

        std::exception_ptr workerError;
        {
            std::unique_lock lk(mu_);
            doneCv_.wait(lk, [this] { return pending_ == 0; });
            job_ = nullptr;
            workerError = error_;
            error_ = nullptr;
        }
        if (mainError)
            std::rethrow_exception(mainError);
        if (workerError)
            std::rethrow_exception(workerError);
    }

  private:
    void workerLoop(int index)
    {
        std::uint64_t seen = 0;
        for (;;) {
            const std::function<void(int)> *job = nullptr;
            {
                std::unique_lock lk(mu_);
                cv_.wait(lk, [this, seen] {
                    return stop_ || epoch_ != seen;
                });
                if (stop_)
                    return;
                seen = epoch_;
                job = job_;
            }
            std::exception_ptr err;
            try {
                (*job)(index + 1);
            } catch (...) {
                err = std::current_exception();
            }
            {
                std::lock_guard lk(mu_);
                if (err && !error_)
                    error_ = err;
                if (--pending_ == 0)
                    doneCv_.notify_one();
            }
        }
    }

    std::mutex mu_;
    std::condition_variable cv_;     ///< workers: new epoch / stop
    std::condition_variable doneCv_; ///< caller: phase complete
    const std::function<void(int)> *job_ = nullptr;
    std::uint64_t epoch_ = 0;
    int pending_ = 0;
    bool stop_ = false;
    std::exception_ptr error_;
    std::vector<std::jthread> threads_;
};

} // namespace fbfly

#endif // FBFLY_NETWORK_SHARD_POOL_H
