/**
 * @file
 * Virtual-channel input buffer.
 *
 * Each router input port owns one VcBuffer per virtual channel; the
 * paper holds the product (VCs x depth) constant at 32 flits per port
 * when comparing configurations (Section 3.2 / Table 1).
 *
 * The buffer is a RingQueue sized to the VC depth at construction —
 * flow control bounds occupancy to the depth, so steady-state
 * push/pop never touches the allocator (the ring still grows
 * defensively if a caller bypasses flow control).
 */

#ifndef FBFLY_NETWORK_BUFFER_H
#define FBFLY_NETWORK_BUFFER_H

#include "common/ring_queue.h"
#include "common/types.h"
#include "network/flit.h"

namespace fbfly
{

/**
 * A bounded FIFO of flits for one (port, VC) pair.
 */
class VcBuffer
{
  public:
    explicit VcBuffer(int depth = 0)
        : q_(static_cast<std::size_t>(depth)), depth_(depth)
    {
    }

    /** Capacity in flits. */
    int depth() const { return depth_; }

    int size() const { return static_cast<int>(q_.size()); }
    bool empty() const { return q_.empty(); }
    bool full() const { return size() >= depth_; }

    /** Append a flit; the caller must have checked !full(). */
    void push(const Flit &f);

    /** Front flit; the caller must have checked !empty(). */
    const Flit &front() const;
    Flit &front();

    /** Remove and return the front flit. */
    Flit pop();

    /** Flit at position @p i (0 = front). */
    const Flit &at(int i) const
    {
        return q_[static_cast<std::size_t>(i)];
    }
    Flit &at(int i) { return q_[static_cast<std::size_t>(i)]; }

    /** Remove and return the flit at position @p i (bypass mode). */
    Flit eraseAt(int i);

  private:
    RingQueue<Flit> q_;
    int depth_;
};

/**
 * Per-(port,VC) input unit: the buffer plus the route held by the
 * packet currently at its head (wormhole: the route persists from the
 * head flit's decision until the tail flit departs).
 */
struct InputUnit
{
    VcBuffer buf;

    /** The packet at the head has a route assigned. */
    bool routed = false;
    PortId outPort = kInvalid;
    VcId outVc = kInvalid;

    /** Buffered head flits still needing a route (bypass mode).
     *  New arrivals are usually appended, so unrouted heads live in
     *  the suffix of the buffer; a link failure can re-expose routed
     *  flits anywhere, so the routing scan walks the whole buffer. */
    int unrouted = 0;

    /** Wormhole truncation: the packet at the head of this VC lost
     *  its output channel mid-traversal (link failure); remaining
     *  flits are dropped until the tail has passed. */
    bool dropping = false;
};

} // namespace fbfly

#endif // FBFLY_NETWORK_BUFFER_H
